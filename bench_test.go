// Benchmarks regenerating the paper's tables and figures (one bench
// family per artifact — see DESIGN.md §6 for the index) plus ablations
// of the design choices §III discusses. Simulation benches use the same
// calibrated configurations as cmd/lpbench, which also prints the
// paper's numbers side by side.
package lazyp_test

import (
	"testing"

	"lazyp/internal/checksum"
	"lazyp/internal/harness"
	"lazyp/internal/memsim"
	"lazyp/internal/sim"
	"lazyp/internal/workloads"
	"lazyp/internal/workloads/native"
)

// benchTMM is the calibrated TMM configuration shared by the figure
// benches — the same one cmd/lpbench uses (DESIGN.md §4).
func benchTMM(v harness.Variant) harness.Spec {
	return harness.Spec{
		Workload: "tmm", Variant: v,
		N: 256, Tile: 16, Threads: 8, WindowOuter: 2,
	}
}

// runSim executes one simulation per b.N iteration and reports the
// paper's metrics (cycles and NVMM writes per run).
func runSim(b *testing.B, spec harness.Spec) {
	b.Helper()
	var cycles int64
	var writes uint64
	for i := 0; i < b.N; i++ {
		ses := harness.NewSession(spec)
		res := ses.Execute()
		if res.Crashed {
			b.Fatal("unexpected crash")
		}
		cycles, writes = res.Cycles, res.Writes
	}
	b.ReportMetric(float64(cycles), "simcycles/run")
	b.ReportMetric(float64(writes), "nvmmwrites/run")
}

// --- Figure 10: execution time and writes, TMM base/LP/EP/WAL ---------

func BenchmarkFig10(b *testing.B) {
	for _, v := range []harness.Variant{
		harness.VariantBase, harness.VariantLP, harness.VariantEP, harness.VariantWAL,
	} {
		b.Run(string(v), func(b *testing.B) { runSim(b, benchTMM(v)) })
	}
}

// --- Table VI: structural hazards ------------------------------------

func BenchmarkTable6(b *testing.B) {
	for _, v := range []harness.Variant{harness.VariantBase, harness.VariantEP, harness.VariantLP} {
		b.Run(string(v), func(b *testing.B) {
			var h sim.Hazards
			for i := 0; i < b.N; i++ {
				res := harness.NewSession(benchTMM(v)).Execute()
				h = res.Haz
			}
			b.ReportMetric(float64(h.MSHRFull), "mshrfull/run")
			b.ReportMetric(float64(h.WriteQFull+h.StoreQFull), "fuw/run")
			b.ReportMetric(float64(h.StallCycles), "stallcycles/run")
		})
	}
}

// --- Figure 11: periodic flushing write overhead ----------------------

func BenchmarkFig11(b *testing.B) {
	base := harness.NewSession(benchTMM(harness.VariantBase)).Execute()
	for _, frac := range []float64{0.001, 0.01, 0.1, 0.33} {
		frac := frac
		b.Run(formatPct(frac), func(b *testing.B) {
			spec := benchTMM(harness.VariantLP)
			spec.Sim.CleanPeriod = int64(frac * float64(base.Cycles))
			if spec.Sim.CleanPeriod < 1 {
				spec.Sim.CleanPeriod = 1
			}
			var writes uint64
			for i := 0; i < b.N; i++ {
				writes = harness.NewSession(spec).Execute().Writes
			}
			b.ReportMetric(100*(float64(writes)/float64(base.Writes)-1), "extrawrites%")
		})
	}
}

func formatPct(f float64) string {
	switch {
	case f < 0.005:
		return "period=0.1%"
	case f < 0.05:
		return "period=1%"
	case f < 0.2:
		return "period=10%"
	default:
		return "period=33%"
	}
}

// --- Figures 12 & 13: all benchmarks, LP vs EagerRecompute ------------

func benchWorkload(name string, v harness.Variant) harness.Spec {
	s := harness.Spec{Workload: name, Variant: v, Threads: 8}
	switch name {
	case "tmm":
		s.N, s.Tile, s.WindowOuter = 256, 16, 2
	case "cholesky":
		s.N = 256
	case "conv2d":
		s.N, s.Tile, s.WindowOuter = 256, 8, 3
	case "gauss":
		s.N, s.WindowOuter = 256, 4
	case "fft":
		s.N, s.WindowOuter = 16384, 2
	}
	return s
}

func BenchmarkFig12and13(b *testing.B) {
	for _, wl := range []string{"tmm", "cholesky", "conv2d", "gauss", "fft"} {
		for _, v := range []harness.Variant{harness.VariantBase, harness.VariantLP, harness.VariantEP} {
			b.Run(wl+"/"+string(v), func(b *testing.B) {
				runSim(b, benchWorkload(wl, v))
			})
		}
	}
}

// --- Table VII: native (real-machine) overhead ------------------------

// BenchmarkTable7Native measures the five kernels natively — true
// wall-clock testing.B benchmarks of the base and Lazy Persistency
// variants; the LP/base time ratio is the paper's Table VII.
func BenchmarkTable7Native(b *testing.B) {
	sizes := map[string]int{"tmm": 128, "cholesky": 256, "conv2d": 256, "gauss": 384, "fft": 1 << 14}
	for _, wl := range []string{"tmm", "cholesky", "conv2d", "gauss", "fft"} {
		w, err := native.New(wl, sizes[wl])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(wl+"/base", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Base()
			}
		})
		b.Run(wl+"/lp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.LP()
			}
		})
	}
}

// --- Figure 14(a): NVMM latency sensitivity ---------------------------

func BenchmarkFig14a(b *testing.B) {
	for _, p := range [][2]int64{{60, 150}, {150, 300}} {
		for _, v := range []harness.Variant{harness.VariantBase, harness.VariantLP, harness.VariantEP} {
			b.Run(formatLat(p)+"/"+string(v), func(b *testing.B) {
				spec := benchTMM(v)
				spec.Sim.MemReadLat = p[0] * sim.CyclesPerNs
				spec.Sim.MemWriteLat = p[1] * sim.CyclesPerNs
				runSim(b, spec)
			})
		}
	}
}

func formatLat(p [2]int64) string {
	if p[0] == 60 {
		return "lat=60-150ns"
	}
	return "lat=150-300ns"
}

// --- Figure 14(b): thread scaling -------------------------------------

func BenchmarkFig14b(b *testing.B) {
	for _, th := range []int{1, 4, 8} {
		for _, v := range []harness.Variant{harness.VariantBase, harness.VariantLP} {
			b.Run(string(v)+"/threads="+string(rune('0'+th)), func(b *testing.B) {
				spec := benchTMM(v)
				spec.Threads = th
				runSim(b, spec)
			})
		}
	}
}

// --- Figure 15(a): L2 size sensitivity --------------------------------

func BenchmarkFig15a(b *testing.B) {
	for _, kb := range []int{64, 128, 256} {
		for _, v := range []harness.Variant{harness.VariantBase, harness.VariantLP} {
			b.Run("l2="+itoa(kb)+"KB/"+string(v), func(b *testing.B) {
				spec := benchTMM(v)
				h := memsim.DefaultConfig(spec.Threads)
				h.L2Size = kb << 10
				spec.Sim.Hier = h
				runSim(b, spec)
			})
		}
	}
}

// --- Figure 15(b): error-detection code sensitivity --------------------

func BenchmarkFig15b(b *testing.B) {
	for _, k := range checksum.Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			spec := benchTMM(harness.VariantLP)
			spec.Kind = k
			runSim(b, spec)
		})
	}
}

// --- §III-D accuracy ----------------------------------------------------

func BenchmarkChecksumAccuracy(b *testing.B) {
	for _, k := range checksum.Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			missed := 0
			for i := 0; i < b.N; i++ {
				missed += checksum.MeasureAccuracy(k, 64, 10000, int64(i)).Missed
			}
			b.ReportMetric(float64(missed), "missed")
		})
	}
}

// --- Ablations of §III design choices ---------------------------------

// Checksum persistence discipline: lazy (the paper's choice) vs eagerly
// flushing every region checksum (§III-D's rejected alternative).
func BenchmarkAblationEagerChecksum(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy-checksum"
		if eager {
			name = "eager-checksum"
		}
		b.Run(name, func(b *testing.B) {
			spec := benchTMM(harness.VariantLP)
			spec.EagerChecksum = eager
			runSim(b, spec)
		})
	}
}

// LP region granularity (§IV: ii is the paper's pick; jj pays more
// checksum traffic, kk loses more work on a failure).
func BenchmarkAblationGranularity(b *testing.B) {
	for _, g := range []struct {
		name string
		g    workloads.Granularity
	}{{"ii", workloads.GranII}, {"jj", workloads.GranJJ}, {"kk", workloads.GranKK}} {
		b.Run(g.name, func(b *testing.B) {
			spec := benchTMM(harness.VariantLP)
			spec.Gran = g.g
			runSim(b, spec)
		})
	}
}

// Checksum organization: the paper's dense standalone table (Figure
// 7(b)) vs checksums embedded through the data's address range (Figure
// 7(a), rejected in §III-D).
func BenchmarkAblationEmbeddedTable(b *testing.B) {
	for _, embedded := range []bool{false, true} {
		name := "standalone-table"
		if embedded {
			name = "embedded-table"
		}
		b.Run(name, func(b *testing.B) {
			spec := benchTMM(harness.VariantLP)
			spec.EmbeddedTable = embedded
			runSim(b, spec)
		})
	}
}

// WAL transaction granularity: one durable transaction per region vs
// the literal per-element structure of Figure 2.
func BenchmarkAblationWALGranularity(b *testing.B) {
	for _, elem := range []bool{false, true} {
		name := "region-tx"
		if elem {
			name = "element-tx"
		}
		b.Run(name, func(b *testing.B) {
			spec := benchTMM(harness.VariantWAL)
			spec.ElementTx = elem
			if elem {
				spec.N = 64 // element transactions are very slow
				spec.WindowOuter = 1
			}
			runSim(b, spec)
		})
	}
}

// --- KV store (beyond the paper): request-driven persistence ----------

// BenchmarkKV runs the YCSB-style KV store under each persistence
// discipline — the `kv` experiment's core comparison (base/LP/EP/WAL
// on mix A) with all 8 simulated threads and a request phase large
// enough that simulation, not native setup, dominates wall-clock.
func BenchmarkKV(b *testing.B) {
	for _, v := range []harness.Variant{
		harness.VariantBase, harness.VariantLP, harness.VariantEP, harness.VariantWAL,
	} {
		b.Run(string(v), func(b *testing.B) {
			spec := harness.KVSpec{
				Variant: v, Mix: "a", Threads: 8,
				Preload: 512, Ops: 4096, Seed: 1,
			}
			var cycles int64
			var writes uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer() // session setup: native preload, no simulation
				ses := harness.NewKVSession(spec)
				b.StartTimer()
				res := ses.Execute()
				if res.Crashed {
					b.Fatal("unexpected crash")
				}
				cycles, writes = res.Cycles, res.Writes
			}
			b.ReportMetric(float64(cycles), "simcycles/run")
			b.ReportMetric(float64(writes), "nvmmwrites/run")
		})
	}
}

// --- Experiment-runner benchmarks --------------------------------------

// runnerSpecs is a small batch of independent runs, the unit of work the
// parallel runner fans out.
func runnerSpecs() []harness.Spec {
	var specs []harness.Spec
	for _, v := range []harness.Variant{
		harness.VariantBase, harness.VariantLP, harness.VariantEP, harness.VariantWAL,
	} {
		specs = append(specs, harness.Spec{Workload: "tmm", Variant: v, N: 64, Tile: 16, Threads: 4})
	}
	return specs
}

// BenchmarkRunnerSequential executes the batch on a single pool worker
// without memoization — the pre-pool baseline.
func BenchmarkRunnerSequential(b *testing.B) {
	pool := harness.NewRunPool(1, nil)
	defer pool.Close()
	for i := 0; i < b.N; i++ {
		if _, err := pool.RunAll(runnerSpecs()...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerPool fans the batch out across GOMAXPROCS workers.
func BenchmarkRunnerPool(b *testing.B) {
	pool := harness.NewRunPool(0, nil)
	defer pool.Close()
	for i := 0; i < b.N; i++ {
		if _, err := pool.RunAll(runnerSpecs()...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerMemoized measures the warm-cache path: after the first
// iteration every run is a cache hit.
func BenchmarkRunnerMemoized(b *testing.B) {
	pool := harness.NewRunPool(0, harness.NewCache())
	defer pool.Close()
	if _, err := pool.RunAll(runnerSpecs()...); err != nil {
		b.Fatal(err) // warm
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.RunAll(runnerSpecs()...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Scheduler benchmarks ----------------------------------------------

// engineSession is the scheduler-stress session behind BenchmarkEngine*:
// every thread interleaves loads, stores, and compute over a small
// per-thread working set (mostly cache-resident, so per-access memsim
// work is cheap), with frequent flush+fence episodes — the op mix of an
// eager-persistency kernel, whose fence stalls jump the clock and force
// a yield — and a barrier every 1024 iterations. Wall-clock here is
// dominated by the engine's per-quantum cost (grant handoffs and
// scheduling decisions), which is what the direct-handoff scheduler
// targets; BenchmarkKV covers the memory-bound profile.
func engineSession(mem *memsim.Memory, threads, iters int) {
	base := mem.Alloc("d", 256<<10)
	eng := sim.New(sim.DefaultConfig(threads), mem)
	bar := eng.NewBarrier()
	eng.Run(func(t *sim.Thread) {
		off := memsim.Addr(t.ThreadID() * 16 << 10)
		for i := 0; i < iters; i++ {
			a := base + off + memsim.Addr((i*712)%(16<<10)&^7)
			t.Load64(a)
			t.Store64(a, uint64(i))
			t.Compute(8)
			if i%16 == 15 {
				t.Flush(a)
				t.Fence()
			}
			if i%1024 == 1023 {
				t.BarrierWait(bar)
			}
		}
	})
}

func benchEngine(b *testing.B, threads int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer() // memory allocation + zeroing is not engine work
		mem := memsim.NewMemory(1 << 20)
		b.StartTimer()
		engineSession(mem, threads, 20000)
	}
}

// BenchmarkEngine1T..8T measure one scheduler-stress session per
// iteration at fixed per-thread work; compare each size against its
// pre-PR number (EXPERIMENTS.md "Scheduler v2") rather than across
// sizes.
func BenchmarkEngine1T(b *testing.B) { benchEngine(b, 1) }

func BenchmarkEngine2T(b *testing.B) { benchEngine(b, 2) }

func BenchmarkEngine4T(b *testing.B) { benchEngine(b, 4) }

func BenchmarkEngine8T(b *testing.B) { benchEngine(b, 8) }

// --- Simulator self-benchmark ------------------------------------------

// BenchmarkSimulatorThroughput measures the simulator's own speed in
// simulated memory accesses per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	mem := memsim.NewMemory(16 << 20)
	base := mem.Alloc("d", 8<<20)
	eng := sim.New(sim.DefaultConfig(1), mem)
	b.ResetTimer()
	eng.Run(func(t *sim.Thread) {
		for i := 0; i < b.N; i++ {
			t.Load64(base + memsim.Addr((i*64)%(8<<20)))
		}
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
