package native

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestVariantsIdenticalOutputs(t *testing.T) {
	for _, name := range []string{"tmm", "cholesky", "conv2d", "gauss", "fft"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := New(name, smallSize(name))
			if err != nil {
				t.Fatal(err)
			}
			w.Base()
			w.LP()
			if err := w.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func smallSize(name string) int {
	switch name {
	case "fft":
		return 256
	default:
		return 64
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("bogus", 0); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestOverheadRuns(t *testing.T) {
	over, err := Overhead("tmm", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if over < -0.9 || over > 10 {
		t.Fatalf("implausible overhead %v", over)
	}
}

func TestNativeTMMAgainstNaive(t *testing.T) {
	n, bs := 32, 16
	a, b, c := make([]float64, n*n), make([]float64, n*n), make([]float64, n*n)
	for i := range a {
		a[i] = fill(1, i/n, i%n)
		b[i] = fill(2, i/n, i%n)
	}
	TMM(a, b, c, n, bs, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			if c[i*n+j] != sum {
				t.Fatalf("c[%d][%d] = %v want %v", i, j, c[i*n+j], sum)
			}
		}
	}
}

func TestNativeFFTAgainstDFT(t *testing.T) {
	n := 64
	x0 := make([]float64, 2*n)
	for i := range x0 {
		x0[i] = fill(7, i, 0)
	}
	bufA, bufB := make([]float64, 2*n), make([]float64, 2*n)
	out := FFT(x0, bufA, bufB, n, nil)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += complex(x0[2*j], x0[2*j+1]) * cmplx.Rect(1, -2*math.Pi*float64(k)*float64(j)/float64(n))
		}
		got := complex(out[2*k], out[2*k+1])
		if cmplx.Abs(got-want) > 1e-9*float64(n) {
			t.Fatalf("bin %d: got %v want %v", k, got, want)
		}
	}
}

func TestChecksumTableFilled(t *testing.T) {
	n, bs := 32, 16
	a, b, c := make([]float64, n*n), make([]float64, n*n), make([]float64, n*n)
	for i := range a {
		a[i] = 1
		b[i] = 1
	}
	tiles := n / bs
	table := make([]uint32, tiles*tiles)
	TMM(a, b, c, n, bs, table)
	// All-ones inputs: regions at the same kk level fold identical
	// data, so their slots must match; different levels must differ
	// (partial sums grow with kk).
	for kk := 0; kk < tiles; kk++ {
		for ii := 1; ii < tiles; ii++ {
			if table[kk*tiles+ii] != table[kk*tiles] {
				t.Fatalf("slots at level %d differ", kk)
			}
		}
	}
	if tiles > 1 && table[0] == table[tiles] {
		t.Fatal("checksums identical across kk levels")
	}
}
