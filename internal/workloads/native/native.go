// Package native contains plain-Go implementations of the five
// benchmark kernels, in base form and with Lazy Persistency's checksum
// instrumentation, operating directly on slices with no simulation or
// interface indirection.
//
// This is the paper's real-machine experiment (§V-B, Table VII): Lazy
// Persistency needs no hardware support, so its failure-free cost can be
// measured on any machine — here as the wall-clock overhead of the
// checksum computation and table stores, exactly what the paper reports
// for its DRAM-based AMD system.
package native

import (
	"fmt"
	"math"
)

// cksum is the paper's default modular checksum: the stored value's bit
// pattern is summed into a 64-bit accumulator (one add per store; the
// region commits fold32(acc), a 32-bit checksum, into its table slot).
func cksum(s uint64, v float64) uint64 {
	return s + math.Float64bits(v)
}

// fold32 reduces the 64-bit accumulation to the 32-bit stored checksum.
func fold32(v uint64) uint32 { return uint32(v) + uint32(v>>32) }

// TMM computes C = A×B with 6-loop tiling (tile bs). When table is
// non-nil, each (kk, ii) region folds a modular checksum over its stores
// and commits it to table (Lazy Persistency instrumentation); a nil
// table is the base variant.
func TMM(a, b, c []float64, n, bs int, table []uint32) {
	tiles := n / bs
	for kk := 0; kk < n; kk += bs {
		for ii := 0; ii < n; ii += bs {
			var cs uint64
			for jj := 0; jj < n; jj += bs {
				for i := ii; i < ii+bs; i++ {
					for j := jj; j < jj+bs; j++ {
						sum := c[i*n+j]
						for k := kk; k < kk+bs; k++ {
							sum += a[i*n+k] * b[k*n+j]
						}
						c[i*n+j] = sum
						if table != nil {
							cs = cksum(cs, sum)
						}
					}
				}
			}
			if table != nil {
				table[(kk/bs)*tiles+ii/bs] = fold32(cs)
			}
		}
	}
}

// Cholesky factors the SPD matrix a (read-only) into the lower-
// triangular l. Regions are columns.
func Cholesky(a, l []float64, n int, table []uint32) {
	for j := 0; j < n; j++ {
		var cs uint64
		sum := a[j*n+j]
		for k := 0; k < j; k++ {
			v := l[j*n+k]
			sum -= v * v
		}
		d := math.Sqrt(sum)
		l[j*n+j] = d
		if table != nil {
			cs = cksum(cs, d)
		}
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			v := s / d
			l[i*n+j] = v
			if table != nil {
				cs = cksum(cs, v)
			}
		}
		if table != nil {
			table[j] = fold32(cs)
		}
	}
}

// Conv2D applies a 3×3 kernel to an n×n image for iters passes,
// ping-ponging between work buffers. Regions are (pass, row block).
func Conv2D(in, bufA, bufB, k []float64, n, blockRows, iters int, table []uint32) {
	blocks := (n + blockRows - 1) / blockRows
	src := in
	for pass := 0; pass < iters; pass++ {
		dst := bufA
		if pass%2 == 1 {
			dst = bufB
		}
		for blk := 0; blk < blocks; blk++ {
			var cs uint64
			i0, i1 := blk*blockRows, (blk+1)*blockRows
			if i1 > n {
				i1 = n
			}
			for i := i0; i < i1; i++ {
				for j := 0; j < n; j++ {
					sum := 0.0
					for di := -1; di <= 1; di++ {
						ii := i + di
						if ii < 0 || ii >= n {
							continue
						}
						for dj := -1; dj <= 1; dj++ {
							jj := j + dj
							if jj < 0 || jj >= n {
								continue
							}
							sum += src[ii*n+jj] * k[(di+1)*3+(dj+1)]
						}
					}
					dst[i*n+j] = sum
					if table != nil {
						cs = cksum(cs, sum)
					}
				}
			}
			if table != nil {
				table[pass*blocks+blk] = fold32(cs)
			}
		}
		src = bufA
		if pass%2 == 1 {
			src = bufB
		}
	}
}

// Gauss performs in-place LU-style forward elimination without pivoting
// on u. Regions are elimination steps.
func Gauss(u []float64, n int, table []uint32) {
	for k := 0; k < n-1; k++ {
		var cs uint64
		pivot := u[k*n+k]
		for i := k + 1; i < n; i++ {
			m := u[i*n+k] / pivot
			u[i*n+k] = m
			if table != nil {
				cs = cksum(cs, m)
			}
			for j := k + 1; j < n; j++ {
				v := u[i*n+j] - m*u[k*n+j]
				u[i*n+j] = v
				if table != nil {
					cs = cksum(cs, v)
				}
			}
		}
		if table != nil {
			table[k] = fold32(cs)
		}
	}
}

// FFT computes an n-point complex DFT (interleaved re/im of length 2n)
// with the iterative Stockham radix-2 algorithm, ping-ponging between
// bufA and bufB, reading the input from x0 at stage 0. It returns the
// buffer holding the result. Regions are stages.
func FFT(x0, bufA, bufB []float64, n int, table []uint32) []float64 {
	stages := 0
	for s := n; s > 1; s >>= 1 {
		stages++
	}
	src := x0
	for stage := 0; stage < stages; stage++ {
		dst := bufA
		if stage%2 == 1 {
			dst = bufB
		}
		nt := n >> stage
		m := nt / 2
		st := 1 << stage
		theta := 2 * math.Pi / float64(nt)
		var cs uint64
		for p := 0; p < m; p++ {
			wr := math.Cos(float64(p) * theta)
			wi := -math.Sin(float64(p) * theta)
			for q := 0; q < st; q++ {
				ia, ib := q+st*p, q+st*(p+m)
				ar, ai := src[2*ia], src[2*ia+1]
				br, bi := src[2*ib], src[2*ib+1]
				sr, si := ar+br, ai+bi
				dr, di := ar-br, ai-bi
				tr := dr*wr - di*wi
				ti := dr*wi + di*wr
				io := q + st*2*p
				dst[2*io], dst[2*io+1] = sr, si
				dst[2*(io+st)], dst[2*(io+st)+1] = tr, ti
				if table != nil {
					cs = cksum(cs, sr)
					cs = cksum(cs, si)
					cs = cksum(cs, tr)
					cs = cksum(cs, ti)
				}
			}
		}
		if table != nil {
			table[stage] = fold32(cs)
		}
		src = dst
	}
	return src
}

// fill produces the deterministic pseudo-random inputs shared with the
// simulated workloads.
func fill(seed, i, j int) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + uint64(j)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x>>11)/float64(1<<53)*2 - 1
}

// Workload bundles one native benchmark's setup and its two variants.
type Workload struct {
	Name string
	// Base runs the kernel without failure safety; LP runs it with
	// Lazy Persistency checksum instrumentation. Both recompute from
	// fresh state on every call.
	Base func()
	LP   func()
	// Check verifies the two variants produced identical outputs.
	Check func() error
}

// New builds a native workload by name ("tmm", "cholesky", "conv2d",
// "gauss", "fft") at problem size n (0 = default).
func New(name string, n int) (*Workload, error) {
	switch name {
	case "tmm":
		if n == 0 {
			n = 512
		}
		bs := 16
		a, b := make([]float64, n*n), make([]float64, n*n)
		cB, cL := make([]float64, n*n), make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i*n+j] = fill(1, i, j)
				b[i*n+j] = fill(2, i, j)
			}
		}
		table := make([]uint32, (n/bs)*(n/bs))
		return &Workload{
			Name: name,
			Base: func() { clearF(cB); TMM(a, b, cB, n, bs, nil) },
			LP:   func() { clearF(cL); TMM(a, b, cL, n, bs, table) },
			Check: func() error {
				return sameF("tmm", cB, cL)
			},
		}, nil
	case "cholesky":
		if n == 0 {
			n = 1024
		}
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					a[i*n+j] = float64(n)
				} else {
					lo, hi := i, j
					if lo > hi {
						lo, hi = hi, lo
					}
					a[i*n+j] = fill(3, lo, hi)
				}
			}
		}
		lB, lL := make([]float64, n*n), make([]float64, n*n)
		table := make([]uint32, n)
		return &Workload{
			Name: name,
			Base: func() { clearF(lB); Cholesky(a, lB, n, nil) },
			LP:   func() { clearF(lL); Cholesky(a, lL, n, table) },
			Check: func() error {
				return sameF("cholesky", lB, lL)
			},
		}, nil
	case "conv2d":
		if n == 0 {
			n = 1024
		}
		const iters, blockRows = 8, 8
		in := make([]float64, n*n)
		k := make([]float64, 9)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				in[i*n+j] = fill(5, i, j)
			}
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				k[i*3+j] = fill(6, i, j) / 8
			}
		}
		aB, bB := make([]float64, n*n), make([]float64, n*n)
		aL, bL := make([]float64, n*n), make([]float64, n*n)
		blocks := (n + blockRows - 1) / blockRows
		table := make([]uint32, iters*blocks)
		out := func(a, b []float64) []float64 {
			if iters%2 == 1 {
				return a
			}
			return b
		}
		return &Workload{
			Name: name,
			Base: func() { Conv2D(in, aB, bB, k, n, blockRows, iters, nil) },
			LP:   func() { Conv2D(in, aL, bL, k, n, blockRows, iters, table) },
			Check: func() error {
				return sameF("conv2d", out(aB, bB), out(aL, bL))
			},
		}, nil
	case "gauss":
		// Large enough that the working set exceeds the last-level
		// cache: the paper's real-machine kernels are memory-bound,
		// which is what hides the checksum arithmetic (Table VII).
		if n == 0 {
			n = 2048
		}
		mk := func() []float64 {
			u := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						u[i*n+j] = float64(2 * n)
					} else {
						u[i*n+j] = fill(4, i, j)
					}
				}
			}
			return u
		}
		uB, uL := mk(), mk()
		pristine := mk()
		table := make([]uint32, n)
		return &Workload{
			Name: name,
			Base: func() { copy(uB, pristine); Gauss(uB, n, nil) },
			LP:   func() { copy(uL, pristine); Gauss(uL, n, table) },
			Check: func() error {
				return sameF("gauss", uB, uL)
			},
		}, nil
	case "fft":
		if n == 0 {
			n = 1 << 21
		}
		x0 := make([]float64, 2*n)
		for i := range x0 {
			x0[i] = fill(7, i, 0)
		}
		aB, bB := make([]float64, 2*n), make([]float64, 2*n)
		aL, bL := make([]float64, 2*n), make([]float64, 2*n)
		stages := 0
		for s := n; s > 1; s >>= 1 {
			stages++
		}
		table := make([]uint32, stages)
		var outB, outL []float64
		return &Workload{
			Name: name,
			Base: func() { outB = FFT(x0, aB, bB, n, nil) },
			LP:   func() { outL = FFT(x0, aL, bL, n, table) },
			Check: func() error {
				return sameF("fft", outB, outL)
			},
		}, nil
	default:
		return nil, fmt.Errorf("native: unknown workload %q", name)
	}
}

func clearF(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

func sameF(name string, a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: variant outputs differ in length", name)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%s: variant outputs differ at %d: %v vs %v", name, i, a[i], b[i])
		}
	}
	return nil
}
