package native

import "time"

// Overhead measures the wall-clock overhead of the Lazy Persistency
// variant over base, interleaving reps repetitions of each and taking
// the minimum (the paper's Table VII methodology: execution-time
// overhead on a real, DRAM-based machine). It also cross-checks that
// the two variants compute identical outputs.
func Overhead(name string, n, reps int) (float64, error) {
	w, err := New(name, n)
	if err != nil {
		return 0, err
	}
	if reps < 1 {
		reps = 1
	}
	// Warm-up (page faults, cache state).
	w.Base()
	w.LP()
	if err := w.Check(); err != nil {
		return 0, err
	}
	minBase, minLP := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		w.Base()
		if d := time.Since(t0); d < minBase {
			minBase = d
		}
		t1 := time.Now()
		w.LP()
		if d := time.Since(t1); d < minLP {
			minLP = d
		}
	}
	return float64(minLP)/float64(minBase) - 1, nil
}
