package workloads

import (
	"math"
	"math/cmplx"
	"testing"

	"lazyp/internal/checksum"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// nativeRun executes a workload single-threaded on a Native ctx (no
// simulation) under the given strategy.
func nativeRun(m *memsim.Memory, w Workload, s lp.Strategy) {
	env := Env{C: &pmem.Native{Mem: m}, Tid: 0, Threads: 1, Barrier: NopBarrier}
	w.Run(env, s.Thread(0))
}

func TestTMMNativeBaseVerify(t *testing.T) {
	m := memsim.NewMemory(16 << 20)
	w := NewTMM(m, 64, 16, 1, checksum.Modular)
	nativeRun(m, w, lp.Base{})
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestTMMGranularities(t *testing.T) {
	for _, g := range []Granularity{GranII, GranJJ, GranKK} {
		m := memsim.NewMemory(16 << 20)
		w := NewTMMGran(m, 64, 16, 1, checksum.Modular, g)
		lpS := lp.NewLP(w.Table(), checksum.Modular, 1)
		nativeRun(m, w, lpS)
		if err := w.Verify(m); err != nil {
			t.Fatalf("granularity %d: %v", g, err)
		}
	}
}

func TestTMMSlotRoundTrip(t *testing.T) {
	w := &TMM{N: 128, Bs: 16, Thr: 3}
	seen := map[int]bool{}
	for kk := 0; kk < w.N; kk += w.Bs {
		for ii := 0; ii < w.N; ii += w.Bs {
			s := w.slot(kk, ii)
			if s < 0 || s >= w.Regions() {
				t.Fatalf("slot(%d,%d) = %d out of range", kk, ii, s)
			}
			if seen[s] {
				t.Fatalf("slot collision at (%d,%d)", kk, ii)
			}
			seen[s] = true
			gk, gi := w.slotDecode(s)
			if gk != kk || gi != ii {
				t.Fatalf("slotDecode(slot(%d,%d)) = (%d,%d)", kk, ii, gk, gi)
			}
		}
	}
}

func TestTMMThreadRegionsPartition(t *testing.T) {
	w := &TMM{N: 128, Bs: 16, Thr: 3}
	counts := map[[2]int]int{}
	for tid := 0; tid < w.Thr; tid++ {
		for _, r := range w.threadRegions(tid) {
			counts[r]++
		}
	}
	tiles := w.tiles()
	if len(counts) != tiles*tiles {
		t.Fatalf("regions covered = %d, want %d", len(counts), tiles*tiles)
	}
	for r, c := range counts {
		if c != 1 {
			t.Fatalf("region %v covered %d times", r, c)
		}
	}
}

func TestCholeskyNative(t *testing.T) {
	m := memsim.NewMemory(16 << 20)
	w := NewCholesky(m, 40, 1, checksum.Modular)
	nativeRun(m, w, lp.Base{})
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reconstruct A (numerically).
	l := w.L.Snapshot(m)
	a := w.A.Snapshot(m)
	n := w.N
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k <= j; k++ {
				sum += l[i*n+k] * l[j*n+k]
			}
			if math.Abs(sum-a[i*n+j]) > 1e-9*float64(n) {
				t.Fatalf("L·Lᵀ[%d][%d] = %v, A = %v", i, j, sum, a[i*n+j])
			}
		}
	}
}

func TestConv2DNative(t *testing.T) {
	m := memsim.NewMemory(16 << 20)
	w := NewConv2DIters(m, 32, 4, 5, 1, checksum.Modular)
	nativeRun(m, w, lp.Base{})
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestGaussNative(t *testing.T) {
	m := memsim.NewMemory(16 << 20)
	w := NewGauss(m, 48, 1, checksum.Modular)
	nativeRun(m, w, lp.Base{})
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Check LU actually factors A0: (L+I)·U == A0 where L is strictly
	// lower (multipliers) and U upper.
	n := w.N
	u := w.U.Snapshot(m)
	a0 := w.A0.Snapshot(m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k <= min(i, j); k++ {
				lv := u[i*n+k] // multiplier for k<i
				if k == i {
					lv = 1
				}
				if k <= j {
					uv := u[k*n+j]
					sum += lv * uv
				}
			}
			if math.Abs(sum-a0[i*n+j]) > 1e-8*float64(n) {
				t.Fatalf("LU[%d][%d] = %v, A0 = %v", i, j, sum, a0[i*n+j])
			}
		}
	}
}

func TestFFTNative(t *testing.T) {
	m := memsim.NewMemory(16 << 20)
	w := NewFFT(m, 256, 1, checksum.Modular)
	nativeRun(m, w, lp.Base{})
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestFFTAgainstDirectDFT(t *testing.T) {
	m := memsim.NewMemory(16 << 20)
	w := NewFFT(m, 32, 1, checksum.Modular)
	nativeRun(m, w, lp.Base{})
	x0 := w.X0.Snapshot(m)
	got := w.Result().Snapshot(m)
	n := w.N
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			x := complex(x0[2*j], x0[2*j+1])
			want += x * cmplx.Rect(1, -2*math.Pi*float64(k)*float64(j)/float64(n))
		}
		g := complex(got[2*k], got[2*k+1])
		if cmplx.Abs(g-want) > 1e-9*float64(n) {
			t.Fatalf("DFT bin %d: got %v want %v", k, g, want)
		}
	}
}

func TestFFTBadSizePanics(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two FFT should panic")
		}
	}()
	NewFFT(m, 100, 1, checksum.Modular)
}

func TestTMMBadTilePanics(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("n not divisible by bs should panic")
		}
	}()
	NewTMM(m, 100, 16, 1, checksum.Modular)
}

func TestParallelNativeMatchesSequential(t *testing.T) {
	// The work partition must not change results: 1-thread vs 3-thread
	// native runs produce bitwise identical outputs.
	run := func(threads int) []float64 {
		m := memsim.NewMemory(16 << 20)
		w := NewTMM(m, 64, 16, threads, checksum.Modular)
		for tid := 0; tid < threads; tid++ {
			env := Env{C: &pmem.Native{Mem: m, ID: tid}, Tid: tid, Threads: threads, Barrier: NopBarrier}
			w.Run(env, lp.Base{}.Thread(tid))
		}
		return w.C.Snapshot(m)
	}
	a, b := run(1), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d differs across thread counts", i)
		}
	}
}

func TestWorkloadMetadata(t *testing.T) {
	m := memsim.NewMemory(64 << 20)
	ws := []Workload{
		NewTMM(m, 64, 16, 2, checksum.Modular),
		NewCholesky(m, 32, 2, checksum.Modular),
		NewConv2D(m, 32, 4, 2, checksum.Modular),
		NewGauss(m, 32, 2, checksum.Modular),
		NewFFT(m, 64, 2, checksum.Modular),
	}
	names := map[string]bool{}
	for _, w := range ws {
		if w.Name() == "" || names[w.Name()] {
			t.Fatalf("bad or duplicate name %q", w.Name())
		}
		names[w.Name()] = true
		if w.Regions() <= 0 {
			t.Fatalf("%s: no regions", w.Name())
		}
		if w.Table() == nil || w.Table().Slots() != w.Regions() {
			t.Fatalf("%s: table size mismatch", w.Name())
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
