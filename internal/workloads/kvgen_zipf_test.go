package workloads

import (
	"sync"
	"testing"
)

// TestZipfTableThetaSweep sweeps the threshold/radix fast path against
// the Gray et al. reference arithmetic across the (θ, n) grid the
// loadmodel specs can request — not just the kvgen default θ=0.99.
// For each cell: a seeded 53-bit draw sample, plus the exact table
// boundaries (thr[j] and thr[j]-1), where an off-by-one in the radix
// scan would hide from random sampling.
func TestZipfTableThetaSweep(t *testing.T) {
	thetas := []float64{0.2, 0.5, 0.8, 0.9, 0.99, 0.999}
	ns := []int{2, 7, 64, 513, 2048, 4096}
	for _, theta := range thetas {
		for _, n := range ns {
			z := newZipf(n, theta)
			if z.thr == nil && n > 1 {
				t.Errorf("n=%d θ=%g: threshold table failed build-time validation", n, theta)
				continue
			}
			slow := func(k uint64) int { return z.rankSlow(float64(k) / float64(1<<53)) }
			s := uint64(n)*1000003 + uint64(theta*1e6)
			for i := 0; i < 50000; i++ {
				s = splitmix(s)
				k := s >> 11
				if got, want := z.rank53(k), slow(k); got != want {
					t.Fatalf("n=%d θ=%g k=%d: table rank %d, slow rank %d", n, theta, k, got, want)
				}
			}
			for j, thr := range z.thr {
				if got, want := z.rank53(thr), slow(thr); got != want {
					t.Fatalf("n=%d θ=%g thr[%d]=%d: table rank %d, slow rank %d", n, theta, j, thr, got, want)
				}
				if thr == 0 {
					continue
				}
				if got, want := z.rank53(thr-1), slow(thr-1); got != want {
					t.Fatalf("n=%d θ=%g thr[%d]-1=%d: table rank %d, slow rank %d", n, theta, j, thr-1, got, want)
				}
			}
			// Extremes: first and last representable draws.
			if got, want := z.rank53(0), slow(0); got != want {
				t.Fatalf("n=%d θ=%g k=0: table rank %d, slow rank %d", n, theta, got, want)
			}
			last := uint64(1<<53) - 1
			if got, want := z.rank53(last), slow(last); got != want {
				t.Fatalf("n=%d θ=%g k=max: table rank %d, slow rank %d", n, theta, got, want)
			}
		}
	}
}

// TestZipfTableCacheSharedAcrossGoroutines pins the process-wide table
// cache: concurrent constructions of the same (n, θ) must all end up
// on ONE threshold table (same backing array, not equal copies), and
// concurrent draws through the shared table must be race-free — this
// is the contract that lets every generator goroutine of a run, and
// the loadmodel generator on top, share a single table per (n, θ).
func TestZipfTableCacheSharedAcrossGoroutines(t *testing.T) {
	const n, theta = 777, 0.95
	const workers = 8
	samplers := make([]*ZipfSampler, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			zs := NewZipfSampler(n, theta)
			samplers[w] = zs
			// Draw through the table concurrently with the other
			// builders; -race verifies immutability after publish.
			s := uint64(w + 1)
			for i := 0; i < 20000; i++ {
				s = splitmix(s)
				if r := zs.Rank(s >> 11); r < 0 || r >= n {
					t.Errorf("rank %d out of [0,%d)", r, n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	first := samplers[0].z.thr
	if first == nil {
		t.Fatal("no threshold table built")
	}
	for w := 1; w < workers; w++ {
		thr := samplers[w].z.thr
		if len(thr) != len(first) || &thr[0] != &first[0] {
			t.Fatalf("worker %d got a different table (len %d vs %d, ptr %p vs %p): cache not shared",
				w, len(thr), len(first), &thr[0], &first[0])
		}
	}
	// A later same-key construction still reuses it.
	if again := NewZipfSampler(n, theta).z.thr; &again[0] != &first[0] {
		t.Fatal("fresh construction rebuilt a cached table")
	}
}
