package workloads

import (
	"testing"

	"lazyp/internal/checksum"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
	"lazyp/internal/sim"
)

// simRun executes a workload on the simulator with the given strategy
// and returns the memory.
func simRun(t *testing.T, w Workload, m *memsim.Memory, strat lp.Strategy, threads int) *sim.Engine {
	t.Helper()
	eng := sim.New(sim.DefaultConfig(threads), m)
	b := eng.NewBarrier()
	eng.Run(func(th *sim.Thread) {
		env := Env{C: th, Tid: th.ThreadID(), Threads: threads,
			Barrier: func() { th.BarrierWait(b) }}
		w.Run(env, strat.Thread(th.ThreadID()))
	})
	return eng
}

// TestTMMRecoverFrontierFullRun: after a fully-drained run, the
// frontier is the end of the matrix (nothing to redo).
func TestTMMRecoverFrontierFullRun(t *testing.T) {
	m := memsim.NewMemory(32 << 20)
	w := NewTMM(m, 64, 16, 2, checksum.Modular)
	strat := lp.NewLP(w.Table(), checksum.Modular, 2)
	eng := simRun(t, w, m, strat, 2)
	eng.Hier.DrainDirty(eng.ExecCycles(), false)
	m.Crash()

	reng := sim.New(sim.DefaultConfig(1), m)
	reng.Run(func(th *sim.Thread) {
		if got := w.RecoverFrontier(th); got != w.N {
			t.Errorf("frontier after complete durable run = %d, want %d", got, w.N)
		}
	})
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestTMMRecoverFrontierNothingDurable: with nothing persisted, the
// frontier restarts from zero and C is durably zeroed.
func TestTMMRecoverFrontierNothingDurable(t *testing.T) {
	m := memsim.NewMemory(32 << 20)
	w := NewTMM(m, 64, 16, 2, checksum.Modular)
	strat := lp.NewLP(w.Table(), checksum.Modular, 2)
	simRun(t, w, m, strat, 2)
	// No drain: everything (data + checksums, small run) may be lost.
	m.Crash()

	reng := sim.New(sim.DefaultConfig(1), m)
	reng.Run(func(th *sim.Thread) {
		got := w.RecoverFrontier(th)
		if got != 0 {
			// Some regions persisted naturally — also fine; just check
			// legality.
			if got%w.Bs != 0 || got > w.N {
				t.Errorf("illegal frontier %d", got)
			}
			return
		}
		// Full restart: C must be durably zero.
		c2 := &pmem.Native{Mem: m}
		for i := 0; i < w.N; i++ {
			for j := 0; j < w.N; j++ {
				if w.C.Load(c2, i, j) != 0 {
					t.Fatalf("C[%d][%d] not zeroed on full restart", i, j)
				}
			}
		}
	})
}

// TestTMMRepairIncremental exercises §IV's optimized Repair: persist a
// consistent level, advance one tile's architectural state without
// persisting, crash, and check repair rebuilds from the prior level
// (bitwise result via Verify after completion).
func TestTMMRepairIncremental(t *testing.T) {
	m := memsim.NewMemory(32 << 20)
	w := NewTMM(m, 64, 16, 1, checksum.Modular)
	strat := lp.NewLP(w.Table(), checksum.Modular, 1)

	// Run the first two kk blocks and drain (level 16 durable).
	eng := sim.New(sim.DefaultConfig(1), m)
	eng.Run(func(th *sim.Thread) {
		env := Env{C: th, Tid: 0, Threads: 1, Barrier: NopBarrier}
		w.runRange(env, strat.Thread(0), 0, 32)
	})
	eng.Hier.DrainDirty(eng.ExecCycles(), false)

	// Run the third block but do NOT drain: lost at the crash.
	eng2 := sim.New(sim.DefaultConfig(1), m)
	eng2.Run(func(th *sim.Thread) {
		env := Env{C: th, Tid: 0, Threads: 1, Barrier: NopBarrier}
		w.runRange(env, strat.Thread(0), 32, 48)
	})
	m.Crash()

	reng := sim.New(sim.DefaultConfig(1), m)
	reng.Run(func(th *sim.Thread) {
		if f := w.RecoverFrontier(th); f != 32 {
			t.Errorf("frontier = %d, want 32 (levels 0,16 durable)", f)
		}
		// Complete the run.
		env := Env{C: th, Tid: 0, Threads: 1, Barrier: NopBarrier}
		w.RunFrom(env, strat.Thread(0), 32)
	})
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverLPPanicsOnWrongGranularity documents the recovery
// restriction to the paper's default ii granularity.
func TestRecoverLPPanicsOnWrongGranularity(t *testing.T) {
	m := memsim.NewMemory(32 << 20)
	w := NewTMMGran(m, 64, 16, 1, checksum.Modular, GranJJ)
	defer func() {
		if recover() == nil {
			t.Fatal("RecoverFrontier with jj granularity should panic")
		}
	}()
	c := &pmem.Native{Mem: m}
	w.RecoverFrontier(c)
}

// TestEagerLPRepairDurability: recovery work performed under the eager
// strategy survives an immediate second crash (the lazy tail is drained
// here; repairs themselves were already durable).
func TestEagerLPRepairDurability(t *testing.T) {
	m := memsim.NewMemory(32 << 20)
	w := NewConv2DIters(m, 32, 4, 3, 1, checksum.Modular)
	m.Crash() // nothing ever ran: recovery recomputes the whole kernel
	r := sim.New(sim.DefaultConfig(1), m)
	r.Run(func(th *sim.Thread) { w.RecoverLP(th) })
	r.Hier.DrainDirty(r.ExecCycles(), false)
	m.Crash()
	if err := w.Verify(m); err != nil {
		t.Fatalf("recovered-then-crashed conv2d wrong: %v", err)
	}
}
