package workloads

import (
	"fmt"
	"math"
	"sync"
)

// Request-driven (YCSB-style) workload generation for the KV store
// (internal/lpstore): seeded splitmix64 PRNG, zipfian or uniform key
// popularity, and read/update/insert mixes modeled on YCSB workloads
// A/B/C. Streams are deterministic functions of (seed, tid), so runs
// are byte-reproducible and crash recovery can regenerate the exact op
// stream a thread executed.
//
// Keys are hash-partitioned by construction: KVKey embeds the owning
// thread id, every thread draws only from its own partition, and each
// thread drives its own shard — the shared-nothing layout lpstore's
// shard layer expects.

// KVOpKind is the request type.
type KVOpKind uint8

// The three request kinds of the A/B/C mixes.
const (
	KVRead KVOpKind = iota
	KVUpdate
	KVInsert
)

// KVOp is one generated request. Key is always nonzero; Val is
// meaningful for updates and inserts.
type KVOp struct {
	Kind KVOpKind
	Key  uint64
	Val  uint64
}

// KVMix is a read/update/insert percentage mix (summing to 100).
type KVMix struct {
	Name   string
	Read   int
	Update int
	Insert int
}

// KVMixes returns the supported mixes: YCSB-A (update-heavy), YCSB-B
// (read-mostly), YCSB-C (read-only), and an insert-bearing "d" used to
// exercise insertion paths.
func KVMixes() []KVMix {
	return []KVMix{
		{Name: "a", Read: 50, Update: 50},
		{Name: "b", Read: 95, Update: 5},
		{Name: "c", Read: 100},
		{Name: "d", Read: 85, Update: 10, Insert: 5},
	}
}

// KVMixByName looks a mix up by name.
func KVMixByName(name string) (KVMix, bool) {
	for _, m := range KVMixes() {
		if m.Name == name {
			return m, true
		}
	}
	return KVMix{}, false
}

// KVKey encodes key idx of thread tid's partition. Nonzero for all
// tid, idx ≥ 0 (key 0 is lpstore's empty-slot sentinel).
func KVKey(tid, idx int) uint64 {
	return uint64(tid+1)<<40 | uint64(idx+1)
}

// KVInitVal is the deterministic preload value for a key.
func KVInitVal(seed, key uint64) uint64 {
	return splitmix(seed ^ 0xa5a5a5a5a5a5a5a5 ^ key)
}

// SplitMix64 is the splitmix64 output function — the one hash/PRNG
// step every deterministic workload in the repo builds on. Exported
// for internal/loadmodel, which must scramble ranks exactly the way
// KVGen does so spec-driven and closed-loop runs hit the same hot
// keys.
func SplitMix64(x uint64) uint64 { return splitmix(x) }

// ZipfSampler exposes the bounded scrambled-zipfian rank sampler —
// threshold table plus radix index, shared process-wide per (n, θ) —
// to other packages. Rank maps a 53-bit uniform draw k (u = k/2^53)
// to a popularity rank in [0, n); callers scramble the rank to a key
// index themselves.
type ZipfSampler struct{ z *zipfGen }

// NewZipfSampler builds (or re-uses, via the process-wide table
// cache) a sampler over n items with exponent theta ∈ (0, 1).
func NewZipfSampler(n int, theta float64) *ZipfSampler {
	return &ZipfSampler{z: newZipf(n, theta)}
}

// Rank maps a 53-bit uniform draw to its zipf rank. Safe for
// concurrent use: the underlying table is immutable after build.
func (s *ZipfSampler) Rank(k uint64) int { return s.z.rank53(k) }

// splitmix is the splitmix64 output function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KVGen generates one thread's request stream.
type KVGen struct {
	state   uint64
	mix     KVMix
	tid     int
	preload int
	ins     int // inserts issued so far
	zipf    *zipfGen
}

// NewKVGen builds the generator for thread tid over a preloaded
// per-thread keyspace of `preload` keys. dist is "zipfian" (YCSB's
// default, θ=0.99, scrambled) or "uniform".
func NewKVGen(seed uint64, tid, preload int, mix KVMix, dist string) *KVGen {
	g := &KVGen{
		state:   splitmix(seed) ^ splitmix(uint64(tid)*0x9e3779b97f4a7c15+1),
		mix:     mix,
		tid:     tid,
		preload: preload,
	}
	switch dist {
	case "zipfian":
		g.zipf = newZipf(preload, 0.99)
	case "uniform":
	default:
		panic(fmt.Sprintf("workloads: unknown key distribution %q", dist))
	}
	return g
}

// next returns the next raw PRNG word.
func (g *KVGen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	x := g.state
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pick draws a key index from the popularity distribution over the
// preloaded keyspace. Zipfian ranks are scrambled (hashed mod n) so the
// hot keys spread over the key range, as in YCSB's ScrambledZipfian.
func (g *KVGen) pick() int {
	r := g.next()
	if g.zipf == nil {
		return int(r % uint64(g.preload))
	}
	rank := g.zipf.rank53(r >> 11)
	return int(splitmix(uint64(rank)) % uint64(g.preload))
}

// Next generates the next request in the stream.
func (g *KVGen) Next() KVOp {
	p := int(g.next() % 100)
	switch {
	case p < g.mix.Read:
		return KVOp{Kind: KVRead, Key: KVKey(g.tid, g.pick())}
	case p < g.mix.Read+g.mix.Update:
		return KVOp{Kind: KVUpdate, Key: KVKey(g.tid, g.pick()), Val: g.next()}
	default:
		idx := g.preload + g.ins
		g.ins++
		return KVOp{Kind: KVInsert, Key: KVKey(g.tid, idx), Val: g.next()}
	}
}

// zipfGen is the bounded zipfian generator of Gray et al. ("Quickly
// generating billion-record synthetic databases", SIGMOD '94), the
// algorithm YCSB uses: O(n) precomputation of the zeta sum, O(1) per
// draw.
type zipfGen struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta

	// thr, when non-nil, is the threshold table replacing the per-draw
	// math.Pow: thr[j] is the smallest 53-bit draw k whose rankSlow
	// exceeds j, so rank53(k) is the count of entries ≤ k. Draws
	// arrive as u = k/2^53, an exact and strictly increasing function
	// of k, so thresholds over k capture the float mapping exactly; the
	// table is validated against rankSlow on a 64Ki-draw sample at
	// build time and discarded (thr=nil, slow path) on any mismatch.
	// bkt radix-indexes thr by the draw's top zipfBktBits bits —
	// bkt[b] is the first thr index at or past b<<zipfBktShift — so a
	// draw resolves with one bucket load and a step or two of scan.
	thr []uint64
	bkt []int32
}

// The bucket index splits the 53-bit draw space into 2^zipfBktBits
// equal slices; thresholds are at most a few per slice for any keyspace
// size the experiments use (their density is the rank function's slope,
// bounded well below one per slice around n ≈ 512).
const (
	zipfBktBits  = 12
	zipfBktShift = 53 - zipfBktBits
)

func newZipf(n int, theta float64) *zipfGen {
	if n < 1 {
		panic("workloads: zipf over empty keyspace")
	}
	z := &zipfGen{n: n, theta: theta}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.half = math.Pow(0.5, theta)
	zeta2 := 1 + z.half
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.thr, z.bkt = zipfThresholds(z)
	return z
}

// rankSlow maps a uniform u ∈ [0,1) to a zipf-distributed rank in
// [0, n): rank 0 is the most popular item. This is the Gray et al.
// arithmetic; rank53 answers draws from the threshold table and keeps
// this as reference and fallback.
func (z *zipfGen) rankSlow(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// rank53 maps a 53-bit uniform draw k (u = k/2^53) to its rank.
func (z *zipfGen) rank53(k uint64) int {
	thr := z.thr
	if thr == nil {
		return z.rankSlow(float64(k) / float64(1<<53))
	}
	j := int(z.bkt[k>>zipfBktShift])
	for j < len(thr) && thr[j] <= k {
		j++
	}
	return j
}

// zipfTableCache shares threshold tables between generators: every
// thread of a session — and every session of a sweep — draws from the
// same (n, theta) distribution, so the table is built once per process.
var zipfTableCache struct {
	sync.Mutex
	m map[zipfTableKey]zipfTable
}

type zipfTableKey struct {
	n     int
	theta float64
}

type zipfTable struct {
	thr []uint64
	bkt []int32
}

func zipfThresholds(z *zipfGen) ([]uint64, []int32) {
	key := zipfTableKey{n: z.n, theta: z.theta}
	c := &zipfTableCache
	c.Lock()
	defer c.Unlock()
	if t, ok := c.m[key]; ok {
		return t.thr, t.bkt
	}
	t := buildZipfThresholds(z)
	if c.m == nil {
		c.m = make(map[zipfTableKey]zipfTable)
	}
	c.m[key] = t
	return t.thr, t.bkt
}

// buildZipfThresholds computes, for each rank boundary v, the smallest
// 53-bit draw with rankSlow(k/2^53) ≥ v, then verifies the resulting
// table reproduces rankSlow on a fixed pseudo-random sample. rankSlow
// is non-decreasing on the draw grid up to float rounding of the Pow;
// the sample check catches a table corrupted by any such rounding
// wobble, in which case the empty table is returned and draws stay on
// rankSlow.
func buildZipfThresholds(z *zipfGen) zipfTable {
	const grid = uint64(1) << 53
	slow := func(k uint64) int { return z.rankSlow(float64(k) / float64(1<<53)) }
	thr := make([]uint64, 0, z.n-1)
	lo := uint64(0)
	for v := 1; v < z.n; v++ {
		a, b := lo, grid
		for a < b {
			mid := (a + b) / 2
			if slow(mid) >= v {
				b = mid
			} else {
				a = mid + 1
			}
		}
		if a == grid {
			break // ranks ≥ v are never drawn
		}
		thr = append(thr, a)
		lo = a
	}
	bkt := make([]int32, 1<<zipfBktBits)
	j := 0
	for b := range bkt {
		for j < len(thr) && thr[j] < uint64(b)<<zipfBktShift {
			j++
		}
		bkt[b] = int32(j)
	}
	saveThr, saveBkt := z.thr, z.bkt
	z.thr, z.bkt = thr, bkt
	ok := true
	s := uint64(0x6c62272e07bb0142) // fixed seed: the check must be deterministic
	for i := 0; i < 1<<16 && ok; i++ {
		s = splitmix(s)
		k := s >> 11
		ok = z.rank53(k) == slow(k)
	}
	for i := 0; i < len(thr) && ok; i++ {
		ok = z.rank53(thr[i]) == slow(thr[i])
		if ok && thr[i] > 0 {
			ok = z.rank53(thr[i]-1) == slow(thr[i]-1)
		}
	}
	z.thr, z.bkt = saveThr, saveBkt
	if !ok {
		return zipfTable{}
	}
	return zipfTable{thr: thr, bkt: bkt}
}
