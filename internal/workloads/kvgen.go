package workloads

import (
	"fmt"
	"math"
)

// Request-driven (YCSB-style) workload generation for the KV store
// (internal/lpstore): seeded splitmix64 PRNG, zipfian or uniform key
// popularity, and read/update/insert mixes modeled on YCSB workloads
// A/B/C. Streams are deterministic functions of (seed, tid), so runs
// are byte-reproducible and crash recovery can regenerate the exact op
// stream a thread executed.
//
// Keys are hash-partitioned by construction: KVKey embeds the owning
// thread id, every thread draws only from its own partition, and each
// thread drives its own shard — the shared-nothing layout lpstore's
// shard layer expects.

// KVOpKind is the request type.
type KVOpKind uint8

// The three request kinds of the A/B/C mixes.
const (
	KVRead KVOpKind = iota
	KVUpdate
	KVInsert
)

// KVOp is one generated request. Key is always nonzero; Val is
// meaningful for updates and inserts.
type KVOp struct {
	Kind KVOpKind
	Key  uint64
	Val  uint64
}

// KVMix is a read/update/insert percentage mix (summing to 100).
type KVMix struct {
	Name   string
	Read   int
	Update int
	Insert int
}

// KVMixes returns the supported mixes: YCSB-A (update-heavy), YCSB-B
// (read-mostly), YCSB-C (read-only), and an insert-bearing "d" used to
// exercise insertion paths.
func KVMixes() []KVMix {
	return []KVMix{
		{Name: "a", Read: 50, Update: 50},
		{Name: "b", Read: 95, Update: 5},
		{Name: "c", Read: 100},
		{Name: "d", Read: 85, Update: 10, Insert: 5},
	}
}

// KVMixByName looks a mix up by name.
func KVMixByName(name string) (KVMix, bool) {
	for _, m := range KVMixes() {
		if m.Name == name {
			return m, true
		}
	}
	return KVMix{}, false
}

// KVKey encodes key idx of thread tid's partition. Nonzero for all
// tid, idx ≥ 0 (key 0 is lpstore's empty-slot sentinel).
func KVKey(tid, idx int) uint64 {
	return uint64(tid+1)<<40 | uint64(idx+1)
}

// KVInitVal is the deterministic preload value for a key.
func KVInitVal(seed, key uint64) uint64 {
	return splitmix(seed ^ 0xa5a5a5a5a5a5a5a5 ^ key)
}

// splitmix is the splitmix64 output function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KVGen generates one thread's request stream.
type KVGen struct {
	state   uint64
	mix     KVMix
	tid     int
	preload int
	ins     int // inserts issued so far
	zipf    *zipfGen
}

// NewKVGen builds the generator for thread tid over a preloaded
// per-thread keyspace of `preload` keys. dist is "zipfian" (YCSB's
// default, θ=0.99, scrambled) or "uniform".
func NewKVGen(seed uint64, tid, preload int, mix KVMix, dist string) *KVGen {
	g := &KVGen{
		state:   splitmix(seed) ^ splitmix(uint64(tid)*0x9e3779b97f4a7c15+1),
		mix:     mix,
		tid:     tid,
		preload: preload,
	}
	switch dist {
	case "zipfian":
		g.zipf = newZipf(preload, 0.99)
	case "uniform":
	default:
		panic(fmt.Sprintf("workloads: unknown key distribution %q", dist))
	}
	return g
}

// next returns the next raw PRNG word.
func (g *KVGen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	x := g.state
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pick draws a key index from the popularity distribution over the
// preloaded keyspace. Zipfian ranks are scrambled (hashed mod n) so the
// hot keys spread over the key range, as in YCSB's ScrambledZipfian.
func (g *KVGen) pick() int {
	r := g.next()
	if g.zipf == nil {
		return int(r % uint64(g.preload))
	}
	rank := g.zipf.rank(float64(r>>11) / float64(1<<53))
	return int(splitmix(uint64(rank)) % uint64(g.preload))
}

// Next generates the next request in the stream.
func (g *KVGen) Next() KVOp {
	p := int(g.next() % 100)
	switch {
	case p < g.mix.Read:
		return KVOp{Kind: KVRead, Key: KVKey(g.tid, g.pick())}
	case p < g.mix.Read+g.mix.Update:
		return KVOp{Kind: KVUpdate, Key: KVKey(g.tid, g.pick()), Val: g.next()}
	default:
		idx := g.preload + g.ins
		g.ins++
		return KVOp{Kind: KVInsert, Key: KVKey(g.tid, idx), Val: g.next()}
	}
}

// zipfGen is the bounded zipfian generator of Gray et al. ("Quickly
// generating billion-record synthetic databases", SIGMOD '94), the
// algorithm YCSB uses: O(n) precomputation of the zeta sum, O(1) per
// draw.
type zipfGen struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta
}

func newZipf(n int, theta float64) *zipfGen {
	if n < 1 {
		panic("workloads: zipf over empty keyspace")
	}
	z := &zipfGen{n: n, theta: theta}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.half = math.Pow(0.5, theta)
	zeta2 := 1 + z.half
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// rank maps a uniform u ∈ [0,1) to a zipf-distributed rank in [0, n):
// rank 0 is the most popular item.
func (z *zipfGen) rank(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
