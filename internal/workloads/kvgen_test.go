package workloads

import "testing"

func TestKVGenDeterminism(t *testing.T) {
	mix, _ := KVMixByName("a")
	for _, dist := range []string{"zipfian", "uniform"} {
		a := NewKVGen(7, 3, 128, mix, dist)
		b := NewKVGen(7, 3, 128, mix, dist)
		for i := 0; i < 2000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%s: streams diverge at op %d", dist, i)
			}
		}
	}
}

func TestKVGenSeedsVary(t *testing.T) {
	mix, _ := KVMixByName("a")
	a := NewKVGen(7, 0, 128, mix, "uniform")
	b := NewKVGen(8, 0, 128, mix, "uniform")
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("different seeds produced %d/200 identical ops", same)
	}
}

func TestKVGenMixProportions(t *testing.T) {
	for _, mix := range KVMixes() {
		g := NewKVGen(1, 0, 1024, mix, "zipfian")
		const n = 20000
		counts := map[KVOpKind]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Kind]++
		}
		check := func(kind KVOpKind, pct int) {
			got := 100 * float64(counts[kind]) / n
			if got < float64(pct)-2 || got > float64(pct)+2 {
				t.Fatalf("mix %s: kind %d at %.1f%%, want ~%d%%", mix.Name, kind, got, pct)
			}
		}
		check(KVRead, mix.Read)
		check(KVUpdate, mix.Update)
		check(KVInsert, mix.Insert)
	}
}

func TestKVGenPartitionAndSentinel(t *testing.T) {
	mix, _ := KVMixByName("d")
	seen := map[uint64]int{}
	for tid := 0; tid < 4; tid++ {
		g := NewKVGen(5, tid, 64, mix, "zipfian")
		for i := 0; i < 1000; i++ {
			op := g.Next()
			if op.Key == 0 {
				t.Fatal("generated the empty-slot sentinel key")
			}
			if prev, ok := seen[op.Key]; ok && prev != tid {
				t.Fatalf("key %#x drawn by threads %d and %d", op.Key, prev, tid)
			}
			seen[op.Key] = tid
		}
	}
}

func TestKVGenInsertsAreFresh(t *testing.T) {
	mix, _ := KVMixByName("d")
	g := NewKVGen(9, 0, 64, mix, "uniform")
	inserted := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind != KVInsert {
			continue
		}
		if op.Key <= KVKey(0, 63) {
			t.Fatalf("insert reused preloaded key %#x", op.Key)
		}
		if inserted[op.Key] {
			t.Fatalf("insert reused key %#x", op.Key)
		}
		inserted[op.Key] = true
	}
	if len(inserted) == 0 {
		t.Fatal("mix d produced no inserts")
	}
}

// TestKVGenZipfSkew: under the scrambled zipfian the hottest key must
// be drawn far more often than the uniform expectation.
func TestKVGenZipfSkew(t *testing.T) {
	mix, _ := KVMixByName("c") // read-only: every op draws from the distribution
	const n, ops = 1024, 50000
	counts := map[uint64]int{}
	g := NewKVGen(2, 0, n, mix, "zipfian")
	for i := 0; i < ops; i++ {
		counts[g.Next().Key]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniform := float64(ops) / n
	if float64(maxCount) < 10*uniform {
		t.Fatalf("hottest key drawn %d times; want >> uniform expectation %.0f", maxCount, uniform)
	}
}

func TestKVGenUnknownDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown distribution should panic")
		}
	}()
	NewKVGen(1, 0, 16, KVMix{Name: "a", Read: 100}, "latest")
}

func TestKVMixByName(t *testing.T) {
	if _, ok := KVMixByName("a"); !ok {
		t.Fatal("mix a missing")
	}
	if _, ok := KVMixByName("zz"); ok {
		t.Fatal("unknown mix found")
	}
	for _, m := range KVMixes() {
		if m.Read+m.Update+m.Insert != 100 {
			t.Fatalf("mix %s percentages sum to %d", m.Name, m.Read+m.Update+m.Insert)
		}
	}
}

// TestZipfTableMatchesSlowPath pins the threshold-table fast path to
// the Gray et al. arithmetic it replaces: for several keyspace sizes,
// every draw of a large pseudo-random sample must rank identically
// through the table and through rankSlow. A mismatch means generated
// key streams — and with them every kv experiment output — changed.
func TestZipfTableMatchesSlowPath(t *testing.T) {
	for _, n := range []int{1, 2, 3, 100, 512, 4096} {
		z := newZipf(n, 0.99)
		if z.thr == nil && n > 1 {
			t.Errorf("n=%d: threshold table failed its build-time validation", n)
		}
		s := uint64(12345)
		for i := 0; i < 200000; i++ {
			s = splitmix(s)
			k := s >> 11
			got := z.rank53(k)
			want := z.rankSlow(float64(k) / float64(1<<53))
			if got != want {
				t.Fatalf("n=%d k=%d: table rank %d, slow rank %d", n, k, got, want)
			}
		}
	}
}
