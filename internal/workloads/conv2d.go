package workloads

import (
	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// Conv2D is an iterative 2-D convolution: a 3×3 kernel is applied to an
// n×n image repeatedly (Iters smoothing passes), ping-ponging between
// two buffers — the structure behind the paper's 2D-conv benchmark,
// whose simulation window is "5 iterations of the outer loop, about 4%
// of the running-time" (§V-C). The pristine input is kept read-only;
// pass 0 reads it, later passes alternate between the A and B work
// buffers. Borders use zero padding.
//
// The LP region is (pass, row block). Within a pass every region is
// write-once, but a pass's source buffer is overwritten two passes
// later, so — exactly as with FFT — recovery regenerates
// deterministically from the pristine input through the furthest pass
// that left a durable trace, then resumes lazily.
type Conv2D struct {
	N         int
	BlockRows int
	Iters     int
	Thr       int

	In   pmem.Matrix // pristine input, read-only
	A, B pmem.Matrix // ping-pong buffers
	K    pmem.Matrix // 3×3 kernel
	tab  *lp.Table
	kind checksum.Kind
}

// NewConv2D allocates and durably initializes the input, kernel, work
// buffers, and checksum table. iters is the number of smoothing passes
// (0 picks the default of 12).
func NewConv2D(m *memsim.Memory, n, blockRows, threads int, kind checksum.Kind) *Conv2D {
	return NewConv2DIters(m, n, blockRows, 12, threads, kind)
}

// NewConv2DIters is NewConv2D with an explicit pass count.
func NewConv2DIters(m *memsim.Memory, n, blockRows, iters, threads int, kind checksum.Kind) *Conv2D {
	w := &Conv2D{N: n, BlockRows: blockRows, Iters: iters, Thr: threads, kind: kind}
	w.In = pmem.AllocMatrix(m, "conv.in", n)
	w.A = pmem.AllocMatrix(m, "conv.a", n)
	w.B = pmem.AllocMatrix(m, "conv.b", n)
	w.K = pmem.AllocMatrix(m, "conv.k", 3)
	w.In.Fill(m, func(i, j int) float64 { return fillValue(5, i, j) })
	w.A.Fill(m, func(i, j int) float64 { return 0 })
	w.B.Fill(m, func(i, j int) float64 { return 0 })
	// A mild smoothing kernel keeps repeated passes numerically tame.
	w.K.Fill(m, func(i, j int) float64 { return fillValue(6, i, j) / 8 })
	w.tab = lp.NewTable(m, "conv.cksums", w.Regions())
	return w
}

// Name implements Workload.
func (w *Conv2D) Name() string { return "conv2d" }

// Table implements Workload.
func (w *Conv2D) Table() *lp.Table { return w.tab }

// blocks returns the number of row blocks per pass.
func (w *Conv2D) blocks() int { return (w.N + w.BlockRows - 1) / w.BlockRows }

// Regions implements Workload.
func (w *Conv2D) Regions() int { return w.Iters * w.blocks() }

func (w *Conv2D) slot(pass, block int) int { return pass*w.blocks() + block }

// dst returns the buffer pass writes; src the buffer it reads.
func (w *Conv2D) dst(pass int) pmem.Matrix {
	if pass%2 == 0 {
		return w.A
	}
	return w.B
}

func (w *Conv2D) src(pass int) pmem.Matrix {
	if pass == 0 {
		return w.In
	}
	return w.dst(pass - 1)
}

// Result returns the buffer holding the final image after a full run.
func (w *Conv2D) Result() pmem.Matrix { return w.dst(w.Iters - 1) }

// blockBody computes one pass's output rows [i0, i0+BlockRows) inside an
// open region.
func (w *Conv2D) blockBody(c pmem.Ctx, ts lp.ThreadStrategy, pass, block int) {
	n := w.N
	src, dst := w.src(pass), w.dst(pass)
	i0 := block * w.BlockRows
	i1 := i0 + w.BlockRows
	if i1 > n {
		i1 = n
	}
	for i := i0; i < i1; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for di := -1; di <= 1; di++ {
				ii := i + di
				if ii < 0 || ii >= n {
					continue
				}
				for dj := -1; dj <= 1; dj++ {
					jj := j + dj
					if jj < 0 || jj >= n {
						continue
					}
					sum += src.Load(c, ii, jj) * w.K.Load(c, di+1, dj+1)
					c.Compute(2)
				}
			}
			ts.StoreF(c, dst.Addr(i, j), sum)
		}
	}
}

// Run implements Workload: row blocks are distributed round-robin; a
// barrier separates passes (pass p reads rows of pass p−1 owned by
// neighboring threads).
func (w *Conv2D) Run(env Env, ts lp.ThreadStrategy) {
	w.RunWindow(env, ts, 0)
}

// RunWindow implements Workload: the first `outer` passes.
func (w *Conv2D) RunWindow(env Env, ts lp.ThreadStrategy, outer int) {
	end := w.Iters
	if outer > 0 && outer < end {
		end = outer
	}
	for pass := 0; pass < end; pass++ {
		for block := env.Tid; block < w.blocks(); block += env.Threads {
			ts.Begin(env.C, w.slot(pass, block))
			w.blockBody(env.C, ts, pass, block)
			ts.End(env.C)
		}
		env.Barrier()
	}
}

// regionSum recomputes a region's checksum from the pass's output.
func (w *Conv2D) regionSum(c pmem.Ctx, pass, block int) uint64 {
	n := w.N
	dst := w.dst(pass)
	i0 := block * w.BlockRows
	i1 := i0 + w.BlockRows
	if i1 > n {
		i1 = n
	}
	s := lp.NewRegionSummer(w.kind)
	for i := i0; i < i1; i++ {
		for j := 0; j < n; j++ {
			s.Add(c, c.Load64(dst.Addr(i, j)))
		}
	}
	return s.Sum()
}

// RecoverLP implements Workload: regenerate passes 0..pTop (the
// furthest pass with any written region slot) eagerly from the pristine
// input, then complete the remaining passes lazily. Regeneration is
// bit-deterministic, so the pass-pTop checksums certify the recovered
// state.
func (w *Conv2D) RecoverLP(c pmem.Ctx) {
	pTop := -1
	for pass := 0; pass < w.Iters; pass++ {
		for block := 0; block < w.blocks(); block++ {
			if w.tab.Written(c, w.slot(pass, block)) {
				pTop = pass
				break
			}
		}
	}

	eager := ep.NewEagerLP(w.tab, w.kind, 1)
	for pass := 0; pass <= pTop; pass++ {
		for block := 0; block < w.blocks(); block++ {
			ts := eager.Thread(0)
			ts.Begin(c, w.slot(pass, block))
			w.blockBody(c, ts, pass, block)
			ts.End(c)
		}
	}

	lazy := lp.NewLP(w.tab, w.kind, 1)
	for pass := pTop + 1; pass < w.Iters; pass++ {
		for block := 0; block < w.blocks(); block++ {
			ts := lazy.Thread(0)
			ts.Begin(c, w.slot(pass, block))
			w.blockBody(c, ts, pass, block)
			ts.End(c)
		}
	}
}

// Verify implements Workload: independent iterative reference with the
// same accumulation order (bitwise).
func (w *Conv2D) Verify(m *memsim.Memory) error {
	n := w.N
	cur := w.In.Snapshot(m)
	k := w.K.Snapshot(m)
	got := w.Result().Snapshot(m)
	next := make([]float64, n*n)
	for pass := 0; pass < w.Iters; pass++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for di := -1; di <= 1; di++ {
					ii := i + di
					if ii < 0 || ii >= n {
						continue
					}
					for dj := -1; dj <= 1; dj++ {
						jj := j + dj
						if jj < 0 || jj >= n {
							continue
						}
						sum += cur[ii*n+jj] * k[(di+1)*3+(dj+1)]
					}
				}
				next[i*n+j] = sum
			}
		}
		cur, next = next, cur
	}
	return verifyClose("conv2d", got, cur, 0)
}
