// Package workloads implements the paper's five benchmark kernels —
// tiled matrix multiplication (TMM), Cholesky decomposition, 2-D
// convolution, Gaussian elimination, and FFT (§V-C, Table V) — written
// once against the pmem.Ctx interface and parameterized by an
// lp.Strategy, so the same source runs as:
//
//   - base — no failure safety,
//   - lp   — Lazy Persistency (the paper's technique),
//   - ep   — EagerRecompute (the state-of-the-art eager baseline),
//   - wal  — PMEM write-ahead-logging durable transactions.
//
// Each workload also implements the recovery code its LP regions need
// (§III-E, §IV): detection by checksum revalidation and repair by
// recomputation, always performed with Eager Persistency so recovery
// itself makes forward progress. DESIGN.md §5 documents the recovery
// design per workload.
package workloads

import (
	"fmt"
	"math"

	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// Env is the per-thread execution environment a kernel runs in.
type Env struct {
	C       pmem.Ctx
	Tid     int
	Threads int
	// Barrier synchronizes all participating threads at a phase
	// boundary; single-threaded environments pass a no-op.
	Barrier func()
}

// NopBarrier is the barrier for single-threaded environments.
func NopBarrier() {}

// Workload is one benchmark instance bound to its persistent data.
type Workload interface {
	// Name is the benchmark's short name as used in the paper's
	// figures ("tmm", "cholesky", "conv2d", "gauss", "fft").
	Name() string
	// Regions is the number of LP regions (checksum-table slots).
	Regions() int
	// Table is the workload's checksum table.
	Table() *lp.Table
	// Run executes the thread's share of the kernel under ts.
	Run(env Env, ts lp.ThreadStrategy)
	// RunWindow executes only the first `outer` outer-loop units
	// (kk blocks, columns, row blocks, elimination steps, or FFT
	// stages), reproducing the paper's fixed-work simulation windows
	// (§V-C). outer <= 0 means the full kernel.
	RunWindow(env Env, ts lp.ThreadStrategy, outer int)
	// RecoverLP performs post-crash detection, repair, and completion
	// for a run that used the LP strategy. Single-threaded; after it
	// returns, the architectural output is complete and correct and
	// every repair it performed is durably persisted.
	RecoverLP(c pmem.Ctx)
	// Verify checks the architectural output against an independently
	// computed reference; it returns nil when correct.
	Verify(m *memsim.Memory) error
}

// verifyClose compares got against want elementwise with a relative
// tolerance (exact-equality workloads pass tol = 0).
func verifyClose(name string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length mismatch got %d want %d", name, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g == w {
			continue
		}
		scale := math.Max(math.Abs(g), math.Abs(w))
		if math.Abs(g-w) <= tol*scale {
			continue
		}
		return fmt.Errorf("%s: element %d differs: got %v want %v (tol %v)", name, i, g, w, tol)
	}
	return nil
}

// fillValue is the deterministic pseudo-random input generator shared by
// all workloads: values in roughly [-1, 1], reproducible, cheap.
func fillValue(seed, i, j int) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + uint64(j)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	// Map the top 53 bits to [0,1), then shift to [-1,1).
	return float64(x>>11)/float64(1<<53)*2 - 1
}
