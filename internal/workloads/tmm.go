package workloads

import (
	"fmt"

	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// Granularity selects the LP region size for TMM. The paper's §IV picks
// the ii iteration; jj and kk exist for the granularity ablation
// (smaller regions cost more checksum traffic, larger regions lose more
// work on a failure). Recovery is implemented for the paper's choice.
type Granularity uint8

const (
	// GranII — one region per (kk, ii) pair, the paper's default.
	GranII Granularity = iota
	// GranJJ — one region per (kk, ii, jj) triple (finer).
	GranJJ
	// GranKK — one region per (kk, thread) pair (coarser).
	GranKK
)

// TMM is tiled matrix multiplication C = A×B (§II-B, Figure 4) with the
// 6-loop tiling of Wolf & Lam, extended with Lazy Persistency exactly as
// the paper's Figure 8: the LP region is one ii iteration; the checksum
// key combines ii and kk; the standalone table is collision-free.
//
// Work partitioning: within each kk step, the ii tiles are distributed
// round-robin over the threads. A tile row band belongs to one thread
// for the whole run, so regions of different threads never store to the
// same element; the checksum key combines ii, kk, and the (partition-
// implied) thread id exactly as §III-D sizes the table — N²P/bsize²
// slots, collision-free, about 1% of the matrices.
type TMM struct {
	N    int // matrix dimension
	Bs   int // tile (blocking) size; paper: 16
	Thr  int
	Gran Granularity

	// ElementTx wraps every output element in its own durable
	// transaction, the paper's Figure 2 structure. Only meaningful with
	// the WAL strategy; region keys then identify (region, element) so
	// recovery can resume mid-region.
	ElementTx bool

	A, B, C pmem.Matrix
	tab     *lp.Table
	kind    checksum.Kind
}

// NewTMM allocates the three matrices and the checksum table, durably
// initializes A and B with deterministic pseudo-random inputs and C with
// zeros, and returns the ready-to-run workload.
func NewTMM(m *memsim.Memory, n, bs, threads int, kind checksum.Kind) *TMM {
	return NewTMMGran(m, n, bs, threads, kind, GranII)
}

// NewTMMGran is NewTMM with an explicit region granularity (ablation).
func NewTMMGran(m *memsim.Memory, n, bs, threads int, kind checksum.Kind, g Granularity) *TMM {
	return newTMM(m, n, bs, threads, kind, g, false)
}

// NewTMMEmbedded is NewTMM with the *embedded* checksum organization of
// the paper's Figure 7(a): instead of the dense standalone table, each
// region's checksum lives scattered through the matrix address range
// (one slot per tile-row stride), occupying N²P/bsize of space — the
// layout §III-D rejects for its space overhead and cache behavior. Kept
// as an ablation (BenchmarkAblationEmbeddedTable).
func NewTMMEmbedded(m *memsim.Memory, n, bs, threads int, kind checksum.Kind) *TMM {
	return newTMM(m, n, bs, threads, kind, GranII, true)
}

func newTMM(m *memsim.Memory, n, bs, threads int, kind checksum.Kind, g Granularity, embedded bool) *TMM {
	if n%bs != 0 {
		panic(fmt.Sprintf("workloads: TMM n=%d not divisible by bs=%d", n, bs))
	}
	w := &TMM{N: n, Bs: bs, Thr: threads, Gran: g, kind: kind}
	w.A = pmem.AllocMatrix(m, "tmm.a", n)
	w.B = pmem.AllocMatrix(m, "tmm.b", n)
	w.C = pmem.AllocMatrix(m, "tmm.c", n)
	w.A.Fill(m, func(i, j int) float64 { return fillValue(1, i, j) })
	w.B.Fill(m, func(i, j int) float64 { return fillValue(2, i, j) })
	w.C.Fill(m, func(i, j int) float64 { return 0 })
	if embedded {
		w.tab = lp.NewTableStrided(m, "tmm.cksums.embedded", w.Regions(), bs)
	} else {
		w.tab = lp.NewTable(m, "tmm.cksums", w.Regions())
	}
	return w
}

// Name implements Workload.
func (w *TMM) Name() string { return "tmm" }

// Table implements Workload.
func (w *TMM) Table() *lp.Table { return w.tab }

// Kind returns the checksum code the workload was built with.
func (w *TMM) Kind() checksum.Kind { return w.kind }

// tiles returns the number of tiles per dimension.
func (w *TMM) tiles() int { return w.N / w.Bs }

// Regions implements Workload. The default (ii) granularity follows the
// paper's sizing exactly: N/bsize × N/bsize × P slots — "ii, kk, and
// thread ID form the key", eliminating collisions — which §III-D notes
// is about 1% of the size of the matrices.
func (w *TMM) Regions() int {
	t := w.tiles()
	switch w.Gran {
	case GranJJ:
		return t * t * t
	case GranKK:
		return t * w.Thr
	default:
		return t * t * w.Thr
	}
}

// slot is GetHashIndex of the paper's Figure 8: the collision-free
// checksum-table index of region (kk, ii). The owning thread of an ii
// tile is implied by the round-robin partition, so the key includes it
// deterministically.
func (w *TMM) slot(kk, ii int) int {
	iiT := ii / w.Bs
	return ((kk/w.Bs)*w.tiles()+iiT)*w.Thr + iiT%w.Thr
}

// slotDecode inverts slot, returning the region's (kk, ii).
func (w *TMM) slotDecode(slot int) (kk, ii int) {
	v := slot / w.Thr
	return (v / w.tiles()) * w.Bs, (v % w.tiles()) * w.Bs
}

// slotJJ is the finer-granularity key (kk, ii, jj).
func (w *TMM) slotJJ(kk, ii, jj int) int {
	t := w.tiles()
	return ((kk/w.Bs)*t+ii/w.Bs)*t + jj/w.Bs
}

// Run implements Workload: the paper's Figure 8 with the strategy
// supplying ResetCheckSum / UpdateCheckSum / table-store behavior.
func (w *TMM) Run(env Env, ts lp.ThreadStrategy) {
	w.RunFrom(env, ts, 0)
}

// RunWindow implements Workload: simulate the first `outer` kk blocks
// (the paper's TMM window is two kk iterations, §V-C).
func (w *TMM) RunWindow(env Env, ts lp.ThreadStrategy, outer int) {
	end := w.N
	if outer > 0 && outer*w.Bs < end {
		end = outer * w.Bs
	}
	w.runRange(env, ts, 0, end)
}

// RunFrom executes all regions with kk >= startKK (RunFrom(env, ts, 0)
// is a full run; recovery resumes from the repaired frontier).
func (w *TMM) RunFrom(env Env, ts lp.ThreadStrategy, startKK int) {
	w.runRange(env, ts, startKK, w.N)
}

func (w *TMM) runRange(env Env, ts lp.ThreadStrategy, startKK, endKK int) {
	bs := w.Bs
	for kk := startKK; kk < endKK; kk += bs {
		if w.Gran == GranKK && !w.ElementTx {
			ts.Begin(env.C, (kk/bs)*w.Thr+env.Tid)
		}
		for iiT := env.Tid; iiT < w.tiles(); iiT += env.Threads {
			ii := iiT * bs
			if w.Gran == GranII && !w.ElementTx {
				ts.Begin(env.C, w.slot(kk, ii))
			}
			w.runII(env, ts, kk, ii, 0)
			if w.Gran == GranII && !w.ElementTx {
				ts.End(env.C)
			}
		}
		if w.Gran == GranKK && !w.ElementTx {
			ts.End(env.C)
		}
	}
}

// elemsPerRegion is the number of output elements one (kk, ii) region
// stores.
func (w *TMM) elemsPerRegion() int { return w.Bs * w.N }

// elemKeyBase returns the first element-transaction key of region
// (kk, ii) in thread tid's program order (ElementTx mode).
func (w *TMM) elemKeyBase(tid, kk, ii int) int {
	ord := 0
	for _, r := range w.threadRegions(tid) {
		if r[0] == kk && r[1] == ii {
			break
		}
		ord++
	}
	return ord * w.elemsPerRegion()
}

// runII is the body of one ii iteration: the partial product of tile row
// band [ii, ii+bs) accumulated over the kk-th block of the inner
// dimension, across all jj tiles. In ElementTx mode each element is its
// own durable transaction (Figure 2) and the first `skip` elements —
// already durably committed before a crash — are not re-executed.
func (w *TMM) runII(env Env, ts lp.ThreadStrategy, kk, ii, skip int) {
	c := env.C
	n, bs := w.N, w.Bs
	ord := 0
	keyBase := 0
	if w.ElementTx {
		keyBase = w.elemKeyBase(env.Tid, kk, ii)
	}
	for jj := 0; jj < n; jj += bs {
		if w.Gran == GranJJ && !w.ElementTx {
			ts.Begin(c, w.slotJJ(kk, ii, jj))
		}
		for i := ii; i < ii+bs; i++ {
			for j := jj; j < jj+bs; j++ {
				if w.ElementTx && ord < skip {
					ord++
					continue
				}
				sum := w.C.Load(c, i, j)
				for k := kk; k < kk+bs; k++ {
					sum += w.A.Load(c, i, k) * w.B.Load(c, k, j)
					c.Compute(2)
				}
				if w.ElementTx {
					ts.Begin(c, keyBase+ord)
				}
				ts.StoreF(c, w.C.Addr(i, j), sum)
				if w.ElementTx {
					ts.End(c)
				}
				ord++
			}
		}
		if w.Gran == GranJJ && !w.ElementTx {
			ts.End(c)
		}
	}
}

// regionSum recomputes the checksum of region (·, ii) from the values
// currently in C, folding them in the exact store order of runII
// (IsMatchingChecksum's recomputation half, Figure 9).
func (w *TMM) regionSum(c pmem.Ctx, ii int) uint64 {
	n, bs := w.N, w.Bs
	s := lp.NewRegionSummer(w.kind)
	for jj := 0; jj < n; jj += bs {
		for i := ii; i < ii+bs; i++ {
			for j := jj; j < jj+bs; j++ {
				s.Add(c, c.Load64(w.C.Addr(i, j)))
			}
		}
	}
	return s.Sum()
}

// Matches is IsMatchingChecksum(ii, kk) of Figure 9: does the stored
// checksum for region (kk, ii) equal one recomputed from the data now in
// C? Exported for recovery diagnostics and tests.
func (w *TMM) Matches(c pmem.Ctx, ii, kk int) bool {
	return w.tab.Matches(c, w.slot(kk, ii), w.regionSum(c, ii))
}

// repair restores tile row band ii to its state after the kk-th block
// (Repair(ii, kk) of Figure 9), persists the rows eagerly, and durably
// re-commits the region's checksum.
//
// It applies the optimization §IV describes: "Instead of assuming that
// we must recover from the beginning, we can look for a prior kk
// iteration for the same ii block that does match its checksum. If one
// exists, we can recompute the difference rather than recomputing from
// the beginning." The tile's durable data at a matching prior level is
// the exact partial sum normal execution held there, so continuing the
// accumulation from that level is bit-identical to a from-scratch
// recompute (k ascends through the same sequence of additions).
func (w *TMM) repair(c pmem.Ctx, ii, kk int) {
	n, bs := w.N, w.Bs
	kEnd := kk + bs

	// Find the latest prior consistent level for this tile.
	kStart := 0
	for prior := kk - bs; prior >= 0; prior -= bs {
		if w.Matches(c, ii, prior) {
			kStart = prior + bs
			break
		}
	}

	for i := ii; i < ii+bs; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			if kStart > 0 {
				sum = w.C.Load(c, i, j) // durable partial sum at kStart-bs
			}
			for k := kStart; k < kEnd; k++ {
				sum += w.A.Load(c, i, k) * w.B.Load(c, k, j)
				c.Compute(2)
			}
			c.StoreF(w.C.Addr(i, j), sum)
		}
		ep.PersistRange(c, w.C.Addr(i, 0), n*pmem.WordSize)
	}
	c.Fence()
	w.tab.StoreSumEager(c, w.slot(kk, ii), w.regionSum(c, ii))
}

// zeroTile durably resets tile row band ii to zero (full restart).
func (w *TMM) zeroTile(c pmem.Ctx, ii int) {
	n, bs := w.N, w.Bs
	for i := ii; i < ii+bs; i++ {
		for j := 0; j < n; j++ {
			c.StoreF(w.C.Addr(i, j), 0)
		}
		ep.PersistRange(c, w.C.Addr(i, 0), n*pmem.WordSize)
	}
	c.Fence()
}

// RecoverFrontier is the detection-and-repair pass of the paper's
// Figure 9: scan kk from the last block downward; at the highest kk
// where any region's checksum matches, repair every mismatched region
// at that kk and return kk+bs as the block where normal execution
// resumes. If no region matches anywhere, C is durably zeroed and
// execution restarts from block 0.
func (w *TMM) RecoverFrontier(c pmem.Ctx) (resumeKK int) {
	if w.Gran != GranII {
		panic("workloads: TMM recovery requires the default ii granularity")
	}
	n, bs := w.N, w.Bs
	for kk := n - bs; kk >= 0; kk -= bs {
		found := false
		for goodII := 0; goodII < n; goodII += bs {
			if w.Matches(c, goodII, kk) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		for ii := 0; ii < n; ii += bs {
			if !w.Matches(c, ii, kk) {
				w.repair(c, ii, kk)
			}
		}
		return kk + bs
	}
	// Nothing persisted consistently: restart from scratch.
	for ii := 0; ii < n; ii += bs {
		w.zeroTile(c, ii)
	}
	return 0
}

// RecoverLP implements Workload: repair per Figure 9, then complete the
// remaining blocks by resuming normal (lazy) execution single-threaded.
func (w *TMM) RecoverLP(c pmem.Ctx) {
	resume := w.RecoverFrontier(c)
	if resume >= w.N {
		return
	}
	s := lp.NewLP(w.tab, w.kind, 1)
	env := Env{C: c, Tid: 0, Threads: 1, Barrier: NopBarrier}
	w.RunFrom(env, s.Thread(0), resume)
}

// threadRegions enumerates thread tid's regions in program order as
// (kk, ii) pairs — the order Run executes them and the order
// EagerRecompute's and WAL's progress markers advance through.
func (w *TMM) threadRegions(tid int) [][2]int {
	var out [][2]int
	for kk := 0; kk < w.N; kk += w.Bs {
		for iiT := tid; iiT < w.tiles(); iiT += w.Thr {
			out = append(out, [2]int{kk, iiT * w.Bs})
		}
	}
	return out
}

// rollbackTile restores tile row band ii to its state before block kk
// (recompute from scratch through kk-bs), durably. Used by the eager
// schemes to discard a partially-persisted in-flight region.
func (w *TMM) rollbackTile(c pmem.Ctx, ii, kk int) {
	if kk == 0 {
		w.zeroTile(c, ii)
		return
	}
	n, bs := w.N, w.Bs
	for i := ii; i < ii+bs; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < kk; k++ {
				sum += w.A.Load(c, i, k) * w.B.Load(c, k, j)
				c.Compute(2)
			}
			c.StoreF(w.C.Addr(i, j), sum)
		}
		ep.PersistRange(c, w.C.Addr(i, 0), n*pmem.WordSize)
	}
	c.Fence()
}

// RecoverEP is EagerRecompute's recovery: per thread, the progress
// marker names the last fully-persisted region; the next region may be
// partially persisted and is rolled back by recomputation; then the
// thread's remaining regions re-execute eagerly.
func (w *TMM) RecoverEP(c pmem.Ctx, rec *ep.Recompute) {
	for tid := 0; tid < w.Thr; tid++ {
		regions := w.threadRegions(tid)
		next := 0
		if mk := rec.Markers.Load(c, tid); mk != ep.MarkerNone {
			kk, ii := w.slotDecode(int(mk))
			for idx, r := range regions {
				if r[0] == kk && r[1] == ii {
					next = idx + 1
					break
				}
			}
		}
		if next < len(regions) {
			r := regions[next]
			w.rollbackTile(c, r[1], r[0])
		}
		ts := rec.Thread(tid)
		envC := Env{C: c, Tid: tid, Threads: w.Thr, Barrier: NopBarrier}
		for _, r := range regions[next:] {
			ts.Begin(envC.C, w.slot(r[0], r[1]))
			w.runII(envC, ts, r[0], r[1], 0)
			ts.End(envC.C)
		}
	}
}

// RecoverWAL is the durable-transaction recovery: roll back any
// in-flight transaction from its undo log, then re-execute the thread's
// remaining work under WAL. In ElementTx mode the status key identifies
// the exact element, so execution resumes mid-region, skipping elements
// whose transactions committed (re-executing them would double-
// accumulate).
func (w *TMM) RecoverWAL(c pmem.Ctx, wal *ep.WAL) {
	for tid := 0; tid < w.Thr; tid++ {
		regions := w.threadRegions(tid)
		nextRegion, skip := 0, 0
		key, inTx, ok := wal.WALRecover(c, tid)
		if ok {
			if w.ElementTx {
				nextRegion = key / w.elemsPerRegion()
				skip = key % w.elemsPerRegion() // rolled back: redo it
				if !inTx {
					skip++ // committed: resume after it
					if skip == w.elemsPerRegion() {
						nextRegion++
						skip = 0
					}
				}
			} else {
				kk, ii := w.slotDecode(key)
				for idx, r := range regions {
					if r[0] == kk && r[1] == ii {
						nextRegion = idx
						if !inTx {
							nextRegion = idx + 1
						}
						break
					}
				}
			}
		}
		ts := wal.Thread(tid)
		env := Env{C: c, Tid: tid, Threads: w.Thr, Barrier: NopBarrier}
		for ri := nextRegion; ri < len(regions); ri++ {
			r := regions[ri]
			s := 0
			if ri == nextRegion {
				s = skip
			}
			if !w.ElementTx {
				ts.Begin(c, w.slot(r[0], r[1]))
			}
			w.runII(env, ts, r[0], r[1], s)
			if !w.ElementTx {
				ts.End(c)
			}
		}
	}
}

// Verify implements Workload: compare C against a naive O(n³)
// reference computed from snapshots of A and B. The reference
// accumulates in the same k order, so equality is bitwise.
func (w *TMM) Verify(m *memsim.Memory) error {
	n := w.N
	a := w.A.Snapshot(m)
	b := w.B.Snapshot(m)
	c := w.C.Snapshot(m)
	want := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			want[i*n+j] = sum
		}
	}
	return verifyClose("tmm", c, want, 0)
}
