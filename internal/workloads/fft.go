package workloads

import (
	"fmt"
	"math"
	"math/cmplx"

	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// FFT computes an n-point complex DFT with the iterative Stockham
// radix-2 (decimation in frequency) algorithm: every stage reads one
// buffer and writes the other, so within a stage every write is
// write-once and the stage's regions are associative. The pristine input
// X0 is kept read-only; stage 0 reads it directly, later stages
// ping-pong between the A and B work buffers. The result lands in
// natural order (Stockham is autosorting).
//
// LP regions are (stage, thread): each thread owns a contiguous range of
// butterflies per stage, with a barrier between stages. Because the
// ping-pong overwrites a buffer every other stage, a mismatched region
// cannot generally be repaired from its own stage's inputs (they may
// have been partially overwritten by the stage after next) — recovery
// regenerates deterministically from X0 through the furthest stage that
// left a durable trace, then resumes lazily (DESIGN.md §5).
type FFT struct {
	N      int // power of two
	Stages int
	Thr    int

	X0   pmem.F64 // interleaved re/im, read-only input (2N floats)
	A, B pmem.F64 // ping-pong work buffers
	tab  *lp.Table
	kind checksum.Kind
}

// NewFFT allocates the buffers and durably initializes the input with
// deterministic pseudo-random complex values.
func NewFFT(m *memsim.Memory, n, threads int, kind checksum.Kind) *FFT {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("workloads: FFT size %d is not a power of two >= 2", n))
	}
	stages := 0
	for s := n; s > 1; s >>= 1 {
		stages++
	}
	w := &FFT{N: n, Stages: stages, Thr: threads, kind: kind}
	w.X0 = pmem.AllocF64(m, "fft.x0", 2*n)
	w.A = pmem.AllocF64(m, "fft.a", 2*n)
	w.B = pmem.AllocF64(m, "fft.b", 2*n)
	w.X0.Fill(m, func(i int) float64 { return fillValue(7, i, 0) })
	w.A.Fill(m, func(int) float64 { return 0 })
	w.B.Fill(m, func(int) float64 { return 0 })
	w.tab = lp.NewTable(m, "fft.cksums", w.Regions())
	return w
}

// Name implements Workload.
func (w *FFT) Name() string { return "fft" }

// Table implements Workload.
func (w *FFT) Table() *lp.Table { return w.tab }

// Regions implements Workload.
func (w *FFT) Regions() int { return w.Stages * w.Thr }

func (w *FFT) slot(stage, tid int) int { return stage*w.Thr + tid }

// dst returns the buffer stage writes; src the buffer it reads.
func (w *FFT) dst(stage int) pmem.F64 {
	if stage%2 == 0 {
		return w.A
	}
	return w.B
}

func (w *FFT) src(stage int) pmem.F64 {
	if stage == 0 {
		return w.X0
	}
	return w.dst(stage - 1)
}

// Result returns the buffer holding the transform after a complete run.
func (w *FFT) Result() pmem.F64 { return w.dst(w.Stages - 1) }

// itemRange returns thread tid's contiguous range of flattened work
// items (a stage has m·st butterfly evaluations: pair (p, q) flattens to
// p·st + q). Flattened partitioning keeps every stage's regions balanced
// even when the butterfly count m drops below the thread count in the
// final stages.
func (w *FFT) itemRange(items, tid int) (int, int) {
	return tid * items / w.Thr, (tid + 1) * items / w.Thr
}

// stageBody executes thread tid's butterflies of one stage inside an
// open region. Stage geometry: nt = N>>stage points per transform,
// m = nt/2 butterflies, st = 1<<stage interleaved sub-transforms.
func (w *FFT) stageBody(c pmem.Ctx, ts lp.ThreadStrategy, stage, tid int) {
	n := w.N
	nt := n >> stage
	m := nt / 2
	st := 1 << stage
	theta := 2 * math.Pi / float64(nt)
	src, dst := w.src(stage), w.dst(stage)
	lo, hi := w.itemRange(m*st, tid)
	lastP := -1
	var wr, wi float64
	for idx := lo; idx < hi; idx++ {
		p, q := idx/st, idx%st
		if p != lastP {
			wr = math.Cos(float64(p) * theta)
			wi = -math.Sin(float64(p) * theta)
			c.Compute(30) // twiddle generation
			lastP = p
		}
		ia := q + st*p
		ib := q + st*(p+m)
		ar, ai := src.Load(c, 2*ia), src.Load(c, 2*ia+1)
		br, bi := src.Load(c, 2*ib), src.Load(c, 2*ib+1)
		// dst[q + st*2p] = a + b
		sr, si := ar+br, ai+bi
		// dst[q + st*(2p+1)] = (a - b) * w
		dr, di := ar-br, ai-bi
		tr := dr*wr - di*wi
		ti := dr*wi + di*wr
		c.Compute(10)
		io := q + st*2*p
		ts.StoreF(c, dst.Addr(2*io), sr)
		ts.StoreF(c, dst.Addr(2*io+1), si)
		ts.StoreF(c, dst.Addr(2*(io+st)), tr)
		ts.StoreF(c, dst.Addr(2*(io+st)+1), ti)
	}
}

// Run implements Workload.
func (w *FFT) Run(env Env, ts lp.ThreadStrategy) {
	w.RunWindow(env, ts, 0)
}

// RunWindow implements Workload: the first `outer` stages (the paper's
// FFT window is ≈5% of the run).
func (w *FFT) RunWindow(env Env, ts lp.ThreadStrategy, outer int) {
	end := w.Stages
	if outer > 0 && outer < end {
		end = outer
	}
	for stage := 0; stage < end; stage++ {
		ts.Begin(env.C, w.slot(stage, env.Tid))
		w.stageBody(env.C, ts, stage, env.Tid)
		ts.End(env.C)
		env.Barrier()
	}
}

// regionSum recomputes the checksum of region (stage, tid) from the
// stage's destination buffer in store order.
func (w *FFT) regionSum(c pmem.Ctx, stage, tid int) uint64 {
	n := w.N
	nt := n >> stage
	m := nt / 2
	st := 1 << stage
	dst := w.dst(stage)
	s := lp.NewRegionSummer(w.kind)
	lo, hi := w.itemRange(m*st, tid)
	for idx := lo; idx < hi; idx++ {
		p, q := idx/st, idx%st
		io := q + st*2*p
		s.Add(c, c.Load64(dst.Addr(2*io)))
		s.Add(c, c.Load64(dst.Addr(2*io+1)))
		s.Add(c, c.Load64(dst.Addr(2*(io+st))))
		s.Add(c, c.Load64(dst.Addr(2*(io+st)+1)))
	}
	return s.Sum()
}

// RecoverLP implements Workload: regenerate stages 0..sTop (the furthest
// stage with any written region slot) eagerly from the pristine input,
// then resume the remaining stages lazily. As with Gauss, the
// regeneration is bit-deterministic, so the stage-sTop checksums certify
// the regenerated state.
func (w *FFT) RecoverLP(c pmem.Ctx) {
	sTop := -1
	for stage := 0; stage < w.Stages; stage++ {
		for tid := 0; tid < w.Thr; tid++ {
			if w.tab.Written(c, w.slot(stage, tid)) {
				sTop = stage
				break
			}
		}
	}

	eager := ep.NewEagerLP(w.tab, w.kind, w.Thr)
	for stage := 0; stage <= sTop; stage++ {
		for tid := 0; tid < w.Thr; tid++ {
			ts := eager.Thread(tid)
			ts.Begin(c, w.slot(stage, tid))
			w.stageBody(c, ts, stage, tid)
			ts.End(c)
		}
	}

	lazy := lp.NewLP(w.tab, w.kind, w.Thr)
	for stage := sTop + 1; stage < w.Stages; stage++ {
		for tid := 0; tid < w.Thr; tid++ {
			ts := lazy.Thread(tid)
			ts.Begin(c, w.slot(stage, tid))
			w.stageBody(c, ts, stage, tid)
			ts.End(c)
		}
	}
}

// Verify implements Workload: compare against an independent recursive
// Cooley–Tukey reference (different operation order, so a small
// tolerance applies).
func (w *FFT) Verify(m *memsim.Memory) error {
	n := w.N
	x0 := w.X0.Snapshot(m)
	got := w.Result().Snapshot(m)
	in := make([]complex128, n)
	for i := 0; i < n; i++ {
		in[i] = complex(x0[2*i], x0[2*i+1])
	}
	want := referenceFFT(in)
	// Scale the absolute tolerance by the transform magnitude.
	scale := 0.0
	for _, v := range want {
		if a := cmplx.Abs(v); a > scale {
			scale = a
		}
	}
	tol := 1e-12 * scale * float64(w.Stages)
	for i := 0; i < n; i++ {
		g := complex(got[2*i], got[2*i+1])
		if cmplx.Abs(g-want[i]) > tol {
			return fmt.Errorf("fft: bin %d differs: got %v want %v (tol %g)", i, g, want[i], tol)
		}
	}
	return nil
}

// referenceFFT is a recursive radix-2 Cooley–Tukey DFT.
func referenceFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return []complex128{x[0]}
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	fe, fo := referenceFFT(even), referenceFFT(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		t := cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n)) * fo[k]
		out[k] = fe[k] + t
		out[k+n/2] = fe[k] - t
	}
	return out
}
