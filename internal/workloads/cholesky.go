package workloads

import (
	"fmt"
	"math"

	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// Cholesky factors a symmetric positive-definite matrix A into L·Lᵀ
// with an out-of-place column-oriented (Cholesky–Crout) algorithm: A is
// read-only, L is write-once. Column j first computes the diagonal
//
//	L[j][j] = sqrt(A[j][j] − Σ_{k<j} L[j][k]²)
//
// on the thread owning row j, then all threads fill their rows i > j:
//
//	L[i][j] = (A[i][j] − Σ_{k<j} L[i][k]·L[j][k]) / L[j][j]
//
// with barriers between the phases. LP regions are (column, role): one
// single-store region for each diagonal and one region per (column,
// thread) for the rows. Because L is write-once, every region is
// idempotent given the columns before it, so recovery is a forward
// verify-or-recompute sweep (DESIGN.md §5).
type Cholesky struct {
	N   int
	Thr int

	A, L pmem.Matrix
	tab  *lp.Table
	kind checksum.Kind
}

// NewCholesky allocates A (symmetric, diagonally dominant — hence SPD)
// and the zeroed output L, both durably initialized.
func NewCholesky(m *memsim.Memory, n, threads int, kind checksum.Kind) *Cholesky {
	w := &Cholesky{N: n, Thr: threads, kind: kind}
	w.A = pmem.AllocMatrix(m, "chol.a", n)
	w.L = pmem.AllocMatrix(m, "chol.l", n)
	w.A.Fill(m, func(i, j int) float64 {
		if i == j {
			return float64(n)
		}
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		return fillValue(3, lo, hi) // symmetric off-diagonal in (-1,1)
	})
	w.L.Fill(m, func(i, j int) float64 { return 0 })
	w.tab = lp.NewTable(m, "chol.cksums", w.Regions())
	return w
}

// Name implements Workload.
func (w *Cholesky) Name() string { return "cholesky" }

// Table implements Workload.
func (w *Cholesky) Table() *lp.Table { return w.tab }

// Regions implements Workload: n diagonal regions + n*P row regions.
func (w *Cholesky) Regions() int { return w.N + w.N*w.Thr }

func (w *Cholesky) diagSlot(j int) int        { return j }
func (w *Cholesky) rowSlot(j, tid int) int    { return w.N + j*w.Thr + tid }
func (w *Cholesky) diagOwner(j int) (tid int) { return j % w.Thr }
func (w *Cholesky) colRange(j int) (int, int) { return j + 1, w.N }

// diagBody computes and stores L[j][j] inside an open region.
func (w *Cholesky) diagBody(c pmem.Ctx, ts lp.ThreadStrategy, j int) {
	sum := w.A.Load(c, j, j)
	for k := 0; k < j; k++ {
		v := w.L.Load(c, j, k)
		sum -= v * v
		c.Compute(2)
	}
	c.Compute(8) // sqrt
	ts.StoreF(c, w.L.Addr(j, j), math.Sqrt(sum))
}

// rowsBody fills thread tid's rows of column j inside an open region.
func (w *Cholesky) rowsBody(c pmem.Ctx, ts lp.ThreadStrategy, j, tid int) {
	ljj := w.L.Load(c, j, j)
	lo, hi := w.colRange(j)
	for i := lo; i < hi; i++ {
		if i%w.Thr != tid {
			continue
		}
		sum := w.A.Load(c, i, j)
		for k := 0; k < j; k++ {
			sum -= w.L.Load(c, i, k) * w.L.Load(c, j, k)
			c.Compute(2)
		}
		c.Compute(8) // divide
		ts.StoreF(c, w.L.Addr(i, j), sum/ljj)
	}
}

// Run implements Workload.
func (w *Cholesky) Run(env Env, ts lp.ThreadStrategy) {
	w.RunCols(env, ts, 0, w.N)
}

// RunWindow implements Workload: the first `outer` columns. (The paper
// runs Cholesky to completion; the window exists for methodological
// symmetry.)
func (w *Cholesky) RunWindow(env Env, ts lp.ThreadStrategy, outer int) {
	end := w.N
	if outer > 0 && outer < end {
		end = outer
	}
	w.RunCols(env, ts, 0, end)
}

// RunCols executes columns [j0, j1) — normal execution with barriers.
func (w *Cholesky) RunCols(env Env, ts lp.ThreadStrategy, j0, j1 int) {
	c := env.C
	for j := j0; j < j1; j++ {
		if env.Tid == w.diagOwner(j) {
			ts.Begin(c, w.diagSlot(j))
			w.diagBody(c, ts, j)
			ts.End(c)
		}
		env.Barrier()
		ts.Begin(c, w.rowSlot(j, env.Tid))
		w.rowsBody(c, ts, j, env.Tid)
		ts.End(c)
		env.Barrier()
	}
}

// diagSum and rowsSum recompute region checksums from the current L in
// store order (detection, Figure 5(c)).
func (w *Cholesky) diagSum(c pmem.Ctx, j int) uint64 {
	s := lp.NewRegionSummer(w.kind)
	s.Add(c, c.Load64(w.L.Addr(j, j)))
	return s.Sum()
}

func (w *Cholesky) rowsSum(c pmem.Ctx, j, tid int) uint64 {
	s := lp.NewRegionSummer(w.kind)
	lo, hi := w.colRange(j)
	for i := lo; i < hi; i++ {
		if i%w.Thr == tid {
			s.Add(c, c.Load64(w.L.Addr(i, j)))
		}
	}
	return s.Sum()
}

// RecoverLP implements Workload: forward sweep — L is write-once, so a
// region whose checksum matches is durable and final; anything else is
// recomputed eagerly (its inputs, the earlier columns, have already been
// verified or repaired by the time the sweep reaches it). The sweep runs
// through the last column that left any durable trace; later columns
// re-execute as normal lazy work.
func (w *Cholesky) RecoverLP(c pmem.Ctx) {
	jMax := -1
	for j := 0; j < w.N; j++ {
		written := w.tab.Written(c, w.diagSlot(j))
		for tid := 0; tid < w.Thr && !written; tid++ {
			written = w.tab.Written(c, w.rowSlot(j, tid))
		}
		if written {
			jMax = j
		}
	}

	eager := ep.NewEagerLP(w.tab, w.kind, w.Thr)
	for j := 0; j <= jMax; j++ {
		if !w.tab.Matches(c, w.diagSlot(j), w.diagSum(c, j)) {
			ts := eager.Thread(w.diagOwner(j))
			ts.Begin(c, w.diagSlot(j))
			w.diagBody(c, ts, j)
			ts.End(c)
		}
		for tid := 0; tid < w.Thr; tid++ {
			if w.tab.Matches(c, w.rowSlot(j, tid), w.rowsSum(c, j, tid)) {
				continue
			}
			ts := eager.Thread(tid)
			ts.Begin(c, w.rowSlot(j, tid))
			w.rowsBody(c, ts, j, tid)
			ts.End(c)
		}
	}

	// Complete the remaining columns with normal lazy execution,
	// emulating each thread's share sequentially (barriers are no-ops
	// in the single-threaded recovery environment, and within a column
	// the diagonal is executed before the rows, preserving the
	// dependence order the barriers enforce in parallel runs).
	lazy := lp.NewLP(w.tab, w.kind, w.Thr)
	for j := jMax + 1; j < w.N; j++ {
		dts := lazy.Thread(w.diagOwner(j))
		dts.Begin(c, w.diagSlot(j))
		w.diagBody(c, dts, j)
		dts.End(c)
		for tid := 0; tid < w.Thr; tid++ {
			ts := lazy.Thread(tid)
			ts.Begin(c, w.rowSlot(j, tid))
			w.rowsBody(c, ts, j, tid)
			ts.End(c)
		}
	}
}

// Verify implements Workload: independent reference factorization with
// identical operation order (bitwise comparison).
func (w *Cholesky) Verify(m *memsim.Memory) error {
	n := w.N
	a := w.A.Snapshot(m)
	got := w.L.Snapshot(m)
	want := make([]float64, n*n)
	for j := 0; j < n; j++ {
		sum := a[j*n+j]
		for k := 0; k < j; k++ {
			v := want[j*n+k]
			sum -= v * v
		}
		if sum <= 0 {
			return fmt.Errorf("cholesky: reference lost positive-definiteness at column %d", j)
		}
		want[j*n+j] = math.Sqrt(sum)
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= want[i*n+k] * want[j*n+k]
			}
			want[i*n+j] = s / want[j*n+j]
		}
	}
	return verifyClose("cholesky", got, want, 0)
}
