package workloads

import (
	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// Gauss performs Gaussian elimination (LU without pivoting — inputs are
// diagonally dominant, so elimination is stable) on the working matrix
// U, in place: step k eliminates column k from every row i > k, storing
// the multiplier in U[i][k] (packed LU) and updating U[i][j] for j > k.
// Rows are partitioned round-robin over the threads; a barrier separates
// steps because step k reads pivot row k, finalized at step k−1.
//
// The LP region is (step, thread). Elimination is destructive — a row's
// state at step k is overwritten at step k+1 — so mismatched regions
// cannot be repaired in place. Recovery instead restores the pristine
// input A₀ (kept read-only in NVMM; the failure-free path never touches
// it) and re-executes eagerly up to the furthest step that left any
// durable trace, then resumes lazily (DESIGN.md §5).
type Gauss struct {
	N   int
	Thr int

	A0, U pmem.Matrix
	tab   *lp.Table
	kind  checksum.Kind
}

// NewGauss allocates the pristine input A0 and the working copy U,
// durably initialized with identical diagonally-dominant contents.
func NewGauss(m *memsim.Memory, n, threads int, kind checksum.Kind) *Gauss {
	w := &Gauss{N: n, Thr: threads, kind: kind}
	fill := func(i, j int) float64 {
		if i == j {
			return float64(2 * n)
		}
		return fillValue(4, i, j)
	}
	w.A0 = pmem.AllocMatrix(m, "gauss.a0", n)
	w.U = pmem.AllocMatrix(m, "gauss.u", n)
	w.A0.Fill(m, fill)
	w.U.Fill(m, fill)
	w.tab = lp.NewTable(m, "gauss.cksums", w.Regions())
	return w
}

// Name implements Workload.
func (w *Gauss) Name() string { return "gauss" }

// Table implements Workload.
func (w *Gauss) Table() *lp.Table { return w.tab }

// Steps returns the number of elimination steps (n−1).
func (w *Gauss) Steps() int { return w.N - 1 }

// Regions implements Workload.
func (w *Gauss) Regions() int { return w.Steps() * w.Thr }

func (w *Gauss) slot(k, tid int) int { return k*w.Thr + tid }

// stepBody eliminates thread tid's rows at step k inside an open region.
func (w *Gauss) stepBody(c pmem.Ctx, ts lp.ThreadStrategy, k, tid int) {
	n := w.N
	pivot := w.U.Load(c, k, k)
	for i := k + 1; i < n; i++ {
		if i%w.Thr != tid {
			continue
		}
		m := w.U.Load(c, i, k) / pivot
		c.Compute(8)
		ts.StoreF(c, w.U.Addr(i, k), m) // packed L factor
		for j := k + 1; j < n; j++ {
			v := w.U.Load(c, i, j) - m*w.U.Load(c, k, j)
			c.Compute(2)
			ts.StoreF(c, w.U.Addr(i, j), v)
		}
	}
}

// Run implements Workload.
func (w *Gauss) Run(env Env, ts lp.ThreadStrategy) {
	w.RunWindow(env, ts, 0)
}

// RunWindow implements Workload: the first `outer` elimination steps
// (the paper's Gauss window is 4 outer-loop iterations, §V-C).
func (w *Gauss) RunWindow(env Env, ts lp.ThreadStrategy, outer int) {
	end := w.Steps()
	if outer > 0 && outer < end {
		end = outer
	}
	for k := 0; k < end; k++ {
		ts.Begin(env.C, w.slot(k, env.Tid))
		w.stepBody(env.C, ts, k, env.Tid)
		ts.End(env.C)
		env.Barrier()
	}
}

// regionSum recomputes the checksum of region (k, tid) from the current
// U in store order.
func (w *Gauss) regionSum(c pmem.Ctx, k, tid int) uint64 {
	s := lp.NewRegionSummer(w.kind)
	for i := k + 1; i < w.N; i++ {
		if i%w.Thr != tid {
			continue
		}
		for j := k; j < w.N; j++ {
			s.Add(c, c.Load64(w.U.Addr(i, j)))
		}
	}
	return s.Sum()
}

// RecoverLP implements Workload. Elimination is destructive, so rows
// that have not reached their final state cannot be verified or repaired
// in place from stored checksums alone (a region at step k covers rows
// that later steps legitimately overwrote). Recovery is therefore
// conservative and simple: the furthest step with any written region
// slot bounds the durable progress; U is regenerated deterministically
// from A0 through that step with Eager Persistency (which re-commits
// every checksum on the way), and later steps resume lazily. The cost is
// bounded by one failure-free run, preserving forward progress.
//
// The step-kTop checksums still earn their keep: when the topmost
// written step's regions all match after regeneration, the durable image
// provably equals the failure-free state at that step (the regeneration
// is bit-deterministic), which the crash-recovery tests assert.
func (w *Gauss) RecoverLP(c pmem.Ctx) {
	kTop := -1
	for k := 0; k < w.Steps(); k++ {
		for tid := 0; tid < w.Thr; tid++ {
			if w.tab.Written(c, w.slot(k, tid)) {
				kTop = k
				break
			}
		}
	}
	w.regenerate(c, kTop)

	// Complete the remaining steps lazily, interleaving per-thread
	// regions in step order (the dependence order barriers enforce in
	// parallel execution).
	lazy := lp.NewLP(w.tab, w.kind, w.Thr)
	for k := kTop + 1; k < w.Steps(); k++ {
		for tid := 0; tid < w.Thr; tid++ {
			ts := lazy.Thread(tid)
			ts.Begin(c, w.slot(k, tid))
			w.stepBody(c, ts, k, tid)
			ts.End(c)
		}
	}
}

// regenerate durably restores U to the pristine A0 and re-executes
// steps 0..kTop with Eager Persistency, re-committing every checksum.
// kTop < 0 only restores the input.
func (w *Gauss) regenerate(c pmem.Ctx, kTop int) {
	n := w.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.Store64(w.U.Addr(i, j), c.Load64(w.A0.Addr(i, j)))
		}
		ep.PersistRange(c, w.U.Addr(i, 0), n*pmem.WordSize)
	}
	c.Fence()
	eager := ep.NewEagerLP(w.tab, w.kind, w.Thr)
	for k := 0; k <= kTop; k++ {
		for tid := 0; tid < w.Thr; tid++ {
			ts := eager.Thread(tid)
			ts.Begin(c, w.slot(k, tid))
			w.stepBody(c, ts, k, tid)
			ts.End(c)
		}
	}
}

// Verify implements Workload: independent in-place elimination with the
// same operation order (bitwise).
func (w *Gauss) Verify(m *memsim.Memory) error {
	n := w.N
	want := w.A0.Snapshot(m)
	got := w.U.Snapshot(m)
	for k := 0; k < n-1; k++ {
		pivot := want[k*n+k]
		for i := k + 1; i < n; i++ {
			mult := want[i*n+k] / pivot
			want[i*n+k] = mult
			for j := k + 1; j < n; j++ {
				want[i*n+j] -= mult * want[k*n+j]
			}
		}
	}
	return verifyClose("gauss", got, want, 0)
}
