package harness

import "fmt"

// Counters is the unified runner-statistics snapshot every front end
// surfaces: lpbench -json embeds it verbatim in its document and lpsim
// prints the same String on stderr, so the two tools report the pool
// identically and cannot drift apart field by field.
type Counters struct {
	Workers     int    `json:"workers"`
	Submitted   uint64 `json:"submitted"`
	Executed    uint64 `json:"executed"`
	Cache       bool   `json:"cache"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Counters snapshots the pool's submission, execution, and memo-cache
// statistics in one consistent struct.
func (p *RunPool) Counters() Counters {
	c := Counters{Workers: p.workers}
	c.Submitted, c.Executed = p.Stats()
	if p.cache != nil {
		c.Cache = true
		c.CacheHits, c.CacheMisses = p.cache.Stats()
	}
	return c
}

// String renders the one-line human runner summary.
func (c Counters) String() string {
	line := fmt.Sprintf("%d specs submitted, %d executed on %d workers",
		c.Submitted, c.Executed, c.Workers)
	if c.Cache {
		line += fmt.Sprintf(", cache %d hits / %d misses", c.CacheHits, c.CacheMisses)
	} else {
		line += ", cache off"
	}
	return line
}
