package harness

import (
	"fmt"
	"sync"
	"time"

	"lazyp/internal/pmem"
	"lazyp/internal/workloads"
)

// nativeBarrier is a reusable sense-counting barrier for native parallel
// runs (the real-machine experiment of Table VII).
type nativeBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
}

func newNativeBarrier(n int) *nativeBarrier {
	b := &nativeBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *nativeBarrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	g := b.gen
	for b.gen == g {
		b.cond.Wait()
	}
}

// NativeRun executes the workload natively — real goroutines, direct
// memory access, no simulation — and returns the wall-clock time. This
// is the paper's real-machine methodology (§V-B): with no NVMM
// available, only the execution-time overhead of the persistence code is
// measured.
func NativeRun(spec Spec) (time.Duration, error) {
	spec.defaults()
	ses := NewSession(spec) // reuse allocation/strategy wiring; engine unused
	bar := newNativeBarrier(spec.Threads)
	var wg sync.WaitGroup
	start := time.Now()
	for tid := 0; tid < spec.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			env := workloads.Env{
				C:       &pmem.Native{Mem: ses.Mem, ID: tid},
				Tid:     tid,
				Threads: spec.Threads,
				Barrier: bar.wait,
			}
			ses.Work.Run(env, ses.Strat.Thread(tid))
		}(tid)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ses.Work.Verify(ses.Mem); err != nil {
		return elapsed, fmt.Errorf("harness: native run produced wrong output: %w", err)
	}
	return elapsed, nil
}

// NativeOverhead measures the wall-clock overhead of spec's variant over
// the base variant, taking the minimum of reps interleaved repetitions
// of each (fresh memory images per repetition; kernels are not
// idempotent across reruns).
func NativeOverhead(spec Spec, reps int) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	base := spec
	base.Variant = VariantBase
	minBase, minVar := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < reps; i++ {
		tb, err := NativeRun(base)
		if err != nil {
			return 0, err
		}
		if tb < minBase {
			minBase = tb
		}
		tv, err := NativeRun(spec)
		if err != nil {
			return 0, err
		}
		if tv < minVar {
			minVar = tv
		}
	}
	return float64(minVar)/float64(minBase) - 1, nil
}
