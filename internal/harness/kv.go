package harness

import (
	"fmt"
	"io"
	"time"

	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/lpstore"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
	"lazyp/internal/sim"
	"lazyp/internal/workloads"
)

// KVSpec describes one request-driven KV-store run (the lpstore
// subsystem under a YCSB-style mix) — the first workload class beyond
// the paper's loop-nest kernels. Zero fields take defaults.
type KVSpec struct {
	Variant Variant
	Mix     string // "a" (50r/50u), "b" (95r/5u), "c" (read-only), "d" (85r/10u/5i)
	Dist    string // "zipfian" (default) or "uniform"
	Threads int
	Preload int // keys preloaded per shard
	Ops     int // requests per thread
	BatchK  int // LP batch size (puts per region)
	Kind    checksum.Kind
	Seed    uint64
	Sim     sim.Config
}

func (s *KVSpec) defaults() {
	if s.Mix == "" {
		s.Mix = "a"
	}
	if s.Dist == "" {
		s.Dist = "zipfian"
	}
	if s.Threads == 0 {
		s.Threads = 8
	}
	if s.Preload == 0 {
		s.Preload = 2048
	}
	if s.Ops == 0 {
		s.Ops = 3000
	}
	if s.BatchK == 0 {
		s.BatchK = 32
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// KVSession owns one KV run's memory image, shards, and writers, so
// crash and recovery flows can be driven step by step (the KV analogue
// of Session).
type KVSession struct {
	Spec    KVSpec
	Mem     *memsim.Memory
	Shards  []*lpstore.Shard
	Writers []*lpstore.Writer
	Eng     *sim.Engine

	// Stats holds per-shard LP recovery statistics after Recover.
	Stats []lpstore.RecoverStats

	mix   workloads.KVMix
	wal   *ep.WAL
	rec   *ep.Recompute
	acked []int // per-thread acknowledged put counts, set by Recover
}

// NewKVSession allocates the memory image, one shard per thread, and
// the variant's persistence machinery. Tables are sized so the load
// factor stays below one half even if every request inserts. NVMM
// counters are reset after setup, so Execute measures only the
// request-processing phase.
func NewKVSession(spec KVSpec) *KVSession {
	spec.defaults()
	mix, ok := workloads.KVMixByName(spec.Mix)
	if !ok {
		panic(fmt.Sprintf("harness: unknown KV mix %q", spec.Mix))
	}
	capacity := 1
	for capacity < 2*(spec.Preload+spec.Ops) {
		capacity <<= 1
	}
	mem := memsim.NewMemory(spec.Threads*(2*capacity+3*spec.Ops)*pmem.WordSize + (8 << 20))
	// Keep data off line 0: ep's inline-flush tracker uses line address
	// 0 as its "no line yet" sentinel.
	mem.Alloc("kv.guard", memsim.LineSize)

	s := &KVSession{Spec: spec, Mem: mem, mix: mix}
	switch spec.Variant {
	case VariantEP:
		s.rec = ep.NewRecompute(mem, "kv.ep", spec.Threads)
	case VariantWAL:
		// A put stores at most two words (slot key + value).
		s.wal = ep.NewWAL(mem, "kv.wal", spec.Threads, 2)
	}
	for tid := 0; tid < spec.Threads; tid++ {
		name := fmt.Sprintf("kv.s%d", tid)
		var sh *lpstore.Shard
		if spec.Variant == VariantLP {
			sh = lpstore.NewShardLP(mem, name, tid, capacity, spec.Ops, spec.BatchK, spec.Kind)
		} else {
			sh = lpstore.NewShard(mem, name, tid, capacity)
		}
		sh.Preload(mem, spec.Preload, func(i int) (uint64, uint64) {
			k := workloads.KVKey(tid, i)
			return k, workloads.KVInitVal(spec.Seed, k)
		})
		var w *lpstore.Writer
		switch spec.Variant {
		case VariantBase:
			w = sh.NewWriter(lpstore.ModeBase, lp.Base{}.Thread(tid))
		case VariantLP:
			w = sh.NewLPWriter()
		case VariantEP:
			w = sh.NewWriter(lpstore.ModeEP, s.rec.Thread(tid))
		case VariantWAL:
			w = sh.NewWriter(lpstore.ModeWAL, s.wal.Thread(tid))
		default:
			panic(fmt.Sprintf("harness: unknown variant %q", spec.Variant))
		}
		s.Shards = append(s.Shards, sh)
		s.Writers = append(s.Writers, w)
	}

	cfg := spec.Sim
	cfg.Threads = spec.Threads
	if cfg.Hier == (memsim.Config{}) {
		cfg.Hier = memsim.DefaultConfig(spec.Threads)
	}
	s.Eng = sim.New(cfg, mem)
	mem.ResetCounters()
	return s
}

// Execute runs every thread's request stream to completion (or to the
// configured crash) against its own shard and returns the metrics. LP
// writers seal their open partial batch at stream end so tail ops
// become acknowledgeable.
func (s *KVSession) Execute() Result {
	eng := s.Eng
	crashed := eng.Run(func(t *sim.Thread) {
		tid := t.ThreadID()
		g := workloads.NewKVGen(s.Spec.Seed, tid, s.Spec.Preload, s.mix, s.Spec.Dist)
		w := s.Writers[tid]
		for i := 0; i < s.Spec.Ops; i++ {
			op := g.Next()
			if op.Kind == workloads.KVRead {
				w.Get(t, op.Key)
			} else {
				w.Put(t, op.Key, op.Val)
			}
		}
		w.Seal(t)
	})
	return measure(eng, s.Mem, crashed, 0)
}

// Crash applies the failure to the memory image (cache contents lost).
func (s *KVSession) Crash() { s.Mem.Crash() }

// Recover runs the variant's recovery single-threaded on a fresh
// machine over the crashed image, establishing each thread's durably-
// acknowledged put prefix (Acked) and repairing shards as needed.
func (s *KVSession) Recover(recoverCfg sim.Config) Result {
	recoverCfg.Threads = 1
	if recoverCfg.Hier == (memsim.Config{}) {
		recoverCfg.Hier = memsim.DefaultConfig(1)
	}
	eng := sim.New(recoverCfg, s.Mem)
	s.Eng = eng
	s.acked = make([]int, s.Spec.Threads)
	s.Stats = nil
	crashed := eng.Run(func(t *sim.Thread) {
		for tid := range s.Shards {
			s.acked[tid] = s.recoverShard(t, tid)
		}
	})
	return measure(eng, s.Mem, crashed, eng.ExecCycles())
}

func (s *KVSession) recoverShard(c pmem.Ctx, tid int) int {
	sh := s.Shards[tid]
	switch s.Spec.Variant {
	case VariantLP:
		// Native wall-clock of the replay+repair pass: lpcrash -json
		// surfaces it per shard. Never printed by the deterministic
		// experiment paths (RecoverNs is omitempty and -exp output
		// reports simulated cycles only).
		t0 := time.Now()
		st := sh.RecoverLP(c, s.Spec.Preload, func(i int) (uint64, uint64) {
			k := workloads.KVKey(tid, i)
			return k, workloads.KVInitVal(s.Spec.Seed, k)
		})
		st.RecoverNs = time.Since(t0).Nanoseconds()
		s.Stats = append(s.Stats, st)
		return st.AckedPuts
	case VariantEP:
		// The marker names the last put whose flush+fence completed. It
		// can lag one finished put (data fenced, marker store lost), and
		// the one in-flight put may have leaked durably through its
		// inline flush or an eviction; a put's key and value share a
		// cache line, so either way the pair is durable atomically.
		// Probing the durable image for the next put in the regenerated
		// stream detects both cases exactly.
		acked := 0
		if mk := s.rec.Markers.Load(c, tid); mk != ep.MarkerNone {
			acked = int(mk) + 1
		}
		if op, ok := s.nthPut(tid, acked); ok && sh.HasDurable(c, op.Key, op.Val) {
			acked++
		}
		return acked
	case VariantWAL:
		k, inTx, ok := s.wal.WALRecover(c, tid)
		switch {
		case !ok:
			return 0
		case inTx:
			return k // transaction k rolled back
		default:
			return k + 1 // transaction k committed
		}
	default:
		panic(fmt.Sprintf("harness: no KV recovery for variant %q", s.Spec.Variant))
	}
}

// nthPut returns thread tid's n-th put request (0-based) by
// regenerating its deterministic stream.
func (s *KVSession) nthPut(tid, n int) (workloads.KVOp, bool) {
	g := workloads.NewKVGen(s.Spec.Seed, tid, s.Spec.Preload, s.mix, s.Spec.Dist)
	puts := 0
	for i := 0; i < s.Spec.Ops; i++ {
		op := g.Next()
		if op.Kind == workloads.KVRead {
			continue
		}
		if puts == n {
			return op, true
		}
		puts++
	}
	return workloads.KVOp{}, false
}

// Acked returns the per-thread acknowledged put counts established by
// Recover.
func (s *KVSession) Acked() []int { return s.acked }

// FullAck returns the acked vector of a failure-free run (every put of
// every thread), for verifying complete executions with VerifyAcked.
func (s *KVSession) FullAck() []int {
	out := make([]int, s.Spec.Threads)
	for i := range out {
		out[i] = -1
	}
	return out
}

// Reference computes, host-side, the expected contents of thread tid's
// shard after its first nPuts puts (nPuts < 0 means the full run):
// preloaded pairs overlaid with the put prefix, last write per key
// winning.
func (s *KVSession) Reference(tid, nPuts int) map[uint64]uint64 {
	m := make(map[uint64]uint64, s.Spec.Preload+s.Spec.Ops)
	for i := 0; i < s.Spec.Preload; i++ {
		k := workloads.KVKey(tid, i)
		m[k] = workloads.KVInitVal(s.Spec.Seed, k)
	}
	g := workloads.NewKVGen(s.Spec.Seed, tid, s.Spec.Preload, s.mix, s.Spec.Dist)
	puts := 0
	for i := 0; i < s.Spec.Ops && (nPuts < 0 || puts < nPuts); i++ {
		op := g.Next()
		if op.Kind == workloads.KVRead {
			continue
		}
		m[op.Key] = op.Val
		puts++
	}
	return m
}

// VerifyAcked checks every shard's architectural contents against an
// independent failure-free execution of its acknowledged put prefix.
// After Memory.Crash the architectural image equals the durable one,
// so post-recovery calls verify the NVMM state.
func (s *KVSession) VerifyAcked(acked []int) error {
	for tid, sh := range s.Shards {
		want := s.Reference(tid, acked[tid])
		got := sh.Tab.Contents(s.Mem)
		if len(got) != len(want) {
			return fmt.Errorf("kv shard %d: %d keys, want %d (acked %d)",
				tid, len(got), len(want), acked[tid])
		}
		for k, v := range want {
			gv, ok := got[k]
			if !ok {
				return fmt.Errorf("kv shard %d: key %#x missing (acked %d)", tid, k, acked[tid])
			}
			if gv != v {
				return fmt.Errorf("kv shard %d: key %#x = %#x, want %#x (acked %d)",
					tid, k, gv, v, acked[tid])
			}
		}
	}
	return nil
}

// expKV is the KV-store experiment: normalized execution time and NVMM
// writes for base/LP/EP/WAL across read/update mixes and thread counts
// — Figure 10's methodology applied to a request-driven workload the
// paper's §VII only gestures at. Every run's final contents are
// verified against the host-side reference before reporting.
func expKV(w io.Writer, o Options) error {
	preload, ops := 2048, 3000
	if o.Quick {
		preload, ops = 512, 600
	}
	variants := []Variant{VariantBase, VariantLP, VariantEP, VariantWAL}
	mixes := []string{"a", "b", "c"}
	threadCounts := []int{1, 8}
	tw := newTab(w)
	fmt.Fprintln(tw, "mix\tthreads\tscheme\texec time\twrites\twrites(x)\tfences\tstall cyc(x)")
	for _, mix := range mixes {
		for _, th := range threadCounts {
			results := make([]Result, len(variants))
			for i, v := range variants {
				ses := NewKVSession(KVSpec{
					Variant: v, Mix: mix, Threads: th,
					Preload: preload, Ops: ops,
				})
				r := ses.Execute()
				if r.Crashed {
					return fmt.Errorf("harness: unexpected crash in kv/%s mix %s", v, mix)
				}
				if err := ses.VerifyAcked(ses.FullAck()); err != nil {
					return err
				}
				results[i] = r
			}
			base := results[0]
			for i, v := range variants {
				r := results[i]
				fmt.Fprintf(tw, "%s\t%d\t%s\t%.3f\t%d\t%.3f\t%d\t%.2f\n",
					mix, th, v,
					ratio(r.Cycles, base.Cycles),
					r.Writes,
					uratio(r.Writes, base.Writes),
					r.Ops.Fences,
					ratio(r.Haz.StallCycles, base.Haz.StallCycles))
			}
		}
	}
	fmt.Fprintln(tw, "paper\t\t(beyond paper, §VII: LP tracks base; EP pays a fence per put; WAL pays four)")
	return tw.Flush()
}
