package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/loadmodel"
	"lazyp/internal/lpstore"
)

// expPlan is E17: the capacity planner validated against the live
// service. One server boots to donate calibration constants (four
// short closed-loop probes); then, per built-in spec, the same
// deterministic op stream is (a) run through the planner's
// discrete-event model and (b) replayed open-loop against a fresh
// server, and the predicted vs measured throughput and latency land
// side by side with their relative error. Native: wall-clock latency
// on a live TCP server, so the runner executes it alone.
func expPlan(w io.Writer, o Options) error {
	dir, err := os.MkdirTemp("", "lpplan-e17-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := kvserve.Config{
		Addr: "127.0.0.1:0", Mode: lpstore.ModeLP,
		Shards: 4, Capacity: 1 << 15, MaxOps: 1 << 18, BatchK: 32,
		Streams: 4, Keys: 2048, Seed: 1,
		// BatchWait 2ms, not the 500µs the serve experiments use: at
		// E17's offered rates every batch seals by timer, so the put
		// tail is deadline-dominated either way — and a deadline well
		// above this host's timer-tick jitter keeps the unmodelable
		// wake-up noise a small fraction of the path being predicted.
		Mailbox: 256, BatchWait: 2 * time.Millisecond,
	}
	rate, dur, trials := 1.0, "2s", 3
	probeDur := 400 * time.Millisecond
	if o.Quick {
		rate, dur, trials = 0.1, "700ms", 1
		probeDur = 150 * time.Millisecond
	}

	boot := func(tag string) (*kvserve.Server, error) {
		c := cfg
		c.Path = filepath.Join(dir, tag+".img")
		s, err := kvserve.New(c)
		if err != nil {
			return nil, fmt.Errorf("plan %s: %w", tag, err)
		}
		if err := s.Start(); err != nil {
			s.Close()
			return nil, fmt.Errorf("plan %s: %w", tag, err)
		}
		return s, nil
	}

	// Calibration server: probed, then discarded — the measured runs
	// get fresh images so the probe load doesn't pre-age their
	// journals.
	cs, err := boot("cal")
	if err != nil {
		return err
	}
	cal, err := loadmodel.CalibrateLive(cs.Addr(), loadmodel.ProbeGeometry{
		Shards: cfg.Shards, BatchK: cfg.BatchK, BatchWait: cfg.BatchWait,
		Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
		Dur: probeDur,
	})
	cs.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "calibration (%s): get %.1fµs put %.1fµs flush %.1fµs rtt %.1fµs seal-lag %.1fµs\n",
		cal.Source, cal.GetSvcNs/1e3, cal.PutSvcNs/1e3, cal.FlushNs/1e3, cal.NetRTTNs/1e3, cal.SealLagNs/1e3)

	pcfg := loadmodel.PlanConfig{
		Shards: cfg.Shards, BatchK: cfg.BatchK, Mailbox: cfg.Mailbox,
		PipelineDepth: 4, BatchWaitNs: cfg.BatchWait.Nanoseconds(),
		Conns: 4, Cal: cal,
	}

	relErr := func(pred, meas float64) float64 {
		if meas == 0 {
			return 0
		}
		e := (pred - meas) / meas
		if e < 0 {
			return -e
		}
		return e
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "spec\tops\tthr pred (ops/s)\tthr live\terr\tput p99 pred (µs)\tput p99 live\terr\tp50 pred/live (µs)\trej pred/live")
	// steady is the calibration workload: its live run refits the
	// under-load seal lag (idle probes understate it), so its latency
	// row is a fit, not a prediction — the asterisk marks that. bursty
	// and mixed are held out: the planner never sees their live numbers
	// before predicting.
	for _, name := range []string{"steady", "bursty", "mixed"} {
		spec, err := loadmodel.BuiltinSpec(name, rate, dur)
		if err != nil {
			return err
		}
		ops, err := loadmodel.Generate(spec)
		if err != nil {
			return err
		}

		// A 1-CPU host's scheduler can stall any single run for
		// milliseconds and blow up that run's measured tail; the
		// median-by-put-p99 trial is the representative one.
		runs := make([]*loadmodel.RunReport, 0, trials)
		for t := 0; t < trials; t++ {
			s, err := boot(fmt.Sprintf("%s-%d", name, t))
			if err != nil {
				return err
			}
			meas, err := loadmodel.Run(s.Addr(), loadmodel.TraceOf(spec, ops),
				loadmodel.RunOpts{Conns: pcfg.Conns})
			if cerr := s.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("plan %s: drain: %w", name, cerr)
			}
			if err != nil {
				return fmt.Errorf("plan %s: %w", name, err)
			}
			if meas.Partial || meas.Errors > 0 {
				return fmt.Errorf("plan %s: partial run (%d errors)", name, meas.Errors)
			}
			runs = append(runs, meas)
		}
		sort.Slice(runs, func(i, j int) bool {
			return runs[i].Total.PutP99us < runs[j].Total.PutP99us
		})
		meas := runs[len(runs)/2]

		tag := name
		if name == "steady" {
			lag := loadmodel.SealLagFromRun(pcfg.Cal, pcfg.BatchWaitNs, meas.Total)
			pcfg.Cal.SealLagNs = lag
			fmt.Fprintf(w, "shakedown (steady): seal-lag refit %.1fµs -> %.1fµs\n",
				cal.SealLagNs/1e3, lag/1e3)
			tag = "steady*"
		}
		pred := loadmodel.Plan(spec, ops, pcfg)

		thrErr := relErr(pred.Total.OKOpsS, meas.Total.OKOpsS)
		p99Err := relErr(pred.Total.PutP99us, meas.Total.PutP99us)
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.1f%%\t%.0f\t%.0f\t%.1f%%\t%.0f/%.0f\t%.3f/%.3f\n",
			tag, len(ops),
			pred.Total.OKOpsS, meas.Total.OKOpsS, 100*thrErr,
			pred.Total.PutP99us, meas.Total.PutP99us, 100*p99Err,
			pred.Total.P50us, meas.Total.P50us,
			pred.Total.RejectRate, meas.Total.RejectRate)
		for i, cp := range pred.Classes {
			mp := meas.Classes[i]
			fmt.Fprintf(tw, "  %s\t%d\t%.0f\t%.0f\t%.1f%%\t%.0f\t%.0f\t%.1f%%\t%.0f/%.0f\t%.3f/%.3f\n",
				cp.Name, cp.Ops,
				cp.OKOpsS, mp.OKOpsS, 100*relErr(cp.OKOpsS, mp.OKOpsS),
				cp.PutP99us, mp.PutP99us, 100*relErr(cp.PutP99us, mp.PutP99us),
				cp.P50us, mp.P50us, cp.RejectRate, mp.RejectRate)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "* calibration workload: its live run is the seal-lag fit target, so its latency row is a fit; bursty and mixed are held-out predictions")
	return nil
}
