package harness

import (
	"testing"
)

// TestPoolMatchesSerial asserts the core property the parallel runner
// rests on: executing the same Spec twice — once serially inline, once
// through a RunPool with memoization disabled — yields identical Result
// structs for every workload/variant pair.
func TestPoolMatchesSerial(t *testing.T) {
	pool := NewRunPool(4, nil)
	defer pool.Close()
	for _, w := range []string{"tmm", "cholesky", "conv2d", "gauss", "fft"} {
		for _, v := range []Variant{VariantBase, VariantLP, VariantEP, VariantWAL} {
			w, v := w, v
			t.Run(w+"/"+string(v), func(t *testing.T) {
				spec := smokeSpec(w, v)
				serial, err := execAndCheck(spec)
				if err != nil {
					t.Fatal(err)
				}
				pooled, err := pool.RunAll(spec)
				if err != nil {
					t.Fatal(err)
				}
				if serial != pooled[0] {
					t.Fatalf("pool result differs from serial run:\nserial: %+v\npooled: %+v", serial, pooled[0])
				}
			})
		}
	}
}

// TestPoolOrderAndConcurrency fans one batch of distinct specs out over
// several workers and checks results come back in submission order
// with the per-spec values of a sequential reference run.
func TestPoolOrderAndConcurrency(t *testing.T) {
	specs := []Spec{
		smokeSpec("tmm", VariantBase),
		smokeSpec("tmm", VariantLP),
		smokeSpec("cholesky", VariantLP),
		smokeSpec("gauss", VariantEP),
		smokeSpec("fft", VariantBase),
		smokeSpec("conv2d", VariantLP),
	}
	want := make([]Result, len(specs))
	for i, s := range specs {
		r, err := execAndCheck(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	pool := NewRunPool(4, nil)
	defer pool.Close()
	got, err := pool.RunAll(specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got[i] != want[i] {
			t.Fatalf("spec %d (%s/%s) out of order or wrong:\nwant %+v\ngot  %+v",
				i, specs[i].Workload, specs[i].Variant, want[i], got[i])
		}
	}
}

// TestCacheMemoizes submits byte-identical specs and checks the second
// request is a hit that returns the identical Result without a second
// execution.
func TestCacheMemoizes(t *testing.T) {
	cache := NewCache()
	pool := NewRunPool(2, cache)
	defer pool.Close()
	spec := smokeSpec("tmm", VariantLP)

	first, err := pool.RunAll(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A semantically identical spec written differently (defaults left
	// blank) must canonicalize to the same key.
	alias := spec
	alias.Tile = 0 // default TMM tile is 16 — same run
	second, err := pool.RunAll(alias, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r != first[0] {
			t.Fatalf("memoized result %d differs: %+v vs %+v", i, r, first[0])
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 {
		t.Fatalf("expected exactly 1 execution, got %d misses", misses)
	}
	if hits != 2 {
		t.Fatalf("expected 2 cache hits, got %d", hits)
	}
	if _, executed := pool.Stats(); executed != 1 {
		t.Fatalf("pool executed %d specs, want 1", executed)
	}
}

// TestCacheSingleFlight hammers one spec from many concurrent
// submissions: exactly one execution may happen, and all callers must
// observe the same Result. Run with -race this also gates the pool's
// synchronization.
func TestCacheSingleFlight(t *testing.T) {
	cache := NewCache()
	pool := NewRunPool(8, cache)
	defer pool.Close()
	spec := smokeSpec("tmm", VariantBase)

	const k = 16
	futures := make([]*Future, k)
	for i := range futures {
		futures[i] = pool.Submit(spec)
	}
	var want Result
	for i, f := range futures {
		res, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
		} else if res != want {
			t.Fatalf("submission %d saw a different result", i)
		}
	}
	if _, misses := cache.Stats(); misses != 1 {
		t.Fatalf("spec executed %d times, want 1", misses)
	}
}

// TestPoolReportsBadSpec checks that a spec that cannot be built turns
// into an error on its future instead of killing the worker process.
func TestPoolReportsBadSpec(t *testing.T) {
	pool := NewRunPool(1, nil)
	defer pool.Close()
	_, err := pool.Submit(Spec{Workload: "nope", Variant: VariantBase}).Wait()
	if err == nil {
		t.Fatal("bogus workload did not error")
	}
}

// TestCanonicalAppliesDefaults pins the canonicalization contract the
// cache key depends on.
func TestCanonicalAppliesDefaults(t *testing.T) {
	a := Spec{Workload: "tmm", Variant: VariantLP}.Canonical()
	b := Spec{Workload: "tmm", Variant: VariantLP, N: 256, Tile: 16, Threads: 8}.Canonical()
	if a != b {
		t.Fatalf("defaulted and explicit specs canonicalize differently:\n%+v\n%+v", a, b)
	}
	if a.Sim.Quantum == 0 || a.Sim.Hier.L2Size == 0 {
		t.Fatalf("canonical spec did not absorb sim defaults: %+v", a.Sim)
	}
	c := Spec{Workload: "tmm", Variant: VariantLP, Threads: 4}.Canonical()
	if c == a {
		t.Fatal("different thread counts must not collide")
	}
}
