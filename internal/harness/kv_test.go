package harness

import (
	"bytes"
	"testing"

	"lazyp/internal/pmem"
	"lazyp/internal/sim"
	"lazyp/internal/workloads"
)

// kvTestSpec is a small configuration that still exercises collisions,
// batching, and (mix d) the insertion path.
func kvTestSpec(v Variant) KVSpec {
	return KVSpec{
		Variant: v, Mix: "d", Dist: "zipfian",
		Threads: 2, Preload: 256, Ops: 400, BatchK: 8, Seed: 7,
	}
}

func TestKVFailureFreeAllVariants(t *testing.T) {
	for _, v := range []Variant{VariantBase, VariantLP, VariantEP, VariantWAL} {
		for _, mix := range []string{"a", "d"} {
			spec := kvTestSpec(v)
			spec.Mix = mix
			ses := NewKVSession(spec)
			res := ses.Execute()
			if res.Crashed {
				t.Fatalf("%s/%s: unexpected crash", v, mix)
			}
			if err := ses.VerifyAcked(ses.FullAck()); err != nil {
				t.Fatalf("%s/%s: %v", v, mix, err)
			}
		}
	}
}

func TestKVDeterminism(t *testing.T) {
	spec := kvTestSpec(VariantLP)
	a := NewKVSession(spec)
	b := NewKVSession(spec)
	ra, rb := a.Execute(), b.Execute()
	if ra != rb {
		t.Fatalf("identical specs produced different results:\n%+v\n%+v", ra, rb)
	}
	for tid := range a.Shards {
		ca := a.Shards[tid].Tab.Contents(a.Mem)
		cb := b.Shards[tid].Tab.Contents(b.Mem)
		if len(ca) != len(cb) {
			t.Fatalf("shard %d contents differ in size", tid)
		}
		for k, v := range ca {
			if cb[k] != v {
				t.Fatalf("shard %d key %#x differs", tid, k)
			}
		}
	}
}

// TestKVExperimentByteIdentical runs the kv experiment twice and
// requires byte-identical output (the acceptance criterion behind
// `lpbench -exp kv` reproducibility).
func TestKVExperimentByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick-mode experiment passes")
	}
	var a, b bytes.Buffer
	if err := expKV(&a, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if err := expKV(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("experiment output not reproducible:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
}

// TestKVCrashSweepLP is the acceptance property test: crash the LP run
// at 24 points across its execution; after recovery the NVMM contents
// must pass checksum verification and equal a failure-free execution
// of the durably-acknowledged op prefix.
func TestKVCrashSweepLP(t *testing.T) {
	spec := kvTestSpec(VariantLP)
	clean := NewKVSession(spec)
	cleanRes := clean.Execute()
	if cleanRes.Crashed {
		t.Fatal("clean run crashed")
	}
	if err := clean.VerifyAcked(clean.FullAck()); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	// 24 crash points spread over the first 90% of the clean run (the
	// final stretch may complete before the injected cycle arrives).
	// Periodic cleanup (§III-E.1) writes old dirty lines — journal and
	// checksum lines included — back to NVMM, so later crash points
	// acknowledge longer prefixes; without it this working set never
	// leaves the caches and every crash point recovers to the preload.
	const points = 24
	sawPartialAck := false
	for i := 1; i <= points; i++ {
		s := spec
		s.Sim.CleanPeriod = cleanRes.Cycles / 20
		s.Sim.CrashCycle = int64(0.9 * float64(i) / float64(points) * float64(cleanRes.Cycles))
		if s.Sim.CrashCycle < 1 {
			s.Sim.CrashCycle = 1
		}
		ses := NewKVSession(s)
		if r := ses.Execute(); !r.Crashed {
			t.Fatalf("point %d: expected a crash", i)
		}
		ses.Crash()
		ses.Recover(sim.Config{})

		// Recovery is eager, so its repairs survive an immediate second
		// failure; after that, an independent verification pass must
		// find every shard's checksums acknowledged and contents exact.
		ses.Mem.Crash()
		cn := &pmem.Native{Mem: ses.Mem}
		for tid, sh := range ses.Shards {
			st := sh.RecoverLP(cn, s.Preload, func(j int) (uint64, uint64) {
				k := workloads.KVKey(tid, j)
				return k, workloads.KVInitVal(s.Seed, k)
			})
			if !st.Verified {
				t.Fatalf("point %d shard %d: repaired table does not verify (%+v)", i, tid, st)
			}
			if st.AckedPuts != ses.Acked()[tid] {
				t.Fatalf("point %d shard %d: acked %d on re-pass, %d at recovery",
					i, tid, st.AckedPuts, ses.Acked()[tid])
			}
			if ses.Acked()[tid] > 0 {
				sawPartialAck = true
			}
		}
		if err := ses.VerifyAcked(ses.Acked()); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
	if !sawPartialAck {
		t.Fatal("sweep never acknowledged any put — crash points do not exercise the journal")
	}
}

// TestKVCrashDuringRecoveryLP injects a second failure into recovery
// itself; a re-run of recovery must still converge to the same state.
func TestKVCrashDuringRecoveryLP(t *testing.T) {
	spec := kvTestSpec(VariantLP)
	clean := NewKVSession(spec)
	cleanRes := clean.Execute()

	s := spec
	s.Sim.CrashCycle = cleanRes.Cycles / 2
	ses := NewKVSession(s)
	if r := ses.Execute(); !r.Crashed {
		t.Fatal("expected a crash")
	}
	ses.Crash()
	first := ses.Recover(sim.Config{})

	// Re-run from the same crashed image with recovery itself crashing
	// partway, then recover again.
	ses2 := NewKVSession(s)
	if r := ses2.Execute(); !r.Crashed {
		t.Fatal("expected a crash")
	}
	ses2.Crash()
	rr := ses2.Recover(sim.Config{CrashCycle: first.RecoverCyc / 2})
	if rr.Crashed {
		ses2.Crash()
		ses2.Recover(sim.Config{})
	}
	ses2.Mem.Crash()
	for tid := range ses2.Shards {
		if ses2.Acked()[tid] != ses.Acked()[tid] {
			t.Fatalf("shard %d: acked %d after interrupted recovery, %d after clean recovery",
				tid, ses2.Acked()[tid], ses.Acked()[tid])
		}
	}
	if err := ses2.VerifyAcked(ses2.Acked()); err != nil {
		t.Fatal(err)
	}
}

// TestKVCrashSweepEP: EP acknowledges per put; the durable state at
// every crash point must equal the acknowledged prefix exactly.
func TestKVCrashSweepEP(t *testing.T) {
	testKVCrashSweepEager(t, VariantEP, 8)
}

// TestKVCrashSweepWAL: WAL rolls back the in-flight transaction; the
// durable state must equal the committed-transaction prefix.
func TestKVCrashSweepWAL(t *testing.T) {
	testKVCrashSweepEager(t, VariantWAL, 8)
}

func testKVCrashSweepEager(t *testing.T, v Variant, points int) {
	t.Helper()
	spec := kvTestSpec(v)
	clean := NewKVSession(spec)
	cleanRes := clean.Execute()
	if cleanRes.Crashed {
		t.Fatal("clean run crashed")
	}
	for i := 1; i <= points; i++ {
		s := spec
		s.Sim.CrashCycle = int64(0.9 * float64(i) / float64(points) * float64(cleanRes.Cycles))
		if s.Sim.CrashCycle < 1 {
			s.Sim.CrashCycle = 1
		}
		ses := NewKVSession(s)
		if r := ses.Execute(); !r.Crashed {
			t.Fatalf("point %d: expected a crash", i)
		}
		ses.Crash()
		ses.Recover(sim.Config{})
		ses.Mem.Crash() // recovery repairs must themselves be durable
		if err := ses.VerifyAcked(ses.Acked()); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
}

// TestKVCrashAtEndLP: a crash after the last op acknowledges whatever
// drifted to NVMM; with no flushes on the fast path that is typically a
// proper prefix, and verification must still hold.
func TestKVCrashAtEndLP(t *testing.T) {
	spec := kvTestSpec(VariantLP)
	ses := NewKVSession(spec)
	if r := ses.Execute(); r.Crashed {
		t.Fatal("unexpected crash")
	}
	ses.Crash() // power fails right at completion; caches lost
	ses.Recover(sim.Config{})
	totalPuts := 0
	for tid, w := range ses.Writers {
		if got := ses.Acked()[tid]; got > int(w.Puts) {
			t.Fatalf("shard %d acknowledged %d puts, only %d issued", tid, got, w.Puts)
		}
		totalPuts += int(w.Puts)
	}
	if err := ses.VerifyAcked(ses.Acked()); err != nil {
		t.Fatal(err)
	}
	_ = totalPuts
}

func TestKVSpecDefaults(t *testing.T) {
	var s KVSpec
	s.defaults()
	if s.Mix != "a" || s.Dist != "zipfian" || s.Threads != 8 || s.BatchK != 32 {
		t.Fatalf("unexpected defaults: %+v", s)
	}
}
