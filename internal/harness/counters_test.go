package harness

import (
	"strings"
	"testing"
)

// TestCounters pins the unified snapshot both lpsim and lpbench surface:
// identical specs submitted twice execute once, and the hit shows up in
// the same struct either tool reports.
func TestCounters(t *testing.T) {
	p := NewRunPool(2, NewCache())
	defer p.Close()
	spec := smokeSpec("tmm", VariantBase)
	if _, err := p.RunAll(spec, spec); err != nil {
		t.Fatal(err)
	}
	c := p.Counters()
	if c.Workers != 2 || c.Submitted != 2 || c.Executed != 1 {
		t.Fatalf("counters %+v, want workers 2, submitted 2, executed 1", c)
	}
	if !c.Cache || c.CacheHits != 1 || c.CacheMisses != 1 {
		t.Fatalf("counters %+v, want cache on with 1 hit / 1 miss", c)
	}
	s := c.String()
	for _, want := range []string{"2 specs submitted", "1 executed", "1 hits / 1 misses"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}

	q := NewRunPool(1, nil)
	defer q.Close()
	if c := q.Counters(); c.Cache || !strings.Contains(c.String(), "cache off") {
		t.Fatalf("cache-off counters %+v (%q)", c, c.String())
	}
}
