// Package harness builds and executes complete experiment sessions —
// workload + persistence strategy + simulated machine — and regenerates
// every table and figure of the paper's evaluation (§V–§VI). See
// DESIGN.md §6 for the experiment index.
package harness

import (
	"fmt"

	"lazyp/internal/checksum"
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
	"lazyp/internal/sim"
	"lazyp/internal/workloads"
)

// Variant names a persistence discipline (Table IV).
type Variant string

// The four variants of the paper's Figure 10.
const (
	VariantBase Variant = "base"
	VariantLP   Variant = "lp"
	VariantEP   Variant = "ep"
	VariantWAL  Variant = "wal"
)

// Spec describes one simulation run.
type Spec struct {
	Workload string // "tmm", "cholesky", "conv2d", "gauss", "fft"
	Variant  Variant

	N       int // problem size (matrix dim / FFT points)
	Tile    int // TMM tile size / conv2d block rows (0 = default)
	Threads int
	Kind    checksum.Kind
	Gran    workloads.Granularity // TMM only

	// WindowOuter, when positive, simulates only the first that many
	// outer-loop units (the paper's fixed-work windows, §V-C). Windowed
	// runs produce partial outputs; Verify applies to full runs only.
	WindowOuter int

	// ElementTx makes the TMM WAL variant use one durable transaction
	// per output element (the literal Figure 2 structure) instead of
	// one per ii region — kept as an ablation.
	ElementTx bool

	// EmbeddedTable switches TMM to the embedded checksum organization
	// of Figure 7(a) (ablation; the paper rejects it for the standalone
	// table).
	EmbeddedTable bool

	Sim sim.Config // zero fields take defaults; Threads is overridden

	// EagerChecksum switches the LP variant to eager checksum writes
	// (ablation).
	EagerChecksum bool
}

// Result captures the metrics of one run, in the units the paper
// reports.
type Result struct {
	Cycles     int64
	Writes     uint64 // NVMM line writes: evictions + flushes (+ cleanup)
	EvictW     uint64
	FlushW     uint64
	CleanW     uint64
	Reads      uint64
	Crashed    bool
	Haz        sim.Hazards
	Ops        sim.OpCounts
	Cache      memsim.Stats
	RecoverCyc int64 // cycles spent in recovery, when recovery ran
}

// Session owns the memory image and the pieces of one run so that crash
// and recovery flows can be driven step by step.
type Session struct {
	Spec  Spec
	Mem   *memsim.Memory
	Work  workloads.Workload
	Strat lp.Strategy
	Eng   *sim.Engine

	wal *ep.WAL
	rec *ep.Recompute
}

// defaultSizes fills workload-specific defaults.
func (s *Spec) defaults() {
	if s.Threads == 0 {
		s.Threads = 8
	}
	if s.N == 0 {
		switch s.Workload {
		case "tmm", "cholesky", "conv2d", "gauss":
			s.N = 256
		case "fft":
			s.N = 16384
		}
	}
	if s.Tile == 0 {
		switch s.Workload {
		case "tmm":
			s.Tile = 16
		case "conv2d":
			s.Tile = 8 // block rows
		}
	}
}

// capacityFor sizes the simulated memory for the workload plus logs,
// tables, and slack.
func capacityFor(s Spec) int {
	var data int
	switch s.Workload {
	case "tmm", "cholesky", "gauss":
		data = 3 * s.N * s.N * 8
	case "conv2d":
		data = 3*s.N*s.N*8 + 1024
	case "fft":
		data = 6 * s.N * 8
	default:
		panic(fmt.Sprintf("harness: unknown workload %q", s.Workload))
	}
	return 2*data + (8 << 20)
}

// NewSession allocates the memory image, workload, and strategy for
// spec. NVMM traffic counters are reset after setup, so Execute measures
// only the kernel, mirroring the paper's methodology.
func NewSession(spec Spec) *Session {
	spec.defaults()
	mem := memsim.NewMemory(capacityFor(spec))

	var w workloads.Workload
	switch spec.Workload {
	case "tmm":
		if spec.EmbeddedTable {
			w = workloads.NewTMMEmbedded(mem, spec.N, spec.Tile, spec.Threads, spec.Kind)
		} else {
			w = workloads.NewTMMGran(mem, spec.N, spec.Tile, spec.Threads, spec.Kind, spec.Gran)
		}
	case "cholesky":
		w = workloads.NewCholesky(mem, spec.N, spec.Threads, spec.Kind)
	case "conv2d":
		w = workloads.NewConv2D(mem, spec.N, spec.Tile, spec.Threads, spec.Kind)
	case "gauss":
		w = workloads.NewGauss(mem, spec.N, spec.Threads, spec.Kind)
	case "fft":
		w = workloads.NewFFT(mem, spec.N, spec.Threads, spec.Kind)
	default:
		panic(fmt.Sprintf("harness: unknown workload %q", spec.Workload))
	}

	ses := &Session{Spec: spec, Mem: mem, Work: w}
	switch spec.Variant {
	case VariantBase:
		ses.Strat = lp.Base{}
	case VariantLP:
		l := lp.NewLP(w.Table(), spec.Kind, spec.Threads)
		l.EagerChecksum = spec.EagerChecksum
		ses.Strat = l
	case VariantEP:
		ses.rec = ep.NewRecompute(mem, spec.Workload+".ep", spec.Threads)
		ses.Strat = ses.rec
	case VariantWAL:
		if tmm, ok := w.(*workloads.TMM); ok && spec.ElementTx {
			// Ablation: the paper's Figure 2 structure taken literally —
			// one durable transaction per output element.
			tmm.ElementTx = true
		}
		ses.wal = ep.NewWAL(mem, spec.Workload+".wal", spec.Threads, maxRegionStores(spec))
		ses.Strat = ses.wal
	default:
		panic(fmt.Sprintf("harness: unknown variant %q", spec.Variant))
	}

	cfg := spec.Sim
	cfg.Threads = spec.Threads
	if cfg.Hier == (memsim.Config{}) {
		cfg.Hier = memsim.DefaultConfig(spec.Threads)
	}
	ses.Eng = sim.New(cfg, mem)
	mem.ResetCounters()
	return ses
}

// maxRegionStores bounds one region's stores (WAL log capacity).
func maxRegionStores(s Spec) int {
	switch s.Workload {
	case "tmm":
		if s.ElementTx {
			return 2
		}
		return s.Tile * s.N
	case "cholesky":
		return s.N/s.Threads + 2
	case "conv2d":
		return s.Tile * s.N
	case "gauss":
		return (s.N/s.Threads + 1) * s.N
	case "fft":
		return 2*s.N/s.Threads + 4
	default:
		return s.N
	}
}

// Execute runs the workload to completion (or to the configured crash)
// and returns the measured metrics.
func (s *Session) Execute() Result {
	eng := s.Eng
	b := eng.NewBarrier()
	crashed := eng.Run(func(t *sim.Thread) {
		env := workloads.Env{
			C:       t,
			Tid:     t.ThreadID(),
			Threads: s.Spec.Threads,
			Barrier: func() { t.BarrierWait(b) },
		}
		s.Work.RunWindow(env, s.Strat.Thread(t.ThreadID()), s.Spec.WindowOuter)
	})
	return s.result(eng, crashed, 0)
}

func (s *Session) result(eng *sim.Engine, crashed bool, recoverCyc int64) Result {
	return measure(eng, s.Mem, crashed, recoverCyc)
}

// measure packages one engine run's metrics (shared by the kernel and
// KV session types).
func measure(eng *sim.Engine, mem *memsim.Memory, crashed bool, recoverCyc int64) Result {
	total, evict, flush, clean := mem.NVMMWrites()
	return Result{
		Cycles:     eng.ExecCycles(),
		Writes:     total,
		EvictW:     evict,
		FlushW:     flush,
		CleanW:     clean,
		Reads:      mem.NVMMReads(),
		Crashed:    crashed,
		Haz:        eng.Hazards(),
		Ops:        eng.Ops(),
		Cache:      eng.Hier.Stats(),
		RecoverCyc: recoverCyc,
	}
}

// Crash applies the failure to the memory image (cache contents lost).
// Call after Execute reported a crash.
func (s *Session) Crash() { s.Mem.Crash() }

// Recover runs the variant's recovery single-threaded on a fresh
// machine over the crashed memory image and returns its metrics. A
// crash may be injected into recovery itself via recoverCfg.CrashCycle.
func (s *Session) Recover(recoverCfg sim.Config) Result {
	recoverCfg.Threads = 1
	if recoverCfg.Hier == (memsim.Config{}) {
		recoverCfg.Hier = memsim.DefaultConfig(1)
	}
	eng := sim.New(recoverCfg, s.Mem)
	s.Eng = eng // subsequent DrainCaches/inspection target the recovery machine
	crashed := eng.Run(func(t *sim.Thread) {
		s.recoverBody(t)
	})
	return s.result(eng, crashed, eng.ExecCycles())
}

func (s *Session) recoverBody(c pmem.Ctx) {
	switch s.Spec.Variant {
	case VariantLP:
		s.Work.RecoverLP(c)
	case VariantEP:
		tmm, ok := s.Work.(*workloads.TMM)
		if !ok {
			panic("harness: EP recovery is implemented for TMM")
		}
		tmm.RecoverEP(c, s.rec)
	case VariantWAL:
		tmm, ok := s.Work.(*workloads.TMM)
		if !ok {
			panic("harness: WAL recovery is implemented for TMM")
		}
		tmm.RecoverWAL(c, s.wal)
	default:
		panic(fmt.Sprintf("harness: no recovery for variant %q", s.Spec.Variant))
	}
}

// DrainCaches writes every dirty line back to NVMM without counting the
// traffic (end-of-test durability, not part of the measured window).
func (s *Session) DrainCaches() {
	s.Eng.Hier.DrainDirty(s.Eng.ExecCycles(), false)
}

// Verify checks the architectural output against the workload's
// independent reference.
func (s *Session) Verify() error { return s.Work.Verify(s.Mem) }
