package harness

import (
	"testing"
	"testing/quick"

	"lazyp/internal/sim"
)

// crashSpec returns a small-but-interesting configuration for crash
// testing: several regions per thread so partial progress is plausible.
func crashSpec(workload string) Spec {
	s := Spec{Workload: workload, Variant: VariantLP, Threads: 2}
	switch workload {
	case "tmm":
		s.N, s.Tile = 64, 16
	case "cholesky":
		s.N = 48
	case "conv2d":
		s.N, s.Tile = 32, 4
	case "gauss":
		s.N = 48
	case "fft":
		s.N = 512
	}
	return s
}

// runCrashRecover executes spec, crashes it at the given fraction of the
// failure-free runtime, recovers, and verifies the output. It returns
// the recovery result for further assertions.
func runCrashRecover(t *testing.T, spec Spec, frac float64) Result {
	t.Helper()
	clean := NewSession(spec)
	res := clean.Execute()
	if err := clean.Verify(); err != nil {
		t.Fatalf("failure-free run wrong: %v", err)
	}

	s := spec
	s.Sim.CrashCycle = int64(frac * float64(res.Cycles))
	if s.Sim.CrashCycle < 1 {
		s.Sim.CrashCycle = 1
	}
	ses := NewSession(s)
	r := ses.Execute()
	if !r.Crashed {
		t.Fatalf("no crash at fraction %v", frac)
	}
	ses.Crash()
	rr := ses.Recover(sim.Config{})
	if rr.Crashed {
		t.Fatal("recovery crashed unexpectedly")
	}
	if err := ses.Verify(); err != nil {
		t.Fatalf("recovered output wrong (crash at %.0f%%): %v", 100*frac, err)
	}
	return rr
}

func TestCrashRecoveryLPAllWorkloads(t *testing.T) {
	for _, wl := range []string{"tmm", "cholesky", "conv2d", "gauss", "fft"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			for _, frac := range []float64{0.15, 0.45, 0.8, 0.98} {
				runCrashRecover(t, crashSpec(wl), frac)
			}
		})
	}
}

func TestCrashRecoveryEPTMM(t *testing.T) {
	spec := crashSpec("tmm")
	spec.Variant = VariantEP
	for _, frac := range []float64{0.2, 0.6, 0.9} {
		runCrashRecover(t, spec, frac)
	}
}

func TestCrashRecoveryWALTMM(t *testing.T) {
	spec := crashSpec("tmm")
	spec.Variant = VariantWAL
	for _, frac := range []float64{0.2, 0.6, 0.9} {
		runCrashRecover(t, spec, frac)
	}
}

func TestCrashRecoveryWALElementTxTMM(t *testing.T) {
	spec := crashSpec("tmm")
	spec.Variant = VariantWAL
	spec.ElementTx = true
	spec.N = 32 // element transactions are slow; keep it tiny
	for _, frac := range []float64{0.3, 0.7} {
		runCrashRecover(t, spec, frac)
	}
}

// TestCrashDuringRecovery injects a second failure into the recovery
// itself; LP recovery must make forward progress (it repairs eagerly),
// so recovering again afterwards still yields the correct result.
func TestCrashDuringRecovery(t *testing.T) {
	spec := crashSpec("tmm")
	clean := NewSession(spec)
	res := clean.Execute()

	s := spec
	s.Sim.CrashCycle = res.Cycles / 2
	ses := NewSession(s)
	if r := ses.Execute(); !r.Crashed {
		t.Fatal("no first crash")
	}
	ses.Crash()

	// Crash recovery halfway through its own (rough) expected length.
	rr := ses.Recover(sim.Config{CrashCycle: res.Cycles * 2})
	if !rr.Crashed {
		// Recovery finished before the injected cycle — fine, verify.
		if err := ses.Verify(); err != nil {
			t.Fatal(err)
		}
		return
	}
	ses.Crash()
	rr2 := ses.Recover(sim.Config{})
	if rr2.Crashed {
		t.Fatal("second recovery crashed")
	}
	if err := ses.Verify(); err != nil {
		t.Fatalf("output wrong after crash-during-recovery: %v", err)
	}
}

// TestRecoveredStateIsDurable crashes again immediately after recovery
// plus a cache drain: the recovered output must be in NVMM, not just in
// the caches.
func TestRecoveredStateIsDurable(t *testing.T) {
	spec := crashSpec("gauss")
	clean := NewSession(spec)
	res := clean.Execute()

	s := spec
	s.Sim.CrashCycle = res.Cycles * 2 / 3
	ses := NewSession(s)
	if r := ses.Execute(); !r.Crashed {
		t.Fatal("no crash")
	}
	ses.Crash()
	ses.Recover(sim.Config{})
	ses.DrainCaches()
	ses.Crash() // power fails right after recovery completes
	if err := ses.Verify(); err != nil {
		t.Fatalf("recovered state not durable: %v", err)
	}
}

// Property: crash at *any* cycle, recover, and the output is correct.
func TestCrashAnywhereProperty(t *testing.T) {
	spec := crashSpec("tmm")
	clean := NewSession(spec)
	res := clean.Execute()

	f := func(raw uint16) bool {
		frac := 0.01 + 0.98*float64(raw)/65535.0
		s := spec
		s.Sim.CrashCycle = int64(frac * float64(res.Cycles))
		if s.Sim.CrashCycle < 1 {
			s.Sim.CrashCycle = 1
		}
		ses := NewSession(s)
		if r := ses.Execute(); !r.Crashed {
			return false
		}
		ses.Crash()
		ses.Recover(sim.Config{})
		return ses.Verify() == nil
	}
	max := 12
	if testing.Short() {
		max = 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashWithPeriodicCleanup exercises §VI-A: cleanup bounds recovery
// but must never compromise correctness.
func TestCrashWithPeriodicCleanup(t *testing.T) {
	spec := crashSpec("tmm")
	clean := NewSession(spec)
	res := clean.Execute()
	spec.Sim.CleanPeriod = res.Cycles / 25
	for _, frac := range []float64{0.3, 0.75} {
		runCrashRecover(t, spec, frac)
	}
}
