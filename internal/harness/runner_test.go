package harness

import (
	"testing"

	"lazyp/internal/sim"
)

// smokeSpec returns a small, fast configuration for workload/variant.
func smokeSpec(workload string, v Variant) Spec {
	s := Spec{Workload: workload, Variant: v, Threads: 4}
	switch workload {
	case "tmm", "cholesky":
		s.N = 64
	case "conv2d", "gauss":
		s.N = 64
	case "fft":
		s.N = 1024
	}
	if workload == "tmm" {
		s.Tile = 16
	}
	if workload == "conv2d" {
		s.Tile = 4
	}
	return s
}

func TestSmokeAllWorkloadsAllVariants(t *testing.T) {
	for _, w := range []string{"tmm", "cholesky", "conv2d", "gauss", "fft"} {
		for _, v := range []Variant{VariantBase, VariantLP, VariantEP, VariantWAL} {
			w, v := w, v
			t.Run(w+"/"+string(v), func(t *testing.T) {
				ses := NewSession(smokeSpec(w, v))
				res := ses.Execute()
				if res.Crashed {
					t.Fatal("unexpected crash")
				}
				if res.Cycles <= 0 {
					t.Fatal("no cycles simulated")
				}
				if err := ses.Verify(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestSmokeCrashRecoverLP(t *testing.T) {
	spec := smokeSpec("tmm", VariantLP)
	// First, find out how long a clean run takes.
	clean := NewSession(spec)
	res := clean.Execute()
	if err := clean.Verify(); err != nil {
		t.Fatal(err)
	}

	spec.Sim.CrashCycle = res.Cycles / 2
	ses := NewSession(spec)
	r := ses.Execute()
	if !r.Crashed {
		t.Fatal("expected a crash")
	}
	ses.Crash()
	rr := ses.Recover(sim.Config{})
	if rr.Crashed {
		t.Fatal("recovery should not crash")
	}
	if err := ses.Verify(); err != nil {
		t.Fatal(err)
	}
}
