package harness

import (
	"sync"

	"lazyp/internal/obs"
)

// Canonical returns the spec with every default applied — workload
// sizes, thread count, and the full simulator configuration — so that
// two specs describing the same run compare equal. Spec is a plain
// comparable struct, so the canonical form serves directly as the
// memoization key: it is the "canonical serialization" of the run.
func (s Spec) Canonical() Spec {
	c := s
	c.defaults()
	cfg := c.Sim
	cfg.Threads = c.Threads
	c.Sim = cfg.WithDefaults()
	return c
}

// Cache memoizes Spec → Result across a process. The simulator is
// deterministic (DESIGN.md §3): a given canonical Spec always produces
// the same Result, so runs shared between experiments — e.g. the
// calibrated TMM base/LP/EP sessions recomputed by fig10, tab6,
// maxvdur, and fig11 — execute once and are served from memory after.
//
// Concurrent requests for the same spec are single-flighted: the first
// requester executes, later ones block on its completion and count as
// hits. Crashed runs are never cached (they exist only for the
// crash-injection flows, which need the live Session afterwards).
type Cache struct {
	mu      sync.Mutex
	entries map[Spec]*cacheEntry

	// Counters live in a private per-cache registry so that each cache
	// a test builds counts from zero; Stats keeps the legacy shape.
	hits   *obs.Counter
	misses *obs.Counter
}

type cacheEntry struct {
	ready chan struct{}
	res   Result
	err   error
}

// NewCache returns an empty memoization cache.
func NewCache() *Cache {
	reg := obs.NewRegistry()
	return &Cache{
		entries: make(map[Spec]*cacheEntry),
		hits:    reg.Counter("harness_cache_hits_total"),
		misses:  reg.Counter("harness_cache_misses_total"),
	}
}

// Do returns the memoized Result for spec, executing run exactly once
// per canonical spec. The boolean reports whether the value was served
// from the cache (including waiting on an in-flight execution).
func (c *Cache) Do(spec Spec, run func(Spec) (Result, error)) (Result, error, bool) {
	key := spec.Canonical()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		c.hits.Inc()
		return e.res, e.err, true
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Inc()
	e.res, e.err = run(key)
	if e.err != nil || e.res.Crashed {
		// Do not retain failures: a later identical request re-executes.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.res, e.err, false
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
