package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"lazyp/internal/sim"
)

// BenchRecord is one machine-readable benchmark measurement, the unit
// of the BENCH_*.json perf trajectory tracked across PRs. SpecKey is
// the canonical spec (every default applied) serialized as JSON — the
// run's stable identity across engine rewrites — and SimHash is the
// short hash of the resolved simulator configuration it embeds, so a
// config drift between two BENCH files is visible without diffing
// keys. Cycles/NVMM counters are simulated (deterministic); WallNs is
// host wall-clock and machine-dependent.
type BenchRecord struct {
	Workload   string  `json:"workload"`
	Variant    string  `json:"variant"`
	SpecKey    string  `json:"spec"`
	SimHash    string  `json:"sim_hash"`
	Cycles     int64   `json:"cycles"`
	NVMMWrites uint64  `json:"nvmm_writes"`
	NVMMReads  uint64  `json:"nvmm_reads"`
	WallMs     float64 `json:"wall_ms"`
	WallNs     int64   `json:"wall_ns"`
	CacheHit   bool    `json:"cache_hit"`
}

// Key returns the spec's canonical JSON serialization.
func (s Spec) Key() string {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		panic(err) // Spec is a plain data struct; cannot fail
	}
	return string(b)
}

// ConfigHash returns a short hex SHA-256 of the resolved simulator
// configuration's JSON form.
func ConfigHash(cfg sim.Config) string {
	b, err := json.Marshal(cfg.WithDefaults())
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// BenchMatrix lists the standard benchmark configurations: every
// workload under base/LP/EP (the Figure 12/13 set) plus the TMM WAL
// reference of Figure 10.
func BenchMatrix(o Options) []Spec {
	var specs []Spec
	for _, name := range benchNames {
		for _, v := range []Variant{VariantBase, VariantLP, VariantEP} {
			specs = append(specs, benchSpec(o, name, v))
		}
	}
	specs = append(specs, benchSpec(o, "tmm", VariantWAL))
	return specs
}

// RunBenchMatrix executes the standard matrix — across the pool's
// workers when one is attached — and reports per-benchmark simulated
// metrics plus host wall-clock time.
func RunBenchMatrix(o Options) ([]BenchRecord, error) {
	specs := BenchMatrix(o)
	records := make([]BenchRecord, len(specs))
	fill := func(i int, res Result, wall time.Duration, hit bool) {
		records[i] = BenchRecord{
			Workload:   specs[i].Workload,
			Variant:    string(specs[i].Variant),
			SpecKey:    specs[i].Key(),
			SimHash:    ConfigHash(specs[i].Canonical().Sim),
			Cycles:     res.Cycles,
			NVMMWrites: res.Writes,
			NVMMReads:  res.Reads,
			WallMs:     float64(wall.Microseconds()) / 1000,
			WallNs:     wall.Nanoseconds(),
			CacheHit:   hit,
		}
	}
	if o.Pool != nil {
		futures := make([]*Future, len(specs))
		for i, s := range specs {
			futures[i] = o.Pool.Submit(s)
		}
		var firstErr error
		for i, f := range futures {
			res, err := f.Wait()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			fill(i, res, f.Dur(), f.CacheHit())
		}
		return records, firstErr
	}
	for i, s := range specs {
		start := time.Now()
		res, err := execAndCheck(s)
		if err != nil {
			return records, err
		}
		fill(i, res, time.Since(start), false)
	}
	return records, nil
}
