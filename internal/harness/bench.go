package harness

import "time"

// BenchRecord is one machine-readable benchmark measurement, the unit
// of the BENCH_*.json perf trajectory tracked across PRs.
type BenchRecord struct {
	Workload   string  `json:"workload"`
	Variant    string  `json:"variant"`
	Cycles     int64   `json:"cycles"`
	NVMMWrites uint64  `json:"nvmm_writes"`
	NVMMReads  uint64  `json:"nvmm_reads"`
	WallMs     float64 `json:"wall_ms"`
	CacheHit   bool    `json:"cache_hit"`
}

// BenchMatrix lists the standard benchmark configurations: every
// workload under base/LP/EP (the Figure 12/13 set) plus the TMM WAL
// reference of Figure 10.
func BenchMatrix(o Options) []Spec {
	var specs []Spec
	for _, name := range benchNames {
		for _, v := range []Variant{VariantBase, VariantLP, VariantEP} {
			specs = append(specs, benchSpec(o, name, v))
		}
	}
	specs = append(specs, benchSpec(o, "tmm", VariantWAL))
	return specs
}

// RunBenchMatrix executes the standard matrix — across the pool's
// workers when one is attached — and reports per-benchmark simulated
// metrics plus host wall-clock time.
func RunBenchMatrix(o Options) ([]BenchRecord, error) {
	specs := BenchMatrix(o)
	records := make([]BenchRecord, len(specs))
	fill := func(i int, res Result, wall time.Duration, hit bool) {
		records[i] = BenchRecord{
			Workload:   specs[i].Workload,
			Variant:    string(specs[i].Variant),
			Cycles:     res.Cycles,
			NVMMWrites: res.Writes,
			NVMMReads:  res.Reads,
			WallMs:     float64(wall.Microseconds()) / 1000,
			CacheHit:   hit,
		}
	}
	if o.Pool != nil {
		futures := make([]*Future, len(specs))
		for i, s := range specs {
			futures[i] = o.Pool.Submit(s)
		}
		var firstErr error
		for i, f := range futures {
			res, err := f.Wait()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			fill(i, res, f.Dur(), f.CacheHit())
		}
		return records, firstErr
	}
	for i, s := range specs {
		start := time.Now()
		res, err := execAndCheck(s)
		if err != nil {
			return records, err
		}
		fill(i, res, time.Since(start), false)
	}
	return records, nil
}
