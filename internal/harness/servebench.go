package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
	"lazyp/internal/obs"
)

// ServeBenchRecord is one lpload measurement of the deployed LP
// service — the unit of the BENCH_serve.json serve-throughput
// trajectory tracked across PRs, the wall-clock sibling of the
// simulated BENCH_sched.json records. Client-side numbers (ops,
// throughput, p50/p99 over all ops) come from the load report;
// PutP99us is the server-side commit-to-ack put percentile merged
// across shards, the number the pipelined group commit is not allowed
// to regress.
type ServeBenchRecord struct {
	Mix        string  `json:"mix"`
	Fsync      bool    `json:"fsync"`
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_ops_s"`
	P50us      float64 `json:"p50_us"`
	P99us      float64 `json:"p99_us"`
	PutP99us   float64 `json:"put_p99_us"`
	AckedPuts  uint64  `json:"acked_puts"`
	Gets       uint64  `json:"gets"`
	Batches    uint64  `json:"batches"`
	Overloads  uint64  `json:"overloads"`
}

// ServeBenchDoc is the BENCH_serve.json document: the fixed load and
// server geometry the records were produced under, then one record per
// (mix, fsync) cell. Wall-clock numbers are machine-dependent; the
// value of the file is relative movement under identical conditions.
type ServeBenchDoc struct {
	Conns    int                `json:"conns"`
	Window   int                `json:"window"`
	DurS     float64            `json:"dur_s"`
	Shards   int                `json:"shards"`
	BatchK   int                `json:"batch_k"`
	Pipeline int                `json:"pipeline_depth"`
	Records  []ServeBenchRecord `json:"records"`
}

// putP99us merges the per-shard server-side put-latency histograms and
// returns the p99 in microseconds. Scope resolution is idempotent, so
// asking the registry for the same instrument the server registered
// returns the live histogram, not a fresh one.
func putP99us(reg *obs.Registry, shards int) float64 {
	var merged obs.HistSnapshot
	for id := 0; id < shards; id++ {
		h := reg.Scope("shard", strconv.Itoa(id)).HistogramScaled("kvserve_put_latency_seconds", 1e-9)
		snap := h.Snapshot()
		for b, n := range snap.Counts {
			merged.Counts[b] += n
		}
		merged.Count += snap.Count
		merged.Sum += snap.Sum
		if snap.Max > merged.Max {
			merged.Max = snap.Max
		}
	}
	return float64(merged.Quantile(0.99)) / 1e3
}

// RunServeBench measures the LP service under the fixed lpload matrix:
// kvgen mixes a (50% put), b (5% put), c (get-only) without fsync,
// plus a and b with every group commit priced at a real fsync. Each
// cell boots a fresh server on a fresh image so journal occupancy
// never carries over. Wall-clock native: run it alone, not under a
// simulation pool.
func RunServeBench(o Options) (ServeBenchDoc, error) {
	dir, err := os.MkdirTemp("", "lpserve-bench-*")
	if err != nil {
		return ServeBenchDoc{}, err
	}
	defer os.RemoveAll(dir)

	doc := ServeBenchDoc{
		Conns: 4, Window: 64, DurS: 2.0,
		Shards: 4, BatchK: 32, Pipeline: 4,
	}
	if o.Quick {
		doc.DurS = 0.3
	}
	cells := []struct {
		mix   string
		fsync bool
	}{
		{"a", false}, {"b", false}, {"c", false},
		{"a", true}, {"b", true},
	}
	for i, cell := range cells {
		cfg := kvserve.Config{
			Addr: "127.0.0.1:0", Mode: lpstore.ModeLP,
			Path:   filepath.Join(dir, fmt.Sprintf("serve%d.img", i)),
			Shards: doc.Shards, Capacity: 1 << 14, MaxOps: 1 << 17, BatchK: doc.BatchK,
			Streams: 4, Keys: 2048, Seed: 1,
			Mailbox: 256, BatchWait: 500 * time.Microsecond,
			Fsync: cell.fsync, PipelineDepth: doc.Pipeline,
		}
		s, err := kvserve.New(cfg)
		if err != nil {
			return doc, fmt.Errorf("servebench %s: %w", cell.mix, err)
		}
		if err := s.Start(); err != nil {
			s.Close()
			return doc, fmt.Errorf("servebench %s: %w", cell.mix, err)
		}
		rep, lerr := kvserve.RunLoad(s.Addr(), kvserve.LoadOpts{
			Conns: doc.Conns, Window: doc.Window,
			Dur: time.Duration(doc.DurS * float64(time.Second)),
			Mix: cell.mix, Dist: "zipfian",
			Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
		})
		st := s.Stats()
		p99put := putP99us(s.Metrics(), cfg.Shards)
		if err := s.Close(); err != nil {
			return doc, fmt.Errorf("servebench %s: drain: %w", cell.mix, err)
		}
		if lerr != nil {
			return doc, fmt.Errorf("servebench %s: load: %w", cell.mix, lerr)
		}
		if rep.Errors > 0 {
			return doc, fmt.Errorf("servebench %s: %d connection errors", cell.mix, rep.Errors)
		}
		doc.Records = append(doc.Records, ServeBenchRecord{
			Mix: cell.mix, Fsync: cell.fsync,
			Ops: rep.Ops, Throughput: rep.Throughput,
			P50us: rep.P50us, P99us: rep.P99us, PutP99us: p99put,
			AckedPuts: st.AckedPuts, Gets: st.Gets, Batches: st.Batches,
			Overloads: rep.Overloads,
		})
	}
	return doc, nil
}
