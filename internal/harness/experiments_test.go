package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestExperimentsQuick runs every registered experiment end to end in
// quick mode: each must complete without error and produce a table.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	opt := Options{Quick: true, Threads: 4}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, opt); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if strings.Contains(out, "MISMATCH") {
				t.Fatalf("%s reported a mismatch:\n%s", e.ID, out)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig10"); !ok {
		t.Fatal("fig10 not registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id resolved")
	}
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
}

// TestNativeRunInterfaceKernels exercises the interface-based native
// path (used for cross-checking kernels without simulation).
func TestNativeRunInterfaceKernels(t *testing.T) {
	for _, wl := range []string{"tmm", "conv2d"} {
		spec := smokeSpec(wl, VariantLP)
		if _, err := NativeRun(spec); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
	}
}
