package harness

import (
	"fmt"
	"runtime"
	"time"

	"lazyp/internal/obs"
)

// RunPool executes independent simulation Specs on a fixed set of
// worker goroutines. Each simulation is itself deterministic and fully
// isolated (its own Memory, Hierarchy, and Engine), so fanning runs out
// across host cores changes wall-clock time and nothing else; callers
// submit a batch of specs and collect the futures in submission order,
// which keeps every experiment's output byte-identical to a sequential
// run.
//
// An optional Cache memoizes results process-wide so byte-identical
// specs shared between experiments execute once (see Cache).
type RunPool struct {
	jobs    chan *Future
	done    chan struct{}
	cache   *Cache
	workers int

	// Per-pool registry backing the runner statistics. Private rather
	// than obs.Default because tests build many pools per process and
	// each must count from zero; Metrics exposes it for scraping.
	reg       *obs.Registry
	submitted *obs.Counter
	executed  *obs.Counter
}

// Future is the pending result of one submitted Spec.
type Future struct {
	spec  Spec
	ready chan struct{}
	res   Result
	err   error
	hit   bool
	dur   time.Duration
}

// Wait blocks until the run completes and returns its Result. Runs that
// crash unexpectedly (no CrashCycle configured by the caller) are
// reported as errors, matching the sequential harness behavior.
func (f *Future) Wait() (Result, error) {
	<-f.ready
	return f.res, f.err
}

// CacheHit reports whether the result was served from the memo cache.
// Valid after Wait returns.
func (f *Future) CacheHit() bool { return f.hit }

// Dur returns the wall-clock execution time of the run (≈0 for cache
// hits). Valid after Wait returns.
func (f *Future) Dur() time.Duration { return f.dur }

// NewRunPool starts a pool of workers (GOMAXPROCS when workers <= 0)
// sharing the given memo cache (nil disables memoization). Close must
// be called when the pool is no longer needed.
func NewRunPool(workers int, cache *Cache) *RunPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := obs.NewRegistry()
	p := &RunPool{
		jobs:      make(chan *Future, 4*workers),
		done:      make(chan struct{}),
		cache:     cache,
		workers:   workers,
		reg:       reg,
		submitted: reg.Counter("harness_specs_submitted_total"),
		executed:  reg.Counter("harness_specs_executed_total"),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *RunPool) Workers() int { return p.workers }

// Cache returns the pool's memo cache (nil when memoization is off).
func (p *RunPool) Cache() *Cache { return p.cache }

// Metrics returns the pool's private metrics registry.
func (p *RunPool) Metrics() *obs.Registry { return p.reg }

// Close stops the workers once all submitted runs have drained.
func (p *RunPool) Close() { close(p.done) }

// Submit queues spec for execution and returns its future.
func (p *RunPool) Submit(spec Spec) *Future {
	f := &Future{spec: spec, ready: make(chan struct{})}
	p.submitted.Inc()
	p.jobs <- f
	return f
}

// RunAll submits every spec, then collects the results in submission
// order. All runs complete even when one fails; the first error wins.
func (p *RunPool) RunAll(specs ...Spec) ([]Result, error) {
	futures := make([]*Future, len(specs))
	for i, s := range specs {
		futures[i] = p.Submit(s)
	}
	out := make([]Result, len(specs))
	var firstErr error
	for i, f := range futures {
		res, err := f.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out[i] = res
	}
	return out, firstErr
}

// Stats returns the number of specs submitted and actually executed
// (misses; the difference was served by the memo cache).
func (p *RunPool) Stats() (submitted, executed uint64) {
	return p.submitted.Load(), p.executed.Load()
}

func (p *RunPool) worker() {
	for {
		select {
		case f := <-p.jobs:
			p.run(f)
		case <-p.done:
			// Drain anything already queued before exiting.
			select {
			case f := <-p.jobs:
				p.run(f)
				continue
			default:
			}
			return
		}
	}
}

func (p *RunPool) run(f *Future) {
	start := time.Now()
	if p.cache != nil {
		f.res, f.err, f.hit = p.cache.Do(f.spec, p.exec)
	} else {
		f.res, f.err = p.exec(f.spec)
	}
	f.dur = time.Since(start)
	close(f.ready)
}

// exec performs one simulation, converting panics (workload setup
// errors, propagated simulated-thread panics) into errors so a bad spec
// fails its experiment instead of killing every worker's session.
func (p *RunPool) exec(spec Spec) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: run %s/%s panicked: %v", spec.Workload, spec.Variant, r)
		}
	}()
	p.executed.Inc()
	ses := NewSession(spec)
	res = ses.Execute()
	if res.Crashed && spec.Sim.CrashCycle == 0 {
		return res, fmt.Errorf("harness: unexpected crash in %s/%s", spec.Workload, spec.Variant)
	}
	return res, nil
}
