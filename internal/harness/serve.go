package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
)

// expServe is E15: the deployed kvserve service measured end to end —
// real TCP connections, a real backing file as the NVMM, wall-clock
// throughput and latency per persistence discipline. It then restarts
// the LP image and verifies recovery, the acked-prefix contract the
// crash test enforces under SIGKILL. Native: timing on the host clock,
// so the runner executes it alone.
func expServe(w io.Writer, o Options) error {
	dir, err := os.MkdirTemp("", "lpserve-e15-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Journal sizing headroom: worst case every put opens its own batch
	// and pads, consuming BatchK entries per put; Conns*Ops puts across
	// Shards shards stay far below Shards*MaxOps even then.
	cfg := kvserve.Config{
		Addr: "127.0.0.1:0", Mode: lpstore.ModeLP,
		Shards: 4, Capacity: 1 << 14, MaxOps: 1 << 17, BatchK: 16,
		Streams: 4, Keys: 2048, Seed: 1,
		Mailbox: 256, BatchWait: 500 * time.Microsecond,
	}
	load := kvserve.LoadOpts{
		Conns: 2, Window: 64, Ops: 10000,
		Mix: "a", Dist: "zipfian",
		Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
	}
	if o.Quick {
		cfg.Shards, cfg.Capacity, cfg.MaxOps = 2, 1<<12, 1<<14
		cfg.Streams, cfg.Keys = 2, 256
		load.Streams, load.Keys = cfg.Streams, cfg.Keys
		load.Ops = 300
	}

	modes := []lpstore.Mode{lpstore.ModeBase, lpstore.ModeLP, lpstore.ModeEP, lpstore.ModeWAL}
	round := func(tw io.Writer, cfg kvserve.Config, load kvserve.LoadOpts, tag string) (kvserve.Config, error) {
		var lpCfg kvserve.Config
		for _, m := range modes {
			if cfg.Fsync && m == lpstore.ModeBase {
				continue // base has no ordering points to price
			}
			c := cfg
			c.Mode = m
			c.Path = filepath.Join(dir, m.String()+tag+".img")
			if m == lpstore.ModeLP {
				lpCfg = c
			}
			s, err := kvserve.New(c)
			if err != nil {
				return lpCfg, fmt.Errorf("serve %s: %w", m, err)
			}
			if err := s.Start(); err != nil {
				s.Close()
				return lpCfg, fmt.Errorf("serve %s: %w", m, err)
			}
			rep, lerr := kvserve.RunLoad(s.Addr(), load)
			st := s.Stats()
			if err := s.Close(); err != nil {
				return lpCfg, fmt.Errorf("serve %s: drain: %w", m, err)
			}
			if lerr != nil {
				return lpCfg, fmt.Errorf("serve %s: load: %w", m, lerr)
			}
			if rep.Errors > 0 {
				return lpCfg, fmt.Errorf("serve %s: %d connection errors", m, rep.Errors)
			}
			fmt.Fprintf(tw, "%s%s\t%d\t%.0f\t%d\t%d\t%.0f\t%.0f\t%d/%d\n",
				m, tag, rep.Ops, rep.Throughput, st.AckedPuts, st.Batches,
				rep.P50us, rep.P99us, rep.Overloads, rep.Full)
		}
		return lpCfg, nil
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "backend\tops\tthroughput (ops/s)\tacked puts\tbatches\tp50 (µs)\tp99 (µs)\toverload/full")
	lpCfg, err := round(tw, cfg, load, "")
	if err != nil {
		return err
	}
	// Second round with every ordering point priced at a real fsync:
	// EP/WAL pay one or more per put, LP amortizes one per K-put batch.
	// Fewer ops — fsync is the point, not the sample size.
	fcfg := cfg
	fcfg.Fsync = true
	fload := load
	fload.Ops = 1000
	if o.Quick {
		fload.Ops = 50
	}
	if _, err := round(tw, fcfg, fload, "+fsync"); err != nil {
		return err
	}

	// The durability half: reopen the LP image cold and hold it to the
	// recovery contract a graceful drain promises — zero repair.
	s, err := kvserve.New(lpCfg)
	if err != nil {
		return fmt.Errorf("lp restart: %w", err)
	}
	if !s.Restored() {
		s.Close()
		return fmt.Errorf("lp restart did not detect the image")
	}
	var acked int
	for _, st := range s.RecoveryStats() {
		if !st.Verified || st.Repaired != 0 {
			s.Close()
			return fmt.Errorf("lp restart: shard %d not clean after drain: %+v", st.Shard, st)
		}
		acked += st.AckedPuts
	}
	verr := s.VerifyRecovered()
	keys := len(s.Contents())
	if err := s.Close(); err != nil {
		return fmt.Errorf("lp restart: close: %w", err)
	}
	if verr != nil {
		return fmt.Errorf("lp restart: %w", verr)
	}
	fmt.Fprintf(tw, "lp restart\t\t\t\t\t\t\t%d journal records, %d keys, verified, 0 repairs\n", acked, keys)
	return tw.Flush()
}
