package harness

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Select resolves a comma-separated list of experiment ids ("all" for
// the full registry) against the registry, preserving registry order.
func Select(ids string) ([]Experiment, error) {
	all := Experiments()
	if ids == "all" {
		return all, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(ids, ",") {
		want[strings.TrimSpace(id)] = true
	}
	var out []Experiment
	for _, e := range all {
		if want[e.ID] {
			out = append(out, e)
			delete(want, e.ID)
		}
	}
	for id := range want {
		return nil, fmt.Errorf("harness: unknown experiment %q", id)
	}
	return out, nil
}

// header prints the experiment banner exactly as the sequential CLI
// always has, so outputs stay comparable across runner modes.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "=== %s — %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "paper: %s\n", e.Paper)
}

// RunExperiments executes exps and writes their tables to w in registry
// order. Per-experiment timing lines go to progress (nil silences
// them), never to w, so w's contents depend only on the simulated
// results.
//
// When opt.Pool is attached and more than one experiment was selected,
// experiments execute concurrently, each rendering into its own buffer;
// buffers are flushed to w in order once every experiment finishes. The
// native real-machine experiment (tab7) is held back and run by itself
// afterwards so its wall-clock measurement is not distorted by
// concurrently running simulations. All experiments run even if one
// fails; the first error is returned.
func RunExperiments(w, progress io.Writer, exps []Experiment, opt Options) error {
	if opt.Pool == nil || opt.Pool.Workers() < 2 || len(exps) < 2 {
		var firstErr error
		for _, e := range exps {
			header(w, e)
			start := time.Now()
			if err := e.Run(w, opt); err != nil {
				fmt.Fprintf(w, "ERROR: %v\n", err)
				if firstErr == nil {
					firstErr = err
				}
			}
			if progress != nil {
				fmt.Fprintf(progress, "%s: %.1fs\n", e.ID, time.Since(start).Seconds())
			}
			fmt.Fprintln(w)
		}
		return firstErr
	}

	type outcome struct {
		buf bytes.Buffer
		err error
	}
	outs := make([]*outcome, len(exps))
	var wg sync.WaitGroup
	var native []int // indices of wall-clock-sensitive experiments
	runOne := func(i int, e Experiment) {
		o := outs[i]
		header(&o.buf, e)
		start := time.Now()
		o.err = e.Run(&o.buf, opt)
		if o.err != nil {
			fmt.Fprintf(&o.buf, "ERROR: %v\n", o.err)
		}
		if progress != nil {
			fmt.Fprintf(progress, "%s: %.1fs\n", e.ID, time.Since(start).Seconds())
		}
		fmt.Fprintln(&o.buf)
	}
	for i, e := range exps {
		outs[i] = &outcome{}
		if e.Native {
			native = append(native, i)
			continue
		}
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			runOne(i, e)
		}(i, e)
	}
	wg.Wait()
	for _, i := range native {
		runOne(i, exps[i])
	}

	var firstErr error
	for _, o := range outs {
		if _, err := w.Write(o.buf.Bytes()); err != nil {
			return err
		}
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
	}
	return firstErr
}
