package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// BenchSnapshot wraps one wall-clock benchmark document with the
// context the regression gate needs to read it later: when it was
// taken, whether it was a -quick run (quick and full runs are never
// comparable — different geometry and duration), and how fast the
// machine that took it was (CalibOpsS). scripts/bench_gate.sh divides
// throughput by CalibOpsS and multiplies latency by it before applying
// its tolerance, so a snapshot taken on one machine still gates a run
// on another — roughly: the calibration cancels exactly only on the
// same hardware, which is why the gate's tolerance is wide.
type BenchSnapshot struct {
	Date      string          `json:"date"`
	Quick     bool            `json:"quick"`
	CalibOpsS float64         `json:"calib_ops_s"`
	Doc       json.RawMessage `json:"doc"`
}

// BenchHistory is the on-disk shape of BENCH_serve.json and
// BENCH_cluster.json: an append-only list of dated snapshots, newest
// last. Git history is the long-term archive; the committed file only
// needs enough entries for the gate (the newest quick snapshot) and
// the trajectory tables (the newest full snapshot).
type BenchHistory struct {
	Benchmark string          `json:"benchmark"`
	Snapshots []BenchSnapshot `json:"snapshots"`
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// Calibrate measures single-core integer throughput with a fixed
// mixing loop — a machine-speed scalar, not a benchmark of anything in
// this repo. Best of three short runs, so a scheduling hiccup lowers
// one sample instead of the result.
func Calibrate() float64 {
	const iters = 1 << 24
	best := 0.0
	for run := 0; run < 3; run++ {
		x := uint64(0x9e3779b97f4a7c15)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 29
		}
		calibSink += x
		if r := float64(iters) / time.Since(start).Seconds(); r > best {
			best = r
		}
	}
	return best
}

// AppendSnapshot stamps doc as a dated snapshot and appends it to the
// history file at path, creating the file if needed. A file in the old
// single-document format (or otherwise unreadable as a history) starts
// a fresh history — the previous contents live in git. The write is
// atomic (temp file + rename) so a crash never truncates the history.
func AppendSnapshot(path, benchmark string, quick bool, doc any) (BenchSnapshot, error) {
	raw, err := json.MarshalIndent(doc, "    ", "  ")
	if err != nil {
		return BenchSnapshot{}, err
	}
	snap := BenchSnapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		Quick:     quick,
		CalibOpsS: Calibrate(),
		Doc:       raw,
	}
	hist := BenchHistory{Benchmark: benchmark}
	if b, err := os.ReadFile(path); err == nil {
		var h BenchHistory
		if json.Unmarshal(b, &h) == nil && h.Benchmark == benchmark {
			hist = h
		}
	}
	hist.Snapshots = append(hist.Snapshots, snap)

	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return snap, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return snap, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return snap, fmt.Errorf("harness: commit snapshot: %w", err)
	}
	return snap, nil
}
