package harness

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lazyp/internal/cluster"
	"lazyp/internal/kvserve"
)

// expCluster is E16: the multi-node story measured end to end. Three
// in-process cluster members behind a Router carry the same load a
// single node carries, pricing what LP-acked replication adds — one
// pipelined network hop per put, not one fsync — and then a failover
// drill kills the victim mid-load and times the blip: how long puts
// owned by the dead node's slots stall before the promoted follower
// acks them. The drill ends with a rejoin on the victim's image and
// control address, timing recovery + delta catch-up back to alive.
// Native: wall-clock and real TCP, so the runner executes it alone.
// (Durability through SIGKILL is the crash test's job, not E16's —
// here the kill is an in-process abort and the measurement is time.)
func expCluster(w io.Writer, o Options) error {
	dir, err := os.MkdirTemp("", "lpcluster-e16-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	nodeCfg := func(path string) kvserve.Config { return clusterNodeCfg(o, path) }
	load := clusterLoadOpts(o, nodeCfg(""))
	if o.Quick {
		load.Ops = 300
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "topology\tops\tthroughput (ops/s)\tp50 (µs)\tp99 (µs)\toverload/resets")

	// Round 1: one plain kvserve node, no router, no replication — the
	// baseline every cluster number is read against.
	single, err := kvserve.New(nodeCfg(filepath.Join(dir, "single.img")))
	if err != nil {
		return fmt.Errorf("cluster e16: single: %w", err)
	}
	if err := single.Start(); err != nil {
		single.Close()
		return fmt.Errorf("cluster e16: single: %w", err)
	}
	rep, lerr := kvserve.RunLoad(single.Addr(), load)
	if cerr := single.Close(); cerr != nil {
		return fmt.Errorf("cluster e16: single drain: %w", cerr)
	}
	if lerr != nil {
		return fmt.Errorf("cluster e16: single load: %w", lerr)
	}
	fmt.Fprintf(tw, "1 node direct\t%d\t%.0f\t%.0f\t%.0f\t%d/%d\n",
		rep.Ops, rep.Throughput, rep.P50us, rep.P99us, rep.Overloads, rep.ConnResets)

	// Round 2: three members behind the router, every put replicated to
	// its slot's pair peer and acked only after the follower's group
	// commit — the replication + proxy tax at equal offered load.
	ids := []string{"e0", "e1", "e2"}
	nodes := make(map[string]*cluster.Node, len(ids))
	paths := make(map[string]string, len(ids))
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	var infos []cluster.NodeInfo
	for _, id := range ids {
		paths[id] = filepath.Join(dir, id+".img")
		n, err := cluster.StartNode(cluster.NodeConfig{
			ID:     id,
			Server: nodeCfg(paths[id]),
			Repl:   cluster.ReplConfig{Window: 512},
		})
		if err != nil {
			return fmt.Errorf("cluster e16: node %s: %w", id, err)
		}
		nodes[id] = n
		infos = append(infos, cluster.NodeInfo{
			ID: id, Addr: n.Server().Addr(), Ctrl: "http://" + n.CtrlAddr(),
		})
	}
	// E16 also runs under the race detector (TestExperimentsQuick in
	// CI): every node and the router are instrumented and 5–20×
	// slower, so the lease and the convergence deadlines get slack —
	// the measured numbers are meaningless there, only completion is.
	slack := time.Duration(1)
	if cluster.RaceEnabled {
		slack = 4
	}
	r, err := cluster.StartRouter(cluster.RouterConfig{
		Nodes:     infos,
		Heartbeat: 20 * time.Millisecond * slack,
		LeaseMiss: 3,
	})
	if err != nil {
		return fmt.Errorf("cluster e16: router: %w", err)
	}
	defer r.Close()

	rep, lerr = kvserve.RunLoad(r.Addr(), load)
	if lerr != nil {
		return fmt.Errorf("cluster e16: cluster load: %w", lerr)
	}
	fmt.Fprintf(tw, "3 nodes via router\t%d\t%.0f\t%.0f\t%.0f\t%d/%d\n",
		rep.Ops, rep.Throughput, rep.P50us, rep.P99us, rep.Overloads, rep.ConnResets)

	// Round 3: the failover drill. Insert-only load with retries on,
	// kill the victim mid-run, and time two spans on the host clock:
	// the blip (kill → first acked put whose slot the victim owned as
	// static primary — i.e. traffic that *had* to wait for promotion)
	// and the rejoin (restart → router reports the node alive again,
	// which includes journal-replay recovery and delta catch-up).
	pairs, err := cluster.BuildPairs(ids, cluster.DefaultVNodes, cluster.DefaultLoadFactor)
	if err != nil {
		return err
	}
	// The drill is ops-bounded, not duration-bounded: InsertOnly
	// streams mint fresh keys without limit, and a duration bound at
	// full speed overruns the tables' admission watermark — after
	// which the restarted victim answers Full to every catch-up replay
	// and can never rejoin. 2×8000 inserts spread ~2/3 per node (as
	// primary plus follower copies) stay well under Capacity−Cap/8.
	victim := ids[0]
	drill := load
	drill.Ops = 8000
	drill.InsertOnly = true
	drill.MaxRetries = 200
	drill.Reconnect = true
	if o.Quick {
		drill.Ops = 2000
	}

	// The blip is the longest silence between consecutive acks on
	// victim-owned slots once the kill lands: in-flight responses can
	// straggle through the proxy right after the abort, so "first ack
	// after the kill" would read ~0 — the max gap is the actual stall
	// clients on those slots sat through while the lease expired and
	// the promotion epoch cleared the routing fence.
	var mu sync.Mutex
	var killAt, lastVictimAck time.Time
	var blip time.Duration
	ackN := 0
	drill.OnAck = func(_ int, k, _ uint64) {
		mu.Lock()
		ackN++
		if pairs[cluster.SlotOf(k)][0] == 0 {
			now := time.Now()
			if !killAt.IsZero() {
				if gap := now.Sub(lastVictimAck); gap > blip {
					blip = gap
				}
			}
			lastVictimAck = now
		}
		mu.Unlock()
	}

	loadDone := make(chan kvserve.LoadReport, 1)
	go func() {
		rep, _ := kvserve.RunLoad(r.Addr(), drill)
		loadDone <- rep
	}()
	// Kill a quarter of the way in — enough warmup that victim-owned
	// slots have a pre-kill ack cadence, enough runway that the
	// post-promotion (and post-rejoin) cluster carries real load.
	killTarget := drill.Ops * drill.Conns / 4
	for deadline := time.Now().Add(20 * time.Second * slack); ; {
		mu.Lock()
		n := ackN
		mu.Unlock()
		if n >= killTarget {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster e16: drill stuck at %d acks before the kill", n)
		}
		time.Sleep(2 * time.Millisecond)
	}

	victimCtrl := nodes[victim].CtrlAddr()
	mu.Lock()
	killAt = time.Now()
	lastVictimAck = killAt
	mu.Unlock()
	nodes[victim].Abort()
	delete(nodes, victim)

	waitFor := func(state string, timeout time.Duration) (time.Duration, error) {
		start := time.Now()
		for time.Since(start) < timeout {
			t := r.Topology()
			if i := t.NodeIndex(victim); i >= 0 && t.Nodes[i].State == state {
				return time.Since(start), nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return 0, fmt.Errorf("cluster e16: %s never reached %s", victim, state)
	}
	if _, err := waitFor(cluster.StateDead, 10*time.Second*slack); err != nil {
		return err
	}

	// Restart on the same image and control address mid-load: recovery,
	// then router-driven catch-up, back to serving as a follower.
	n, err := cluster.StartNode(cluster.NodeConfig{
		ID:       victim,
		CtrlAddr: victimCtrl,
		Server:   nodeCfg(paths[victim]),
		Repl:     cluster.ReplConfig{Window: 512},
	})
	if err != nil {
		return fmt.Errorf("cluster e16: restart %s: %w", victim, err)
	}
	nodes[victim] = n
	rejoin, err := waitFor(cluster.StateAlive, 30*time.Second*slack)
	if err != nil {
		for id, n := range nodes {
			resp, derr := http.Get("http://" + n.CtrlAddr() + "/metrics")
			if derr != nil {
				fmt.Fprintf(os.Stderr, "e16 diag %s: %v\n", id, derr)
				continue
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(b), "\n") {
				if strings.Contains(line, "delta_pending") || strings.Contains(line, "rejects_total") ||
					strings.Contains(line, "repl_epoch") || strings.Contains(line, "catchup") {
					fmt.Fprintf(os.Stderr, "e16 diag %s: %s\n", id, line)
				}
			}
		}
		return err
	}

	rep = <-loadDone
	if rep.AckedPuts == 0 {
		return fmt.Errorf("cluster e16: drill acked nothing")
	}
	mu.Lock()
	stall := blip
	mu.Unlock()
	if stall == 0 {
		return fmt.Errorf("cluster e16: no post-kill ack on a victim-owned slot observed")
	}
	fmt.Fprintf(tw, "3 nodes, kill+rejoin\t%d\t%.0f\t%.0f\t%.0f\t%d/%d\n",
		rep.Ops, rep.Throughput, rep.P50us, rep.P99us, rep.Overloads, rep.ConnResets)
	fmt.Fprintf(tw, "failover\t\t\t\t\tblip %.0f ms (kill → promoted ack), rejoin %.0f ms (restart → alive)\n",
		float64(stall.Milliseconds()), float64(rejoin.Milliseconds()))
	return tw.Flush()
}
