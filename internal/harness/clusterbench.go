package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lazyp/internal/cluster"
	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
)

// clusterNodeCfg is the member geometry shared by E16 and the cluster
// benchmark — the same knobs, so BENCH_cluster.json numbers and the
// experiment table move together.
func clusterNodeCfg(o Options, path string) kvserve.Config {
	c := kvserve.Config{
		Addr: "127.0.0.1:0", Path: path, Mode: lpstore.ModeLP,
		Shards: 2, Capacity: 1 << 15, MaxOps: 1 << 17, BatchK: 32,
		Streams: 4, Keys: 2048, Seed: 16,
		Mailbox: 256, BatchWait: 300 * time.Microsecond,
		PipelineDepth: 2,
	}
	if o.Quick {
		// Shrink the table but not the journal: rounds share the
		// nodes, and insert-heavy phases must not exhaust a shard's LP
		// journal — a full journal answers StatusFull, which stalls
		// replication catch-up (replays degrade forever) instead of
		// failing loudly.
		c.Capacity = 1 << 13
		c.Streams, c.Keys = 2, 256
	}
	return c
}

// clusterLoadOpts is the offered load E16 and the cluster benchmark
// share: few fat connections, so response flushes and replication
// batches actually fill (see DESIGN.md §11).
func clusterLoadOpts(o Options, ref kvserve.Config) kvserve.LoadOpts {
	return kvserve.LoadOpts{
		Conns: 2, Window: 128, Ops: 40000,
		Mix: "a", Dist: "zipfian",
		Streams: ref.Streams, Keys: ref.Keys, Seed: ref.Seed,
	}
}

// ClusterBenchRecord is one load measurement against a topology — the
// unit of the BENCH_cluster.json trajectory, the cluster sibling of
// ServeBenchRecord.
type ClusterBenchRecord struct {
	Topology   string  `json:"topology"`
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_ops_s"`
	P50us      float64 `json:"p50_us"`
	P99us      float64 `json:"p99_us"`
	Overloads  uint64  `json:"overloads"`
	ConnResets uint64  `json:"conn_resets"`
}

// ClusterBenchDoc is the BENCH_cluster.json document body: the load
// and member geometry, then one record per topology — "single" (one
// node, direct) and "routed" (three members behind the router, every
// put LP-ack replicated to its pair). The routed/single ratio is the
// replication + proxy tax this trajectory exists to watch.
type ClusterBenchDoc struct {
	Nodes      int                  `json:"nodes"`
	Conns      int                  `json:"conns"`
	Window     int                  `json:"window"`
	OpsPerConn int                  `json:"ops_per_conn"`
	Shards     int                  `json:"shards"`
	BatchK     int                  `json:"batch_k"`
	ReplWindow int                  `json:"repl_window"`
	Records    []ClusterBenchRecord `json:"records"`
}

// RunClusterBench measures the two steady-state E16 topologies (no
// failover drill — that is correctness territory, covered by the crash
// tests) under the shared cluster geometry. Wall-clock native: run it
// alone, not under a simulation pool.
func RunClusterBench(o Options) (ClusterBenchDoc, error) {
	dir, err := os.MkdirTemp("", "lpcluster-bench-*")
	if err != nil {
		return ClusterBenchDoc{}, err
	}
	defer os.RemoveAll(dir)

	ref := clusterNodeCfg(o, "")
	load := clusterLoadOpts(o, ref)
	if o.Quick {
		// Quick still needs enough ops for a stable rate: the gate
		// compares this run against the committed snapshot, and a
		// sub-50ms run is all warmup.
		load.Ops = 20000
	}
	const replWindow = 512
	doc := ClusterBenchDoc{
		Nodes: 3, Conns: load.Conns, Window: load.Window, OpsPerConn: load.Ops,
		Shards: ref.Shards, BatchK: ref.BatchK, ReplWindow: replWindow,
	}

	// Topology 1: one plain kvserve node, no router, no replication.
	single, err := kvserve.New(clusterNodeCfg(o, filepath.Join(dir, "single.img")))
	if err != nil {
		return doc, fmt.Errorf("clusterbench: single: %w", err)
	}
	if err := single.Start(); err != nil {
		single.Close()
		return doc, fmt.Errorf("clusterbench: single: %w", err)
	}
	rep, lerr := kvserve.RunLoad(single.Addr(), load)
	if cerr := single.Close(); cerr != nil {
		return doc, fmt.Errorf("clusterbench: single drain: %w", cerr)
	}
	if lerr != nil {
		return doc, fmt.Errorf("clusterbench: single load: %w", lerr)
	}
	doc.Records = append(doc.Records, ClusterBenchRecord{
		Topology: "single", Ops: rep.Ops, Throughput: rep.Throughput,
		P50us: rep.P50us, P99us: rep.P99us,
		Overloads: rep.Overloads, ConnResets: rep.ConnResets,
	})

	// Topology 2: three members behind the router, LP-acked replication
	// on every put.
	ids := []string{"b0", "b1", "b2"}
	nodes := make([]*cluster.Node, 0, len(ids))
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	var infos []cluster.NodeInfo
	for _, id := range ids {
		n, err := cluster.StartNode(cluster.NodeConfig{
			ID:     id,
			Server: clusterNodeCfg(o, filepath.Join(dir, id+".img")),
			Repl:   cluster.ReplConfig{Window: replWindow},
		})
		if err != nil {
			return doc, fmt.Errorf("clusterbench: node %s: %w", id, err)
		}
		nodes = append(nodes, n)
		infos = append(infos, cluster.NodeInfo{
			ID: id, Addr: n.Server().Addr(), Ctrl: "http://" + n.CtrlAddr(),
		})
	}
	slack := time.Duration(1)
	if cluster.RaceEnabled {
		slack = 4
	}
	r, err := cluster.StartRouter(cluster.RouterConfig{
		Nodes:     infos,
		Heartbeat: 20 * time.Millisecond * slack,
		LeaseMiss: 3,
	})
	if err != nil {
		return doc, fmt.Errorf("clusterbench: router: %w", err)
	}
	defer r.Close()

	rep, lerr = kvserve.RunLoad(r.Addr(), load)
	if lerr != nil {
		return doc, fmt.Errorf("clusterbench: routed load: %w", lerr)
	}
	doc.Records = append(doc.Records, ClusterBenchRecord{
		Topology: "routed", Ops: rep.Ops, Throughput: rep.Throughput,
		P50us: rep.P50us, P99us: rep.P99us,
		Overloads: rep.Overloads, ConnResets: rep.ConnResets,
	})
	return doc, nil
}
