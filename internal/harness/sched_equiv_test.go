package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The scheduler-equivalence golden below was captured from the pre-PR
// central-scheduler engine (commit 1cc4519) with
//
//	go test ./internal/harness -run SchedulerEquivalence -update-sched-golden
//
// and must never be regenerated alongside an engine change: it is the
// proof that the direct-handoff scheduler reproduces the old engine's
// interleavings exactly — same cycles, same NVMM traffic, same hazard
// and operation counters — for kernel (fig10-class), barrier-heavy
// (cholesky), and request-driven (kv-class) sessions at 2, 4, and 8
// threads.
var updateSchedGolden = flag.Bool("update-sched-golden", false,
	"rewrite testdata/sched_golden.txt from the current engine (pre-PR capture only)")

const schedGoldenPath = "testdata/sched_golden.txt"

// dumpResult renders every deterministic field of a Result; the text is
// what the golden file stores, so any scheduler-visible drift (one
// reordered coherence event is enough to move cycle counts) fails the
// byte comparison.
func dumpResult(key string, r Result) string {
	return fmt.Sprintf("%s cycles=%d writes=%d evict=%d flush=%d clean=%d reads=%d "+
		"haz={mshr=%d burst=%d rob=%d wq=%d sq=%d wbt=%d fst=%d fcy=%d stall=%d} "+
		"ops={l=%d s=%d f=%d fe=%d i=%d}\n",
		key, r.Cycles, r.Writes, r.EvictW, r.FlushW, r.CleanW, r.Reads,
		r.Haz.MSHRFull, r.Haz.IssueBurst, r.Haz.ROBStall, r.Haz.WriteQFull,
		r.Haz.StoreQFull, r.Haz.WBThrottle, r.Haz.FenceStalls, r.Haz.FenceCycles,
		r.Haz.StallCycles,
		r.Ops.Loads, r.Ops.Stores, r.Ops.Flushes, r.Ops.Fences, r.Ops.Instrs)
}

// schedEquivDump runs the equivalence matrix and returns its rendering.
func schedEquivDump() string {
	var sb strings.Builder
	variants := []Variant{VariantBase, VariantLP, VariantEP, VariantWAL}
	for _, threads := range []int{2, 4, 8} {
		for _, v := range variants {
			spec := Spec{Workload: "tmm", Variant: v, N: 64, Tile: 16,
				Threads: threads, WindowOuter: 2}
			key := fmt.Sprintf("tmm/%s/t=%d", v, threads)
			sb.WriteString(dumpResult(key, NewSession(spec).Execute()))
		}
		// Barrier-heavy class: cholesky synchronizes every column, so
		// barrier handoff and release ordering are on the hot path.
		for _, v := range []Variant{VariantBase, VariantLP} {
			spec := Spec{Workload: "cholesky", Variant: v, N: 64, Threads: threads}
			key := fmt.Sprintf("cholesky/%s/t=%d", v, threads)
			sb.WriteString(dumpResult(key, NewSession(spec).Execute()))
		}
		for _, v := range variants {
			spec := KVSpec{Variant: v, Mix: "a", Threads: threads,
				Preload: 256, Ops: 512, Seed: 1}
			key := fmt.Sprintf("kv/a/%s/t=%d", v, threads)
			sb.WriteString(dumpResult(key, NewKVSession(spec).Execute()))
		}
	}
	return sb.String()
}

// TestSchedulerEquivalence asserts the engine reproduces, byte for
// byte, the session metrics golden captured from the pre-direct-handoff
// scheduler. See the comment on updateSchedGolden.
func TestSchedulerEquivalence(t *testing.T) {
	got := schedEquivDump()
	if *updateSchedGolden {
		if err := os.MkdirAll(filepath.Dir(schedGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(schedGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", schedGoldenPath)
		return
	}
	want, err := os.ReadFile(schedGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (capture it on the pre-PR engine first): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := range gotLines {
			if i >= len(wantLines) || gotLines[i] != wantLines[i] {
				w := "<missing>"
				if i < len(wantLines) {
					w = wantLines[i]
				}
				t.Fatalf("scheduler output diverged from pre-PR golden at line %d:\n got: %s\nwant: %s", i+1, gotLines[i], w)
			}
		}
		t.Fatal("scheduler output diverged from pre-PR golden (length mismatch)")
	}
}
