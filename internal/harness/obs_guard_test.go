package harness

import (
	"bytes"
	"testing"

	"lazyp/internal/obs"
	"lazyp/internal/sim"
)

// TestExperimentUnperturbedBySink is the harness-level determinism
// guard for the observability layer: attaching a process-global event
// sink (what `lpsim -trace` does) must leave experiment output
// byte-identical. The sink is observational only — any divergence here
// means it leaked into timing or scheduling.
func TestExperimentUnperturbedBySink(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick-mode experiment passes")
	}
	run := func(attach bool) []byte {
		if attach {
			tr := obs.NewTracer(1 << 12)
			tr.Enable(true)
			sim.SetGlobalSink(tr)
			defer sim.SetGlobalSink(nil)
		}
		var out bytes.Buffer
		if err := expKV(&out, Options{Quick: true}); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	plain := run(false)
	traced := run(true)
	if !bytes.Equal(plain, traced) {
		t.Fatalf("global sink perturbed experiment output:\n--- without ---\n%s\n--- with ---\n%s",
			plain, traced)
	}
}
