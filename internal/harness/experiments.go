package harness

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"lazyp/internal/checksum"
	"lazyp/internal/memsim"
	"lazyp/internal/sim"
	"lazyp/internal/workloads/native"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string // e.g. "fig10"
	Title string
	Paper string // what the paper reports, for side-by-side reading
	Run   func(w io.Writer, opt Options) error

	// Native marks real-machine wall-clock experiments, which the
	// concurrent runner executes alone so timing is not distorted by
	// simulations running on other cores.
	Native bool
}

// Options tune experiment execution.
type Options struct {
	// Quick shrinks problem sizes for smoke runs.
	Quick bool
	// Threads overrides the default worker-thread count when > 0.
	Threads int
	// Pool, when non-nil, executes simulation specs on its workers
	// (with optional memoization); experiments submit their independent
	// specs as a batch and collect results in submission order, so the
	// produced tables are identical to a sequential run. A nil Pool
	// executes every spec inline.
	Pool *RunPool
}

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return 8
}

// ResolvedSim returns the fully-defaulted simulator configuration these
// options imply — what the default-spec runs actually execute with. The
// -json envelope embeds it so records are self-describing.
func (o Options) ResolvedSim() sim.Config {
	return sim.Config{Threads: o.threads()}.WithDefaults()
}

// exec runs specs — fanned out across the pool's workers when one is
// attached — and returns their results in argument order.
func (o Options) exec(specs ...Spec) ([]Result, error) {
	if o.Pool != nil {
		return o.Pool.RunAll(specs...)
	}
	out := make([]Result, len(specs))
	for i, s := range specs {
		r, err := execAndCheck(s)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// tmmSpec returns the default Figure-10 TMM configuration: 256² inputs
// with a 2-kk-block simulation window (the paper simulates two kk
// iterations of 1024² inputs, §V-C).
func tmmSpec(o Options, v Variant) Spec {
	n := 256
	if o.Quick {
		n = 128
	}
	return Spec{Workload: "tmm", Variant: v, N: n, Tile: 16, Threads: o.threads(), WindowOuter: 2}
}

// benchSpec returns the default configuration for any benchmark, with
// the paper's per-benchmark simulation windows (§V-C): TMM two kk
// blocks, Cholesky to completion, 2D-conv and Gauss a few outer
// iterations, FFT a few stages.
func benchSpec(o Options, workload string, v Variant) Spec {
	s := Spec{Workload: workload, Variant: v, Threads: o.threads()}
	switch workload {
	case "tmm":
		s.Tile = 16
		s.WindowOuter = 2
	case "conv2d":
		s.WindowOuter = 3
	case "gauss":
		s.WindowOuter = 4
	case "fft":
		s.WindowOuter = 2
	}
	if o.Quick {
		switch workload {
		case "tmm", "cholesky", "gauss", "conv2d":
			s.N = 128
		case "fft":
			s.N = 4096
		}
	}
	return s
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func uratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func execAndCheck(spec Spec) (Result, error) {
	ses := NewSession(spec)
	res := ses.Execute()
	if res.Crashed {
		return res, fmt.Errorf("harness: unexpected crash in %s/%s", spec.Workload, spec.Variant)
	}
	return res, nil
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "fig10",
			Title: "Figure 10: execution time and NVMM writes, TMM base/LP/EP/WAL",
			Paper: "base 1.00/1.00, LP 1.002/1.003, EP 1.12/1.36, WAL 5.97/3.83",
			Run:   expFig10,
		},
		{
			ID:    "tab6",
			Title: "Table VI: structural hazards and L2 miss rate, TMM base/EP/LP",
			Paper: "EP: MSHR 1.84x, FUI 21.57x, FUR 22.4x, FUW 31109, L2MR 0.05; LP: 0.95x/1.11x/1.2x/2/0.02",
			Run:   expTab6,
		},
		{
			ID:    "maxvdur",
			Title: "§VI: maximum volatility duration (maxvdur), TMM EP/LP vs base",
			Paper: "EP maxvdur = 20% of base; LP = 101% of base",
			Run:   expMaxVdur,
		},
		{
			ID:    "fig11",
			Title: "Figure 11: extra NVMM writes vs time between periodic flushes (hardware cleanup)",
			Paper: "0.08% period -> +32% writes (< EP's +36%); 33% period -> < +2%",
			Run:   expFig11,
		},
		{
			ID:    "fig12",
			Title: "Figure 12: normalized execution time, all benchmarks, LP vs EagerRecompute",
			Paper: "LP +0.1%..+3.5% (avg +1.1%); EP +4.4%..+17.9% (avg +9%)",
			Run:   expFig12,
		},
		{
			ID:    "fig13",
			Title: "Figure 13: normalized write amplification, all benchmarks, LP vs EagerRecompute",
			Paper: "LP +0.1%..+4.4% (avg +3%); EP +0.2%..+55% (avg +20.6%)",
			Run:   expFig13,
		},
		{
			ID:     "tab7",
			Title:  "Table VII: LP execution-time overhead on a real machine (native, wall clock)",
			Paper:  "TMM 0.8%, Cholesky 1.1%, 2D-conv 0.9%, Gauss 2.1%, FFT 1.1% (gmean 1.1%)",
			Run:    expTab7,
			Native: true,
		},
		{
			ID:    "fig14a",
			Title: "Figure 14(a): sensitivity to NVMM latency, TMM LP vs EP",
			Paper: "EP overhead grows with latency; LP overhead shrinks",
			Run:   expFig14a,
		},
		{
			ID:    "fig14b",
			Title: "Figure 14(b): thread scaling 1-16, TMM base vs LP",
			Paper: "LP scales like base",
			Run:   expFig14b,
		},
		{
			ID:    "fig15a",
			Title: "Figure 15(a): sensitivity to L2 size, TMM LP overhead and L2 miss ratio",
			Paper: "256KB: +6.5% (L2MR>4%); 512KB: +0.2% (2%); 1MB: +0.1% (1.5%) [paper scale]",
			Run:   expFig15a,
		},
		{
			ID:    "fig15b",
			Title: "Figure 15(b): error-detection code sensitivity, TMM",
			Paper: "modular +0.2%, parity +0.1%, adler32 ~+1%, modular+parity +3.4% (EP +12%)",
			Run:   expFig15b,
		},
		{
			ID:    "accuracy",
			Title: "§III-D: checksum missed-detection probability (error injection)",
			Paper: "modular and Adler-32 miss < 2e-9 of injected errors",
			Run:   expAccuracy,
		},
		{
			ID:    "crash",
			Title: "Figure 1/9 semantics: crash injection sweep + recovery correctness",
			Paper: "recovered output equals failure-free output at every crash point",
			Run:   expCrash,
		},
		{
			ID:    "kv",
			Title: "KV store (beyond paper §VII): base/LP/EP/WAL on YCSB-style mixes",
			Paper: "n/a (extension): LP should track base; EP/WAL pay per-put persistence",
			Run:   expKV,
		},
		{
			ID:     "serve",
			Title:  "E15 (beyond paper): networked kvserve throughput/latency, base/LP/EP/WAL + LP restart",
			Paper:  "n/a (extension): LP group commit ≈ base throughput; EP/WAL pay a file write per put",
			Run:    expServe,
			Native: true,
		},
		{
			ID:     "cluster",
			Title:  "E16 (beyond paper): 3-node LP-replicated cluster vs single node, failover blip + rejoin",
			Paper:  "n/a (extension): LP-acked replication adds a network hop, not an fsync; failover blips, never drops acks",
			Run:    expCluster,
			Native: true,
		},
		{
			ID:     "plan",
			Title:  "E17 (beyond paper): capacity planner predicted vs live lpload, per SLO class",
			Paper:  "n/a (extension): queueing model calibrated by live probes lands within the documented error band",
			Run:    expPlan,
			Native: true,
		},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func expFig10(w io.Writer, o Options) error {
	variants := []Variant{VariantBase, VariantLP, VariantEP, VariantWAL}
	specs := make([]Spec, len(variants))
	for i, v := range variants {
		specs[i] = tmmSpec(o, v)
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	base := results[0]
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\texec time\tnum writes\tpaper exec\tpaper writes")
	paperExec := map[Variant]string{VariantBase: "1.00", VariantLP: "1.002", VariantEP: "1.12", VariantWAL: "5.97"}
	paperWr := map[Variant]string{VariantBase: "1.00", VariantLP: "1.003", VariantEP: "1.36", VariantWAL: "3.83"}
	for i, v := range variants {
		res := results[i]
		fmt.Fprintf(tw, "%s (tmm)\t%.3f\t%.3f\t%s\t%s\n",
			v, ratio(res.Cycles, base.Cycles), uratio(res.Writes, base.Writes),
			paperExec[v], paperWr[v])
	}
	return tw.Flush()
}

func expTab6(w io.Writer, o Options) error {
	variants := []Variant{VariantBase, VariantEP, VariantLP}
	specs := make([]Spec, len(variants))
	for i, v := range variants {
		specs[i] = tmmSpec(o, v)
	}
	rs, err := o.exec(specs...)
	if err != nil {
		return err
	}
	results := map[Variant]Result{}
	for i, v := range variants {
		results[v] = rs[i]
	}
	b := results[VariantBase]
	tw := newTab(w)
	// Our timing model's native structural-hazard counters. FUW maps
	// directly (a store or flush found the store/flush queue full); the
	// paper's FUI/FUR (functional-unit and load-queue pressure) have no
	// exact analogue here, so the queue-pressure story is carried by
	// FUW, fence stalls, and total stall cycles. EXPERIMENTS.md
	// discusses the mapping.
	fmt.Fprintln(tw, "scheme\tMSHR(x)\tFUW(raw)\tfences(raw)\tstall cyc(x)\tL2MR")
	for _, v := range []Variant{VariantBase, VariantEP, VariantLP} {
		r := results[v]
		fuw := r.Haz.WriteQFull + r.Haz.StoreQFull
		fmt.Fprintf(tw, "%s (tmm)\t%.2f\t%d\t%d\t%.2f\t%.3f\n",
			v,
			uratio(r.Haz.MSHRFull, b.Haz.MSHRFull),
			fuw,
			r.Haz.FenceStalls,
			ratio(r.Haz.StallCycles, b.Haz.StallCycles),
			r.Cache.L2MissRate())
	}
	fmt.Fprintln(tw, "paper EP\tMSHR 1.84x, FUI 21.57x, FUR 22.4x, FUW 31109 raw, L2MR 0.05")
	fmt.Fprintln(tw, "paper LP\tMSHR 0.95x, FUI 1.11x, FUR 1.2x, FUW 2 raw, L2MR 0.02")
	return tw.Flush()
}

func expMaxVdur(w io.Writer, o Options) error {
	variants := []Variant{VariantBase, VariantEP, VariantLP}
	specs := make([]Spec, len(variants))
	for i, v := range variants {
		specs[i] = tmmSpec(o, v)
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	base := results[0].Cache.MaxVdur
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\tmaxvdur(cycles)\tvs base\tpaper")
	paper := map[Variant]string{VariantBase: "100%", VariantEP: "20%", VariantLP: "101%"}
	for i, v := range variants {
		res := results[i]
		fmt.Fprintf(tw, "%s (tmm)\t%d\t%.0f%%\t%s\n", v, res.Cache.MaxVdur,
			100*ratio(res.Cache.MaxVdur, base), paper[v])
	}
	return tw.Flush()
}

func expFig11(w io.Writer, o Options) error {
	refs, err := o.exec(tmmSpec(o, VariantBase), tmmSpec(o, VariantEP))
	if err != nil {
		return err
	}
	baseRes, epRes := refs[0], refs[1]
	// The sweep's clean periods derive from the base run's cycle count,
	// so it forms a second batch.
	fracs := []float64{0.0008, 0.0033, 0.01, 0.033, 0.10, 0.33}
	specs := make([]Spec, len(fracs))
	for i, f := range fracs {
		spec := tmmSpec(o, VariantLP)
		spec.Sim.CleanPeriod = int64(f * float64(baseRes.Cycles))
		if spec.Sim.CleanPeriod < 1 {
			spec.Sim.CleanPeriod = 1
		}
		specs[i] = spec
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "flush period (% of exec)\tLP extra writes vs base\tEP reference")
	epOver := 100 * (uratio(epRes.Writes, baseRes.Writes) - 1)
	for i, f := range fracs {
		over := 100 * (uratio(results[i].Writes, baseRes.Writes) - 1)
		fmt.Fprintf(tw, "%.2f%%\t+%.1f%%\t+%.1f%%\n", 100*f, over, epOver)
	}
	fmt.Fprintln(tw, "paper\t0.08% -> +32%, 33% -> <+2%\t+36%")
	return tw.Flush()
}

// benchNames lists the Figure 12/13 benchmarks in paper order.
var benchNames = []string{"tmm", "cholesky", "conv2d", "gauss", "fft"}

func expOverheads(w io.Writer, o Options, metric func(Result) float64, label string) error {
	var specs []Spec
	for _, name := range benchNames {
		for _, v := range []Variant{VariantBase, VariantLP, VariantEP} {
			specs = append(specs, benchSpec(o, name, v))
		}
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "benchmark\tLP %s\tEP %s\n", label, label)
	geoLP, geoEP, cnt := 1.0, 1.0, 0
	for i, name := range benchNames {
		base, lpR, epR := results[3*i], results[3*i+1], results[3*i+2]
		l := metric(lpR) / metric(base)
		e := metric(epR) / metric(base)
		geoLP *= l
		geoEP *= e
		cnt++
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", name, l, e)
	}
	fmt.Fprintf(tw, "gmean\t%.3f\t%.3f\n", math.Pow(geoLP, 1/float64(cnt)), math.Pow(geoEP, 1/float64(cnt)))
	return tw.Flush()
}

func expFig12(w io.Writer, o Options) error {
	fmt.Fprintln(w, "normalized execution time (paper: LP avg 1.011, EP avg 1.09)")
	return expOverheads(w, o, func(r Result) float64 { return float64(r.Cycles) }, "exec")
}

func expFig13(w io.Writer, o Options) error {
	fmt.Fprintln(w, "normalized NVMM writes (paper: LP avg 1.03, EP avg 1.206)")
	return expOverheads(w, o, func(r Result) float64 { return float64(r.Writes) }, "writes")
}

func expTab7(w io.Writer, o Options) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "benchmark\tLP native overhead\tpaper")
	paper := map[string]string{"tmm": "0.8%", "cholesky": "1.1%", "conv2d": "0.9%", "gauss": "2.1%", "fft": "1.1%"}
	reps := 3
	sizes := map[string]int{}
	if o.Quick {
		reps = 1
		sizes = map[string]int{"tmm": 128, "cholesky": 192, "conv2d": 192, "gauss": 256, "fft": 1 << 13}
	}
	geo, cnt := 1.0, 0
	for _, name := range benchNames {
		over, err := native.Overhead(name, sizes[name], reps)
		if err != nil {
			return err
		}
		geo *= 1 + over
		cnt++
		fmt.Fprintf(tw, "%s\t%+.1f%%\t%s\n", name, 100*over, paper[name])
	}
	fmt.Fprintf(tw, "gmean\t%+.1f%%\t1.1%%\n", 100*(math.Pow(geo, 1/float64(cnt))-1))
	return tw.Flush()
}

func expFig14a(w io.Writer, o Options) error {
	pairs := [][2]int64{{60, 150}, {100, 225}, {150, 300}}
	var specs []Spec
	for _, p := range pairs {
		for _, v := range []Variant{VariantBase, VariantLP, VariantEP} {
			s := tmmSpec(o, v)
			s.Sim.MemReadLat = p[0] * sim.CyclesPerNs
			s.Sim.MemWriteLat = p[1] * sim.CyclesPerNs
			specs = append(specs, s)
		}
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "NVMM (read,write) ns\tLP overhead\tEP overhead")
	for i, p := range pairs {
		base, lpR, epR := results[3*i], results[3*i+1], results[3*i+2]
		fmt.Fprintf(tw, "(%d,%d)\t%+.1f%%\t%+.1f%%\n", p[0], p[1],
			100*(ratio(lpR.Cycles, base.Cycles)-1), 100*(ratio(epR.Cycles, base.Cycles)-1))
	}
	fmt.Fprintln(tw, "paper\tshrinks with latency\tgrows with latency")
	return tw.Flush()
}

func expFig14b(w io.Writer, o Options) error {
	counts := []int{1, 2, 4, 8, 16}
	var specs []Spec
	for _, th := range counts {
		ob := o
		ob.Threads = th
		specs = append(specs, tmmSpec(ob, VariantBase), tmmSpec(ob, VariantLP))
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "threads\tbase speedup\tLP speedup\tLP overhead")
	base1 := results[0].Cycles
	for i, th := range counts {
		base, lpR := results[2*i], results[2*i+1]
		fmt.Fprintf(tw, "%d\t%.2fx\t%.2fx\t%+.1f%%\n", th,
			ratio(base1, base.Cycles), ratio(base1, lpR.Cycles),
			100*(ratio(lpR.Cycles, base.Cycles)-1))
	}
	fmt.Fprintln(tw, "paper\tLP scales like base (1-16 threads)")
	return tw.Flush()
}

func expFig15a(w io.Writer, o Options) error {
	// Paper sweeps 256KB/512KB/1MB for 1024^2 inputs; we preserve the
	// ratio around our scaled default (DESIGN.md §4). Full runs so the
	// entire checksum table (≈1% of the matrices, §III-D) cycles
	// through the cache as it does at paper scale.
	sizes := []int{64 << 10, 128 << 10, 256 << 10}
	var specs []Spec
	for _, sz := range sizes {
		for _, v := range []Variant{VariantBase, VariantLP} {
			s := tmmSpec(o, v)
			s.WindowOuter = 0
			h := memsim.DefaultConfig(s.Threads)
			h.L2Size = sz
			s.Sim.Hier = h
			specs = append(specs, s)
		}
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "L2 size\tLP overhead\tbase L2MR\tLP L2MR")
	for i, sz := range sizes {
		base, lpR := results[2*i], results[2*i+1]
		fmt.Fprintf(tw, "%dKB\t%+.1f%%\t%.3f\t%.3f\n", sz>>10,
			100*(ratio(lpR.Cycles, base.Cycles)-1),
			base.Cache.L2MissRate(), lpR.Cache.L2MissRate())
	}
	fmt.Fprintln(tw, "paper (scaled)\t+6.5% / +0.2% / +0.1%\t\t>4% / 2% / 1.5%")
	return tw.Flush()
}

func expFig15b(w io.Writer, o Options) error {
	kinds := checksum.Kinds()
	specs := []Spec{tmmSpec(o, VariantBase), tmmSpec(o, VariantEP)}
	for _, k := range kinds {
		s := tmmSpec(o, VariantLP)
		s.Kind = k
		specs = append(specs, s)
	}
	results, err := o.exec(specs...)
	if err != nil {
		return err
	}
	base, epR := results[0], results[1]
	tw := newTab(w)
	fmt.Fprintln(tw, "code\tLP overhead\tpaper")
	paper := map[checksum.Kind]string{
		checksum.Modular: "+0.2%", checksum.Parity: "+0.1%",
		checksum.Adler32: "~+1%", checksum.Dual: "+3.4%",
	}
	for i, k := range kinds {
		res := results[2+i]
		fmt.Fprintf(tw, "%s\t%+.1f%%\t%s\n", k, 100*(ratio(res.Cycles, base.Cycles)-1), paper[k])
	}
	fmt.Fprintf(tw, "EP reference\t%+.1f%%\t+12%%\n", 100*(ratio(epR.Cycles, base.Cycles)-1))
	return tw.Flush()
}

func expAccuracy(w io.Writer, o Options) error {
	trials := 2_000_000
	if o.Quick {
		trials = 100_000
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "code\ttrials\tmissed\tmiss rate (95% upper bound)")
	for _, k := range checksum.Kinds() {
		r := checksum.MeasureAccuracy(k, 64, trials, 42)
		fmt.Fprintf(tw, "%s\t%d\t%d\t< %.2e\n", k, r.Trials, r.Missed, r.MissRateUpperBound())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	data, corrupted := checksum.ParityBlindSpot(64, 7)
	pOK := checksum.SumWords(checksum.Parity, data) == checksum.SumWords(checksum.Parity, corrupted)
	mOK := checksum.SumWords(checksum.Modular, data) == checksum.SumWords(checksum.Modular, corrupted)
	fmt.Fprintf(w, "parity blind spot (two cancelling lost stores): parity missed=%v, modular missed=%v\n", pOK, mOK)
	fmt.Fprintln(w, "paper: modular and Adler-32 missed-detection probability < 2e-9")
	return nil
}

func expCrash(w io.Writer, o Options) error {
	spec := tmmSpec(o, VariantLP)
	spec.WindowOuter = 0 // crash-recovery correctness needs complete runs
	// Full runs; several tiles per thread so that, as at paper scale,
	// most tiles are at rest (fully persisted at a consistent level)
	// while a thread works on one of them — otherwise no region can
	// ever verify and recovery is always a full recompute.
	spec.N = 128
	spec.Threads = 4
	clean := NewSession(spec)
	cleanRes := clean.Execute()
	if err := clean.Verify(); err != nil {
		return fmt.Errorf("failure-free run invalid: %w", err)
	}
	points := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	tw := newTab(w)
	fmt.Fprintln(tw, "crash point\trecovery cycles (LP)\twith periodic flush\toutput")
	for _, f := range points {
		recCyc := make([]int64, 2)
		for mode := 0; mode < 2; mode++ {
			s := spec
			s.Sim.CrashCycle = int64(f * float64(cleanRes.Cycles))
			if mode == 1 {
				// §VI-A: periodic cleanup (2% of exec) bounds the
				// recovery work by persisting old dirty lines — and
				// old checksums — in the background.
				s.Sim.CleanPeriod = cleanRes.Cycles / 50
			}
			ses := NewSession(s)
			r := ses.Execute()
			if !r.Crashed {
				return fmt.Errorf("expected crash at %.0f%%", 100*f)
			}
			ses.Crash()
			rr := ses.Recover(sim.Config{})
			recCyc[mode] = rr.RecoverCyc
			if err := ses.Verify(); err != nil {
				fmt.Fprintf(tw, "%.0f%%\t%d\t%d\tMISMATCH: %v\n", 100*f, recCyc[0], recCyc[1], err)
				return tw.Flush()
			}
		}
		fmt.Fprintf(tw, "%.0f%%\t%d\t%d\tbit-identical to failure-free\n", 100*f, recCyc[0], recCyc[1])
	}
	fmt.Fprintln(tw, "note\twithout periodic flushing the hot checksum table may never leave the cache, so recovery conservatively recomputes (the unbounded-recovery problem §VI-A solves)")
	return tw.Flush()
}
