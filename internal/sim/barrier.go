package sim

// Barrier synchronizes all threads of a session at bulk-synchronous
// phase boundaries (Cholesky columns, Gaussian-elimination steps, FFT
// stages). Arriving threads park until the last thread arrives; every
// thread then resumes at the release cycle — the latest arrival time
// plus a small synchronization overhead — matching a sense-reversing
// software barrier's cost model.
//
// A Barrier is created per session with Engine.NewBarrier and reused for
// every phase of the run. Barriers interoperate with crash injection:
// threads parked at a barrier are aborted like any other parked thread.
type Barrier struct {
	eng     *Engine
	n       int
	arrived int
	latest  int64
	waiters []*Thread
}

// barrierOverhead is the per-episode synchronization cost in cycles.
const barrierOverhead = 50

// NewBarrier returns a barrier spanning all threads of the session. It
// must be created before Run and used only by that Run's threads.
func (e *Engine) NewBarrier() *Barrier {
	return &Barrier{eng: e, n: e.cfg.Threads}
}

// BarrierWait parks the calling thread until every thread of the session
// has arrived. With a single-thread session it only charges the
// synchronization overhead.
func (t *Thread) BarrierWait(b *Barrier) {
	if b.n == 1 {
		t.now += barrierOverhead
		t.checkYield()
		return
	}
	if t.now > b.latest {
		b.latest = t.now
	}
	b.arrived++
	if b.arrived < b.n {
		// Not last: leave the schedulable set and park until released.
		// blockWorker hands the grant to the next runnable thread; no
		// token holder will grant this thread again until the last
		// arriver pushes it back via unblock below.
		b.waiters = append(b.waiters, t)
		t.eng.blockWorker(t)
		return
	}
	// Last arriver: release everyone at the common release cycle.
	release := b.latest + barrierOverhead
	for _, w := range b.waiters {
		w.now = release
		t.eng.unblock(w)
	}
	b.waiters = b.waiters[:0]
	b.arrived = 0
	b.latest = 0
	t.now = release
	t.checkYield()
}
