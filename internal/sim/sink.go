package sim

import (
	"sync/atomic"

	"lazyp/internal/memsim"
	"lazyp/internal/obs"
)

// Event sink plumbing: an optional obs.Sink on the engine receives
// the memory system's persistency events — explicit flushes, fences
// (with their stall cost), ROB stalls, and NVMM write-backs by cause
// (evictions, cleaning sweeps). Timestamps are simulation cycles for
// thread-attributed events and 0 for write-backs (the memory has no
// clock of its own); Src is the thread id, -1 when unattributed.
//
// The sink is observational only — it never reads timing state ahead
// of the simulation or feeds anything back — so an attached sink
// cannot perturb a deterministic run (harness guards this with a
// byte-identity test). A nil sink (the default) costs one pointer
// check on the Flush/Fence/ROB-stall paths and nothing per
// load/store.

// SetSink attaches s to the engine (nil detaches). Call before Run;
// the write-back hook it installs on the engine's Memory stays until
// replaced, which is what a session spanning several engines over one
// Memory (run, crash, recover) wants.
func (e *Engine) SetSink(s obs.Sink) {
	e.sink = s
	if s == nil {
		return
	}
	e.Mem.SetWriteBackHook(func(la memsim.Addr, cause memsim.WriteBackCause) {
		switch cause {
		case memsim.CauseEvict:
			s.Event(obs.EvEvict, -1, 0, uint64(la), 0)
		case memsim.CauseClean:
			s.Event(obs.EvClean, -1, 0, uint64(la), 0)
		}
		// CauseFlush write-backs are already visible as the EvFlush the
		// issuing thread emitted, with a real cycle timestamp.
	})
}

// globalSink, when set, is attached to every Engine built by New —
// the hookup lpsim -trace uses to reach the engines the harness
// builds deep inside a session. Read/written via atomics so tests
// and parallel runners may toggle it around concurrent engine
// construction.
var globalSink atomic.Pointer[sinkBox]

type sinkBox struct{ s obs.Sink }

// SetGlobalSink installs (or, with nil, clears) the process-global
// sink inherited by every subsequently built Engine.
func SetGlobalSink(s obs.Sink) {
	if s == nil {
		globalSink.Store(nil)
		return
	}
	globalSink.Store(&sinkBox{s: s})
}
