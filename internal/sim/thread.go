package sim

import (
	"math"

	"lazyp/internal/memsim"
	"lazyp/internal/obs"
)

// Hazards counts structural-hazard events per thread. The fields mirror
// the paper's Table VI with documented proxies (DESIGN.md §1):
//
//   - MSHRFull      — a miss found all MSHRs busy ("MSHR" column).
//   - IssueBurst    — instructions issued in the burst that follows any
//     pipeline stall; a proxy for integer-FU saturation ("FUI").
//   - ROBStall      — issue blocked because a load miss aged out of the
//     reorder window; a proxy for load-queue pressure ("FUR").
//   - WriteQFull    — a flush found the MC write queue full ("FUW").
//   - StoreQFull    — a store found the store buffer full.
//   - WBThrottle    — a cache miss whose dirty eviction found the shared
//     MC write queue backlogged stalled until a slot drained: NVMM
//     write-bandwidth backpressure on natural write-backs, which hits
//     every scheme, base included (see Thread.bookWritebacks). It
//     shares the paper's "FUW" column as its proxy with WriteQFull —
//     FUW counts flush-path write-queue pressure, WBThrottle the
//     eviction-path pressure the paper's MC write queue also exerts.
//   - FenceStalls / FenceCycles — sfence events and the cycles they cost.
type Hazards struct {
	MSHRFull    uint64
	IssueBurst  uint64
	ROBStall    uint64
	WriteQFull  uint64
	StoreQFull  uint64
	WBThrottle  uint64
	FenceStalls uint64
	FenceCycles int64
	StallCycles int64
}

func (h *Hazards) add(o Hazards) {
	h.MSHRFull += o.MSHRFull
	h.IssueBurst += o.IssueBurst
	h.ROBStall += o.ROBStall
	h.WriteQFull += o.WriteQFull
	h.StoreQFull += o.StoreQFull
	h.WBThrottle += o.WBThrottle
	h.FenceStalls += o.FenceStalls
	h.FenceCycles += o.FenceCycles
	h.StallCycles += o.StallCycles
}

// OpCounts tallies the dynamic operations a thread performed.
type OpCounts struct {
	Loads   uint64
	Stores  uint64
	Flushes uint64
	Fences  uint64
	Instrs  uint64
}

func (o *OpCounts) add(p OpCounts) {
	o.Loads += p.Loads
	o.Stores += p.Stores
	o.Flushes += p.Flushes
	o.Fences += p.Fences
	o.Instrs += p.Instrs
}

// missEntry tracks one outstanding non-L1 access for the ROB/MSHR model.
type missEntry struct {
	instr uint64 // instruction count at issue
	done  int64  // completion cycle
}

// missRing is a fixed-capacity FIFO of outstanding misses.
type missRing struct {
	buf  []missEntry
	head int
	n    int
}

func (r *missRing) init(capacity int) { r.buf = make([]missEntry, capacity); r.head, r.n = 0, 0 }
func (r *missRing) full() bool        { return r.n == len(r.buf) }
func (r *missRing) empty() bool       { return r.n == 0 }
func (r *missRing) front() missEntry  { return r.buf[r.head] }

// The rings wrap with a compare-and-subtract rather than %: these run on
// every load/store, and an integer divide there is measurable.
func (r *missRing) pop() {
	if r.head++; r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
}
func (r *missRing) push(e missEntry) {
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = e
	r.n++
}

// timeRing is a fixed-capacity FIFO of completion times (store buffer and
// MC write queue).
type timeRing struct {
	buf  []int64
	head int
	n    int
	maxT int64 // largest completion time ever pushed; see maxPending
}

func (r *timeRing) init(capacity int) { r.buf = make([]int64, capacity); r.head, r.n = 0, 0 }
func (r *timeRing) full() bool        { return r.n == len(r.buf) }
func (r *timeRing) front() int64      { return r.buf[r.head] }
func (r *timeRing) pop() {
	if r.head++; r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
}
func (r *timeRing) push(t int64) {
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = t
	r.n++
	if t > r.maxT {
		r.maxT = t
	}
}

// drainDone pops entries completed by cycle now.
func (r *timeRing) drainDone(now int64) {
	for r.n > 0 && r.front() <= now {
		r.pop()
	}
}

// maxPending stands in for "latest completion among pending entries"
// without walking the ring: entries leave only via drainDone, which pops
// nothing completing after now, so whenever maxT exceeds the caller's
// clock its entry is still pending and maxT equals the true pending max;
// when maxT is at or below the clock the true max is too, and both
// answers impose no wait. Callers only compare the result against their
// clock, so the two are interchangeable.
func (r *timeRing) maxPending() int64 { return r.maxT }

// Thread is one simulated hardware thread pinned to its own core. All
// methods must be called from the thread's own body function; the engine
// guarantees only one thread executes at a time.
//
// Thread satisfies the pmem.Ctx interface, so workload kernels written
// against pmem run unchanged on the simulator and natively.
type Thread struct {
	id  int
	eng *Engine

	// mem/hier shadow eng.Mem/eng.Hier: the load/store fast paths
	// touch both on every operation, and reaching them in one hop
	// instead of two through eng keeps the hops off the hot path.
	mem  *memsim.Memory
	hier *memsim.Hierarchy

	now        int64
	grantUntil int64
	width      int // cfg.IssueWidth, copied to keep issue's fast path flat

	// widthShift/widthMask replace issueSlow's divide by width with a
	// shift and mask when the width is a power of two (it always is in
	// practice); widthMask < 0 selects the generic divide.
	widthShift uint8
	widthMask  int32

	// retired is set (by the thread itself, with the grant token held)
	// once the thread has been fully accounted — counters folded into
	// the session totals and any terminal ctl message sent — so the
	// worker wrapper's recover does not report it a second time.
	retired bool

	instr     uint64
	opCarry   int
	burstLeft int

	// robGate is the instruction count at which the oldest outstanding
	// miss ages out of the reorder window (maxUint64 when none is
	// outstanding): mshr.front().instr + ROBWindow, maintained by
	// robCheck and outstanding. While instr stays below the gate the
	// ROB check cannot pop-stall, so the op fast paths compare against
	// it instead of running robCheck's drain loop on every issue.
	robGate uint64

	mshr   missRing
	storeq timeRing

	haz Hazards
	ops OpCounts
}

// ThreadID returns the thread's index in [0, Config.Threads).
func (t *Thread) ThreadID() int { return t.id }

// Now returns the thread's local cycle clock.
func (t *Thread) Now() int64 { return t.now }

// Hazards returns the thread's hazard counters.
func (t *Thread) Hazards() Hazards { return t.haz }

// Ops returns the thread's dynamic operation counts. Instrs is carried
// in t.instr (the ROB-age counter) rather than incremented twice on the
// per-instruction hot path.
func (t *Thread) Ops() OpCounts {
	o := t.ops
	o.Instrs = t.instr
	return o
}

// burstWindow is how many post-stall instructions count toward the FUI
// (issue-burst) proxy.
func (t *Thread) burstWindow() int { return t.eng.cfg.IssueWidth * 4 }

// stallTo advances the clock to cycle c, accounting the stall and arming
// the post-stall issue burst.
func (t *Thread) stallTo(c int64) {
	if c > t.now {
		t.haz.StallCycles += c - t.now
		t.now = c
		t.burstLeft = t.burstWindow()
	}
}

// Issuing n instructions of front-end issue bandwidth is open-coded at
// every op site ("issue(n) by hand"): the fast path — carry stays under
// the issue width, no post-stall burst window open, no outstanding miss
// to age against the ROB — is two adds and three compares, but as a
// function it sits just over the compiler's inlining budget, so each op
// repeats it inline and falls into issueSlow for the rest.
//
// issueSlow handles that rest: clock advance on a filled issue group,
// burst accounting, and the ROB-age check (robCheck is a no-op when no
// miss is outstanding, which is why the fast path may skip it).
func (t *Thread) issueSlow(c, n int) {
	if c < t.width {
		t.opCarry = c
	} else if t.widthMask >= 0 {
		t.now += int64(c >> t.widthShift)
		t.opCarry = c & int(t.widthMask)
	} else {
		t.now += int64(c / t.width)
		t.opCarry = c % t.width
	}
	if t.burstLeft > 0 {
		b := n
		if b > t.burstLeft {
			b = t.burstLeft
		}
		t.haz.IssueBurst += uint64(b)
		t.burstLeft -= b
	}
	if t.instr >= t.robGate {
		t.robCheck()
	}
}

// robCheck enforces the reorder-window bound: the thread may not issue
// past an incomplete miss that is ROBWindow instructions old.
func (t *Thread) robCheck() {
	for !t.mshr.empty() {
		f := t.mshr.front()
		if f.done <= t.now {
			t.mshr.pop()
			continue
		}
		if t.instr-f.instr >= uint64(t.eng.cfg.ROBWindow) {
			t.haz.ROBStall++
			if s := t.eng.sink; s != nil {
				s.Event(obs.EvROBStall, int32(t.id), t.now, uint64(f.done-t.now), 0)
			}
			t.stallTo(f.done)
			t.mshr.pop()
			continue
		}
		break
	}
	t.setROBGate()
}

// setROBGate recomputes robGate from the current MSHR front. Deferring
// drains of completed entries until the gate is crossed is safe: the
// front's completed-or-aged state is re-examined wherever it matters —
// here, and in outstanding before the occupancy check.
func (t *Thread) setROBGate() {
	if t.mshr.empty() {
		t.robGate = ^uint64(0)
	} else {
		t.robGate = t.mshr.front().instr + uint64(t.eng.cfg.ROBWindow)
	}
}

// outstanding records a non-L1 load completing after lat cycles,
// stalling on MSHR exhaustion.
func (t *Thread) outstanding(lat int64) {
	for !t.mshr.empty() && t.mshr.front().done <= t.now {
		t.mshr.pop()
	}
	if t.mshr.full() {
		t.haz.MSHRFull++
		t.stallTo(t.mshr.front().done)
		for !t.mshr.empty() && t.mshr.front().done <= t.now {
			t.mshr.pop()
		}
	}
	t.mshr.push(missEntry{instr: t.instr, done: t.now + lat})
	t.setROBGate()
}

// Compute charges n ALU instructions.
func (t *Thread) Compute(n int) {
	t.instr += uint64(n) // issue(n) by hand, as in Load64
	if c := t.opCarry + n; c < t.width && t.burstLeft == 0 && t.instr < t.robGate {
		t.opCarry = c
	} else {
		t.issueSlow(c, n)
	}
	t.checkYield()
}

// bookWritebacks charges any dirty write-backs a cache access just
// caused to the shared memory controller. Write-backs do not stall the
// thread directly, but when the controller's write queue is full —
// its drain point has run more than WriteQ service slots ahead of the
// thread — the miss that caused the eviction must wait for a free
// queue entry. This applies the NVMM write-bandwidth limit to every
// scheme, base included: a write-saturated kernel is equally throttled
// whether its lines leave by eviction or by flush, which is why eager
// flushing costs little on streaming write-bound code but shows up
// clearly on cache-blocked code (§VI).
// Call sites compare NVMMWriteTotal themselves and only pay this call
// when an access actually evicted something — the rare case.
func (t *Thread) bookWritebacks(before, after uint64) {
	e := t.eng
	for i := before; i < after; i++ {
		e.mcAccept(t.now)
	}
	if free := e.mcLast - int64(e.cfg.WriteQ)*e.writeService(); free > t.now {
		t.haz.WBThrottle++
		t.stallTo(free)
	}
}

// Load64 performs a 64-bit load through the cache hierarchy.
func (t *Thread) Load64(a memsim.Addr) uint64 {
	// issue(1) by hand: the compiler can't inline issue (the issueSlow
	// call puts it just over budget) and loads/stores are the two
	// hottest op kinds in every workload.
	t.instr++
	if c := t.opCarry + 1; c < t.width && t.burstLeft == 0 && t.instr < t.robGate {
		t.opCarry = c
	} else {
		t.issueSlow(c, 1)
	}
	t.ops.Loads++
	cfg := &t.eng.cfg
	wb := t.mem.NVMMWriteTotal()
	switch t.hier.Access(t.id, a, false, t.now) {
	case memsim.AccessL1:
		// L1 hit latency is hidden by the out-of-order window.
	case memsim.AccessL2:
		t.outstanding(cfg.L2HitLat)
	case memsim.AccessMem:
		t.outstanding(cfg.L2HitLat + cfg.MemReadLat)
	}
	if after := t.mem.NVMMWriteTotal(); after != wb {
		t.bookWritebacks(wb, after)
	}
	t.checkYield()
	return t.mem.Load64(a)
}

// Store64 performs a 64-bit store through the cache hierarchy
// (write-back, write-allocate). The store retires into the store buffer;
// only sfence waits for its completion.
func (t *Thread) Store64(a memsim.Addr, v uint64) {
	t.instr++ // issue(1) by hand, as in Load64
	if c := t.opCarry + 1; c < t.width && t.burstLeft == 0 && t.instr < t.robGate {
		t.opCarry = c
	} else {
		t.issueSlow(c, 1)
	}
	t.ops.Stores++
	cfg := &t.eng.cfg
	var fill int64 = 1
	wb := t.mem.NVMMWriteTotal()
	switch t.hier.Access(t.id, a, true, t.now) {
	case memsim.AccessL1:
	case memsim.AccessL2:
		fill = cfg.L2HitLat
	case memsim.AccessMem:
		fill = cfg.L2HitLat + cfg.MemReadLat
	}
	t.storeq.drainDone(t.now)
	if t.storeq.full() {
		t.haz.StoreQFull++
		t.stallTo(t.storeq.front())
		t.storeq.drainDone(t.now)
	}
	t.storeq.push(t.now + fill)
	if after := t.mem.NVMMWriteTotal(); after != wb {
		t.bookWritebacks(wb, after)
	}
	t.mem.Store64(a, v)
	t.checkYield()
}

// LoadF and StoreF are float64 conveniences over Load64/Store64.
func (t *Thread) LoadF(a memsim.Addr) float64 { return math.Float64frombits(t.Load64(a)) }

// StoreF stores a float64 at a.
func (t *Thread) StoreF(a memsim.Addr, v float64) { t.Store64(a, math.Float64bits(v)) }

// Flush issues clflushopt for the line containing a: the line is
// invalidated everywhere and its dirty content is sent to the memory
// controller.
//
// Costs, following the paper's observation that flush instructions "are
// long latency since they deal with the entire cache hierarchy":
//
//   - The flush serializes at the cache port for the L2 probe — it
//     consumes L2HitLat cycles of pipeline time. This is the dominant
//     eager-persistency execution-time cost for flush-heavy code.
//   - A dirty line becomes durable when it reaches the memory
//     controller (ADR): MCFlushLat cycles later, or when the shared
//     controller can accept it (one line per MemWriteLat/FlushBanks
//     cycles), whichever is later. sfence waits for this completion
//     through the store queue, and a full store queue stalls the flush
//     (FUW).
func (t *Thread) Flush(a memsim.Addr) {
	t.instr++ // issue(1) by hand, as in Load64
	if c := t.opCarry + 1; c < t.width && t.burstLeft == 0 && t.instr < t.robGate {
		t.opCarry = c
	} else {
		t.issueSlow(c, 1)
	}
	t.ops.Flushes++
	if s := t.eng.sink; s != nil {
		s.Event(obs.EvFlush, int32(t.id), t.now, uint64(a), 0)
	}
	cfg := &t.eng.cfg
	dirty := t.hier.Flush(t.id, a, t.now)
	t.now += cfg.L2HitLat // cache-port occupancy
	done := t.now + 1
	if dirty {
		done = t.now + cfg.MCFlushLat
		if m := t.eng.mcAccept(t.now); m > done {
			done = m
		}
	}
	t.storeq.drainDone(t.now)
	if t.storeq.full() {
		t.haz.WriteQFull++ // flush found the queue full: FUW
		t.stallTo(t.storeq.front())
		t.storeq.drainDone(t.now)
	}
	t.storeq.push(done)
	t.checkYield()
}

// Fence issues sfence: the thread waits until every outstanding store
// and flush it issued has completed (reached the ADR durability domain).
func (t *Thread) Fence() {
	t.instr++ // issue(1) by hand, as in Load64
	if c := t.opCarry + 1; c < t.width && t.burstLeft == 0 && t.instr < t.robGate {
		t.opCarry = c
	} else {
		t.issueSlow(c, 1)
	}
	t.ops.Fences++
	target := t.storeq.maxPending()
	if s := t.eng.sink; s != nil {
		stall := int64(0)
		if target > t.now {
			stall = target - t.now
		}
		s.Event(obs.EvFence, int32(t.id), t.now, uint64(stall), 0)
	}
	if target > t.now {
		t.haz.FenceStalls++
		t.haz.FenceCycles += target - t.now
		t.stallTo(target)
	}
	t.storeq.drainDone(t.now)
	t.checkYield()
}

// finish drains all outstanding activity at the end of the thread body so
// the final clock covers in-flight misses and writes.
func (t *Thread) finish() {
	end := t.now
	if !t.mshr.empty() {
		for i := 0; i < t.mshr.n; i++ {
			e := t.mshr.buf[(t.mshr.head+i)%len(t.mshr.buf)]
			if e.done > end {
				end = e.done
			}
		}
	}
	if s := t.storeq.maxPending(); s > end {
		end = s
	}
	t.now = end
}
