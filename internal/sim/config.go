// Package sim drives simulated threads over the memsim memory hierarchy
// with a deterministic timing model.
//
// Each simulated thread runs as a goroutine, but a conservative
// min-clock discipline admits exactly one thread at a time and always
// the one with the smallest local cycle clock, granted a bounded
// quantum. The grant is a token handed directly worker to worker
// (sched.go): the yielding thread runs the scheduling decision itself
// and either extends its own grant in place or passes the grant to the
// next runnable worker — there is no scheduler goroutine in steady
// state. Scheduling decisions depend only on the thread clocks, so
// simulations are bit-reproducible for a fixed configuration —
// including parallel runs and crash injection.
//
// The timing model is a bounded out-of-order core approximation
// (documented in DESIGN.md §3): instructions issue at a fixed width;
// load misses overlap through a limited set of MSHRs but may not run
// ahead of the reorder-buffer window; stores retire through a store
// buffer; clflushopt occupies a memory-controller write queue (ADR: a
// flush is durable when it reaches the controller); sfence waits for all
// of the thread's outstanding stores and flushes. Structural-hazard
// counters (MSHR full, post-stall issue bursts, ROB stalls, write-queue
// full) approximate the gem5 counters in the paper's Table VI.
package sim

import "lazyp/internal/memsim"

// Config parameterizes one simulation. The defaults (DefaultConfig)
// follow the paper's Table II, scaled per DESIGN.md §4.
type Config struct {
	// Threads is the number of simulated worker threads; each runs on
	// its own core with a private L1.
	Threads int

	// Hierarchy geometry. If zero-valued, memsim.DefaultConfig(Threads)
	// is used.
	Hier memsim.Config

	// Core model.
	IssueWidth int // instructions per cycle (paper: 4-wide)
	ROBWindow  int // instructions a load miss may be outlived by (paper: 196)
	MSHRs      int // outstanding misses per core
	StoreQ     int // store-buffer entries (paper LSQ: 48)
	WriteQ     int // MC write-queue entries shared by flushes (paper: 64)

	// Latencies in CPU cycles at 2 GHz.
	L1HitLat    int64 // paper: 2
	L2HitLat    int64 // paper: 11
	MemReadLat  int64 // paper: 150 ns = 300 cycles (default)
	MemWriteLat int64 // paper: 300 ns = 600 cycles (default)

	// ADR write-path model. A clflushopt'd dirty line is durable once
	// it reaches the memory controller's write queue (the ADR domain),
	// after the cache probe plus MCFlushLat cycles. The controller
	// drains flushes to NVMM at one line per MemWriteLat/FlushBanks
	// cycles per thread; back-to-back flushes from one thread serialize
	// at that service rate, which is what sfence-heavy code ends up
	// waiting on.
	MCFlushLat int64 // default 30
	FlushBanks int   // default 16

	// Quantum is the scheduling window in cycles: a thread may run at
	// most this far past the second-smallest thread clock before
	// yielding. Smaller values interleave more finely.
	Quantum int64

	// CleanPeriod, when positive, enables the periodic hardware cleanup
	// of §III-E.1: every CleanPeriod cycles all dirty lines are written
	// back (not evicted), bounding recovery time.
	CleanPeriod int64

	// CrashCycle, when positive, injects a failure: all threads halt
	// once their clocks pass this cycle and the caches' contents are
	// lost. Engine.Run reports the crash; the caller then calls
	// Memory.Crash and runs recovery on a fresh engine.
	CrashCycle int64
}

// CyclesPerNs converts nanoseconds to cycles at the paper's 2 GHz clock.
const CyclesPerNs = 2

// DefaultConfig returns the scaled default configuration with the given
// number of worker threads.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:     threads,
		Hier:        memsim.DefaultConfig(threads),
		IssueWidth:  4,
		ROBWindow:   196,
		MSHRs:       8,
		StoreQ:      48,
		WriteQ:      64,
		L1HitLat:    2,
		L2HitLat:    11,
		MemReadLat:  150 * CyclesPerNs,
		MemWriteLat: 300 * CyclesPerNs,
		MCFlushLat:  30,
		FlushBanks:  12,
		Quantum:     500,
	}
}

// WithDefaults returns c with every zero field replaced by its default.
// Engine.New applies it on construction; callers that need the exact
// effective configuration (e.g. for memoization keys) can apply it
// themselves.
func (c Config) WithDefaults() Config {
	d := DefaultConfig(max(c.Threads, 1))
	if c.Threads == 0 {
		c.Threads = d.Threads
	}
	if c.Hier == (memsim.Config{}) {
		c.Hier = memsim.DefaultConfig(c.Threads)
	}
	if c.Hier.Cores < c.Threads {
		c.Hier.Cores = c.Threads
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.ROBWindow == 0 {
		c.ROBWindow = d.ROBWindow
	}
	if c.MSHRs == 0 {
		c.MSHRs = d.MSHRs
	}
	if c.StoreQ == 0 {
		c.StoreQ = d.StoreQ
	}
	if c.WriteQ == 0 {
		c.WriteQ = d.WriteQ
	}
	if c.L1HitLat == 0 {
		c.L1HitLat = d.L1HitLat
	}
	if c.L2HitLat == 0 {
		c.L2HitLat = d.L2HitLat
	}
	if c.MemReadLat == 0 {
		c.MemReadLat = d.MemReadLat
	}
	if c.MemWriteLat == 0 {
		c.MemWriteLat = d.MemWriteLat
	}
	if c.MCFlushLat == 0 {
		c.MCFlushLat = d.MCFlushLat
	}
	if c.FlushBanks == 0 {
		c.FlushBanks = d.FlushBanks
	}
	if c.Quantum == 0 {
		c.Quantum = d.Quantum
	}
	return c
}
