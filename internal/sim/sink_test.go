package sim

import (
	"testing"

	"lazyp/internal/memsim"
	"lazyp/internal/obs"
)

// TestSinkCapturesEventTypes drives a small eager-persistency-shaped
// body — stores over more lines than L1 holds, explicit flushes,
// fences — and checks the attached tracer saw all the distinct event
// types the engine emits: flush, fence, eviction write-back, and
// (with a tiny ROB) rob_stall.
func TestSinkCapturesEventTypes(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	base := mem.Alloc("data", 1<<20)
	cfg := DefaultConfig(1)
	cfg.Hier = memsim.Config{Cores: 1, L1Size: 4 << 10, L1Ways: 4, L2Size: 8 << 10, L2Ways: 8}
	cfg.ROBWindow = 8
	e := New(cfg, mem)
	tr := obs.NewTracer(1 << 16)
	tr.Enable(true)
	e.SetSink(tr)
	e.Run(func(th *Thread) {
		// Dirty far more lines than L2 holds to force evictions, with
		// loads in between to occupy the MSHRs and trip the tiny ROB.
		for i := 0; i < 1024; i++ {
			a := base + memsim.Addr(i*memsim.LineSize)
			th.Store64(a, uint64(i))
			th.Load64(base + memsim.Addr(((i*7)%1024)*memsim.LineSize))
		}
		// Explicit eager ordering points.
		for i := 0; i < 8; i++ {
			th.Flush(base + memsim.Addr(i*memsim.LineSize))
		}
		th.Fence()
	})
	seen := map[obs.EventType]int{}
	for _, ev := range tr.Drain(0) {
		seen[ev.Type]++
	}
	for _, want := range []obs.EventType{obs.EvFlush, obs.EvFence, obs.EvEvict, obs.EvROBStall} {
		if seen[want] == 0 {
			t.Errorf("no %s events captured (saw %v)", want, seen)
		}
	}
	if seen[obs.EvFlush] != 8 || seen[obs.EvFence] != 1 {
		t.Errorf("flush/fence counts %d/%d, want 8/1", seen[obs.EvFlush], seen[obs.EvFence])
	}
}

// TestSinkDoesNotPerturbTiming runs the same body with and without a
// sink and requires identical final clocks and op counts — the
// engine-level statement of the determinism contract (the harness
// additionally byte-diffs whole experiment outputs).
func TestSinkDoesNotPerturbTiming(t *testing.T) {
	run := func(attach bool) (int64, OpCounts) {
		mem := memsim.NewMemory(1 << 22)
		base := mem.Alloc("data", 1<<20)
		cfg := DefaultConfig(2)
		cfg.Hier = memsim.Config{Cores: 2, L1Size: 4 << 10, L1Ways: 4, L2Size: 8 << 10, L2Ways: 8}
		e := New(cfg, mem)
		if attach {
			tr := obs.NewTracer(64)
			tr.Enable(true)
			e.SetSink(tr)
		}
		e.Run(func(th *Thread) {
			for i := 0; i < 256; i++ {
				a := base + memsim.Addr((th.ThreadID()*4096+i)*memsim.LineSize)
				th.Store64(a, uint64(i))
				th.Flush(a)
			}
			th.Fence()
		})
		return e.ExecCycles(), e.Ops()
	}
	c0, o0 := run(false)
	c1, o1 := run(true)
	if c0 != c1 || o0 != o1 {
		t.Fatalf("sink perturbed the run: cycles %d vs %d, ops %+v vs %+v", c0, c1, o0, o1)
	}
}
