package sim

import (
	"testing"

	"lazyp/internal/memsim"
)

func testEngine(threads int) (*Engine, memsim.Addr) {
	mem := memsim.NewMemory(1 << 22)
	base := mem.Alloc("data", 1<<20)
	cfg := DefaultConfig(threads)
	cfg.Hier = memsim.Config{Cores: threads, L1Size: 4 << 10, L1Ways: 4, L2Size: 32 << 10, L2Ways: 8}
	return New(cfg, mem), base
}

func TestSingleThreadClockAdvances(t *testing.T) {
	e, base := testEngine(1)
	e.Run(func(th *Thread) {
		start := th.Now()
		th.Compute(100)
		if th.Now() <= start {
			t.Error("Compute did not advance the clock")
		}
		th.Load64(base)
	})
	// The final clock covers the in-flight NVMM miss (thread drain).
	if e.ExecCycles() < DefaultConfig(1).MemReadLat {
		t.Fatalf("final clock %d does not cover the outstanding miss", e.ExecCycles())
	}
	if e.Ops().Instrs != 101 {
		t.Fatalf("instrs = %d, want 101", e.Ops().Instrs)
	}
}

func TestIssueWidth(t *testing.T) {
	e, _ := testEngine(1)
	e.Run(func(th *Thread) {
		th.Compute(400)
	})
	// 400 instructions at width 4 = 100 cycles.
	if got := e.ExecCycles(); got != 100 {
		t.Fatalf("400 ops took %d cycles, want 100", got)
	}
}

func TestStoreVisibleImmediately(t *testing.T) {
	e, base := testEngine(1)
	e.Run(func(th *Thread) {
		th.Store64(base, 777)
		if th.Load64(base) != 777 {
			t.Error("store not visible to subsequent load")
		}
		th.StoreF(base+8, 2.5)
		if th.LoadF(base+8) != 2.5 {
			t.Error("float store not visible")
		}
	})
}

func TestFenceWaitsForFlush(t *testing.T) {
	e, base := testEngine(1)
	var beforeFence, afterFence int64
	e.Run(func(th *Thread) {
		th.Store64(base, 1)
		th.Flush(base)
		beforeFence = th.Now()
		th.Fence()
		afterFence = th.Now()
	})
	if afterFence <= beforeFence {
		t.Fatalf("fence after dirty flush should stall: before=%d after=%d", beforeFence, afterFence)
	}
	if e.Mem.DurableLoad64(base) != 1 {
		t.Fatal("flush did not persist")
	}
	if e.Hazards().FenceStalls != 1 {
		t.Fatalf("fence stalls = %d, want 1", e.Hazards().FenceStalls)
	}
}

func TestFlushCleanLineCheap(t *testing.T) {
	e, base := testEngine(1)
	e.Run(func(th *Thread) {
		th.Load64(base) // clean line
		th.Flush(base)
		before := th.Now()
		th.Fence()
		if th.Now()-before > 2 {
			t.Errorf("fence after clean flush stalled %d cycles", th.Now()-before)
		}
	})
	if w, _, _, _ := e.Mem.NVMMWrites(); w != 0 {
		t.Fatal("clean flush wrote NVMM")
	}
}

func TestMemLatencyExposedThroughROB(t *testing.T) {
	mkRun := func(readLat int64) int64 {
		mem := memsim.NewMemory(1 << 22)
		base := mem.Alloc("d", 1<<20)
		cfg := DefaultConfig(1)
		cfg.MemReadLat = readLat
		// Strided loads: each a fresh miss, no prefetchable stream.
		cfg.Hier = memsim.Config{Cores: 1, L1Size: 4 << 10, L1Ways: 4, L2Size: 32 << 10, L2Ways: 8}
		e := New(cfg, mem)
		e.Run(func(th *Thread) {
			for i := 0; i < 64; i++ {
				th.Load64(base + memsim.Addr(i*4096))
				th.Compute(300) // long dependent work ages the miss out
			}
		})
		return e.ExecCycles()
	}
	slow, fast := mkRun(600), mkRun(60)
	if slow <= fast {
		t.Fatalf("NVMM latency not reflected: slow=%d fast=%d", slow, fast)
	}
}

func TestMSHRFullStalls(t *testing.T) {
	e, base := testEngine(1)
	e.Run(func(th *Thread) {
		// Burst of strided misses with no compute between them.
		for i := 0; i < 64; i++ {
			th.Load64(base + memsim.Addr(i*4096))
		}
	})
	if e.Hazards().MSHRFull == 0 {
		t.Fatal("a miss burst should exhaust the MSHRs")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int64, uint64) {
		mem := memsim.NewMemory(1 << 22)
		base := mem.Alloc("d", 1<<20)
		cfg := DefaultConfig(4)
		e := New(cfg, mem)
		e.Run(func(th *Thread) {
			off := memsim.Addr(th.ThreadID() * 128 * 1024)
			for i := 0; i < 5000; i++ {
				a := base + off + memsim.Addr((i*104729)%(96*1024))
				if i%3 == 0 {
					th.Store64(a, uint64(i))
				} else {
					th.Load64(a)
				}
				th.Compute(2)
			}
		})
		w, _, _, _ := e.Mem.NVMMWrites()
		return e.ExecCycles(), w
	}
	c1, w1 := run()
	c2, w2 := run()
	if c1 != c2 || w1 != w2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", c1, w1, c2, w2)
	}
}

func TestParallelSpeedup(t *testing.T) {
	run := func(threads int) int64 {
		mem := memsim.NewMemory(1 << 22)
		base := mem.Alloc("d", 1<<20)
		e := New(DefaultConfig(threads), mem)
		e.Run(func(th *Thread) {
			// Purely local compute + private data.
			off := memsim.Addr(th.ThreadID() * 4096)
			for i := 0; i < 20000/threads; i++ {
				th.Compute(40)
				th.Load64(base + off)
			}
		})
		return e.ExecCycles()
	}
	t1, t4 := run(1), run(4)
	if float64(t1)/float64(t4) < 3.0 {
		t.Fatalf("embarrassingly parallel work sped up only %0.2fx on 4 threads", float64(t1)/float64(t4))
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	e := New(DefaultConfig(4), mem)
	b := e.NewBarrier()
	releases := make([]int64, 4)
	e.Run(func(th *Thread) {
		// Imbalanced work before the barrier.
		th.Compute(1000 * (th.ThreadID() + 1))
		th.BarrierWait(b)
		releases[th.ThreadID()] = th.Now()
	})
	for i := 1; i < 4; i++ {
		if releases[i] != releases[0] {
			t.Fatalf("threads released at different cycles: %v", releases)
		}
	}
	// The slowest thread computed 4000 ops = 1000 cycles.
	if releases[0] < 1000 {
		t.Fatalf("barrier released before the slowest arrival: %d", releases[0])
	}
}

func TestBarrierReuse(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	e := New(DefaultConfig(3), mem)
	b := e.NewBarrier()
	e.Run(func(th *Thread) {
		for phase := 0; phase < 5; phase++ {
			th.Compute(100 * (th.ThreadID() + 1))
			th.BarrierWait(b)
		}
	})
	// Completing without deadlock is the assertion.
}

func TestCrashInjection(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	base := mem.Alloc("d", 1<<20)
	cfg := DefaultConfig(2)
	cfg.CrashCycle = 1000
	e := New(cfg, mem)
	crashed := e.Run(func(th *Thread) {
		for i := 0; ; i++ {
			th.Store64(base+memsim.Addr(th.ThreadID()*65536+i%1024*64), uint64(i))
			th.Compute(10)
		}
	})
	if !crashed || !e.Crashed() {
		t.Fatal("crash was not injected")
	}
	if e.ExecCycles() < 1000 {
		t.Fatalf("crash before the configured cycle: %d", e.ExecCycles())
	}
}

func TestCrashAtBarrier(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	cfg := DefaultConfig(2)
	cfg.CrashCycle = 500
	e := New(cfg, mem)
	b := e.NewBarrier()
	crashed := e.Run(func(th *Thread) {
		if th.ThreadID() == 0 {
			th.BarrierWait(b) // waits forever: thread 1 spins past the crash
			return
		}
		for {
			th.Compute(100)
		}
	})
	if !crashed {
		t.Fatal("expected crash to release the barrier-blocked thread")
	}
}

func TestPanicPropagates(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	e := New(DefaultConfig(2), mem)
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	e.Run(func(th *Thread) {
		if th.ThreadID() == 1 {
			th.Compute(100)
			panic("boom")
		}
		for i := 0; i < 10; i++ {
			th.Compute(1000)
		}
	})
}

func TestPeriodicCleanBoundsDirtyAge(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	base := mem.Alloc("d", 1<<20)
	cfg := DefaultConfig(1)
	cfg.CleanPeriod = 2000
	e := New(cfg, mem)
	e.Run(func(th *Thread) {
		th.Store64(base, 42)
		for i := 0; i < 3000; i++ {
			th.Compute(10) // ~7500 cycles: several clean ticks pass
		}
	})
	if mem.DurableLoad64(base) != 42 {
		t.Fatal("periodic cleanup did not persist an old dirty line")
	}
	_, _, _, clean := mem.NVMMWrites()
	if clean == 0 {
		t.Fatal("no cleanup writes recorded")
	}
}

func TestEngineRunAfterCrashPanics(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	cfg := DefaultConfig(1)
	cfg.CrashCycle = 10
	e := New(cfg, mem)
	e.Run(func(th *Thread) {
		for {
			th.Compute(100)
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Run after crash should panic")
		}
	}()
	e.Run(func(*Thread) {})
}

// TestCrashDuringGrantExtension injects the crash while the only
// runnable thread is extending its own grant in place — the worker,
// not the engine goroutine, holds the grant when the crash fires and
// must retire itself (selfCrash).
func TestCrashDuringGrantExtension(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	cfg := DefaultConfig(1)
	cfg.CrashCycle = 10_000
	e := New(cfg, mem)
	crashed := e.Run(func(th *Thread) {
		for {
			th.Compute(100)
		}
	})
	if !crashed || !e.Crashed() {
		t.Fatal("crash was not injected on the extension path")
	}
	if e.ExecCycles() < 10_000 {
		t.Fatalf("crash before the configured cycle: %d", e.ExecCycles())
	}
	if e.Ops().Instrs == 0 {
		t.Fatal("crashed thread's counters were not collected")
	}
}

// TestCrashAtBarrierManyWaiters parks all threads but one at a barrier
// and lets the straggler spin past the crash cycle: the spinning worker
// holds the grant (solo extension), detects the crash, and must deliver
// abortGrant to every barrier-parked thread itself.
func TestCrashAtBarrierManyWaiters(t *testing.T) {
	for _, threads := range []int{4, 8} {
		cfg := DefaultConfig(threads)
		cfg.CrashCycle = 500
		e := New(cfg, memsim.NewMemory(1<<22))
		b := e.NewBarrier()
		crashed := e.Run(func(th *Thread) {
			if th.ThreadID() != threads-1 {
				th.BarrierWait(b) // parks forever: the straggler crashes first
				return
			}
			for {
				th.Compute(100)
			}
		})
		if !crashed {
			t.Fatalf("threads=%d: worker-held crash did not abort barrier waiters", threads)
		}
	}
}

// TestCrashBeforeFirstGrant drives a session whose first Run finishes
// with drained clocks already past the crash cycle (the final dispatch
// retires the last thread without a crash check, like the old engine's
// loop). The second Run must then crash at the engine goroutine's
// initial dispatch, before any thread body executes an operation.
func TestCrashBeforeFirstGrant(t *testing.T) {
	mem := memsim.NewMemory(1 << 22)
	base := mem.Alloc("d", 1<<20)
	cfg := DefaultConfig(2)
	cfg.CrashCycle = 200 // below one NVMM fill drain (311 cycles)
	e := New(cfg, mem)
	if e.Run(func(th *Thread) {
		// One miss whose in-flight drain pushes the final clock past
		// the crash cycle without any dispatch observing it.
		th.Load64(base + memsim.Addr(th.ThreadID()*4096))
	}) {
		t.Fatal("first run should complete: no dispatch sees the crash cycle")
	}
	if e.ExecCycles() <= cfg.CrashCycle {
		t.Fatalf("test premise broken: drained clock %d not past crash cycle", e.ExecCycles())
	}
	ran := false
	if !e.Run(func(th *Thread) { ran = true }) {
		t.Fatal("second run must crash at the initial dispatch")
	}
	if ran {
		t.Fatal("a thread body executed after the crash cycle had passed")
	}
}

// TestCrashSweepDirectHandoff sweeps the crash cycle across a
// barrier-synchronized multi-thread run with periodic cleanup enabled,
// so aborts land at every dispatch site — yield, barrier block, thread
// exit, and cleanup-clamped grant extension — and asserts every crash
// point is deterministic.
func TestCrashSweepDirectHandoff(t *testing.T) {
	run := func(threads int, crashCycle int64) (bool, int64, uint64, uint64) {
		mem := memsim.NewMemory(1 << 22)
		base := mem.Alloc("d", 1<<20)
		cfg := DefaultConfig(threads)
		cfg.CrashCycle = crashCycle
		cfg.CleanPeriod = 3000
		e := New(cfg, mem)
		b := e.NewBarrier()
		crashed := e.Run(func(th *Thread) {
			off := memsim.Addr(th.ThreadID() * 65536)
			for i := 0; i < 400; i++ {
				a := base + off + memsim.Addr(i%512*64)
				th.Store64(a, uint64(i))
				th.Load64(a)
				th.Compute(5)
				if i%100 == 99 {
					th.BarrierWait(b)
				}
			}
		})
		w, _, _, _ := mem.NVMMWrites()
		return crashed, e.ExecCycles(), w, e.Ops().Instrs
	}
	for _, threads := range []int{2, 4, 8} {
		_, full, _, _ := run(threads, 0)
		if crashed, _, _, _ := run(threads, 2*full); crashed {
			t.Fatalf("threads=%d: crash cycle past the makespan still crashed", threads)
		}
		for i := 0; i < 12; i++ {
			cc := 1 + int64(i)*full*9/10/12
			c1, cyc1, w1, i1 := run(threads, cc)
			c2, cyc2, w2, i2 := run(threads, cc)
			if c1 != c2 || cyc1 != cyc2 || w1 != w2 || i1 != i2 {
				t.Fatalf("threads=%d crash@%d not deterministic: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
					threads, cc, c1, cyc1, w1, i1, c2, cyc2, w2, i2)
			}
			if !c1 {
				t.Fatalf("threads=%d: no crash at cycle %d (full run = %d)", threads, cc, full)
			}
			if cyc1 < cc {
				t.Fatalf("threads=%d: crashed at %d, before the configured cycle %d", threads, cyc1, cc)
			}
		}
	}
}

func TestStoreQueueBackpressure(t *testing.T) {
	mem := memsim.NewMemory(1 << 23)
	base := mem.Alloc("d", 1<<22)
	cfg := DefaultConfig(1)
	cfg.Hier = memsim.Config{Cores: 1, L1Size: 4 << 10, L1Ways: 4, L2Size: 32 << 10, L2Ways: 8}
	e := New(cfg, mem)
	e.Run(func(th *Thread) {
		// Flood with dirty flushes: their drain-limited completions
		// clog the store queue.
		for i := 0; i < 4096; i++ {
			a := base + memsim.Addr(i*64)
			th.Store64(a, 1)
			th.Flush(a)
		}
	})
	h := e.Hazards()
	if h.WriteQFull+h.StoreQFull == 0 {
		t.Fatal("flush flood did not backpressure the store queue")
	}
}
