package sim

// Direct-handoff scheduling (DESIGN.md §3a).
//
// Exactly one simulated thread executes at a time — that exclusivity is
// a token, and the token is the grant itself. In steady state no
// scheduler goroutine exists: the worker that exhausts its window (or
// blocks at a barrier, or finishes) runs the scheduling decision below
// with the token still in hand and passes the grant straight to the
// next runnable worker, one goroutine switch per quantum instead of the
// two a central scheduler costs. When the decision picks the caller
// itself — it is still the minimum-clock schedulable thread — the grant
// is extended in place with no channel operation at all (the
// multi-thread generalization of the old solo fast path).
//
// The decision procedure is byte-for-byte the old central loop's: pick
// the (clock, id)-minimum schedulable thread, fire periodic cleanups
// the minimum clock has crossed, inject a due crash, and bound the
// window by the second-smallest clock plus one quantum (soloQuanta
// quanta when alone), clamped to the next cleanup or crash boundary.
// Scheduling therefore depends only on thread clocks, and simulations
// stay bit-reproducible — and identical to the pre-handoff engine.

// dispatchKind is the outcome of one scheduling decision.
type dispatchKind int

const (
	// dispatchHandoff: the grant was sent to another worker's channel.
	dispatchHandoff dispatchKind = iota
	// dispatchExtend: the caller stays the minimum; it keeps the token
	// and runs to the returned window bound. Never returned to the
	// engine goroutine or from blocking/exiting paths.
	dispatchExtend
	// dispatchCrashed: the crash cycle was reached; every other live
	// thread has been aborted and retired, and Engine.crashed is set.
	dispatchCrashed
	// dispatchDeadlock: no schedulable thread remains but live threads
	// exist — all of them are parked at a barrier.
	dispatchDeadlock
)

// dispatch runs one scheduling decision. The caller holds the grant
// token and has already restored the heap for its own state change
// (heapFix after running, heapPop after blocking or exiting). self is
// the calling thread's id — used both to take the in-place extension
// path when the caller remains the minimum and to exclude the caller
// from a crash abort — or -1 when the engine goroutine dispatches the
// first grant of a Run.
func (e *Engine) dispatch(self int) (dispatchKind, int64, interface{}) {
	if len(e.heap) == 0 {
		return dispatchDeadlock, 0, nil
	}
	next := e.heap[0]
	t := e.threads[next]

	// Periodic cleanup fires when the globally-minimal clock crosses
	// the boundary (all threads have passed it).
	for e.nextClean > 0 && t.now >= e.nextClean {
		e.Hier.CleanOlder(e.nextClean, e.cfg.CleanPeriod)
		e.nextClean += e.cleanTick
	}

	// Crash: once the slowest thread passes the crash cycle, abort
	// everyone. The caller retires itself (selfCrash) or is the engine.
	if e.cfg.CrashCycle > 0 && t.now >= e.cfg.CrashCycle {
		prop := e.abortOthers(self)
		e.crashed = true
		return dispatchCrashed, 0, prop
	}

	second := e.heapSecond()
	until := second + e.cfg.Quantum
	if second == maxClock { // only one runnable thread left
		until = t.now + soloQuanta*e.cfg.Quantum
	}
	if until <= t.now {
		until = t.now + 1
	}
	if e.nextClean > 0 && until > e.nextClean {
		until = e.nextClean
		if until <= t.now {
			until = t.now + 1
		}
	}
	if e.cfg.CrashCycle > 0 && until > e.cfg.CrashCycle {
		until = e.cfg.CrashCycle
		if until <= t.now {
			until = t.now + 1
		}
	}

	if next == self {
		// Grant extension: the caller is still the minimum. No channel
		// operation, no goroutine switch — the common case whenever the
		// window was clamped by a cleanup boundary, and the steady state
		// when the caller is the only schedulable thread.
		return dispatchExtend, until, nil
	}
	// Direct handoff: grant the root in place — its clock only grows
	// while it runs, so one sift-down when it yields restores the heap.
	// The receiver is parked in waitGrant (every live thread but the
	// token holder is), so the send also publishes all scheduler state
	// mutated under the token to the next holder.
	e.grants[next] <- until
	return dispatchHandoff, 0, nil
}

// yieldWorker is called by the token-holding worker when its window is
// exhausted: re-run the scheduling decision and either continue in
// place, hand the grant over and park, or join a detected crash.
func (e *Engine) yieldWorker(t *Thread) {
	e.heapFix()
	kind, until, prop := e.dispatch(t.id)
	switch kind {
	case dispatchExtend:
		t.grantUntil = until
	case dispatchHandoff:
		t.grantUntil = t.waitGrant(e.grants[t.id])
	case dispatchCrashed:
		e.selfCrash(t, prop)
	default:
		panic("sim: empty heap on yield") // t itself is schedulable
	}
}

// blockWorker parks the token-holding worker at a barrier: it leaves
// the schedulable set, hands the grant on, and waits to be granted
// again after a release (or aborted by a crash).
func (e *Engine) blockWorker(t *Thread) {
	e.heapPop() // t sits at the root: it was granted in place
	kind, _, prop := e.dispatch(t.id)
	switch kind {
	case dispatchHandoff:
		t.grantUntil = t.waitGrant(e.grants[t.id])
	case dispatchCrashed:
		e.selfCrash(t, prop)
	case dispatchDeadlock:
		// Report through Run (which panics there) and park: the token
		// dies with this message, so nothing will ever grant us again.
		e.ctl <- ctlMsg{kind: ctlDeadlock}
		t.grantUntil = t.waitGrant(e.grants[t.id])
	default:
		panic("sim: blocked thread re-granted") // t left the heap
	}
}

// exitWorker retires the token-holding worker whose body returned and
// passes the grant on (or reports completion when it was the last).
func (e *Engine) exitWorker(t *Thread) {
	e.heapPop() // t sits at the root: it was granted in place
	e.retire(t)
	t.retired = true
	if e.alive == 0 {
		e.ctl <- ctlMsg{kind: ctlDone}
		return
	}
	kind, _, prop := e.dispatch(t.id)
	switch kind {
	case dispatchHandoff:
		// The grant moved on; this goroutine is done.
	case dispatchCrashed:
		e.ctl <- ctlMsg{kind: ctlCrashed, err: prop}
	case dispatchDeadlock:
		e.ctl <- ctlMsg{kind: ctlDeadlock}
	default:
		panic("sim: dead thread re-granted") // t left the heap
	}
}

// selfCrash finishes a crash the calling worker itself detected while
// holding the token: every other thread is already retired
// (abortOthers); account for the caller, wake Run, and unwind the body.
// The retired flag tells the worker wrapper the recovery below is
// already fully reported.
func (e *Engine) selfCrash(t *Thread, prop interface{}) {
	e.retire(t)
	t.retired = true
	e.ctl <- ctlMsg{kind: ctlCrashed, err: prop}
	panic(errCrashed)
}

// abortOthers aborts every live thread except self (-1 aborts all):
// each is parked in waitGrant — every live thread but the token holder
// always is — so the abortGrant makes it panic with errCrashed and
// acknowledge through acks, at which point it is retired. Returns a
// real panic value should one race the abort, to propagate through Run.
func (e *Engine) abortOthers(self int) (propagate interface{}) {
	for i := range e.threads {
		if e.dead[i] || i == self {
			continue
		}
		e.grants[i] <- abortGrant
		ack := <-e.acks
		e.retire(ack.t)
		if ack.err != nil && ack.err != errCrashed {
			propagate = ack.err
		}
	}
	return propagate
}

// heapLess orders schedulable threads by (clock, id); the id tiebreak
// reproduces the lowest-index-wins behavior of the original linear scan.
func (e *Engine) heapLess(a, b int) bool {
	ta, tb := e.threads[a], e.threads[b]
	return ta.now < tb.now || (ta.now == tb.now && a < b)
}

// heapPush inserts thread id into the schedulable heap.
func (e *Engine) heapPush(id int) {
	e.heap = append(e.heap, id)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

// heapPop removes the root (minimum-clock thread).
func (e *Engine) heapPop() {
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	e.siftDown(0)
}

// heapFix restores heap order after the root's clock advanced in place
// while it ran. Barrier releases during the grant only push threads with
// clocks at or above the running thread's, so the root cannot have been
// displaced positionally and a single sift-down suffices.
func (e *Engine) heapFix() { e.siftDown(0) }

// siftDown restores heap order below i after e.heap[i]'s key grew.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e.heapLess(e.heap[l], e.heap[m]) {
			m = l
		}
		if r < n && e.heapLess(e.heap[r], e.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
}

// heapSecond returns the second-smallest schedulable clock (which must
// sit at one of the root's children), or maxClock when the root is the
// only schedulable thread.
func (e *Engine) heapSecond() int64 {
	s := maxClock
	for c := 1; c <= 2 && c < len(e.heap); c++ {
		if now := e.threads[e.heap[c]].now; now < s {
			s = now
		}
	}
	return s
}

// unblock returns a barrier-released thread to the schedulable heap.
// Called by the running (releasing) thread.
func (e *Engine) unblock(w *Thread) {
	e.heapPush(w.id)
}

// waitGrant blocks until a token holder grants a new window.
func (t *Thread) waitGrant(g chan int64) int64 {
	v := <-g
	if v == abortGrant {
		panic(errCrashed)
	}
	return v
}

// checkYield re-runs the scheduling decision once the thread exhausted
// its window. Every public Thread operation calls it.
func (t *Thread) checkYield() {
	if t.now < t.grantUntil {
		return
	}
	t.eng.yieldWorker(t)
}
