package sim

import (
	"errors"
	"fmt"
	"math/bits"

	"lazyp/internal/memsim"
	"lazyp/internal/obs"
)

// errCrashed is the sentinel delivered to threads when a crash is
// injected; the worker wrapper recovers it.
var errCrashed = errors.New("sim: crash injected")

// abortGrant, sent on a thread's grant channel, makes the blocked thread
// panic with errCrashed instead of resuming.
const abortGrant = int64(-1)

// maxClock is the sentinel "no second runnable thread" clock value.
const maxClock = int64(1) << 62

// soloQuanta is the grant-window multiplier when a single thread is
// runnable: with no other clock to stay close to, the thread may run
// this many quanta before re-running the scheduling decision.
const soloQuanta = 4

// Engine owns one simulation session: the memory hierarchy plus the set
// of simulated threads. A session may call Run several times (e.g.
// warm-up then measurement, or recovery then resumed execution) — cache
// state and clocks persist across calls; statistics windows are managed
// with Memory.ResetCounters and Hierarchy.ResetStats.
//
// Scheduling is direct-handoff (DESIGN.md §3a): there is no scheduler
// goroutine in steady state. The grant — permission to be the one
// executing simulated thread — is a token handed worker-to-worker; the
// yielding worker runs the scheduling decision itself and either
// extends its own grant in place or sends the grant straight to the
// next runnable worker's channel. The engine goroutine only dispatches
// the first grant of a Run and then parks on ctl until a worker reports
// a terminal event (completion, crash, deadlock, or a propagated
// panic).
type Engine struct {
	cfg  Config
	Mem  *memsim.Memory
	Hier *memsim.Hierarchy

	startCycle int64
	crashed    bool

	// Handoff plumbing. grants[i] delivers i's next window (or
	// abortGrant); acks carries abort acknowledgements back to the
	// aborting token holder; ctl carries the single terminal event of a
	// Run to the engine goroutine.
	grants  []chan int64
	acks    chan ackMsg
	ctl     chan ctlMsg
	threads []*Thread

	// Scheduler state, all guarded by the grant token: exactly one
	// goroutine — the grant-holding worker, or the engine goroutine
	// before the first grant and after the terminal ctl message — may
	// touch it, and every token transfer is a channel operation, which
	// orders the accesses for the race detector and the memory model
	// alike. heap holds the ids of schedulable (parked, not
	// barrier-blocked, not finished) threads ordered by (clock, id);
	// dead and alive track retirement.
	heap      []int
	dead      []bool
	alive     int
	nextClean int64
	cleanTick int64

	// mcLast is the shared memory controller's drain pointer: the cycle
	// at which the most recently accepted NVMM line write finishes
	// draining. Every write — natural eviction, flush, or cleanup —
	// occupies the controller for writeService cycles; flush-heavy
	// threads observe the backlog through their store-queue entries.
	mcLast int64

	haz Hazards
	ops OpCounts

	// sink receives persistency events when attached; see sink.go.
	sink obs.Sink
}

// New builds a session over mem with the given configuration.
func New(cfg Config, mem *memsim.Memory) *Engine {
	cfg = cfg.WithDefaults()
	if cfg.Threads < 1 || cfg.Threads > 32 {
		panic(fmt.Sprintf("sim: thread count %d out of range [1,32]", cfg.Threads))
	}
	e := &Engine{
		cfg:  cfg,
		Mem:  mem,
		Hier: memsim.NewHierarchy(cfg.Hier, mem),
	}
	if sb := globalSink.Load(); sb != nil {
		e.SetSink(sb.s)
	}
	return e
}

// Config returns the session configuration.
func (e *Engine) Config() Config { return e.cfg }

// Crashed reports whether a crash was injected during a Run.
func (e *Engine) Crashed() bool { return e.crashed }

// ExecCycles returns the cycles consumed by Runs so far (max thread
// clock, i.e. parallel makespan).
func (e *Engine) ExecCycles() int64 { return e.startCycle }

// Hazards returns hazard counters summed over all threads and Runs.
func (e *Engine) Hazards() Hazards { return e.haz }

// Ops returns dynamic operation counts summed over all threads and Runs.
func (e *Engine) Ops() OpCounts { return e.ops }

// ackMsg acknowledges an abortGrant: the aborted worker hands its
// Thread back so the aborting token holder can fold in its counters.
// err is the recovered value — errCrashed, or (defensively) a real
// panic that raced the abort.
type ackMsg struct {
	t   *Thread
	err interface{}
}

// ctlMsg is the single terminal event a Run delivers to the engine
// goroutine.
type ctlMsg struct {
	kind ctlKind
	err  interface{} // real panic value to propagate, if any
}

type ctlKind int

const (
	ctlDone     ctlKind = iota // every thread finished
	ctlCrashed                 // crash injected; all threads retired
	ctlPanic                   // a thread body panicked; err holds the value
	ctlDeadlock                // every live thread is blocked at a barrier
)

// Run executes body on every thread (body receives the Thread) and
// blocks until all threads complete or a crash is injected. It returns
// true when the session crashed; the caller must then call Mem.Crash()
// and Hier.Reset() — or simply start a fresh engine after Mem.Crash() —
// before inspecting durable state.
func (e *Engine) Run(body func(t *Thread)) (crashed bool) {
	if e.crashed {
		panic("sim: Run after crash — start a new engine on the crashed memory")
	}
	n := e.cfg.Threads
	threads := make([]*Thread, n)
	e.grants = make([]chan int64, n)
	e.acks = make(chan ackMsg)
	e.ctl = make(chan ctlMsg)
	e.threads = threads
	e.dead = make([]bool, n)
	e.alive = n
	e.heap = e.heap[:0]
	for i := 0; i < n; i++ {
		t := &Thread{id: i, eng: e, mem: e.Mem, hier: e.Hier, now: e.startCycle, width: e.cfg.IssueWidth, robGate: ^uint64(0)}
		if w := e.cfg.IssueWidth; w&(w-1) == 0 {
			t.widthShift = uint8(bits.TrailingZeros(uint(w)))
			t.widthMask = int32(w - 1)
		} else {
			t.widthMask = -1
		}
		t.mshr.init(e.cfg.MSHRs)
		t.storeq.init(e.cfg.StoreQ)
		threads[i] = t
		e.grants[i] = make(chan int64)
		e.heapPush(i)
	}
	// Periodic cleanup runs as a spaced background sweep: every
	// period/8 cycles, lines dirty for longer than the period are
	// written back (non-bursty, per the paper's §III-E.1).
	e.nextClean, e.cleanTick = 0, 0
	if e.cfg.CleanPeriod > 0 {
		e.cleanTick = e.cfg.CleanPeriod / 8
		if e.cleanTick < 1 {
			e.cleanTick = 1
		}
		e.nextClean = e.startCycle + e.cleanTick
	}

	for i := 0; i < n; i++ {
		t := threads[i]
		g := e.grants[i]
		go func() {
			defer func() {
				r := recover()
				switch {
				case t.retired:
					// exitWorker or selfCrash already accounted for this
					// thread and reported; nothing may touch the engine
					// past this point — Run may already have returned.
				case r == errCrashed:
					// Aborted while parked: hand the counters back to
					// the aborting token holder.
					e.acks <- ackMsg{t: t, err: r}
				case r != nil:
					// Real panic while holding the grant: abort every
					// other thread so the panic surfaces through Run
					// instead of deadlocking a barrier.
					prop := e.abortOthers(t.id)
					if prop == nil {
						prop = r
					}
					e.retire(t)
					t.retired = true
					e.ctl <- ctlMsg{kind: ctlPanic, err: prop}
				}
			}()
			t.grantUntil = t.waitGrant(g)
			body(t)
			t.finish()
			e.exitWorker(t)
		}()
	}

	// First grant of the Run: the engine goroutine runs one scheduling
	// decision, hands the token into the worker set, and parks.
	switch kind, _, prop := e.dispatch(-1); kind {
	case dispatchHandoff:
		msg := <-e.ctl
		if msg.kind == ctlDeadlock {
			panic("sim: scheduler deadlock — every live thread is blocked at a barrier")
		}
		if msg.err != nil {
			panic(msg.err)
		}
	case dispatchCrashed:
		// The crash cycle predates every thread clock: all workers were
		// aborted before executing a single operation.
		if prop != nil {
			panic(prop)
		}
	default:
		panic("sim: impossible first dispatch")
	}

	// Advance the session clock to the makespan.
	for _, t := range threads {
		if t.now > e.startCycle {
			e.startCycle = t.now
		}
	}
	return e.crashed
}

// writeService is the shared MC drain time per NVMM line write.
func (e *Engine) writeService() int64 {
	svc := e.cfg.MemWriteLat / int64(e.cfg.FlushBanks)
	if svc < 1 {
		svc = 1
	}
	return svc
}

// mcAccept queues one line write at the shared controller at cycle now
// and returns its drain-completion cycle.
func (e *Engine) mcAccept(now int64) int64 {
	start := e.mcLast
	if now > start {
		start = now
	}
	e.mcLast = start + e.writeService()
	return e.mcLast
}

// collect folds a finished thread's counters into the session totals.
func (e *Engine) collect(t *Thread) {
	e.haz.add(t.haz)
	e.ops.add(t.Ops())
}

// retire folds t's counters into the session totals and removes it from
// the live set. Caller holds the grant token.
func (e *Engine) retire(t *Thread) {
	e.collect(t)
	e.dead[t.id] = true
	e.alive--
}
