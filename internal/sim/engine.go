package sim

import (
	"errors"
	"fmt"

	"lazyp/internal/memsim"
)

// errCrashed is the sentinel delivered to threads when a crash is
// injected; the worker wrapper recovers it.
var errCrashed = errors.New("sim: crash injected")

// abortGrant, sent on a thread's grant channel, makes the blocked thread
// panic with errCrashed instead of resuming.
const abortGrant = int64(-1)

// maxClock is the sentinel "no second runnable thread" clock value.
const maxClock = int64(1) << 62

// soloQuanta is the grant-window multiplier when a single thread is
// runnable: with no other clock to stay close to, the thread may run
// this many quanta before checking back in with the scheduler.
const soloQuanta = 4

// Engine owns one simulation session: the memory hierarchy plus the set
// of simulated threads. A session may call Run several times (e.g.
// warm-up then measurement, or recovery then resumed execution) — cache
// state and clocks persist across calls; statistics windows are managed
// with Memory.ResetCounters and Hierarchy.ResetStats.
type Engine struct {
	cfg  Config
	Mem  *memsim.Memory
	Hier *memsim.Hierarchy

	startCycle int64
	crashed    bool

	yield   chan yieldMsg
	grants  []chan int64
	blocked []bool
	threads []*Thread

	// Scheduler hot-path state. heap holds the ids of schedulable
	// (parked, not barrier-blocked) threads ordered by (clock, id) — an
	// incremental structure replacing the per-iteration min-clock scan.
	// solo is set while the granted thread is the only schedulable one;
	// it lets checkYield extend the grant in place, skipping the
	// yield/grant channel round-trip entirely.
	heap      []int
	solo      bool
	nextClean int64
	cleanTick int64

	// mcLast is the shared memory controller's drain pointer: the cycle
	// at which the most recently accepted NVMM line write finishes
	// draining. Every write — natural eviction, flush, or cleanup —
	// occupies the controller for writeService cycles; flush-heavy
	// threads observe the backlog through their store-queue entries.
	mcLast int64

	haz Hazards
	ops OpCounts
}

// New builds a session over mem with the given configuration.
func New(cfg Config, mem *memsim.Memory) *Engine {
	cfg = cfg.WithDefaults()
	if cfg.Threads < 1 || cfg.Threads > 32 {
		panic(fmt.Sprintf("sim: thread count %d out of range [1,32]", cfg.Threads))
	}
	return &Engine{
		cfg:  cfg,
		Mem:  mem,
		Hier: memsim.NewHierarchy(cfg.Hier, mem),
	}
}

// Config returns the session configuration.
func (e *Engine) Config() Config { return e.cfg }

// Crashed reports whether a crash was injected during a Run.
func (e *Engine) Crashed() bool { return e.crashed }

// ExecCycles returns the cycles consumed by Runs so far (max thread
// clock, i.e. parallel makespan).
func (e *Engine) ExecCycles() int64 { return e.startCycle }

// Hazards returns hazard counters summed over all threads and Runs.
func (e *Engine) Hazards() Hazards { return e.haz }

// Ops returns dynamic operation counts summed over all threads and Runs.
func (e *Engine) Ops() OpCounts { return e.ops }

// yieldMsg is the message a worker sends back to the scheduler.
type yieldMsg struct {
	id      int
	done    bool        // body returned (or crashed)
	blocked bool        // parked at a barrier: not schedulable until released
	err     interface{} // non-nil: errCrashed or a propagated panic value
}

// Run executes body on every thread (body receives the Thread) and
// blocks until all threads complete or a crash is injected. It returns
// true when the session crashed; the caller must then call Mem.Crash()
// and Hier.Reset() — or simply start a fresh engine after Mem.Crash() —
// before inspecting durable state.
func (e *Engine) Run(body func(t *Thread)) (crashed bool) {
	if e.crashed {
		panic("sim: Run after crash — start a new engine on the crashed memory")
	}
	n := e.cfg.Threads
	threads := make([]*Thread, n)
	grants := make([]chan int64, n)
	yield := make(chan yieldMsg)
	e.grants = grants
	e.yield = yield

	for i := 0; i < n; i++ {
		t := &Thread{id: i, eng: e, now: e.startCycle}
		t.mshr.init(e.cfg.MSHRs)
		t.storeq.init(e.cfg.StoreQ)
		threads[i] = t
		grants[i] = make(chan int64)
	}

	for i := 0; i < n; i++ {
		t := threads[i]
		g := grants[i]
		go func() {
			defer func() {
				if r := recover(); r != nil {
					yield <- yieldMsg{id: t.id, done: true, err: r}
				}
			}()
			t.grantUntil = t.waitGrant(g)
			body(t)
			t.finish()
			yield <- yieldMsg{id: t.id, done: true}
		}()
	}

	// Scheduler state.
	alive := n
	parked := make([]bool, n) // waiting for a grant
	for i := range parked {
		parked[i] = true
	}
	dead := make([]bool, n)
	e.blocked = make([]bool, n)
	e.threads = threads
	e.heap = e.heap[:0]
	for i := 0; i < n; i++ {
		e.heapPush(i)
	}
	// Periodic cleanup runs as a spaced background sweep: every
	// period/8 cycles, lines dirty for longer than the period are
	// written back (non-bursty, per the paper's §III-E.1).
	e.nextClean, e.cleanTick = 0, 0
	if e.cfg.CleanPeriod > 0 {
		e.cleanTick = e.cfg.CleanPeriod / 8
		if e.cleanTick < 1 {
			e.cleanTick = 1
		}
		e.nextClean = e.startCycle + e.cleanTick
	}
	var propagate interface{}

	for alive > 0 {
		// The schedulable (parked, not barrier-blocked) thread with the
		// smallest clock is the heap root; ids break clock ties, so the
		// pick matches the previous linear scan exactly.
		if len(e.heap) == 0 {
			panic("sim: scheduler deadlock — every live thread is blocked at a barrier")
		}
		next := e.heap[0]
		second := e.heapSecond()
		t := threads[next]

		// Periodic cleanup fires when the globally-minimal clock
		// crosses the boundary (all threads have passed it).
		for e.nextClean > 0 && t.now >= e.nextClean {
			e.Hier.CleanOlder(e.nextClean, e.cfg.CleanPeriod)
			e.nextClean += e.cleanTick
		}

		// Crash: once the slowest thread passes the crash cycle, abort
		// everyone.
		if e.cfg.CrashCycle > 0 && t.now >= e.cfg.CrashCycle {
			for i := 0; i < n; i++ {
				if dead[i] || !parked[i] {
					continue
				}
				grants[i] <- abortGrant
				msg := <-yield
				e.collect(threads[msg.id])
				dead[msg.id] = true
				alive--
				if msg.err != nil && msg.err != errCrashed {
					propagate = msg.err
				}
			}
			e.crashed = true
			break
		}

		until := second + e.cfg.Quantum
		if second == maxClock { // only one runnable thread left
			until = t.now + soloQuanta*e.cfg.Quantum
		}
		if until <= t.now {
			until = t.now + 1
		}
		if e.nextClean > 0 && until > e.nextClean {
			until = e.nextClean
			if until <= t.now {
				until = t.now + 1
			}
		}
		if e.cfg.CrashCycle > 0 && until > e.cfg.CrashCycle {
			until = e.cfg.CrashCycle
			if until <= t.now {
				until = t.now + 1
			}
		}

		// Grant the root in place: its clock only grows while it runs,
		// so one sift-down on return restores the heap — half the work
		// of a pop/push pair. Barrier releases by the running thread
		// push waiters whose clocks exceed the root's stale key, so the
		// heap stays valid below the root meanwhile.
		e.solo = len(e.heap) == 1
		parked[next] = false
		grants[next] <- until
		msg := <-yield
		parked[msg.id] = true
		if msg.blocked {
			e.blocked[msg.id] = true
			e.heapPop()
		}
		if msg.done {
			e.heapPop()
			e.collect(threads[msg.id])
			dead[msg.id] = true
			parked[msg.id] = false
			alive--
			if msg.err != nil && msg.err != errCrashed {
				propagate = msg.err
				// A real panic in one thread: abort the others so the
				// panic surfaces instead of a barrier deadlock.
				for i := 0; i < n; i++ {
					if dead[i] || !parked[i] {
						continue
					}
					grants[i] <- abortGrant
					m := <-yield
					e.collect(threads[m.id])
					dead[m.id] = true
					alive--
				}
				break
			}
			if msg.err == errCrashed {
				e.crashed = true
			}
		} else if !msg.blocked {
			e.heapFix()
		}
	}

	if propagate != nil {
		panic(propagate)
	}

	// Advance the session clock to the makespan.
	for _, t := range threads {
		if t.now > e.startCycle {
			e.startCycle = t.now
		}
	}
	return e.crashed
}

// writeService is the shared MC drain time per NVMM line write.
func (e *Engine) writeService() int64 {
	svc := e.cfg.MemWriteLat / int64(e.cfg.FlushBanks)
	if svc < 1 {
		svc = 1
	}
	return svc
}

// mcAccept queues one line write at the shared controller at cycle now
// and returns its drain-completion cycle.
func (e *Engine) mcAccept(now int64) int64 {
	start := e.mcLast
	if now > start {
		start = now
	}
	e.mcLast = start + e.writeService()
	return e.mcLast
}

// collect folds a finished thread's counters into the session totals.
func (e *Engine) collect(t *Thread) {
	e.haz.add(t.haz)
	e.ops.add(t.ops)
}

// heapLess orders schedulable threads by (clock, id); the id tiebreak
// reproduces the lowest-index-wins behavior of the old linear scan.
func (e *Engine) heapLess(a, b int) bool {
	ta, tb := e.threads[a], e.threads[b]
	return ta.now < tb.now || (ta.now == tb.now && a < b)
}

// heapPush inserts thread id into the schedulable heap.
func (e *Engine) heapPush(id int) {
	e.heap = append(e.heap, id)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

// heapPop removes the root (minimum-clock thread).
func (e *Engine) heapPop() {
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	e.siftDown(0)
}

// heapFix restores heap order after the root's clock advanced in place
// while it ran. Barrier releases during the grant only push threads with
// clocks strictly above the root's stale key (release is latest arrival
// plus a positive overhead), so the root cannot have been displaced and
// a single sift-down suffices.
func (e *Engine) heapFix() { e.siftDown(0) }

// siftDown restores heap order below i after e.heap[i]'s key grew.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e.heapLess(e.heap[l], e.heap[m]) {
			m = l
		}
		if r < n && e.heapLess(e.heap[r], e.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
}

// heapSecond returns the second-smallest schedulable clock (which must
// sit at one of the root's children), or maxClock when the root is the
// only schedulable thread.
func (e *Engine) heapSecond() int64 {
	s := maxClock
	for c := 1; c <= 2 && c < len(e.heap); c++ {
		if now := e.threads[e.heap[c]].now; now < s {
			s = now
		}
	}
	return s
}

// unblock returns a barrier-released thread to the schedulable heap.
// Called by the running (releasing) thread, which also loses any solo
// grant extension: other threads are runnable again.
func (e *Engine) unblock(w *Thread) {
	e.blocked[w.id] = false
	e.heapPush(w.id)
	e.solo = false
}

// waitGrant blocks until the scheduler grants a new window.
func (t *Thread) waitGrant(g chan int64) int64 {
	v := <-g
	if v == abortGrant {
		panic(errCrashed)
	}
	return v
}

// checkYield returns control to the scheduler when the thread exhausted
// its window. Every public Thread operation calls it.
func (t *Thread) checkYield() {
	if t.now < t.grantUntil {
		return
	}
	e := t.eng
	if e.solo {
		// Sole runnable thread: extend the grant in place — exactly the
		// window the scheduler would hand back — and skip the two
		// channel operations and two goroutine switches of a full
		// yield. Fall back to the scheduler at any cleanup or crash
		// boundary so those still fire at the same cycles.
		until := t.now + soloQuanta*e.cfg.Quantum
		if (e.nextClean == 0 || until <= e.nextClean) &&
			(e.cfg.CrashCycle == 0 || until <= e.cfg.CrashCycle) {
			t.grantUntil = until
			return
		}
	}
	e.yieldAndWait(t)
}

// yieldAndWait parks the thread until the scheduler grants a new window.
func (e *Engine) yieldAndWait(t *Thread) {
	e.yield <- yieldMsg{id: t.id}
	t.grantUntil = t.waitGrant(e.grants[t.id])
}
