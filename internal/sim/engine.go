package sim

import (
	"errors"
	"fmt"

	"lazyp/internal/memsim"
)

// errCrashed is the sentinel delivered to threads when a crash is
// injected; the worker wrapper recovers it.
var errCrashed = errors.New("sim: crash injected")

// abortGrant, sent on a thread's grant channel, makes the blocked thread
// panic with errCrashed instead of resuming.
const abortGrant = int64(-1)

// Engine owns one simulation session: the memory hierarchy plus the set
// of simulated threads. A session may call Run several times (e.g.
// warm-up then measurement, or recovery then resumed execution) — cache
// state and clocks persist across calls; statistics windows are managed
// with Memory.ResetCounters and Hierarchy.ResetStats.
type Engine struct {
	cfg  Config
	Mem  *memsim.Memory
	Hier *memsim.Hierarchy

	startCycle int64
	crashed    bool

	yield   chan yieldMsg
	grants  []chan int64
	blocked []bool
	threads []*Thread

	// mcLast is the shared memory controller's drain pointer: the cycle
	// at which the most recently accepted NVMM line write finishes
	// draining. Every write — natural eviction, flush, or cleanup —
	// occupies the controller for writeService cycles; flush-heavy
	// threads observe the backlog through their store-queue entries.
	mcLast int64

	haz Hazards
	ops OpCounts
}

// New builds a session over mem with the given configuration.
func New(cfg Config, mem *memsim.Memory) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Threads < 1 || cfg.Threads > 32 {
		panic(fmt.Sprintf("sim: thread count %d out of range [1,32]", cfg.Threads))
	}
	return &Engine{
		cfg:  cfg,
		Mem:  mem,
		Hier: memsim.NewHierarchy(cfg.Hier, mem),
	}
}

// Config returns the session configuration.
func (e *Engine) Config() Config { return e.cfg }

// Crashed reports whether a crash was injected during a Run.
func (e *Engine) Crashed() bool { return e.crashed }

// ExecCycles returns the cycles consumed by Runs so far (max thread
// clock, i.e. parallel makespan).
func (e *Engine) ExecCycles() int64 { return e.startCycle }

// Hazards returns hazard counters summed over all threads and Runs.
func (e *Engine) Hazards() Hazards { return e.haz }

// Ops returns dynamic operation counts summed over all threads and Runs.
func (e *Engine) Ops() OpCounts { return e.ops }

// yieldMsg is the message a worker sends back to the scheduler.
type yieldMsg struct {
	id      int
	done    bool        // body returned (or crashed)
	blocked bool        // parked at a barrier: not schedulable until released
	err     interface{} // non-nil: errCrashed or a propagated panic value
}

// Run executes body on every thread (body receives the Thread) and
// blocks until all threads complete or a crash is injected. It returns
// true when the session crashed; the caller must then call Mem.Crash()
// and Hier.Reset() — or simply start a fresh engine after Mem.Crash() —
// before inspecting durable state.
func (e *Engine) Run(body func(t *Thread)) (crashed bool) {
	if e.crashed {
		panic("sim: Run after crash — start a new engine on the crashed memory")
	}
	n := e.cfg.Threads
	threads := make([]*Thread, n)
	grants := make([]chan int64, n)
	yield := make(chan yieldMsg)
	e.grants = grants
	e.yield = yield

	for i := 0; i < n; i++ {
		t := &Thread{id: i, eng: e, now: e.startCycle}
		t.mshr.init(e.cfg.MSHRs)
		t.storeq.init(e.cfg.StoreQ)
		threads[i] = t
		grants[i] = make(chan int64)
	}

	for i := 0; i < n; i++ {
		t := threads[i]
		g := grants[i]
		go func() {
			defer func() {
				if r := recover(); r != nil {
					yield <- yieldMsg{id: t.id, done: true, err: r}
				}
			}()
			t.grantUntil = t.waitGrant(g)
			body(t)
			t.finish()
			yield <- yieldMsg{id: t.id, done: true}
		}()
	}

	// Scheduler state.
	alive := n
	parked := make([]bool, n) // waiting for a grant
	for i := range parked {
		parked[i] = true
	}
	dead := make([]bool, n)
	e.blocked = make([]bool, n)
	e.threads = threads
	// Periodic cleanup runs as a spaced background sweep: every
	// period/8 cycles, lines dirty for longer than the period are
	// written back (non-bursty, per the paper's §III-E.1).
	nextClean, cleanTick := int64(0), int64(0)
	if e.cfg.CleanPeriod > 0 {
		cleanTick = e.cfg.CleanPeriod / 8
		if cleanTick < 1 {
			cleanTick = 1
		}
		nextClean = e.startCycle + cleanTick
	}
	var propagate interface{}

	for alive > 0 {
		// Pick the schedulable (parked, not barrier-blocked) thread
		// with the smallest clock.
		next, second := -1, int64(1<<62)
		runnable := 0
		for i := 0; i < n; i++ {
			if dead[i] || !parked[i] || e.blocked[i] {
				continue
			}
			runnable++
			if next == -1 || threads[i].now < threads[next].now {
				if next != -1 && threads[next].now < second {
					second = threads[next].now
				}
				next = i
			} else if threads[i].now < second {
				second = threads[i].now
			}
		}
		if next == -1 {
			panic("sim: scheduler deadlock — every live thread is blocked at a barrier")
		}
		_ = runnable
		t := threads[next]

		// Periodic cleanup fires when the globally-minimal clock
		// crosses the boundary (all threads have passed it).
		for nextClean > 0 && t.now >= nextClean {
			e.Hier.CleanOlder(nextClean, e.cfg.CleanPeriod)
			nextClean += cleanTick
		}

		// Crash: once the slowest thread passes the crash cycle, abort
		// everyone.
		if e.cfg.CrashCycle > 0 && t.now >= e.cfg.CrashCycle {
			for i := 0; i < n; i++ {
				if dead[i] || !parked[i] {
					continue
				}
				grants[i] <- abortGrant
				msg := <-yield
				e.collect(threads[msg.id])
				dead[msg.id] = true
				alive--
				if msg.err != nil && msg.err != errCrashed {
					propagate = msg.err
				}
			}
			e.crashed = true
			break
		}

		until := second + e.cfg.Quantum
		if second == int64(1<<62) { // only one runnable thread left
			until = t.now + 4*e.cfg.Quantum
		}
		if until <= t.now {
			until = t.now + 1
		}
		if nextClean > 0 && until > nextClean {
			until = nextClean
			if until <= t.now {
				until = t.now + 1
			}
		}
		if e.cfg.CrashCycle > 0 && until > e.cfg.CrashCycle {
			until = e.cfg.CrashCycle
			if until <= t.now {
				until = t.now + 1
			}
		}

		parked[next] = false
		grants[next] <- until
		msg := <-yield
		parked[msg.id] = true
		if msg.blocked {
			e.blocked[msg.id] = true
		}
		if msg.done {
			e.collect(threads[msg.id])
			dead[msg.id] = true
			parked[msg.id] = false
			alive--
			if msg.err != nil && msg.err != errCrashed {
				propagate = msg.err
				// A real panic in one thread: abort the others so the
				// panic surfaces instead of a barrier deadlock.
				for i := 0; i < n; i++ {
					if dead[i] || !parked[i] {
						continue
					}
					grants[i] <- abortGrant
					m := <-yield
					e.collect(threads[m.id])
					dead[m.id] = true
					alive--
				}
				break
			}
			if msg.err == errCrashed {
				e.crashed = true
			}
		}
	}

	if propagate != nil {
		panic(propagate)
	}

	// Advance the session clock to the makespan.
	for _, t := range threads {
		if t.now > e.startCycle {
			e.startCycle = t.now
		}
	}
	return e.crashed
}

// writeService is the shared MC drain time per NVMM line write.
func (e *Engine) writeService() int64 {
	svc := e.cfg.MemWriteLat / int64(e.cfg.FlushBanks)
	if svc < 1 {
		svc = 1
	}
	return svc
}

// mcAccept queues one line write at the shared controller at cycle now
// and returns its drain-completion cycle.
func (e *Engine) mcAccept(now int64) int64 {
	start := e.mcLast
	if now > start {
		start = now
	}
	e.mcLast = start + e.writeService()
	return e.mcLast
}

// collect folds a finished thread's counters into the session totals.
func (e *Engine) collect(t *Thread) {
	e.haz.add(t.haz)
	e.ops.add(t.ops)
}

// waitGrant blocks until the scheduler grants a new window.
func (t *Thread) waitGrant(g chan int64) int64 {
	v := <-g
	if v == abortGrant {
		panic(errCrashed)
	}
	return v
}

// checkYield returns control to the scheduler when the thread exhausted
// its window. Every public Thread operation calls it.
func (t *Thread) checkYield() {
	if t.now < t.grantUntil {
		return
	}
	t.eng.yieldAndWait(t)
}

// yieldAndWait parks the thread until the scheduler grants a new window.
func (e *Engine) yieldAndWait(t *Thread) {
	e.yield <- yieldMsg{id: t.id}
	t.grantUntil = t.waitGrant(e.grants[t.id])
}
