package obs

import (
	"strconv"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exact text exposition for a small
// registry: family ordering by name, series ordering by label key,
// canonical label rendering, and cumulative histogram encoding with
// empty buckets elided.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("acks_total").Add(42)
	r.Scope("cause", "overload", "shard", "0").Counter("rejects_total").Add(3)
	r.Scope("cause", "full", "shard", "1").Counter("rejects_total").Inc()
	r.Scope("shard", "0").Gauge("depth").Set(7)
	h := r.Histogram("fill")
	for _, v := range []uint64{5, 1000, 1000, 123456} {
		h.Observe(v)
	}

	const want = `# TYPE acks_total counter
acks_total 42
# TYPE depth gauge
depth{shard="0"} 7
# TYPE fill histogram
fill_bucket{le="5"} 1
fill_bucket{le="1023"} 3
fill_bucket{le="131071"} 4
fill_bucket{le="+Inf"} 4
fill_sum 125461
fill_count 4
# TYPE rejects_total counter
rejects_total{cause="full",shard="1"} 1
rejects_total{cause="overload",shard="0"} 3
`
	var out strings.Builder
	if err := r.WriteProm(&out); err != nil {
		t.Fatal(err)
	}
	if out.String() != want {
		t.Errorf("prom output mismatch:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestWritePromScaled checks that a scaled histogram publishes its
// bucket edges and sum in display units (ns observed, seconds
// exposed).
func TestWritePromScaled(t *testing.T) {
	r := NewRegistry()
	h := r.Scope().HistogramScaled("lat_seconds", 1e-9)
	h.Observe(1000) // bucket upper bound 1023 ns
	var out strings.Builder
	if err := r.WriteProm(&out); err != nil {
		t.Fatal(err)
	}
	le := strconv.FormatFloat(1023*1e-9, 'g', -1, 64)
	if !strings.Contains(out.String(), `lat_seconds_bucket{le="`+le+`"} 1`) {
		t.Errorf("missing scaled bucket edge %s in:\n%s", le, out.String())
	}
	if !strings.Contains(out.String(), "lat_seconds_count 1") {
		t.Errorf("missing count in:\n%s", out.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Scope("path", `a"b\c`).Counter("x_total").Inc()
	var out strings.Builder
	if err := r.WriteProm(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `x_total{path="a\"b\\c"} 1`) {
		t.Errorf("label not escaped:\n%s", out.String())
	}
}
