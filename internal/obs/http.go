package obs

import (
	"net/http"
	"net/http/pprof"
	"strconv"
)

// MetricsHandler serves the registry as Prometheus text format —
// mount it at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// TraceHandler serves the tracer as JSONL — mount it at
// /debug/trace. Each GET drains up to n events (?n=K, default all),
// one JSON object per line; draining is destructive, so successive
// scrapes stream the event log in order.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteJSONL(w, t.Drain(n))
	})
}

// RegisterPprof mounts the net/http/pprof handlers on mux at
// /debug/pprof/, explicitly rather than via http.DefaultServeMux so
// the debug surface exists only on muxes that asked for it (the
// -metrics/-ctrl listeners; never the data plane).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
