package obs

import (
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry as Prometheus text format —
// mount it at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// TraceHandler serves the tracer as JSONL — mount it at
// /debug/trace. Each GET drains up to n events (?n=K, default all),
// one JSON object per line; draining is destructive, so successive
// scrapes stream the event log in order.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteJSONL(w, t.Drain(n))
	})
}
