package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in Prometheus text exposition
// format (version 0.0.4), hand-rolled to keep the package
// dependency-free. Families are emitted in name order and series in
// label order, so the output for a quiesced registry is
// deterministic (the golden test relies on this).
//
// Histograms are published cumulatively: one `_bucket` line per
// non-empty bucket (le = the bucket's inclusive upper bound times
// the family's scale), a closing le="+Inf" line, then `_sum` and
// `_count`. Skipping empty buckets keeps a 496-bucket histogram's
// exposition proportional to the value spread actually observed.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	type snap struct {
		name   string
		kind   metricKind
		scale  float64
		keys   []string
		series map[string]any
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		f := r.fams[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps = append(snaps, snap{name, f.kind, f.scale, keys, f.series})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range snaps {
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, key := range f.keys {
			switch inst := f.series[key].(type) {
			case *Counter:
				writeSample(&b, f.name, key, "", strconv.FormatUint(inst.Load(), 10))
			case *Gauge:
				writeSample(&b, f.name, key, "", strconv.FormatInt(inst.Load(), 10))
			case *Histogram:
				writeHist(&b, f.name, key, f.scale, inst.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits `name{labels} value` (or `name{labels,extra}`
// when extra is a pre-rendered additional label).
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func writeHist(b *strings.Builder, name, labels string, scale float64, s HistSnapshot) {
	if scale == 0 {
		scale = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := `le="` + formatFloat(float64(bucketUB(i))*scale) + `"`
		writeSample(b, name+"_bucket", labels, le, strconv.FormatUint(cum, 10))
	}
	writeSample(b, name+"_bucket", labels, `le="+Inf"`, strconv.FormatUint(s.Count, 10))
	writeSample(b, name+"_sum", labels, "", formatFloat(float64(s.Sum)*scale))
	writeSample(b, name+"_count", labels, "", strconv.FormatUint(s.Count, 10))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
