package obs

import (
	"sort"
	"strings"
	"sync"
)

// Registry owns named metric families and their labelled series.
// Lookups (Counter/Gauge/Histogram on a Scope) take the registry
// lock and are meant for setup time; the returned instrument
// pointers are lock-free thereafter. Scrapes (WriteProm) also take
// the lock, but only to walk the series maps — instrument reads are
// atomic loads.
//
// A metric name has exactly one kind (counter, gauge, or histogram)
// and, for histograms, one display scale; resolving the same name
// with a conflicting kind or scale panics, since that is a
// programming error that would silently corrupt a scrape.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	kind   metricKind
	scale  float64 // histogram display multiplier; 0 means 1 (raw)
	series map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-global registry. Long-lived singletons
// (a server process, a CLI run) use it; components that may be
// instantiated many times per process (pools in tests) take a
// private registry instead.
var Default = NewRegistry()

// Scope is a label-set view of a registry: instruments resolved
// through a scope carry the scope's label pairs. Scopes are values;
// derive per-shard scopes once and resolve instruments at setup.
type Scope struct {
	r     *Registry
	pairs []string // flat k,v list, sorted by key at render time
}

// Scope returns a view of r carrying the given label pairs
// ("key", "value", ...). An odd-length list panics.
func (r *Registry) Scope(kv ...string) Scope {
	if len(kv)%2 != 0 {
		panic("obs: Scope requires key/value pairs")
	}
	return Scope{r: r, pairs: append([]string(nil), kv...)}
}

// With returns a child scope with additional label pairs appended.
func (s Scope) With(kv ...string) Scope {
	if len(kv)%2 != 0 {
		panic("obs: With requires key/value pairs")
	}
	return Scope{r: s.r, pairs: append(append([]string(nil), s.pairs...), kv...)}
}

// labelKey renders the scope's pairs as a canonical Prometheus label
// body (`k1="v1",k2="v2"`, keys sorted), used both as the series map
// key and verbatim in the text exposition.
func (s Scope) labelKey() string {
	n := len(s.pairs) / 2
	if n == 0 {
		return ""
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = 2 * i
	}
	sort.Slice(idx, func(a, b int) bool { return s.pairs[idx[a]] < s.pairs[idx[b]] })
	var b strings.Builder
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.pairs[j])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(s.pairs[j+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (s Scope) resolve(name string, kind metricKind, scale float64, make func() any) any {
	if s.r == nil {
		panic("obs: zero Scope (use Registry.Scope)")
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	f := s.r.fams[name]
	if f == nil {
		f = &family{kind: kind, scale: scale, series: map[string]any{}}
		s.r.fams[name] = f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered as " + f.kind.String() + ", requested " + kind.String())
	}
	if kind == kindHistogram && f.scale != scale {
		panic("obs: metric " + name + " registered with a different scale")
	}
	key := s.labelKey()
	inst := f.series[key]
	if inst == nil {
		inst = make()
		f.series[key] = inst
	}
	return inst
}

// Counter resolves (creating if absent) the counter series with the
// scope's labels.
func (s Scope) Counter(name string) *Counter {
	return s.resolve(name, kindCounter, 0, func() any { return new(Counter) }).(*Counter)
}

// Gauge resolves the gauge series with the scope's labels.
func (s Scope) Gauge(name string) *Gauge {
	return s.resolve(name, kindGauge, 0, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram resolves the histogram series with the scope's labels,
// published in its raw unit.
func (s Scope) Histogram(name string) *Histogram {
	return s.resolve(name, kindHistogram, 0, func() any { return new(Histogram) }).(*Histogram)
}

// HistogramScaled resolves a histogram whose raw samples are
// multiplied by scale in the text exposition — observe nanoseconds,
// publish seconds with scale 1e-9.
func (s Scope) HistogramScaled(name string, scale float64) *Histogram {
	return s.resolve(name, kindHistogram, scale, func() any { return new(Histogram) }).(*Histogram)
}

// Root-scope conveniences for unlabelled series.

// Counter resolves an unlabelled counter.
func (r *Registry) Counter(name string) *Counter { return r.Scope().Counter(name) }

// Gauge resolves an unlabelled gauge.
func (r *Registry) Gauge(name string) *Gauge { return r.Scope().Gauge(name) }

// Histogram resolves an unlabelled histogram.
func (r *Registry) Histogram(name string) *Histogram { return r.Scope().Histogram(name) }
