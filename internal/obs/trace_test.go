package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTracerDisabledDiscards(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(EvFlush, 0, 0, 1, 2)
	if tr.Len() != 0 {
		t.Fatal("disabled tracer retained an event")
	}
}

// TestTracerWraparound fills a small ring past capacity and checks
// that the drain returns exactly the newest cap events, in order,
// with the overwritten count reported.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable(true)
	for i := 0; i < 20; i++ {
		tr.Record(EvJournalAppend, 1, int64(i), uint64(i), 0)
	}
	if got := tr.Dropped(); got != 12 {
		t.Errorf("dropped = %d, want 12", got)
	}
	evs := tr.Drain(0)
	if len(evs) != 8 {
		t.Fatalf("drained %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(12 + i); e.Seq != want || e.A != want {
			t.Errorf("event %d: seq=%d a=%d, want %d", i, e.Seq, e.A, want)
		}
	}
	if tr.Len() != 0 {
		t.Error("ring not empty after full drain")
	}
}

func TestTracerPartialDrain(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable(true)
	for i := 0; i < 10; i++ {
		tr.Record(EvBatchCommit, 0, 0, uint64(i), 0)
	}
	first := tr.Drain(4)
	rest := tr.Drain(0)
	if len(first) != 4 || len(rest) != 6 {
		t.Fatalf("drain sizes %d/%d, want 4/6", len(first), len(rest))
	}
	if first[0].A != 0 || rest[0].A != 4 {
		t.Error("partial drains out of order")
	}
}

// TestTracerConcurrentDrain runs writers against a concurrent
// drainer under -race: every drained event must appear exactly once
// (seqs strictly increasing across successive drains).
func TestTracerConcurrentDrain(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable(true)
	const workers, perWorker = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Record(EvFence, int32(w), 0, uint64(i), 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var drained []Event
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		drained = append(drained, tr.Drain(0)...)
	}
	drained = append(drained, tr.Drain(0)...)
	for i := 1; i < len(drained); i++ {
		if drained[i].Seq <= drained[i-1].Seq {
			t.Fatalf("seq not strictly increasing at %d: %d then %d", i, drained[i-1].Seq, drained[i].Seq)
		}
	}
	total := workers * perWorker
	if got := len(drained) + int(tr.Dropped()); got != total {
		t.Errorf("drained+dropped = %d, want %d", got, total)
	}
}

func TestWriteJSONLValid(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable(true)
	tr.Record(EvBatchCommit, 3, 12345, 7, 16)
	tr.Record(EvRejectOverload, -1, 0, 2, 0)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Drain(0)); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var doc struct {
			Seq  uint64 `json:"seq"`
			Type string `json:"type"`
			Src  int32  `json:"src"`
			TS   int64  `json:"ts"`
			A    uint64 `json:"a"`
			B    uint64 `json:"b"`
		}
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if lines == 0 && (doc.Type != "batch_commit" || doc.Src != 3 || doc.B != 16) {
			t.Errorf("line 0 decoded wrong: %+v", doc)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}
