package obs

import "testing"

// BenchmarkObsOverhead is the per-event cost budget for leaving
// instruments on in hot paths: a counter add, a histogram
// observation, a disabled-tracer record (the steady state in
// production), and an enabled-tracer record (the debugging state).
// CI runs it once as a smoke check; the absolute numbers back the
// <2% service-throughput overhead recorded in EXPERIMENTS.md.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("CounterAdd", func(b *testing.B) {
		var c Counter
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("GaugeSet", func(b *testing.B) {
		var g Gauge
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		var h Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i) * 37)
		}
	})
	b.Run("TracerOff", func(b *testing.B) {
		tr := NewTracer(1 << 12)
		for i := 0; i < b.N; i++ {
			tr.Record(EvFlush, 0, 0, uint64(i), 0)
		}
	})
	b.Run("TracerOn", func(b *testing.B) {
		tr := NewTracer(1 << 12)
		tr.Enable(true)
		for i := 0; i < b.N; i++ {
			tr.Record(EvFlush, 0, 0, uint64(i), 0)
		}
	})
}
