package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-bucket log-scale histogram of uint64 samples
// (latencies in nanoseconds, batch fills, queue depths — the unit is
// the caller's; the registry can attach a display scale for
// encoding, e.g. 1e-9 to publish nanoseconds as seconds).
//
// Bucketing is HDR-style: values below 16 are exact, and above that
// each power-of-two octave is split into 8 sub-buckets, bounding the
// relative error of any reconstructed quantile by 1/8 (12.5%). The
// whole uint64 range maps into 496 buckets, so a histogram is a flat
// ~4 KiB of atomics with no allocation after construction.
//
// Observe is two atomic adds (bucket, sum) plus a conditional CAS
// for the max; there is no lock anywhere, so concurrent writers
// scale and a scrape never blocks an observer.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// histBuckets covers bucketOf over all of uint64: the top value
// (64 significant bits) lands in bucket 60*8+15 = 495.
const histBuckets = 496

// bucketOf maps a sample to its bucket index. Values 0..15 map to
// themselves; larger values keep their top 4 significant bits as an
// 8..15 mantissa and the remaining shift as the octave.
func bucketOf(v uint64) int {
	if v < 16 {
		return int(v)
	}
	exp := bits.Len64(v) - 4
	mant := v >> uint(exp)
	return exp*8 + int(mant)
}

// bucketUB returns the largest sample value that lands in bucket b —
// the bucket's inclusive upper bound, used as the Prometheus `le`
// edge and as the quantile estimate.
func bucketUB(b int) uint64 {
	if b < 16 {
		return uint64(b)
	}
	exp := uint(b/8 - 1)
	mant := uint64(b - int(exp)*8)
	return (mant+1)<<exp - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Merge folds another histogram's samples into h, bucket-wise. Each
// side stays internally consistent under concurrent observers, but
// the fold is not atomic across buckets — use it for post-run
// aggregation (per-class histograms into a total), not live scraping.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(o.sum.Load())
	v := o.max.Load()
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, safe to read
// at leisure. Snapshots of a live histogram are not atomic across
// buckets — a scrape races individual observations — but every
// sample is counted exactly once, which is all a monitoring read
// needs.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Count  uint64
	Sum    uint64
	Max    uint64
}

// Snapshot copies the current bucket counts, total count, sum, and
// max.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Sub returns the delta snapshot s−prev (per-bucket, count, sum) for
// interval reporting. Max is carried from s: a windowed max is not
// recoverable from cumulative state, so the caller gets the
// since-start max.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Sum: s.Sum - prev.Sum, Max: s.Max}
	for i := range s.Counts {
		c := s.Counts[i] - prev.Counts[i]
		d.Counts[i] = c
		d.Count += c
	}
	return d
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q ≤ 1) in the histogram's raw unit: the inclusive upper edge
// of the bucket holding the ceil(q·Count)-th smallest sample. Exact
// for values below 16, within 12.5% above. Returns 0 on an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if float64(target) < q*float64(s.Count) || target == 0 {
		target++
	}
	if target > s.Count {
		target = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			ub := bucketUB(i)
			if ub > s.Max && s.Max > 0 {
				return s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Mean returns the mean sample value, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
