package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// EventType names a persistency event. The set spans all three
// instrumented layers: the kvserve service, the lpstore recovery
// machinery, and the simulator's memory system.
type EventType uint8

const (
	EvNone EventType = iota

	// Service / store events.
	EvBatchCommit    // a group-commit batch persisted; a=batch index, b=puts acked
	EvJournalAppend  // one journal record written; a=journal seq, b=key
	EvAckAdvance     // durably-acked put prefix advanced; a=new acked count
	EvRejectOverload // put rejected: mailbox full; a=shard
	EvRejectExpired  // put rejected: queue-delay deadline; a=shard
	EvRejectFull     // put rejected: occupancy/journal budget; a=shard
	EvRecoveryRepair // recovery wiped+rebuilt a shard; a=slots deviated, b=acked puts
	EvRegionMismatch // a checksum region failed verification; a=region/batch index
	EvEvictionLeak   // background write-back leaked a line; a=line addr

	// Simulator memory-system events.
	EvEvict    // dirty line written back to NVMM by eviction; a=line addr
	EvClean    // dirty line written back by the cleaning sweep; a=line addr
	EvFlush    // explicit flush instruction retired; a=line addr
	EvFence    // persist fence drained; a=cycles stalled
	EvROBStall // ROB head blocked on an outstanding miss; a=cycles stalled

	// EvRejectMoved is appended after the simulator events so every
	// pre-existing EventType keeps its numeric value.
	EvRejectMoved // put rejected: key not owned at this member's epoch; a=shard

	// Request-scoped span events. Every span event carries the
	// request's trace ID in A, so a drain from any process can be
	// merged with drains from its peers by trace ID alone. New types
	// append here, after everything older, for the same reason
	// EvRejectMoved sits where it does.
	EvClientSend    // client issued a traced op; a=traceID, b=key
	EvClientAck     // client saw the final response; a=traceID, b=latency ns
	EvRouterRoute   // router routed a traced frame; a=traceID, b=backend index
	EvStageEnq      // request admitted to a shard mailbox; a=traceID, b=key
	EvStageDeq      // shard owner dequeued the request; a=traceID, b=queue wait ns
	EvStageSeal     // containing group-commit batch sealed; a=traceID, b=batch index
	EvStageFlush    // batch write set durable (fsync included); a=traceID, b=batch index
	EvStageReplAck  // replication wait resolved on the primary; a=traceID, b=1 acked / 0 degraded
	EvStageReply    // response enqueued toward the client; a=traceID, b=status
	EvStageFwdEnq   // replication forward committed to a session slot; a=traceID
	EvStageFwdWrite // replication frame hit the wire; a=traceID
	EvStageFwdAck   // follower ack resolved the forward; a=traceID, b=1 acked / 0 degraded
	EvSlowPut       // tail sample: put latency over threshold; a=key, b=latency ns
)

var evNames = [...]string{
	EvNone:           "none",
	EvBatchCommit:    "batch_commit",
	EvJournalAppend:  "journal_append",
	EvAckAdvance:     "ack_advance",
	EvRejectOverload: "reject_overload",
	EvRejectExpired:  "reject_expired",
	EvRejectFull:     "reject_full",
	EvRecoveryRepair: "recovery_repair",
	EvRegionMismatch: "region_mismatch",
	EvEvictionLeak:   "eviction_leak",
	EvEvict:          "evict",
	EvClean:          "clean",
	EvFlush:          "flush",
	EvFence:          "fence",
	EvROBStall:       "rob_stall",
	EvRejectMoved:    "reject_moved",
	EvClientSend:     "client_send",
	EvClientAck:      "client_ack",
	EvRouterRoute:    "router_route",
	EvStageEnq:       "stage_enq",
	EvStageDeq:       "stage_deq",
	EvStageSeal:      "stage_seal",
	EvStageFlush:     "stage_flush",
	EvStageReplAck:   "stage_repl_ack",
	EvStageReply:     "stage_reply",
	EvStageFwdEnq:    "stage_fwd_enq",
	EvStageFwdWrite:  "stage_fwd_write",
	EvStageFwdAck:    "stage_fwd_ack",
	EvSlowPut:        "slow_put",
}

func (t EventType) String() string {
	if int(t) < len(evNames) {
		return evNames[t]
	}
	return fmt.Sprintf("event_%d", uint8(t))
}

// Event is one traced occurrence. Seq is the tracer's logical
// timestamp (total order of admission); TS is the caller's own clock
// — simulation cycles from the engine, UnixNano from the service, 0
// when the source has no meaningful clock. A and B are
// event-specific arguments (see the EventType comments).
type Event struct {
	Seq  uint64
	TS   int64
	Type EventType
	Src  int32 // originating shard or thread id; -1 when unattributed
	A, B uint64
}

// Sink receives events. The simulator engine and the store layers
// accept any Sink; Tracer is the standard implementation. Sink
// implementations must be safe for concurrent use and must not
// block: emitters sit on hot paths.
type Sink interface {
	Event(typ EventType, src int32, ts int64, a, b uint64)
}

// Tracer is a bounded ring buffer of Events. Memory use is fixed at
// construction (cap × sizeof(Event) ≈ cap × 40 bytes); when full,
// the oldest events are overwritten and counted as dropped. Disabled
// (the initial state) it costs one atomic load per Record call, so
// it can stay wired into hot paths permanently.
type Tracer struct {
	on      atomic.Bool
	mu      sync.Mutex
	seq     uint64 // next logical timestamp; admission order under mu
	buf     []Event
	start   int    // ring index of the oldest retained event
	n       int    // retained count
	dropped uint64 // events overwritten before being drained
}

// NewTracer returns a disabled tracer retaining at most cap events
// (minimum 1).
func NewTracer(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{buf: make([]Event, cap)}
}

// Enable turns recording on or off. Events arriving while disabled
// are discarded without taking the lock.
func (t *Tracer) Enable(on bool) { t.on.Store(on) }

// Enabled reports whether the tracer is recording. Emitters with
// expensive arguments (a clock read, say) should gate on this before
// building them.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// Event implements Sink.
func (t *Tracer) Event(typ EventType, src int32, ts int64, a, b uint64) {
	t.Record(typ, src, ts, a, b)
}

// Record admits one event if the tracer is enabled.
func (t *Tracer) Record(typ EventType, src int32, ts int64, a, b uint64) {
	if !t.on.Load() {
		return
	}
	t.mu.Lock()
	seq := t.seq
	t.seq++
	i := t.start + t.n
	if t.n == len(t.buf) {
		// Full: overwrite the oldest.
		i = t.start
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	} else {
		t.n++
	}
	t.buf[i%len(t.buf)] = Event{Seq: seq, TS: ts, Type: typ, Src: src, A: a, B: b}
	t.mu.Unlock()
}

// Drain removes and returns up to max retained events, oldest first
// (max ≤ 0 means all). Concurrent recording continues; drained
// events are returned exactly once.
func (t *Tracer) Drain(max int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	t.start = (t.start + n) % len(t.buf)
	t.n -= n
	return out
}

// Len returns the number of retained (undrained) events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten before being
// drained.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes events one JSON object per line. The encoding is
// hand-rolled (fixed fields, no reflection) so a large drain is
// cheap; every line is a valid JSON document.
func WriteJSONL(w io.Writer, events []Event) error {
	for _, e := range events {
		_, err := fmt.Fprintf(w, "{\"seq\":%d,\"type\":%q,\"src\":%d,\"ts\":%d,\"a\":%d,\"b\":%d}\n",
			e.Seq, e.Type.String(), e.Src, e.TS, e.A, e.B)
		if err != nil {
			return err
		}
	}
	return nil
}

// typeByName inverts evNames once, for drain parsing.
var typeByName = func() map[string]EventType {
	m := make(map[string]EventType, len(evNames))
	for i, n := range evNames {
		m[n] = EventType(i)
	}
	return m
}()

// ReadJSONL parses a WriteJSONL drain back into events. Lines whose
// type is unknown to this build are kept with EvNone so cross-version
// merges degrade instead of failing; malformed JSON is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec struct {
			Seq  uint64 `json:"seq"`
			Type string `json:"type"`
			Src  int32  `json:"src"`
			TS   int64  `json:"ts"`
			A    uint64 `json:"a"`
			B    uint64 `json:"b"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, Event{
			Seq: rec.Seq, TS: rec.TS, Type: typeByName[rec.Type],
			Src: rec.Src, A: rec.A, B: rec.B,
		})
	}
	return out, sc.Err()
}
