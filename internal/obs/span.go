package obs

import "sort"

// Span assembly: merging JSONL trace drains from several processes
// (client, router, cluster nodes) into per-request timelines keyed by
// trace ID. The events themselves are the ordinary Tracer ring events;
// what makes one a span event is its type (IsSpanEvent) and the trace
// ID it carries in A. Assembly is offline tooling — lptrace and tests
// — so it allocates freely; nothing here runs on a serve hot path.

// IsSpanEvent reports whether t is a request-scoped span event whose A
// field is a trace ID.
func IsSpanEvent(t EventType) bool {
	return t >= EvClientSend && t <= EvStageFwdAck
}

// SpanEvent is one span event tagged with the name of the drain it
// came from ("client", "router", "n0", ...).
type SpanEvent struct {
	Node string
	Event
}

// Timeline is every span event observed for one trace ID, across all
// merged drains, sorted by wall-clock TS (ties broken by drain name
// then ring seq, so assembly is deterministic for a fixed input set).
type Timeline struct {
	Trace  uint64
	Events []SpanEvent
}

// Nodes returns the distinct drain names contributing to the
// timeline, in first-appearance order.
func (tl *Timeline) Nodes() []string {
	var out []string
	for _, e := range tl.Events {
		seen := false
		for _, n := range out {
			if n == e.Node {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, e.Node)
		}
	}
	return out
}

// Has reports whether any event of type t is present.
func (tl *Timeline) Has(t EventType) bool {
	for _, e := range tl.Events {
		if e.Type == t {
			return true
		}
	}
	return false
}

// First returns the earliest event of type t, if any.
func (tl *Timeline) First(t EventType) (SpanEvent, bool) {
	for _, e := range tl.Events {
		if e.Type == t {
			return e, true
		}
	}
	return SpanEvent{}, false
}

// CrossNode reports whether the timeline spans at least two drains.
func (tl *Timeline) CrossNode() bool { return len(tl.Nodes()) >= 2 }

// Stage returns the elapsed nanoseconds between the first `from` and
// the first `to` event (false when either is missing or the clocks
// disagree on ordering). Cross-drain stages assume the drains share a
// clock — true for a single host, approximate otherwise.
func (tl *Timeline) Stage(from, to EventType) (int64, bool) {
	a, okA := tl.First(from)
	b, okB := tl.First(to)
	if !okA || !okB || b.TS < a.TS {
		return 0, false
	}
	return b.TS - a.TS, true
}

// AssembleTimelines merges named drains into per-trace timelines,
// sorted by each timeline's earliest timestamp. Non-span events and
// span events with a zero trace ID are ignored.
func AssembleTimelines(drains map[string][]Event) []Timeline {
	byTrace := map[uint64][]SpanEvent{}
	for node, evs := range drains {
		for _, e := range evs {
			if !IsSpanEvent(e.Type) || e.A == 0 {
				continue
			}
			byTrace[e.A] = append(byTrace[e.A], SpanEvent{Node: node, Event: e})
		}
	}
	out := make([]Timeline, 0, len(byTrace))
	for id, evs := range byTrace {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].TS != evs[j].TS {
				return evs[i].TS < evs[j].TS
			}
			if evs[i].Node != evs[j].Node {
				return evs[i].Node < evs[j].Node
			}
			return evs[i].Seq < evs[j].Seq
		})
		out = append(out, Timeline{Trace: id, Events: evs})
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Events[0].TS, out[j].Events[0].TS
		if ti != tj {
			return ti < tj
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}
