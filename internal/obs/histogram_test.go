package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// splitmix64 gives the tests a fixed, seedable input stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestBucketMapping(t *testing.T) {
	// Exact below 16, monotone everywhere, and every value within its
	// bucket's bounds.
	for v := uint64(0); v < 16; v++ {
		if bucketOf(v) != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact", v, bucketOf(v))
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		prev = b
		if v > bucketUB(b) {
			t.Fatalf("value %d above its bucket upper bound %d", v, bucketUB(b))
		}
		if b >= histBuckets {
			t.Fatalf("bucket %d out of range", b)
		}
	}
	if bucketOf(math.MaxUint64) != histBuckets-1 {
		t.Fatalf("max value bucket = %d, want %d", bucketOf(math.MaxUint64), histBuckets-1)
	}
}

// TestQuantileVsSorted checks p50/p90/p99/p999 against the exact
// sorted reference on fixed inputs. The histogram promises its
// estimate is an upper bound within one sub-bucket: at least the
// true quantile, and at most 12.5% above it.
func TestQuantileVsSorted(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(i int, s *uint64) uint64
	}{
		{"uniform", func(i int, s *uint64) uint64 { return splitmix64(s) % 1_000_000 }},
		{"heavy-tail", func(i int, s *uint64) uint64 {
			v := splitmix64(s) % 10_000
			if i%100 == 0 {
				v *= 1000
			}
			return v
		}},
		{"small-exact", func(i int, s *uint64) uint64 { return splitmix64(s) % 12 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 50_000
			seed := uint64(42)
			var h Histogram
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = tc.gen(i, &seed)
				h.Observe(vals[i])
			}
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			s := h.Snapshot()
			if s.Count != n {
				t.Fatalf("count = %d, want %d", s.Count, n)
			}
			for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
				idx := int(math.Ceil(q*n)) - 1
				exact := vals[idx]
				got := s.Quantile(q)
				if got < exact {
					t.Errorf("q%g = %d below exact %d", q, got, exact)
				}
				// Upper bound: one sub-bucket of slack (12.5%), +1 for the
				// integer edges of tiny values.
				if float64(got) > float64(exact)*1.125+1 {
					t.Errorf("q%g = %d, more than 12.5%% above exact %d", q, got, exact)
				}
			}
			if s.Max != vals[n-1] {
				t.Errorf("max = %d, want %d", s.Max, vals[n-1])
			}
		})
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Error("empty histogram quantile/mean not zero")
	}
}

// TestHistogramConcurrent hammers one histogram from many
// goroutines; count and sum must be exact. Run under -race in CI.
func TestHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 20_000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seed := uint64(w)
			for i := 0; i < perWorker; i++ {
				h.Observe(splitmix64(&seed) % 1000)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var wantSum uint64
	for w := 0; w < workers; w++ {
		seed := uint64(w)
		for i := 0; i < perWorker; i++ {
			wantSum += splitmix64(&seed) % 1000
		}
	}
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(100)
	before := h.Snapshot()
	h.Observe(5)
	h.Observe(7)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Sum != 12 {
		t.Fatalf("delta count=%d sum=%d, want 2/12", d.Count, d.Sum)
	}
	if got := d.Quantile(1.0); got != 7 {
		t.Fatalf("delta p100 = %d, want 7", got)
	}
}
