package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from
// many goroutines; totals must be exact and the high-water mark must
// equal the largest value any goroutine set. Run under -race in CI.
func TestCounterGaugeConcurrent(t *testing.T) {
	const workers, perWorker = 8, 10000
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(2)
				g.SetMax(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Load(), uint64(3*workers*perWorker); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Load(), int64(workers*perWorker-1); got != want {
		t.Errorf("gauge high-water = %d, want %d", got, want)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5) // lower than current: no-op
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge after SetMax(5) = %d, want 7", got)
	}
}

// TestRegistryScope checks that scoped resolution is stable (same
// name+labels → same instrument) and distinct across label sets.
func TestRegistryScope(t *testing.T) {
	r := NewRegistry()
	s0 := r.Scope("shard", "0")
	s1 := r.Scope("shard", "1")
	c0 := s0.Counter("x_total")
	if s0.Counter("x_total") != c0 {
		t.Error("re-resolving the same series returned a different instrument")
	}
	if s1.Counter("x_total") == c0 {
		t.Error("different label sets shared an instrument")
	}
	// Label order must not matter: scopes render canonically.
	a := r.Scope("b", "2", "a", "1").Counter("y_total")
	bb := r.Scope("a", "1", "b", "2").Counter("y_total")
	if a != bb {
		t.Error("label order changed series identity")
	}
	// With() derives child scopes.
	child := s0.With("cause", "overload")
	child.Counter("rej_total").Add(4)
	if got := child.Counter("rej_total").Load(); got != 4 {
		t.Errorf("child scope counter = %d, want 4", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("resolving a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

// TestRegistryConcurrentResolve exercises the registry lock: many
// goroutines resolving and bumping the same and different series.
func TestRegistryConcurrentResolve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := r.Scope("w", string(rune('a'+w%4)))
			for i := 0; i < 1000; i++ {
				sc.Counter("spin_total").Inc()
				sc.Histogram("lat").Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	var out strings.Builder
	if err := r.WriteProm(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `spin_total{w="a"} 2000`) {
		t.Errorf("scrape missing expected series:\n%s", out.String())
	}
}
