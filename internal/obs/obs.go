// Package obs is the repo's dependency-free observability core:
// atomic counters and gauges, fixed-bucket log-scale latency
// histograms with quantile extraction, a label-scoped registry that
// renders hand-rolled Prometheus text format, and a bounded
// ring-buffer tracer for typed persistency events (trace.go).
//
// The design contract is that instruments are cheap enough to leave
// on in the hottest paths we have: a counter increment is one atomic
// add, a histogram observation is two atomic adds plus a conditional
// CAS for the max, and a disabled tracer costs one atomic load.
// Registry lookups take a lock, so callers resolve instrument
// pointers once (at construction / shard setup) and hold them;
// Scope views exist precisely so each shard or thread can resolve
// its own labelled child instruments up front and then update them
// contention-free.
//
// Everything here is stdlib-only. The simulator's determinism
// contract extends into this package: no instrument ever reads the
// clock or perturbs control flow, so attaching metrics or a sink to
// a deterministic run cannot change its output (harness has a
// byte-identity guard test for exactly this).
package obs

import "sync/atomic"

// Counter is a monotonically increasing uint64. The zero value is
// usable, but callers normally obtain counters from a Registry so
// they appear in scrapes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (queue depth, occupancy).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
