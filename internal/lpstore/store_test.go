package lpstore

import (
	"testing"

	"lazyp/internal/checksum"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

func newTestStore(t *testing.T, capacity int) (*Store, *memsim.Memory, pmem.Ctx) {
	t.Helper()
	m := memsim.NewMemory(1 << 20)
	return NewStore(m, "t", capacity), m, &pmem.Native{Mem: m}
}

func TestStorePutGetUpdate(t *testing.T) {
	s, m, c := newTestStore(t, 64)
	ts := lp.Base{}.Thread(0)

	if _, ok := s.Get(c, 42); ok {
		t.Fatal("empty store returned a value")
	}
	if !s.Put(c, ts, 42, 100) {
		t.Fatal("first put did not report insert")
	}
	if v, ok := s.Get(c, 42); !ok || v != 100 {
		t.Fatalf("Get(42) = %d,%v want 100,true", v, ok)
	}
	if s.Put(c, ts, 42, 200) {
		t.Fatal("update reported insert")
	}
	if v, _ := s.Get(c, 42); v != 200 {
		t.Fatalf("update lost: got %d", v)
	}
	if s.Occupied(m) != 1 {
		t.Fatalf("Occupied = %d, want 1", s.Occupied(m))
	}
}

func TestStoreCollisionsAndContents(t *testing.T) {
	// Load a small table past half full so probe chains form.
	s, m, c := newTestStore(t, 32)
	ts := lp.Base{}.Thread(0)
	want := map[uint64]uint64{}
	for i := uint64(1); i <= 24; i++ {
		s.Put(c, ts, i, i*i)
		want[i] = i * i
	}
	for k, v := range want {
		if got, ok := s.Get(c, k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	got := s.Contents(m)
	if len(got) != len(want) {
		t.Fatalf("Contents has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Contents[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestStoreCapacityRounding(t *testing.T) {
	s, _, _ := newTestStore(t, 33)
	if s.Cap() != 64 {
		t.Fatalf("Cap = %d, want 64", s.Cap())
	}
}

func TestStoreKeyZeroPanics(t *testing.T) {
	s, _, c := newTestStore(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("key 0 should panic")
		}
	}()
	s.Get(c, 0)
}

// TestStoreFullTable: a completely full table terminates the probe
// after one pass — Get misses, Put rejects the insert without storing,
// and updates of present keys still work.
func TestStoreFullTable(t *testing.T) {
	s, m, c := newTestStore(t, 4)
	ts := lp.Base{}.Thread(0)
	for i := uint64(1); i <= 4; i++ {
		if !s.Put(c, ts, i, i) {
			t.Fatalf("insert %d into non-full table rejected", i)
		}
	}
	if s.Occupied(m) != 4 {
		t.Fatalf("Occupied = %d, want 4", s.Occupied(m))
	}
	if v, ok := s.Get(c, 99); ok {
		t.Fatalf("Get(99) on a full table = %d,true, want miss", v)
	}
	if s.Put(c, ts, 99, 9900) {
		t.Fatal("insert into a full table reported inserted=true")
	}
	if _, ok := s.Get(c, 99); ok {
		t.Fatal("rejected insert mutated the table")
	}
	if s.Occupied(m) != 4 {
		t.Fatalf("Occupied after rejected insert = %d, want 4", s.Occupied(m))
	}
	// Updates of resident keys are still accepted when full.
	if s.Put(c, ts, 2, 222) {
		t.Fatal("update reported insert")
	}
	if v, _ := s.Get(c, 2); v != 222 {
		t.Fatalf("update on full table lost: got %d", v)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeBase: "base", ModeLP: "lp", ModeEP: "ep", ModeWAL: "wal",
	} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m, want)
		}
	}
}

// TestShardLPJournalAndAck drives an LP writer natively and checks the
// journal contents and acknowledged prefix against what was written.
func TestShardLPJournalAndAck(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	c := &pmem.Native{Mem: m}
	sh := NewShardLP(m, "s", 0, 64, 20, 4, checksum.Modular)
	w := sh.NewLPWriter()

	for i := uint64(1); i <= 10; i++ {
		w.Put(c, i, 1000+i)
	}
	w.Seal(c)

	// Native stores hit the durable image directly, so the full prefix
	// (2 full batches + a sealed half batch) must acknowledge.
	puts, batches := sh.AckedPrefix(c)
	if puts != 10 || batches != 3 {
		t.Fatalf("AckedPrefix = %d puts / %d batches, want 10/3", puts, batches)
	}
	for i := 0; i < 10; i++ {
		k := sh.Jrn.Load(c, 2*i)
		v := sh.Jrn.Load(c, 2*i+1)
		if k != uint64(i+1) || v != 1000+uint64(i+1) {
			t.Fatalf("journal[%d] = (%d,%d), want (%d,%d)", i, k, v, i+1, 1001+i)
		}
	}

	st := sh.RecoverLP(c, 0, nil)
	if !st.Verified || st.AckedPuts != 10 {
		t.Fatalf("RecoverLP = %+v, want verified with 10 acked", st)
	}
}

// TestShardLPRecoverRepairsGhost simulates a leaked unacknowledged put:
// the table holds a value whose journal batch never acknowledged.
// Recovery must rebuild the shard to the acknowledged prefix.
func TestShardLPRecoverRepairsGhost(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	c := &pmem.Native{Mem: m}
	sh := NewShardLP(m, "s", 0, 64, 20, 4, checksum.Modular)
	w := sh.NewLPWriter()

	for i := uint64(1); i <= 4; i++ { // one full acknowledged batch
		w.Put(c, i, 100+i)
	}
	// A leaked insert from a batch that never sealed: table mutated,
	// journal words present but checksum slot never written.
	sh.Tab.Put(c, lp.Base{}.Thread(0), 99, 9999)

	st := sh.RecoverLP(c, 0, nil)
	if st.Verified {
		t.Fatal("ghost insert went undetected")
	}
	if st.AckedPuts != 4 {
		t.Fatalf("acked %d puts, want 4", st.AckedPuts)
	}
	if _, ok := sh.Tab.Get(c, 99); ok {
		t.Fatal("ghost key survived recovery")
	}
	for i := uint64(1); i <= 4; i++ {
		if v, ok := sh.Tab.Get(c, i); !ok || v != 100+i {
			t.Fatalf("acknowledged put %d lost by rebuild: %d,%v", i, v, ok)
		}
	}
	// Idempotence: a second pass finds the rebuilt table verified.
	if st2 := sh.RecoverLP(c, 0, nil); !st2.Verified || st2.AckedPuts != 4 {
		t.Fatalf("second RecoverLP = %+v, want verified/4", st2)
	}
}

// TestShardLPRecoverKeepsBaseline: preloaded pairs are part of the
// expected contents; a rebuild must reconstruct them, not wipe them.
func TestShardLPRecoverKeepsBaseline(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	c := &pmem.Native{Mem: m}
	sh := NewShardLP(m, "s", 0, 64, 20, 4, checksum.Modular)
	basePair := func(i int) (uint64, uint64) { return uint64(i + 1), uint64(10 * (i + 1)) }
	sh.Preload(m, 8, basePair)
	w := sh.NewLPWriter()
	w.Put(c, 3, 777) // acknowledged update of a baseline key
	w.Put(c, 50, 555)
	w.Seal(c)
	sh.Tab.Put(c, lp.Base{}.Thread(0), 60, 666) // ghost — forces rebuild

	st := sh.RecoverLP(c, 8, basePair)
	if st.Verified {
		t.Fatal("ghost insert went undetected")
	}
	want := map[uint64]uint64{1: 10, 2: 20, 3: 777, 4: 40, 5: 50, 6: 60, 7: 70, 8: 80, 50: 555}
	got := sh.Tab.Contents(m)
	if len(got) != len(want) {
		t.Fatalf("rebuilt contents: %d keys, want %d (%v)", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("rebuilt[%d] = %d, want %d", k, got[k], v)
		}
	}
}

// TestPadBatchAndResume exercises the group-commit restart invariant:
// padding closes batches on their aligned journal windows, NOP records
// are acknowledged but never replayed into the table, and a resumed
// writer appends at the next batch boundary.
func TestPadBatchAndResume(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	c := &pmem.Native{Mem: m}
	sh := NewShardLP(m, "s", 0, 64, 20, 4, checksum.Modular)
	w := sh.NewLPWriter()

	w.Put(c, 1, 101)
	w.Put(c, 2, 102)
	if pads := w.PadBatch(c); pads != 2 {
		t.Fatalf("PadBatch padded %d records, want 2", pads)
	}
	if w.Seq() != 4 || w.InBatch() != 0 || w.Batch() != 1 {
		t.Fatalf("after pad: seq=%d inBatch=%d batch=%d, want 4/0/1", w.Seq(), w.InBatch(), w.Batch())
	}
	puts, batches := sh.AckedPrefix(c)
	if puts != 4 || batches != 1 {
		t.Fatalf("AckedPrefix = %d/%d, want 4 puts (incl. 2 NOPs) in 1 batch", puts, batches)
	}

	// A new writer (a restarted process) resumes at the boundary.
	w2 := sh.NewLPWriter()
	w2.ResumeAt(puts)
	w2.Put(c, 3, 103)
	w2.PadBatch(c)
	puts, batches = sh.AckedPrefix(c)
	if puts != 8 || batches != 2 {
		t.Fatalf("AckedPrefix after resume = %d/%d, want 8/2", puts, batches)
	}

	st := sh.RecoverLP(c, 0, nil)
	if !st.Verified {
		t.Fatalf("RecoverLP = %+v: NOP records leaked into the replay", st)
	}
	want := map[uint64]uint64{1: 101, 2: 102, 3: 103}
	got := sh.Tab.Contents(m)
	if len(got) != len(want) {
		t.Fatalf("contents %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("contents[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestResumeAtRejectsNonBoundary(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	sh := NewShardLP(m, "s", 0, 64, 20, 4, checksum.Modular)
	w := sh.NewLPWriter()
	defer func() {
		if recover() == nil {
			t.Fatal("ResumeAt off a batch boundary should panic")
		}
	}()
	w.ResumeAt(3)
}

func TestNewWriterPanicsForLP(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	sh := NewShard(m, "s", 0, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("NewWriter(ModeLP, ...) should panic")
		}
	}()
	sh.NewWriter(ModeLP, lp.Base{}.Thread(0))
}
