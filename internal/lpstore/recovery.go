package lpstore

import (
	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/obs"
	"lazyp/internal/pmem"
)

// LP recovery for the KV store (run over the post-crash memory image,
// where the architectural contents equal the durable ones).
//
// The durably-acknowledged op prefix is defined by recovery itself, as
// everywhere in Lazy Persistency: the longest prefix of journal batches
// whose checksums verify against the journal words that survived in
// NVMM. Everything after it — an in-flight batch's journal tail, table
// mutations that leaked to NVMM through natural evictions before their
// batch was acknowledged — is discarded.
//
// Unlike the paper's kernels, whose regions write disjoint outputs
// exactly once, KV batches freely overwrite each other's slots and an
// unacknowledged batch may have leaked an insert into a probe chain.
// Clearing such a ghost slot would break linear-probe lookups for every
// key placed after it (the classic open-addressing deletion problem),
// so repair is shard-wide: when any slot deviates from a replay of the
// acknowledged prefix, the shard is wiped and rebuilt from the journal
// with Eager Persistency. Verification stays slot-exact and the common
// case — every slot matching the replay — costs no writes at all.

// RecoverStats summarizes one shard's recovery pass. The JSON field
// names are a small cross-tool schema: lpcrash -json, lpserve startup
// logs, and lpserve -dump all emit exactly this shape.
type RecoverStats struct {
	Shard        int  `json:"shard"`
	AckedPuts    int  `json:"acked_puts"`    // puts in the durably-acknowledged journal prefix
	AckedBatches int  `json:"acked_batches"` // batches (incl. a sealed partial tail) acknowledged
	Verified     bool `json:"verified"`      // table matched the replay; no repair needed
	Repaired     int  `json:"repaired"`      // slots that deviated from the replay (0 if Verified)
	// RecoverNs is the monotonic wall-clock duration of the shard's
	// recovery pass in nanoseconds. It is measured only on native
	// (wall-clock) paths — kvserve restart, lpcrash — and omitted
	// elsewhere, so deterministic simulated outputs never carry it.
	RecoverNs int64 `json:"recover_ns,omitempty"`
}

// AckedPrefix walks the journal from batch 0 and returns the longest
// acknowledged prefix: a batch is acknowledged when its checksum slot
// was durably written and matches the checksum of the batch's surviving
// journal words. A batch's length is the run of leading journal entries
// with nonzero key words (the journal is durably zeroed at allocation;
// sealed partial tails are shorter than BatchK, and any persistence
// hole inside a batch makes its checksum mismatch and ends the prefix).
func (sh *Shard) AckedPrefix(c pmem.Ctx) (puts, batches int) {
	if sh.Ack == nil {
		panic("lpstore: AckedPrefix on a shard without the LP mechanism")
	}
	for b := 0; b < sh.batches(); b++ {
		if !sh.Ack.Written(c, b) {
			break
		}
		base := b * sh.BatchK
		rem := sh.MaxOps - base
		if rem > sh.BatchK {
			rem = sh.BatchK
		}
		n := 0
		for n < rem && c.Load64(sh.Jrn.Addr(2*(base+n))) != 0 {
			n++
		}
		if n == 0 {
			break
		}
		addrs := make([]memsim.Addr, 0, 2*n)
		for i := 0; i < n; i++ {
			addrs = append(addrs, sh.Jrn.Addr(2*(base+i)), sh.Jrn.Addr(2*(base+i)+1))
		}
		if !sh.Ack.Matches(c, b, lp.SumLoads(c, sh.kind, addrs)) {
			if m := sh.Obs; m != nil {
				m.RegionMismatch.Inc()
				m.trace(obs.EvRegionMismatch, int32(sh.ID), uint64(b), uint64(n))
			}
			break
		}
		puts += n
		batches++
		if n < rem {
			break // a sealed partial batch is the end of the stream
		}
	}
	return puts, batches
}

// replayJournal overlays the first `puts` journal entries on the
// baseline pairs and returns the expected table contents (last write
// per key) plus the keys in first-insert order, which rebuild follows.
func (sh *Shard) replayJournal(c pmem.Ctx, puts, baseN int, basePair func(i int) (k, v uint64)) (expect map[uint64]uint64, order []uint64) {
	expect = make(map[uint64]uint64, baseN+puts)
	order = make([]uint64, 0, baseN+puts)
	for i := 0; i < baseN; i++ {
		k, v := basePair(i)
		c.Compute(2)
		expect[k] = v
		order = append(order, k)
	}
	for i := 0; i < puts; i++ {
		k := c.Load64(sh.Jrn.Addr(2 * i))
		v := c.Load64(sh.Jrn.Addr(2*i + 1))
		c.Compute(2)
		if k == NopKey {
			continue // group-commit padding records never touch the table
		}
		if _, ok := expect[k]; !ok {
			order = append(order, k)
		}
		expect[k] = v
	}
	return expect, order
}

// RecoverLP performs post-crash detection and repair for one shard:
// acknowledge the journal prefix, verify every slot against a replay of
// the baseline image plus that prefix, and rebuild the shard eagerly if
// anything deviates. The baseline enumerates the shard's preloaded
// pairs (deterministically re-derivable, like the kernels' inputs);
// recovery needs it because verification is content-based and the
// preloaded pairs are part of the expected contents. Idempotent — a
// second pass (e.g. after a crash during recovery) acknowledges the
// same prefix and finds the table verified.
func (sh *Shard) RecoverLP(c pmem.Ctx, baseN int, basePair func(i int) (k, v uint64)) RecoverStats {
	st := RecoverStats{Shard: sh.ID}
	st.AckedPuts, st.AckedBatches = sh.AckedPrefix(c)
	expect, order := sh.replayJournal(c, st.AckedPuts, baseN, basePair)
	if m := sh.Obs; m != nil {
		m.BatchesAcked.Add(uint64(st.AckedBatches))
		m.ReplayedPuts.Add(uint64(st.AckedPuts))
	}

	// Verification: every occupied slot must hold an expected pair, and
	// every expected key must be present. (A key is only ever written to
	// the one slot its probe chain reached during the run, so duplicate
	// occupancy cannot occur; the check still counts it as deviation.)
	present := make(map[uint64]struct{}, len(expect))
	mism := 0
	for i := 0; i < sh.Tab.cap; i++ {
		k := c.Load64(sh.Tab.KeyAddr(i))
		c.Compute(2)
		if k == 0 {
			continue
		}
		v := c.Load64(sh.Tab.ValAddr(i))
		_, dup := present[k]
		if ev, ok := expect[k]; ok && ev == v && !dup {
			present[k] = struct{}{}
		} else {
			mism++
		}
	}
	for k := range expect {
		if _, ok := present[k]; !ok {
			mism++
		}
	}
	if mism == 0 {
		st.Verified = true
		return st
	}
	st.Repaired = mism
	if m := sh.Obs; m != nil {
		m.SlotsRepaired.Add(uint64(mism))
		m.GhostWipes.Inc()
		m.trace(obs.EvRecoveryRepair, int32(sh.ID), uint64(mism), uint64(st.AckedPuts))
	}

	// Rebuild: wipe, then re-put the acknowledged prefix in first-insert
	// order. All stores are made durable before returning (flush the
	// touched lines, one fence) so a repeated failure loses nothing.
	lines := ep.NewLineSet()
	for i := 0; i < sh.Tab.cap; i++ {
		if c.Load64(sh.Tab.KeyAddr(i)) != 0 {
			c.Store64(sh.Tab.KeyAddr(i), 0)
			lines.Add(sh.Tab.KeyAddr(i))
		}
	}
	base := lp.Base{}.Thread(0)
	for _, k := range order {
		i, found := sh.Tab.probe(c, k)
		if i < 0 {
			continue // table full: mirrors Put's full-table rejection
		}
		if !found {
			base.Store64(c, sh.Tab.KeyAddr(i), k)
		}
		base.Store64(c, sh.Tab.ValAddr(i), expect[k])
		lines.Add(sh.Tab.KeyAddr(i))
	}
	for _, la := range lines.Lines() {
		c.Flush(la)
	}
	c.Fence()
	return st
}

// HasDurable reports whether the table currently maps k to v — on a
// post-crash image, whether the pair survived durably. EP recovery uses
// it to detect the at-most-one put that completed after the thread's
// last durable progress marker.
func (sh *Shard) HasDurable(c pmem.Ctx, k, v uint64) bool {
	got, ok := sh.Tab.Get(c, k)
	return ok && got == v
}
