// Package lpstore is an LP-persisted concurrent key-value store: the
// first workload class beyond the paper's loop-nest HPC kernels (§VII
// names "other data structures" as the open direction).
//
// The store is a fixed-capacity open-addressing (linear-probe) hash
// table whose slots live in pmem views over the simulated persistent
// memory. A shared-nothing shard layer assigns one shard — one table,
// one journal — to each simulated thread, with keys hash-partitioned by
// the workload generator, so the store scales across the engine's 1–16
// threads without locks (the same collision-free single-writer
// discipline the paper uses for its checksum table, §III-D).
//
// Three interchangeable persistence disciplines share one mutation code
// path (Store.Put issuing slot stores through an lp.ThreadStrategy):
//
//   - LP  — mutations are batched into LP regions of K puts; each put
//     appends an op record to a per-shard journal with plain (lazy)
//     stores, and the region end lazily commits a checksum over the
//     batch's journal words into an lp.Table. No flush or fence is ever
//     issued on the fast path. Recovery takes the longest journal
//     prefix whose batch checksums verify as the durably-acknowledged
//     op prefix, verifies the table against a replay of that prefix,
//     and rebuilds the shard with Eager Persistency on any mismatch
//     (see recovery.go for why repair is shard-wide).
//   - EP  — flush+fence per mutation plus a durable per-thread progress
//     marker (ep.Recompute), the EagerRecompute discipline.
//   - WAL — one durable undo-logged transaction per mutation
//     (ep.WAL), the paper's Figure 2 protocol.
//
// Base (no failure safety) runs the same code path with plain stores
// and is the normalization denominator, exactly as in Figure 10.
package lpstore

import (
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// Store is one shard's open-addressing hash table. Slot i occupies two
// adjacent words — (key, value) — of a single pmem.U64 array, so every
// mutation touches exactly one cache line (four slots per 64-byte
// line): an EP put needs one clflushopt, and in the crash model a put's
// key and value persist atomically (lines reach NVMM whole).
//
// Key 0 is the empty sentinel; callers must use nonzero keys (the
// workload generator's key encoding guarantees this).
type Store struct {
	kv  pmem.U64 // 2*cap words: slot i = (key at 2i, value at 2i+1)
	cap int      // slot count, a power of two
}

// NewStore allocates a table with at least the given capacity (rounded
// up to a power of two), durably zeroed (all slots empty).
func NewStore(m *memsim.Memory, name string, capacity int) *Store {
	c := 1
	for c < capacity {
		c <<= 1
	}
	s := &Store{kv: pmem.AllocU64(m, name, 2*c), cap: c}
	s.kv.Fill(m, 0)
	return s
}

// Cap returns the slot capacity.
func (s *Store) Cap() int { return s.cap }

// KeyAddr returns the persistent address of slot i's key word.
func (s *Store) KeyAddr(i int) memsim.Addr { return s.kv.Addr(2 * i) }

// ValAddr returns the persistent address of slot i's value word.
func (s *Store) ValAddr(i int) memsim.Addr { return s.kv.Addr(2*i + 1) }

// mix64 is the splitmix64 finalizer, used as the slot hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probe walks the linear-probe chain for k through c and returns the
// slot holding k (found=true) or the first empty slot (found=false).
// When the table is completely full and k is absent the probe visits
// every slot exactly once and returns slot = -1: fixed-capacity stores
// must be sized for their workload, but a full table degrades to a
// rejected operation, never an unbounded probe.
func (s *Store) probe(c pmem.Ctx, k uint64) (slot int, found bool) {
	if k == 0 {
		panic("lpstore: key 0 is the empty sentinel")
	}
	c.Compute(6) // hash + masking
	i := int(mix64(k)) & (s.cap - 1)
	for n := 0; n < s.cap; n++ {
		got := c.Load64(s.KeyAddr(i))
		c.Compute(2) // compare + branch
		if got == k {
			return i, true
		}
		if got == 0 {
			return i, false
		}
		i = (i + 1) & (s.cap - 1)
	}
	return -1, false
}

// Get returns the value stored under k.
func (s *Store) Get(c pmem.Ctx, k uint64) (uint64, bool) {
	i, ok := s.probe(c, k)
	if !ok {
		return 0, false
	}
	return c.Load64(s.ValAddr(i)), true
}

// Put inserts or updates k through ts, the persistence discipline's
// store interceptor. The caller owns region boundaries (Begin/End on
// ts); Put only issues the slot stores. It reports whether the put
// inserted a new key. Inserting into a completely full table stores
// nothing and returns inserted=false (the probe terminates after one
// pass); callers that must distinguish a full-table drop from an update
// keep their own occupancy watermark (kvserve rejects puts before this
// point is ever reached).
func (s *Store) Put(c pmem.Ctx, ts lp.ThreadStrategy, k, v uint64) (inserted bool) {
	i, ok := s.probe(c, k)
	if i < 0 {
		return false
	}
	if !ok {
		ts.Store64(c, s.KeyAddr(i), k)
	}
	ts.Store64(c, s.ValAddr(i), v)
	return !ok
}

// Contents returns the architectural key→value contents. After
// Memory.Crash the architectural image equals the durable one, so the
// same call reads the post-crash NVMM state.
func (s *Store) Contents(m *memsim.Memory) map[uint64]uint64 {
	words := s.kv.Snapshot(m)
	out := make(map[uint64]uint64)
	for i := 0; i < s.cap; i++ {
		if k := words[2*i]; k != 0 {
			out[k] = words[2*i+1]
		}
	}
	return out
}

// Occupied returns the architectural number of occupied slots.
func (s *Store) Occupied(m *memsim.Memory) int {
	words := s.kv.Snapshot(m)
	n := 0
	for i := 0; i < s.cap; i++ {
		if words[2*i] != 0 {
			n++
		}
	}
	return n
}
