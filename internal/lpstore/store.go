// Package lpstore is an LP-persisted concurrent key-value store: the
// first workload class beyond the paper's loop-nest HPC kernels (§VII
// names "other data structures" as the open direction).
//
// The store is a fixed-capacity open-addressing (linear-probe) hash
// table whose slots live in pmem views over the simulated persistent
// memory. A shared-nothing shard layer assigns one shard — one table,
// one journal — to each simulated thread, with keys hash-partitioned by
// the workload generator, so the store scales across the engine's 1–16
// threads without locks (the same collision-free single-writer
// discipline the paper uses for its checksum table, §III-D).
//
// Three interchangeable persistence disciplines share one mutation code
// path (Store.Put issuing slot stores through an lp.ThreadStrategy):
//
//   - LP  — mutations are batched into LP regions of K puts; each put
//     appends an op record to a per-shard journal with plain (lazy)
//     stores, and the region end lazily commits a checksum over the
//     batch's journal words into an lp.Table. No flush or fence is ever
//     issued on the fast path. Recovery takes the longest journal
//     prefix whose batch checksums verify as the durably-acknowledged
//     op prefix, verifies the table against a replay of that prefix,
//     and rebuilds the shard with Eager Persistency on any mismatch
//     (see recovery.go for why repair is shard-wide).
//   - EP  — flush+fence per mutation plus a durable per-thread progress
//     marker (ep.Recompute), the EagerRecompute discipline.
//   - WAL — one durable undo-logged transaction per mutation
//     (ep.WAL), the paper's Figure 2 protocol.
//
// Base (no failure safety) runs the same code path with plain stores
// and is the normalization denominator, exactly as in Figure 10.
package lpstore

import (
	"runtime"
	"sync/atomic"

	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// yield gives up the processor inside a seqlock spin; indirected for
// clarity at the call site.
func yield() { runtime.Gosched() }

// Store is one shard's open-addressing hash table. Slot i occupies two
// adjacent words — (key, value) — of a single pmem.U64 array, so every
// mutation touches exactly one cache line (four slots per 64-byte
// line): an EP put needs one clflushopt, and in the crash model a put's
// key and value persist atomically (lines reach NVMM whole).
//
// Key 0 is the empty sentinel; callers must use nonzero keys (the
// workload generator's key encoding guarantees this).
//
// A store is single-writer by construction. With EnableSeqlock it
// additionally supports lock-free concurrent readers (SeqGet): every
// table line carries a volatile epoch the writer bumps to odd before
// mutating the line and back to even after, and readers retry a slot
// whose line epoch is odd or changed across the read. See SeqGet for
// why this makes a torn read impossible.
type Store struct {
	kv  pmem.U64 // 2*cap words: slot i = (key at 2i, value at 2i+1)
	cap int      // slot count, a power of two

	// epochs, when non-nil, holds one seqlock epoch per table line
	// (four slots). Volatile server-side state, never persisted:
	// after a restart all epochs are zero (even — unlocked), which is
	// correct because recovery runs before any reader exists.
	epochs []atomic.Uint32
}

// NewStore allocates a table with at least the given capacity (rounded
// up to a power of two), durably zeroed (all slots empty).
func NewStore(m *memsim.Memory, name string, capacity int) *Store {
	c := 1
	for c < capacity {
		c <<= 1
	}
	s := &Store{kv: pmem.AllocU64(m, name, 2*c), cap: c}
	s.kv.Fill(m, 0)
	return s
}

// Cap returns the slot capacity.
func (s *Store) Cap() int { return s.cap }

// KeyAddr returns the persistent address of slot i's key word.
func (s *Store) KeyAddr(i int) memsim.Addr { return s.kv.Addr(2 * i) }

// ValAddr returns the persistent address of slot i's value word.
func (s *Store) ValAddr(i int) memsim.Addr { return s.kv.Addr(2*i + 1) }

// mix64 is the splitmix64 finalizer, used as the slot hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probe walks the linear-probe chain for k through c and returns the
// slot holding k (found=true) or the first empty slot (found=false).
// When the table is completely full and k is absent the probe visits
// every slot exactly once and returns slot = -1: fixed-capacity stores
// must be sized for their workload, but a full table degrades to a
// rejected operation, never an unbounded probe.
func (s *Store) probe(c pmem.Ctx, k uint64) (slot int, found bool) {
	if k == 0 {
		panic("lpstore: key 0 is the empty sentinel")
	}
	c.Compute(6) // hash + masking
	i := int(mix64(k)) & (s.cap - 1)
	for n := 0; n < s.cap; n++ {
		got := c.Load64(s.KeyAddr(i))
		c.Compute(2) // compare + branch
		if got == k {
			return i, true
		}
		if got == 0 {
			return i, false
		}
		i = (i + 1) & (s.cap - 1)
	}
	return -1, false
}

// Get returns the value stored under k.
func (s *Store) Get(c pmem.Ctx, k uint64) (uint64, bool) {
	i, ok := s.probe(c, k)
	if !ok {
		return 0, false
	}
	return c.Load64(s.ValAddr(i)), true
}

// Put inserts or updates k through ts, the persistence discipline's
// store interceptor. The caller owns region boundaries (Begin/End on
// ts); Put only issues the slot stores. It reports whether the put
// inserted a new key. Inserting into a completely full table stores
// nothing and returns inserted=false (the probe terminates after one
// pass); callers that must distinguish a full-table drop from an update
// keep their own occupancy watermark (kvserve rejects puts before this
// point is ever reached).
//
// With the seqlock enabled, the slot stores are bracketed by the
// odd/even epoch bumps on the slot's line, so concurrent SeqGet readers
// never observe the insert's key word without its value word.
func (s *Store) Put(c pmem.Ctx, ts lp.ThreadStrategy, k, v uint64) (inserted bool) {
	i, ok := s.probe(c, k)
	if i < 0 {
		return false
	}
	var ep *atomic.Uint32
	if s.epochs != nil {
		ep = &s.epochs[i>>2]
		ep.Add(1) // even → odd: line is being mutated
	}
	if !ok {
		ts.Store64(c, s.KeyAddr(i), k)
	}
	ts.Store64(c, s.ValAddr(i), v)
	if ep != nil {
		ep.Add(1) // odd → even: line consistent again
	}
	return !ok
}

// EnableSeqlock allocates the per-line epoch array, turning on support
// for lock-free concurrent readers via SeqGet. Call before any
// concurrent access begins; the single writer must then issue all slot
// stores through a Ctx whose Store64 is atomic (kvserve's fileCtx),
// so readers never race a plain word store.
func (s *Store) EnableSeqlock() {
	if s.epochs == nil {
		s.epochs = make([]atomic.Uint32, (s.cap+slotsPerLine-1)/slotsPerLine)
	}
}

// slotsPerLine is the number of (key, value) slot pairs per cache
// line: 64 bytes / 16 bytes per slot.
const slotsPerLine = memsim.LineSize / (2 * pmem.WordSize)

// SeqGet returns the value stored under k, reading the table directly
// with atomic loads and no Ctx — the lock-free read path concurrent
// server connections use while the single writer keeps mutating.
// retries counts seqlock validation failures (odd or moved epochs),
// the contention signal kvserve exports as a counter.
//
// Correctness: linear-probe tables never move or delete keys, so the
// probe chain for k is append-only. Each visited slot is validated
// against its line epoch — read even epoch, atomically load the key
// and value words, re-read the epoch — so a slot observed mid-insert
// (key word stored, value word not yet) is retried rather than
// returned; every returned value was the slot's complete committed
// value at some instant during the call. A concurrent insert past the
// reader's probe point can make SeqGet report a miss for a key whose
// put has not been acknowledged yet — the same answer a request
// ordered just before that put would get.
func (s *Store) SeqGet(m *memsim.Memory, k uint64) (v uint64, ok bool, retries uint64) {
	if k == 0 {
		panic("lpstore: key 0 is the empty sentinel")
	}
	i := int(mix64(k)) & (s.cap - 1)
	for n := 0; n < s.cap; n++ {
		ep := &s.epochs[i>>2]
		var key, val uint64
		for spin := 0; ; spin++ {
			e1 := ep.Load()
			if e1&1 == 0 {
				key = m.AtomicLoad64(s.KeyAddr(i))
				val = m.AtomicLoad64(s.ValAddr(i))
				if ep.Load() == e1 {
					break
				}
			}
			retries++
			if spin&63 == 63 {
				// The writer holds a line epoch only across two word
				// stores, but EP/WAL interpose flush bookkeeping; yield
				// rather than burn the core if we keep losing.
				yield()
			}
		}
		if key == k {
			return val, true, retries
		}
		if key == 0 {
			return 0, false, retries
		}
		i = (i + 1) & (s.cap - 1)
	}
	return 0, false, retries
}

// Contents returns the architectural key→value contents. After
// Memory.Crash the architectural image equals the durable one, so the
// same call reads the post-crash NVMM state.
func (s *Store) Contents(m *memsim.Memory) map[uint64]uint64 {
	words := s.kv.Snapshot(m)
	out := make(map[uint64]uint64)
	for i := 0; i < s.cap; i++ {
		if k := words[2*i]; k != 0 {
			out[k] = words[2*i+1]
		}
	}
	return out
}

// Occupied returns the architectural number of occupied slots.
func (s *Store) Occupied(m *memsim.Memory) int {
	words := s.kv.Snapshot(m)
	n := 0
	for i := 0; i < s.cap; i++ {
		if words[2*i] != 0 {
			n++
		}
	}
	return n
}
