package lpstore

import (
	"fmt"

	"lazyp/internal/checksum"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/obs"
	"lazyp/internal/pmem"
)

// NopKey is the reserved key of journal padding records. Group-commit
// callers (kvserve) close a partial LP batch by padding it to BatchK
// entries with no-op records so every committed batch occupies exactly
// its aligned journal window — the invariant that lets a restarted
// writer resume appending at a batch boundary. NOP entries fold into
// the batch checksum and count toward AckedPrefix like real puts, but
// replay and rebuild skip them; they never touch the table. Clients of
// a store must not use this key (or 0, the empty-slot sentinel).
const NopKey = ^uint64(0)

// Mode selects the persistence discipline a Writer applies per put.
type Mode uint8

// The four disciplines of the KV experiment (Figure-10 analogue).
const (
	ModeBase Mode = iota
	ModeLP
	ModeEP
	ModeWAL
)

func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "base"
	case ModeLP:
		return "lp"
	case ModeEP:
		return "ep"
	case ModeWAL:
		return "wal"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Shard is one thread's share of the store: a table plus, when built
// with NewShardLP, the LP mechanism — a persistent op journal and the
// per-batch checksum table that acknowledges journal prefixes.
type Shard struct {
	ID  int
	Tab *Store

	// LP mechanism; nil/zero unless built by NewShardLP.
	Jrn    pmem.U64  // 2 words per put: (key, value), append-only
	Ack    *lp.Table // one checksum slot per batch of BatchK puts
	BatchK int
	MaxOps int
	kind   checksum.Kind

	// Obs, when non-nil, receives journal/recovery counters and trace
	// events (see obs.go). Left nil by the closed-loop simulator.
	Obs *Metrics
}

// NewShard builds a shard without the LP mechanism (base/EP/WAL runs).
func NewShard(m *memsim.Memory, name string, id, capacity int) *Shard {
	return &Shard{ID: id, Tab: NewStore(m, name+".tab", capacity)}
}

// NewShardLP builds a shard with the LP journal and acknowledgment
// table sized for at most maxOps puts in batches of batchK. The journal
// is durably zeroed: key word 0 marks a never-written entry, which is
// how recovery measures a batch's length (sealed partial batches are
// shorter than batchK, and the Modular checksum cannot distinguish
// trailing zero words by itself).
func NewShardLP(m *memsim.Memory, name string, id, capacity, maxOps, batchK int, kind checksum.Kind) *Shard {
	if batchK < 1 || maxOps < 1 {
		panic("lpstore: batchK and maxOps must be positive")
	}
	sh := NewShard(m, name, id, capacity)
	sh.Jrn = pmem.AllocU64(m, name+".jrn", 2*maxOps)
	sh.Jrn.Fill(m, 0)
	sh.Ack = lp.NewTable(m, name+".ack", (maxOps+batchK-1)/batchK+1)
	sh.BatchK = batchK
	sh.MaxOps = maxOps
	sh.kind = kind
	return sh
}

// batches returns the journal's batch capacity.
func (sh *Shard) batches() int { return (sh.MaxOps + sh.BatchK - 1) / sh.BatchK }

// Preload inserts n keys directly into the table — architectural and
// durable images both, no simulation — before measured execution, the
// same convention as the kernels' Fill. keyval yields the i-th pair.
func (sh *Shard) Preload(m *memsim.Memory, n int, keyval func(i int) (k, v uint64)) {
	c := &pmem.Native{Mem: m}
	base := lp.Base{}.Thread(0)
	for i := 0; i < n; i++ {
		k, v := keyval(i)
		sh.Tab.Put(c, base, k, v)
	}
	m.Persist(sh.Tab.kv.Base, 2*sh.Tab.cap*pmem.WordSize)
}

// Writer drives one shard under one persistence discipline. It is
// thread-private (one Writer per simulated thread, over that thread's
// shard) and holds the discipline's region cadence:
//
//	base — plain stores, no regions;
//	lp   — one region per BatchK puts, journal words folded into the
//	       region checksum, data stores plain (lazy);
//	ep   — one region per put (flush+fence+marker via ep.Recompute);
//	wal  — one durable transaction per put (ep.WAL).
type Writer struct {
	Sh   *Shard
	mode Mode

	mut lp.ThreadStrategy // slot-store interceptor (base/ep/wal TS)
	jr  lp.ThreadStrategy // LP: journal folding TS (lpTS over Ack)

	seq     int // puts issued (journal cursor; ep/wal region key)
	inBatch int // puts in the open LP batch
	batch   int // current LP batch index

	// Host-side op counters for reporting.
	Reads, Puts, Inserts uint64
}

// NewWriter wires a writer for base/EP/WAL: mut is the per-thread
// strategy instance supplied by the caller (lp.Base{}.Thread(tid),
// ep.Recompute.Thread(tid), or ep.WAL.Thread(tid)).
func (sh *Shard) NewWriter(mode Mode, mut lp.ThreadStrategy) *Writer {
	if mode == ModeLP {
		panic("lpstore: use NewLPWriter for ModeLP")
	}
	return &Writer{Sh: sh, mode: mode, mut: mut}
}

// NewLPWriter wires the LP writer over the shard's own acknowledgment
// table. The shard has a single writer thread, so the LP strategy is
// built with one thread and no state is shared.
func (sh *Shard) NewLPWriter() *Writer {
	if sh.Ack == nil {
		panic("lpstore: shard was not built with NewShardLP")
	}
	return &Writer{
		Sh:   sh,
		mode: ModeLP,
		mut:  lp.Base{}.Thread(0), // data stores stay lazy under LP
		jr:   lp.NewLP(sh.Ack, sh.kind, 1).Thread(0),
	}
}

// Mode returns the writer's discipline.
func (w *Writer) Mode() Mode { return w.mode }

// Get reads k. Reads are plain loads under every discipline.
func (w *Writer) Get(c pmem.Ctx, k uint64) (uint64, bool) {
	w.Reads++
	return w.Sh.Tab.Get(c, k)
}

// Put inserts or updates k under the writer's discipline.
func (w *Writer) Put(c pmem.Ctx, k, v uint64) {
	if k == NopKey {
		panic("lpstore: NopKey is reserved for journal padding")
	}
	w.Puts++
	switch w.mode {
	case ModeBase:
		if w.Sh.Tab.Put(c, w.mut, k, v) {
			w.Inserts++
		}
	case ModeEP, ModeWAL:
		// One region — one flush+fence(+marker) sequence or one durable
		// transaction — per mutation, keyed by the put sequence number.
		w.mut.Begin(c, w.seq)
		if w.Sh.Tab.Put(c, w.mut, k, v) {
			w.Inserts++
		}
		w.mut.End(c)
		w.seq++
	case ModeLP:
		if w.seq >= w.Sh.MaxOps {
			panic("lpstore: LP journal capacity exceeded")
		}
		if w.inBatch == 0 {
			w.jr.Begin(c, w.batch)
		}
		// Journal first (the record that makes the op replayable), then
		// the table mutation; both are plain lazy stores — only the
		// journal words fold into the batch checksum, because table
		// slots are routinely overwritten by later batches and their
		// post-hoc checksums would not be verifiable.
		w.jr.Store64(c, w.Sh.Jrn.Addr(2*w.seq), k)
		w.jr.Store64(c, w.Sh.Jrn.Addr(2*w.seq+1), v)
		if w.Sh.Tab.Put(c, w.mut, k, v) {
			w.Inserts++
		}
		if m := w.Sh.Obs; m != nil {
			m.JournalAppends.Inc()
			m.trace(obs.EvJournalAppend, int32(w.Sh.ID), uint64(w.seq), k)
		}
		w.seq++
		w.inBatch++
		if w.inBatch == w.Sh.BatchK {
			w.jr.End(c)
			w.batch++
			w.inBatch = 0
			if m := w.Sh.Obs; m != nil {
				m.BatchSeals.Inc()
			}
		}
	}
}

// Seal closes an open partial LP batch at the end of a run, lazily
// committing its checksum so the tail ops become acknowledgeable. A
// no-op under the other disciplines (they acknowledge per put).
func (w *Writer) Seal(c pmem.Ctx) {
	if w.mode == ModeLP && w.inBatch > 0 {
		w.jr.End(c)
		w.batch++
		w.inBatch = 0
		if m := w.Sh.Obs; m != nil {
			m.BatchSeals.Inc()
		}
	}
}

// Seq returns the number of puts issued (the journal cursor under LP,
// the region key under EP/WAL).
func (w *Writer) Seq() int { return w.seq }

// InBatch returns the number of puts in the open LP batch (0 when no
// batch is open or the writer is not in LP mode).
func (w *Writer) InBatch() int { return w.inBatch }

// Batch returns the index of the current (next-to-commit) LP batch.
func (w *Writer) Batch() int { return w.batch }

// PadBatch closes an open LP batch by journaling NopKey records until
// the batch reaches BatchK entries, which triggers the normal lazy
// checksum commit. It returns the number of padding records written (0
// if no batch was open). Unlike Seal, the committed batch fills its
// whole aligned journal window, so a restarted writer can resume at
// the next batch boundary and AckedPrefix never sees a short batch
// followed by live data. Group-commit services use this on batch
// timeout and drain; the closed-loop harness keeps using Seal.
func (w *Writer) PadBatch(c pmem.Ctx) int {
	if w.mode != ModeLP || w.inBatch == 0 {
		return 0
	}
	pads := 0
	for w.inBatch > 0 {
		if w.seq >= w.Sh.MaxOps {
			panic("lpstore: LP journal capacity exceeded while padding")
		}
		w.jr.Store64(c, w.Sh.Jrn.Addr(2*w.seq), NopKey)
		w.jr.Store64(c, w.Sh.Jrn.Addr(2*w.seq+1), 0)
		if m := w.Sh.Obs; m != nil {
			m.JournalAppends.Inc()
		}
		w.seq++
		w.inBatch++
		pads++
		if w.inBatch == w.Sh.BatchK {
			w.jr.End(c)
			w.batch++
			w.inBatch = 0
			if m := w.Sh.Obs; m != nil {
				m.BatchSeals.Inc()
			}
		}
	}
	return pads
}

// ResumeAt positions a freshly built LP writer at put sequence seq so
// it continues appending to a journal recovered from a previous
// incarnation (kvserve restart). seq must be a batch boundary — the
// acknowledged prefix of a journal whose batches were all committed
// full (PadBatch) always is — because the running checksum of a
// half-open batch cannot be reconstructed.
func (w *Writer) ResumeAt(seq int) {
	if w.mode != ModeLP {
		panic("lpstore: ResumeAt is only meaningful for LP writers")
	}
	if seq < 0 || seq > w.Sh.MaxOps || seq%w.Sh.BatchK != 0 {
		panic(fmt.Sprintf("lpstore: ResumeAt(%d) is not a batch boundary (BatchK %d)", seq, w.Sh.BatchK))
	}
	w.seq = seq
	w.batch = seq / w.Sh.BatchK
	w.inBatch = 0
}
