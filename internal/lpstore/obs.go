package lpstore

import "lazyp/internal/obs"

// Metrics is the shard's optional observability hookup: counters for
// the LP mechanism's journal traffic and recovery outcomes, plus a
// tracer for the corresponding persistency events. A nil Metrics (the
// default, and the only configuration the closed-loop simulator uses)
// costs one predictable branch per put; kvserve attaches one per
// shard, scoped with the shard label, so the store's internals show
// up in the same registry as the service's own series.
type Metrics struct {
	// Fast path.
	JournalAppends *obs.Counter // lpstore_journal_appends_total: records written, pads included
	BatchSeals     *obs.Counter // lpstore_batch_seals_total: batch checksums lazily committed

	// Recovery path (checksum-region outcomes).
	BatchesAcked   *obs.Counter // lpstore_batches_acked_total: regions whose checksum verified
	RegionMismatch *obs.Counter // lpstore_region_mismatches_total: regions ending the prefix on a failed checksum
	ReplayedPuts   *obs.Counter // lpstore_replayed_puts_total: journal entries replayed during verification
	SlotsRepaired  *obs.Counter // lpstore_slots_repaired_total: table slots that deviated from the replay
	GhostWipes     *obs.Counter // lpstore_ghost_wipes_total: shard-wide wipe+rebuild passes

	// Tracer for journal-append / region-mismatch / recovery-repair
	// events; may be nil even when Metrics is attached.
	Tracer *obs.Tracer
}

// NewMetrics resolves the shard's counters under sc (typically
// Registry.Scope("shard", id)). tr may be nil.
func NewMetrics(sc obs.Scope, tr *obs.Tracer) *Metrics {
	return &Metrics{
		JournalAppends: sc.Counter("lpstore_journal_appends_total"),
		BatchSeals:     sc.Counter("lpstore_batch_seals_total"),
		BatchesAcked:   sc.Counter("lpstore_batches_acked_total"),
		RegionMismatch: sc.Counter("lpstore_region_mismatches_total"),
		ReplayedPuts:   sc.Counter("lpstore_replayed_puts_total"),
		SlotsRepaired:  sc.Counter("lpstore_slots_repaired_total"),
		GhostWipes:     sc.Counter("lpstore_ghost_wipes_total"),
		Tracer:         tr,
	}
}

// trace emits one event if a tracer is attached and enabled.
func (m *Metrics) trace(typ obs.EventType, src int32, a, b uint64) {
	if t := m.Tracer; t != nil {
		t.Record(typ, src, 0, a, b)
	}
}
