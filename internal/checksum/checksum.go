// Package checksum implements the software error-detection codes that
// Lazy Persistency uses to detect persistency failures (§III-D of the
// paper): Parity (XOR), Modular (summation), Adler-32, and the parallel
// combination Modular∥Parity evaluated in Figure 15(b).
//
// A checksum summarizes every value stored by an LP region; after a
// crash, recovery recomputes it from the data that survived in NVMM and
// compares it with the stored value. All codes here are incremental:
// kernels fold one 64-bit word per store into a running state.
package checksum

import "fmt"

// Kind selects an error-detection code.
type Kind uint8

const (
	// Modular sums all words modulo 2^32 (the paper's default: lowest
	// overhead among the accurate codes).
	Modular Kind = iota
	// Parity XORs all words together (cheapest, weakest detection).
	Parity
	// Adler32 is the zlib checksum (accurate but costlier).
	Adler32
	// Dual applies Modular and Parity in parallel for a lower
	// false-negative rate at a higher compute cost.
	Dual
)

// String returns the paper's name for the code.
func (k Kind) String() string {
	switch k {
	case Modular:
		return "modular"
	case Parity:
		return "parity"
	case Adler32:
		return "adler32"
	case Dual:
		return "modular+parity"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds lists all supported codes in the order of Figure 15(b).
func Kinds() []Kind { return []Kind{Modular, Parity, Adler32, Dual} }

// Invalid is the sentinel stored in never-written checksum slots
// (paper §IV: initialize checksums to a value real data cannot take).
// Sum never returns it.
const Invalid = ^uint64(0)

const adlerMod = 65521

// State is the running checksum of one LP region. Modular and Parity
// accumulate full 64-bit words — one add or xor per store, the cheapest
// possible fold — and reduce to the paper's 32-bit checksum only at
// region end (Fold32).
type State struct {
	kind Kind
	x    uint64 // modular 64-bit running sum / parity xor / adler "a"
	y    uint64 // Dual's parity xor / adler "b"
}

// New returns a fresh running checksum of the given kind.
func New(kind Kind) State {
	s := State{kind: kind}
	switch kind {
	case Modular, Parity, Adler32, Dual:
	default:
		panic(fmt.Sprintf("checksum: unknown kind %d", uint8(kind)))
	}
	s.Reset()
	return s
}

// Kind returns the code this state computes.
func (s *State) Kind() Kind { return s.kind }

// Reset clears the running state (ResetCheckSum in the paper's Figure 8).
func (s *State) Reset() {
	s.x, s.y = 0, 0
	if s.kind == Adler32 {
		s.x = 1 // standard Adler-32 initialization
	}
}

// Add folds one 64-bit word into the checksum (UpdateCheckSum in the
// paper's Figure 8; kernels pass math.Float64bits of stored values).
func (s *State) Add(w uint64) {
	switch s.kind {
	case Modular:
		s.x += w
	case Parity:
		s.x ^= w
	case Adler32:
		a, b := uint32(s.x), uint32(s.y)
		for i := 0; i < 8; i++ {
			a = (a + uint32(w>>(8*i))&0xff) % adlerMod
			b = (b + a) % adlerMod
		}
		s.x, s.y = uint64(a), uint64(b)
	case Dual:
		s.x += w
		s.y ^= w
	}
}

// Fold32 reduces a 64-bit accumulation to the paper's 32-bit checksum.
func Fold32(v uint64) uint32 { return uint32(v) + uint32(v>>32) }

// Sum finalizes the checksum as a 64-bit word suitable for a table slot.
// It never returns Invalid.
func (s *State) Sum() uint64 {
	var v uint64
	switch s.kind {
	case Modular:
		v = uint64(Fold32(s.x))
	case Parity:
		v = uint64(uint32(s.x) ^ uint32(s.x>>32))
	case Adler32:
		v = s.y<<16 | s.x
	case Dual:
		v = uint64(uint32(s.y)^uint32(s.y>>32))<<32 | uint64(Fold32(s.x))
	}
	if v == Invalid {
		v-- // keep the sentinel unambiguous
	}
	return v
}

// CostPerAdd is the number of ALU instructions one Add charges to the
// simulator's timing model, reflecting the relative expense measured in
// the paper (§III-D: Adler-32 is "significantly more expensive" than the
// modular checksum; Figure 15(b)). Modular and Parity fold a word with a
// single add/xor on an independent dependency chain.
func (k Kind) CostPerAdd() int {
	switch k {
	case Modular, Parity:
		return 1
	case Adler32:
		return 8 // byte-serial with modulo reductions
	case Dual:
		return 3
	default:
		return 1
	}
}

// SumWords is a convenience that checksums an entire slice at once, as
// recovery does when revalidating a region.
func SumWords(kind Kind, words []uint64) uint64 {
	s := New(kind)
	for _, w := range words {
		s.Add(w)
	}
	return s.Sum()
}
