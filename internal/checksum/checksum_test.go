package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindNames(t *testing.T) {
	want := map[Kind]string{
		Modular: "modular", Parity: "parity", Adler32: "adler32", Dual: "modular+parity",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if len(Kinds()) != 4 {
		t.Fatalf("Kinds() has %d entries", len(Kinds()))
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bogus kind should panic")
		}
	}()
	New(Kind(99))
}

func TestDetectsSingleCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range Kinds() {
		data := make([]uint64, 100)
		for i := range data {
			data[i] = rng.Uint64()
		}
		want := SumWords(k, data)
		for trial := 0; trial < 100; trial++ {
			i := rng.Intn(len(data))
			old := data[i]
			data[i] ^= 1 << uint(rng.Intn(64))
			if SumWords(k, data) == want {
				t.Errorf("%v missed a single bit flip", k)
			}
			data[i] = old
		}
		if SumWords(k, data) != want {
			t.Errorf("%v is not deterministic", k)
		}
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	f := func(words []uint64) bool {
		for _, k := range Kinds() {
			s := New(k)
			for _, w := range words {
				s.Add(w)
			}
			if s.Sum() != SumWords(k, words) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	for _, k := range Kinds() {
		s := New(k)
		empty := s.Sum()
		s.Add(123456)
		s.Reset()
		if s.Sum() != empty {
			t.Errorf("%v: Reset did not restore the initial state", k)
		}
	}
}

func TestSumNeverInvalid(t *testing.T) {
	f := func(words []uint64) bool {
		for _, k := range Kinds() {
			if SumWords(k, words) == Invalid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModularParityOrderInsensitive(t *testing.T) {
	// Modular and Parity commute — recovery may refold in any order.
	f := func(words []uint64, seed int64) bool {
		if len(words) < 2 {
			return true
		}
		shuffled := append([]uint64(nil), words...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return SumWords(Modular, words) == SumWords(Modular, shuffled) &&
			SumWords(Parity, words) == SumWords(Parity, shuffled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdlerOrderSensitive(t *testing.T) {
	a := []uint64{1, 2}
	b := []uint64{2, 1}
	if SumWords(Adler32, a) == SumWords(Adler32, b) {
		t.Fatal("Adler-32 should be order sensitive")
	}
}

func TestParityBlindSpot(t *testing.T) {
	data, corrupted := ParityBlindSpot(32, 99)
	if SumWords(Parity, data) != SumWords(Parity, corrupted) {
		t.Fatal("constructed corruption should be invisible to parity")
	}
	if SumWords(Modular, data) == SumWords(Modular, corrupted) {
		t.Fatal("modular checksum should catch the parity blind spot")
	}
	if SumWords(Dual, data) == SumWords(Dual, corrupted) {
		t.Fatal("dual checksum should catch the parity blind spot")
	}
}

func TestMeasureAccuracy(t *testing.T) {
	for _, k := range Kinds() {
		r := MeasureAccuracy(k, 32, 20000, 7)
		if r.Missed != 0 {
			t.Errorf("%v missed %d of %d injected errors", k, r.Missed, r.Trials)
		}
		if r.MissRateUpperBound() <= 0 {
			t.Errorf("%v: bogus upper bound", k)
		}
	}
}

func TestAccuracyDeterministic(t *testing.T) {
	a := MeasureAccuracy(Modular, 16, 1000, 42)
	b := MeasureAccuracy(Modular, 16, 1000, 42)
	if a != b {
		t.Fatal("MeasureAccuracy is not deterministic for a fixed seed")
	}
}

func TestFold32(t *testing.T) {
	if Fold32(0x100000002) != 3 {
		t.Fatalf("Fold32 = %d", Fold32(0x100000002))
	}
}

func TestCostPerAddOrdering(t *testing.T) {
	if !(Modular.CostPerAdd() <= Dual.CostPerAdd() && Dual.CostPerAdd() < Adler32.CostPerAdd()) {
		t.Fatal("cost model ordering violated: modular <= dual < adler32")
	}
}
