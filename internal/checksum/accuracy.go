package checksum

import "math/rand"

// AccuracyResult reports one Monte-Carlo error-injection study (§III-D):
// how often a checksum failed to detect a region whose data was not
// fully persisted.
type AccuracyResult struct {
	Kind    Kind
	Trials  int
	Missed  int // injected-error trials whose checksum still matched
	MissP95 float64
}

// MissRateUpperBound returns the 95%-confidence upper bound on the
// missed-detection probability given the observed misses ("rule of
// three" when zero misses are observed).
func (r AccuracyResult) MissRateUpperBound() float64 {
	if r.Trials == 0 {
		return 1
	}
	if r.Missed == 0 {
		return 3 / float64(r.Trials)
	}
	return (float64(r.Missed) + 3) / float64(r.Trials)
}

// MeasureAccuracy reproduces the paper's error-injection experiment for
// one code: build regions of regionLen random 64-bit values (simulated
// computation results), checksum them, then corrupt a random non-empty
// subset of values (simulating stores that did not persist before the
// failure — each reverts to a random stale value) and test whether the
// recomputed checksum still matches. A match is a missed detection.
//
// The paper reports < 2×10⁻⁹ misses for Modular and Adler-32.
func MeasureAccuracy(kind Kind, regionLen, trials int, seed int64) AccuracyResult {
	rng := rand.New(rand.NewSource(seed))
	res := AccuracyResult{Kind: kind, Trials: trials}
	data := make([]uint64, regionLen)
	for t := 0; t < trials; t++ {
		for i := range data {
			data[i] = rng.Uint64()
		}
		want := SumWords(kind, data)

		// Corrupt 1..regionLen values (at least one store lost).
		lost := 1 + rng.Intn(regionLen)
		for k := 0; k < lost; k++ {
			data[rng.Intn(regionLen)] = rng.Uint64()
		}
		if SumWords(kind, data) == want {
			res.Missed++
		}
	}
	res.MissP95 = res.MissRateUpperBound()
	return res
}

// ParityBlindSpot builds a corruption that Parity provably misses but
// Modular catches: two lost stores whose stale values differ from the
// true values by the same XOR pattern cancel in a parity checksum. It
// returns the true data and the corrupted data. Used by tests and by the
// lpcheck tool to demonstrate why the paper calls Parity "worse
// detection accuracy".
func ParityBlindSpot(regionLen int, seed int64) (data, corrupted []uint64) {
	if regionLen < 2 {
		panic("checksum: ParityBlindSpot needs regionLen >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	data = make([]uint64, regionLen)
	for i := range data {
		data[i] = rng.Uint64()
	}
	corrupted = append([]uint64(nil), data...)
	pattern := rng.Uint64() | 1 // non-zero
	corrupted[0] ^= pattern
	corrupted[1] ^= pattern
	return data, corrupted
}
