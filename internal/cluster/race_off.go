//go:build !race

package cluster

// RaceEnabled reports whether this build carries the race detector's
// instrumentation. See race_on.go.
const RaceEnabled = false
