package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/obs"
)

// router.go is the cluster's head: a data-plane proxy speaking the
// kvserve wire protocol on the client side and fanning requests out to
// each key's slot primary, plus the control loop that owns the
// topology epoch — heartbeats, lease-expiry failover, and rejoin
// orchestration.
//
// The proxy is deliberately dumb about durability: it never acks
// anything itself (except pings). A put's ack frame originates on the
// slot primary after the cluster-wide ack rule is satisfied and passes
// through untouched, so inserting the router changes where frames
// travel, never what an ack means. Sequence numbers are client-chosen
// and pass through too; when a backend dies, the proxy answers the
// requests in flight to it with StatusOverload — the same "retry
// later" clients already handle for mailbox pressure — and the
// client's retry lands on the promoted primary once the lease flips
// the slot table.
//
// The control loop is a lease: DefaultLeaseMiss consecutive missed
// heartbeats declare a node dead, which (a) promotes its pair peers to
// primary for its slots and (b) tells those peers — via the topology
// push — to stop counting the dead node's acks and start charging its
// delta buffers. A node that heartbeats again after death re-enters as
// StateSyncing: the router drains every live peer's delta buffer into
// it (POST /cluster/catchup), and only when every buffer reads empty
// does the node return to StateAlive as a follower. Primaries never
// fail back; a rejoined node earns primaries again only if its peer
// dies later.

// RouterConfig configures StartRouter. Membership is static: the ring
// (and therefore every slot's pair) is fixed at start; liveness and
// roles within pairs are what the control loop varies.
type RouterConfig struct {
	// Addr is the client-facing data listen address (kvserve wire
	// protocol; port 0 picks a free port, read back from Router.Addr).
	Addr string
	// CtrlAddr is the router's HTTP address: /cluster/topology,
	// /cluster/status, /healthz, /metrics.
	CtrlAddr string
	// Nodes is the static membership: ID, data Addr, control Ctrl base
	// URL per node. State is ignored on input; Addr may be updated at
	// rejoin from the node's own /healthz report.
	Nodes []NodeInfo

	// VNodes and LoadFactor shape the ring (defaults DefaultVNodes,
	// DefaultLoadFactor).
	VNodes     int
	LoadFactor float64
	// Heartbeat is the probe period (default DefaultHeartbeat);
	// LeaseMiss consecutive failures expire a node's lease (default
	// DefaultLeaseMiss).
	Heartbeat time.Duration
	LeaseMiss int
	// DialTimeout bounds proxy dials to backends (default 1s).
	DialTimeout time.Duration
	// Registry receives the router's metrics (cluster_* series).
	Registry *obs.Registry
	// Logf, when non-nil, receives control-loop events (failovers,
	// rejoins, pushes).
	Logf func(format string, args ...any)
}

// Router is a running cluster head.
//
// Two topologies live here, and the gap between them is a correctness
// fence. r.adj is the *adjudicated* topology — what the control loop
// last decided (bumpLocked). r.topo is the *routed* topology — what
// the proxy and /cluster/topology clients act on. An epoch moves from
// adjudicated to routed only after every node it marks alive has
// confirmed applying it (push ack or healthz epoch report). Routing
// on an unconfirmed epoch loses acked puts: the proxy would send a
// put to a freshly promoted primary whose replicator still holds the
// old view, where that slot isn't its to replicate — Forward returns
// "not mine", the node acks at RF=1, and no delta entry is ever
// charged for the dead pair peer, so rejoin catch-up has nothing to
// replay. Until the fence commits, clients ride the previous routed
// epoch (requests to the dead primary bounce as Overload and retry),
// which extends the failover blip by one push round-trip but never
// un-promises an ack.
type Router struct {
	cfg   RouterConfig
	pairs [][2]int
	topo  atomic.Pointer[Topology]

	ln   net.Listener
	hsrv *http.Server
	hcl  *http.Client

	mu        sync.Mutex // control-loop state below
	primary   []int      // per slot: current primary node index, -1 when pair fully dead
	state     []string   // per node: StateAlive/StateDead/StateSyncing
	miss      []int      // per node: consecutive missed heartbeats
	addrs     []string   // per node: current data address
	epoch     uint64
	joining   []bool    // per node: rejoin goroutine in flight
	adj       *Topology // adjudicated but possibly not yet routed
	confirmed []uint64  // per node: highest epoch it confirmed applying

	quit chan struct{}
	wg   sync.WaitGroup

	cmu   sync.Mutex // accepted proxy connections, closed by Close
	conns map[net.Conn]struct{}

	reg          *obs.Registry
	ctRequests   *obs.Counter // cluster_router_requests_total
	ctNoPrimary  *obs.Counter // cluster_router_noprimary_total
	ctBackendRst *obs.Counter // cluster_router_backend_resets_total
	ctFailovers  *obs.Counter // cluster_failovers_total
	ctRejoins    *obs.Counter // cluster_rejoins_total
	ctPushes     *obs.Counter // cluster_topology_pushes_total
	gEpoch       *obs.Gauge   // cluster_epoch
	gAlive       *obs.Gauge   // cluster_nodes_alive
	gPrimary     []*obs.Gauge // cluster_slots_primary{node=...}
	gFollower    []*obs.Gauge // cluster_slots_follower{node=...}
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.CtrlAddr == "" {
		c.CtrlAddr = "127.0.0.1:0"
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.LoadFactor < 1 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.LeaseMiss <= 0 {
		c.LeaseMiss = DefaultLeaseMiss
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// StartRouter builds the ring, pushes the initial topology to every
// node (nodes unreachable within the grace window start dead and fail
// over immediately), and starts the proxy and the control loop.
func StartRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: StartRouter needs at least one node")
	}
	ids := make([]string, len(cfg.Nodes))
	for i := range cfg.Nodes {
		ids[i] = cfg.Nodes[i].ID
	}
	pairs, err := BuildPairs(ids, cfg.VNodes, cfg.LoadFactor)
	if err != nil {
		return nil, err
	}

	r := &Router{
		cfg:       cfg,
		pairs:     pairs,
		hcl:       &http.Client{Timeout: 4 * cfg.Heartbeat},
		primary:   make([]int, NumSlots),
		state:     make([]string, len(cfg.Nodes)),
		miss:      make([]int, len(cfg.Nodes)),
		addrs:     make([]string, len(cfg.Nodes)),
		joining:   make([]bool, len(cfg.Nodes)),
		confirmed: make([]uint64, len(cfg.Nodes)),
		quit:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		reg:       cfg.Registry,
	}
	root := cfg.Registry.Scope()
	r.ctRequests = root.Counter("cluster_router_requests_total")
	r.ctNoPrimary = root.Counter("cluster_router_noprimary_total")
	r.ctBackendRst = root.Counter("cluster_router_backend_resets_total")
	r.ctFailovers = root.Counter("cluster_failovers_total")
	r.ctRejoins = root.Counter("cluster_rejoins_total")
	r.ctPushes = root.Counter("cluster_topology_pushes_total")
	r.gEpoch = root.Gauge("cluster_epoch")
	r.gAlive = root.Gauge("cluster_nodes_alive")
	for i := range cfg.Nodes {
		sc := cfg.Registry.Scope("node", cfg.Nodes[i].ID)
		r.gPrimary = append(r.gPrimary, sc.Gauge("cluster_slots_primary"))
		r.gFollower = append(r.gFollower, sc.Gauge("cluster_slots_follower"))
	}
	for s := range r.primary {
		r.primary[s] = pairs[s][0]
	}
	for i := range r.state {
		r.state[i] = StateAlive
		r.addrs[i] = cfg.Nodes[i].Addr
	}

	// Initial push: every node must hold epoch 1 before the proxy
	// serves, or a put acked pre-topology would be invisible to the
	// ack rule (local-only, no delta charge). Nodes that stay
	// unreachable through the grace window start dead instead.
	r.mu.Lock()
	r.bumpLocked()
	t := r.adj
	r.mu.Unlock()
	deadline := time.Now().Add(time.Duration(cfg.LeaseMiss) * cfg.Heartbeat * 4)
	pending := make(map[int]bool, len(cfg.Nodes))
	for i := range cfg.Nodes {
		pending[i] = true
	}
	for len(pending) > 0 && time.Now().Before(deadline) {
		for i := range pending {
			if r.pushTo(i, t) == nil {
				r.mu.Lock()
				r.confirmLocked(i, t.Epoch)
				r.mu.Unlock()
				delete(pending, i)
			}
		}
		if len(pending) > 0 {
			time.Sleep(cfg.Heartbeat)
		}
	}
	if len(pending) > 0 {
		r.mu.Lock()
		for i := range pending {
			cfg.Logf("cluster: node %s unreachable at start, beginning dead", cfg.Nodes[i].ID)
			r.failoverLocked(i)
		}
		r.mu.Unlock()
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: router listen %s: %w", cfg.Addr, err)
	}
	r.ln = ln
	hln, err := net.Listen("tcp", cfg.CtrlAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: router control listen %s: %w", cfg.CtrlAddr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/cluster/topology", http.HandlerFunc(r.handleTopology))
	mux.Handle("/cluster/status", http.HandlerFunc(r.handleStatus))
	mux.Handle("/healthz", http.HandlerFunc(r.handleHealthz))
	mux.Handle("/metrics", obs.MetricsHandler(cfg.Registry))
	r.hsrv = &http.Server{Handler: mux}
	go r.hsrv.Serve(hln)
	r.hsrv.Addr = hln.Addr().String()

	r.wg.Add(2)
	go r.acceptLoop()
	go r.controlLoop()
	return r, nil
}

// Addr is the bound data-plane address clients dial.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// CtrlAddr is the bound control-plane HTTP address.
func (r *Router) CtrlAddr() string { return r.hsrv.Addr }

// Topology returns the routed topology, falling back to the latest
// adjudicated epoch before any epoch has cleared the routing fence.
// (The /cluster/topology endpoint never serves the fallback: clients
// may only route on confirmed epochs.)
func (r *Router) Topology() *Topology {
	if t := r.topo.Load(); t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.adj
}

// Metrics exposes the router's registry.
func (r *Router) Metrics() *obs.Registry { return r.reg }

// Close stops the proxy and the control loop. Accepted client
// connections are closed too — an idle client must not be able to
// wedge Close in wg.Wait behind a blocked serveClient read.
func (r *Router) Close() error {
	close(r.quit)
	r.ln.Close()
	err := r.hsrv.Close()
	r.cmu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.conns = nil
	r.cmu.Unlock()
	r.wg.Wait()
	return err
}

// ---------------------------------------------------------------------
// Topology derivation. r.mu held for all *Locked methods.

// bumpLocked rebuilds the published Topology from (pairs, primary,
// state, addrs) at a fresh epoch and updates the ownership gauges.
func (r *Router) bumpLocked() {
	r.epoch++
	t := &Topology{
		Epoch: r.epoch,
		Nodes: make([]NodeInfo, len(r.cfg.Nodes)),
		Slots: make([]SlotAssign, NumSlots),
	}
	alive := 0
	for i := range t.Nodes {
		t.Nodes[i] = r.cfg.Nodes[i]
		t.Nodes[i].Addr = r.addrs[i]
		t.Nodes[i].State = r.state[i]
		if r.state[i] == StateAlive {
			alive++
		}
	}
	nPrim := make([]int, len(t.Nodes))
	nFoll := make([]int, len(t.Nodes))
	for s := 0; s < NumSlots; s++ {
		p := r.primary[s]
		pair := -1
		if p >= 0 {
			if other := r.otherMember(s, p); other >= 0 {
				pair = other
			}
			nPrim[p]++
		}
		foll := -1
		if pair >= 0 && r.state[pair] == StateAlive {
			foll = pair
			nFoll[foll]++
		}
		t.Slots[s] = SlotAssign{Primary: p, Follower: foll, Pair: pair}
	}
	r.adj = t
	r.maybePublishLocked()
	r.gEpoch.Set(int64(r.epoch))
	r.gAlive.Set(int64(alive))
	for i := range t.Nodes {
		r.gPrimary[i].Set(int64(nPrim[i]))
		r.gFollower[i].Set(int64(nFoll[i]))
	}
}

// maybePublishLocked routes the adjudicated epoch once every node it
// marks alive has confirmed applying it — the fence described on
// Router. Publishing early would route puts to primaries that do not
// yet know they are primaries, which acks without charging a delta.
func (r *Router) maybePublishLocked() {
	t := r.adj
	if t == nil {
		return
	}
	if cur := r.topo.Load(); cur != nil && cur.Epoch >= t.Epoch {
		return
	}
	for i := range t.Nodes {
		if t.Nodes[i].State == StateAlive && r.confirmed[i] < t.Epoch {
			return
		}
	}
	r.topo.Store(t)
	r.cfg.Logf("cluster: epoch %d confirmed by all live nodes, routing live", t.Epoch)
}

// confirmLocked records that node i holds epoch (from a push ack or a
// healthz report) and publishes the adjudicated topology if this was
// the last confirmation it was waiting on.
func (r *Router) confirmLocked(i int, epoch uint64) {
	if epoch > r.confirmed[i] {
		r.confirmed[i] = epoch
		r.maybePublishLocked()
	}
}

// confirmPush pushes t to node i and records the confirmation on
// success. Failures are dropped: the heartbeat loop re-pushes any
// node whose reported epoch lags, and the node's healthz epoch report
// confirms applies whose HTTP ack was lost to a timeout.
func (r *Router) confirmPush(i int, t *Topology) {
	if r.pushTo(i, t) != nil {
		return
	}
	r.mu.Lock()
	r.confirmLocked(i, t.Epoch)
	r.mu.Unlock()
}

// otherMember returns the pair member of slot s that is not node, -1
// if the pair has no second member.
func (r *Router) otherMember(s, node int) int {
	if r.pairs[s][0] == node {
		return r.pairs[s][1]
	}
	return r.pairs[s][0]
}

// failoverLocked declares node i dead and promotes its pair peers.
func (r *Router) failoverLocked(i int) {
	r.state[i] = StateDead
	promoted, orphaned := 0, 0
	for s := 0; s < NumSlots; s++ {
		if r.primary[s] != i {
			continue
		}
		other := r.otherMember(s, i)
		if other >= 0 && r.state[other] == StateAlive {
			r.primary[s] = other
			promoted++
		} else {
			r.primary[s] = -1
			orphaned++
		}
	}
	r.ctFailovers.Inc()
	r.bumpLocked()
	r.cfg.Logf("cluster: FAILOVER node=%s epoch=%d promoted=%d orphaned=%d",
		r.cfg.Nodes[i].ID, r.epoch, promoted, orphaned)
	r.pushAllLocked()
}

// adoptLocked moves a heartbeating-again dead node to syncing and
// kicks off the catch-up drain.
func (r *Router) adoptLocked(i int, h Health) {
	r.state[i] = StateSyncing
	r.miss[i] = 0
	if h.Addr != "" {
		r.addrs[i] = h.Addr
	}
	r.bumpLocked()
	r.cfg.Logf("cluster: REJOIN node=%s epoch=%d addr=%s (syncing)", r.cfg.Nodes[i].ID, r.epoch, r.addrs[i])
	r.pushAllLocked()
	if !r.joining[i] {
		r.joining[i] = true
		r.wg.Add(1)
		go r.rejoin(i)
	}
}

// pushAllLocked fans the adjudicated topology out to every reachable
// node; each successful push feeds the routing fence.
func (r *Router) pushAllLocked() {
	t := r.adj
	for i := range r.cfg.Nodes {
		if r.state[i] == StateDead {
			continue
		}
		go r.confirmPush(i, t)
	}
}

// pushTo POSTs t to node i's control endpoint.
func (r *Router) pushTo(i int, t *Topology) error {
	body, _ := json.Marshal(t)
	resp, err := r.hcl.Post(r.cfg.Nodes[i].Ctrl+"/cluster/topology", "application/json",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: push to %s: HTTP %d", r.cfg.Nodes[i].ID, resp.StatusCode)
	}
	r.ctPushes.Inc()
	return nil
}

// rejoin drains every live peer's delta buffer for node i, then
// reinstates i as a follower (and primary of any orphaned slots it is
// a member of). Runs until the drain converges or i dies again.
func (r *Router) rejoin(i int) {
	defer r.wg.Done()
	id := r.cfg.Nodes[i].ID
	tick := time.NewTicker(r.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			r.mu.Lock()
			r.joining[i] = false
			r.mu.Unlock()
			return
		case <-tick.C:
		}
		r.mu.Lock()
		if r.state[i] != StateSyncing {
			r.joining[i] = false
			r.mu.Unlock()
			return
		}
		peers := make([]int, 0, len(r.cfg.Nodes))
		for j := range r.cfg.Nodes {
			if j != i && r.state[j] == StateAlive {
				peers = append(peers, j)
			}
		}
		r.mu.Unlock()

		remaining := 0
		failed := false
		for _, j := range peers {
			rem, err := r.catchupOn(j, id)
			if err != nil {
				failed = true
				continue
			}
			remaining += rem
		}
		if failed || remaining > 0 {
			continue
		}

		r.mu.Lock()
		if r.state[i] == StateSyncing {
			r.state[i] = StateAlive
			reclaimed := 0
			for s := 0; s < NumSlots; s++ {
				if r.primary[s] == -1 && (r.pairs[s][0] == i || r.pairs[s][1] == i) {
					r.primary[s] = i
					reclaimed++
				}
			}
			r.ctRejoins.Inc()
			r.bumpLocked()
			r.cfg.Logf("cluster: REJOINED node=%s epoch=%d reclaimed=%d (follower)", id, r.epoch, reclaimed)
			r.pushAllLocked()
		}
		r.joining[i] = false
		r.mu.Unlock()
		return
	}
}

// catchupOn asks node j to drain its delta buffer for peer id;
// returns the remaining (re-buffered) count.
func (r *Router) catchupOn(j int, id string) (int, error) {
	resp, err := r.hcl.Post(r.cfg.Nodes[j].Ctrl+"/cluster/catchup?peer="+id, "", nil)
	if err != nil {
		return 0, err
	}
	defer func() { io.Copy(io.Discard, resp.Body); resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: catchup on %s: HTTP %d", r.cfg.Nodes[j].ID, resp.StatusCode)
	}
	var out struct {
		Replayed  int `json:"replayed"`
		Remaining int `json:"remaining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Remaining, nil
}

// ---------------------------------------------------------------------
// Control loop: heartbeats and lease expiry.

func (r *Router) controlLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
			r.probeAll()
		}
	}
}

func (r *Router) probeAll() {
	type probe struct {
		ok bool
		h  Health
	}
	results := make([]probe, len(r.cfg.Nodes))
	var wg sync.WaitGroup
	for i := range r.cfg.Nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := r.hcl.Get(r.cfg.Nodes[i].Ctrl + "/healthz")
			if err != nil {
				return
			}
			defer func() { io.Copy(io.Discard, resp.Body); resp.Body.Close() }()
			var h Health
			if json.NewDecoder(resp.Body).Decode(&h) != nil {
				return
			}
			results[i] = probe{ok: resp.StatusCode == http.StatusOK && h.Status == "serving", h: h}
		}(i)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.epoch
	for i := range results {
		switch {
		case results[i].ok:
			switch r.state[i] {
			case StateDead:
				r.adoptLocked(i, results[i].h)
			default:
				r.miss[i] = 0
				r.confirmLocked(i, results[i].h.Epoch)
				if results[i].h.Epoch < cur {
					go r.confirmPush(i, r.adj)
				}
			}
		default:
			switch r.state[i] {
			case StateAlive:
				r.miss[i]++
				if r.miss[i] >= r.cfg.LeaseMiss {
					r.failoverLocked(i)
				}
			case StateSyncing:
				r.miss[i]++
				if r.miss[i] >= r.cfg.LeaseMiss {
					r.state[i] = StateDead
					r.bumpLocked()
					r.cfg.Logf("cluster: node %s died again while syncing (epoch %d)", r.cfg.Nodes[i].ID, r.epoch)
					r.pushAllLocked()
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Data-plane proxy.

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		r.cmu.Lock()
		if r.conns == nil {
			c.Close()
			r.cmu.Unlock()
			return
		}
		r.conns[c] = struct{}{}
		r.cmu.Unlock()
		r.wg.Add(1)
		go r.serveClient(c)
	}
}

// backend is one proxy→node connection, owned by one client conn.
type backend struct {
	addr  string
	conn  net.Conn
	sendq chan [kvserve.ReqSize]byte

	mu      sync.Mutex
	pending map[uint32]bool
	dead    bool

	respCh chan<- [kvserve.RespSize]byte
	ct     *obs.Counter // backend reset counter
	wg     *sync.WaitGroup
}

// send registers seq as pending and enqueues the frame. Reports false
// when the backend already died (caller answers Overload itself).
func (b *backend) send(seq uint32, f [kvserve.ReqSize]byte) bool {
	b.mu.Lock()
	if b.dead {
		b.mu.Unlock()
		return false
	}
	b.pending[seq] = true
	b.mu.Unlock()
	b.sendq <- f
	return true
}

// die flushes every pending request back to the client as Overload —
// the client retries, and by then the slot table has moved on.
func (b *backend) die() {
	b.mu.Lock()
	if b.dead {
		b.mu.Unlock()
		return
	}
	b.dead = true
	pend := make([]uint32, 0, len(b.pending))
	for seq := range b.pending {
		pend = append(pend, seq)
	}
	b.pending = nil
	b.mu.Unlock()
	b.conn.Close()
	b.ct.Inc()
	var f [kvserve.RespSize]byte
	for _, seq := range pend {
		kvserve.EncodeResp(&f, seq, kvserve.StatusOverload, 0)
		b.respCh <- f
	}
}

func (b *backend) sender() {
	defer b.wg.Done()
	bw := bufio.NewWriterSize(b.conn, 1<<15)
	for f := range b.sendq {
		if _, err := bw.Write(f[:]); err != nil {
			b.die()
			// Drain so send never blocks post-death.
			for range b.sendq {
			}
			return
		}
		if len(b.sendq) == 0 {
			if err := bw.Flush(); err != nil {
				b.die()
				for range b.sendq {
				}
				return
			}
		}
	}
}

func (b *backend) reader() {
	defer b.wg.Done()
	br := bufio.NewReaderSize(b.conn, 1<<15)
	var f [kvserve.RespSize]byte
	for {
		if _, err := io.ReadFull(br, f[:]); err != nil {
			b.die()
			return
		}
		seq, _, _ := kvserve.DecodeResp(&f)
		b.mu.Lock()
		if b.dead {
			b.mu.Unlock()
			return
		}
		known := b.pending[seq]
		delete(b.pending, seq)
		b.mu.Unlock()
		if known {
			b.respCh <- f
		}
	}
}

// serveClient proxies one client connection: a reader routing request
// frames to per-node backends and a writer pumping response frames
// (from whichever backend answers first, order-free) back.
func (r *Router) serveClient(c net.Conn) {
	defer r.wg.Done()
	defer func() {
		c.Close()
		r.cmu.Lock()
		if r.conns != nil {
			delete(r.conns, c)
		}
		r.cmu.Unlock()
	}()

	respCh := make(chan [kvserve.RespSize]byte, 4096)
	var bwg sync.WaitGroup // backend sender/reader goroutines

	// Writer: pump respCh to the client; on client death keep draining
	// so backends never block.
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		bw := bufio.NewWriterSize(c, 1<<15)
		broken := false
		for f := range respCh {
			if broken {
				continue
			}
			if _, err := bw.Write(f[:]); err != nil {
				broken = true
				continue
			}
			if len(respCh) == 0 {
				if err := bw.Flush(); err != nil {
					broken = true
				}
			}
		}
	}()

	backends := make(map[string]*backend)
	getBackend := func(addr string) *backend {
		if b := backends[addr]; b != nil {
			b.mu.Lock()
			dead := b.dead
			b.mu.Unlock()
			if !dead {
				return b
			}
			close(b.sendq)
			delete(backends, addr)
		}
		conn, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
		if err != nil {
			return nil
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		b := &backend{
			addr: addr, conn: conn,
			sendq:   make(chan [kvserve.ReqSize]byte, 1024),
			pending: make(map[uint32]bool),
			respCh:  respCh,
			ct:      r.ctBackendRst,
			wg:      &bwg,
		}
		bwg.Add(2)
		go b.sender()
		go b.reader()
		backends[addr] = b
		return b
	}

	var req [kvserve.ReqSize]byte
	var rsp [kvserve.RespSize]byte
	answer := func(seq uint32, status byte, val uint64) bool {
		kvserve.EncodeResp(&rsp, seq, status, val)
		respCh <- rsp
		return true
	}
	for {
		if _, err := io.ReadFull(c, req[:]); err != nil {
			break
		}
		op, seq, key, _ := kvserve.DecodeReq(&req)
		r.ctRequests.Inc()
		t := r.topo.Load()
		if t == nil {
			// No epoch has cleared the routing fence yet.
			answer(seq, kvserve.StatusOverload, 0)
			continue
		}
		if op == kvserve.OpPing {
			// Answered locally — readiness means "the router can route
			// somewhere", not that a specific backend is up.
			st := kvserve.StatusOverload
			for i := range t.Nodes {
				if t.Nodes[i].State == StateAlive {
					st = kvserve.StatusOK
					break
				}
			}
			answer(seq, st, 0)
			continue
		}
		sa := t.Slots[SlotOf(key)]
		if sa.Primary < 0 {
			r.ctNoPrimary.Inc()
			answer(seq, kvserve.StatusOverload, 0)
			continue
		}
		b := getBackend(t.Nodes[sa.Primary].Addr)
		if b == nil || !b.send(seq, req) {
			r.ctNoPrimary.Inc()
			answer(seq, kvserve.StatusOverload, 0)
			continue
		}
	}

	for _, b := range backends {
		b.die()
		close(b.sendq)
	}
	bwg.Wait()
	close(respCh)
	wwg.Wait()
}

// ---------------------------------------------------------------------
// Router control HTTP.

// handleTopology serves the current topology — the smart-client
// (lpload -topo) bootstrap and refresh endpoint.
func (r *Router) handleTopology(w http.ResponseWriter, req *http.Request) {
	t := r.topo.Load()
	if t == nil {
		http.Error(w, "no routed topology yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(t)
}

// handleStatus serves a compact per-node view for humans and smoke
// scripts.
func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	type row struct {
		ID      string `json:"id"`
		Addr    string `json:"addr"`
		State   string `json:"state"`
		Miss    int    `json:"miss"`
		Primary int    `json:"primary_slots"`
	}
	nPrim := make([]int, len(r.cfg.Nodes))
	for s := range r.primary {
		if p := r.primary[s]; p >= 0 {
			nPrim[p]++
		}
	}
	out := struct {
		Epoch uint64 `json:"epoch"`
		Nodes []row  `json:"nodes"`
	}{Epoch: r.epoch}
	for i := range r.cfg.Nodes {
		out.Nodes = append(out.Nodes, row{
			ID: r.cfg.Nodes[i].ID, Addr: r.addrs[i],
			State: r.state[i], Miss: r.miss[i], Primary: nPrim[i],
		})
	}
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	fmt.Fprintln(w, `{"status":"serving","role":"router"}`)
}
