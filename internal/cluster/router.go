package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/obs"
)

// router.go is the cluster's head: a data-plane proxy speaking the
// kvserve wire protocol on the client side and fanning requests out to
// each key's slot primary, plus the control loop that owns the
// topology epoch — heartbeats, lease-expiry failover, and rejoin
// orchestration.
//
// The proxy is deliberately dumb about durability: it never acks
// anything itself (except pings and frames it could not route at all).
// A put's ack frame originates on the slot primary after the
// cluster-wide ack rule is satisfied and passes through untouched —
// as opaque bytes, not re-framed per op — so inserting the router
// changes where frames travel, never what an ack means. Sequence
// numbers are client-chosen and pass through too. The proxy keeps no
// per-request state: frames that cannot reach a backend at dial time
// are answered StatusOverload locally (nothing was in flight), while
// a backend dying mid-flight fails the client connection fast — the
// client's pending ops error, and a reconnecting client's retries land
// on the promoted primary once the lease flips the slot table.
//
// The control loop is a lease: DefaultLeaseMiss consecutive missed
// heartbeats declare a node dead, which (a) promotes its pair peers to
// primary for its slots and (b) tells those peers — via the topology
// push — to stop counting the dead node's acks and start charging its
// delta buffers. A node that heartbeats again after death re-enters as
// StateSyncing: the router drains every live peer's delta buffer into
// it (POST /cluster/catchup), and only when every buffer reads empty
// does the node return to StateAlive as a follower. Primaries never
// fail back; a rejoined node earns primaries again only if its peer
// dies later.

// RouterConfig configures StartRouter. Membership is static: the ring
// (and therefore every slot's pair) is fixed at start; liveness and
// roles within pairs are what the control loop varies.
type RouterConfig struct {
	// Addr is the client-facing data listen address (kvserve wire
	// protocol; port 0 picks a free port, read back from Router.Addr).
	Addr string
	// CtrlAddr is the router's HTTP address: /cluster/topology,
	// /cluster/status, /healthz, /metrics.
	CtrlAddr string
	// Nodes is the static membership: ID, data Addr, control Ctrl base
	// URL per node. State is ignored on input; Addr may be updated at
	// rejoin from the node's own /healthz report.
	Nodes []NodeInfo

	// VNodes and LoadFactor shape the ring (defaults DefaultVNodes,
	// DefaultLoadFactor).
	VNodes     int
	LoadFactor float64
	// Heartbeat is the probe period (default DefaultHeartbeat);
	// LeaseMiss consecutive failures expire a node's lease (default
	// DefaultLeaseMiss).
	Heartbeat time.Duration
	LeaseMiss int
	// DialTimeout bounds proxy dials to backends (default 1s).
	DialTimeout time.Duration
	// Registry receives the router's metrics (cluster_* series).
	Registry *obs.Registry
	// Tracer receives router_route span events for trace-carrying
	// frames and serves the router's /debug/trace drain. Nil gets a
	// private disabled tracer of 4096 events; enable it (obs.Tracer.
	// Enable) to record.
	Tracer *obs.Tracer
	// Logf, when non-nil, receives control-loop events (failovers,
	// rejoins, pushes).
	Logf func(format string, args ...any)
}

// Router is a running cluster head.
//
// Two topologies live here, and the gap between them is a correctness
// fence. r.adj is the *adjudicated* topology — what the control loop
// last decided (bumpLocked). r.topo is the *routed* topology — what
// the proxy and /cluster/topology clients act on. An epoch moves from
// adjudicated to routed only after every node it marks alive has
// confirmed applying it (push ack or healthz epoch report). Routing
// on an unconfirmed epoch loses acked puts: the proxy would send a
// put to a freshly promoted primary whose replicator still holds the
// old view, where that slot isn't its to replicate — Forward returns
// "not mine", the node acks at RF=1, and no delta entry is ever
// charged for the dead pair peer, so rejoin catch-up has nothing to
// replay. Until the fence commits, clients ride the previous routed
// epoch (requests to the dead primary bounce as Overload and retry),
// which extends the failover blip by one push round-trip but never
// un-promises an ack.
type Router struct {
	cfg   RouterConfig
	pairs [][2]int
	topo  atomic.Pointer[Topology]

	ln   net.Listener
	hsrv *http.Server
	hcl  *http.Client

	mu        sync.Mutex // control-loop state below
	primary   []int      // per slot: current primary node index, -1 when pair fully dead
	state     []string   // per node: StateAlive/StateDead/StateSyncing
	miss      []int      // per node: consecutive missed heartbeats
	addrs     []string   // per node: current data address
	epoch     uint64
	joining   []bool    // per node: rejoin goroutine in flight
	adj       *Topology // adjudicated but possibly not yet routed
	confirmed []uint64  // per node: highest epoch it confirmed applying

	quit chan struct{}
	wg   sync.WaitGroup

	cmu   sync.Mutex // accepted proxy connections, closed by Close
	conns map[net.Conn]struct{}

	reg          *obs.Registry
	tr           *obs.Tracer
	ctRequests   *obs.Counter // cluster_router_requests_total
	ctNoPrimary  *obs.Counter // cluster_router_noprimary_total
	ctBackendRst *obs.Counter // cluster_router_backend_resets_total
	ctProxyBytes *obs.Counter // router_proxy_bytes_total
	ctFailovers  *obs.Counter // cluster_failovers_total
	ctRejoins    *obs.Counter // cluster_rejoins_total
	ctPushes     *obs.Counter // cluster_topology_pushes_total
	gEpoch       *obs.Gauge   // cluster_epoch
	gAlive       *obs.Gauge   // cluster_nodes_alive
	gPrimary     []*obs.Gauge // cluster_slots_primary{node=...}
	gFollower    []*obs.Gauge // cluster_slots_follower{node=...}
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.CtrlAddr == "" {
		c.CtrlAddr = "127.0.0.1:0"
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.LoadFactor < 1 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.LeaseMiss <= 0 {
		c.LeaseMiss = DefaultLeaseMiss
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(4096)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// StartRouter builds the ring, pushes the initial topology to every
// node (nodes unreachable within the grace window start dead and fail
// over immediately), and starts the proxy and the control loop.
func StartRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: StartRouter needs at least one node")
	}
	ids := make([]string, len(cfg.Nodes))
	for i := range cfg.Nodes {
		ids[i] = cfg.Nodes[i].ID
	}
	pairs, err := BuildPairs(ids, cfg.VNodes, cfg.LoadFactor)
	if err != nil {
		return nil, err
	}

	r := &Router{
		cfg:       cfg,
		pairs:     pairs,
		hcl:       &http.Client{Timeout: 4 * cfg.Heartbeat},
		primary:   make([]int, NumSlots),
		state:     make([]string, len(cfg.Nodes)),
		miss:      make([]int, len(cfg.Nodes)),
		addrs:     make([]string, len(cfg.Nodes)),
		joining:   make([]bool, len(cfg.Nodes)),
		confirmed: make([]uint64, len(cfg.Nodes)),
		quit:      make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		reg:       cfg.Registry,
		tr:        cfg.Tracer,
	}
	root := cfg.Registry.Scope()
	r.ctRequests = root.Counter("cluster_router_requests_total")
	r.ctNoPrimary = root.Counter("cluster_router_noprimary_total")
	r.ctBackendRst = root.Counter("cluster_router_backend_resets_total")
	r.ctProxyBytes = root.Counter("router_proxy_bytes_total")
	r.ctFailovers = root.Counter("cluster_failovers_total")
	r.ctRejoins = root.Counter("cluster_rejoins_total")
	r.ctPushes = root.Counter("cluster_topology_pushes_total")
	r.gEpoch = root.Gauge("cluster_epoch")
	r.gAlive = root.Gauge("cluster_nodes_alive")
	for i := range cfg.Nodes {
		sc := cfg.Registry.Scope("node", cfg.Nodes[i].ID)
		r.gPrimary = append(r.gPrimary, sc.Gauge("cluster_slots_primary"))
		r.gFollower = append(r.gFollower, sc.Gauge("cluster_slots_follower"))
	}
	for s := range r.primary {
		r.primary[s] = pairs[s][0]
	}
	for i := range r.state {
		r.state[i] = StateAlive
		r.addrs[i] = cfg.Nodes[i].Addr
	}

	// Initial push: every node must hold epoch 1 before the proxy
	// serves, or a put acked pre-topology would be invisible to the
	// ack rule (local-only, no delta charge). Nodes that stay
	// unreachable through the grace window start dead instead.
	r.mu.Lock()
	r.bumpLocked()
	t := r.adj
	r.mu.Unlock()
	deadline := time.Now().Add(time.Duration(cfg.LeaseMiss) * cfg.Heartbeat * 4)
	pending := make(map[int]bool, len(cfg.Nodes))
	for i := range cfg.Nodes {
		pending[i] = true
	}
	for len(pending) > 0 && time.Now().Before(deadline) {
		for i := range pending {
			if r.pushTo(i, t) == nil {
				r.mu.Lock()
				r.confirmLocked(i, t.Epoch)
				r.mu.Unlock()
				delete(pending, i)
			}
		}
		if len(pending) > 0 {
			time.Sleep(cfg.Heartbeat)
		}
	}
	if len(pending) > 0 {
		r.mu.Lock()
		for i := range pending {
			cfg.Logf("cluster: node %s unreachable at start, beginning dead", cfg.Nodes[i].ID)
			r.failoverLocked(i)
		}
		r.mu.Unlock()
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: router listen %s: %w", cfg.Addr, err)
	}
	r.ln = ln
	hln, err := net.Listen("tcp", cfg.CtrlAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: router control listen %s: %w", cfg.CtrlAddr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/cluster/topology", http.HandlerFunc(r.handleTopology))
	mux.Handle("/cluster/status", http.HandlerFunc(r.handleStatus))
	mux.Handle("/healthz", http.HandlerFunc(r.handleHealthz))
	mux.Handle("/metrics", obs.MetricsHandler(cfg.Registry))
	mux.Handle("/debug/trace", obs.TraceHandler(r.tr))
	obs.RegisterPprof(mux)
	r.hsrv = &http.Server{Handler: mux}
	go r.hsrv.Serve(hln)
	r.hsrv.Addr = hln.Addr().String()

	r.wg.Add(2)
	go r.acceptLoop()
	go r.controlLoop()
	return r, nil
}

// Addr is the bound data-plane address clients dial.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// CtrlAddr is the bound control-plane HTTP address.
func (r *Router) CtrlAddr() string { return r.hsrv.Addr }

// Topology returns the routed topology, falling back to the latest
// adjudicated epoch before any epoch has cleared the routing fence.
// (The /cluster/topology endpoint never serves the fallback: clients
// may only route on confirmed epochs.)
func (r *Router) Topology() *Topology {
	if t := r.topo.Load(); t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.adj
}

// Metrics exposes the router's registry.
func (r *Router) Metrics() *obs.Registry { return r.reg }

// Tracer exposes the router's tracer (enable it to record
// router_route span events; /debug/trace drains it).
func (r *Router) Tracer() *obs.Tracer { return r.tr }

// Close stops the proxy and the control loop. Accepted client
// connections are closed too — an idle client must not be able to
// wedge Close in wg.Wait behind a blocked serveClient read.
func (r *Router) Close() error {
	close(r.quit)
	r.ln.Close()
	err := r.hsrv.Close()
	r.cmu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.conns = nil
	r.cmu.Unlock()
	r.wg.Wait()
	return err
}

// ---------------------------------------------------------------------
// Topology derivation. r.mu held for all *Locked methods.

// bumpLocked rebuilds the published Topology from (pairs, primary,
// state, addrs) at a fresh epoch and updates the ownership gauges.
func (r *Router) bumpLocked() {
	r.epoch++
	t := &Topology{
		Epoch: r.epoch,
		Nodes: make([]NodeInfo, len(r.cfg.Nodes)),
		Slots: make([]SlotAssign, NumSlots),
	}
	alive := 0
	for i := range t.Nodes {
		t.Nodes[i] = r.cfg.Nodes[i]
		t.Nodes[i].Addr = r.addrs[i]
		t.Nodes[i].State = r.state[i]
		if r.state[i] == StateAlive {
			alive++
		}
	}
	nPrim := make([]int, len(t.Nodes))
	nFoll := make([]int, len(t.Nodes))
	for s := 0; s < NumSlots; s++ {
		p := r.primary[s]
		pair := -1
		if p >= 0 {
			if other := r.otherMember(s, p); other >= 0 {
				pair = other
			}
			nPrim[p]++
		}
		foll := -1
		if pair >= 0 && r.state[pair] == StateAlive {
			foll = pair
			nFoll[foll]++
		}
		t.Slots[s] = SlotAssign{Primary: p, Follower: foll, Pair: pair}
	}
	r.adj = t
	r.maybePublishLocked()
	r.gEpoch.Set(int64(r.epoch))
	r.gAlive.Set(int64(alive))
	for i := range t.Nodes {
		r.gPrimary[i].Set(int64(nPrim[i]))
		r.gFollower[i].Set(int64(nFoll[i]))
	}
}

// maybePublishLocked routes the adjudicated epoch once every node it
// marks alive has confirmed applying it — the fence described on
// Router. Publishing early would route puts to primaries that do not
// yet know they are primaries, which acks without charging a delta.
func (r *Router) maybePublishLocked() {
	t := r.adj
	if t == nil {
		return
	}
	if cur := r.topo.Load(); cur != nil && cur.Epoch >= t.Epoch {
		return
	}
	for i := range t.Nodes {
		if t.Nodes[i].State == StateAlive && r.confirmed[i] < t.Epoch {
			return
		}
	}
	r.topo.Store(t)
	r.cfg.Logf("cluster: epoch %d confirmed by all live nodes, routing live", t.Epoch)
}

// confirmLocked records that node i holds epoch (from a push ack or a
// healthz report) and publishes the adjudicated topology if this was
// the last confirmation it was waiting on.
func (r *Router) confirmLocked(i int, epoch uint64) {
	if epoch > r.confirmed[i] {
		r.confirmed[i] = epoch
		r.maybePublishLocked()
	}
}

// confirmPush pushes t to node i and records the confirmation on
// success. Failures are dropped: the heartbeat loop re-pushes any
// node whose reported epoch lags, and the node's healthz epoch report
// confirms applies whose HTTP ack was lost to a timeout.
func (r *Router) confirmPush(i int, t *Topology) {
	if r.pushTo(i, t) != nil {
		return
	}
	r.mu.Lock()
	r.confirmLocked(i, t.Epoch)
	r.mu.Unlock()
}

// otherMember returns the pair member of slot s that is not node, -1
// if the pair has no second member.
func (r *Router) otherMember(s, node int) int {
	if r.pairs[s][0] == node {
		return r.pairs[s][1]
	}
	return r.pairs[s][0]
}

// failoverLocked declares node i dead and promotes its pair peers.
func (r *Router) failoverLocked(i int) {
	r.state[i] = StateDead
	promoted, orphaned := 0, 0
	for s := 0; s < NumSlots; s++ {
		if r.primary[s] != i {
			continue
		}
		other := r.otherMember(s, i)
		if other >= 0 && r.state[other] == StateAlive {
			r.primary[s] = other
			promoted++
		} else {
			r.primary[s] = -1
			orphaned++
		}
	}
	r.ctFailovers.Inc()
	r.bumpLocked()
	r.cfg.Logf("cluster: FAILOVER node=%s epoch=%d promoted=%d orphaned=%d",
		r.cfg.Nodes[i].ID, r.epoch, promoted, orphaned)
	r.pushAllLocked()
}

// adoptLocked moves a heartbeating-again dead node to syncing and
// kicks off the catch-up drain.
func (r *Router) adoptLocked(i int, h Health) {
	r.state[i] = StateSyncing
	r.miss[i] = 0
	if h.Addr != "" {
		r.addrs[i] = h.Addr
	}
	r.bumpLocked()
	r.cfg.Logf("cluster: REJOIN node=%s epoch=%d addr=%s (syncing)", r.cfg.Nodes[i].ID, r.epoch, r.addrs[i])
	r.pushAllLocked()
	if !r.joining[i] {
		r.joining[i] = true
		r.wg.Add(1)
		go r.rejoin(i)
	}
}

// pushAllLocked fans the adjudicated topology out to every reachable
// node; each successful push feeds the routing fence.
func (r *Router) pushAllLocked() {
	t := r.adj
	for i := range r.cfg.Nodes {
		if r.state[i] == StateDead {
			continue
		}
		go r.confirmPush(i, t)
	}
}

// pushTo POSTs t to node i's control endpoint.
func (r *Router) pushTo(i int, t *Topology) error {
	body, _ := json.Marshal(t)
	resp, err := r.hcl.Post(r.cfg.Nodes[i].Ctrl+"/cluster/topology", "application/json",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: push to %s: HTTP %d", r.cfg.Nodes[i].ID, resp.StatusCode)
	}
	r.ctPushes.Inc()
	return nil
}

// rejoin drains every live peer's delta buffer for node i, then
// reinstates i as a follower (and primary of any orphaned slots it is
// a member of). Runs until the drain converges or i dies again.
func (r *Router) rejoin(i int) {
	defer r.wg.Done()
	id := r.cfg.Nodes[i].ID
	tick := time.NewTicker(r.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			r.mu.Lock()
			r.joining[i] = false
			r.mu.Unlock()
			return
		case <-tick.C:
		}
		r.mu.Lock()
		if r.state[i] != StateSyncing {
			r.joining[i] = false
			r.mu.Unlock()
			return
		}
		peers := make([]int, 0, len(r.cfg.Nodes))
		for j := range r.cfg.Nodes {
			if j != i && r.state[j] == StateAlive {
				peers = append(peers, j)
			}
		}
		r.mu.Unlock()

		remaining := 0
		failed := false
		for _, j := range peers {
			rem, err := r.catchupOn(j, id)
			if err != nil {
				failed = true
				continue
			}
			remaining += rem
		}
		if failed || remaining > 0 {
			continue
		}

		r.mu.Lock()
		if r.state[i] == StateSyncing {
			r.state[i] = StateAlive
			reclaimed := 0
			for s := 0; s < NumSlots; s++ {
				if r.primary[s] == -1 && (r.pairs[s][0] == i || r.pairs[s][1] == i) {
					r.primary[s] = i
					reclaimed++
				}
			}
			r.ctRejoins.Inc()
			r.bumpLocked()
			r.cfg.Logf("cluster: REJOINED node=%s epoch=%d reclaimed=%d (follower)", id, r.epoch, reclaimed)
			r.pushAllLocked()
		}
		r.joining[i] = false
		r.mu.Unlock()
		return
	}
}

// catchupOn asks node j to drain its delta buffer for peer id;
// returns the remaining (re-buffered) count.
func (r *Router) catchupOn(j int, id string) (int, error) {
	resp, err := r.hcl.Post(r.cfg.Nodes[j].Ctrl+"/cluster/catchup?peer="+id, "", nil)
	if err != nil {
		return 0, err
	}
	defer func() { io.Copy(io.Discard, resp.Body); resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: catchup on %s: HTTP %d", r.cfg.Nodes[j].ID, resp.StatusCode)
	}
	var out struct {
		Replayed  int `json:"replayed"`
		Remaining int `json:"remaining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Remaining, nil
}

// ---------------------------------------------------------------------
// Control loop: heartbeats and lease expiry.

func (r *Router) controlLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
			r.probeAll()
		}
	}
}

func (r *Router) probeAll() {
	type probe struct {
		ok bool
		h  Health
	}
	results := make([]probe, len(r.cfg.Nodes))
	var wg sync.WaitGroup
	for i := range r.cfg.Nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := r.hcl.Get(r.cfg.Nodes[i].Ctrl + "/healthz")
			if err != nil {
				return
			}
			defer func() { io.Copy(io.Discard, resp.Body); resp.Body.Close() }()
			var h Health
			if json.NewDecoder(resp.Body).Decode(&h) != nil {
				return
			}
			results[i] = probe{ok: resp.StatusCode == http.StatusOK && h.Status == "serving", h: h}
		}(i)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.epoch
	for i := range results {
		switch {
		case results[i].ok:
			switch r.state[i] {
			case StateDead:
				r.adoptLocked(i, results[i].h)
			default:
				r.miss[i] = 0
				r.confirmLocked(i, results[i].h.Epoch)
				if results[i].h.Epoch < cur {
					go r.confirmPush(i, r.adj)
				}
			}
		default:
			switch r.state[i] {
			case StateAlive:
				r.miss[i]++
				if r.miss[i] >= r.cfg.LeaseMiss {
					r.failoverLocked(i)
				}
			case StateSyncing:
				r.miss[i]++
				if r.miss[i] >= r.cfg.LeaseMiss {
					r.state[i] = StateDead
					r.bumpLocked()
					r.cfg.Logf("cluster: node %s died again while syncing (epoch %d)", r.cfg.Nodes[i].ID, r.epoch)
					r.pushAllLocked()
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Data-plane proxy.

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		r.cmu.Lock()
		if r.conns == nil {
			c.Close()
			r.cmu.Unlock()
			return
		}
		r.conns[c] = struct{}{}
		r.cmu.Unlock()
		r.wg.Add(1)
		go r.serveClient(c)
	}
}

// proxyClient is the client half of one proxied connection: the socket
// plus the write mutex that interleaves whole response frames from
// every backend relay and the local answer path.
type proxyClient struct {
	c   net.Conn
	wmu sync.Mutex
}

// write sends one whole-frame run to the client under the write mutex.
// Dead clients absorb writes silently — the serve loop notices on its
// own read path and tears everything down.
func (pc *proxyClient) write(p []byte) {
	pc.wmu.Lock()
	_, _ = pc.c.Write(p)
	pc.wmu.Unlock()
}

// pbackend is one proxy→node connection, owned by one client conn. The
// client's serve loop is its only writer (synchronous vectored writes,
// so the read buffer the frames point into is reusable the moment the
// write returns); a relay goroutine is its only reader, copying
// whole-frame response runs straight to the client socket. There is no
// per-request state: requests are opaque bytes in flight between two
// sockets.
type pbackend struct {
	addr  string
	conn  net.Conn
	pc    *proxyClient
	dead  atomic.Bool
	bytes *obs.Counter
	rst   *obs.Counter
	wg    *sync.WaitGroup
}

// die poisons the backend mid-flight and fails the client connection
// fast: with no per-request table there is nothing to answer the
// in-flight requests with, so the honest signal is a connection reset —
// the client's pending ops fail, and a reconnecting client retries
// against the post-failover slot table. Dial-time failures never reach
// here; they are answered Overload locally with nothing in flight.
func (b *pbackend) die() {
	if !b.dead.CompareAndSwap(false, true) {
		return
	}
	b.conn.Close()
	b.pc.c.Close()
	b.rst.Inc()
}

// relay pumps response bytes node→client: large reads, whole frames
// out, the (rare) partial frame tail carried to the next read. No
// parsing — a response's only routing is "back to the client".
func (b *pbackend) relay() {
	defer b.wg.Done()
	buf := make([]byte, 1<<16)
	fill := 0
	for {
		n, err := b.conn.Read(buf[fill:])
		if n > 0 {
			fill += n
			if whole := fill - fill%kvserve.RespSize; whole > 0 {
				b.pc.write(buf[:whole])
				b.bytes.Add(uint64(whole))
				fill = copy(buf, buf[whole:fill])
			}
		}
		if err != nil {
			b.die()
			return
		}
	}
}

// proxySeg is one planned run of consecutive request frames sharing a
// destination: node ≥ 0 routes buf[off:end] to that node's backend,
// node < 0 answers each frame locally (ping, no topology, headless
// slot).
type proxySeg struct {
	node     int
	off, end int
}

// planChunk partitions a run of whole request frames into destination
// segments, appending to segs (reused by the caller — the function
// allocates nothing when capacity suffices). Routing parses only the
// op and key of each header; payload bytes are never touched. A nil
// topology plans everything local. Pings and hellos are always local;
// an OpTraceCtx prefix routes wherever its successor frame routes
// (the caller holds a chunk-trailing prefix back, so the successor is
// in this chunk), which keeps the pair consecutive in one segment —
// fused on the backend's wire exactly as the client sent them.
func planChunk(chunk []byte, t *Topology, segs []proxySeg) []proxySeg {
	routeKey := func(off int) int {
		key := binary.LittleEndian.Uint64(chunk[off+5:])
		if sa := t.Slots[SlotOf(key)]; sa.Primary >= 0 {
			return sa.Primary
		}
		return -1
	}
	for off := 0; off < len(chunk); off += kvserve.ReqSize {
		node := -1
		if t != nil {
			switch op := chunk[off]; op {
			case kvserve.OpPing, kvserve.OpHello:
				// Answered locally: a hello's key field is feature bits,
				// not a routing key, and the router grants for itself.
			case kvserve.OpTraceCtx:
				if nxt := off + kvserve.ReqSize; nxt < len(chunk) {
					op2 := chunk[nxt]
					if op2 != kvserve.OpPing && op2 != kvserve.OpHello && op2 != kvserve.OpTraceCtx {
						node = routeKey(nxt)
					}
				}
			default:
				node = routeKey(off)
			}
		}
		if n := len(segs); n > 0 && segs[n-1].node == node && segs[n-1].end == off {
			segs[n-1].end = off + kvserve.ReqSize
		} else {
			segs = append(segs, proxySeg{node: node, off: off, end: off + kvserve.ReqSize})
		}
	}
	return segs
}

// serveClient proxies one client connection zero-copy: read a chunk of
// frames, plan destination segments (parsing headers only), then ship
// each backend's segments as one vectored write pointing into the read
// buffer and answer the rest locally. Backend responses relay to the
// client as opaque whole-frame runs. Steady state allocates nothing
// and spends two syscalls per chunk per direction, not per op.
func (r *Router) serveClient(c net.Conn) {
	defer r.wg.Done()
	pc := &proxyClient{c: c}
	var bwg sync.WaitGroup // backend relay goroutines
	backends := make(map[string]*pbackend)
	defer func() {
		for _, b := range backends {
			b.die()
		}
		c.Close()
		bwg.Wait()
		r.cmu.Lock()
		if r.conns != nil {
			delete(r.conns, c)
		}
		r.cmu.Unlock()
	}()

	getBackend := func(addr string) *pbackend {
		if b := backends[addr]; b != nil {
			if !b.dead.Load() {
				return b
			}
			delete(backends, addr)
		}
		conn, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
		if err != nil {
			return nil
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		b := &pbackend{
			addr: addr, conn: conn, pc: pc,
			bytes: r.ctProxyBytes, rst: r.ctBackendRst,
			wg: &bwg,
		}
		bwg.Add(1)
		go b.relay()
		backends[addr] = b
		return b
	}

	buf := make([]byte, 1<<16)
	segs := make([]proxySeg, 0, 64)
	iov := make(net.Buffers, 0, 64)
	ans := make([]byte, 0, 64*kvserve.RespSize)
	fill := 0
	for {
		n, err := c.Read(buf[fill:])
		if err != nil && n <= 0 {
			return
		}
		fill += n
		whole := fill - fill%kvserve.ReqSize
		// A chunk-trailing OpTraceCtx prefix is held back for the next
		// round: its successor frame decides where it routes, and the
		// client wrote the pair in one send, so the successor is already
		// in flight.
		if whole >= kvserve.ReqSize && buf[whole-kvserve.ReqSize] == kvserve.OpTraceCtx {
			whole -= kvserve.ReqSize
		}
		if whole == 0 {
			continue
		}
		t := r.topo.Load()
		r.ctRequests.Add(uint64(whole / kvserve.ReqSize))
		if r.tr.Enabled() {
			ts := time.Now().UnixNano()
			for off := 0; off+kvserve.ReqSize < whole; off += kvserve.ReqSize {
				if buf[off] == kvserve.OpTraceCtx {
					tid := binary.LittleEndian.Uint64(buf[off+5:])
					key := binary.LittleEndian.Uint64(buf[off+kvserve.ReqSize+5:])
					r.tr.Record(obs.EvRouterRoute, -1, ts, tid, key)
				}
			}
		}
		segs = planChunk(buf[:whole], t, segs[:0])
		for si := range segs {
			node := segs[si].node
			if node < 0 {
				continue
			}
			// Gather every segment bound for this node into one writev.
			iov = iov[:0]
			for sj := si; sj < len(segs); sj++ {
				if segs[sj].node == node {
					iov = append(iov, buf[segs[sj].off:segs[sj].end])
					if sj > si {
						segs[sj].node = -2 // claimed; skip when the outer loop arrives
					}
				}
			}
			var nb int64
			b := getBackend(t.Nodes[node].Addr)
			if b != nil {
				var werr error
				if nb, werr = iov.WriteTo(b.conn); werr != nil {
					b.die()
					return
				}
				r.ctProxyBytes.Add(uint64(nb))
				continue
			}
			// Dial failed: nothing in flight for these frames, so answer
			// them Overload locally — the client retries, and by then
			// the slot table has moved on. (iov survived WriteTo-less.)
			ans = ans[:0]
			for _, run := range iov {
				for off := 0; off < len(run); off += kvserve.ReqSize {
					if run[off] == kvserve.OpTraceCtx {
						continue // silent prefix: never answered
					}
					seq := binary.LittleEndian.Uint32(run[off+1:])
					r.ctNoPrimary.Inc()
					ans = appendProxyResp(ans, seq, kvserve.StatusOverload, 0)
				}
			}
			pc.write(ans)
		}
		// Local segments: pings and unroutable frames.
		ans = ans[:0]
		for _, sg := range segs {
			if sg.node != -1 {
				continue
			}
			for off := sg.off; off < sg.end; off += kvserve.ReqSize {
				op := buf[off]
				if op == kvserve.OpTraceCtx {
					// A prefix whose successor answered locally: drop it
					// silently — forwarding it anywhere would arm a trace
					// on an unrelated frame.
					continue
				}
				seq := binary.LittleEndian.Uint32(buf[off+1:])
				if op == kvserve.OpHello && t != nil {
					// The router is the client's protocol peer, so it
					// answers the handshake itself: it speaks the trace
					// extension (prefix fusion above), so it grants
					// FeatTrace regardless of backend vintage — backends
					// accept OpTraceCtx unconditionally.
					feats := binary.LittleEndian.Uint64(buf[off+5:])
					ans = appendProxyResp(ans, seq, kvserve.StatusOK, feats&kvserve.FeatTrace)
					continue
				}
				st := kvserve.StatusOverload
				if op == kvserve.OpPing && t != nil {
					// Answered locally — readiness means "the router can
					// route somewhere", not that a specific backend is up.
					for i := range t.Nodes {
						if t.Nodes[i].State == StateAlive {
							st = kvserve.StatusOK
							break
						}
					}
				} else if op != kvserve.OpPing {
					r.ctNoPrimary.Inc()
				}
				ans = appendProxyResp(ans, seq, st, 0)
			}
		}
		if len(ans) > 0 {
			pc.write(ans)
		}
		fill = copy(buf, buf[whole:fill])
		if err != nil {
			return
		}
	}
}

// appendProxyResp appends one locally fabricated response frame.
func appendProxyResp(b []byte, seq uint32, status byte, val uint64) []byte {
	var f [kvserve.RespSize]byte
	kvserve.EncodeResp(&f, seq, status, val)
	return append(b, f[:]...)
}

// ---------------------------------------------------------------------
// Router control HTTP.

// handleTopology serves the current topology — the smart-client
// (lpload -topo) bootstrap and refresh endpoint.
func (r *Router) handleTopology(w http.ResponseWriter, req *http.Request) {
	t := r.topo.Load()
	if t == nil {
		http.Error(w, "no routed topology yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(t)
}

// handleStatus serves a compact per-node view for humans and smoke
// scripts.
func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	type row struct {
		ID      string `json:"id"`
		Addr    string `json:"addr"`
		State   string `json:"state"`
		Miss    int    `json:"miss"`
		Primary int    `json:"primary_slots"`
	}
	nPrim := make([]int, len(r.cfg.Nodes))
	for s := range r.primary {
		if p := r.primary[s]; p >= 0 {
			nPrim[p]++
		}
	}
	out := struct {
		Epoch uint64 `json:"epoch"`
		Nodes []row  `json:"nodes"`
	}{Epoch: r.epoch}
	for i := range r.cfg.Nodes {
		out.Nodes = append(out.Nodes, row{
			ID: r.cfg.Nodes[i].ID, Addr: r.addrs[i],
			State: r.state[i], Miss: r.miss[i], Primary: nPrim[i],
		})
	}
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	fmt.Fprintln(w, `{"status":"serving","role":"router"}`)
}
