// Package cluster federates N kvserve nodes into one service: a
// consistent-hash routing layer, primary→follower replication whose
// ack rule extends Lazy Persistency's batch-checksum durability
// boundary across the network, and heartbeat-driven crash failover
// that leans on each node's journal-replay recovery to rejoin a
// restarted node without stopping the cluster.
//
// The key space is cut into 1<<SlotBits slots. A bounded-load
// consistent-hash ring over the static membership (ring.go) assigns
// each slot a stable *pair* of nodes; within a pair, role is dynamic
// epoch state owned by the router: one member is the slot's primary
// (serves gets, accepts client puts) and the other its follower
// (receives forwarded puts). Roles flip only when a primary dies —
// the follower is promoted. Role views converge per node, so a node
// cannot trust its own role to distinguish "client put, forward it"
// from "forwarded put, just apply it": instead every pair member
// forwards client puts (OpPut) to the slot's other static member,
// and forwarded copies travel as OpReplPut frames, which are applied
// but never re-forwarded — replication echo is impossible by opcode,
// not by role agreement.
//
// The durability contract, cluster-wide: a put is acked to the client
// only after (a) the primary's LP group commit made the put's batch
// durable in the primary's backing file AND (b) the follower reported
// its own ack, which the follower only sends after its own group
// commit (internal/kvserve Replicator hook). Acked therefore implies
// durable on both pair members, so a SIGKILL of either member loses
// no acked put: the survivor is promoted and keeps serving, and the
// killed member's restart recovers its own acked prefix from its
// journal (lpstore.RecoverLP) and receives the puts it missed through
// delta catch-up (repl.go) — the primary buffers, per downed peer,
// the latest value of every key it acked while the peer was away, and
// replays the buffer through the same ordered forwarding session
// before live forwarding resumes.
//
// During a follower outage the primary keeps acking at replication
// factor 1 rather than stalling writes — the ack rule is lease-gated,
// in the spirit of Ben-David et al.'s delay-free persistence under
// faults: the router's lease decides when the follower stops counting,
// and every put acked degraded is in the delta buffer, so pair
// equality is restored at rejoin. Losing both pair members before the
// catch-up completes is outside the replication factor and may lose
// the degraded-window puts (not the ones acked while both were up).
package cluster

import "time"

// SlotBits sizes the routing table: the key space is partitioned into
// 1<<SlotBits contiguous hash ranges ("slots"), each owned by one
// node pair. 1024 slots over a handful of nodes keeps per-slot load
// small while the table (3 ints per slot) stays push-friendly.
const SlotBits = 10

// NumSlots is the routing table length.
const NumSlots = 1 << SlotBits

// SlotOf routes a key to its slot: the top SlotBits of the same
// avalanche mix kvserve uses for shard routing, taken from the bottom
// bits upward so cluster slots and in-node shard placement (top bits)
// stay decorrelated.
func SlotOf(key uint64) int {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x & (NumSlots - 1))
}

// Node states as the router publishes them.
const (
	// StateAlive: heartbeats healthy, node is serving and (for pair
	// followers) caught up.
	StateAlive = "alive"
	// StateDead: the node's lease expired; its primary slots failed
	// over to the pair peers and forwards to it buffer as deltas.
	StateDead = "dead"
	// StateSyncing: the node is serving again after a restart and the
	// router is draining delta catch-up into it; it resumes as a
	// follower once the drain completes.
	StateSyncing = "syncing"
)

// NodeInfo is one member of the cluster as carried in a Topology.
type NodeInfo struct {
	// ID is the stable node identity (lpserve -node-id); ring
	// placement hashes the ID, so a restarted node keeps its slots.
	ID string `json:"id"`
	// Addr is the node's data-plane TCP address (kvserve protocol).
	Addr string `json:"addr"`
	// Ctrl is the node's control-plane base URL (the lpserve metrics
	// mux): /healthz, /cluster/topology, /cluster/catchup.
	Ctrl string `json:"ctrl"`
	// State is one of StateAlive, StateDead, StateSyncing.
	State string `json:"state"`
}

// SlotAssign is one slot's routing entry. Indices point into
// Topology.Nodes; -1 means none.
type SlotAssign struct {
	// Primary serves the slot's gets and accepts its puts. -1 only
	// when every pair member is dead (the router answers Overload).
	Primary int `json:"p"`
	// Follower receives forwarded puts and must ack before the
	// primary acks the client; -1 while the pair peer is dead or
	// syncing (the primary then runs at RF=1 and buffers deltas).
	Follower int `json:"f"`
	// Pair is the slot's stable second replica from the ring — equal
	// to Follower when that peer is alive, and still set while it is
	// dead so the primary knows whose delta buffer to charge. -1 on
	// single-node clusters.
	Pair int `json:"r"`
}

// Topology is the routing epoch the router owns and pushes: node
// membership with liveness states and the slot table. Nodes apply it
// atomically (Replicator.ApplyTopology) and report the epoch they
// hold in /healthz, which is how the router knows who needs a re-push.
type Topology struct {
	Epoch uint64       `json:"epoch"`
	Nodes []NodeInfo   `json:"nodes"`
	Slots []SlotAssign `json:"slots"`
}

// NodeIndex returns the index of id in t.Nodes, or -1.
func (t *Topology) NodeIndex(id string) int {
	for i := range t.Nodes {
		if t.Nodes[i].ID == id {
			return i
		}
	}
	return -1
}

// PrimaryAddr returns the data address serving key's slot, or "" when
// the slot has no live primary.
func (t *Topology) PrimaryAddr(key uint64) string {
	sa := t.Slots[SlotOf(key)]
	if sa.Primary < 0 {
		return ""
	}
	return t.Nodes[sa.Primary].Addr
}

// Defaults shared by the router and node wrappers.
const (
	DefaultVNodes     = 64
	DefaultLoadFactor = 1.25
	DefaultHeartbeat  = 50 * time.Millisecond
	DefaultLeaseMiss  = 6
	// DefaultReplWindow is counted in replication batches (OpReplBatch
	// frames), not puts: one sealed group-commit batch consumes at
	// most one slot per destination peer.
	DefaultReplWindow = 256
)
