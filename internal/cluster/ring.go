package cluster

import (
	"fmt"
	"sort"
)

// ring.go builds the stable slot→pair table: a consistent-hash ring
// with virtual nodes and bounded load, in the "consistent hashing with
// bounded loads" style — the clockwise walk skips a node once it owns
// its fair share times the load factor, so the vnode lottery cannot
// leave one node owning half the key space. The table is a pure
// function of the sorted member IDs, so every component (router, smart
// clients, tests) derives the identical assignment independently, and
// a restarted node re-enters exactly the slots it held before.
//
// Pairs are computed once over the full static membership and do not
// move when a node dies: failover flips roles inside the pair (the
// router's job) instead of reshuffling data onto a third node. That
// keeps the recovery story honest — a rejoining node owns the same
// slots, so its journal-replayed state plus the pair peer's delta
// buffer is exactly its pre-crash responsibility set.

// fnv1a64 hashes s with FNV-1a; good enough avalanche for vnode
// placement and dependency-free.
func fnv1a64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

type vnode struct {
	hash uint64
	node int // index into the sorted id list
}

// BuildPairs assigns each of NumSlots slots a (first, second) replica
// pair over the given node IDs: vnodes virtual points per node on a
// 64-bit ring, bounded-load capacity ceil(loadFactor*NumSlots/len(ids))
// per node per role. With one node, second is -1 everywhere. The
// returned indices refer to ids sorted ascending (sort them first or
// use the returned order from SortedIDs); BuildPairs sorts internally
// and maps back, so the caller's id order is respected.
func BuildPairs(ids []string, vnodes int, loadFactor float64) ([][2]int, error) {
	n := len(ids)
	if n == 0 {
		return nil, fmt.Errorf("cluster: BuildPairs needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if loadFactor < 1 {
		loadFactor = DefaultLoadFactor
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if a == b {
				return nil, fmt.Errorf("cluster: duplicate node id %q", a)
			}
		}
	}
	// Hash-determinism must not depend on the caller's id order: place
	// vnodes from a sorted view, then translate back.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ids[order[a]] < ids[order[b]] })

	ring := make([]vnode, 0, n*vnodes)
	for _, orig := range order {
		for v := 0; v < vnodes; v++ {
			h := fnv1a64(fmt.Sprintf("%s#%d", ids[orig], v))
			// One extra avalanche round: FNV clusters on short suffixes.
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			h ^= h >> 33
			ring = append(ring, vnode{hash: h, node: orig})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].hash != ring[b].hash {
			return ring[a].hash < ring[b].hash
		}
		return ids[ring[a].node] < ids[ring[b].node]
	})

	cap1 := int(loadFactor*float64(NumSlots)/float64(n)) + 1
	load1 := make([]int, n) // slots held as first replica
	load2 := make([]int, n) // slots held as second replica
	pairs := make([][2]int, NumSlots)
	for s := 0; s < NumSlots; s++ {
		point := uint64(s) << (64 - SlotBits)
		start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= point })
		first := -1
		for i := 0; i < len(ring); i++ {
			cand := ring[(start+i)%len(ring)].node
			if load1[cand] < cap1 {
				first = cand
				break
			}
		}
		if first == -1 { // cannot happen: total capacity ≥ NumSlots
			first = ring[start%len(ring)].node
		}
		load1[first]++
		second := -1
		for i := 0; i < len(ring) && n > 1; i++ {
			cand := ring[(start+i)%len(ring)].node
			if cand != first && load2[cand] < cap1 {
				second = cand
				break
			}
		}
		if second == -1 && n > 1 {
			for _, orig := range order {
				if orig != first {
					second = orig
					break
				}
			}
		}
		if second >= 0 {
			load2[second]++
		}
		pairs[s] = [2]int{first, second}
	}
	return pairs, nil
}

// PairLoads tallies, per node index, how many slots it serves as
// first and as second replica — the ring-ownership numbers the router
// exports as gauges.
func PairLoads(pairs [][2]int, n int) (first, second []int) {
	first = make([]int, n)
	second = make([]int, n)
	for _, p := range pairs {
		first[p[0]]++
		if p[1] >= 0 {
			second[p[1]]++
		}
	}
	return first, second
}
