package cluster

import (
	"fmt"
	"testing"
)

func TestSlotOfInRange(t *testing.T) {
	for _, k := range []uint64{0, 1, 0xdeadbeef, ^uint64(0), 1 << 40} {
		if s := SlotOf(k); s < 0 || s >= NumSlots {
			t.Fatalf("SlotOf(%#x) = %d out of range", k, s)
		}
	}
	// The mix must spread: 10k sequential keys should touch most slots.
	hit := map[int]bool{}
	for k := uint64(0); k < 10000; k++ {
		hit[SlotOf(k)] = true
	}
	if len(hit) < NumSlots*9/10 {
		t.Fatalf("sequential keys hit only %d/%d slots", len(hit), NumSlots)
	}
}

func TestBuildPairsProperties(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("node-%d", i)
		}
		pairs, err := BuildPairs(ids, DefaultVNodes, DefaultLoadFactor)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(pairs) != NumSlots {
			t.Fatalf("n=%d: %d slots, want %d", n, len(pairs), NumSlots)
		}
		for s, p := range pairs {
			if p[0] < 0 || p[0] >= n {
				t.Fatalf("n=%d slot %d: first %d out of range", n, s, p[0])
			}
			if p[1] < 0 || p[1] >= n || p[1] == p[0] {
				t.Fatalf("n=%d slot %d: second %d invalid (first %d)", n, s, p[1], p[0])
			}
		}
		// Bounded load: no node may own more than loadFactor × fair
		// share (+1 for rounding) in either role.
		cap1 := int(DefaultLoadFactor*float64(NumSlots)/float64(n)) + 1
		first, second := PairLoads(pairs, n)
		sum1, sum2 := 0, 0
		for i := 0; i < n; i++ {
			if first[i] > cap1 {
				t.Fatalf("n=%d: node %d owns %d primary slots, cap %d", n, i, first[i], cap1)
			}
			if second[i] > cap1 {
				t.Fatalf("n=%d: node %d owns %d follower slots, cap %d", n, i, second[i], cap1)
			}
			sum1 += first[i]
			sum2 += second[i]
		}
		if sum1 != NumSlots || sum2 != NumSlots {
			t.Fatalf("n=%d: loads sum to %d/%d, want %d", n, sum1, sum2, NumSlots)
		}
	}
}

func TestBuildPairsOrderIndependent(t *testing.T) {
	a, err := BuildPairs([]string{"alpha", "beta", "gamma"}, 32, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	// Same ids permuted: slot s must map to the same *identities*.
	b, err := BuildPairs([]string{"gamma", "alpha", "beta"}, 32, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	idsA := []string{"alpha", "beta", "gamma"}
	idsB := []string{"gamma", "alpha", "beta"}
	for s := 0; s < NumSlots; s++ {
		if idsA[a[s][0]] != idsB[b[s][0]] || idsA[a[s][1]] != idsB[b[s][1]] {
			t.Fatalf("slot %d differs across id orderings: (%s,%s) vs (%s,%s)",
				s, idsA[a[s][0]], idsA[a[s][1]], idsB[b[s][0]], idsB[b[s][1]])
		}
	}
}

func TestBuildPairsSingleNode(t *testing.T) {
	pairs, err := BuildPairs([]string{"solo"}, 16, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range pairs {
		if p[0] != 0 || p[1] != -1 {
			t.Fatalf("slot %d: want (0,-1), got %v", s, p)
		}
	}
}

func TestBuildPairsDuplicateID(t *testing.T) {
	if _, err := BuildPairs([]string{"a", "b", "a"}, 16, 1.25); err == nil {
		t.Fatal("duplicate id accepted")
	}
}
