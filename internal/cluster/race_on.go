//go:build race

package cluster

// RaceEnabled reports whether this build carries the race detector's
// instrumentation. The cluster's liveness timings (heartbeat leases,
// failover/rejoin deadlines in tests and E16) scale by a slack factor
// under the detector's 5–20×slowdown, so a lease expiry still means
// "the node is gone" rather than "the handler was slow today".
const RaceEnabled = true
