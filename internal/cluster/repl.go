package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/obs"
)

// repl.go is the node-side half of cluster replication: the
// kvserve.Replicator implementation a primary uses to forward puts to
// each key's pair peer and collect the peer's group-commit acks.
//
// Forwarding is batched end to end — the LP amortization idea applied
// to the network: a shard owner hands ForwardBatch its whole sealed
// group-commit batch, the puts bound for one peer travel as a single
// kvserve.OpReplBatch frame (one header, N pairs, one ack), and the
// follower applies the run through its own group commit before
// answering. K network frames + K ack wakeups per batch become 1,
// while the ack still means what it always meant: every put in the
// run is LP-durable on the follower. In-flight runs live in a fixed
// slot ring per session (the same discipline as kvserve's commitItem
// ring): ForwardBatch takes a free slot per destination peer (window
// backpressure), a sender goroutine gathers pending frames into one
// writev, a reader goroutine matches acks back to slots, and the
// shard's replication waiter returns the slot after the last of the
// run's Waits. The steady-state forward path allocates nothing.
//
// When a peer is unreachable (dead, lease revoked, or the connection
// just broke), forwards for its slots divert into the peer's delta
// buffer: key → (val, stamp), latest-stamp-wins. Stamps are a per-peer
// monotonic counter taken at Forward time; a key's forwards are issued
// by a single shard owner in order, so stamp order is value order per
// key, and the buffer always holds the newest value the peer missed.
// Catch-up replays the buffer through a fresh session and — the
// ordering handover — enables live forwarding under the same lock that
// guards the buffer, so every replayed put precedes every subsequent
// live forward on the wire. Divergence windows therefore close exactly
// once, in order.
//
// The delta buffer must never hold a key at a stamp older than a
// forward already handed to a session: the newer forward may ack (the
// follower then holds the newer value), and a later drain replaying
// the stale entry would roll the follower back over an acknowledged
// put. The hazard is real — a forward resolved degraded is re-buffered
// by wait(), which can run long after a redial published a new session
// and newer forwards for the same key went (and acked) over it. So
// every forward registers in peerState.sent — per key, the highest
// stamp handed to any session, refcounted by unresolved forwards —
// atomically (under ps.mu) with its wire enqueue; registering also
// evicts any older buffered delta for the key, and both buffering
// paths refuse stamps older than the key's registered high-water.

// replStatus values resolved into a forward slot.
const (
	replAcked    = byte(0)    // follower acked (StatusOK)
	replDegraded = byte(0xFF) // abandoned: conn died / lease revoked / follower full
)

// noAckTok is the token ForwardBatch returns when the put was buffered
// for a peer the topology still calls alive (session down mid-redial).
// Wait resolves it false immediately: the put must not be acked at
// RF=1 while the follower's lease stands — the server surfaces
// backpressure to the client instead. Real tokens carry a 1-based
// session index in their high 32 bits, so the all-ones pattern can
// never collide.
const noAckTok = ^uint64(0)

// tokUnset marks a ForwardBatch output slot not yet claimed by any
// peer group while the batch is being partitioned. Never escapes
// ForwardBatch; distinct from noAckTok and from any real token (which
// would need 2^32-2 sessions to collide).
const tokUnset = ^uint64(0) - 1

// ReplConfig configures a node's Replicator.
type ReplConfig struct {
	// Self is this node's ID; Forward only forwards keys whose slot
	// lists Self as primary (a follower applying a forwarded put must
	// not echo it back).
	Self string
	// Window is the per-peer in-flight forward budget, counted in
	// replication BATCHES (OpReplBatch frames), not puts (default
	// DefaultReplWindow). One sealed group-commit batch consumes at
	// most one slot per destination peer, so the window must exceed
	// the number of batches the local commit pipeline can hold unacked
	// — Shards × (PipelineDepth + 1), the open batch plus every sealed
	// batch per shard (kvserve.Config.PipelineBatches) — or
	// ForwardBatch's backpressure can deadlock the owners against
	// their own flushers. StartNode validates this against the
	// server's effective geometry and refuses to start on a violation.
	Window int
	// MaxRetries is retained for configuration compatibility but no
	// longer bounds overload retries: a forward to a live session
	// retries with capped backoff until the session dies. Degrading an
	// overloaded-but-alive follower to the delta buffer would silently
	// drop to RF=1 with no catch-up ever scheduled (the delta drains
	// only on redial or rejoin) — backpressure is the correct answer.
	MaxRetries int
	// DialTimeout bounds session dials (default 2s).
	DialTimeout time.Duration
	// Registry receives the replication metrics (cluster_repl_*).
	Registry *obs.Registry
	// Tracer receives forward-path span events (stage_fwd_*) for puts
	// carrying a trace ID. Usually the node's server tracer, so one
	// /debug/trace drain covers both halves of the pipeline; a nil
	// Tracer gets a private disabled one (events discarded).
	Tracer *obs.Tracer
}

func (c ReplConfig) withDefaults() ReplConfig {
	if c.Window <= 0 {
		c.Window = DefaultReplWindow
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 12
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(1)
	}
	return c
}

// deltaEnt is one buffered missed put: latest value and its stamp.
type deltaEnt struct{ val, stamp uint64 }

// sentEnt tracks one key's forwards handed to sessions and not yet
// resolved: top is the highest such stamp ever sent (across session
// generations), n the number of unresolved forwards. The entry is
// dropped when n hits zero — at that point every sent stamp has
// resolved, and any ≤ top resolution already ran through the guard.
type sentEnt struct {
	top uint64
	n   uint32
}

// peerState is everything this node knows about one pair peer.
type peerState struct {
	id    string
	addr  string
	stamp atomic.Uint64               // per-peer forward order, survives sessions
	live  atomic.Pointer[peerSession] // nil → forwards divert to delta
	mu    sync.Mutex                  // guards delta, sent, and the down→live handover
	delta map[uint64]deltaEnt
	sent  map[uint64]sentEnt // key → in-flight forwards' stamp high-water

	// alive mirrors the peer's state in the last applied topology. A
	// session teardown while the peer is still alive (transient conn
	// failure, not a lease expiry) triggers an automatic redial —
	// without it, every later forward would park in the delta buffer,
	// which nothing drains until the peer dies and rejoins.
	alive     atomic.Bool
	redialing atomic.Bool

	gDelta *obs.Gauge // cluster_repl_delta_pending{peer=...}
}

// bufferDelta records a missed put, keeping the newest stamp per key.
// Stamps at or below the key's sent high-water are refused: a forward
// with a newer stamp is (or was) on a session, and its own resolution
// owns the key — it either acked (the follower holds the newer value;
// replaying this one would roll it back) or will re-buffer its newer
// value itself. Callers hold ps.mu.
func (ps *peerState) bufferDeltaLocked(key, val, stamp uint64) {
	if e, ok := ps.sent[key]; ok && stamp < e.top {
		return
	}
	if ps.delta == nil {
		ps.delta = make(map[uint64]deltaEnt)
	}
	if e, ok := ps.delta[key]; !ok || stamp > e.stamp {
		ps.delta[key] = deltaEnt{val: val, stamp: stamp}
	}
	ps.gDelta.Set(int64(len(ps.delta)))
}

// noteSentLocked registers a forward handed to a session: bumps the
// key's unresolved count, raises its stamp high-water, and evicts any
// older buffered delta for the key — the send supersedes it (if the
// send later degrades, wait() re-buffers it; if it acks, the older
// value must never be replayed). Caller holds ps.mu.
func (ps *peerState) noteSentLocked(key, stamp uint64) {
	if ps.sent == nil {
		ps.sent = make(map[uint64]sentEnt)
	}
	e := ps.sent[key]
	e.n++
	if stamp > e.top {
		e.top = stamp
	}
	ps.sent[key] = e
	if d, ok := ps.delta[key]; ok && d.stamp < stamp {
		delete(ps.delta, key)
		ps.gDelta.Set(int64(len(ps.delta)))
	}
}

// resolvedLocked retires one forward registration and reports whether
// the resolved stamp is the key's newest ever sent — only then may a
// degraded resolution re-buffer its value. Caller holds ps.mu.
func (ps *peerState) resolvedLocked(key, stamp uint64) bool {
	e, ok := ps.sent[key]
	newest := !ok || stamp >= e.top
	if ok {
		e.n--
		if e.n == 0 {
			delete(ps.sent, key)
		} else {
			ps.sent[key] = e
		}
	}
	return newest
}

// slotView is the Forward hot path's routing table, swapped atomically
// on topology pushes: per slot, the pair peer to replicate to, or nil
// when this node is not the slot's primary (or the slot has no pair).
type slotView struct {
	peers []*peerState // len NumSlots
	epoch uint64
	// primary[s] is whether this node holds slot s's primary role at
	// this epoch — the kvserve.PrimaryAuth bitmap. Role, not pair
	// membership: forwarding routes by membership (see ApplyTopology),
	// but client puts are authorized against the role so a
	// stale-routed client is told to refresh instead of being served
	// by the member the router stopped sending that slot to.
	primary []bool
}

// Replicator implements kvserve.Replicator over a pushed Topology.
type Replicator struct {
	cfg  ReplConfig
	view atomic.Pointer[slotView]

	mu     sync.Mutex // guards peers, topology application, closed
	peers  map[string]*peerState
	closed bool

	// sessions is append-only under its own lock so Wait (called by
	// shard flushers) never contends with a topology apply or a
	// catch-up drain holding r.mu; tok = (idx+1)<<32 | slot.
	sessMu   sync.Mutex
	sessions []*peerSession

	ctForwards *obs.Counter   // cluster_repl_forwards_total
	ctAcks     *obs.Counter   // cluster_repl_acks_total
	ctDegraded *obs.Counter   // cluster_repl_degraded_total
	ctRetries  *obs.Counter   // cluster_repl_retries_total
	ctBuffered *obs.Counter   // cluster_repl_delta_buffered_total
	ctCatchup  *obs.Counter   // cluster_repl_catchup_keys_total
	ctSessions *obs.Counter   // cluster_repl_sessions_total
	gEpoch     *obs.Gauge     // cluster_repl_epoch
	hLag       *obs.Histogram // cluster_repl_lag_seconds: run enqueue → follower ack
	hBatch     *obs.Histogram // cluster_repl_batch_puts: puts per OpReplBatch frame
}

// NewReplicator builds a Replicator with no topology: every
// ForwardBatch fills zero tokens until the router pushes one.
func NewReplicator(cfg ReplConfig) *Replicator {
	cfg = cfg.withDefaults()
	root := cfg.Registry.Scope()
	return &Replicator{
		cfg:        cfg,
		peers:      make(map[string]*peerState),
		ctForwards: root.Counter("cluster_repl_forwards_total"),
		ctAcks:     root.Counter("cluster_repl_acks_total"),
		ctDegraded: root.Counter("cluster_repl_degraded_total"),
		ctRetries:  root.Counter("cluster_repl_retries_total"),
		ctBuffered: root.Counter("cluster_repl_delta_buffered_total"),
		ctCatchup:  root.Counter("cluster_repl_catchup_keys_total"),
		ctSessions: root.Counter("cluster_repl_sessions_total"),
		gEpoch:     root.Gauge("cluster_repl_epoch"),
		hLag:       root.HistogramScaled("cluster_repl_lag_seconds", 1e-9),
		hBatch:     root.Histogram("cluster_repl_batch_puts"),
	}
}

// Epoch returns the topology epoch this node last applied (0 = none).
func (r *Replicator) Epoch() uint64 {
	if v := r.view.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// Ready implements kvserve.Replicator: true once a topology has been
// applied. Until then the server refuses client puts — a node serving
// before its first push would ack at RF=1 with no forward and no
// delta charge, invisibly to the router's epoch fence.
func (r *Replicator) Ready() bool {
	return r.view.Load() != nil
}

// IsPrimary implements kvserve.PrimaryAuth: whether this member holds
// the key's slot primary role under its applied epoch. The server
// consults it on every client OpPut, so a put routed by a stale table
// is rejected StatusMoved at the member instead of being accepted by
// a node the router stopped sending that slot to. Lock-free: one
// atomic view load plus a bitmap index.
func (r *Replicator) IsPrimary(key uint64) bool {
	v := r.view.Load()
	if v == nil {
		return false
	}
	return v.primary[SlotOf(key)]
}

// ForwardBatch implements kvserve.Replicator: called by a shard owner
// once per sealed group-commit batch with every put the batch journals.
// The batch is partitioned by destination peer; each peer's run ships
// as one OpReplBatch frame holding one window slot, and every put in
// the run receives the same shared token. toks[i] = 0 when put i has
// no forward in flight. tids[i] is put i's trace ID (0 = untraced);
// traced puts travel in the frame's trace extension and emit
// stage_fwd_* span events here.
func (r *Replicator) ForwardBatch(keys, vals, tids, toks []uint64) {
	v := r.view.Load()
	if v == nil {
		for i := range toks {
			toks[i] = 0
		}
		return
	}
	for i := range toks {
		toks[i] = tokUnset
	}
	for i := range keys {
		if toks[i] != tokUnset {
			continue
		}
		ps := v.peers[SlotOf(keys[i])]
		if ps == nil {
			toks[i] = 0
			continue
		}
		r.forwardGroup(v, ps, keys, vals, tids, toks, i)
	}
}

// forwardGroup forwards every not-yet-claimed put at index ≥ from
// bound for ps as one run: through the live session when there is one
// (a single slot claim, a single frame, a shared token), otherwise
// into the peer's delta buffer. Stamps are taken under ps.mu at
// enqueue/buffer time, so per key — each key has exactly one shard
// owner issuing its forwards in order — stamp order is value order.
func (r *Replicator) forwardGroup(v *slotView, ps *peerState, keys, vals, tids, toks []uint64, from int) {
	if sess := ps.live.Load(); sess != nil {
		if n, ok := sess.forwardRun(v, keys, vals, tids, toks, from); ok {
			r.ctForwards.Add(uint64(n))
			return
		}
	}
	// Degraded path: the peer is down (or its session died under us).
	// Under ps.mu, re-check live — a catch-up handover may have raced
	// us, and the lock is what orders this run after the drained delta.
	ps.mu.Lock()
	if sess := ps.live.Load(); sess != nil {
		ps.mu.Unlock()
		if n, ok := sess.forwardRun(v, keys, vals, tids, toks, from); ok {
			r.ctForwards.Add(uint64(n))
			return
		}
		ps.mu.Lock()
	}
	alive := ps.alive.Load()
	// While the peer's lease stands this is a transient session gap
	// (redial in progress), not an adjudicated death: the puts may not
	// be acked at RF=1, so they carry noAckTok — the delta will drain
	// within the redial backoff, and until then clients get
	// backpressure.
	tok := uint64(0)
	if alive {
		tok = noAckTok
	}
	n := 0
	for j := from; j < len(keys); j++ {
		if toks[j] != tokUnset || v.peers[SlotOf(keys[j])] != ps {
			continue
		}
		ps.bufferDeltaLocked(keys[j], vals[j], ps.stamp.Add(1))
		toks[j] = tok
		n++
	}
	ps.mu.Unlock()
	r.ctBuffered.Add(uint64(n))
}

// Wait implements kvserve.Replicator: blocks until the token's forward
// run resolved. A token is shared by every put of one forwarded run
// and must be waited exactly once per put (each wait consumes one of
// the run's slot references; the last one recycles the slot). Reports
// whether the put may be acked at the contracted durability: true
// when the follower acked its own group commit, or
// when the forward degraded *after the router revoked the follower's
// lease* (the designed RF=1 fallback — the put is in the peer's delta
// buffer and rejoin catch-up will close the gap). False when the
// forward failed while the follower is still alive per the topology
// (follower full, or a connection blip not yet adjudicated): acking
// then would be a silent, unscheduled drop to RF=1, so the server
// replies backpressure instead.
func (r *Replicator) Wait(tok uint64) bool {
	if tok == noAckTok {
		return false
	}
	r.sessMu.Lock()
	sess := r.sessions[(tok>>32)-1]
	r.sessMu.Unlock()
	return sess.wait(uint32(tok))
}

// ApplyTopology installs a pushed topology: connects sessions to live
// pair peers (draining any delta first, in order), tears down sessions
// to peers the router declared dead (resolving their in-flight waits
// degraded — the lease unblock), and swaps the Forward routing view.
// Stale epochs are ignored.
func (r *Replicator) ApplyTopology(t *Topology) error {
	if len(t.Slots) != NumSlots {
		return fmt.Errorf("cluster: topology has %d slots, want %d", len(t.Slots), NumSlots)
	}
	if cur := r.view.Load(); cur != nil && t.Epoch <= cur.epoch {
		return nil
	}
	self := t.NodeIndex(r.cfg.Self)
	if self < 0 {
		return fmt.Errorf("cluster: node %q not in topology epoch %d", r.cfg.Self, t.Epoch)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("cluster: replicator closed")
	}
	// Resolve peer states for every other member and record their
	// lease verdicts (before any teardown, so a teardown of a freshly
	// dead peer never spawns a redial).
	for i := range t.Nodes {
		if i == self {
			continue
		}
		ps := r.peerLocked(t.Nodes[i].ID, t.Nodes[i].Addr)
		ps.alive.Store(t.Nodes[i].State == StateAlive)
	}
	// Tear down sessions to peers the router no longer trusts: their
	// in-flight forwards resolve degraded, which is what unwedges a
	// flusher blocked in Wait on a silently-gone follower.
	for i := range t.Nodes {
		if i == self || t.Nodes[i].State == StateAlive {
			continue
		}
		ps := r.peers[t.Nodes[i].ID]
		if sess := ps.live.Load(); sess != nil {
			sess.teardown(fmt.Errorf("cluster: peer %s declared %s at epoch %d", ps.id, t.Nodes[i].State, t.Epoch))
		}
	}
	// Connect (and delta-drain) live pair peers we forward to. The
	// drain must run even when a session is already live: during the
	// peer's syncing window, forwards it refused re-buffer into the
	// delta while the catch-up session stays published, and puts
	// buffered between the router's last catch-up round and this push
	// were acked at RF=1 (peer not yet alive) on the promise that
	// *something* replays them — this drain is that something.
	// other is the slot's other static pair member when self is any
	// member, else -1. Forwarding is by pair MEMBERSHIP, not by the
	// primary role this node's view assigns: role views converge per
	// node, and a put routed on a stale (or newer) epoch can land on
	// the member that doesn't currently think it is the primary. If
	// that member acked token-free, the put would exist on one node
	// only — and a later orphan reclaim can hand the slot to the other
	// member, losing an acked key. Pair membership is static, so
	// forwarding to the other member is correct under any role skew,
	// and OpReplPut keeps the copy from echoing back.
	other := func(sa SlotAssign) int {
		switch self {
		case sa.Primary:
			return sa.Pair
		case sa.Pair:
			return sa.Primary
		}
		return -1
	}
	need := make(map[string]bool)
	for s := range t.Slots {
		if o := other(t.Slots[s]); o >= 0 && t.Nodes[o].State == StateAlive {
			need[t.Nodes[o].ID] = true
		}
	}
	for id := range need {
		// Stay degraded on error: forwards buffer, the router's next
		// push (or explicit catch-up) retries.
		_, _ = r.ensureSessionLocked(r.peers[id])
	}
	// Swap the routing view.
	view := &slotView{
		peers:   make([]*peerState, NumSlots),
		epoch:   t.Epoch,
		primary: make([]bool, NumSlots),
	}
	for s := range t.Slots {
		if o := other(t.Slots[s]); o >= 0 {
			view.peers[s] = r.peers[t.Nodes[o].ID]
		}
		view.primary[s] = t.Slots[s].Primary == self
	}
	r.view.Store(view)
	r.gEpoch.Set(int64(t.Epoch))
	return nil
}

// peerLocked finds or creates the peer record. Caller holds r.mu.
func (r *Replicator) peerLocked(id, addr string) *peerState {
	ps := r.peers[id]
	if ps == nil {
		ps = &peerState{id: id, addr: addr,
			gDelta: r.cfg.Registry.Scope("peer", id).Gauge("cluster_repl_delta_pending")}
		r.peers[id] = ps
	}
	ps.addr = addr
	return ps
}

// Catchup dials the (now serving) peer if needed, replays its delta
// buffer through the session, waits for the peer's acks, and enables
// live forwarding — the rejoin drain the router triggers through the
// node's /cluster/catchup endpoint. Returns the number of keys
// replayed. Idempotent: a live peer with an empty buffer returns 0.
func (r *Replicator) Catchup(peerID string) (int, error) {
	r.mu.Lock()
	ps := r.peers[peerID]
	if ps == nil || r.closed {
		r.mu.Unlock()
		if ps == nil {
			return 0, fmt.Errorf("cluster: unknown peer %q", peerID)
		}
		return 0, fmt.Errorf("cluster: replicator closed")
	}
	n, err := r.ensureSessionLocked(ps)
	r.mu.Unlock()
	return n, err
}

// ensureSessionLocked makes ps live: dial, then — under ps.mu, so no
// Forward can interleave — enqueue the entire delta buffer into the
// fresh session and publish it. Everything a live Forward sends after
// the publish is ordered behind the drained delta on the wire. The
// drained forwards are waited (and on failure re-buffered) by a
// drainer goroutine so this never deadlocks the caller against the
// window. Caller holds r.mu; returns the number of keys drained.
func (r *Replicator) ensureSessionLocked(ps *peerState) (int, error) {
	if sess := ps.live.Load(); sess != nil {
		// Already live: nothing buffered by construction (buffering
		// only happens while live is nil... except for degraded waits
		// racing in; drain those too, through the live session).
		return r.drainDeltaLocked(ps, sess), nil
	}
	conn, err := net.DialTimeout("tcp", ps.addr, r.cfg.DialTimeout)
	if err != nil {
		return 0, fmt.Errorf("cluster: dial peer %s (%s): %w", ps.id, ps.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	r.sessMu.Lock()
	sess := newPeerSession(r, ps, conn, len(r.sessions)+1)
	r.sessions = append(r.sessions, sess)
	r.sessMu.Unlock()
	r.ctSessions.Inc()
	n := r.drainDeltaLocked(ps, sess)
	return n, nil
}

// drainDeltaLocked replays ps's delta through sess and publishes the
// session as live. Caller holds r.mu (serializing drains); ps.mu is
// held across each chunk's slot claim and enqueue (drainRunLocked
// claims non-blockingly, so holding the lock cannot deadlock against
// wait, which needs it to retire send registrations) and released
// between chunks. Each chunk packs up to drainChunk puts into ONE
// OpReplBatch run — one slot, one frame, one ack — so a delta bigger
// than a frame drains in waited installments rather than wedging on
// its own backpressure. The final chunk is enqueued under ps.mu and
// the live publish happens before the lock drops, so every concurrent
// ForwardBatch that raced into the degraded path lands on the wire
// after the whole drain.
func (r *Replicator) drainDeltaLocked(ps *peerState, sess *peerSession) int {
	total := 0
	for {
		ps.mu.Lock()
		final := len(ps.delta) <= drainChunk
		tok, n, ok := sess.drainRunLocked(drainChunk)
		if final && ok {
			ps.live.Store(sess)
		}
		ps.mu.Unlock()
		total += n
		if n > 0 {
			r.ctCatchup.Add(uint64(n))
		}
		// The run's token is waited once per put — including after a
		// give-up: an unwaited token would leak its window slot
		// forever, and its puts (re-buffered by wait only while still
		// each key's newest send) would silently vanish from the
		// delta. Failures re-buffer by stamp, so they never clobber
		// newer live forwards' values.
		for i := 0; i < n; i++ {
			sess.wait(uint32(tok))
		}
		if !ok || final {
			// !ok: the session died (or its window is contended — only
			// possible when it was already live) mid-drain; the chunk's
			// entries were re-buffered under the same lock hold, and
			// the router's next catch-up round dials a fresh session or
			// retries this one.
			return total
		}
	}
}

// drainChunk bounds the puts packed into one catch-up OpReplBatch run
// (half the wire-protocol ceiling — ~32 KiB frames).
const drainChunk = kvserve.MaxReplBatch / 2

// redial heals a torn-down session to a peer the topology still calls
// alive: retry the dial with capped backoff until the session is back
// (delta drained first, same handover as a catch-up), the peer's lease
// expires, or the replicator closes. At most one loop per peer runs.
func (r *Replicator) redial(ps *peerState) {
	if !ps.alive.Load() || !ps.redialing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		backoff := 2 * time.Millisecond
		for done := false; !done; {
			time.Sleep(backoff)
			if backoff *= 2; backoff > 200*time.Millisecond {
				backoff = 200 * time.Millisecond
			}
			r.mu.Lock()
			if r.closed || !ps.alive.Load() || ps.live.Load() != nil {
				done = true
			} else if _, err := r.ensureSessionLocked(ps); err == nil {
				done = true
			}
			r.mu.Unlock()
		}
		ps.redialing.Store(false)
		// A teardown racing our exit found redialing still set and
		// lost its trigger to the CAS; re-check so the peer is never
		// left live-less with no loop running.
		if ps.alive.Load() && ps.live.Load() == nil {
			r.redial(ps)
		}
	}()
}

// DeltaLen reports the pending delta size for a peer (0 if unknown) —
// the router polls this signal via /cluster/catchup responses.
func (r *Replicator) DeltaLen(peerID string) int {
	r.mu.Lock()
	ps := r.peers[peerID]
	r.mu.Unlock()
	if ps == nil {
		return 0
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.delta)
}

// Close tears down every session; in-flight Waits resolve degraded.
func (r *Replicator) Close() {
	r.mu.Lock()
	r.closed = true
	sessions := append([]*peerSession(nil), r.sessions...)
	r.mu.Unlock()
	for _, s := range sessions {
		s.teardown(fmt.Errorf("cluster: replicator closed"))
	}
}

// ---------------------------------------------------------------------
// peerSession: one pipelined forwarding connection.

// replPut is one put of a forwarded run. tid is the put's trace ID
// (0 = untraced): traced puts ride the frame's trace extension and
// emit stage_fwd_* events; delta-drain replays always carry 0 — the
// original request's span ended when its client was answered.
type replPut struct{ key, val, stamp, tid uint64 }

// fwdSlot holds one in-flight OpReplBatch run: its puts, the encoded
// wire frame (both backings reused across occupancies), and the shared
// resolution every holder of the run's token waits on. waiters counts
// the token references still outstanding; each wait consumes one and
// re-publishes the resolution for the next, so the cap-1 done channel
// serves the whole run. settled needs no atomicity: the done-channel
// handoff orders the waits, and the first one runs the settlement.
type fwdSlot struct {
	puts     []replPut
	frame    []byte
	attempt  int32
	t0       int64 // enqueue ns, for the lag histogram
	waiters  int
	settled  bool
	inflight atomic.Bool // set at enqueue, cleared by exactly one resolver
	done     chan byte   // cap 1, reused across occupancies
}

type peerSession struct {
	r   *Replicator
	ps  *peerState
	idx int // 1-based index in r.sessions, encoded into tokens

	conn  net.Conn
	slots []fwdSlot
	freeq chan uint32
	sendq chan uint32
	quit  chan struct{}
	down  atomic.Bool
	once  sync.Once
}

func newPeerSession(r *Replicator, ps *peerState, conn net.Conn, idx int) *peerSession {
	w := r.cfg.Window
	s := &peerSession{
		r: r, ps: ps, idx: idx,
		conn:  conn,
		slots: make([]fwdSlot, w),
		freeq: make(chan uint32, w),
		sendq: make(chan uint32, w),
		quit:  make(chan struct{}),
	}
	for i := 0; i < w; i++ {
		s.slots[i].done = make(chan byte, 1)
		s.freeq <- uint32(i)
	}
	go s.sender()
	go s.reader()
	return s
}

// forwardRun claims a slot (blocking — window backpressure), packs
// every not-yet-claimed put at index ≥ from that routes to this
// session's peer into it, and enqueues the frame, filling each
// claimed put's toks entry with the run's shared token. Reports the
// run size and false when the session is down — the caller then
// buffers the same puts instead (toks entries are left untouched on
// failure).
func (s *peerSession) forwardRun(v *slotView, keys, vals, tids, toks []uint64, from int) (int, bool) {
	if s.down.Load() {
		return 0, false
	}
	idx := <-s.freeq
	s.ps.mu.Lock()
	defer s.ps.mu.Unlock()
	if s.down.Load() {
		s.freeq <- idx
		return 0, false
	}
	sl := &s.slots[idx]
	tok := uint64(s.idx)<<32 | uint64(idx)
	sl.puts = sl.puts[:0]
	for j := from; j < len(keys); j++ {
		if toks[j] != tokUnset || v.peers[SlotOf(keys[j])] != s.ps {
			continue
		}
		stamp := s.ps.stamp.Add(1)
		sl.puts = append(sl.puts, replPut{key: keys[j], val: vals[j], stamp: stamp, tid: tids[j]})
		s.ps.noteSentLocked(keys[j], stamp)
		toks[j] = tok
	}
	if s.commitRunLocked(idx) {
		return len(sl.puts), true
	}
	// Quit race: the run never reached the sender. Undo the toks marks
	// so the caller's degraded path re-claims these puts (the send
	// registrations were already retired by commitRunLocked).
	for j := from; j < len(keys); j++ {
		if toks[j] == tok {
			toks[j] = tokUnset
		}
	}
	return 0, false
}

// drainRunLocked packs up to max delta entries into one run and
// enqueues it, returning the shared token and the run size. The slot
// claim is non-blocking: a blocking claim under ps.mu would deadlock
// against wait(), which needs the lock to retire registrations and
// free slots. A contended window reads as failure — the caller gives
// up and the router's next round retries. On failure the popped
// entries are re-buffered under the same lock hold (by their original
// stamps, so they never clobber newer live forwards' values). Caller
// holds ps.mu. ok=false means the session is unusable; n=0, ok=true
// means the delta was already empty.
func (s *peerSession) drainRunLocked(max int) (tok uint64, n int, ok bool) {
	ps := s.ps
	if len(ps.delta) == 0 {
		return 0, 0, !s.down.Load()
	}
	if s.down.Load() {
		return 0, 0, false
	}
	var idx uint32
	select {
	case idx = <-s.freeq:
	default:
		return 0, 0, false
	}
	sl := &s.slots[idx]
	sl.puts = sl.puts[:0]
	for k, e := range ps.delta {
		if len(sl.puts) == max {
			break
		}
		delete(ps.delta, k)
		sl.puts = append(sl.puts, replPut{key: k, val: e.val, stamp: e.stamp})
		ps.noteSentLocked(k, e.stamp)
	}
	ps.gDelta.Set(int64(len(ps.delta)))
	tok = uint64(s.idx)<<32 | uint64(idx)
	if s.commitRunLocked(idx) {
		return tok, len(sl.puts), true
	}
	// Quit race: re-buffer what we popped (registrations already
	// retired, so bufferDeltaLocked accepts the original stamps unless
	// a newer send owns the key).
	for _, p := range sl.puts {
		ps.bufferDeltaLocked(p.key, p.val, p.stamp)
	}
	return 0, 0, false
}

// commitRunLocked hands a filled slot to the sender and arms its
// shared resolution. Registration (already done by the caller) and
// enqueue happen under one continuous ps.mu hold — the invariant that
// lets wait() trust the sent map: no resolution can observe a send
// that isn't registered, and the only unregistration (the quit race
// below) happens before the claim is ever exposed as a token. On the
// quit race it retires the run's registrations and frees the slot;
// the caller undoes its own bookkeeping. Caller holds ps.mu.
func (s *peerSession) commitRunLocked(idx uint32) bool {
	sl := &s.slots[idx]
	sl.attempt = 0
	sl.t0 = time.Now().UnixNano()
	sl.waiters = len(sl.puts)
	sl.settled = false
	sl.inflight.Store(true)
	s.r.hBatch.Observe(uint64(len(sl.puts)))
	if s.r.cfg.Tracer.Enabled() {
		s.traceRun(obs.EvStageFwdEnq, sl, uint64(len(sl.puts)))
	}
	select {
	case s.sendq <- idx:
		// The buffered enqueue can win this select even after teardown
		// closed quit: if teardown's resolve sweep ran between the down
		// check above and the inflight store, it skipped this slot and
		// the sender is gone — nothing would ever resolve it. down is
		// stored before the sweep, so (seq-cst atomics) either the
		// sweep saw our inflight store, or we see down here and must
		// resolve ourselves. resolve is exactly-once, a double no-ops.
		if s.down.Load() {
			s.resolve(idx, replDegraded)
		}
		return true
	case <-s.quit:
		if sl.inflight.CompareAndSwap(true, false) {
			// Never sent, never a token: undo the registrations under
			// the same lock hold so the caller's re-buffer (same keys,
			// same stamps) isn't refused by its own ghost sends.
			for _, p := range sl.puts {
				s.ps.resolvedLocked(p.key, p.stamp)
			}
			s.freeq <- idx
			return false
		}
		// teardown resolved it first; hand the token out so the done
		// value is consumed normally (the waits retire the
		// registrations).
		return true
	}
}

// wait consumes one token reference of a run: blocks for the run's
// resolution, settles the whole run's delta bookkeeping on the first
// wakeup, re-publishes the resolution for the run's remaining waits,
// and recycles the slot after the last. A degraded put re-enters the
// delta buffer only if its stamp is still the key's newest ever sent
// (resolvedLocked): a newer forward for the key — possibly on a
// successor session published by a redial before this wait ran — owns
// the key's delta fate, and re-buffering the older value here would
// let a later drain roll the follower back over an acked newer put.
// The return value is ack eligibility, not transport success: a
// degraded run is still ackable iff the peer's lease has been revoked
// (RF=1 by design); while the lease stands, degradation means the
// follower refused the run (full) or the session died transiently —
// not ackable.
func (s *peerSession) wait(tok uint32) bool {
	sl := &s.slots[tok]
	st := <-sl.done
	if !sl.settled {
		sl.settled = true
		s.settle(sl, st)
	}
	ok := st == replAcked || !s.ps.alive.Load()
	if sl.waiters--; sl.waiters > 0 {
		sl.done <- st
	} else {
		s.freeq <- tok
	}
	return ok
}

// settle retires a resolved run's send registrations and, on
// degradation, re-buffers each put still holding its key's newest
// stamp. Runs exactly once per occupancy, on the run's first wait.
func (s *peerSession) settle(sl *fwdSlot, st byte) {
	n := uint64(len(sl.puts))
	s.ps.mu.Lock()
	if st == replAcked {
		for _, p := range sl.puts {
			s.ps.resolvedLocked(p.key, p.stamp)
		}
	} else {
		for _, p := range sl.puts {
			if s.ps.resolvedLocked(p.key, p.stamp) {
				s.ps.bufferDeltaLocked(p.key, p.val, p.stamp)
			}
		}
	}
	s.ps.mu.Unlock()
	if st == replAcked {
		s.r.ctAcks.Add(n)
	} else {
		s.r.ctDegraded.Add(n)
	}
}

// traceRun records one stage_fwd_* span event per traced put of a
// slot's run. Callers gate on the tracer's enable bit so the untraced
// path pays nothing beyond that load.
func (s *peerSession) traceRun(typ obs.EventType, sl *fwdSlot, b uint64) {
	tr := s.r.cfg.Tracer
	ts := time.Now().UnixNano()
	for i := range sl.puts {
		if tid := sl.puts[i].tid; tid != 0 {
			tr.Record(typ, int32(s.idx), ts, tid, b)
		}
	}
}

// resolve completes a slot exactly once.
func (s *peerSession) resolve(idx uint32, st byte) {
	sl := &s.slots[idx]
	if sl.inflight.CompareAndSwap(true, false) {
		if st == replAcked {
			s.r.hLag.Observe(uint64(time.Now().UnixNano() - sl.t0))
		}
		if s.r.cfg.Tracer.Enabled() {
			s.traceRun(obs.EvStageFwdAck, sl, uint64(st))
		}
		sl.done <- st
	}
}

// encodeFrame (re)builds a slot's OpReplBatch wire frame into its
// reusable buffer: one request header whose key field carries the put
// count and whose val field the trace-entry count, the run's
// (key, val) pairs, then one [idx:4][tid:8] trace entry per traced
// put, ascending by pair index (kvserve.ReplTraceSize each). Runs
// with no traced puts encode val = 0 — byte-identical to the
// pre-trace frame. Encoding happens right before the sender's writev,
// so this is also where traced puts get their stage_fwd_write event.
func (s *peerSession) encodeFrame(idx uint32) []byte {
	sl := &s.slots[idx]
	tcount := 0
	for i := range sl.puts {
		if sl.puts[i].tid != 0 {
			tcount++
		}
	}
	var h [kvserve.ReqSize]byte
	kvserve.EncodeReq(&h, kvserve.OpReplBatch, idx, uint64(len(sl.puts)), uint64(tcount))
	f := append(sl.frame[:0], h[:]...)
	var p [kvserve.ReplPairSize]byte
	for i := range sl.puts {
		binary.LittleEndian.PutUint64(p[0:], sl.puts[i].key)
		binary.LittleEndian.PutUint64(p[8:], sl.puts[i].val)
		f = append(f, p[:]...)
	}
	if tcount > 0 {
		var te [kvserve.ReplTraceSize]byte
		for i := range sl.puts {
			if sl.puts[i].tid == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(te[0:], uint32(i))
			binary.LittleEndian.PutUint64(te[4:], sl.puts[i].tid)
			f = append(f, te[:]...)
		}
	}
	sl.frame = f
	if s.r.cfg.Tracer.Enabled() {
		s.traceRun(obs.EvStageFwdWrite, sl, uint64(len(f)))
	}
	return f
}

// sender drains the send queue, gathering every pending run's frame
// into one vectored write — net.Buffers.WriteTo uses writev on TCP
// connections, so syscalls scale with wakeups, not runs (let alone
// puts). iov's backing array is rebuilt every round because WriteTo
// consumes the slice and nils its elements.
func (s *peerSession) sender() {
	iov := make(net.Buffers, 0, 16)
	for {
		select {
		case <-s.quit:
			return
		case idx := <-s.sendq:
			iov = append(iov[:0], s.encodeFrame(idx))
			for len(s.sendq) > 0 && len(iov) < cap(iov) {
				iov = append(iov, s.encodeFrame(<-s.sendq))
			}
			if _, err := iov.WriteTo(s.conn); err != nil {
				s.teardown(err)
				return
			}
		}
	}
}

func (s *peerSession) reader() {
	br := bufio.NewReaderSize(s.conn, 1<<16)
	var buf [kvserve.RespSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			s.teardown(err)
			return
		}
		seq, status, _ := kvserve.DecodeResp(&buf)
		if int(seq) >= len(s.slots) {
			s.teardown(fmt.Errorf("cluster: replication ack seq %d outside window", seq))
			return
		}
		sl := &s.slots[seq]
		switch status {
		case kvserve.StatusOK:
			s.resolve(seq, replAcked)
		case kvserve.StatusOverload, kvserve.StatusExpired:
			// Retry the whole run with capped backoff for as long as
			// the session lives — replicated puts are idempotent
			// (latest value per key, and the follower re-applies the
			// run through its own admission), so resending every pair
			// is safe. An overloaded follower is backpressure, not a
			// failure: degrading here would ack the clients at RF=1
			// with the puts parked in a delta buffer nothing drains
			// while the peer stays alive. Teardown resolves the slot
			// degraded if the session dies mid-backoff.
			sl.attempt++
			s.r.ctRetries.Inc()
			idx := seq
			backoff := replBackoff(int(sl.attempt) - 1)
			time.AfterFunc(backoff, func() {
				if s.down.Load() {
					s.resolve(idx, replDegraded)
					return
				}
				select {
				case s.sendq <- idx:
					// Same post-enqueue handshake as commitRunLocked:
					// the buffered send can succeed after teardown.
					if s.down.Load() {
						s.resolve(idx, replDegraded)
					}
				case <-s.quit:
					s.resolve(idx, replDegraded)
				}
			})
		default:
			// Full / BadRequest / Shutdown: the follower cannot take
			// this run now; degrade it into the delta buffer. While
			// the follower's lease stands, wait() reports the puts
			// unackable, so the clients see backpressure rather than
			// a silent RF=1 ack the delta would have to make good on.
			s.resolve(seq, replDegraded)
		}
	}
}

// teardown poisons the session: unpublishes it from the peer, closes
// the connection, and resolves every in-flight slot degraded so no
// flusher stays blocked in Wait. A teardown while the peer is still
// alive per the last topology is a transient failure — kick off the
// redial loop so replication heals without waiting for an epoch bump.
func (s *peerSession) teardown(err error) {
	s.once.Do(func() {
		s.down.Store(true)
		s.ps.live.CompareAndSwap(s, nil)
		close(s.quit)
		s.conn.Close()
		_ = err
		for i := range s.slots {
			s.resolve(uint32(i), replDegraded)
		}
		s.r.redial(s.ps)
	})
}

// replBackoff mirrors lpload's jittered exponential overload backoff.
// The shift saturates (retries are unbounded, so attempt grows without
// limit): past attempt 6 the delay pins at the 10ms cap.
func replBackoff(attempt int) time.Duration {
	base := 10 * time.Millisecond
	if attempt >= 0 && attempt < 6 {
		base = 200 * time.Microsecond << uint(attempt)
	}
	return base/2 + time.Duration(rand.Int64N(int64(base)))
}
