package cluster

import (
	"path/filepath"
	"testing"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
	"lazyp/internal/workloads"
)

// TestPrimaryAuthorizationRejectsStaleClient is the regression for
// the member-side put gate: a client holding a stale routing table
// (or no table at all) that sends OpPut straight to a non-primary
// member must get StatusMoved back — the member refuses outright
// instead of accepting a put the router stopped sending it, which is
// the write that a later orphan reclaim would silently lose.
//
// Two live members, no router: topologies are applied directly, which
// IS the stale-client scenario — the client dials members by address
// with its own (wrong) idea of who owns what.
func TestPrimaryAuthorizationRejectsStaleClient(t *testing.T) {
	mk := func(self string) (*Replicator, *kvserve.Server) {
		t.Helper()
		r := NewReplicator(ReplConfig{Self: self, Window: 8})
		t.Cleanup(r.Close)
		s, err := kvserve.New(kvserve.Config{
			Path:      filepath.Join(t.TempDir(), self+".img"),
			Mode:      lpstore.ModeLP,
			Shards:    2,
			Capacity:  1 << 10,
			MaxOps:    1 << 12,
			BatchK:    16,
			Streams:   2,
			Keys:      64,
			Mailbox:   64,
			BatchWait: 200 * time.Microsecond,
			Repl:      r,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", self, err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("Start(%s): %v", self, err)
		}
		t.Cleanup(func() { s.Close() })
		return r, s
	}
	rA, sA := mk("a")
	rB, sB := mk("b")

	// Epoch 1: every slot's primary is A with no pair (single-copy
	// slots, as after a permanent failover) — no replication listener
	// or forwarding needed, which isolates the authorization gate:
	// accepts and rejects are decided by role alone.
	topoAt := func(epoch uint64, primary int) *Topology {
		topo := &Topology{
			Epoch: epoch,
			Nodes: []NodeInfo{
				{ID: "a", Addr: "127.0.0.1:1", State: StateAlive},
				{ID: "b", Addr: "127.0.0.1:1", State: StateAlive},
			},
			Slots: make([]SlotAssign, NumSlots),
		}
		for s := range topo.Slots {
			topo.Slots[s] = SlotAssign{Primary: primary, Follower: -1, Pair: -1}
		}
		return topo
	}
	apply := func(topo *Topology) {
		t.Helper()
		if err := rA.ApplyTopology(topo); err != nil {
			t.Fatalf("a.ApplyTopology: %v", err)
		}
		if err := rB.ApplyTopology(topo); err != nil {
			t.Fatalf("b.ApplyTopology: %v", err)
		}
	}
	apply(topoAt(1, 0))

	dial := func(s *kvserve.Server) *kvserve.Client {
		t.Helper()
		cl, err := kvserve.Dial(s.Addr())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	clA, clB := dial(sA), dial(sB)

	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = workloads.KVKey(0, i)
	}

	// The stale client writes to B, which is primary for nothing.
	for _, key := range keys {
		st, err := clB.Put(key, 0xb0b)
		if err != nil {
			t.Fatalf("put to b: %v", err)
		}
		if st != kvserve.StatusMoved {
			t.Fatalf("put to non-primary b: status %s, want moved", kvserve.StatusName(st))
		}
	}
	// The same keys land fine on the actual primary.
	for _, key := range keys {
		st, err := clA.Put(key, 0xa0a)
		if err != nil {
			t.Fatalf("put to a: %v", err)
		}
		if st != kvserve.StatusOK {
			t.Fatalf("put to primary a: status %s, want ok", kvserve.StatusName(st))
		}
	}
	// Reads are not gated: B still answers gets for its preload.
	if _, st, err := clB.Get(keys[0]); err != nil || st != kvserve.StatusOK {
		t.Fatalf("get on non-primary b: status %v err %v, want ok", kvserve.StatusName(st), err)
	}
	if sB.Stats().Moved != uint64(len(keys)) {
		t.Fatalf("b counted %d moved rejects, want %d", sB.Stats().Moved, len(keys))
	}

	// Epoch 2 flips every slot to B: the same member now accepts, and
	// the client still holding the epoch-1 table gets Moved from A.
	apply(topoAt(2, 1))
	for _, key := range keys {
		st, err := clB.Put(key, 0xb1b)
		if err != nil {
			t.Fatalf("put to b after flip: %v", err)
		}
		if st != kvserve.StatusOK {
			t.Fatalf("put to new primary b: status %s, want ok", kvserve.StatusName(st))
		}
		st, err = clA.Put(key, 0xa1a)
		if err != nil {
			t.Fatalf("put to a after flip: %v", err)
		}
		if st != kvserve.StatusMoved {
			t.Fatalf("put to demoted a: status %s, want moved", kvserve.StatusName(st))
		}
	}
}
