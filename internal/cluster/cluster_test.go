package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
	"lazyp/internal/workloads"
)

// testNodeCfg is the geometry every in-process cluster test node runs;
// small enough that three of them boot in milliseconds.
func testNodeCfg(path string) kvserve.Config {
	return kvserve.Config{
		Addr: "127.0.0.1:0",
		Path: path,
		Mode: lpstore.ModeLP,
		// Capacity needs headroom for a multi-second insert flood: a
		// follower past its admission high-water rejects forwards with
		// Full, which surfaces as client backpressure (no ack, retry)
		// — correct, but it stalls the acked-count choreography the
		// failover test is built on, so keep admission unsaturated.
		Shards:        2,
		Capacity:      1 << 14,
		MaxOps:        1 << 16,
		BatchK:        16,
		Streams:       2,
		Keys:          128,
		Seed:          11,
		Mailbox:       128,
		BatchWait:     300 * time.Microsecond,
		PipelineDepth: 2,
	}
}

func startTestNode(t *testing.T, id, path string) *Node {
	t.Helper()
	n, err := StartNode(NodeConfig{
		ID:     id,
		Server: testNodeCfg(path),
		Repl:   ReplConfig{Window: 512},
	})
	if err != nil {
		t.Fatalf("start node %s: %v", id, err)
	}
	return n
}

func nodeInfos(nodes map[string]*Node) []NodeInfo {
	var out []NodeInfo
	for id, n := range nodes {
		out = append(out, NodeInfo{
			ID:   id,
			Addr: n.Server().Addr(),
			Ctrl: "http://" + n.CtrlAddr(),
		})
	}
	return out
}

// routerStatus fetches /cluster/status and returns state by node id.
func routerStatus(t *testing.T, r *Router) map[string]string {
	t.Helper()
	resp, err := http.Get("http://" + r.CtrlAddr() + "/cluster/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Nodes []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	m := map[string]string{}
	for _, n := range out.Nodes {
		m[n.ID] = n.State
	}
	return m
}

func waitState(t *testing.T, r *Router, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if routerStatus(t, r)[id] == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never reached state %s (now %s)", id, want, routerStatus(t, r)[id])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pairContents shuts every node down gracefully, reopens the images
// in-process, and returns per-id contents maps for the pair-equality
// checks.
func reopenContents(t *testing.T, paths map[string]string) map[string]map[uint64]uint64 {
	t.Helper()
	out := map[string]map[uint64]uint64{}
	for id, p := range paths {
		s, err := kvserve.New(testNodeCfg(p))
		if err != nil {
			t.Fatalf("reopen %s: %v", id, err)
		}
		if !s.Restored() {
			t.Fatalf("reopen %s: image not detected", id)
		}
		if err := s.VerifyRecovered(); err != nil {
			t.Fatalf("reopen %s: verify: %v", id, err)
		}
		out[id] = s.Contents()
		s.Close()
	}
	return out
}

// assertPairDurability checks the cluster-wide contract over reopened
// images: every acked put present with its value on BOTH members of
// its slot's pair, and nothing beyond preload+sent anywhere.
func assertPairDurability(t *testing.T, ids []string, contents map[string]map[uint64]uint64,
	acked, sent map[uint64]uint64) {
	t.Helper()
	pairs, err := BuildPairs(ids, DefaultVNodes, DefaultLoadFactor)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for k, v := range acked {
		p := pairs[SlotOf(k)]
		for _, m := range []int{p[0], p[1]} {
			if m < 0 {
				continue
			}
			got, ok := contents[ids[m]][k]
			if !ok {
				where := ""
				for id, c := range contents {
					if _, on := c[k]; on {
						where += " " + id
					}
				}
				t.Errorf("acked key %#x (slot %d, pair %s/%s) missing on %s; present on:%s",
					k, SlotOf(k), ids[p[0]], ids[p[1]], ids[m], where)
				if bad++; bad >= 8 {
					t.FailNow()
				}
			} else if got != v {
				t.Fatalf("acked key %#x = %#x on %s, want %#x", k, got, ids[m], v)
			}
		}
	}
	if bad > 0 {
		t.FailNow()
	}
	cfg := testNodeCfg("")
	preload := map[uint64]uint64{}
	for tid := 0; tid < cfg.Streams; tid++ {
		for i := 0; i < cfg.Keys; i++ {
			k := workloads.KVKey(tid, i)
			preload[k] = workloads.KVInitVal(cfg.Seed, k)
		}
	}
	for id, c := range contents {
		for k, v := range c {
			if pv, ok := preload[k]; ok {
				if v != pv {
					t.Fatalf("node %s: preloaded key %#x corrupted", id, k)
				}
				continue
			}
			sv, ok := sent[k]
			if !ok {
				t.Fatalf("node %s: ghost key %#x survived", id, k)
			}
			if v != sv {
				t.Fatalf("node %s: key %#x holds %#x, sent %#x", id, k, v, sv)
			}
		}
	}
}

// TestClusterReplicatedLoad boots two in-process nodes behind a router,
// drives insert-only load through the proxy, and asserts the
// cluster-wide ack rule the hard way: after a graceful drain, every
// acked put must be present on both members of its slot pair.
func TestClusterReplicatedLoad(t *testing.T) {
	dir := t.TempDir()
	ids := []string{"n0", "n1"}
	nodes := map[string]*Node{}
	paths := map[string]string{}
	for _, id := range ids {
		paths[id] = filepath.Join(dir, id+".img")
		nodes[id] = startTestNode(t, id, paths[id])
	}
	r, err := StartRouter(RouterConfig{
		Nodes:     nodeInfos(nodes),
		Heartbeat: 20 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()

	cfg := testNodeCfg("")
	var mu sync.Mutex
	sent := map[uint64]uint64{}
	acked := map[uint64]uint64{}
	rep, err := kvserve.RunLoad(r.Addr(), kvserve.LoadOpts{
		Conns: 2, Window: 16, Ops: 1500, InsertOnly: true,
		Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
		OnSend: func(_ int, k, v uint64) { mu.Lock(); sent[k] = v; mu.Unlock() },
		OnAck:  func(_ int, k, v uint64) { mu.Lock(); acked[k] = v; mu.Unlock() },
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.AckedPuts == 0 {
		t.Fatal("no puts acked through the router")
	}
	// Reads must route too: spot-check a handful of acked keys live.
	cl, err := kvserve.Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	mu.Lock()
	for k, v := range acked {
		got, st, err := cl.Get(k)
		if err != nil || st != kvserve.StatusOK || got != v {
			mu.Unlock()
			t.Fatalf("get %#x via router: %#x st=%d err=%v, want %#x", k, got, st, err, v)
		}
		if checked++; checked >= 32 {
			break
		}
	}
	mu.Unlock()
	cl.Close()

	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	contents := reopenContents(t, paths)
	mu.Lock()
	defer mu.Unlock()
	assertPairDurability(t, ids, contents, acked, sent)
	t.Logf("acked %d puts over 2 nodes; pair equality holds", len(acked))
}

// TestClusterFailoverRejoin is the in-process failover drill: kill a
// node's listeners mid-load (Abort — no drain, open batch lost), watch
// the router promote its pair peers and the load keep acking, restart
// the node on the same image and control port, and require the rejoin
// to converge with the pair contract intact.
func TestClusterFailoverRejoin(t *testing.T) {
	dir := t.TempDir()
	ids := []string{"n0", "n1", "n2"}
	nodes := map[string]*Node{}
	paths := map[string]string{}
	for _, id := range ids {
		paths[id] = filepath.Join(dir, id+".img")
		nodes[id] = startTestNode(t, id, paths[id])
	}
	r, err := StartRouter(RouterConfig{
		Nodes:     nodeInfos(nodes),
		Heartbeat: 15 * time.Millisecond,
		LeaseMiss: 3,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()

	cfg := testNodeCfg("")
	var mu sync.Mutex
	sent := map[uint64]uint64{}
	acked := map[uint64]uint64{}
	ackedN := func() int { mu.Lock(); defer mu.Unlock(); return len(acked) }

	loadDone := make(chan kvserve.LoadReport, 1)
	go func() {
		rep, _ := kvserve.RunLoad(r.Addr(), kvserve.LoadOpts{
			Conns: 2, Window: 16, Dur: 6 * time.Second, InsertOnly: true,
			MaxRetries: 100, Reconnect: true,
			Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
			OnSend: func(_ int, k, v uint64) { mu.Lock(); sent[k] = v; mu.Unlock() },
			OnAck:  func(_ int, k, v uint64) { mu.Lock(); acked[k] = v; mu.Unlock() },
		})
		loadDone <- rep
	}()

	waitAcked := func(min int, why string) {
		deadline := time.Now().Add(20 * time.Second)
		for ackedN() < min {
			if time.Now().After(deadline) {
				t.Fatalf("%s: stuck at %d acked puts (want %d)", why, ackedN(), min)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitAcked(300, "warmup")

	// Crash n0's network face: conns die, open batch is not sealed.
	victim := "n0"
	victimCtrl := nodes[victim].CtrlAddr()
	if err := nodes[victim].Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	waitState(t, r, victim, StateDead, 5*time.Second)
	preFailover := ackedN()
	waitAcked(preFailover+300, "post-failover continuity")

	// Restart on the same image and control address; the router must
	// adopt it, drain the deltas, and return it to alive.
	n0, err := StartNode(NodeConfig{
		ID:       victim,
		CtrlAddr: victimCtrl,
		Server:   testNodeCfg(paths[victim]),
		Repl:     ReplConfig{Window: 512},
	})
	if err != nil {
		t.Fatalf("restart %s: %v", victim, err)
	}
	nodes[victim] = n0
	if !n0.Server().Restored() {
		t.Fatal("restarted node did not recover its image")
	}
	waitState(t, r, victim, StateAlive, 15*time.Second)

	rep := <-loadDone
	// In proxy mode the router absorbs the backend's death: clients
	// keep their connections and see Overload flushes, which the
	// engine retries — so the failover shows up as retries, not
	// client-side resets.
	if rep.Retries == 0 && rep.Overloads == 0 {
		t.Error("expected overload/retry churn through the failover")
	}
	if rep.AckedPuts == 0 {
		t.Fatal("no puts acked")
	}
	t.Logf("load: %d ops, %d acked, %d retries, %d resets, %d errors",
		rep.Ops, rep.AckedPuts, rep.Retries, rep.ConnResets, rep.Errors)

	// Quiesce: let any post-rejoin forwards settle, then verify every
	// acked key through the router before shutdown.
	cl, err := kvserve.Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	ackedCopy := make(map[uint64]uint64, len(acked))
	for k, v := range acked {
		ackedCopy[k] = v
	}
	mu.Unlock()
	for k, v := range ackedCopy {
		got, st, err := cl.Get(k)
		if err != nil || st != kvserve.StatusOK || got != v {
			t.Fatalf("acked key %#x unreadable after failover+rejoin: %#x st=%d err=%v (want %#x)",
				k, got, st, err, v)
		}
	}
	cl.Close()

	for _, id := range ids {
		resp, err := http.Get("http://" + nodes[id].CtrlAddr() + "/metrics")
		if err == nil {
			var lines []byte
			buf := make([]byte, 1<<16)
			n, _ := resp.Body.Read(buf)
			for _, l := range bytes.Split(buf[:n], []byte("\n")) {
				if bytes.HasPrefix(l, []byte("cluster_repl_")) && !bytes.Contains(l, []byte("lag")) {
					lines = append(lines, l...)
					lines = append(lines, ' ', '|', ' ')
				}
			}
			resp.Body.Close()
			t.Logf("%s repl: %s", id, lines)
		}
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	contents := reopenContents(t, paths)
	mu.Lock()
	defer mu.Unlock()
	assertPairDurability(t, ids, contents, acked, sent)
	t.Logf("acked %d puts across failover+rejoin; pair equality holds on reopened images", len(acked))
}

// TestNodeHealthzLifecycle asserts the readiness split: /healthz on a
// live node reports serving with the applied epoch.
func TestNodeHealthzLifecycle(t *testing.T) {
	dir := t.TempDir()
	n := startTestNode(t, "solo", filepath.Join(dir, "solo.img"))
	defer n.Close()

	resp, err := http.Get("http://" + n.CtrlAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "serving" || h.Node != "solo" {
		t.Fatalf("healthz: %+v (HTTP %d)", h, resp.StatusCode)
	}
	if h.Addr != n.Server().Addr() {
		t.Fatalf("healthz addr %s, want %s", h.Addr, n.Server().Addr())
	}

	// Topology application is visible through the reported epoch.
	pairs, _ := BuildPairs([]string{"solo"}, 8, 1.25)
	topo := &Topology{
		Epoch: 7,
		Nodes: []NodeInfo{{ID: "solo", Addr: n.Server().Addr(), State: StateAlive}},
		Slots: make([]SlotAssign, NumSlots),
	}
	for s := range topo.Slots {
		topo.Slots[s] = SlotAssign{Primary: pairs[s][0], Follower: -1, Pair: -1}
	}
	body, _ := json.Marshal(topo)
	pr, err := http.Post("http://"+n.CtrlAddr()+"/cluster/topology", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("topology push: HTTP %d", pr.StatusCode)
	}
	if got := n.Repl().Epoch(); got != 7 {
		t.Fatalf("applied epoch %d, want 7", got)
	}
}

// TestStartNodeRejectsExhaustibleWindow pins the startup validation:
// a replication window the commit pipelines can exhaust (≤ Shards ×
// (PipelineDepth+1) sealed-but-unacked batches, each holding one
// OpReplBatch slot per peer) would deadlock the shard owners against
// their own flushers, so StartNode must refuse it.
func TestStartNodeRejectsExhaustibleWindow(t *testing.T) {
	cfg := testNodeCfg(filepath.Join(t.TempDir(), "w0.img"))
	n, err := StartNode(NodeConfig{
		ID:     "w0",
		Server: cfg,
		Repl:   ReplConfig{Window: cfg.PipelineBatches()},
	})
	if err == nil {
		n.Close()
		t.Fatalf("StartNode accepted window %d, the pipelines' exact unacked-batch capacity", cfg.PipelineBatches())
	}
	n, err = StartNode(NodeConfig{
		ID:     "w0",
		Server: cfg,
		Repl:   ReplConfig{Window: cfg.PipelineBatches() + 1},
	})
	if err != nil {
		t.Fatalf("StartNode refused the smallest safe window: %v", err)
	}
	n.Close()
}

// TestNodeGatesPutsUntilTopology pins the startup fence: a clustered
// node that has not applied any topology must answer client puts with
// Overload — Forward has no view, so acking would be a silent RF=1
// write outside the router's epoch fence. After the first applied
// epoch the same put succeeds.
func TestNodeGatesPutsUntilTopology(t *testing.T) {
	n := startTestNode(t, "g0", filepath.Join(t.TempDir(), "g0.img"))
	defer n.Close()

	conn, err := net.Dial("tcp", n.Server().Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	put := func(seq uint32, key, val uint64) byte {
		var f [kvserve.ReqSize]byte
		kvserve.EncodeReq(&f, kvserve.OpPut, seq, key, val)
		if _, err := conn.Write(f[:]); err != nil {
			t.Fatalf("put write: %v", err)
		}
		var rb [kvserve.RespSize]byte
		if _, err := io.ReadFull(conn, rb[:]); err != nil {
			t.Fatalf("put read: %v", err)
		}
		rseq, status, _ := kvserve.DecodeResp(&rb)
		if rseq != seq {
			t.Fatalf("response seq %d, want %d", rseq, seq)
		}
		return status
	}

	key := workloads.KVKey(0, 1)
	if st := put(1, key, 42); st != kvserve.StatusOverload {
		t.Fatalf("pre-topology put: status %d, want Overload", st)
	}

	topo := &Topology{
		Epoch: 1,
		Nodes: []NodeInfo{{ID: "g0", Addr: n.Server().Addr(), State: StateAlive}},
		Slots: make([]SlotAssign, NumSlots),
	}
	for s := range topo.Slots {
		topo.Slots[s] = SlotAssign{Primary: 0, Follower: -1, Pair: -1}
	}
	if err := n.Repl().ApplyTopology(topo); err != nil {
		t.Fatalf("apply topology: %v", err)
	}
	if st := put(2, key, 42); st != kvserve.StatusOK {
		t.Fatalf("post-topology put: status %d, want OK", st)
	}
}
