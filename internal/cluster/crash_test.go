package cluster

// The whole-node kill drill: a real cluster member process destroyed
// with SIGKILL mid-load — heap gone, sockets reset, its image as torn
// as the group commit left it — while the router fails its slots over
// and the load keeps acking. The test binary re-execs itself as the
// node (TestMain's child branch) so the kill takes out a genuine
// process, not a goroutine. The contract under test is the cluster-
// wide acked-prefix rule: after failover, rejoin, and a final drain,
// every acked put is present with its value on BOTH members of its
// slot's static pair, and no node holds a key the clients never sent.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lazyp/internal/kvserve"
)

const (
	clusterChildEnv = "CLUSTER_CRASH_CHILD" // "<id>;<image path>"
	clusterCtrlEnv  = "CLUSTER_CRASH_CTRL"  // control listen addr ("" = any)
)

func TestMain(m *testing.M) {
	if spec := os.Getenv(clusterChildEnv); spec != "" {
		runClusterChild(spec, os.Getenv(clusterCtrlEnv))
		return
	}
	os.Exit(m.Run())
}

// runClusterChild is the re-exec'd node process: boot a member on the
// given image (testNodeCfg geometry, so the parent can reopen the
// image with the same config), report the bound addresses on stdout,
// and serve until killed.
func runClusterChild(spec, ctrl string) {
	id, path, ok := strings.Cut(spec, ";")
	if !ok {
		fmt.Fprintln(os.Stderr, "cluster crash child: bad spec", spec)
		os.Exit(3)
	}
	n, err := StartNode(NodeConfig{
		ID:       id,
		CtrlAddr: ctrl,
		Server:   testNodeCfg(path),
		Repl:     ReplConfig{Window: 512},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster crash child:", err)
		os.Exit(3)
	}
	fmt.Printf("CLUSTER_NODE data=%s ctrl=%s\n", n.Server().Addr(), n.CtrlAddr())
	select {} // serve until killed
}

// childNode is the parent's handle on one re-exec'd member.
type childNode struct {
	id   string
	path string
	cmd  *exec.Cmd
	data string
	ctrl string
}

// spawnChildNode re-execs the test binary as cluster member id on the
// given image, pinning the control address when ctrl is nonempty (the
// restart path must come back on the address the router polls).
func spawnChildNode(t *testing.T, id, path, ctrl string) *childNode {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		clusterChildEnv+"="+id+";"+path,
		clusterCtrlEnv+"="+ctrl)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn node %s: %v", id, err)
	}
	c := &childNode{id: id, path: path, cmd: cmd}
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if l, ok := strings.CutPrefix(sc.Text(), "CLUSTER_NODE "); ok {
				lineCh <- l
				return
			}
		}
	}()
	select {
	case l := <-lineCh:
		for _, f := range strings.Fields(l) {
			if v, ok := strings.CutPrefix(f, "data="); ok {
				c.data = v
			}
			if v, ok := strings.CutPrefix(f, "ctrl="); ok {
				c.ctrl = v
			}
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("node %s never reported its addresses", id)
	}
	if c.data == "" || c.ctrl == "" {
		cmd.Process.Kill()
		t.Fatalf("node %s reported incomplete addresses (data=%q ctrl=%q)", id, c.data, c.ctrl)
	}
	return c
}

// kill SIGKILLs the child and reaps it: no drain, no pad, no goodbye.
func (c *childNode) kill() {
	c.cmd.Process.Signal(syscall.SIGKILL)
	c.cmd.Wait()
}

// TestClusterCrashKillFailover is the end-to-end cluster durability
// demo CI runs: three real node processes behind an in-process router,
// insert load through the proxy, SIGKILL the primary-heavy victim
// mid-load, require the acked count to keep climbing through the
// failover, restart the victim on the same image and control address,
// require the rejoin to converge, then kill everything and hold the
// reopened images to the static-pair contract.
func TestClusterCrashKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash drill")
	}
	dir := t.TempDir()
	ids := []string{"n0", "n1", "n2"}
	children := map[string]*childNode{}
	paths := map[string]string{}
	var infos []NodeInfo
	for _, id := range ids {
		paths[id] = filepath.Join(dir, id+".img")
		c := spawnChildNode(t, id, paths[id], "")
		children[id] = c
		infos = append(infos, NodeInfo{ID: id, Addr: c.data, Ctrl: "http://" + c.ctrl})
	}
	defer func() {
		for _, c := range children {
			c.kill()
		}
	}()

	// Under the race detector every party here — the children are the
	// same instrumented binary — runs 5–20× slower, so a 45 ms lease
	// would expire on healthy-but-slow nodes and adjudicate spurious
	// failovers. Slack the lease and the convergence deadlines, not
	// the logic.
	slack := time.Duration(1)
	if RaceEnabled {
		slack = 4
	}
	r, err := StartRouter(RouterConfig{
		Nodes:     infos,
		Heartbeat: 15 * time.Millisecond * slack,
		LeaseMiss: 3,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()

	cfg := testNodeCfg("")
	var mu sync.Mutex
	sent := map[uint64]uint64{}
	acked := map[uint64]uint64{}
	// phase[k] records when k was acked: 1 pre-kill, 2 dead window,
	// 3 after the victim rejoined — the first thing to ask about any
	// key the durability check reports missing.
	phase := map[uint64]int{}
	curPhase := 1
	ackedN := func() int { mu.Lock(); defer mu.Unlock(); return len(acked) }
	setPhase := func(p int) { mu.Lock(); curPhase = p; mu.Unlock() }

	loadDone := make(chan kvserve.LoadReport, 1)
	go func() {
		rep, _ := kvserve.RunLoad(r.Addr(), kvserve.LoadOpts{
			Conns: 2, Window: 16, Dur: 6 * time.Second, InsertOnly: true,
			MaxRetries: 100, Reconnect: true,
			Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
			OnSend: func(_ int, k, v uint64) { mu.Lock(); sent[k] = v; mu.Unlock() },
			OnAck: func(_ int, k, v uint64) {
				mu.Lock()
				acked[k] = v
				phase[k] = curPhase
				mu.Unlock()
			},
		})
		loadDone <- rep
	}()

	waitAcked := func(min int, why string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for ackedN() < min {
			if time.Now().After(deadline) {
				t.Fatalf("%s: stuck at %d acked puts (want %d)", why, ackedN(), min)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitAcked(300, "warmup")

	// SIGKILL the victim process whole: its primaries' open batches,
	// replication sessions, and control plane all vanish at once.
	victim := "n0"
	victimCtrl := children[victim].ctrl
	children[victim].kill()
	setPhase(2)
	waitState(t, r, victim, StateDead, 5*time.Second*slack)
	preFailover := ackedN()
	waitAcked(preFailover+300, "post-failover continuity")

	// Restart on the same image and control address: journal-replay
	// recovery in a fresh process, then router-driven catch-up.
	children[victim] = spawnChildNode(t, victim, paths[victim], victimCtrl)
	waitState(t, r, victim, StateAlive, 15*time.Second*slack)
	setPhase(3)

	rep := <-loadDone
	if rep.AckedPuts == 0 {
		t.Fatal("no puts acked")
	}
	if rep.Retries == 0 && rep.Overloads == 0 {
		t.Error("expected overload/retry churn through the failover")
	}
	t.Logf("load: %d ops, %d acked, %d retries, %d resets, %d errors",
		rep.Ops, rep.AckedPuts, rep.Retries, rep.ConnResets, rep.Errors)

	// Every acked key must read back through the router before the
	// final kill — the live half of the contract.
	cl, err := kvserve.Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	ackedCopy := make(map[uint64]uint64, len(acked))
	for k, v := range acked {
		ackedCopy[k] = v
	}
	mu.Unlock()
	for k, v := range ackedCopy {
		got, st, err := cl.Get(k)
		if err != nil || st != kvserve.StatusOK || got != v {
			t.Fatalf("acked key %#x unreadable after failover+rejoin: %#x st=%d err=%v (want %#x)",
				k, got, st, err, v)
		}
	}
	cl.Close()

	// The live half of the pair contract, aimed at the catch-up path:
	// every key acked after the kill (RF=1 dead-window acks included)
	// must by now be present on BOTH pair members' running stores —
	// read each member directly, not through the router.
	pairs, err := BuildPairs(ids, DefaultVNodes, DefaultLoadFactor)
	if err != nil {
		t.Fatal(err)
	}
	direct := map[string]*kvserve.Client{}
	for _, c := range children {
		if direct[c.id], err = kvserve.Dial(c.data); err != nil {
			t.Fatalf("dial %s: %v", c.id, err)
		}
	}
	mu.Lock()
	lateAcked := map[uint64]uint64{}
	for k, v := range acked {
		if phase[k] >= 2 {
			lateAcked[k] = v
		}
	}
	mu.Unlock()
	for k, v := range lateAcked {
		p := pairs[SlotOf(k)]
		for _, m := range []int{p[0], p[1]} {
			if m < 0 {
				continue
			}
			got, st, err := direct[ids[m]].Get(k)
			if err != nil || st != kvserve.StatusOK || got != v {
				t.Errorf("post-kill acked key %#x absent from live %s: %#x st=%d err=%v (want %#x)",
					k, ids[m], got, st, err, v)
			}
		}
	}
	for _, c := range direct {
		c.Close()
	}
	if t.Failed() {
		t.FailNow()
	}

	// Kill every node without ceremony. Acked means both pair members
	// group-committed, so the images must agree even through SIGKILL.
	for _, c := range children {
		c.kill()
	}
	contents := reopenContents(t, paths)
	mu.Lock()
	defer mu.Unlock()
	for k := range acked {
		p := pairs[SlotOf(k)]
		for _, m := range []int{p[0], p[1]} {
			if m >= 0 {
				if _, ok := contents[ids[m]][k]; !ok {
					t.Logf("missing key %#x was acked in phase %d (1=pre-kill, 2=dead window, 3=post-rejoin)",
						k, phase[k])
				}
			}
		}
	}
	assertPairDurability(t, ids, contents, acked, sent)
	t.Logf("acked %d puts across a process kill, failover, and rejoin; pair equality holds", len(acked))
}

// TestClusterCrashFollowerMidBatch aims the SIGKILL at the follower
// half of the OpReplBatch path. A three-node cluster streams insert
// load; batched replication frames are continuously in flight, so the
// kill lands mid-run for some batch on every shard the victim follows
// — the TCP reset arrives while the surviving primaries hold tokens on
// unacked runs. The contract: primaries resolve those whole runs as
// degraded without stalling (RF=1 lease-gated acks on every slot whose
// primary survived), the delta buffer absorbs the dead window, the
// rejoin drains it, and the reopened images show the acked-prefix and
// no-ghost properties on every pair.
func TestClusterCrashFollowerMidBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash drill")
	}
	dir := t.TempDir()
	ids := []string{"m0", "m1", "m2"}
	children := map[string]*childNode{}
	paths := map[string]string{}
	var infos []NodeInfo
	for _, id := range ids {
		paths[id] = filepath.Join(dir, id+".img")
		c := spawnChildNode(t, id, paths[id], "")
		children[id] = c
		infos = append(infos, NodeInfo{ID: id, Addr: c.data, Ctrl: "http://" + c.ctrl})
	}
	defer func() {
		for _, c := range children {
			c.kill()
		}
	}()

	slack := time.Duration(1)
	if RaceEnabled {
		slack = 4
	}
	r, err := StartRouter(RouterConfig{
		Nodes:     infos,
		Heartbeat: 15 * time.Millisecond * slack,
		LeaseMiss: 3,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()

	cfg := testNodeCfg("")
	var mu sync.Mutex
	sent := map[uint64]uint64{}
	acked := map[uint64]uint64{}
	phase := map[uint64]int{}
	curPhase := 1
	ackedN := func() int { mu.Lock(); defer mu.Unlock(); return len(acked) }
	setPhase := func(p int) { mu.Lock(); curPhase = p; mu.Unlock() }

	loadDone := make(chan kvserve.LoadReport, 1)
	go func() {
		rep, _ := kvserve.RunLoad(r.Addr(), kvserve.LoadOpts{
			Conns: 2, Window: 16, Dur: 6 * time.Second, InsertOnly: true,
			MaxRetries: 100, Reconnect: true,
			Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
			OnSend: func(_ int, k, v uint64) { mu.Lock(); sent[k] = v; mu.Unlock() },
			OnAck: func(_ int, k, v uint64) {
				mu.Lock()
				acked[k] = v
				phase[k] = curPhase
				mu.Unlock()
			},
		})
		loadDone <- rep
	}()

	waitAcked := func(min int, why string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for ackedN() < min {
			if time.Now().After(deadline) {
				t.Fatalf("%s: stuck at %d acked puts (want %d)", why, ackedN(), min)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitAcked(300, "warmup")

	// The victim is a follower for roughly a third of the slots; the
	// survivingPrimary set is the slots whose primary outlives the kill
	// but whose replication target just vanished mid-batch — the exact
	// paths that must keep acking at RF=1 without waiting for failover.
	victim := "m1"
	topo := r.Topology()
	vi := topo.NodeIndex(victim)
	if vi < 0 {
		t.Fatalf("victim %s not in topology", victim)
	}
	followerSlots := 0
	for _, sa := range topo.Slots {
		if sa.Pair == vi && sa.Primary >= 0 && sa.Primary != vi {
			followerSlots++
		}
	}
	if followerSlots == 0 {
		t.Fatalf("victim %s follows no slots; the kill would not touch the replication path", victim)
	}
	victimCtrl := children[victim].ctrl
	children[victim].kill()
	setPhase(2)

	// RF=1 continuity on the surviving primaries' slots: acks must keep
	// climbing on keys the victim was following. Count them directly.
	deadWindowOnSurvivors := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for k, p := range phase {
			if p != 2 {
				continue
			}
			if sa := topo.Slots[SlotOf(k)]; sa.Pair == vi && sa.Primary != vi {
				n++
			}
		}
		return n
	}
	waitState(t, r, victim, StateDead, 5*time.Second*slack)
	deadline := time.Now().Add(20 * time.Second)
	for deadWindowOnSurvivors() < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("surviving primaries acked only %d puts on the victim's followed slots",
				deadWindowOnSurvivors())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rejoin on the same image: journal replay plus catch-up drains the
	// dead-window deltas back into the restarted follower.
	children[victim] = spawnChildNode(t, victim, paths[victim], victimCtrl)
	waitState(t, r, victim, StateAlive, 15*time.Second*slack)
	setPhase(3)

	rep := <-loadDone
	t.Logf("load: %d ops, %d acked (%d on victim-followed slots in the dead window), %d retries, %d resets",
		rep.Ops, rep.AckedPuts, deadWindowOnSurvivors(), rep.Retries, rep.ConnResets)
	if rep.AckedPuts == 0 {
		t.Fatal("no puts acked")
	}

	// Kill everything and hold the images to the pair contract: the
	// acked prefix present on both members of every slot's pair, and no
	// ghosts — no key on any image that a client never sent.
	for _, c := range children {
		c.kill()
	}
	contents := reopenContents(t, paths)
	mu.Lock()
	defer mu.Unlock()
	assertPairDurability(t, ids, contents, acked, sent)
	t.Logf("acked %d puts across a follower SIGKILL mid-batch; pair equality holds", len(acked))
}
