package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"lazyp/internal/kvserve"
	"lazyp/internal/obs"
)

// node.go is the clustered lpserve wrapper: one kvserve.Server plus a
// Replicator, tied together by a control-plane HTTP mux the router
// drives. The mux comes up *before* journal-replay recovery starts, so
// /healthz can report "recovering" while the data port is not yet
// accepting — the readiness split that lets the router (and the CI
// smoke script) distinguish a booting node from a dead one.

// NodeConfig configures StartNode.
type NodeConfig struct {
	// ID is the stable node identity; it must match the ID the router
	// was configured with, since ring placement hashes it.
	ID string
	// CtrlAddr is the control-plane listen address (HTTP: /healthz,
	// /cluster/*, /metrics, /debug/trace). Port 0 picks a free port.
	CtrlAddr string
	// Server is the kvserve config; StartNode installs the Replicator
	// as Server.Repl and forces Registry sharing so cluster_* and
	// kvserve_* series come out of one /metrics.
	Server kvserve.Config
	// Repl tunes the replication sessions; Self and Registry are set by
	// StartNode.
	Repl ReplConfig
}

// Node is a running cluster member.
type Node struct {
	ID   string
	srv  *kvserve.Server
	repl *Replicator
	ctrl net.Listener
	hsrv *http.Server
	reg  *obs.Registry

	// ready is 0 while recovering, 1 once the data plane serves.
	ready atomic.Uint32
}

// StartNode boots a cluster member: control mux first (readiness
// "recovering"), then the kvserve server (journal replay + listener),
// then readiness flips to "serving". The node starts with no topology
// — every put is local-only until the router's first push.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: NodeConfig.ID is required")
	}
	if cfg.CtrlAddr == "" {
		cfg.CtrlAddr = "127.0.0.1:0"
	}
	reg := cfg.Server.Registry
	if reg == nil {
		reg = obs.NewRegistry()
		cfg.Server.Registry = reg
	}
	cfg.Repl.Self = cfg.ID
	cfg.Repl.Registry = reg
	// One tracer for both halves of the node's pipeline: server stage
	// events and replicator stage_fwd_* events interleave in a single
	// ring, so one /debug/trace drain yields the node's complete view
	// of any traced put.
	if cfg.Server.Tracer == nil {
		cap := cfg.Server.TraceCap
		if cap == 0 {
			cap = 4096
		}
		cfg.Server.Tracer = obs.NewTracer(cap)
	}
	cfg.Repl.Tracer = cfg.Server.Tracer
	// The forward window must strictly exceed the commit pipelines'
	// unacked-batch capacity: each sealed-but-unacked batch can hold a
	// window slot (one OpReplBatch run per destination peer) whose
	// Waits only run after the batch flushes, so a window the pipeline
	// can exhaust deadlocks the shard owners against their own
	// flushers. Checked here, with defaults applied on both sides, so
	// a small -repl-window fails loudly instead of wedging.
	win := cfg.Repl.Window
	if win <= 0 {
		win = DefaultReplWindow
	}
	if batches := cfg.Server.PipelineBatches(); win <= batches {
		return nil, fmt.Errorf(
			"cluster: ReplConfig.Window %d must exceed the commit pipelines' unacked-batch capacity %d (Shards × (PipelineDepth+1)): raise the window or shrink the pipeline",
			win, batches)
	}
	repl := NewReplicator(cfg.Repl)
	cfg.Server.Repl = repl

	n := &Node{ID: cfg.ID, repl: repl, reg: reg}

	ln, err := net.Listen("tcp", cfg.CtrlAddr)
	if err != nil {
		repl.Close()
		return nil, fmt.Errorf("cluster: control listen %s: %w", cfg.CtrlAddr, err)
	}
	n.ctrl = ln
	mux := http.NewServeMux()
	mux.Handle("/healthz", http.HandlerFunc(n.handleHealthz))
	mux.Handle("/cluster/topology", http.HandlerFunc(n.handleTopology))
	mux.Handle("/cluster/catchup", http.HandlerFunc(n.handleCatchup))
	mux.Handle("/metrics", obs.MetricsHandler(reg))
	obs.RegisterPprof(mux)
	n.hsrv = &http.Server{Handler: mux}
	go n.hsrv.Serve(ln)

	srv, err := kvserve.New(cfg.Server)
	if err != nil {
		n.hsrv.Close()
		repl.Close()
		return nil, err
	}
	if err := srv.Start(); err != nil {
		srv.Close()
		n.hsrv.Close()
		repl.Close()
		return nil, err
	}
	n.srv = srv
	mux.Handle("/debug/trace", obs.TraceHandler(srv.Tracer()))
	n.ready.Store(1)
	return n, nil
}

// Server exposes the wrapped kvserve server (Addr, RecoveryStats...).
func (n *Node) Server() *kvserve.Server { return n.srv }

// Repl exposes the node's replicator (epoch, delta introspection).
func (n *Node) Repl() *Replicator { return n.repl }

// CtrlAddr is the bound control-plane address.
func (n *Node) CtrlAddr() string { return n.ctrl.Addr().String() }

// Close drains the data plane gracefully, then the control plane.
func (n *Node) Close() error { return n.stop(false) }

// Abort tears the node down without committing the open batch — the
// graceful-but-lossy stop crash tests use for the surviving nodes.
func (n *Node) Abort() error { return n.stop(true) }

func (n *Node) stop(abort bool) error {
	n.ready.Store(0)
	var err error
	if n.srv != nil {
		if abort {
			err = n.srv.Abort()
		} else {
			err = n.srv.Close()
		}
	}
	n.repl.Close()
	n.hsrv.Close()
	return err
}

// Health is the /healthz body.
type Health struct {
	// Status is "recovering" until journal replay finished and the
	// data listener serves, then "serving".
	Status string `json:"status"`
	// Node is the member ID.
	Node string `json:"node"`
	// Epoch is the topology epoch this node last applied (0 = none);
	// the router re-pushes when it lags.
	Epoch uint64 `json:"epoch"`
	// Addr is the data-plane address ("" while recovering).
	Addr string `json:"addr"`
}

func (n *Node) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := Health{Status: "recovering", Node: n.ID, Epoch: n.repl.Epoch()}
	code := http.StatusServiceUnavailable
	if n.ready.Load() == 1 {
		h.Status = "serving"
		h.Addr = n.srv.Addr()
		code = http.StatusOK
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}

// handleTopology accepts the router's POSTed Topology and answers the
// currently applied epoch on GET.
func (n *Node) handleTopology(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		var t Topology
		if err := json.NewDecoder(req.Body).Decode(&t); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := n.repl.ApplyTopology(&t); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		fmt.Fprintf(w, "%d\n", n.repl.Epoch())
	case http.MethodGet:
		fmt.Fprintf(w, "%d\n", n.repl.Epoch())
	default:
		http.Error(w, "topology: GET or POST", http.StatusMethodNotAllowed)
	}
}

// handleCatchup triggers a delta drain into the named peer:
// POST /cluster/catchup?peer=<id>. Responds with the replayed key
// count and the remaining delta length (nonzero when some replays
// degraded and re-buffered; the router retries until it reads 0).
func (n *Node) handleCatchup(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "catchup: POST", http.StatusMethodNotAllowed)
		return
	}
	peer := req.URL.Query().Get("peer")
	if peer == "" {
		http.Error(w, "catchup: peer parameter required", http.StatusBadRequest)
		return
	}
	replayed, err := n.repl.Catchup(peer)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{
		"replayed":  replayed,
		"remaining": n.repl.DeltaLen(peer),
	})
}
