package cluster

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/obs"
)

// TestClusterTracePropagation is the end-to-end span regression: a
// trace ID minted at the loadgen client must survive the router's
// zero-copy proxy (OpTraceCtx routed with its successor frame), the
// primary's pipeline, and the OpReplBatch trace-entry extension into
// the follower's apply path. The drains then make the same JSONL
// round trip lptrace does — WriteJSONL → ReadJSONL →
// AssembleTimelines — and at least one put must assemble into a
// cross-node timeline carrying a replication-ack stage.
func TestClusterTracePropagation(t *testing.T) {
	dir := t.TempDir()
	ids := []string{"n0", "n1", "n2"}
	nodes := map[string]*Node{}
	for _, id := range ids {
		nodes[id] = startTestNode(t, id, filepath.Join(dir, id+".img"))
		defer nodes[id].Close()
		nodes[id].Server().Tracer().Enable(true)
	}
	routerTr := obs.NewTracer(1 << 14)
	routerTr.Enable(true)
	r, err := StartRouter(RouterConfig{
		Nodes:     nodeInfos(nodes),
		Heartbeat: 20 * time.Millisecond,
		Tracer:    routerTr,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()

	clientTr := obs.NewTracer(1 << 14)
	clientTr.Enable(true)
	cfg := testNodeCfg("")
	rep, err := kvserve.RunLoad(r.Addr(), kvserve.LoadOpts{
		Conns: 2, Window: 16, Ops: 600, InsertOnly: true,
		Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
		TraceEvery: 4, Tracer: clientTr,
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.AckedPuts == 0 {
		t.Fatal("no puts acked through the router")
	}

	// Round-trip every drain through the JSONL encoding — the exact
	// path a real deployment takes through /debug/trace and lptrace.
	drains := map[string][]obs.Event{}
	roundTrip := func(name string, tr *obs.Tracer) {
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, tr.Drain(0)); err != nil {
			t.Fatalf("WriteJSONL(%s): %v", name, err)
		}
		evs, err := obs.ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("ReadJSONL(%s): %v", name, err)
		}
		drains[name] = evs
	}
	roundTrip("client", clientTr)
	roundTrip("router", routerTr)
	for id, n := range nodes {
		roundTrip(id, n.Server().Tracer())
	}

	timelines := obs.AssembleTimelines(drains)
	if len(timelines) == 0 {
		t.Fatal("no timelines assembled from any drain")
	}

	// The full ladder for one replicated put: the client saw it leave
	// and come back, the router routed it, the primary enqueued,
	// flushed, and resolved the replication wait, the forward hit the
	// wire and was acked, and the follower (a second node drain)
	// enqueued the replicated apply.
	full := 0
	for i := range timelines {
		tl := &timelines[i]
		nodeDrains := 0
		for _, n := range tl.Nodes() {
			if n != "client" && n != "router" {
				nodeDrains++
			}
		}
		if tl.Has(obs.EvClientSend) && tl.Has(obs.EvClientAck) &&
			tl.Has(obs.EvRouterRoute) &&
			tl.Has(obs.EvStageEnq) && tl.Has(obs.EvStageFlush) &&
			tl.Has(obs.EvStageReplAck) && tl.Has(obs.EvStageFwdAck) &&
			nodeDrains >= 2 {
			full++
			// Stage extraction must work on the shared host clock.
			if _, ok := tl.Stage(obs.EvStageEnq, obs.EvStageFlush); !ok {
				t.Errorf("trace %d: enq→flush stage not extractable", tl.Trace)
			}
		}
	}
	if full == 0 {
		for i := range timelines[:min(len(timelines), 5)] {
			tl := &timelines[i]
			t.Logf("trace %d nodes=%v events=%d", tl.Trace, tl.Nodes(), len(tl.Events))
		}
		t.Fatalf("no fully-assembled cross-node put timeline among %d traces", len(timelines))
	}
	t.Logf("%d/%d timelines fully assembled across client, router, primary, follower", full, len(timelines))
}
