package cluster

import (
	"testing"

	"lazyp/internal/kvserve"
)

// planTopo builds a two-node topology with every slot owned by node 0,
// except the slot of farKey which is owned by node 1 and the slot of
// orphanKey which has no live primary.
func planTopo(farKey, orphanKey uint64) *Topology {
	t := &Topology{
		Nodes: []NodeInfo{
			{ID: "n0", Addr: "a0", State: StateAlive},
			{ID: "n1", Addr: "a1", State: StateAlive},
		},
		Slots: make([]SlotAssign, NumSlots),
	}
	for i := range t.Slots {
		t.Slots[i] = SlotAssign{Primary: 0, Follower: 1, Pair: 1}
	}
	t.Slots[SlotOf(farKey)] = SlotAssign{Primary: 1, Follower: 0, Pair: 0}
	t.Slots[SlotOf(orphanKey)] = SlotAssign{Primary: -1, Follower: -1, Pair: 0}
	return t
}

func appendReq(b []byte, op byte, seq uint32, key uint64) []byte {
	var f [kvserve.ReqSize]byte
	kvserve.EncodeReq(&f, op, seq, key, 0)
	return append(b, f[:]...)
}

// TestPlanChunkSegments: the router's plan pass coalesces consecutive
// same-destination frames into one segment, routes pings and
// primary-less slots locally (node -1), and splits at every
// destination change.
func TestPlanChunkSegments(t *testing.T) {
	// Keys whose slots stay distinct under the planTopo carve-up.
	const nearKey, farKey, orphanKey = 3, 5, 11
	if SlotOf(farKey) == SlotOf(orphanKey) || SlotOf(nearKey) == SlotOf(farKey) ||
		SlotOf(nearKey) == SlotOf(orphanKey) {
		t.Fatal("test keys collide in slot space; pick different keys")
	}
	topo := planTopo(farKey, orphanKey)

	var chunk []byte
	chunk = appendReq(chunk, kvserve.OpPut, 0, nearKey)
	chunk = appendReq(chunk, kvserve.OpGet, 1, nearKey)
	chunk = appendReq(chunk, kvserve.OpPut, 2, farKey)
	chunk = appendReq(chunk, kvserve.OpPing, 3, 0)
	chunk = appendReq(chunk, kvserve.OpPut, 4, orphanKey)
	chunk = appendReq(chunk, kvserve.OpPut, 5, nearKey)

	segs := planChunk(chunk, topo, nil)
	want := []proxySeg{
		{node: 0, off: 0, end: 2 * kvserve.ReqSize},
		{node: 1, off: 2 * kvserve.ReqSize, end: 3 * kvserve.ReqSize},
		{node: -1, off: 3 * kvserve.ReqSize, end: 5 * kvserve.ReqSize},
		{node: 0, off: 5 * kvserve.ReqSize, end: 6 * kvserve.ReqSize},
	}
	if len(segs) != len(want) {
		t.Fatalf("planChunk produced %d segments %+v, want %d", len(segs), segs, len(want))
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}

	// A nil topology (none pushed yet) answers everything locally.
	if segs := planChunk(chunk, nil, nil); len(segs) != 1 || segs[0].node != -1 {
		t.Fatalf("nil-topology plan = %+v, want one local segment", segs)
	}
}

// TestPlanChunkZeroAlloc pins the data plane's steady state: planning
// a chunk into a reused segment slice allocates nothing.
func TestPlanChunkZeroAlloc(t *testing.T) {
	const nearKey, farKey, orphanKey = 3, 5, 11
	topo := planTopo(farKey, orphanKey)
	var chunk []byte
	for i := 0; i < 64; i++ {
		key := uint64(nearKey)
		switch i % 3 {
		case 1:
			key = farKey
		case 2:
			key = orphanKey
		}
		chunk = appendReq(chunk, kvserve.OpPut, uint32(i), key)
	}
	segs := make([]proxySeg, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		segs = planChunk(chunk, topo, segs[:0])
	})
	if allocs != 0 {
		t.Fatalf("planChunk allocates %.1f times per chunk, want 0", allocs)
	}
}
