package cluster

import (
	"testing"
)

// TestReplicatorDeltaCompaction pins the RF=1 degradation cost for
// overwrite-heavy mixes: while the pair peer is dead, the delta buffer
// holds the latest value per live key — not one entry per missed put —
// so catch-up replays O(live keys), no matter how long the outage or
// how hot the keys.
func TestReplicatorDeltaCompaction(t *testing.T) {
	r := NewReplicator(ReplConfig{Self: "p0", Window: 8})
	defer r.Close()

	topo := &Topology{
		Epoch: 1,
		Nodes: []NodeInfo{
			{ID: "p0", Addr: "127.0.0.1:9", State: StateAlive},
			{ID: "p1", Addr: "127.0.0.1:10", State: StateDead},
		},
		Slots: make([]SlotAssign, NumSlots),
	}
	for i := range topo.Slots {
		topo.Slots[i] = SlotAssign{Primary: 0, Follower: -1, Pair: 1}
	}
	if err := r.ApplyTopology(topo); err != nil {
		t.Fatalf("ApplyTopology: %v", err)
	}

	// 100 rounds of overwrites across 32 live keys, forwarded in the
	// batches the flusher would hand over. Every put lands in the dead
	// peer's delta; each round supersedes the previous one.
	const liveKeys, rounds = 32, 100
	keys := make([]uint64, liveKeys)
	vals := make([]uint64, liveKeys)
	tids := make([]uint64, liveKeys)
	toks := make([]uint64, liveKeys)
	for round := 0; round < rounds; round++ {
		for j := range keys {
			keys[j] = uint64(j + 1)
			vals[j] = uint64(round)<<32 | uint64(j+1)
		}
		r.ForwardBatch(keys, vals, tids, toks)
		for j, tok := range toks {
			if tok != 0 {
				t.Fatalf("round %d key %#x: token %#x, want 0 (dead peer buffers at RF=1)",
					round, keys[j], tok)
			}
		}
	}

	if n := r.DeltaLen("p1"); n != liveKeys {
		t.Fatalf("delta holds %d entries after %d overwriting puts, want %d (one per live key)",
			n, liveKeys*rounds, liveKeys)
	}

	// The surviving entry per key must be the newest value — replaying
	// a stale one at catch-up would roll the follower back.
	v := r.view.Load()
	for j := 0; j < liveKeys; j++ {
		key := uint64(j + 1)
		ps := v.peers[SlotOf(key)]
		if ps == nil {
			t.Fatalf("key %#x routes to no peer", key)
		}
		ps.mu.Lock()
		ent, ok := ps.delta[key]
		ps.mu.Unlock()
		want := uint64(rounds-1)<<32 | key
		if !ok || ent.val != want {
			t.Fatalf("key %#x buffered as %#x (ok=%v), want newest value %#x", key, ent.val, ok, want)
		}
	}
}
