package loadmodel

import (
	"fmt"
	"sort"

	"lazyp/internal/workloads"
)

// Op is one generated operation: a put or get against the kvserve
// key space, scheduled At nanoseconds into the run, attributed to a
// global client index and an SLO class index (into Spec.Classes).
type Op struct {
	At     int64 // ns offset from run start
	Client int32 // global client index across classes, spec order
	Class  int32 // index into Spec.Classes
	IsPut  bool
	Key    uint64
	Val    uint64 // put payload; 0 for gets
}

// maxGenOps bounds a runaway spec (rate × duration) before the slice
// allocation does it the hard way.
const maxGenOps = 50_000_000

// Generate expands a Spec into its op stream, sorted by At with
// per-client order preserved on ties. The stream is a pure function
// of the spec (including Seed): same spec ⇒ byte-identical ops on any
// machine.
//
// Key semantics match kvserve preload geometry: reads and updates
// target stream tid = client % Streams with kvgen's key encoding, so
// they hit preloaded keys; inserts allocate from per-client disjoint
// tids above the preload range (tid = Streams + client), so spec runs
// never collide with the preload or each other.
func Generate(spec *Spec) ([]Op, error) {
	expected := 0.0
	for ci := range spec.Classes {
		c := &spec.Classes[ci]
		rp := newRamp(c, spec.durNs)
		expected += c.RateOpsS * rp.total()
	}
	if expected > maxGenOps {
		return nil, fmt.Errorf("loadmodel: spec expands to ~%.0f ops (cap %d); shrink rate or duration",
			expected, maxGenOps)
	}

	ops := make([]Op, 0, int(expected)+spec.TotalClients())
	durS := float64(spec.durNs) / 1e9
	globalClient := 0
	for ci := range spec.Classes {
		c := &spec.Classes[ci]
		rp := newRamp(c, spec.durNs)
		weights := c.clientWeights()
		arr := newArrivalSampler(c.Arrival)
		picker := newKeyPicker(c.KeyDist, spec.Keys, func(n int, theta float64) zipfRanker {
			return workloads.NewZipfSampler(n, theta)
		})
		for j := 0; j < c.Clients; j++ {
			rate := c.RateOpsS * weights[j]
			if rate <= 0 {
				globalClient++
				continue
			}
			r := &rng{s: workloads.SplitMix64(spec.Seed) ^
				workloads.SplitMix64(uint64(ci)*0x9e3779b97f4a7c15+uint64(globalClient)+1)}
			tid := globalClient % spec.Streams
			insTid := spec.Streams + globalClient
			insCount := 0
			s := 0.0 // unit-rate cumulative arrival process
			for {
				s += arr.gap(r)
				t := rp.invert(s / rate)
				if t > durS {
					break
				}
				at := int64(t * 1e9)
				if at >= spec.durNs {
					break
				}
				op := Op{At: at, Client: int32(globalClient), Class: int32(ci)}
				p := int(r.next() % 100)
				switch {
				case p < c.Mix.ReadPct:
					op.Key = workloads.KVKey(tid, picker.pick(r))
				case p < c.Mix.ReadPct+c.Mix.UpdPct:
					op.IsPut = true
					op.Key = workloads.KVKey(tid, picker.pick(r))
					op.Val = r.next()
				default: // insert
					op.IsPut = true
					op.Key = workloads.KVKey(insTid, insCount)
					op.Val = r.next()
					insCount++
				}
				ops = append(ops, op)
				if len(ops) > maxGenOps {
					return nil, fmt.Errorf("loadmodel: op stream exceeded cap %d", maxGenOps)
				}
			}
			globalClient++
		}
	}

	// Concatenation order is class-major, client-major, time-ascending
	// per client, so a stable sort by (At, Client) preserves each
	// client's issue order — inserts stay monotone in their key index.
	sort.SliceStable(ops, func(i, k int) bool {
		if ops[i].At != ops[k].At {
			return ops[i].At < ops[k].At
		}
		return ops[i].Client < ops[k].Client
	})
	return ops, nil
}

// CountPuts returns how many ops in the stream are puts.
func CountPuts(ops []Op) int {
	n := 0
	for i := range ops {
		if ops[i].IsPut {
			n++
		}
	}
	return n
}

// ClassOps returns per-class op counts, indexed like Spec.Classes.
func ClassOps(ops []Op, classes int) []int {
	n := make([]int, classes)
	for i := range ops {
		n[ops[i].Class]++
	}
	return n
}
