package loadmodel

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/obs"
)

// RunOpts drives Run, the open-loop replayer.
type RunOpts struct {
	Conns       int // client connections; default 4
	MaxInflight int // in-flight cap per connection; default 512

	// Interval/Progress mirror kvserve.LoadOpts: a windowed progress
	// line every Interval, with cumulative reject counts by cause.
	Interval time.Duration
	Progress io.Writer

	// Registry, when non-nil, exports per-class latency histograms and
	// reject counters (loadmodel_class_* families) through obs.
	Registry *obs.Registry

	// Tracer/TraceEvery mirror kvserve.LoadOpts: every TraceEvery-th
	// issued op per connection mints a client trace ID, records
	// client_send/client_ack span events into Tracer, and — once the
	// connection's OpHello grants FeatTrace — ships the ID ahead of
	// the op as an OpTraceCtx prefix, so an open-loop replay feeds
	// lptrace the same cross-node timelines a closed-loop run does.
	Tracer     *obs.Tracer
	TraceEvery int
}

// RunReport is the measured outcome of replaying a trace open-loop.
// Per-class rows reuse ClassPlan so a prediction and a measurement
// compare field by field.
//
// The per-class latencies are *service* latencies — send to response,
// what the server plus the wire did — because that is what the planner
// models. The coordinated-omission view (latency from each op's
// scheduled time, which also charges client dispatch lag to the run)
// is kept in the aggregate SchedP50us/SchedP99us, with LagMaxUs/
// LagOps and Stalls saying how much dispatch slip and backpressure
// produced the gap. A run where the two views diverge wildly was
// client-bound (host timer granularity, CPU starvation) and is a poor
// validation target; the split makes that visible instead of folding
// host timer noise into the server's percentiles.
type RunReport struct {
	Spec     string      `json:"spec"`
	Conns    int         `json:"conns"`
	ElapsedS float64     `json:"elapsed_s"`
	Total    ClassPlan   `json:"total"`
	Classes  []ClassPlan `json:"classes"`

	SchedP50us float64 `json:"sched_p50_us"` // from scheduled time, all classes
	SchedP99us float64 `json:"sched_p99_us"`

	NotFound uint64  `json:"not_found"`
	Moved    uint64  `json:"moved"`
	Errors   uint64  `json:"errors"`
	Stalls   uint64  `json:"stalls"`     // issuer blocked on the inflight cap
	LagMaxUs float64 `json:"lag_max_us"` // worst dispatch lag behind schedule
	LagOps   uint64  `json:"lag_ops"`    // ops dispatched > 1ms late
	Partial  bool    `json:"partial,omitempty"`
}

// runAcc accumulates one class's settles; shared across connection
// goroutines, so everything is atomic.
type runAcc struct {
	hist     *obs.Histogram // settled-OK latency, ns
	putHist  *obs.Histogram
	served   atomic.Uint64
	notFound atomic.Uint64
	over     atomic.Uint64
	exp      atomic.Uint64
	full     atomic.Uint64
	moved    atomic.Uint64
	errs     atomic.Uint64
}

// Run replays a trace's op stream open-loop against a live server:
// each op is dispatched at start + Op.At on connection Client % Conns
// (a per-client token schedule, not a closed-loop window), per-class
// latencies are measured from the actual send (service view; see
// RunReport), and rejects are counted per cause without retrying — an
// open-loop run measures what the server did with the offered load, it
// does not reshape the load around the server.
func Run(addr string, tr *Trace, o RunOpts) (*RunReport, error) {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 512
	}
	if o.MaxInflight > 1<<16 {
		o.MaxInflight = 1 << 16 // seq encodes (slot, conn) in 32 bits
	}
	ops := tr.Ops
	classes := tr.Header.Classes
	if len(classes) == 0 {
		classes = []string{"all"}
	}

	accs := make([]runAcc, len(classes))
	for i := range accs {
		if o.Registry != nil {
			sc := o.Registry.Scope("class", classes[i])
			accs[i].hist = sc.HistogramScaled("loadmodel_class_latency_seconds", 1e-9)
			accs[i].putHist = sc.HistogramScaled("loadmodel_class_put_latency_seconds", 1e-9)
		} else {
			accs[i].hist = &obs.Histogram{}
			accs[i].putHist = &obs.Histogram{}
		}
	}
	var regRejects func(class int, cause string)
	if o.Registry != nil {
		regRejects = func(class int, cause string) {
			o.Registry.Scope("class", classes[class]).With("cause", cause).
				Counter("loadmodel_class_rejects_total").Inc()
		}
	}

	perConn := make([][]int32, o.Conns)
	for i := range ops {
		if int(ops[i].Class) >= len(classes) {
			return nil, fmt.Errorf("loadmodel: op %d references class %d of %d", i, ops[i].Class, len(classes))
		}
		c := int(ops[i].Client) % o.Conns
		perConn[c] = append(perConn[c], int32(i))
	}

	var (
		settled, issued, stalls, lagOps atomic.Uint64
		lagMaxNs                        atomic.Int64
		partial                         atomic.Bool
		firstErr                        atomic.Pointer[error]
	)
	schedHist := &obs.Histogram{}
	fail := func(err error) {
		partial.Store(true)
		if firstErr.Load() == nil {
			firstErr.CompareAndSwap(nil, &err)
		}
	}

	start := time.Now().Add(20 * time.Millisecond) // dial slack before t=0
	deadline := start.Add(time.Duration(tr.Header.DurNs)).Add(30 * time.Second)

	stopProg := make(chan struct{})
	var progWG sync.WaitGroup
	if o.Interval > 0 && o.Progress != nil {
		progWG.Add(1)
		go func() {
			defer progWG.Done()
			runProgress(o, accs, &settled, stopProg, start)
		}()
	}

	var wg sync.WaitGroup
	for ci := 0; ci < o.Conns; ci++ {
		list := perConn[ci]
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int, list []int32) {
			defer wg.Done()
			err := runConn(ci, addr, ops, list, start, deadline, o, accs, regRejects, connCounters{
				settled: &settled, issued: &issued, stalls: &stalls,
				lagOps: &lagOps, lagMaxNs: &lagMaxNs, sched: schedHist,
			})
			if err != nil {
				fail(fmt.Errorf("conn %d: %w", ci, err))
			}
		}(ci, list)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopProg)
	progWG.Wait()

	rep := buildRunReport(tr, classes, accs, o.Conns, elapsed.Seconds())
	ss := schedHist.Snapshot()
	rep.SchedP50us = float64(ss.Quantile(0.50)) / 1e3
	rep.SchedP99us = float64(ss.Quantile(0.99)) / 1e3
	rep.Stalls = stalls.Load()
	rep.LagMaxUs = float64(lagMaxNs.Load()) / 1e3
	rep.LagOps = lagOps.Load()
	rep.Partial = partial.Load()
	if ep := firstErr.Load(); ep != nil && rep.Total.Ops == 0 {
		return rep, *ep
	}
	return rep, nil
}

type connCounters struct {
	settled, issued, stalls, lagOps *atomic.Uint64
	lagMaxNs                        *atomic.Int64
	sched                           *obs.Histogram // scheduled-time latency, all classes
}

// runConn is one connection's issuer + reader pair. Sequence numbers
// are slot indices into a fixed in-flight window; the reader frees a
// slot per response, the issuer blocks on the free list only when the
// window is exhausted (counted as a stall — the open loop degraded to
// a closed one at MaxInflight).
func runConn(ci int, addr string, ops []Op, list []int32, start, deadline time.Time,
	o RunOpts, accs []runAcc, regRejects func(int, string), ctr connCounters) error {

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(deadline)

	// Trace negotiation happens synchronously before the reader starts,
	// so the hello response never collides with the slot space.
	traceOK := false
	if o.TraceEvery > 0 {
		var hf [kvserve.ReqSize]byte
		kvserve.EncodeReq(&hf, kvserve.OpHello, 0, kvserve.FeatTrace, 0)
		if _, err := conn.Write(hf[:]); err != nil {
			return err
		}
		var rf [kvserve.RespSize]byte
		if _, err := io.ReadFull(conn, rf[:]); err != nil {
			return err
		}
		_, _, val := kvserve.DecodeResp(&rf)
		traceOK = val&kvserve.FeatTrace != 0
	}

	slots := make([]int32, o.MaxInflight)  // slot -> global op index
	sendNs := make([]int64, o.MaxInflight) // slot -> send stamp (UnixNano)
	tids := make([]uint64, o.MaxInflight)  // slot -> trace ID (0 = untraced)
	free := make(chan int32, o.MaxInflight)
	for i := 0; i < o.MaxInflight; i++ {
		free <- int32(i)
	}

	readErr := make(chan error, 1)
	var received atomic.Uint64
	go func() {
		readErr <- connReadLoop(ci, conn, ops, slots, sendNs, tids, free, accs, regRejects, start, o.Tracer, ctr, &received)
	}()

	abort := func(err error) error {
		conn.Close()
		<-readErr
		return err
	}

	bw := newFrameWriter(conn)
	spinPace := runtime.NumCPU() > 1
	// Wall-clock high bits + connection index keep IDs unique across
	// connections and runs, same scheme as the closed-loop loadgen.
	tidBase := uint64(time.Now().UnixNano())<<12 | uint64(ci&0xfff)
	var tidSeq uint64
	var sent uint64
	for _, opi := range list {
		op := &ops[opi]
		due := start.Add(time.Duration(op.At))
		for {
			d := time.Until(due)
			if d <= 0 {
				break
			}
			// About to wait: everything written so far is due now or
			// earlier, so it must hit the wire before any idling —
			// batching is only for ops due at the same instant. Without
			// this, a steady sub-300µs gap would buffer up to 64 frames
			// (several ms of offered load) before the size flush fires.
			if bw.pending() > 0 {
				if err := bw.flush(); err != nil {
					return abort(err)
				}
				continue
			}
			if spinPace && d <= 300*time.Microsecond {
				// Close the last stretch with a yield loop: finer than
				// the sleep granularity, and the spare cores absorb it.
				runtime.Gosched()
			} else if spinPace {
				time.Sleep(d - 200*time.Microsecond)
			} else {
				// Single CPU: a spinning issuer would steal the core
				// from the very server (and reader) it is waiting on.
				// Sleep the full gap and let timer overshoot show up as
				// dispatch lag instead.
				time.Sleep(d)
			}
		}
		if lag := -time.Until(due); lag > time.Millisecond {
			ctr.lagOps.Add(1)
			for {
				m := ctr.lagMaxNs.Load()
				if int64(lag) <= m || ctr.lagMaxNs.CompareAndSwap(m, int64(lag)) {
					break
				}
			}
		}

		var slot int32
		select {
		case slot = <-free:
		default:
			// Window exhausted: the open loop degrades to a closed one
			// until a response frees a slot.
			ctr.stalls.Add(1)
			if err := bw.flush(); err != nil {
				return abort(err)
			}
			slot = <-free
		}
		slots[slot] = opi
		sendNs[slot] = time.Now().UnixNano()
		tids[slot] = 0
		if o.TraceEvery > 0 && sent%uint64(o.TraceEvery) == 0 {
			tidSeq++
			tid := tidBase + tidSeq
			tids[slot] = tid
			if o.Tracer != nil && o.Tracer.Enabled() {
				o.Tracer.Record(obs.EvClientSend, int32(ci), sendNs[slot], tid, op.Key)
			}
			if traceOK {
				// The prefix frame rides the same buffer as its op, so
				// the pair can never be split by a flush boundary the
				// server would see as two writes mid-decode (the stream
				// decoder handles that too — this just keeps them close).
				if err := bw.writeReq(kvserve.OpTraceCtx, uint32(slot), tid, 0); err != nil {
					return abort(err)
				}
			}
		}
		opc := byte(kvserve.OpGet)
		if op.IsPut {
			opc = kvserve.OpPut
		}
		if err := bw.writeReq(opc, uint32(slot), op.Key, op.Val); err != nil {
			return abort(err)
		}
		sent++
		ctr.issued.Add(1)
		if bw.pending() >= 64*kvserve.ReqSize {
			if err := bw.flush(); err != nil {
				return abort(err)
			}
		}
	}
	if err := bw.flush(); err != nil {
		return abort(err)
	}

	// Drain: wait for the reader to settle every issued op, then close
	// the connection — the reader's resulting read error is the clean
	// exit signal. A reader error before the drain completes is real.
	for received.Load() < sent {
		select {
		case err := <-readErr:
			if received.Load() == sent {
				return nil
			}
			if err == nil {
				err = fmt.Errorf("reader exited with %d/%d responses", received.Load(), sent)
			}
			return err
		case <-time.After(2 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			conn.Close()
			<-readErr
			return fmt.Errorf("drain timeout: %d/%d responses", received.Load(), sent)
		}
	}
	conn.Close()
	<-readErr
	return nil
}

func connReadLoop(ci int, conn net.Conn, ops []Op, slots []int32, sendNs []int64, tids []uint64,
	free chan<- int32, accs []runAcc, regRejects func(int, string), start time.Time,
	tracer *obs.Tracer, ctr connCounters, received *atomic.Uint64) error {

	br := newFrameReader(conn)
	var frame [kvserve.RespSize]byte
	for {
		if err := br.readFull(frame[:]); err != nil {
			return err
		}
		seq, status, _ := kvserve.DecodeResp(&frame)
		if int(seq) >= len(slots) {
			return fmt.Errorf("response seq %d out of window", seq)
		}
		opi := slots[seq]
		op := &ops[opi]
		a := &accs[op.Class]
		now := time.Now()
		lat := now.UnixNano() - sendNs[seq] // service latency
		if tid := tids[seq]; tid != 0 {
			tids[seq] = 0
			if tracer != nil && tracer.Enabled() {
				tracer.Record(obs.EvClientAck, int32(ci), now.UnixNano(), tid, uint64(status))
			}
		}
		switch status {
		case kvserve.StatusOK, kvserve.StatusNotFound:
			v := uint64(lat)
			a.hist.Observe(v)
			if op.IsPut {
				a.putHist.Observe(v)
			}
			if sched := now.Sub(start) - time.Duration(op.At); sched > 0 {
				ctr.sched.Observe(uint64(sched))
			} else {
				ctr.sched.Observe(0)
			}
			a.served.Add(1)
			if status == kvserve.StatusNotFound {
				a.notFound.Add(1)
			}
		case kvserve.StatusOverload:
			a.over.Add(1)
			if regRejects != nil {
				regRejects(int(op.Class), "overload")
			}
		case kvserve.StatusExpired:
			a.exp.Add(1)
			if regRejects != nil {
				regRejects(int(op.Class), "expired")
			}
		case kvserve.StatusFull:
			a.full.Add(1)
			if regRejects != nil {
				regRejects(int(op.Class), "full")
			}
		case kvserve.StatusMoved:
			a.moved.Add(1)
			if regRejects != nil {
				regRejects(int(op.Class), "moved")
			}
		default:
			a.errs.Add(1)
		}
		ctr.settled.Add(1)
		received.Add(1)
		free <- int32(seq)
	}
}

// frameWriter batches request frames into one buffer per flush; a
// bufio.Writer would do, but an explicit pending() keeps the issuer's
// flush policy readable.
type frameWriter struct {
	w   net.Conn
	buf []byte
}

func newFrameWriter(w net.Conn) *frameWriter {
	return &frameWriter{w: w, buf: make([]byte, 0, 128*kvserve.ReqSize)}
}

func (fw *frameWriter) writeReq(op byte, seq uint32, key, val uint64) error {
	var f [kvserve.ReqSize]byte
	kvserve.EncodeReq(&f, op, seq, key, val)
	fw.buf = append(fw.buf, f[:]...)
	if len(fw.buf) >= cap(fw.buf) {
		return fw.flush()
	}
	return nil
}

func (fw *frameWriter) pending() int { return len(fw.buf) }

func (fw *frameWriter) flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:0]
	return err
}

// frameReader is a buffered reader sized for response bursts.
type frameReader struct {
	r   net.Conn
	buf []byte
	n   int // valid bytes
	off int
}

func newFrameReader(r net.Conn) *frameReader {
	return &frameReader{r: r, buf: make([]byte, 256*kvserve.RespSize)}
}

func (fr *frameReader) readFull(p []byte) error {
	for len(p) > 0 {
		if fr.off == fr.n {
			n, err := fr.r.Read(fr.buf)
			if n == 0 && err != nil {
				return err
			}
			fr.n, fr.off = n, 0
		}
		c := copy(p, fr.buf[fr.off:fr.n])
		p = p[c:]
		fr.off += c
	}
	return nil
}

// runProgress prints a windowed line every Interval: throughput and
// window percentiles from the merged per-class histograms, plus the
// cumulative reject counters by cause — live visibility into
// admission control during bursty specs.
func runProgress(o RunOpts, accs []runAcc, settled *atomic.Uint64, stop <-chan struct{}, start time.Time) {
	tick := time.NewTicker(o.Interval)
	defer tick.Stop()
	var prev obs.HistSnapshot
	var prevOps uint64
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		var merged obs.Histogram
		var over, exp, full uint64
		for i := range accs {
			merged.Merge(accs[i].hist)
			over += accs[i].over.Load()
			exp += accs[i].exp.Load()
			full += accs[i].full.Load()
		}
		cur := merged.Snapshot()
		win := cur.Sub(prev)
		prev = cur
		ops := settled.Load()
		dOps := ops - prevOps
		prevOps = ops
		fmt.Fprintf(o.Progress,
			"loadmodel: t=%.1fs settled=%d (%.0f ops/s) p50 %.0fµs p99 %.0fµs p999 %.0fµs max %.0fµs rej ov/exp/full=%d/%d/%d\n",
			time.Since(start).Seconds(), ops,
			float64(dOps)/o.Interval.Seconds(),
			float64(win.Quantile(0.50))/1e3, float64(win.Quantile(0.99))/1e3,
			float64(win.Quantile(0.999))/1e3, float64(win.Max)/1e3,
			over, exp, full)
	}
}

func buildRunReport(tr *Trace, classes []string, accs []runAcc, conns int, elapsedS float64) *RunReport {
	rep := &RunReport{Spec: tr.Header.Name, Conns: conns, ElapsedS: elapsedS}
	counts := ClassOps(tr.Ops, len(classes))
	durS := float64(tr.Header.DurNs) / 1e9
	if durS <= 0 || elapsedS > durS {
		durS = elapsedS
	}

	totalHist := &obs.Histogram{}
	totalPut := &obs.Histogram{}
	var tServed, tOver, tExp, tFull uint64
	totalOps := 0
	for i := range accs {
		a := &accs[i]
		cp := runClassPlan(classes[i], counts[i], durS, a)
		rep.Classes = append(rep.Classes, cp)
		totalHist.Merge(a.hist)
		totalPut.Merge(a.putHist)
		tServed += a.served.Load()
		tOver += a.over.Load()
		tExp += a.exp.Load()
		tFull += a.full.Load()
		totalOps += counts[i]
		rep.NotFound += a.notFound.Load()
		rep.Moved += a.moved.Load()
		rep.Errors += a.errs.Load()
	}
	s := totalHist.Snapshot()
	ps := totalPut.Snapshot()
	rep.Total = ClassPlan{
		Name:        "total",
		Ops:         totalOps,
		OfferedOpsS: float64(totalOps) / durS,
		OKOpsS:      float64(tServed) / durS,
		P50us:       float64(s.Quantile(0.50)) / 1e3,
		P99us:       float64(s.Quantile(0.99)) / 1e3,
		PutP99us:    float64(ps.Quantile(0.99)) / 1e3,
		MaxUs:       float64(s.Max) / 1e3,
		Overloads:   tOver,
		Expired:     tExp,
		Full:        tFull,
	}
	if totalOps > 0 {
		rep.Total.RejectRate = float64(tOver+tExp+tFull) / float64(totalOps)
	}
	return rep
}

func runClassPlan(name string, offered int, durS float64, a *runAcc) ClassPlan {
	s := a.hist.Snapshot()
	ps := a.putHist.Snapshot()
	cp := ClassPlan{
		Name:        name,
		Ops:         offered,
		OfferedOpsS: float64(offered) / durS,
		OKOpsS:      float64(a.served.Load()) / durS,
		P50us:       float64(s.Quantile(0.50)) / 1e3,
		P99us:       float64(s.Quantile(0.99)) / 1e3,
		PutP99us:    float64(ps.Quantile(0.99)) / 1e3,
		MaxUs:       float64(s.Max) / 1e3,
		Overloads:   a.over.Load(),
		Expired:     a.exp.Load(),
		Full:        a.full.Load(),
	}
	if offered > 0 {
		cp.RejectRate = float64(cp.Overloads+cp.Expired+cp.Full) / float64(offered)
	}
	return cp
}
