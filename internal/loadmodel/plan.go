package loadmodel

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/obs"
)

// Calibration holds the service-time constants the planner's queueing
// model runs on, in nanoseconds. They come from one of three sources,
// in increasing fidelity: DefaultCalibration (rough localhost
// numbers), CalibrateFromBench (derived from committed BENCH_*.json
// throughput snapshots), or CalibrateLive (closed-loop probes against
// a real server on this machine — what E17 and the CI smoke use).
type Calibration struct {
	// GetSvcNs is the per-get conn-reader service time: parse, seqlock
	// read, response write, amortized across a pipelined stream.
	// Capacity for a pure-get load is Conns/GetSvcNs.
	GetSvcNs float64 `json:"get_svc_ns"`
	// PutSvcNs is the effective per-put service time at a shard owner
	// (capacity-derived: Shards/PutSvcNs is the saturated put rate, so
	// it folds in the reader's share of the put path too).
	PutSvcNs float64 `json:"put_svc_ns"`
	// FlushNs is the per-batch commit cost (checksum + journal write +
	// table apply downstream of the owner), excluding fsync.
	FlushNs float64 `json:"flush_ns"`
	// FsyncNs is the additional per-batch cost when Fsync is on.
	FsyncNs float64 `json:"fsync_ns"`
	// NetRTTNs is the fixed client<->server round-trip plus client
	// overhead added to every op's latency.
	NetRTTNs float64 `json:"net_rtt_ns"`
	// SealLagNs is how far past the nominal BatchWait deadline the
	// server's seal timer actually fires at the tail (host timer
	// granularity; ~1ms on coarse-tick VMs, ~0 on bare metal). Probed
	// as the p99−mean gap of the lone-put path; the model delays every
	// timer-driven seal by it. Zero for default/bench calibrations.
	SealLagNs float64 `json:"seal_lag_ns"`
	// ReplHopNs is the extra ack delay per batch when the server
	// replicates synchronously before acking (cluster mode).
	ReplHopNs float64 `json:"repl_hop_ns"`

	Source string `json:"source"`
}

// DefaultCalibration is the uncalibrated fallback: localhost-shaped
// constants, right order of magnitude only.
func DefaultCalibration() Calibration {
	return Calibration{
		GetSvcNs:  4_500,
		PutSvcNs:  17_000,
		FlushNs:   20_000,
		FsyncNs:   450_000,
		NetRTTNs:  80_000,
		ReplHopNs: 900_000,
		Source:    "default",
	}
}

// benchFile mirrors the committed BENCH_serve.json / BENCH_cluster.json
// shape closely enough to calibrate from.
type benchFile struct {
	Snapshots []struct {
		Quick bool `json:"quick"`
		Doc   struct {
			Conns   int `json:"conns"`
			Shards  int `json:"shards"`
			BatchK  int `json:"batch_k"`
			Records []struct {
				Mix       string  `json:"mix"`
				Topology  string  `json:"topology"`
				Fsync     bool    `json:"fsync"`
				Ops       float64 `json:"ops"`
				Thr       float64 `json:"throughput_ops_s"`
				AckedPuts float64 `json:"acked_puts"`
				P50us     float64 `json:"p50_us"`
			} `json:"records"`
		} `json:"doc"`
	} `json:"snapshots"`
}

// CalibrateFromBench derives service times from the committed
// benchmark snapshots: GetSvcNs from the mix-c ceiling, PutSvcNs from
// the mix-a put rate, FsyncNs from the fsync-cell delta, ReplHopNs
// from the routed-vs-single p50 gap in the cluster snapshot.
// clusterPath may be "" to skip the replication constant. NetRTTNs is
// not extractable from closed-loop aggregates and keeps its default —
// prefer CalibrateLive when a server is reachable.
func CalibrateFromBench(servePath, clusterPath string) (Calibration, error) {
	cal := DefaultCalibration()
	data, err := os.ReadFile(servePath)
	if err != nil {
		return cal, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return cal, fmt.Errorf("loadmodel: %s: %w", servePath, err)
	}
	if len(bf.Snapshots) == 0 {
		return cal, fmt.Errorf("loadmodel: %s: no snapshots", servePath)
	}
	snap := bf.Snapshots[len(bf.Snapshots)-1].Doc
	if snap.Conns == 0 || snap.Shards == 0 {
		return cal, fmt.Errorf("loadmodel: %s: snapshot missing geometry", servePath)
	}
	for _, r := range snap.Records {
		if r.Thr <= 0 || r.Ops <= 0 {
			continue
		}
		switch {
		case r.Mix == "c" && !r.Fsync:
			cal.GetSvcNs = float64(snap.Conns) / r.Thr * 1e9
		case r.Mix == "a" && !r.Fsync && r.AckedPuts > 0:
			putThr := r.Thr * r.AckedPuts / r.Ops
			cal.PutSvcNs = float64(snap.Shards) / putThr * 1e9
		case r.Mix == "a" && r.Fsync && r.AckedPuts > 0 && snap.BatchK > 0:
			// Fsync mode is flusher-bound: each shard sustains one
			// batch per (FlushNs+FsyncNs), so the saturated put rate
			// pins the sum.
			putThr := r.Thr * r.AckedPuts / r.Ops
			perBatch := float64(snap.Shards*snap.BatchK) / putThr * 1e9
			if f := perBatch - cal.FlushNs; f > 0 {
				cal.FsyncNs = f
			}
		}
	}
	cal.Source = "bench:" + servePath
	if clusterPath != "" {
		if err := calibrateReplFromBench(&cal, clusterPath); err != nil {
			return cal, err
		}
	}
	return cal, nil
}

func calibrateReplFromBench(cal *Calibration, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("loadmodel: %s: %w", path, err)
	}
	if len(bf.Snapshots) == 0 {
		return fmt.Errorf("loadmodel: %s: no snapshots", path)
	}
	var single, routed float64
	for _, r := range bf.Snapshots[len(bf.Snapshots)-1].Doc.Records {
		switch r.Topology {
		case "single":
			single = r.P50us
		case "routed":
			routed = r.P50us
		}
	}
	if routed > single && single > 0 {
		cal.ReplHopNs = (routed - single) * 1e3
	}
	return nil
}

// ProbeGeometry tells CalibrateLive the server's shape; Shards/BatchK/
// BatchWait/Streams/Keys/Seed must match the probed server's Config.
type ProbeGeometry struct {
	Shards    int
	BatchK    int
	BatchWait time.Duration
	Streams   int
	Keys      int
	Seed      uint64
	Dur       time.Duration // per throughput probe; default 400ms
	Conns     int           // probe connections; default 4
}

// CalibrateLive derives the constants from four short closed-loop
// probes against a running server:
//
//  1. mix c, pipelined  -> GetSvcNs  = Conns / get throughput
//  2. mix a, pipelined  -> PutSvcNs  = Shards / put throughput
//  3. mix c, window 1   -> NetRTTNs  = per-op latency − GetSvcNs
//  4. mix a, window 1   -> FlushNs   = per-op latency − NetRTT − BatchWait
//     (a lone put pads out the full BatchWait deadline, so the
//     remainder after RTT and the deadline is the commit itself);
//     SealLagNs = probe p99 − probe mean, the seal timer's firing
//     slack at the tail on this host. Run three times, medians win.
//
// FsyncNs and ReplHopNs are not probed (the target is a plain
// non-fsync server) and keep their incoming defaults.
func CalibrateLive(addr string, g ProbeGeometry) (Calibration, error) {
	cal := DefaultCalibration()
	if g.Dur <= 0 {
		g.Dur = 400 * time.Millisecond
	}
	if g.Conns <= 0 {
		g.Conns = 4
	}
	base := kvserve.LoadOpts{
		Conns: g.Conns, Window: 64, Dur: g.Dur,
		Dist: "zipfian", Streams: g.Streams, Keys: g.Keys, Seed: g.Seed,
	}

	probe := func(o kvserve.LoadOpts) (kvserve.LoadReport, error) {
		rep, err := kvserve.RunLoad(addr, o)
		if err != nil {
			return rep, fmt.Errorf("loadmodel: calibration probe (mix %s, window %d): %w", o.Mix, o.Window, err)
		}
		if rep.Throughput <= 0 {
			return rep, fmt.Errorf("loadmodel: calibration probe (mix %s, window %d): zero throughput", o.Mix, o.Window)
		}
		return rep, nil
	}

	oc := base
	oc.Mix = "c"
	rep, err := probe(oc)
	if err != nil {
		return cal, err
	}
	cal.GetSvcNs = float64(g.Conns) / rep.Throughput * 1e9

	oa := base
	oa.Mix = "a"
	rep, err = probe(oa)
	if err != nil {
		return cal, err
	}
	if rep.Ops > 0 && rep.AckedPuts > 0 {
		putThr := rep.Throughput * float64(rep.AckedPuts) / float64(rep.Ops)
		cal.PutSvcNs = float64(g.Shards) / putThr * 1e9
	}

	o1 := base
	o1.Mix, o1.Conns, o1.Window, o1.Dur, o1.Ops = "c", 1, 1, 0, 400
	rep, err = probe(o1)
	if err != nil {
		return cal, err
	}
	perOp := 1e9 / rep.Throughput
	if rtt := perOp - cal.GetSvcNs; rtt > 5_000 {
		cal.NetRTTNs = rtt
	} else {
		cal.NetRTTNs = 5_000
	}

	// Probe 4 is the fragile one — at 200 ops a single scheduler stall
	// on a busy host pollutes both estimates — so it runs three times
	// and the median of each constant wins.
	o2 := base
	o2.Mix, o2.Conns, o2.Window, o2.Dur, o2.Ops = "a", 1, 1, 0, 200
	var flushes, lags []float64
	for i := 0; i < 3; i++ {
		rep, err = probe(o2)
		if err != nil {
			return cal, err
		}
		// Only the puts pad out BatchWait; gets return at RTT+GetSvc.
		// With mix a the average per-op time is the mean of the two
		// paths.
		perOp = 2*1e9/rep.Throughput - (cal.NetRTTNs + cal.GetSvcNs)
		flushes = append(flushes, perOp-cal.NetRTTNs-float64(g.BatchWait.Nanoseconds()))
		// The puts also own the top half of the mix-a latency
		// distribution, so the probe's overall p99 is the lone-put
		// tail; its gap over the throughput-derived mean is the seal
		// timer firing late. (A 200-op probe's p99 is its 2nd-worst op
		// — fragile alone, which is what the median across the three
		// probe runs is for.)
		lags = append(lags, rep.P99us*1e3-perOp)
	}
	sort.Float64s(flushes)
	sort.Float64s(lags)
	switch flush := flushes[1]; {
	case flush < 5_000:
		cal.FlushNs = 5_000
	case flush > 2_000_000:
		cal.FlushNs = 2_000_000
	default:
		cal.FlushNs = flush
	}
	if lag := lags[1]; lag > 0 {
		if lag > 2_000_000 {
			lag = 2_000_000
		}
		cal.SealLagNs = lag
	}
	cal.Source = "live:" + addr
	return cal, nil
}

// SealLagFromRun refits SealLagNs from one live shakedown run: the gap
// between the run's measured put p99 and the zero-lag deterministic
// put path (BatchWait + flush + RTT + owner service) is the under-load
// seal-timer slack. Idle window-1 probes systematically understate it
// on a busy host — the timer goroutine competes with the serving load
// for the CPU — so E17 probes the other constants idle, runs its
// calibration workload once, refits the lag from that run, and only
// then predicts the held-out specs. Clamped to [0, 5ms].
func SealLagFromRun(cal Calibration, batchWaitNs int64, meas ClassPlan) float64 {
	base := float64(batchWaitNs) + cal.FlushNs + cal.NetRTTNs + cal.PutSvcNs
	lag := meas.PutP99us*1e3 - base
	switch {
	case lag < 0:
		return 0
	case lag > 5_000_000:
		return 5_000_000
	}
	return lag
}

// PlanConfig is the server geometry the planner models; mirror the
// kvserve.Config the spec will actually run against.
type PlanConfig struct {
	Shards         int   `json:"shards"`
	BatchK         int   `json:"batch_k"`
	Mailbox        int   `json:"mailbox"`
	PipelineDepth  int   `json:"pipeline_depth"`
	BatchWaitNs    int64 `json:"batch_wait_ns"`
	MaxDelayNs     int64 `json:"max_delay_ns"`     // 0 = no per-request deadline
	MaxOpsPerShard int   `json:"maxops_per_shard"` // journal budget; 0 = unlimited
	Conns          int   `json:"conns"`            // client connections the runner will use
	Fsync          bool  `json:"fsync"`
	Replicated     bool  `json:"replicated"`

	Cal Calibration `json:"cal"`
}

func (pc PlanConfig) withDefaults() PlanConfig {
	if pc.Shards == 0 {
		pc.Shards = 4
	}
	if pc.BatchK == 0 {
		pc.BatchK = 32
	}
	if pc.Mailbox == 0 {
		pc.Mailbox = 256
	}
	if pc.PipelineDepth == 0 {
		pc.PipelineDepth = 4
	}
	if pc.BatchWaitNs == 0 {
		pc.BatchWaitNs = int64(500 * time.Microsecond)
	}
	if pc.Conns == 0 {
		pc.Conns = 4
	}
	if pc.Cal == (Calibration{}) {
		pc.Cal = DefaultCalibration()
	}
	return pc
}

// ClassPlan is the planner's prediction (or the runner's measurement)
// for one SLO class.
type ClassPlan struct {
	Name        string  `json:"class"`
	Ops         int     `json:"ops"`
	OfferedOpsS float64 `json:"offered_ops_s"`
	OKOpsS      float64 `json:"ok_ops_s"` // served (acked puts + gets) per second
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	PutP99us    float64 `json:"put_p99_us"`
	MaxUs       float64 `json:"max_us"`
	Overloads   uint64  `json:"overloads"`
	Expired     uint64  `json:"expired"`
	Full        uint64  `json:"full"`
	RejectRate  float64 `json:"reject_rate"` // rejected / offered
}

// PlanReport is the planner's output: per-class and total predictions
// plus steady-state utilization estimates.
type PlanReport struct {
	Spec      string      `json:"spec"`
	DurS      float64     `json:"dur_s"`
	Cfg       PlanConfig  `json:"cfg"`
	Total     ClassPlan   `json:"total"`
	Classes   []ClassPlan `json:"classes"`
	PutUtil   float64     `json:"put_util"`   // offered put load / put capacity
	GetUtil   float64     `json:"get_util"`   // offered get load / get capacity
	FlushUtil float64     `json:"flush_util"` // per-shard flusher occupancy
	Stages    *StagePlan  `json:"stages,omitempty"`
}

// StagePlan is the DES's stage-level latency attribution for the put
// path, mean microseconds per stage. It is the plan-side counterpart
// of the server's kvserve_stage_seconds histograms: `lptrace -vs-plan`
// diffs a measured trace breakdown against these to show where the
// model and the machine disagree.
type StagePlan struct {
	// Puts is how many dispatched puts the queue mean averages over;
	// Batches how many sealed batches back the fill/flush means.
	Puts    int `json:"puts"`
	Batches int `json:"batches"`
	// QueueUs: mailbox enqueue → owner dequeue, per put.
	QueueUs float64 `json:"queue_us"`
	// FillUs: batch open (first put lands) → seal, per batch.
	FillUs float64 `json:"fill_us"`
	// FlushUs: seal → write set durable, per batch, including time
	// queued behind earlier batches in the flush pipeline.
	FlushUs float64 `json:"flush_us"`
	// ReplUs: replication ack hop per batch (the model's constant;
	// zero when not replicated).
	ReplUs float64 `json:"repl_us"`
	// RTTUs: fixed client<->server network round trip.
	RTTUs float64 `json:"rtt_us"`
}

// classAcc accumulates per-class settle results through the DES.
type classAcc struct {
	hist    obs.Histogram // settled-OK latency, ns
	putHist obs.Histogram
	served  uint64
	over    uint64
	exp     uint64
	full    uint64
	maxNs   uint64
}

func (a *classAcc) settle(latNs int64, isPut bool) {
	if latNs < 0 {
		latNs = 0
	}
	v := uint64(latNs)
	a.hist.Observe(v)
	if isPut {
		a.putHist.Observe(v)
	}
	if v > a.maxNs {
		a.maxNs = v
	}
	a.served++
}

// Plan runs the op stream through a discrete-event model of the
// kvserve pipeline: per-connection get service, per-shard owner queues
// with mailbox admission (Overload) and optional dequeue deadlines
// (Expired), group-commit batches sealed at BatchK or the BatchWait
// deadline, a flush pipeline of depth PipelineDepth with owner
// backpressure, a per-shard journal budget (Full), and fixed network
// RTT — all on the Calibration constants. The result is deterministic:
// a pure function of (ops, cfg).
func Plan(spec *Spec, ops []Op, cfg PlanConfig) *PlanReport {
	cfg = cfg.withDefaults()
	cal := cfg.Cal
	flushNs := int64(cal.FlushNs)
	if cfg.Fsync {
		flushNs += int64(cal.FsyncNs)
	}
	replNs := int64(0)
	if cfg.Replicated {
		replNs = int64(cal.ReplHopNs)
	}
	rttNs := int64(cal.NetRTTNs)
	getNs := int64(cal.GetSvcNs)
	putNs := int64(cal.PutSvcNs)
	sealNs := cfg.BatchWaitNs + int64(cal.SealLagNs)

	accs := make([]classAcc, len(spec.Classes))

	type qput struct {
		op  int32
		enq int64
	}
	type simConn struct {
		q    []int32
		busy bool
	}
	type simBatch struct {
		ops    []int32
		sealAt int64 // flush-stage epoch: queueing behind the ring counts
	}
	type simShard struct {
		q        []qput
		busy     bool
		stalled  bool // owner wants to seal; pipeline ring full
		open     []int32
		openAt   int64 // when the open batch got its first put (fill stage)
		epoch    int64 // open-batch identity for seal timers
		inflight int   // sealed, not yet flushed
		flushQ   []simBatch
		flushing simBatch
		fbusy    bool
		journal  int
	}

	// Stage attribution accumulators (see StagePlan).
	var (
		queueSumNs, fillSumNs, flushSumNs int64
		queuePuts, sealedBatches          int
	)

	conns := make([]simConn, cfg.Conns)
	shards := make([]simShard, cfg.Shards)

	h := &evHeap{}
	seq := int64(0)
	push := func(at int64, kind int8, a int32, b int64) {
		seq++
		h.push(simEv{at: at, seq: seq, kind: kind, a: a, b: b})
	}

	for i := range ops {
		push(ops[i].At, evArr, int32(i), 0)
	}

	settleOK := func(op *Op, at int64) {
		accs[op.Class].settle(at-op.At+rttNs, op.IsPut)
	}

	var doSeal func(now int64, si int32)
	startFlush := func(now int64, si int32) {
		sh := &shards[si]
		if sh.fbusy || len(sh.flushQ) == 0 {
			return
		}
		sh.fbusy = true
		sh.flushing = sh.flushQ[0]
		sh.flushQ = sh.flushQ[1:]
		push(now+flushNs, evFlushDone, si, 0)
	}
	doSeal = func(now int64, si int32) {
		sh := &shards[si]
		fillSumNs += now - sh.openAt
		sealedBatches++
		sh.flushQ = append(sh.flushQ, simBatch{ops: sh.open, sealAt: now})
		sh.open = nil
		sh.epoch++
		sh.inflight++
		sh.journal += cfg.BatchK // padded batches consume full K
		sh.stalled = false
		startFlush(now, si)
	}
	ownerNext := func(now int64, si int32) {
		sh := &shards[si]
		if sh.busy || sh.stalled {
			return
		}
		for len(sh.q) > 0 {
			p := sh.q[0]
			sh.q = sh.q[1:]
			if cfg.MaxDelayNs > 0 && now-p.enq > cfg.MaxDelayNs {
				accs[ops[p.op].Class].exp++
				continue
			}
			queueSumNs += now - p.enq
			queuePuts++
			sh.busy = true
			push(now+putNs, evOwnerDone, si, int64(p.op))
			return
		}
	}
	connNext := func(now int64, ci int32) {
		c := &conns[ci]
		if c.busy || len(c.q) == 0 {
			return
		}
		opi := c.q[0]
		c.q = c.q[1:]
		c.busy = true
		push(now+getNs, evGetDone, ci, int64(opi))
	}

	for h.len() > 0 {
		e := h.pop()
		now := e.at
		switch e.kind {
		case evArr:
			op := &ops[e.a]
			if !op.IsPut {
				ci := int32(int(op.Client) % cfg.Conns)
				conns[ci].q = append(conns[ci].q, e.a)
				connNext(now, ci)
				break
			}
			si := int32(kvserve.ShardOf(op.Key, cfg.Shards))
			sh := &shards[si]
			if cfg.MaxOpsPerShard > 0 && sh.journal+cfg.BatchK > cfg.MaxOpsPerShard {
				accs[op.Class].full++
				break
			}
			if len(sh.q) >= cfg.Mailbox {
				accs[op.Class].over++
				break
			}
			sh.q = append(sh.q, qput{op: e.a, enq: now})
			ownerNext(now, si)

		case evGetDone:
			ci := e.a
			settleOK(&ops[e.b], now)
			conns[ci].busy = false
			connNext(now, ci)

		case evOwnerDone:
			si := e.a
			sh := &shards[si]
			sh.busy = false
			sh.open = append(sh.open, int32(e.b))
			if len(sh.open) == 1 {
				sh.openAt = now
				push(now+sealNs, evSeal, si, sh.epoch)
			}
			if len(sh.open) >= cfg.BatchK {
				if sh.inflight >= cfg.PipelineDepth {
					sh.stalled = true
				} else {
					doSeal(now, si)
				}
			}
			ownerNext(now, si)

		case evSeal:
			si := e.a
			sh := &shards[si]
			if sh.epoch != e.b || len(sh.open) == 0 {
				break // stale timer: batch already sealed
			}
			if sh.inflight >= cfg.PipelineDepth {
				sh.stalled = true
			} else {
				doSeal(now, si)
				ownerNext(now, si)
			}

		case evFlushDone:
			si := e.a
			sh := &shards[si]
			flushSumNs += now - sh.flushing.sealAt
			for _, opi := range sh.flushing.ops {
				settleOK(&ops[opi], now+replNs)
			}
			sh.flushing = simBatch{}
			sh.fbusy = false
			sh.inflight--
			startFlush(now, si)
			if sh.stalled && sh.inflight < cfg.PipelineDepth {
				doSeal(now, si)
			}
			ownerNext(now, si)
		}
	}

	rep := buildReport(spec, ops, cfg, accs)
	st := &StagePlan{
		Puts:    queuePuts,
		Batches: sealedBatches,
		ReplUs:  float64(replNs) / 1e3,
		RTTUs:   float64(rttNs) / 1e3,
	}
	if queuePuts > 0 {
		st.QueueUs = float64(queueSumNs) / float64(queuePuts) / 1e3
	}
	if sealedBatches > 0 {
		st.FillUs = float64(fillSumNs) / float64(sealedBatches) / 1e3
		st.FlushUs = float64(flushSumNs) / float64(sealedBatches) / 1e3
	}
	rep.Stages = st
	return rep
}

func buildReport(spec *Spec, ops []Op, cfg PlanConfig, accs []classAcc) *PlanReport {
	durS := float64(spec.durNs) / 1e9
	rep := &PlanReport{Spec: spec.Name, DurS: durS, Cfg: cfg}
	counts := ClassOps(ops, len(spec.Classes))

	var total classAcc
	totalOps := 0
	puts, gets := 0, 0
	for i := range ops {
		if ops[i].IsPut {
			puts++
		} else {
			gets++
		}
	}
	for ci := range accs {
		a := &accs[ci]
		cp := classPlanOf(spec.Classes[ci].Name, counts[ci], durS, a)
		rep.Classes = append(rep.Classes, cp)
		totalOps += counts[ci]
		total.served += a.served
		total.over += a.over
		total.exp += a.exp
		total.full += a.full
		if a.maxNs > total.maxNs {
			total.maxNs = a.maxNs
		}
		total.hist.Merge(&a.hist)
		total.putHist.Merge(&a.putHist)
	}
	rep.Total = classPlanOf("total", totalOps, durS, &total)

	cal := cfg.Cal
	putRate := float64(puts) / durS
	getRate := float64(gets) / durS
	rep.PutUtil = putRate * cal.PutSvcNs / 1e9 / float64(cfg.Shards)
	rep.GetUtil = getRate * cal.GetSvcNs / 1e9 / float64(cfg.Conns)
	flushNs := cal.FlushNs
	if cfg.Fsync {
		flushNs += cal.FsyncNs
	}
	rep.FlushUtil = putRate / float64(cfg.BatchK) * flushNs / 1e9 / float64(cfg.Shards)
	return rep
}

func classPlanOf(name string, offered int, durS float64, a *classAcc) ClassPlan {
	s := a.hist.Snapshot()
	ps := a.putHist.Snapshot()
	cp := ClassPlan{
		Name:        name,
		Ops:         offered,
		OfferedOpsS: float64(offered) / durS,
		OKOpsS:      float64(a.served) / durS,
		P50us:       float64(s.Quantile(0.50)) / 1e3,
		P99us:       float64(s.Quantile(0.99)) / 1e3,
		PutP99us:    float64(ps.Quantile(0.99)) / 1e3,
		MaxUs:       float64(a.maxNs) / 1e3,
		Overloads:   a.over,
		Expired:     a.exp,
		Full:        a.full,
	}
	if offered > 0 {
		cp.RejectRate = float64(a.over+a.exp+a.full) / float64(offered)
	}
	return cp
}

// simEv kinds.
const (
	evArr int8 = iota
	evGetDone
	evOwnerDone
	evSeal
	evFlushDone
)

type simEv struct {
	at   int64
	seq  int64 // FIFO tie-break: deterministic order at equal times
	kind int8
	a    int32
	b    int64
}

// evHeap is a plain binary min-heap on (at, seq); container/heap's
// interface indirection is noise at this size.
type evHeap struct{ e []simEv }

func (h *evHeap) len() int { return len(h.e) }

func (h *evHeap) less(i, j int) bool {
	if h.e[i].at != h.e[j].at {
		return h.e[i].at < h.e[j].at
	}
	return h.e[i].seq < h.e[j].seq
}

func (h *evHeap) push(e simEv) {
	h.e = append(h.e, e)
	i := len(h.e) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.e[i], h.e[p] = h.e[p], h.e[i]
		i = p
	}
}

func (h *evHeap) pop() simEv {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.e) && h.less(l, small) {
			small = l
		}
		if r < len(h.e) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.e[i], h.e[small] = h.e[small], h.e[i]
		i = small
	}
	return top
}
