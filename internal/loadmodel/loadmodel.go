// Package loadmodel is the spec-driven workload plane for the kvserve
// service: a deterministic generator of production-shaped load
// (heterogeneous client populations, skewed per-client rates, bursty
// interarrival processes, diurnal ramps), a byte-stable JSONL trace
// format with record/replay, an open-loop runner that drives a live
// server from a generated op stream, and a capacity planner that runs
// the same stream through a discrete-event model of the kvserve
// pipeline calibrated from benchmark snapshots or live probes.
//
// The package contract is determinism end to end: the same Spec and
// seed produce a byte-identical op stream on every machine, the trace
// encoding of that stream is byte-identical, and the planner's
// prediction for it is a pure function of the stream, the geometry,
// and the calibration constants. That is what lets E17 close the
// observe -> predict -> calibrate loop: predict first, then replay the
// identical stream against a real server and report the error.
package loadmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Spec is the root of a workload specification. It is deserialized
// from JSON (stdlib only; no YAML) and validated/defaulted by
// ParseSpec. Classes are SLO classes: each owns a client population
// whose ops are tagged with the class name through generation, the
// planner, the runner, and the per-class metrics.
type Spec struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`     // default 1
	Duration string `json:"duration"` // Go duration, e.g. "2s"; default "2s"

	// Server-side key geometry the spec assumes. Streams/Keys/
	// PreloadSeed must match the kvserve Config (Streams/Keys/Seed) so
	// read ops hit preloaded keys; they also bound the generated key
	// space.
	Streams     int    `json:"streams"`      // default 4
	Keys        int    `json:"keys"`         // preloaded keys per stream; default 2048
	PreloadSeed uint64 `json:"preload_seed"` // default 1

	Classes []ClassSpec `json:"classes"`

	durNs int64 // resolved Duration
}

// ClassSpec is one SLO class: a population of Clients open-loop
// clients that together offer RateOpsS ops/s, split across clients by
// RateSkew, each client emitting ops under Arrival with key choice
// KeyDist and operation mix Mix, the whole class modulated over time
// by Ramp.
type ClassSpec struct {
	Name     string  `json:"name"`     // [A-Za-z0-9_.-]+, unique per spec
	Clients  int     `json:"clients"`  // population size, >= 1
	RateOpsS float64 `json:"rate_ops"` // aggregate offered rate, ops/s

	// RateSkew splits RateOpsS across the population: "uniform"
	// (default), "zipf" (client j gets weight 1/(j+1)^Theta), or
	// "empirical" (Weights, one per client, normalized).
	RateSkew SkewSpec `json:"rate_skew"`

	// Arrival shapes each client's interarrival process at its
	// assigned rate: "poisson" (default), "gamma" (CV > 0; CV > 1 is
	// burstier than Poisson), "weibull" (Shape > 0; Shape < 1 is
	// heavy-tailed), or "fixed" (deterministic spacing).
	Arrival ArrivalSpec `json:"arrival"`

	// KeyDist picks keys for reads/updates: "zipfian" (default,
	// Theta default 0.99), "uniform", or "empirical" (Weights are
	// relative masses over equal-width slices of the key space).
	KeyDist DistSpec `json:"key_dist"`

	// Mix is the operation mix: either a kvgen mix name ("a", "b",
	// "c", "d") or explicit percentages summing to 100.
	Mix MixSpec `json:"mix"`

	// Ramp is a piecewise-linear rate multiplier over the run
	// (diurnal shape). Empty means flat 1.0. Points must be sorted by
	// T; the multiplier holds the first value before the first point
	// and the last value after the last point.
	Ramp []RampPoint `json:"ramp"`

	// ValueBytes is the nominal value size for capacity accounting.
	// The kvserve wire protocol carries fixed 8-byte values, so this
	// does not change the op stream or the planner's cost model; it is
	// carried for spec documentation only. Default 8.
	ValueBytes int `json:"value_bytes"`
}

// SkewSpec configures the per-client rate split.
type SkewSpec struct {
	Kind    string    `json:"kind"`  // "uniform" | "zipf" | "empirical"
	Theta   float64   `json:"theta"` // zipf exponent, default 1.0
	Weights []float64 `json:"weights"`
}

// ArrivalSpec configures the interarrival process.
type ArrivalSpec struct {
	Kind  string  `json:"kind"`  // "poisson" | "gamma" | "weibull" | "fixed"
	CV    float64 `json:"cv"`    // gamma: coefficient of variation
	Shape float64 `json:"shape"` // weibull: shape k
}

// DistSpec configures key choice.
type DistSpec struct {
	Kind    string    `json:"kind"`  // "zipfian" | "uniform" | "empirical"
	Theta   float64   `json:"theta"` // zipfian exponent, default 0.99
	Weights []float64 `json:"weights"`
}

// MixSpec is either a kvgen mix name or explicit percentages.
type MixSpec struct {
	Name    string `json:"name"`
	ReadPct int    `json:"read_pct"`
	UpdPct  int    `json:"update_pct"`
	InsPct  int    `json:"insert_pct"`
}

// RampPoint anchors the rate multiplier X at offset T into the run.
type RampPoint struct {
	T string  `json:"t"` // Go duration offset, e.g. "500ms"
	X float64 `json:"x"` // multiplier, >= 0

	tNs int64
}

// DurationNs returns the resolved run length in nanoseconds.
func (s *Spec) DurationNs() int64 { return s.durNs }

// TotalClients returns the client population size across all classes.
func (s *Spec) TotalClients() int {
	n := 0
	for i := range s.Classes {
		n += s.Classes[i].Clients
	}
	return n
}

// ClassNames returns the class names in spec order.
func (s *Spec) ClassNames() []string {
	names := make([]string, len(s.Classes))
	for i := range s.Classes {
		names[i] = s.Classes[i].Name
	}
	return names
}

// OfferedOpsS returns the aggregate offered rate at multiplier 1.
func (s *Spec) OfferedOpsS() float64 {
	r := 0.0
	for i := range s.Classes {
		r += s.Classes[i].RateOpsS
	}
	return r
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_' || c == '.' || c == '-':
		default:
			return false
		}
	}
	return true
}

// ParseSpec decodes, defaults, and validates a Spec from JSON.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(newByteReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadmodel: spec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads a spec file from disk.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

func (s *Spec) validate() error {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Duration == "" {
		s.Duration = "2s"
	}
	d, err := time.ParseDuration(s.Duration)
	if err != nil || d <= 0 {
		return fmt.Errorf("loadmodel: bad duration %q", s.Duration)
	}
	s.durNs = int64(d)
	if s.Streams == 0 {
		s.Streams = 4
	}
	if s.Keys == 0 {
		s.Keys = 2048
	}
	if s.PreloadSeed == 0 {
		s.PreloadSeed = 1
	}
	if s.Streams < 1 || s.Keys < 1 {
		return fmt.Errorf("loadmodel: streams/keys must be >= 1")
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("loadmodel: spec has no classes")
	}
	seen := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		c := &s.Classes[i]
		if !validName(c.Name) {
			return fmt.Errorf("loadmodel: class %d: name %q (want [A-Za-z0-9_.-]+)", i, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("loadmodel: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Clients < 1 {
			return fmt.Errorf("loadmodel: class %q: clients must be >= 1", c.Name)
		}
		if c.RateOpsS <= 0 {
			return fmt.Errorf("loadmodel: class %q: rate_ops must be > 0", c.Name)
		}
		if c.ValueBytes == 0 {
			c.ValueBytes = 8
		}
		if c.ValueBytes < 0 {
			return fmt.Errorf("loadmodel: class %q: value_bytes must be >= 0", c.Name)
		}
		if err := c.validateSkew(); err != nil {
			return err
		}
		if err := c.validateArrival(); err != nil {
			return err
		}
		if err := c.validateKeyDist(); err != nil {
			return err
		}
		if err := c.resolveMix(); err != nil {
			return err
		}
		if err := c.validateRamp(s.durNs); err != nil {
			return err
		}
	}
	return nil
}

func (c *ClassSpec) validateSkew() error {
	switch c.RateSkew.Kind {
	case "":
		c.RateSkew.Kind = "uniform"
	case "uniform":
	case "zipf":
		if c.RateSkew.Theta == 0 {
			c.RateSkew.Theta = 1.0
		}
		if c.RateSkew.Theta < 0 {
			return fmt.Errorf("loadmodel: class %q: rate_skew.theta must be >= 0", c.Name)
		}
	case "empirical":
		if len(c.RateSkew.Weights) != c.Clients {
			return fmt.Errorf("loadmodel: class %q: rate_skew.weights must have one entry per client (%d != %d)",
				c.Name, len(c.RateSkew.Weights), c.Clients)
		}
		sum := 0.0
		for _, w := range c.RateSkew.Weights {
			if w < 0 {
				return fmt.Errorf("loadmodel: class %q: negative rate_skew weight", c.Name)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("loadmodel: class %q: rate_skew.weights sum to 0", c.Name)
		}
	default:
		return fmt.Errorf("loadmodel: class %q: unknown rate_skew.kind %q", c.Name, c.RateSkew.Kind)
	}
	return nil
}

func (c *ClassSpec) validateArrival() error {
	switch c.Arrival.Kind {
	case "":
		c.Arrival.Kind = "poisson"
	case "poisson", "fixed":
	case "gamma":
		if c.Arrival.CV <= 0 {
			return fmt.Errorf("loadmodel: class %q: arrival.cv must be > 0 for gamma", c.Name)
		}
	case "weibull":
		if c.Arrival.Shape <= 0 {
			return fmt.Errorf("loadmodel: class %q: arrival.shape must be > 0 for weibull", c.Name)
		}
	default:
		return fmt.Errorf("loadmodel: class %q: unknown arrival.kind %q", c.Name, c.Arrival.Kind)
	}
	return nil
}

func (c *ClassSpec) validateKeyDist() error {
	switch c.KeyDist.Kind {
	case "":
		c.KeyDist.Kind = "zipfian"
		if c.KeyDist.Theta == 0 {
			c.KeyDist.Theta = 0.99
		}
	case "zipfian":
		if c.KeyDist.Theta == 0 {
			c.KeyDist.Theta = 0.99
		}
		if c.KeyDist.Theta <= 0 || c.KeyDist.Theta >= 1 {
			return fmt.Errorf("loadmodel: class %q: key_dist.theta must be in (0,1)", c.Name)
		}
	case "uniform":
	case "empirical":
		if len(c.KeyDist.Weights) < 1 {
			return fmt.Errorf("loadmodel: class %q: key_dist.weights is empty", c.Name)
		}
		sum := 0.0
		for _, w := range c.KeyDist.Weights {
			if w < 0 {
				return fmt.Errorf("loadmodel: class %q: negative key_dist weight", c.Name)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("loadmodel: class %q: key_dist.weights sum to 0", c.Name)
		}
	default:
		return fmt.Errorf("loadmodel: class %q: unknown key_dist.kind %q", c.Name, c.KeyDist.Kind)
	}
	return nil
}

func (c *ClassSpec) resolveMix() error {
	m := &c.Mix
	if m.Name == "" && m.ReadPct == 0 && m.UpdPct == 0 && m.InsPct == 0 {
		m.Name = "b" // default: read-heavy
	}
	if m.Name != "" {
		if m.ReadPct != 0 || m.UpdPct != 0 || m.InsPct != 0 {
			return fmt.Errorf("loadmodel: class %q: mix.name and explicit percentages are mutually exclusive", c.Name)
		}
		switch m.Name {
		case "a":
			m.ReadPct, m.UpdPct, m.InsPct = 50, 50, 0
		case "b":
			m.ReadPct, m.UpdPct, m.InsPct = 95, 5, 0
		case "c":
			m.ReadPct, m.UpdPct, m.InsPct = 100, 0, 0
		case "d":
			m.ReadPct, m.UpdPct, m.InsPct = 95, 0, 5
		default:
			return fmt.Errorf("loadmodel: class %q: unknown mix name %q", c.Name, m.Name)
		}
		return nil
	}
	if m.ReadPct < 0 || m.UpdPct < 0 || m.InsPct < 0 ||
		m.ReadPct+m.UpdPct+m.InsPct != 100 {
		return fmt.Errorf("loadmodel: class %q: mix percentages must be >= 0 and sum to 100", c.Name)
	}
	return nil
}

func (c *ClassSpec) validateRamp(durNs int64) error {
	last := int64(-1)
	for i := range c.Ramp {
		p := &c.Ramp[i]
		d, err := time.ParseDuration(p.T)
		if err != nil || d < 0 {
			return fmt.Errorf("loadmodel: class %q: bad ramp time %q", c.Name, p.T)
		}
		p.tNs = int64(d)
		if p.tNs > durNs {
			return fmt.Errorf("loadmodel: class %q: ramp point %q beyond duration", c.Name, p.T)
		}
		if p.tNs <= last {
			return fmt.Errorf("loadmodel: class %q: ramp points must be strictly increasing", c.Name)
		}
		last = p.tNs
		if p.X < 0 {
			return fmt.Errorf("loadmodel: class %q: ramp multiplier must be >= 0", c.Name)
		}
	}
	return nil
}

// clientWeights resolves the per-client rate split to normalized
// weights (len == Clients, sum 1).
func (c *ClassSpec) clientWeights() []float64 {
	w := make([]float64, c.Clients)
	switch c.RateSkew.Kind {
	case "zipf":
		sum := 0.0
		for j := range w {
			w[j] = 1.0 / powF(float64(j+1), c.RateSkew.Theta)
			sum += w[j]
		}
		for j := range w {
			w[j] /= sum
		}
	case "empirical":
		sum := 0.0
		for _, x := range c.RateSkew.Weights {
			sum += x
		}
		for j := range w {
			w[j] = c.RateSkew.Weights[j] / sum
		}
	default: // uniform
		for j := range w {
			w[j] = 1.0 / float64(c.Clients)
		}
	}
	return w
}

// byteReader avoids bytes.NewReader just for the decoder.
type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// rampKnots normalizes a class ramp to knots covering [0, durNs].
func rampKnots(c *ClassSpec, durNs int64) (ts []int64, xs []float64) {
	if len(c.Ramp) == 0 {
		return []int64{0, durNs}, []float64{1, 1}
	}
	// Normalize to knots covering [0, durNs]: hold the first value
	// before the first point and the last value after the last.
	if c.Ramp[0].tNs != 0 {
		ts = append(ts, 0)
		xs = append(xs, c.Ramp[0].X)
	}
	for i := range c.Ramp {
		ts = append(ts, c.Ramp[i].tNs)
		xs = append(xs, c.Ramp[i].X)
	}
	if ts[len(ts)-1] != durNs {
		ts = append(ts, durNs)
		xs = append(xs, xs[len(xs)-1])
	}
	return ts, xs
}
