package loadmodel

import "math"

// rng is a splitmix64 stream — the same generator kvgen uses, kept
// private here so every sampler in the package draws from one
// deterministic, platform-independent source. All float conversions
// use the top 53 bits, so results are bit-exact across architectures
// (pure IEEE-754 double arithmetic, no math/rand).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64o returns a uniform draw in the open interval (0,1) — never 0 or
// 1, so it is safe under log and under u^(1/k).
func (r *rng) f64o() float64 {
	return (float64(r.next()>>11) + 0.5) / (1 << 53)
}

// normal returns a standard normal via Marsaglia's polar method.
func (r *rng) normal() float64 {
	for {
		v1 := 2*r.f64o() - 1
		v2 := 2*r.f64o() - 1
		s := v1*v1 + v2*v2
		if s >= 1 || s == 0 {
			continue
		}
		return v1 * math.Sqrt(-2*math.Log(s)/s)
	}
}

// gammaVariate returns a draw from Gamma(shape k, scale 1) via
// Marsaglia–Tsang; the k < 1 boost uses G(k) = G(k+1) * U^(1/k).
func (r *rng) gammaVariate(k float64) float64 {
	if k < 1 {
		return r.gammaVariate(k+1) * math.Pow(r.f64o(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.f64o()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func powF(x, y float64) float64 { return math.Pow(x, y) }

// arrivalSampler produces interarrival gaps with mean 1 (unit rate);
// the generator scales them by the client's rate through the ramp
// time-warp.
type arrivalSampler struct {
	kind  string
	shape float64 // gamma: shape k = 1/cv^2; weibull: shape k
	scale float64 // precomputed so the mean is exactly 1
}

func newArrivalSampler(a ArrivalSpec) arrivalSampler {
	s := arrivalSampler{kind: a.Kind}
	switch a.Kind {
	case "gamma":
		s.shape = 1 / (a.CV * a.CV)
		s.scale = 1 / s.shape // mean = shape*scale = 1
	case "weibull":
		s.shape = a.Shape
		s.scale = 1 / math.Gamma(1+1/a.Shape) // mean = scale*Γ(1+1/k) = 1
	}
	return s
}

func (s arrivalSampler) gap(r *rng) float64 {
	switch s.kind {
	case "gamma":
		return s.scale * r.gammaVariate(s.shape)
	case "weibull":
		return s.scale * math.Pow(-math.Log(1-r.f64o()), 1/s.shape)
	case "fixed":
		return 1
	default: // poisson
		return -math.Log(1 - r.f64o())
	}
}

// ramp is the time-warp that turns a unit-rate arrival process into a
// rate-modulated one: with multiplier m(t) piecewise linear between
// knots, the cumulative intensity L(t) = ∫₀ᵗ m(u)du is piecewise
// quadratic and analytically invertible, so the n-th arrival of a
// client at base rate λ lands at t with L(t) = sₙ/λ, where sₙ is the
// unit-rate cumulative sum of sampled gaps. This is exact (no
// thinning, no discretization), which is what keeps generation
// deterministic and O(1) per op.
type ramp struct {
	ts  []float64 // knot times, seconds; covers [0, dur]
	xs  []float64 // multipliers at knots
	cum []float64 // L at each knot
}

func newRamp(c *ClassSpec, durNs int64) *ramp {
	tsNs, xs := rampKnots(c, durNs)
	rp := &ramp{
		ts:  make([]float64, len(tsNs)),
		xs:  xs,
		cum: make([]float64, len(tsNs)),
	}
	for i, t := range tsNs {
		rp.ts[i] = float64(t) / 1e9
	}
	for i := 1; i < len(rp.ts); i++ {
		dt := rp.ts[i] - rp.ts[i-1]
		rp.cum[i] = rp.cum[i-1] + dt*(rp.xs[i-1]+rp.xs[i])/2
	}
	return rp
}

// total returns L(dur): the expected ops per unit base rate.
func (rp *ramp) total() float64 { return rp.cum[len(rp.cum)-1] }

// invert returns the t (seconds) with L(t) = a, or the run length + 1
// second when a exceeds the total intensity (caller stops there).
func (rp *ramp) invert(a float64) float64 {
	n := len(rp.ts)
	if a >= rp.cum[n-1] {
		return rp.ts[n-1] + 1
	}
	// Find the segment holding a. Segment count is tiny (a handful of
	// ramp knots), so a linear scan from a cached index would win
	// nothing; binary search keeps it obviously correct.
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if rp.cum[mid] <= a {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := rp.ts[lo], rp.ts[lo+1]
	m0, m1 := rp.xs[lo], rp.xs[lo+1]
	c0 := rp.cum[lo]
	rem := a - c0
	seg := t1 - t0
	k := (m1 - m0) / seg // multiplier slope within the segment
	// Solve (k/2)·dt² + m0·dt = rem for dt ∈ [0, seg].
	var dt float64
	if math.Abs(k) < 1e-12 {
		if m0 <= 0 {
			// Dead segment with rem > 0 can't happen (cum is flat
			// across it, so the search lands past it), but guard.
			return t1
		}
		dt = rem / m0
	} else {
		disc := m0*m0 + 2*k*rem
		if disc < 0 {
			disc = 0
		}
		dt = (-m0 + math.Sqrt(disc)) / k
	}
	if dt < 0 {
		dt = 0
	}
	if dt > seg {
		dt = seg
	}
	return t0 + dt
}

// keyPicker maps uniform draws to popularity ranks over [0, keys).
type keyPicker struct {
	kind string
	zipf zipfRanker
	cdf  []float64 // empirical: cumulative masses over equal-width slices
	keys int
}

// zipfRanker is implemented in gen.go on top of workloads.ZipfSampler
// so the generator and kvgen share one threshold table per (n, θ).
type zipfRanker interface {
	Rank(k uint64) int
}

func newKeyPicker(d DistSpec, keys int, mk func(n int, theta float64) zipfRanker) *keyPicker {
	p := &keyPicker{kind: d.Kind, keys: keys}
	switch d.Kind {
	case "zipfian":
		p.zipf = mk(keys, d.Theta)
	case "empirical":
		p.cdf = make([]float64, len(d.Weights))
		sum := 0.0
		for _, w := range d.Weights {
			sum += w
		}
		acc := 0.0
		for i, w := range d.Weights {
			acc += w / sum
			p.cdf[i] = acc
		}
		p.cdf[len(p.cdf)-1] = 1 // clamp float drift
	}
	return p
}

// pick returns a key index in [0, keys).
func (p *keyPicker) pick(r *rng) int {
	switch p.kind {
	case "zipfian":
		rank := p.zipf.Rank(r.next() >> 11)
		// Scramble rank -> index exactly the way kvgen does, so hot
		// ranks scatter across the table instead of clustering.
		return int(scramble(uint64(rank)) % uint64(p.keys))
	case "empirical":
		u := r.f64o()
		lo, hi := 0, len(p.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if p.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// Bucket lo covers an equal-width slice of the key space;
		// uniform within it.
		b := len(p.cdf)
		start := p.keys * lo / b
		end := p.keys * (lo + 1) / b
		if end <= start {
			end = start + 1
		}
		return start + int(r.next()%uint64(end-start))
	default: // uniform
		return int(r.next() % uint64(p.keys))
	}
}

// scramble is splitmix64's output mix — one-shot hash of a rank.
func scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
