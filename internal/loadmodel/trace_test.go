package loadmodel

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestTraceRoundTrip pins the acceptance criterion: a trace
// round-trips exactly (ops identical after write→read) and re-writing
// the parsed trace reproduces the original bytes.
func TestTraceRoundTrip(t *testing.T) {
	spec := mustBuiltin(t, "bursty", 0.2, "800ms")
	ops := mustGen(t, spec)
	tr := TraceOf(spec, ops)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	got, err := ReadTrace(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, tr.Header) {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", got.Header, tr.Header)
	}
	if !reflect.DeepEqual(got.Ops, tr.Ops) {
		t.Fatal("ops mismatch after round trip")
	}

	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-encoded trace not byte-identical")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	spec := mustBuiltin(t, "steady", 0.1, "500ms")
	ops := mustGen(t, spec)
	tr := TraceOf(spec, ops)
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(ops) || got.Header.Ops != len(ops) {
		t.Fatalf("op count: got %d/%d, want %d", len(got.Ops), got.Header.Ops, len(ops))
	}
}

func TestTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad version": `{"v":2,"ops":0}` + "\n",
		"bad op": `{"v":1,"name":"x","seed":1,"dur_ns":1,"streams":1,"keys":1,"classes":["a"],"ops":1}` + "\n" +
			`{"t":0,"c":0,"k":0,"o":"z","key":1}` + "\n",
		"count mismatch": `{"v":1,"name":"x","seed":1,"dur_ns":1,"streams":1,"keys":1,"classes":["a"],"ops":2}` + "\n" +
			`{"t":0,"c":0,"k":0,"o":"g","key":1}` + "\n",
		"absurd count": `{"v":1,"ops":999999999999}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
