package loadmodel

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
	"lazyp/internal/obs"
)

func startKV(t *testing.T, spec *Spec) *kvserve.Server {
	t.Helper()
	s, err := kvserve.New(kvserve.Config{
		Path:      filepath.Join(t.TempDir(), "kv.img"),
		Mode:      lpstore.ModeLP,
		Shards:    4,
		Capacity:  1 << 14,
		MaxOps:    1 << 16,
		BatchK:    32,
		Streams:   spec.Streams,
		Keys:      spec.Keys,
		Seed:      spec.PreloadSeed,
		Mailbox:   256,
		BatchWait: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("kvserve.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("kvserve.Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRunReplay drives a small generated stream open-loop against an
// in-process kvserve and checks full settlement: every op accounted,
// zero rejects at this load, per-class counts matching the stream.
func TestRunReplay(t *testing.T) {
	spec := mustBuiltin(t, "steady", 0.1, "600ms")
	ops := mustGen(t, spec)
	tr := TraceOf(spec, ops)
	srv := startKV(t, spec)

	reg := obs.NewRegistry()
	rep, err := Run(srv.Addr(), tr, RunOpts{Conns: 2, Registry: reg})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Partial {
		t.Fatal("run reported partial")
	}
	if rep.Total.Ops != len(ops) {
		t.Fatalf("total ops %d, want %d", rep.Total.Ops, len(ops))
	}
	rej := rep.Total.Overloads + rep.Total.Expired + rep.Total.Full
	if rej != 0 || rep.Moved != 0 || rep.Errors != 0 {
		t.Fatalf("unexpected rejects/errors: ov/exp/full=%d moved=%d errs=%d",
			rej, rep.Moved, rep.Errors)
	}
	// Reads target preloaded keys and updates overwrite them; inserts
	// are new keys. Nothing should miss.
	if rep.NotFound != 0 {
		t.Fatalf("%d NotFound on a preload-matched spec", rep.NotFound)
	}
	want := ClassOps(ops, len(spec.Classes))
	for i, cp := range rep.Classes {
		if cp.Ops != want[i] {
			t.Fatalf("class %s: %d ops, want %d", cp.Name, cp.Ops, want[i])
		}
		if cp.P50us <= 0 || cp.P99us < cp.P50us {
			t.Fatalf("class %s: bad latency shape p50=%.1f p99=%.1f", cp.Name, cp.P50us, cp.P99us)
		}
	}
	// Registry export exists for every class.
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	for _, name := range spec.ClassNames() {
		if !strings.Contains(prom.String(), `loadmodel_class_latency_seconds_count{class="`+name+`"`) {
			t.Fatalf("registry missing latency series for class %s:\n%s", name, prom.String())
		}
	}
}

// TestRunRejectCounting overdrives a deliberately tiny server and
// checks rejects are counted per cause instead of erroring the run.
func TestRunRejectCounting(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "slam",
  "duration": "400ms",
  "streams": 2,
  "keys": 128,
  "classes": [
    {"name": "w", "clients": 8, "rate_ops": 120000, "mix": {"read_pct": 0, "update_pct": 100, "insert_pct": 0}}
  ]
}`)
	ops := mustGen(t, spec)
	tr := TraceOf(spec, ops)

	s, err := kvserve.New(kvserve.Config{
		Path:      filepath.Join(t.TempDir(), "kv.img"),
		Mode:      lpstore.ModeLP,
		Shards:    1,
		Capacity:  1 << 12,
		MaxOps:    1 << 14,
		BatchK:    16,
		Streams:   spec.Streams,
		Keys:      spec.Keys,
		Seed:      spec.PreloadSeed,
		Mailbox:   8,
		BatchWait: 2 * time.Millisecond,
		Fsync:     true,
	})
	if err != nil {
		t.Fatalf("kvserve.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("kvserve.Start: %v", err)
	}
	defer s.Close()

	rep, err := Run(s.Addr(), tr, RunOpts{Conns: 4, MaxInflight: 64})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Total.Overloads == 0 {
		t.Fatalf("no overloads against a mailbox-8 single shard: %+v", rep.Total)
	}
	if rep.Total.Ops != len(ops) {
		t.Fatalf("accounting leak: %d settled of %d", rep.Total.Ops, len(ops))
	}
	if rep.Total.RejectRate <= 0 {
		t.Fatal("reject rate not computed")
	}
}

// TestRunTracePropagation: the open-loop replayer must negotiate the
// trace extension and thread client-minted trace IDs through to the
// server, so a spec-driven run (the lpplan validation workload) feeds
// lptrace the same timelines a closed-loop run does — client_send and
// client_ack from the replayer's tracer joining stage events from the
// server's, on the same IDs.
func TestRunTracePropagation(t *testing.T) {
	spec := mustBuiltin(t, "steady", 0.1, "400ms")
	ops := mustGen(t, spec)
	tr := TraceOf(spec, ops)
	srv := startKV(t, spec)
	srv.Tracer().Enable(true)

	clientTr := obs.NewTracer(1 << 14)
	clientTr.Enable(true)
	rep, err := Run(srv.Addr(), tr, RunOpts{
		Conns: 2, Tracer: clientTr, TraceEvery: 4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Partial || rep.Errors > 0 {
		t.Fatalf("run degraded: partial=%v errors=%d", rep.Partial, rep.Errors)
	}

	timelines := obs.AssembleTimelines(map[string][]obs.Event{
		"client": clientTr.Drain(0),
		"n0":     srv.Tracer().Drain(0),
	})
	full := 0
	for i := range timelines {
		tl := &timelines[i]
		if tl.Has(obs.EvClientSend) && tl.Has(obs.EvClientAck) &&
			tl.Has(obs.EvStageEnq) && tl.Has(obs.EvStageReply) {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no open-loop timeline joined client and server spans (%d timelines)", len(timelines))
	}
	t.Logf("%d/%d open-loop timelines carry client + server stage spans", full, len(timelines))
}
