package loadmodel

import (
	"fmt"
	"strings"
)

// Built-in specs: the validation workloads E17 and the CI smoke run.
// All go through ParseSpec so the builtins exercise exactly the path a
// user spec file does, and all scale: rate multiplies every class's
// aggregate rate, dur replaces the run length (ramp knots are defined
// inside 600ms so any dur >= 700ms stays valid).
//
//   - steady: a skewed-client population (zipf rate split — a few hot
//     clients dominate) with Poisson arrivals over two SLO classes:
//     a read-heavy interactive class and a write-heavy ingest class.
//   - bursty: a Gamma(CV=3) bursty class whose rate ramps 0.5x→2x→0.5x
//     (a compressed diurnal), next to a steady read-only class —
//     admission control under the burst is the point.
//   - mixed: a write-leaning class with heavy-tailed Weibull arrivals
//     and an explicit 30/70 read/update split, next to an
//     insert-carrying mix-d class — exercises the put path from a
//     different angle than either of the above (E17 holds it out of
//     calibration).
func BuiltinSpec(name string, rate float64, dur string) (*Spec, error) {
	if rate <= 0 {
		rate = 1
	}
	if dur == "" {
		dur = "2s"
	}
	var js string
	switch name {
	case "steady":
		js = fmt.Sprintf(`{
  "name": "steady",
  "seed": 1,
  "duration": "%s",
  "streams": 4,
  "keys": 2048,
  "classes": [
    {
      "name": "interactive",
      "clients": 12,
      "rate_ops": %d,
      "rate_skew": {"kind": "zipf", "theta": 1.0},
      "arrival": {"kind": "poisson"},
      "key_dist": {"kind": "zipfian", "theta": 0.99},
      "mix": {"name": "b"}
    },
    {
      "name": "ingest",
      "clients": 4,
      "rate_ops": %d,
      "arrival": {"kind": "poisson"},
      "key_dist": {"kind": "uniform"},
      "mix": {"name": "a"}
    }
  ]
}`, dur, int(18000*rate), int(6000*rate))
	case "bursty":
		js = fmt.Sprintf(`{
  "name": "bursty",
  "seed": 7,
  "duration": "%s",
  "streams": 4,
  "keys": 2048,
  "classes": [
    {
      "name": "burst",
      "clients": 8,
      "rate_ops": %d,
      "rate_skew": {"kind": "zipf", "theta": 0.8},
      "arrival": {"kind": "gamma", "cv": 3.0},
      "key_dist": {"kind": "zipfian", "theta": 0.99},
      "mix": {"name": "a"},
      "ramp": [
        {"t": "0ms", "x": 0.5},
        {"t": "300ms", "x": 2.0},
        {"t": "600ms", "x": 0.5}
      ]
    },
    {
      "name": "readers",
      "clients": 4,
      "rate_ops": %d,
      "arrival": {"kind": "poisson"},
      "key_dist": {"kind": "uniform"},
      "mix": {"name": "c"}
    }
  ]
}`, dur, int(14000*rate), int(8000*rate))
	case "mixed":
		js = fmt.Sprintf(`{
  "name": "mixed",
  "seed": 11,
  "duration": "%s",
  "streams": 4,
  "keys": 2048,
  "classes": [
    {
      "name": "writers",
      "clients": 6,
      "rate_ops": %d,
      "arrival": {"kind": "weibull", "shape": 0.7},
      "key_dist": {"kind": "zipfian", "theta": 0.9},
      "mix": {"read_pct": 30, "update_pct": 70, "insert_pct": 0}
    },
    {
      "name": "loaders",
      "clients": 10,
      "rate_ops": %d,
      "rate_skew": {"kind": "zipf", "theta": 0.6},
      "arrival": {"kind": "poisson"},
      "key_dist": {"kind": "uniform"},
      "mix": {"name": "d"}
    }
  ]
}`, dur, int(8000*rate), int(12000*rate))
	default:
		return nil, fmt.Errorf("loadmodel: unknown builtin spec %q (have: %s)", name, BuiltinNames())
	}
	return ParseSpec([]byte(js))
}

// BuiltinNames lists the built-in spec names.
func BuiltinNames() string { return strings.Join([]string{"steady", "bursty", "mixed"}, ", ") }
