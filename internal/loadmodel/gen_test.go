package loadmodel

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"testing"

	"lazyp/internal/workloads"
)

func mustSpec(t *testing.T, js string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(js))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return s
}

func mustBuiltin(t *testing.T, name string, rate float64, dur string) *Spec {
	t.Helper()
	s, err := BuiltinSpec(name, rate, dur)
	if err != nil {
		t.Fatalf("BuiltinSpec(%s): %v", name, err)
	}
	return s
}

func mustGen(t *testing.T, s *Spec) []Op {
	t.Helper()
	ops, err := Generate(s)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ops
}

func opsDigest(ops []Op) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for i := range ops {
		w(uint64(ops[i].At))
		w(uint64(ops[i].Client))
		w(uint64(ops[i].Class))
		if ops[i].IsPut {
			w(1)
		} else {
			w(0)
		}
		w(ops[i].Key)
		w(ops[i].Val)
	}
	return h.Sum64()
}

// TestGenerateDeterministic pins the acceptance criterion: same spec +
// seed ⇒ byte-identical op stream and trace encoding. The digest pins
// it across machines, not just across two calls in one process — the
// sampler stack is pure IEEE-754 arithmetic over a splitmix64 stream,
// so the stream is a platform-independent function of the spec.
func TestGenerateDeterministic(t *testing.T) {
	for _, name := range []string{"steady", "bursty"} {
		a := mustGen(t, mustBuiltin(t, name, 0.2, "900ms"))
		b := mustGen(t, mustBuiltin(t, name, 0.2, "900ms"))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two generations differ", name)
		}
		var bufA, bufB bytes.Buffer
		if err := WriteTrace(&bufA, TraceOf(mustBuiltin(t, name, 0.2, "900ms"), a)); err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(&bufB, TraceOf(mustBuiltin(t, name, 0.2, "900ms"), b)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Fatalf("%s: trace encodings differ", name)
		}
		t.Logf("%s: %d ops, digest %#x", name, len(a), opsDigest(a))
	}
}

// TestGenerateStreamShape checks ordering and key-space invariants:
// time-sorted, per-client monotone, reads confined to the preloaded
// key space, inserts confined to per-client disjoint tids above it.
func TestGenerateStreamShape(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "shape",
  "duration": "600ms",
  "streams": 2,
  "keys": 512,
  "classes": [
    {"name": "rw", "clients": 3, "rate_ops": 8000, "mix": {"name": "a"}},
    {"name": "ins", "clients": 2, "rate_ops": 4000, "mix": {"read_pct": 50, "update_pct": 0, "insert_pct": 50}}
  ]
}`)
	ops := mustGen(t, spec)
	if len(ops) == 0 {
		t.Fatal("no ops generated")
	}
	lastAt := int64(-1)
	perClientAt := map[int32]int64{}
	perClientIns := map[int32]uint64{}
	for i := range ops {
		op := &ops[i]
		if op.At < lastAt {
			t.Fatalf("op %d: At %d < previous %d", i, op.At, lastAt)
		}
		lastAt = op.At
		if op.At < perClientAt[op.Client] {
			t.Fatalf("op %d: client %d time went backwards", i, op.Client)
		}
		perClientAt[op.Client] = op.At
		if op.At >= spec.DurationNs() {
			t.Fatalf("op %d: At %d beyond duration %d", i, op.At, spec.DurationNs())
		}
		tid := int(op.Key>>40) - 1
		idx := int(op.Key&((1<<40)-1)) - 1
		if tid < spec.Streams {
			// Preload key: must be the client's stream and in range.
			if want := int(op.Client) % spec.Streams; tid != want {
				t.Fatalf("op %d: key tid %d, want stream %d", i, tid, want)
			}
			if idx < 0 || idx >= spec.Keys {
				t.Fatalf("op %d: key idx %d out of [0,%d)", i, idx, spec.Keys)
			}
		} else {
			// Insert: disjoint per-client tid, monotone idx.
			if !op.IsPut {
				t.Fatalf("op %d: get on insert key space", i)
			}
			if want := spec.Streams + int(op.Client); tid != want {
				t.Fatalf("op %d: insert tid %d, want %d", i, tid, want)
			}
			if uint64(idx) != perClientIns[op.Client] {
				t.Fatalf("op %d: client %d insert idx %d, want %d", i, op.Client, idx, perClientIns[op.Client])
			}
			perClientIns[op.Client]++
		}
	}

	// Offered load lands near spec: 12k ops/s × 0.6s = 7200 expected.
	want := 0.6 * 12000
	if f := float64(len(ops)); f < 0.85*want || f > 1.15*want {
		t.Fatalf("generated %d ops, want ≈%.0f", len(ops), want)
	}
	// Mix fractions: class rw is 50/50 read/update.
	var puts, gets int
	for i := range ops {
		if ops[i].Class != 0 {
			continue
		}
		if ops[i].IsPut {
			puts++
		} else {
			gets++
		}
	}
	if frac := float64(puts) / float64(puts+gets); math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("class rw put fraction %.3f, want ≈0.5", frac)
	}
}

// TestGenerateRampShape verifies the time-warp: a 0.5x→2x→0.5x ramp
// must concentrate ops around the peak knot.
func TestGenerateRampShape(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "ramp",
  "duration": "900ms",
  "classes": [
    {"name": "b", "clients": 4, "rate_ops": 20000, "mix": {"name": "c"},
     "ramp": [{"t": "0ms", "x": 0.5}, {"t": "450ms", "x": 2.0}, {"t": "900ms", "x": 0.5}]}
  ]
}`)
	ops := mustGen(t, spec)
	buckets := make([]int, 3) // thirds of the run
	for i := range ops {
		b := int(ops[i].At * 3 / spec.DurationNs())
		if b > 2 {
			b = 2
		}
		buckets[b]++
	}
	if buckets[1] <= buckets[0] || buckets[1] <= buckets[2] {
		t.Fatalf("middle third %v not the densest under a peaked ramp", buckets)
	}
	// Expected totals: mean multiplier 1.25 ⇒ 20000×0.9×1.25 = 22500.
	want := 22500.0
	if f := float64(len(ops)); f < 0.9*want || f > 1.1*want {
		t.Fatalf("generated %d ops, want ≈%.0f", len(ops), want)
	}
}

// TestArrivalBurstiness checks the interarrival CV ordering: fixed <
// poisson < gamma(cv=3) on a single client's gaps.
func TestArrivalBurstiness(t *testing.T) {
	cv := func(kind, extra string) float64 {
		spec := mustSpec(t, fmt.Sprintf(`{
  "name": "cv",
  "duration": "2s",
  "classes": [
    {"name": "x", "clients": 1, "rate_ops": 5000, "mix": {"name": "c"},
     "arrival": {"kind": "%s"%s}}
  ]
}`, kind, extra))
		ops := mustGen(t, spec)
		if len(ops) < 1000 {
			t.Fatalf("arrival %s: only %d ops", kind, len(ops))
		}
		var gaps []float64
		for i := 1; i < len(ops); i++ {
			gaps = append(gaps, float64(ops[i].At-ops[i-1].At))
		}
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		var varsum float64
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		return math.Sqrt(varsum/float64(len(gaps))) / mean
	}
	f := cv("fixed", "")
	p := cv("poisson", "")
	g := cv("gamma", `, "cv": 3.0`)
	w := cv("weibull", `, "shape": 0.5`)
	if !(f < 0.2 && p > 0.8 && p < 1.2 && g > 2.0 && w > 1.5) {
		t.Fatalf("CV ordering violated: fixed=%.2f poisson=%.2f gamma3=%.2f weibull0.5=%.2f", f, p, g, w)
	}
}

// TestRateSkewSplit checks the zipf rate split: client 0 of a θ=1
// zipf population must carry the largest share, and empirical weights
// must be honored.
func TestRateSkewSplit(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "skew",
  "duration": "1s",
  "classes": [
    {"name": "z", "clients": 4, "rate_ops": 12000, "mix": {"name": "c"},
     "rate_skew": {"kind": "zipf", "theta": 1.0}},
    {"name": "e", "clients": 2, "rate_ops": 6000, "mix": {"name": "c"},
     "rate_skew": {"kind": "empirical", "weights": [3, 1]}}
  ]
}`)
	ops := mustGen(t, spec)
	perClient := map[int32]int{}
	for i := range ops {
		perClient[ops[i].Client]++
	}
	// zipf θ=1 over 4 clients: weights 1, 1/2, 1/3, 1/4 (norm ~0.48,
	// 0.24, 0.16, 0.12).
	if !(perClient[0] > perClient[1] && perClient[1] > perClient[2] && perClient[2] > perClient[3]) {
		t.Fatalf("zipf split not monotone: %v", perClient)
	}
	if r := float64(perClient[0]) / float64(perClient[3]); r < 2.5 || r > 6 {
		t.Fatalf("zipf head/tail ratio %.2f, want ≈4", r)
	}
	// empirical 3:1 across global clients 4 and 5.
	if r := float64(perClient[4]) / float64(perClient[5]); r < 2.4 || r > 3.8 {
		t.Fatalf("empirical split ratio %.2f, want ≈3", r)
	}
}

// TestKeyDistZipfMatchesKVGen pins that the generator's zipfian key
// picker uses the same rank sampler + scramble as kvgen, so
// spec-driven load hits the same hot set the closed-loop harness does.
func TestKeyDistZipfMatchesKVGen(t *testing.T) {
	const keys = 1024
	z := workloads.NewZipfSampler(keys, 0.99)
	p := newKeyPicker(DistSpec{Kind: "zipfian", Theta: 0.99}, keys, func(n int, theta float64) zipfRanker {
		return workloads.NewZipfSampler(n, theta)
	})
	r1 := &rng{s: 42}
	r2 := &rng{s: 42}
	for i := 0; i < 4096; i++ {
		want := int(workloads.SplitMix64(uint64(z.Rank(r1.next()>>11))) % keys)
		got := p.pick(r2)
		if got != want {
			t.Fatalf("draw %d: picker %d, kvgen path %d", i, got, want)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"classes": []}`,
		`{"classes": [{"name": "", "clients": 1, "rate_ops": 1}]}`,
		`{"classes": [{"name": "a b", "clients": 1, "rate_ops": 1}]}`,
		`{"classes": [{"name": "x", "clients": 0, "rate_ops": 1}]}`,
		`{"classes": [{"name": "x", "clients": 1, "rate_ops": 0}]}`,
		`{"classes": [{"name": "x", "clients": 1, "rate_ops": 1, "mix": {"read_pct": 60, "update_pct": 60}}]}`,
		`{"classes": [{"name": "x", "clients": 1, "rate_ops": 1, "arrival": {"kind": "gamma"}}]}`,
		`{"classes": [{"name": "x", "clients": 2, "rate_ops": 1, "rate_skew": {"kind": "empirical", "weights": [1]}}]}`,
		`{"duration": "2s", "classes": [{"name": "x", "clients": 1, "rate_ops": 1,
		  "ramp": [{"t": "3s", "x": 1}]}]}`,
		`{"classes": [{"name": "x", "clients": 2, "rate_ops": 1}, {"name": "x", "clients": 1, "rate_ops": 1}]}`,
		`{"unknown_field": 1, "classes": [{"name": "x", "clients": 1, "rate_ops": 1}]}`,
	}
	for i, js := range bad {
		if _, err := ParseSpec([]byte(js)); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
	// Defaults fill in.
	s := mustSpec(t, `{"classes": [{"name": "x", "clients": 1, "rate_ops": 100}]}`)
	if s.Seed != 1 || s.Streams != 4 || s.Keys != 2048 || s.DurationNs() != int64(2e9) {
		t.Fatalf("defaults wrong: %+v", s)
	}
	if s.Classes[0].Arrival.Kind != "poisson" || s.Classes[0].KeyDist.Kind != "zipfian" ||
		s.Classes[0].Mix.ReadPct+s.Classes[0].Mix.UpdPct+s.Classes[0].Mix.InsPct != 100 {
		t.Fatalf("class defaults wrong: %+v", s.Classes[0])
	}
}
