package loadmodel

import (
	"reflect"
	"testing"
	"time"
)

// TestPlanDeterministic: the prediction is a pure function of
// (ops, cfg) — run it twice, byte-equal reports.
func TestPlanDeterministic(t *testing.T) {
	spec := mustBuiltin(t, "bursty", 0.2, "800ms")
	ops := mustGen(t, spec)
	a := Plan(spec, ops, PlanConfig{})
	b := Plan(spec, ops, PlanConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans of the same stream differ")
	}
	if a.Total.Ops != len(ops) {
		t.Fatalf("total ops %d, want %d", a.Total.Ops, len(ops))
	}
}

// TestPlanLowLoadLatency: an underloaded pure-get class should settle
// near NetRTT+GetSvc, and low-load puts should be dominated by the
// BatchWait seal deadline.
func TestPlanLowLoadLatency(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "low",
  "duration": "1s",
  "classes": [
    {"name": "g", "clients": 2, "rate_ops": 2000, "mix": {"name": "c"}},
    {"name": "p", "clients": 2, "rate_ops": 500, "mix": {"read_pct": 0, "update_pct": 100, "insert_pct": 0}}
  ]
}`)
	ops := mustGen(t, spec)
	cal := DefaultCalibration()
	cfg := PlanConfig{BatchWaitNs: int64(500 * time.Microsecond), Cal: cal}
	rep := Plan(spec, ops, cfg)

	floor := (cal.NetRTTNs + cal.GetSvcNs) / 1e3
	gp := rep.Classes[0]
	if gp.P50us < 0.8*floor || gp.P50us > 3*floor {
		t.Fatalf("get p50 %.1fµs, want near floor %.1fµs", gp.P50us, floor)
	}
	if gp.RejectRate != 0 {
		t.Fatalf("underloaded get class rejected %.3f", gp.RejectRate)
	}

	// A trickle of puts (500/s over 4 shards) rarely fills BatchK=32
	// before the 500µs deadline: put p50 must carry most of BatchWait.
	pp := rep.Classes[1]
	waitUs := float64(cfg.BatchWaitNs) / 1e3
	if pp.PutP99us < 0.5*waitUs {
		t.Fatalf("put p99 %.1fµs, want >= half of BatchWait %.1fµs", pp.PutP99us, waitUs)
	}
	if pp.P50us <= gp.P50us {
		t.Fatalf("put class p50 %.1fµs not above get class p50 %.1fµs", pp.P50us, gp.P50us)
	}

	if rep.GetUtil <= 0 || rep.GetUtil > 0.5 || rep.PutUtil <= 0 || rep.PutUtil > 0.5 {
		t.Fatalf("utilization out of band: get %.3f put %.3f", rep.GetUtil, rep.PutUtil)
	}
}

// TestPlanOverload: offered put load far beyond capacity with a tiny
// mailbox must shed via Overload, and the served rate must flatten at
// roughly the modeled capacity, not the offered rate.
func TestPlanOverload(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "over",
  "duration": "500ms",
  "classes": [
    {"name": "w", "clients": 8, "rate_ops": 600000, "mix": {"read_pct": 0, "update_pct": 100, "insert_pct": 0}}
  ]
}`)
	ops := mustGen(t, spec)
	cfg := PlanConfig{Shards: 2, Mailbox: 16}
	rep := Plan(spec, ops, cfg)
	if rep.Total.Overloads == 0 {
		t.Fatal("no overloads under 5x-capacity put load")
	}
	if rep.Total.RejectRate < 0.2 {
		t.Fatalf("reject rate %.3f, want substantial shed", rep.Total.RejectRate)
	}
	cap := float64(2) / rep.Cfg.Cal.PutSvcNs * 1e9
	if rep.Total.OKOpsS > 1.3*cap {
		t.Fatalf("served %.0f ops/s exceeds modeled capacity %.0f", rep.Total.OKOpsS, cap)
	}
	if rep.PutUtil < 1 {
		t.Fatalf("put util %.2f, want >= 1 under overload", rep.PutUtil)
	}
}

// TestPlanExpired: a dequeue deadline shorter than the queueing delay
// under pressure must surface Expired rejections.
func TestPlanExpired(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "exp",
  "duration": "500ms",
  "classes": [
    {"name": "w", "clients": 8, "rate_ops": 400000, "mix": {"read_pct": 0, "update_pct": 100, "insert_pct": 0}}
  ]
}`)
	ops := mustGen(t, spec)
	cfg := PlanConfig{Shards: 2, Mailbox: 4096, MaxDelayNs: int64(200 * time.Microsecond)}
	rep := Plan(spec, ops, cfg)
	if rep.Total.Expired == 0 {
		t.Fatal("no expiries with a 200µs dequeue deadline under overload")
	}
}

// TestPlanFull: a small per-shard journal budget must convert the tail
// of a long run into Full rejections.
func TestPlanFull(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "full",
  "duration": "500ms",
  "classes": [
    {"name": "w", "clients": 4, "rate_ops": 40000, "mix": {"read_pct": 0, "update_pct": 100, "insert_pct": 0}}
  ]
}`)
	ops := mustGen(t, spec)
	cfg := PlanConfig{Shards: 4, MaxOpsPerShard: 512}
	rep := Plan(spec, ops, cfg)
	if rep.Total.Full == 0 {
		t.Fatalf("no Full rejections with a 512-op journal budget against %d puts", CountPuts(ops))
	}
}

// TestPlanSealLagShiftsPutTail: a calibrated seal-timer lag must push
// the timer-sealed put tail up by roughly the lag, and leave pure-get
// latency alone.
func TestPlanSealLagShiftsPutTail(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "lag",
  "duration": "1s",
  "classes": [
    {"name": "g", "clients": 2, "rate_ops": 2000, "mix": {"name": "c"}},
    {"name": "p", "clients": 2, "rate_ops": 500, "mix": {"read_pct": 0, "update_pct": 100, "insert_pct": 0}}
  ]
}`)
	ops := mustGen(t, spec)
	base := Plan(spec, ops, PlanConfig{})
	lagged := DefaultCalibration()
	lagged.SealLagNs = 800_000
	shifted := Plan(spec, ops, PlanConfig{Cal: lagged})

	dUs := shifted.Classes[1].PutP99us - base.Classes[1].PutP99us
	if dUs < 400 {
		t.Fatalf("put p99 moved %.0fµs under an 800µs seal lag, want a substantial shift", dUs)
	}
	if shifted.Classes[0].P50us != base.Classes[0].P50us {
		t.Fatalf("get p50 moved under seal lag: %.1fµs vs %.1fµs",
			shifted.Classes[0].P50us, base.Classes[0].P50us)
	}
}

// TestPlanReplicatedSlower: turning on the replication hop must not
// make predicted put latency better.
func TestPlanReplicatedSlower(t *testing.T) {
	spec := mustSpec(t, `{
  "name": "repl",
  "duration": "500ms",
  "classes": [
    {"name": "w", "clients": 2, "rate_ops": 5000, "mix": {"name": "a"}}
  ]
}`)
	ops := mustGen(t, spec)
	plain := Plan(spec, ops, PlanConfig{})
	repl := Plan(spec, ops, PlanConfig{Replicated: true})
	if repl.Total.PutP99us < plain.Total.PutP99us {
		t.Fatalf("replicated put p99 %.1fµs < plain %.1fµs", repl.Total.PutP99us, plain.Total.PutP99us)
	}
}

func TestCalibrationFromBenchMissing(t *testing.T) {
	if _, err := CalibrateFromBench("/nonexistent/BENCH.json", ""); err == nil {
		t.Fatal("missing bench file accepted")
	}
}
