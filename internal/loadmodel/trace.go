package loadmodel

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Trace format: JSONL, one header line then one line per op. The
// writer is hand-rolled over strconv so the encoding is canonical —
// same ops ⇒ byte-identical file, which is what the CI determinism
// diff pins. The reader uses encoding/json, so hand-edited but valid
// traces still load.
//
//	{"v":1,"name":"x","seed":1,"dur_ns":2000000000,"streams":4,"keys":2048,"classes":["a","b"],"ops":1234}
//	{"t":512345,"c":0,"k":0,"o":"g","key":1099511628033}
//	{"t":513210,"c":3,"k":1,"o":"p","key":1099511628042,"val":17293822569102704642}
//
// t is ns from run start, c the global client, k the class index into
// the header's classes list, o the op ("p" put, "g" get). val is
// omitted for gets.

// TraceHeader is the first line of a trace file.
type TraceHeader struct {
	V       int      `json:"v"`
	Name    string   `json:"name"`
	Seed    uint64   `json:"seed"`
	DurNs   int64    `json:"dur_ns"`
	Streams int      `json:"streams"`
	Keys    int      `json:"keys"`
	Classes []string `json:"classes"`
	Ops     int      `json:"ops"`
}

// Trace couples a header with its op stream.
type Trace struct {
	Header TraceHeader
	Ops    []Op
}

// TraceOf packages a generated stream with its spec's identity.
func TraceOf(spec *Spec, ops []Op) *Trace {
	return &Trace{
		Header: TraceHeader{
			V:       1,
			Name:    spec.Name,
			Seed:    spec.Seed,
			DurNs:   spec.durNs,
			Streams: spec.Streams,
			Keys:    spec.Keys,
			Classes: spec.ClassNames(),
			Ops:     len(ops),
		},
		Ops: ops,
	}
}

// WriteTrace emits the canonical encoding.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 160)

	h := &tr.Header
	buf = append(buf, `{"v":1,"name":`...)
	// Class and spec names are validated to [A-Za-z0-9_.-], so their
	// JSON encoding is the bare quoted string — no escaping needed —
	// but go through strconv.Quote anyway: it is canonical for that
	// alphabet and safe if validation ever loosens.
	buf = strconv.AppendQuote(buf, h.Name)
	buf = append(buf, `,"seed":`...)
	buf = strconv.AppendUint(buf, h.Seed, 10)
	buf = append(buf, `,"dur_ns":`...)
	buf = strconv.AppendInt(buf, h.DurNs, 10)
	buf = append(buf, `,"streams":`...)
	buf = strconv.AppendInt(buf, int64(h.Streams), 10)
	buf = append(buf, `,"keys":`...)
	buf = strconv.AppendInt(buf, int64(h.Keys), 10)
	buf = append(buf, `,"classes":[`...)
	for i, name := range h.Classes {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendQuote(buf, name)
	}
	buf = append(buf, `],"ops":`...)
	buf = strconv.AppendInt(buf, int64(h.Ops), 10)
	buf = append(buf, '}', '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}

	for i := range tr.Ops {
		op := &tr.Ops[i]
		buf = buf[:0]
		buf = append(buf, `{"t":`...)
		buf = strconv.AppendInt(buf, op.At, 10)
		buf = append(buf, `,"c":`...)
		buf = strconv.AppendInt(buf, int64(op.Client), 10)
		buf = append(buf, `,"k":`...)
		buf = strconv.AppendInt(buf, int64(op.Class), 10)
		if op.IsPut {
			buf = append(buf, `,"o":"p","key":`...)
			buf = strconv.AppendUint(buf, op.Key, 10)
			buf = append(buf, `,"val":`...)
			buf = strconv.AppendUint(buf, op.Val, 10)
		} else {
			buf = append(buf, `,"o":"g","key":`...)
			buf = strconv.AppendUint(buf, op.Key, 10)
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTraceFile writes the canonical encoding to path.
func WriteTraceFile(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type traceLine struct {
	T   int64  `json:"t"`
	C   int32  `json:"c"`
	K   int32  `json:"k"`
	O   string `json:"o"`
	Key uint64 `json:"key"`
	Val uint64 `json:"val"`
}

// ReadTrace parses a trace stream.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("loadmodel: empty trace")
	}
	tr := &Trace{}
	if err := json.Unmarshal(sc.Bytes(), &tr.Header); err != nil {
		return nil, fmt.Errorf("loadmodel: trace header: %w", err)
	}
	if tr.Header.V != 1 {
		return nil, fmt.Errorf("loadmodel: unsupported trace version %d", tr.Header.V)
	}
	if tr.Header.Ops > maxGenOps || tr.Header.Ops < 0 {
		return nil, fmt.Errorf("loadmodel: trace claims %d ops (cap %d)", tr.Header.Ops, maxGenOps)
	}
	tr.Ops = make([]Op, 0, tr.Header.Ops)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ln traceLine
		if err := json.Unmarshal(b, &ln); err != nil {
			return nil, fmt.Errorf("loadmodel: trace line %d: %w", lineNo, err)
		}
		op := Op{At: ln.T, Client: ln.C, Class: ln.K, Key: ln.Key}
		switch ln.O {
		case "p":
			op.IsPut = true
			op.Val = ln.Val
		case "g":
		default:
			return nil, fmt.Errorf("loadmodel: trace line %d: bad op %q", lineNo, ln.O)
		}
		tr.Ops = append(tr.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Ops) != tr.Header.Ops {
		return nil, fmt.Errorf("loadmodel: trace header claims %d ops, file has %d",
			tr.Header.Ops, len(tr.Ops))
	}
	return tr, nil
}

// ReadTraceFile parses a trace file from disk.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
