package kvserve

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"lazyp/internal/lpstore"
	"lazyp/internal/workloads"
)

// absorbConn returns a srvConn whose replies vanish (done closed, no
// socket): the white-box stand-in for a client that went away, used to
// drive owner/flusher paths without a network.
func absorbConn() *srvConn {
	cn := &srvConn{done: make(chan struct{})}
	close(cn.done)
	return cn
}

// TestSeqlockStress — the -race witness for the lock-free get path: 8
// reader goroutines hammer the real server get path (appendGet →
// Store.SeqGet) while the owner put path (handle → seal → flusher)
// mutates the same shard table with updates and inserts. Readers
// assert the seqlock's contract: a returned value is always a complete
// committed value for its key — either the preload value or a value
// the writer stored — never a torn half-insert (key visible, value
// still zero).
func TestSeqlockStress(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	cfg.Shards = 1
	cfg.MaxOps = 1 << 13
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sd := s.shards[0]
	s.wgFlush.Add(1)
	go s.flusher(sd)

	const (
		readers  = 8
		inserts  = 400 // distinct fresh keys the writer inserts
		putBatch = 64  // puts per writer iteration
	)
	preK := func(i int) uint64 { return workloads.KVKey(i%cfg.Streams, i%cfg.Keys) }
	insK := func(i int) uint64 { return workloads.KVKey(cfg.Streams+1, i%inserts) }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(r), 42))
			rb := make([]byte, 0, 4*RespSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var k uint64
				if rng.IntN(2) == 0 {
					k = preK(rng.IntN(cfg.Streams * cfg.Keys))
				} else {
					k = insK(rng.IntN(inserts))
				}
				var hit bool
				rb, hit, _ = s.appendGet(rb[:0], uint32(i), k)
				if !hit {
					continue
				}
				_, _, v := DecodeResp((*[RespSize]byte)(rb))
				if v != k && v != workloads.KVInitVal(1, k) {
					t.Errorf("reader %d: key %#x returned torn/foreign value %#x", r, k, v)
					return
				}
			}
		}(r)
	}

	// The writer drives the owner path directly (no owner goroutine:
	// the test IS the owner). Every value it stores equals its key, so
	// readers can recognize legal values without a shared log.
	cn := absorbConn()
	enq := time.Now()
	i := 0
	for sd.w.Seq()+putBatch+cfg.BatchK < sd.sh.MaxOps {
		for j := 0; j < putBatch; j++ {
			var k uint64
			if i%4 == 3 {
				k = insK(i)
			} else {
				k = preK(i)
			}
			s.handle(sd, request{op: OpPut, seq: uint32(i), key: k, val: k, enq: enq, cn: cn})
			i++
		}
	}
	close(stop)
	wg.Wait()
	close(sd.commitCh)
	s.wgFlush.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.ctSeqRetries.Load(); got > 0 {
		t.Logf("seqlock retries observed: %d", got) // contention signal, not a failure
	}
}

// TestServeZeroAlloc pins the tentpole's allocation contract: the
// steady-state server paths — a get served inline by a connection
// reader, and a put through handle/seal/flusher including its group
// commit — allocate nothing per operation. testing.AllocsPerRun counts
// process-global mallocs, so the concurrently running flusher is
// inside the measurement, not exempt from it.
func TestServeZeroAlloc(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	cfg.Shards = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sd := s.shards[0]
	s.wgFlush.Add(1)
	go s.flusher(sd)

	key := sd.baseline[0][0]
	rb := make([]byte, 0, 4*RespSize)
	gets := testing.AllocsPerRun(1000, func() {
		rb, _, _ = s.appendGet(rb[:0], 7, key)
	})
	if gets != 0 {
		t.Errorf("get path allocates %.1f times per op, want 0", gets)
	}

	cn := absorbConn()
	enq := time.Now()
	var seq uint32
	puts := testing.AllocsPerRun(50, func() {
		// One full batch per run: BatchK updates, the last of which
		// seals and hands the batch to the flusher.
		for j := 0; j < cfg.BatchK; j++ {
			seq++
			s.handle(sd, request{op: OpPut, seq: seq, key: sd.baseline[j][0], val: uint64(seq), enq: enq, cn: cn})
		}
	})
	if puts != 0 {
		t.Errorf("put path allocates %.1f times per batch of %d, want 0", puts, cfg.BatchK)
	}

	// Tracing armed but not firing must not change the contract: the
	// tracer is enabled and tail-sampling configured, but these
	// requests carry no trace ID, so every Record call (and its
	// argument construction) stays behind a tid==0 gate. This is the
	// configuration a production server runs in between sampled
	// requests — the ≤2% overhead budget starts at zero allocations.
	s.tr.Enable(true)
	s.cfg.TraceSample = 1 << 30
	armedGets := testing.AllocsPerRun(1000, func() {
		rb, _, _ = s.appendGet(rb[:0], 7, key)
	})
	if armedGets != 0 {
		t.Errorf("get path with tracer armed allocates %.1f times per op, want 0", armedGets)
	}
	armedPuts := testing.AllocsPerRun(50, func() {
		for j := 0; j < cfg.BatchK; j++ {
			seq++
			s.handle(sd, request{op: OpPut, seq: seq, key: sd.baseline[j][0], val: uint64(seq), enq: enq, cn: cn})
		}
	})
	if armedPuts != 0 {
		t.Errorf("put path with tracer armed allocates %.1f times per batch of %d, want 0", armedPuts, cfg.BatchK)
	}
	s.tr.Enable(false)

	close(sd.commitCh)
	s.wgFlush.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
