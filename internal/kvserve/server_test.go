package kvserve

import (
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazyp/internal/lpstore"
	"lazyp/internal/workloads"
)

func testCfg(t *testing.T, mode lpstore.Mode) Config {
	t.Helper()
	return Config{
		Path:      filepath.Join(t.TempDir(), "kv.img"),
		Mode:      mode,
		Shards:    2,
		Capacity:  1 << 10,
		MaxOps:    1 << 12,
		BatchK:    16,
		Streams:   2,
		Keys:      128,
		Mailbox:   64,
		BatchWait: 200 * time.Microsecond,
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestServePutGet: the basic request path under every discipline —
// preloaded reads, inserts, updates, misses.
func TestServePutGet(t *testing.T) {
	for _, mode := range []lpstore.Mode{lpstore.ModeBase, lpstore.ModeLP, lpstore.ModeEP, lpstore.ModeWAL} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := testCfg(t, mode)
			s := startServer(t, cfg)
			cl := dial(t, s.Addr())

			k0 := workloads.KVKey(0, 0)
			want := workloads.KVInitVal(1, k0) // defaulted seed
			if v, st, err := cl.Get(k0); err != nil || st != StatusOK || v != want {
				t.Fatalf("Get(preloaded) = %#x,%s,%v want %#x,ok", v, StatusName(st), err, want)
			}
			nk := workloads.KVKey(9, 7)
			if st, err := cl.Put(nk, 4242); err != nil || st != StatusOK {
				t.Fatalf("Put = %s,%v", StatusName(st), err)
			}
			if st, err := cl.Put(nk, 4343); err != nil || st != StatusOK {
				t.Fatalf("update Put = %s,%v", StatusName(st), err)
			}
			if v, st, _ := cl.Get(nk); st != StatusOK || v != 4343 {
				t.Fatalf("Get after update = %#x,%s want 4343,ok", v, StatusName(st))
			}
			if _, st, _ := cl.Get(workloads.KVKey(9, 8)); st != StatusNotFound {
				t.Fatalf("Get(miss) = %s, want not_found", StatusName(st))
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestServeBadRequest: reserved keys and unknown ops are rejected with
// the request's own sequence number, without touching any shard.
func TestServeBadRequest(t *testing.T) {
	s := startServer(t, testCfg(t, lpstore.ModeLP))
	defer s.Close()
	cl := dial(t, s.Addr())
	for _, c := range []struct {
		op       byte
		key      uint64
		wantName string
	}{
		{OpPut, 0, "zero key"},
		{OpGet, lpstore.NopKey, "NopKey"},
		{'X', 5, "unknown op"},
	} {
		ch, err := cl.start(c.op, c.key, 1)
		if err != nil {
			t.Fatalf("%s: start: %v", c.wantName, err)
		}
		if r := <-ch; r.Status != StatusBadRequest {
			t.Fatalf("%s answered %s, want bad_request", c.wantName, StatusName(r.Status))
		}
	}
}

// TestServeExpired: a request that out-waits MaxQueueDelay in the
// mailbox is answered StatusExpired without being executed.
func TestServeExpired(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	cfg.MaxQueueDelay = time.Nanosecond // always exceeded by queueing
	s := startServer(t, cfg)
	defer s.Close()
	cl := dial(t, s.Addr())
	if st, err := cl.Put(workloads.KVKey(9, 1), 5); err != nil || st != StatusExpired {
		t.Fatalf("Put = %s,%v want expired", StatusName(st), err)
	}
	if s.Stats().Expired == 0 {
		t.Fatal("expired counter not incremented")
	}
}

// TestServeOverload: a full mailbox answers StatusOverload immediately
// instead of queueing. White-box: the owner is never started, so the
// mailbox stays full deterministically.
func TestServeOverload(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	cfg.Shards = 1
	cfg.Mailbox = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	sd := s.shards[0]
	sd.mb <- request{}
	sd.mb <- request{}

	srvEnd, cliEnd := net.Pipe()
	cn := newSrvConn(srvEnd)
	s.wgConns.Add(2)
	go s.connReader(cn)
	go s.connWriter(cn)

	var req [ReqSize]byte
	EncodeReq(&req, OpPut, 7, workloads.KVKey(0, 0), 1)
	if _, err := cliEnd.Write(req[:]); err != nil {
		t.Fatalf("write: %v", err)
	}
	var resp [RespSize]byte
	if _, err := io.ReadFull(cliEnd, resp[:]); err != nil {
		t.Fatalf("read: %v", err)
	}
	seq, st, _ := DecodeResp(&resp)
	if seq != 7 || st != StatusOverload {
		t.Fatalf("got seq=%d status=%s, want 7/overload", seq, StatusName(st))
	}
	if s.Stats().Overloads != 1 {
		t.Fatalf("overload counter = %d, want 1", s.Stats().Overloads)
	}
	cliEnd.Close()
}

// TestServeFullTable: the occupancy watermark rejects inserts with
// StatusFull before the table can fill; the count of accepted inserts
// is exactly watermark minus preload.
func TestServeFullTable(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	cfg.Shards = 1
	cfg.Capacity = 64 // highWater 56
	cfg.Streams = 1
	cfg.Keys = 8
	cfg.MaxOps = 1 << 10
	s := startServer(t, cfg)
	defer s.Close()
	cl := dial(t, s.Addr())

	okCount, fullSeen := 0, false
	for i := 0; i < 200 && !fullSeen; i++ {
		st, err := cl.Put(workloads.KVKey(3, i), uint64(i+1))
		switch {
		case err != nil:
			t.Fatalf("Put %d: %v", i, err)
		case st == StatusOK:
			okCount++
		case st == StatusFull:
			fullSeen = true
		default:
			t.Fatalf("Put %d answered %s", i, StatusName(st))
		}
	}
	if !fullSeen {
		t.Fatal("no StatusFull before 200 inserts into a 64-slot shard")
	}
	if want := 56 - 8; okCount != want {
		t.Fatalf("accepted %d inserts before full, want %d", okCount, want)
	}
}

// TestServeDrainRestart: a loaded server that drains via Close leaves
// an image that reopens with zero repair; every acked put is present
// and servable after the restart.
func TestServeDrainRestart(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	s := startServer(t, cfg)

	var mu sync.Mutex
	acked := map[uint64]uint64{}
	rep, err := RunLoad(s.Addr(), LoadOpts{
		Conns: 3, Window: 16, Ops: 400, InsertOnly: true,
		Streams: cfg.Streams, Keys: cfg.Keys, Seed: 1,
		OnAck: func(_ int, k, v uint64) { mu.Lock(); acked[k] = v; mu.Unlock() },
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Errors != 0 || rep.AckedPuts != 1200 {
		t.Fatalf("load: %d errors, %d acked, want 0/1200", rep.Errors, rep.AckedPuts)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain Close: %v", err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !s2.Restored() {
		t.Fatal("reopen did not detect the image")
	}
	for _, st := range s2.RecoveryStats() {
		if !st.Verified {
			t.Fatalf("graceful drain required repair: %+v", st)
		}
	}
	contents := s2.Contents()
	preload := cfg.Streams * cfg.Keys
	if len(contents) != preload+len(acked) {
		t.Fatalf("recovered %d keys, want %d preload + %d acked", len(contents), preload, len(acked))
	}
	for k, v := range acked {
		if contents[k] != v {
			t.Fatalf("acked key %#x = %#x, want %#x", k, contents[k], v)
		}
	}
	if err := s2.VerifyRecovered(); err != nil {
		t.Fatalf("VerifyRecovered: %v", err)
	}
	// The restarted server serves the recovered data.
	if err := s2.Start(); err != nil {
		t.Fatalf("restart Start: %v", err)
	}
	cl := dial(t, s2.Addr())
	for k, v := range acked {
		if got, st, _ := cl.Get(k); st != StatusOK || got != v {
			t.Fatalf("restarted Get(%#x) = %#x,%s want %#x,ok", k, got, StatusName(st), v)
		}
		break
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestServeAbortRecover: an in-process unclean stop mid-load. Every
// put acked before the abort must survive the restart's recovery, and
// the recovered image holds no values that were never written.
func TestServeAbortRecover(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	s := startServer(t, cfg)

	var mu sync.Mutex
	sent := map[uint64]uint64{}
	acked := map[uint64]uint64{}
	var ackedN atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunLoad(s.Addr(), LoadOpts{
			Conns: 3, Window: 16, Ops: 100000, InsertOnly: true,
			Streams: cfg.Streams, Keys: cfg.Keys, Seed: 1,
			OnSend: func(_ int, k, v uint64) { mu.Lock(); sent[k] = v; mu.Unlock() },
			OnAck: func(_ int, k, v uint64) {
				mu.Lock()
				acked[k] = v
				mu.Unlock()
				ackedN.Add(1)
			},
		})
	}()
	deadline := time.Now().Add(15 * time.Second)
	for ackedN.Load() < 200 {
		if time.Now().After(deadline) {
			t.Fatal("load never reached 200 acked puts")
		}
		time.Sleep(time.Millisecond)
	}
	s.Abort()
	<-done

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	contents := s2.Contents()
	mu.Lock()
	defer mu.Unlock()
	for k, v := range acked {
		got, ok := contents[k]
		if !ok || got != v {
			t.Fatalf("acked key %#x = %#x,%v want %#x", k, got, ok, v)
		}
	}
	preload := map[uint64]uint64{}
	for tid := 0; tid < cfg.Streams; tid++ {
		for i := 0; i < cfg.Keys; i++ {
			k := workloads.KVKey(tid, i)
			preload[k] = workloads.KVInitVal(1, k)
		}
	}
	for k, v := range contents {
		if pv, ok := preload[k]; ok {
			if v != pv {
				t.Fatalf("preloaded key %#x corrupted: %#x != %#x", k, v, pv)
			}
			continue
		}
		if sv, ok := sent[k]; !ok || v != sv {
			t.Fatalf("key %#x holds %#x never written (sent %#x,%v)", k, v, sv, ok)
		}
	}
	if err := s2.VerifyRecovered(); err != nil {
		t.Fatalf("VerifyRecovered: %v", err)
	}
}

// TestServeEPWALRestart: the eager disciplines ack per put, so a
// drained image reopens with their data intact and servable.
func TestServeEPWALRestart(t *testing.T) {
	for _, mode := range []lpstore.Mode{lpstore.ModeEP, lpstore.ModeWAL} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := testCfg(t, mode)
			s := startServer(t, cfg)
			cl := dial(t, s.Addr())
			for i := 0; i < 10; i++ {
				if st, err := cl.Put(workloads.KVKey(9, i), uint64(1000+i)); err != nil || st != StatusOK {
					t.Fatalf("Put %d = %s,%v", i, StatusName(st), err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			s2, err := New(cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			if !s2.Restored() {
				t.Fatal("reopen did not detect the image")
			}
			contents := s2.Contents()
			for i := 0; i < 10; i++ {
				k := workloads.KVKey(9, i)
				if contents[k] != uint64(1000+i) {
					t.Fatalf("key %#x = %#x after restart, want %#x", k, contents[k], 1000+i)
				}
			}
		})
	}
}

// TestServeGeometryMismatch: a backing file refuses configs it was not
// created with, and non-kvserve files are rejected outright.
func TestServeGeometryMismatch(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	bad := cfg
	bad.BatchK = 32
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("mismatched geometry accepted: %v", err)
	}
}

// TestLoadRefreshOnDialFailure: a smart client whose routed target
// cannot even be dialed must re-resolve the topology (Refresh) before
// the op reissues — otherwise every retry re-dials the dead address
// and the op dies by MaxRetries while a promoted primary is serving.
func TestLoadRefreshOnDialFailure(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	s := startServer(t, cfg)

	// A dead address: bind, note the port, close. Dials are refused.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	// The route pins every key to the dead address until Refresh fires,
	// then falls back to the live server — the shape of a failover the
	// client only learns about by re-fetching the routing table.
	var refreshed atomic.Bool
	rep, err := RunLoad(s.Addr(), LoadOpts{
		Conns: 1, Window: 4, Ops: 40,
		Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
		Reconnect: true, MaxRetries: 50,
		Route: func(uint64) string {
			if refreshed.Load() {
				return ""
			}
			return deadAddr
		},
		Refresh: func() { refreshed.Store(true) },
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if !refreshed.Load() {
		t.Fatal("dial failure did not trigger a topology refresh")
	}
	if rep.Errors != 0 || rep.Ops != 40 {
		t.Fatalf("load: %d errors, %d completed, want 0/40 (retries %d)",
			rep.Errors, rep.Ops, rep.Retries)
	}
}
