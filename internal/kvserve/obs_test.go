package kvserve

import (
	"strings"
	"testing"

	"lazyp/internal/lpstore"
	"lazyp/internal/obs"
)

// promLine returns the first sample line of the scrape that starts
// with prefix (skipping # comments), or "".
func promLine(scrape, prefix string) string {
	for _, ln := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(ln, prefix) {
			return ln
		}
	}
	return ""
}

// TestServeMetricsAndTrace drives load at an LP server with the event
// tracer enabled and checks the wired instruments: batch commits
// counted, put-latency histogram populated, per-shard labelled series
// present in the Prometheus scrape, and the tracer holding commit and
// ack-advance events.
func TestServeMetricsAndTrace(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	s := startServer(t, cfg)
	s.Tracer().Enable(true)

	rep, err := RunLoad(s.Addr(), LoadOpts{
		Conns: 2, Window: 16, Ops: 400, Mix: "a",
		Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.AckedPuts == 0 {
		t.Fatalf("no puts acked: %+v", rep)
	}

	var sb strings.Builder
	if err := s.Metrics().WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	scrape := sb.String()

	for _, want := range []string{
		`kvserve_batch_commits_total `,
		`kvserve_puts_total `,
		`kvserve_put_latency_seconds_bucket{`,
		`kvserve_put_latency_seconds_count{`,
		`kvserve_get_latency_seconds_bucket{`,
		`kvserve_seqlock_retries_total `,
		`kvserve_pipeline_inflight{shard="0"}`,
		`kvserve_batch_fill_sum{shard="0"}`,
		`kvserve_mailbox_high_water{shard="0"}`,
		`kvserve_mailbox_high_water{shard="1"}`,
		`kvserve_journal_capacity{shard="0"}`,
	} {
		if promLine(scrape, want) == "" {
			t.Errorf("scrape is missing a %q series", want)
		}
	}
	if ln := promLine(scrape, "kvserve_batch_commits_total "); strings.HasSuffix(ln, " 0") {
		t.Errorf("kvserve_batch_commits_total is zero: %q", ln)
	}
	if ln := promLine(scrape, `kvserve_put_latency_seconds_count{shard="0"}`); ln == "" || strings.HasSuffix(ln, " 0") {
		t.Errorf("put-latency histogram for shard 0 is empty: %q", ln)
	}
	if ln := promLine(scrape, `kvserve_get_latency_seconds_count `); ln == "" || strings.HasSuffix(ln, " 0") {
		t.Errorf("get-latency histogram is empty: %q", ln)
	}

	seen := map[obs.EventType]int{}
	for _, ev := range s.Tracer().Drain(0) {
		seen[ev.Type]++
	}
	if seen[obs.EvBatchCommit] == 0 || seen[obs.EvAckAdvance] == 0 {
		t.Errorf("tracer missing commit/ack events: %v", seen)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A restart over the drained image recovers every shard and must
	// record one recovery-duration sample per shard.
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer s2.Close()
	sb.Reset()
	if err := s2.Metrics().WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm after restart: %v", err)
	}
	for _, shard := range []string{"0", "1"} {
		ln := promLine(sb.String(), `kvserve_recovery_seconds_count{shard="`+shard+`"}`)
		if ln == "" || !strings.HasSuffix(ln, " 1") {
			t.Errorf("recovery histogram for shard %s not recorded: %q", shard, ln)
		}
	}
	for i, st := range s2.RecoveryStats() {
		if st.RecoverNs <= 0 {
			t.Errorf("shard %d recovery stats carry no wall-clock duration: %+v", i, st)
		}
	}
}
