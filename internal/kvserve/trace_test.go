package kvserve

import (
	"strings"
	"testing"
	"time"

	"lazyp/internal/lpstore"
	"lazyp/internal/obs"
)

// TestTracedPutSpans pins the single-node span pipeline: a client that
// negotiated FeatTrace sends a put behind an OpTraceCtx prefix, and
// the server's tracer must hold the full stage ladder for that trace
// ID — enq, deq, seal, flush, reply — while the per-stage histograms
// accumulate observations for the scrape.
func TestTracedPutSpans(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	cfg.TraceSlow = time.Nanosecond // every acked put is "slow": EvSlowPut must fire too
	s := startServer(t, cfg)
	defer s.Close()
	s.Tracer().Enable(true)

	cl := dial(t, s.Addr())
	granted, err := cl.Hello(FeatTrace)
	if err != nil {
		t.Fatalf("Hello: %v", err)
	}
	if granted&FeatTrace == 0 {
		t.Fatalf("Hello granted %#x, want FeatTrace", granted)
	}

	const tid = 0xBEEF0001
	key := uint64(0x1234)
	if st, err := cl.PutTraced(tid, key, 77); err != nil || st != StatusOK {
		t.Fatalf("PutTraced = %s, %v", StatusName(st), err)
	}
	if v, st, _ := cl.Get(key); st != StatusOK || v != 77 {
		t.Fatalf("Get after traced put = %#x,%s", v, StatusName(st))
	}

	seen := map[obs.EventType]int{}
	var slowPuts int
	for _, ev := range s.Tracer().Drain(0) {
		if obs.IsSpanEvent(ev.Type) && ev.A == tid {
			seen[ev.Type]++
		}
		if ev.Type == obs.EvSlowPut {
			slowPuts++
		}
	}
	for _, want := range []obs.EventType{
		obs.EvStageEnq, obs.EvStageDeq, obs.EvStageSeal,
		obs.EvStageFlush, obs.EvStageReply,
	} {
		if seen[want] == 0 {
			t.Errorf("trace %#x missing a %s event (saw %v)", tid, want, seen)
		}
	}
	if slowPuts == 0 {
		t.Error("TraceSlow=1ns recorded no slow_put events")
	}

	var sb strings.Builder
	if err := s.Metrics().WriteProm(&sb); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	scrape := sb.String()
	for _, stage := range []string{"queue", "fill", "flush"} {
		ln := promLine(scrape, `kvserve_stage_seconds_count{stage="`+stage+`"}`)
		if ln == "" || strings.HasSuffix(ln, " 0") {
			t.Errorf("stage histogram %q empty or missing: %q", stage, ln)
		}
	}
}

// TestTraceSampleMintsServerSide pins the tail-sampling fallback: with
// TraceSample=1 every untraced client put gets a server-minted trace
// ID in the connection reader, so plain clients (no Hello, no
// OpTraceCtx) still produce full server-side spans.
func TestTraceSampleMintsServerSide(t *testing.T) {
	cfg := testCfg(t, lpstore.ModeLP)
	cfg.TraceSample = 1
	s := startServer(t, cfg)
	defer s.Close()
	s.Tracer().Enable(true)

	cl := dial(t, s.Addr())
	if st, err := cl.Put(0x7777, 1); err != nil || st != StatusOK {
		t.Fatalf("Put = %s, %v", StatusName(st), err)
	}

	var tid uint64
	evs := s.Tracer().Drain(0)
	for _, ev := range evs {
		if ev.Type == obs.EvStageEnq && ev.B == 0x7777 {
			tid = ev.A
		}
	}
	if tid == 0 {
		t.Fatalf("sampled put minted no trace ID (events: %d)", len(evs))
	}
	var replied bool
	for _, ev := range evs {
		if ev.Type == obs.EvStageReply && ev.A == tid {
			replied = true
		}
	}
	if !replied {
		t.Errorf("server-minted trace %#x never reached stage_reply", tid)
	}
}
