package kvserve

// The crash test this file holds is the subsystem's reason to exist:
// a real server process killed with SIGKILL mid-load, restarted, and
// held to the acked-prefix durability contract. The test binary
// re-execs itself as the server (TestMain's child branch) so the kill
// destroys a genuine process — heap gone, file as torn as the group
// commit and the write-back queue left it.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lazyp/internal/lpstore"
	"lazyp/internal/workloads"
)

const (
	crashChildEnv = "KVSERVE_CRASH_CHILD"
	crashFsyncEnv = "KVSERVE_CRASH_FSYNC"
)

func TestMain(m *testing.M) {
	if path := os.Getenv(crashChildEnv); path != "" {
		runCrashChild(path, os.Getenv(crashFsyncEnv) == "1")
		return
	}
	os.Exit(m.Run())
}

// crashChildCfg is the one config both processes must agree on. The
// fsync variant prices each group commit with a real fsync, which
// widens the seal→durable window the pipelined commit keeps open: up
// to PipelineDepth sealed-but-unacked batches are in flight when the
// kill lands, and none of them may have been acked.
func crashChildCfg(path string, fsync bool) Config {
	return Config{
		Addr:          "127.0.0.1:0",
		Path:          path,
		Mode:          lpstore.ModeLP,
		Shards:        4,
		Capacity:      1 << 12,
		MaxOps:        1 << 15,
		BatchK:        16,
		Streams:       2,
		Keys:          256,
		Seed:          7,
		Mailbox:       128,
		BatchWait:     300 * time.Microsecond,
		Fsync:         fsync,
		PipelineDepth: 4,
	}
}

func runCrashChild(path string, fsync bool) {
	s, err := New(crashChildCfg(path, fsync))
	if err == nil {
		err = s.Start()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	fmt.Printf("KVSERVE_ADDR=%s\n", s.Addr())
	select {} // serve until killed
}

// TestServeCrashKill is the end-to-end durability demo CI runs: boot a
// server in a child process, drive concurrent insert load, SIGKILL the
// child once ≥500 puts are acked, recover the image in-process, and
// assert the contract — every acked put present with its value, no key
// or value the clients never wrote, and a second recovery pass clean.
func TestServeCrashKill(t *testing.T) { runCrashKill(t, false) }

// TestServeCrashKillPipelinedFsync is the same kill, with fsync priced
// on every commit: the pipelined group commit seals batch N+1 while
// batch N's write+fsync is in flight, and the contract under test is
// that a put acked before the kill had its batch's fsync complete — a
// crash landing between seal and fsync must not have acked.
func TestServeCrashKillPipelinedFsync(t *testing.T) { runCrashKill(t, true) }

func runCrashKill(t *testing.T, fsync bool) {
	path := filepath.Join(t.TempDir(), "kv.img")
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+path)
	if fsync {
		cmd.Env = append(cmd.Env, crashFsyncEnv+"=1")
	}
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn child: %v", err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "KVSERVE_ADDR="); ok {
				addrCh <- a
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("child never reported its address")
	}

	cfg := crashChildCfg(path, fsync)
	var mu sync.Mutex
	sent := map[uint64]uint64{}
	acked := map[uint64]uint64{}
	var ackedN atomic.Uint64
	loadDone := make(chan LoadReport, 1)
	go func() {
		rep, _ := RunLoad(addr, LoadOpts{
			Conns: 3, Window: 32, Ops: 200000, InsertOnly: true,
			Streams: cfg.Streams, Keys: cfg.Keys, Seed: cfg.Seed,
			OnSend: func(_ int, k, v uint64) { mu.Lock(); sent[k] = v; mu.Unlock() },
			OnAck: func(_ int, k, v uint64) {
				mu.Lock()
				acked[k] = v
				mu.Unlock()
				ackedN.Add(1)
			},
		})
		loadDone <- rep
	}()

	deadline := time.Now().Add(20 * time.Second)
	for ackedN.Load() < 500 {
		if time.Now().After(deadline) {
			t.Fatalf("load reached only %d acked puts", ackedN.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// SIGKILL: no drain, no pad, no sync. The file holds whatever the
	// group commits and leaked write-backs got to it.
	cmd.Process.Kill()
	cmd.Wait()
	rep := <-loadDone
	if rep.Errors == 0 {
		t.Error("expected in-flight operations to fail when the server died")
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart recovery: %v", err)
	}
	defer s2.Close()
	if !s2.Restored() {
		t.Fatal("restart did not detect the existing image")
	}
	for _, st := range s2.RecoveryStats() {
		t.Logf("shard %d: acked %d puts / %d batches, verified=%v repaired=%d",
			st.Shard, st.AckedPuts, st.AckedBatches, st.Verified, st.Repaired)
	}

	contents := s2.Contents()
	mu.Lock()
	defer mu.Unlock()
	for k, v := range acked {
		got, ok := contents[k]
		if !ok {
			t.Fatalf("acked key %#x lost by the crash", k)
		}
		if got != v {
			t.Fatalf("acked key %#x = %#x, want %#x", k, got, v)
		}
	}
	preload := map[uint64]uint64{}
	for tid := 0; tid < cfg.Streams; tid++ {
		for i := 0; i < cfg.Keys; i++ {
			k := workloads.KVKey(tid, i)
			preload[k] = workloads.KVInitVal(cfg.Seed, k)
		}
	}
	for k, v := range contents {
		if pv, ok := preload[k]; ok {
			if v != pv {
				t.Fatalf("preloaded key %#x corrupted: %#x != %#x", k, v, pv)
			}
			continue
		}
		if sv, ok := sent[k]; !ok {
			t.Fatalf("ghost key %#x survived recovery", k)
		} else if v != sv {
			t.Fatalf("key %#x holds %#x, which was never written (sent %#x)", k, v, sv)
		}
	}
	if err := s2.VerifyRecovered(); err != nil {
		t.Fatalf("second recovery pass: %v", err)
	}
	t.Logf("sent %d keys, acked %d, recovered %d beyond preload",
		len(sent), len(acked), len(contents)-len(preload))
}
