package kvserve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"syscall"

	"lazyp/internal/memsim"
)

const (
	// pmemMagic identifies a kvserve backing file; the trailing digits
	// version the header layout.
	pmemMagic = "LPKVPM01"
	// headerSize is the byte offset of the memory image in the file;
	// the header occupies one page regardless of how little it uses.
	headerSize = 4096
)

// headerBytes renders the geometry header for a config and image size.
// Reopen compares the whole page byte-for-byte: any geometry drift —
// different mode, shard count, journal size, preload, or a different
// lpstore layout after a code change that resizes allocations — shows
// up as a refused open instead of a silently misread image.
func headerBytes(cfg Config, imageSize int) []byte {
	h := make([]byte, headerSize)
	copy(h, pmemMagic)
	fields := []uint64{
		uint64(cfg.Mode), uint64(cfg.Shards), uint64(cfg.Capacity),
		uint64(cfg.MaxOps), uint64(cfg.BatchK), uint64(cfg.Kind),
		uint64(cfg.Streams), uint64(cfg.Keys), cfg.Seed,
		uint64(imageSize),
	}
	for i, f := range fields {
		binary.LittleEndian.PutUint64(h[len(pmemMagic)+8*i:], f)
	}
	return h
}

// pmemFile is the durability domain: a file holding the geometry header
// followed by a byte-for-byte copy of the memsim image. The heap image
// is the cache; a line is durable exactly when it has been written
// here. Writes land through a MAP_SHARED mapping of the image region
// when the platform grants one (img != nil), falling back to positional
// WriteAt. Either way disjoint lines may be written concurrently
// without coordination — the write-back goroutine and a shard owner
// never share a line.
//
// The mapping preserves the crash model. A SIGKILL'd process loses its
// heap (the simulated cache) but not the page cache: bytes stored into
// the shared mapping are exactly as durable as bytes pwrite()n, so
// "persisted ⊆ stored-to-file" is unchanged. What changes is tearing
// granularity — a kill can now land between the 8-byte stores of one
// line instead of between whole-line pwrites. Real NVM persists with
// 8-byte atomicity, so the mapping is the more faithful simulation;
// LP's batch checksums are the recovery story for torn lines either
// way. What the mapping buys is the hot path: a line persist becomes
// ~8 stores instead of a syscall.
type pmemFile struct {
	f     *os.File
	mem   *memsim.Memory
	fsync bool
	img   []byte // MAP_SHARED view of the image region; nil → WriteAt
}

// openPmemFile opens or creates the backing file for mem. A zero-size
// (new) file is initialized with the header and a zero image —
// matching mem's freshly-allocated durably-zero contents — and
// restored=false is returned. An existing file must match the expected
// header exactly and restored=true is returned; the caller then loads
// the image with readImage and runs recovery.
func openPmemFile(path string, cfg Config, mem *memsim.Memory) (pf *pmemFile, restored bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	pf = &pmemFile{f: f, mem: mem, fsync: cfg.Fsync}
	want := headerBytes(cfg, mem.Size())
	if st.Size() == 0 {
		if _, err = f.WriteAt(want, 0); err != nil {
			return nil, false, err
		}
		if err = f.Truncate(int64(headerSize + mem.Size())); err != nil {
			return nil, false, err
		}
		pf.mapImage()
		return pf, false, nil
	}
	got := make([]byte, headerSize)
	if _, err = io.ReadFull(io.NewSectionReader(f, 0, headerSize), got); err != nil {
		return nil, false, fmt.Errorf("kvserve: %s: short header: %w", path, err)
	}
	if string(got[:len(pmemMagic)]) != pmemMagic {
		return nil, false, fmt.Errorf("kvserve: %s is not a kvserve backing file", path)
	}
	if !bytes.Equal(got, want) {
		return nil, false, fmt.Errorf("kvserve: %s geometry does not match the configuration", path)
	}
	if st.Size() != int64(headerSize+mem.Size()) {
		return nil, false, fmt.Errorf("kvserve: %s is %d bytes, want %d", path, st.Size(), headerSize+mem.Size())
	}
	pf.mapImage()
	return pf, true, nil
}

// mapImage tries to establish the shared mapping of the image region.
// headerSize is one page, so the offset is always aligned. Failure is
// not an error — the WriteAt path remains correct, just slower.
func (p *pmemFile) mapImage() {
	img, err := syscall.Mmap(int(p.f.Fd()), headerSize, p.mem.Size(),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err == nil {
		p.img = img
	}
}

// writeLine durably writes the 64-byte line containing a, composed
// from the heap image. Only the goroutine owning the line may call
// this (shard owners for their shard's lines; the startup path before
// owners exist).
func (p *pmemFile) writeLine(a memsim.Addr) error {
	la := memsim.LineOf(a)
	if p.img != nil {
		for i := 0; i < memsim.LineSize; i += 8 {
			binary.LittleEndian.PutUint64(p.img[int(la)+i:], p.mem.Load64(la+memsim.Addr(i)))
		}
		return nil
	}
	var buf [memsim.LineSize]byte
	for i := 0; i < memsim.LineSize; i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], p.mem.Load64(la+memsim.Addr(i)))
	}
	_, err := p.f.WriteAt(buf[:], headerSize+int64(la))
	return err
}

// writeLineBytes durably writes a snapshot of a line taken earlier by
// its owner — the write-back goroutine's path, which must not read the
// heap image itself (the owner may be mutating it).
func (p *pmemFile) writeLineBytes(la memsim.Addr, buf *[memsim.LineSize]byte) error {
	if p.img != nil {
		copy(p.img[la:int(la)+memsim.LineSize], buf[:])
		return nil
	}
	_, err := p.f.WriteAt(buf[:], headerSize+int64(la))
	return err
}

// snapshotLine copies the line containing a out of the heap image.
func (p *pmemFile) snapshotLine(a memsim.Addr) (la memsim.Addr, buf [memsim.LineSize]byte) {
	la = memsim.LineOf(a)
	for i := 0; i < memsim.LineSize; i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], p.mem.Load64(la+memsim.Addr(i)))
	}
	return la, buf
}

// writeImage durably writes the whole heap image — the fresh-boot path
// after preload, the file-side analogue of Memory.Persist.
func (p *pmemFile) writeImage() error {
	size := p.mem.Size()
	if p.img != nil {
		for i := 0; i < size; i += 8 {
			binary.LittleEndian.PutUint64(p.img[i:], p.mem.Load64(memsim.Addr(i)))
		}
		return p.f.Sync()
	}
	const chunk = 1 << 16
	buf := make([]byte, chunk)
	for off := 0; off < size; off += chunk {
		n := chunk
		if size-off < n {
			n = size - off
		}
		for i := 0; i < n; i += 8 {
			binary.LittleEndian.PutUint64(buf[i:], p.mem.Load64(memsim.Addr(off+i)))
		}
		if _, err := p.f.WriteAt(buf[:n], headerSize+int64(off)); err != nil {
			return err
		}
	}
	return p.f.Sync()
}

// readImage loads the file image into the heap — the restart path. The
// durable image is synchronized too, so in-process inspection helpers
// built on memsim see RAM == NVMM, the post-crash condition.
func (p *pmemFile) readImage() error {
	size := p.mem.Size()
	if p.img != nil {
		for i := 0; i < size; i += 8 {
			p.mem.Store64(memsim.Addr(i), binary.LittleEndian.Uint64(p.img[i:]))
		}
		p.mem.Persist(0, size)
		return nil
	}
	const chunk = 1 << 16
	buf := make([]byte, chunk)
	for off := 0; off < size; off += chunk {
		n := chunk
		if size-off < n {
			n = size - off
		}
		if _, err := io.ReadFull(io.NewSectionReader(p.f, headerSize+int64(off), int64(n)), buf[:n]); err != nil {
			return fmt.Errorf("kvserve: short image read at %d: %w", off, err)
		}
		for i := 0; i < n; i += 8 {
			p.mem.Store64(memsim.Addr(off+i), binary.LittleEndian.Uint64(buf[i:]))
		}
	}
	p.mem.Persist(0, size)
	return nil
}

// sync makes every line written so far storage-durable. fsync flushes
// all dirty pages of the inode, including pages dirtied through the
// shared mapping, so one path serves both write modes.
func (p *pmemFile) sync() error { return p.f.Sync() }

func (p *pmemFile) close() error {
	if p.img != nil {
		syscall.Munmap(p.img)
		p.img = nil
	}
	return p.f.Close()
}
