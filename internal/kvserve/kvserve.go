// Package kvserve is a networked, sharded key-value service fronting
// the lpstore shards — the layer that turns the repository's
// closed-loop, in-process persistency study into a request-serving
// system under open-loop concurrent load.
//
// The deployment mapping inverts the simulator's: here the process
// heap plays the cache hierarchy and a backing file plays NVMM. A
// plain store mutates only the heap image; durability is a 64-byte
// line written to the file (pmemfile.go). Kill -9 loses the heap and
// keeps the file — exactly the simulator's Memory.Crash, but produced
// by a real process death with a genuinely torn file image: committed
// journal prefixes, a half-written open batch, and table lines leaked
// out of order by the background write-back goroutine.
//
// Request flow:
//
//   - every shard is owned by one goroutine with a bounded mailbox;
//     connections route requests by key hash and never touch shard
//     state themselves (the same single-writer discipline lpstore's
//     shards assume, so no locks anywhere on the data path);
//   - under LP, the owner group-commits: puts journal and mutate the
//     table with plain heap stores, and when the batch reaches BatchK
//     puts (or BatchWait expires, padding with lpstore.NopKey), the
//     batch's journal lines and its lp.Table checksum line are written
//     to the file in one burst — one file write set per K puts.
//     Clients are acked only after that write set completes, so the
//     service's durability contract is exactly lpstore's acked-prefix
//     guarantee: a put is durable iff recovery acknowledges its batch;
//   - under EP every put flushes and fences its own lines (one write
//     set per put), and under WAL every put runs a durable undo-logged
//     transaction (several write sets per put) — the same Figure-10
//     baselines, now priced in syscalls instead of simulated cycles;
//   - table lines dirtied by LP puts drift to the file through a
//     bounded background write-back queue — the "natural eviction"
//     that leaks unacknowledged inserts and makes restart recovery's
//     ghost-wipe path real;
//   - admission control: a full mailbox rejects instead of queueing
//     (StatusOverload), queued requests past MaxQueueDelay expire
//     unprocessed (StatusExpired), and near-full tables or an
//     exhausted journal reject puts (StatusFull);
//   - graceful drain: Close stops the listener, lets owners drain
//     their mailboxes, pads and commits open batches, and syncs the
//     file, so a SIGTERM'd server restarts with zero repair;
//   - crash-recovering restart: opening an existing backing file
//     replays every shard's journal through lpstore.RecoverLP before
//     the listener accepts traffic, wiping ghosts and truncating the
//     unacknowledged journal tail.
package kvserve

import (
	"fmt"
	"time"

	"lazyp/internal/checksum"
	"lazyp/internal/lpstore"
	"lazyp/internal/obs"
)

// Config describes one server instance. The geometry fields (Mode
// through Seed) are burned into the backing file's header: reopening a
// file with a different geometry is refused rather than silently
// misinterpreted.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7411"; port 0
	// picks a free port — read it back from Server.Addr).
	Addr string
	// Path is the backing ("NVMM") file.
	Path string

	// Mode is the persistence discipline: ModeLP (group commit),
	// ModeEP, ModeWAL, or ModeBase (no durability; throughput ceiling).
	Mode lpstore.Mode
	// Shards is the number of shard owner goroutines (power of two).
	Shards int
	// Capacity is the slot capacity per shard (rounded up to a power
	// of two by lpstore).
	Capacity int
	// MaxOps is the per-shard journal capacity in puts, the lifetime
	// put budget of an LP shard across restarts. Multiple of BatchK.
	MaxOps int
	// BatchK is the LP group-commit size: puts per checksum region.
	BatchK int
	// Kind is the checksum code for LP batches.
	Kind checksum.Kind
	// Streams and Keys describe the preloaded dataset: Keys keys for
	// each of Streams kvgen client streams (workloads.KVKey(stream, i)),
	// hash-routed to shards. Load generators that issue reads must use
	// the same Streams/Keys/Seed so their key space exists.
	Streams int
	Keys    int
	// Seed derives the preload values (workloads.KVInitVal).
	Seed uint64

	// Mailbox is the per-shard request queue depth; a full mailbox
	// answers StatusOverload immediately (backpressure, not buffering).
	Mailbox int
	// BatchWait bounds how long an open LP batch waits for more puts
	// before it is padded and committed.
	BatchWait time.Duration
	// MaxQueueDelay expires requests that waited longer than this in
	// the mailbox (0 disables the deadline).
	MaxQueueDelay time.Duration
	// Fsync fsyncs the backing file on every commit write set. Off by
	// default: the contract defended by the crash tests is process
	// death (page cache survives), not power loss.
	Fsync bool
	// PipelineDepth is the LP commit pipeline depth: how many sealed
	// batches may be in flight through a shard's flusher while the
	// owner fills the next. 1 degenerates to the synchronous group
	// commit of earlier incarnations (seal blocks until the previous
	// batch's write set — and fsync, if priced — completed). Not a
	// geometry field: the file image is identical at any depth.
	PipelineDepth int
	// LeakDepth is the background write-back queue depth.
	LeakDepth int

	// Registry receives the server's metrics (kvserve_* series, plus
	// the per-shard lpstore_* series). Nil means a private registry,
	// reachable through Server.Metrics — instruments are always live,
	// they just aren't shared.
	Registry *obs.Registry
	// Tracer receives persistency events (batch commits, rejects,
	// recovery repairs, leaks). Nil means a private, disabled tracer
	// of TraceCap capacity, reachable through Server.Tracer; recording
	// starts only when some caller enables it.
	Tracer *obs.Tracer
	// TraceCap sizes the private tracer when Tracer is nil (default
	// 4096 events ≈ 160 KiB).
	TraceCap int
	// TraceSample, when positive, makes the server mint a trace ID for
	// every TraceSample-th client put that arrives without one (the
	// OpTraceCtx wire extension), so its span events land in the tracer
	// ring even when no client participates. Ignored while the tracer
	// is disabled; 1 traces every put.
	TraceSample int
	// TraceSlow, when positive, records an EvSlowPut event (key +
	// latency) for every acked put whose enqueue-to-ack latency
	// exceeded it — the tail-capture rule: slow requests always leave a
	// record in the ring, sampled or not. Ignored while the tracer is
	// disabled.
	TraceSlow time.Duration

	// Repl, when non-nil, is the cluster replication hook (LP only):
	// the shard owner calls ForwardBatch with each sealed group-commit
	// batch's client puts, and the commit flusher calls Wait after the
	// batch's local write set is durable — so a put is acked to the
	// client only once both the local group commit and the follower's
	// own group commit have completed. See internal/cluster.Replicator.
	Repl Replicator
}

// Replicator is the primary→follower replication hook a clustered
// server calls on its LP put path. Implementations (internal/cluster)
// consistent-hash each key to its pair peer and ship the puts over a
// pipelined connection as OpReplBatch frames — whole group-commit
// batches per frame, one follower ack per frame, so replication's
// network and wakeup costs amortize exactly like LP's persist costs.
//
// ForwardBatch is called by the shard owner goroutine at seal time
// with the sealed batch's client puts (parallel keys/vals/tids
// slices; the open batch's forwarded copies never include OpReplPut
// arrivals). tids[i] is put i's trace ID (0 = untraced) — a traced
// put's ID rides the replication frame so the follower's span events
// join the same timeline. It groups the puts by destination peer,
// ships each group as one frame sharing one ack, and fills toks[i]
// with each put's wait token: all
// puts of a group carry the same token, and a token of 0 means the
// put needs no forward (this node is not the key's primary, the
// key's slot has no live follower — the put is then buffered for
// delta catch-up — or replication is not configured for the key). It
// must not block beyond replication-window backpressure, and it is
// called by the owner — never the flusher — because window
// backpressure may block until a *remote* ack frees a slot, and a
// flusher blocked on remote progress deadlocks two nodes that
// forward to each other (each node's follower acks are produced by
// its flusher).
//
// Wait is called on the commit completion path after the local write
// set (and fsync, if priced) completed, once per nonzero token — a
// group's shared token is waited once per put carrying it, all from
// the shard's single completion goroutine, in seal order. It blocks
// until the forward resolved and reports whether the put may be
// acked to the client: true when the follower acked the group inside
// its own group commit, or when the forward degraded after the
// cluster revoked the follower's lease (the designed RF=1 fallback —
// the put is buffered for rejoin catch-up). False when the forward
// failed while the follower is still considered alive (follower
// full, transient connection loss): the server then answers the
// client with backpressure instead of an ack, because an ack would
// silently drop to RF=1 with no catch-up adjudicated.
//
// Ready reports whether the replicator can uphold that contract at
// all — for internal/cluster, whether a topology epoch has been
// applied. While a configured Replicator is not ready, the server
// rejects client puts (OpPut; forwarded OpReplPut/OpReplBatch copies
// and gets are unaffected) with StatusOverload: a freshly
// (re)started member acking before its first topology push would ack
// at RF=1 with no forward and no delta charge, outside the cluster's
// epoch fence.
type Replicator interface {
	ForwardBatch(keys, vals, tids []uint64, toks []uint64)
	Wait(tok uint64) bool
	Ready() bool
}

// PrimaryAuth is an optional extension of Replicator: when the
// configured Replicator also implements it, the server authorizes
// every client put against the cluster topology and rejects puts for
// keys this member does not own (StatusMoved) instead of relying on
// membership-based forwarding to paper over a stale client. The check
// covers OpPut only — OpReplPut/OpReplBatch copies are authorized by
// the *forwarding* member's view, and refusing them here would stall
// a lagging peer's catch-up into us mid-epoch-change. IsPrimary must
// be safe for concurrent use from every connection reader; a member
// with no applied topology returns false for every key (the Ready
// gate already rejects those puts before authorization runs).
type PrimaryAuth interface {
	IsPrimary(key uint64) bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 14
	}
	if c.BatchK == 0 {
		c.BatchK = 32
	}
	if c.MaxOps == 0 {
		c.MaxOps = 1 << 16
	}
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.Keys == 0 {
		c.Keys = 2048
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mailbox == 0 {
		c.Mailbox = 256
	}
	if c.BatchWait == 0 {
		c.BatchWait = 500 * time.Microsecond
	}
	if c.LeakDepth == 0 {
		c.LeakDepth = 4096
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = 4
	}
	if c.TraceCap == 0 {
		c.TraceCap = 4096
	}
	return c
}

func (c Config) validate() error {
	if c.Path == "" {
		return fmt.Errorf("kvserve: Config.Path is required")
	}
	if c.Shards&(c.Shards-1) != 0 || c.Shards <= 0 {
		return fmt.Errorf("kvserve: Shards must be a positive power of two, got %d", c.Shards)
	}
	if c.BatchK < 1 || c.MaxOps < c.BatchK || c.MaxOps%c.BatchK != 0 {
		return fmt.Errorf("kvserve: MaxOps (%d) must be a positive multiple of BatchK (%d)", c.MaxOps, c.BatchK)
	}
	if c.PipelineDepth < 1 {
		return fmt.Errorf("kvserve: PipelineDepth must be positive, got %d", c.PipelineDepth)
	}
	if c.Repl != nil && c.Mode != lpstore.ModeLP {
		return fmt.Errorf("kvserve: replication requires ModeLP (the follower-ack rule is the LP group commit), got %v", c.Mode)
	}
	switch c.Mode {
	case lpstore.ModeBase, lpstore.ModeLP, lpstore.ModeEP, lpstore.ModeWAL:
	default:
		return fmt.Errorf("kvserve: unknown mode %v", c.Mode)
	}
	// The preload must leave headroom: watermark admission control
	// rejects puts at 7/8 occupancy, so demand at most half the slots.
	perShard := c.Streams * c.Keys / c.Shards
	if 2*perShard > c.Capacity {
		return fmt.Errorf("kvserve: preload %d keys/shard exceeds half of Capacity %d", perShard, c.Capacity)
	}
	return nil
}

// PipelineUnacked returns the worst-case number of puts the server
// can hold journaled-but-unacked across its commit pipelines under
// the effective (defaulted) geometry: per shard, the open batch being
// filled plus every sealed batch the commit ring can hold in flight —
// Shards × (PipelineDepth + 1) × BatchK.
func (c Config) PipelineUnacked() int {
	c = c.withDefaults()
	return c.Shards * (c.PipelineDepth + 1) * c.BatchK
}

// PipelineBatches returns the worst-case number of sealed-but-unacked
// group-commit batches across the commit pipelines — Shards ×
// (PipelineDepth + 1): per shard, the batch being sealed plus every
// batch the commit ring can hold in flight. Each such batch forwards
// at most one replication group (one window slot) per pair peer whose
// Wait cannot run until the batch flushes, so a clustered
// deployment's per-peer forward window is sized in these units and
// must strictly exceed this bound or the shard owners' seal-time
// ForwardBatch backpressure can deadlock them against their own
// completion goroutines; internal/cluster.StartNode validates exactly
// that.
func (c Config) PipelineBatches() int {
	c = c.withDefaults()
	return c.Shards * (c.PipelineDepth + 1)
}

// ShardOf exposes the shard routing function: the capacity planner in
// internal/loadmodel must route a generated op stream across shard
// queues exactly the way the server will, or its per-shard load split
// is fiction. shards must be a power of two.
func ShardOf(key uint64, shards int) int { return shardOf(key, shards) }

// shardOf routes a key to its shard. The multiplier differs from the
// table's probe hash (lpstore mix64) only in that we take the top bits,
// so routing and in-shard placement stay decorrelated.
func shardOf(key uint64, shards int) int {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x>>40) & (shards - 1)
}
