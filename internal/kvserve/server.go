package kvserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lazyp/internal/ep"
	"lazyp/internal/lp"
	"lazyp/internal/lpstore"
	"lazyp/internal/memsim"
	"lazyp/internal/obs"
	"lazyp/internal/workloads"
)

// request is one decoded put frame routed to a shard owner. (Gets never
// become requests: the connection reader serves them lock-free off the
// shard table; see connReader.)
type request struct {
	op       byte
	seq      uint32
	key, val uint64
	enq      time.Time
	cn       *srvConn
	// rb, when non-nil, makes this request one member of an OpReplBatch
	// run: replies aggregate into rb instead of answering the wire, and
	// the run's single response goes out when the last member settles.
	rb *replBatch
	// sealHint marks the last member a run routed to this shard: the
	// run is already an amortized batch (the primary's group commit),
	// so the owner seals at the run boundary instead of holding the
	// follower's copy for the BatchWait deadline — replication adds a
	// network hop, not a second batching delay. Advisory: the owner
	// ignores it while more work is queued (back-to-back runs coalesce
	// into fuller batches), and the deadline stays as the safety net.
	sealHint bool
	// rtok is the replication token from Replicator.ForwardBatch (0 =
	// no forward in flight); the flusher waits on it after the local
	// write set is durable and before acking the client. Puts of one
	// batch forwarded to the same peer share a token.
	rtok uint64
	// tid is the request's trace ID (0 = untraced): client-minted via
	// the OpTraceCtx wire extension, server-minted by TraceSample, or
	// carried over an OpReplBatch trace entry from the forwarding
	// primary. A nonzero tid makes every pipeline stage record a span
	// event; the field travels by value, so tracing never allocates.
	tid uint64
}

// reply answers the request: directly on the wire, or — for an
// OpReplBatch member — into the run's aggregate, which acks once when
// its last member settles. Every reply site must go through here.
func (r *request) reply(status byte, val uint64) {
	if r.rb != nil {
		r.rb.reply(status)
		return
	}
	r.cn.reply(r.seq, status, val)
}

// replBatch aggregates one OpReplBatch run's member outcomes into the
// single response the forwarding primary waits on. Members may settle
// from different shards' flushers concurrently; the worst status wins
// (the codes order by severity: OK < ... < Overload < Expired < Full <
// BadRequest < Shutdown), so the primary retries or degrades the whole
// run on any member failure — safe, because replicated puts are
// idempotent re-applications of values the primary already journaled.
type replBatch struct {
	cn        *srvConn
	seq       uint32
	remaining atomic.Int32
	worst     atomic.Uint32
}

func (b *replBatch) reply(status byte) {
	for {
		cur := b.worst.Load()
		if uint32(status) <= cur || b.worst.CompareAndSwap(cur, uint32(status)) {
			break
		}
	}
	if b.remaining.Add(-1) == 0 {
		b.cn.reply(b.seq, byte(b.worst.Load()), 0)
	}
}

// srvConn is the server side of one client connection. Two goroutines
// serve it: a reader that decodes frames, answers gets/pings/rejects
// inline into a batched response buffer, and routes puts to shard
// mailboxes; and a writer that drains pend (put acks arriving from
// shard flushers). Owners and flushers never write the socket
// themselves — reply appends the encoded frame to pend under wmu and
// pokes the writer; a dead connection (done closed) absorbs replies.
//
// Socket writes are serialized by smu, separate from wmu so a reply
// append never waits out a syscall in flight. The reader's drain point
// steals pend and hands it to the kernel *together with* its own
// inline-response batch as one writev — acks and get responses that
// accumulated while the client's window was in flight leave in a
// single syscall (see flushResponses).
type srvConn struct {
	c     net.Conn
	wmu   sync.Mutex    // guards pend/spare
	smu   sync.Mutex    // serializes socket writes
	pend  []byte        // encoded response frames queued by owners/flushers
	spare []byte        // recycled pend backing, nil while on loan
	wake  chan struct{} // cap 1: pend went non-empty
	done  chan struct{}
	once  sync.Once
	// iovArr backs the drain point's two-element writev gather
	// (acks + inline batch); touched only under smu.
	iovArr [2][]byte
}

func newSrvConn(c net.Conn) *srvConn {
	return &srvConn{
		c:     c,
		pend:  make([]byte, 0, 256*RespSize),
		spare: make([]byte, 0, 256*RespSize),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

func (cn *srvConn) reply(seq uint32, status byte, val uint64) {
	cn.wmu.Lock()
	select {
	case <-cn.done:
		cn.wmu.Unlock()
		return
	default:
	}
	cn.pend = appendResp(cn.pend, seq, status, val)
	cn.wmu.Unlock()
	select {
	case cn.wake <- struct{}{}:
	default:
	}
}

// takePend steals the queued ack frames, leaving a recycled buffer in
// place; returns nil when nothing is queued. Pair with putSpare.
func (cn *srvConn) takePend() []byte {
	cn.wmu.Lock()
	b := cn.pend
	if len(b) == 0 {
		cn.wmu.Unlock()
		return nil
	}
	if cn.spare != nil {
		cn.pend, cn.spare = cn.spare[:0], nil
	} else {
		cn.pend = make([]byte, 0, 256*RespSize)
	}
	cn.wmu.Unlock()
	return b
}

func (cn *srvConn) putSpare(b []byte) {
	cn.wmu.Lock()
	if cn.spare == nil {
		cn.spare = b[:0]
	}
	cn.wmu.Unlock()
}

func (cn *srvConn) stop() {
	cn.once.Do(func() {
		close(cn.done)
		cn.c.Close()
	})
}

// lineSnap is one leaked line: a snapshot its owner took, written to
// the file later by the write-back goroutine.
type lineSnap struct {
	la  memsim.Addr
	buf [memsim.LineSize]byte
}

// commitItem is one sealed LP batch in flight through a shard's commit
// pipeline: the batch's durable write set captured as line snapshots at
// seal time, plus the client puts to ack once the set (and fsync, if
// priced) completes. Items cycle through a fixed ring (freeCh ⇄
// commitCh), so the steady-state commit path never allocates.
//
// The snapshots are taken by the owner, not read later by the flusher:
// the lp.Table ack slots are dense, so batch N's checksum line is also
// batch N+1..N+3's, and by the time the flusher ran, the owner might
// have stored the next batch's checksum into the very line whose write
// would acknowledge this one. Sealing freezes the bytes instead; the
// per-shard flusher writes items in FIFO order, so the file image of a
// shared line only ever moves forward.
type commitItem struct {
	batch   int       // batch index (trace)
	seq     int       // journal put seq after this batch (trace)
	sealed  time.Time // commit latency epoch
	pending []request
	lines   []memsim.Addr
	bufs    [][memsim.LineSize]byte
}

// replJob is one flushed batch's reply work, handed from the flusher
// to the shard's replication completer: the stolen pending slice plus
// everything finishBatch needs to ack (or fail) the clients once the
// follower tokens resolve.
type replJob struct {
	pending []request
	err     error
	sealed  time.Time
	flushed time.Time // local write set durable (repl stage epoch)
	batch   int
	seq     int
}

// replQueue is the flusher→replWaiter handoff: an unbounded FIFO the
// flusher pushes flushed batches' tokened acks into without ever
// blocking. Unboundedness is a deadlock invariant, not a convenience:
// a bounded handoff would park the flusher once the waiter lagged by
// its capacity, and a parked flusher stops replying the *peer's*
// token-free replicated puts — two nodes forwarding to each other
// would wedge permanently, each waiter stuck on acks only the other
// node's parked flusher could produce. Memory stays bounded anyway:
// every queued put holds a replication-window slot until waited, so
// the queue never holds more than Window tokens per peer.
type replQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []replJob
	head   int
	closed bool
}

func newReplQueue() *replQueue {
	q := &replQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a job; never blocks.
func (q *replQueue) push(job replJob) {
	q.mu.Lock()
	q.jobs = append(q.jobs, job)
	q.cond.Signal()
	q.mu.Unlock()
}

// pop blocks for the next job; reports false once the queue is closed
// and drained.
func (q *replQueue) pop() (replJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.jobs) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.jobs) {
		return replJob{}, false
	}
	job := q.jobs[q.head]
	q.jobs[q.head] = replJob{} // drop the pending slice reference
	q.head++
	if q.head == len(q.jobs) {
		q.jobs, q.head = q.jobs[:0], 0
	}
	return job, true
}

// close wakes the waiter to drain and exit.
func (q *replQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// shardState is one shard's server-side state. The owner goroutine is
// the sole mutator once the server starts; the flusher goroutine only
// touches the commitItem handed to it.
type shardState struct {
	id        int
	sh        *lpstore.Shard
	w         *lpstore.Writer
	ctx       *fileCtx
	mb        chan request
	pending   []request // LP: puts awaiting their batch's seal
	deadline  time.Time // LP: when the open batch force-seals
	openAt    time.Time // LP: when the open batch's first put arrived (fill stage epoch)
	occupied  int       // architectural slot occupancy (watermark)
	highWater int
	baseline  [][2]uint64 // preloaded pairs, recovery's replay base

	// commitCh/freeCh form the LP commit pipeline: the owner seals a
	// batch into a free item and hands it to the flusher, then keeps
	// filling the next batch while the file write (and fsync) of the
	// previous one is in flight. Ring depth = Config.PipelineDepth; a
	// drained freeCh blocks the owner — commit backpressure. Nil under
	// EP/WAL/Base, whose durability points are synchronous by nature.
	commitCh chan *commitItem
	freeCh   chan *commitItem

	// replq (clustered LP only) decouples the replication ack rule
	// from the flush path: the flusher hands each batch's client acks
	// to a per-shard completion goroutine that waits out the follower
	// tokens and only then replies. The flusher itself must never
	// block on a remote ack — even transitively through this handoff,
	// which is why it is an unbounded queue (see replQueue): the
	// peer's replicated puts flow through this shard's own pipeline,
	// so two nodes forwarding to each other with flushers that could
	// block anywhere on remote progress would deadlock cluster-wide.
	replq *replQueue

	// repKeys/repVals/repTids/repToks are the owner's seal-time
	// ForwardBatch scratch (clustered LP only): the sealed batch's
	// client puts as parallel slices, cap BatchK, reused every seal.
	repKeys, repVals, repTids, repToks []uint64

	// tabLo/tabHi bound the table's line addresses: only table lines
	// may leak through the write-back queue (a stale journal-line
	// snapshot could clobber a later group commit's file write; table
	// lines have a single writer — the leaker — so FIFO order keeps
	// the file monotone).
	tabLo, tabHi memsim.Addr

	obs shardObs
}

// shardObs is one shard's registry instruments, resolved once in New
// under the shard label and updated lock-free thereafter.
type shardObs struct {
	mbDepth      *obs.Gauge     // kvserve_mailbox_depth
	mbHigh       *obs.Gauge     // kvserve_mailbox_high_water
	jrnUsed      *obs.Gauge     // kvserve_journal_used (LP: puts journaled)
	jrnCap       *obs.Gauge     // kvserve_journal_capacity (LP: MaxOps)
	pipeInflight *obs.Gauge     // kvserve_pipeline_inflight: sealed, unflushed batches
	batchFill    *obs.Histogram // kvserve_batch_fill: client puts acked per committed batch
	commitLat    *obs.Histogram // kvserve_commit_latency_seconds: seal → write set durable
	putLat       *obs.Histogram // kvserve_put_latency_seconds: enqueue → ack, end to end
	recovery     *obs.Histogram // kvserve_recovery_seconds: restart recovery per shard
	rejOver      *obs.Counter   // kvserve_rejects_total{cause="overload"}
	rejExp       *obs.Counter   // kvserve_rejects_total{cause="expired"}
	rejFull      *obs.Counter   // kvserve_rejects_total{cause="full"}
	rejMoved     *obs.Counter   // kvserve_rejects_total{cause="moved"}
}

func newShardObs(sc obs.Scope) shardObs {
	rej := func(cause string) *obs.Counter {
		return sc.With("cause", cause).Counter("kvserve_rejects_total")
	}
	return shardObs{
		mbDepth:      sc.Gauge("kvserve_mailbox_depth"),
		mbHigh:       sc.Gauge("kvserve_mailbox_high_water"),
		jrnUsed:      sc.Gauge("kvserve_journal_used"),
		jrnCap:       sc.Gauge("kvserve_journal_capacity"),
		pipeInflight: sc.Gauge("kvserve_pipeline_inflight"),
		batchFill:    sc.Histogram("kvserve_batch_fill"),
		commitLat:    sc.HistogramScaled("kvserve_commit_latency_seconds", 1e-9),
		putLat:       sc.HistogramScaled("kvserve_put_latency_seconds", 1e-9),
		recovery:     sc.HistogramScaled("kvserve_recovery_seconds", 1e-9),
		rejOver:      rej("overload"),
		rejExp:       rej("expired"),
		rejFull:      rej("full"),
		rejMoved:     rej("moved"),
	}
}

func (sd *shardState) basePair(i int) (uint64, uint64) {
	return sd.baseline[i][0], sd.baseline[i][1]
}

// Stats is a snapshot of the server's operation counters.
type Stats struct {
	Gets        uint64 `json:"gets"`
	GetMisses   uint64 `json:"get_misses"`
	Puts        uint64 `json:"puts"`
	AckedPuts   uint64 `json:"acked_puts"`
	Batches     uint64 `json:"batches"`
	Pads        uint64 `json:"pads"`
	Overloads   uint64 `json:"overloads"`
	Expired     uint64 `json:"expired"`
	Full        uint64 `json:"full"`
	Moved       uint64 `json:"moved"`
	LeakedLines uint64 `json:"leaked_lines"`
	LeakDropped uint64 `json:"leak_dropped"`
}

// Server is one kvserve instance. Build with New (which performs
// preload or crash recovery), then Start to accept traffic, then
// Close to drain gracefully. Inspection methods (Contents, Verify...)
// are only safe before Start or after Close/Abort returns.
type Server struct {
	cfg      Config
	mem      *memsim.Memory
	pf       *pmemFile
	shards   []*shardState
	rec      *ep.Recompute
	wal      *ep.WAL
	restored bool
	rstats   []lpstore.RecoverStats

	ln       net.Listener
	mu       sync.Mutex
	conns    map[*srvConn]struct{}
	wgConns  sync.WaitGroup
	wgOwners sync.WaitGroup
	wgFlush  sync.WaitGroup
	wgRepl   sync.WaitGroup
	wgLeak   sync.WaitGroup
	leakCh   chan lineSnap
	started  bool
	draining atomic.Bool
	closed   atomic.Bool
	aborting atomic.Bool
	fileErr  atomic.Pointer[error]
	closeErr error

	// auth is cfg.Repl's optional PrimaryAuth extension, resolved once
	// in New so the put hot path pays a nil check, not a type assert.
	auth PrimaryAuth

	reg *obs.Registry
	tr  *obs.Tracer
	// Server-wide counters (per-shard instruments live in shardObs).
	ctGets, ctGetMisses, ctPuts, ctAcked *obs.Counter
	ctBatches, ctPads                    *obs.Counter
	ctLeaked, ctDropped                  *obs.Counter
	ctSeqRetries                         *obs.Counter
	getLat                               *obs.Histogram
	// hWriteFrames observes response frames per socket write syscall —
	// the syscall-coalescing gauge of the vectored response path.
	hWriteFrames *obs.Histogram
	// Stage-latency attribution: kvserve_stage_seconds{stage=...}, one
	// histogram per pipeline stage a put crosses. Always on (Observe is
	// an atomic bucket increment); the per-put cost is bounded by the
	// clocks the pipeline already reads.
	stQueue *obs.Histogram // mailbox enqueue → owner dequeue
	stFill  *obs.Histogram // batch open → seal (per batch)
	stFlush *obs.Histogram // seal → write set durable (per batch)
	stRepl  *obs.Histogram // local durable → follower tokens resolved (per job)
	// Tail sampling: tidBase+tidCtr mint server-side trace IDs for
	// every cfg.TraceSample'th otherwise-untraced client put; slowNs is
	// cfg.TraceSlow in nanoseconds (0 = off).
	tidBase uint64
	tidCtr  atomic.Uint64
	slowNs  int64
}

// New builds the server state and binds it to the backing file: a
// fresh file is initialized with the preloaded dataset; an existing
// file is loaded and recovered (LP journal replay, WAL rollback)
// before New returns, so a returned server is always consistent.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, conns: make(map[*srvConn]struct{})}
	s.auth, _ = cfg.Repl.(PrimaryAuth)
	s.reg = cfg.Registry
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.tr = cfg.Tracer
	if s.tr == nil {
		s.tr = obs.NewTracer(cfg.TraceCap)
	}
	root := s.reg.Scope()
	s.ctGets = root.Counter("kvserve_gets_total")
	s.ctGetMisses = root.Counter("kvserve_get_misses_total")
	s.ctPuts = root.Counter("kvserve_puts_total")
	s.ctAcked = root.Counter("kvserve_acked_puts_total")
	s.ctBatches = root.Counter("kvserve_batch_commits_total")
	s.ctPads = root.Counter("kvserve_pads_total")
	s.ctLeaked = root.Counter("kvserve_leaked_lines_total")
	s.ctDropped = root.Counter("kvserve_leak_dropped_total")
	s.ctSeqRetries = root.Counter("kvserve_seqlock_retries_total")
	s.getLat = root.HistogramScaled("kvserve_get_latency_seconds", 1e-9)
	s.hWriteFrames = root.Histogram("kvserve_writev_frames_per_syscall")
	stage := func(name string) *obs.Histogram {
		return root.With("stage", name).HistogramScaled("kvserve_stage_seconds", 1e-9)
	}
	s.stQueue = stage("queue")
	s.stFill = stage("fill")
	s.stFlush = stage("flush")
	s.stRepl = stage("repl")
	// High bits wall-derived so IDs from distinct server incarnations
	// (and from clients, which mint small sequential IDs) don't collide.
	s.tidBase = uint64(time.Now().UnixNano()) << 20
	s.slowNs = cfg.TraceSlow.Nanoseconds()

	// The allocation order below is the layout contract with every
	// prior incarnation of this config: guard line, persistence
	// machinery, then shards in index order. The header check in
	// openPmemFile refuses files whose geometry differs, but a layout
	// change at equal geometry (e.g. reordering these calls) would
	// corrupt silently — don't.
	cap2 := 1
	for cap2 < cfg.Capacity {
		cap2 <<= 1
	}
	perShardWords := 2*cap2 + 2*cfg.MaxOps + cfg.MaxOps/cfg.BatchK + 2
	s.mem = memsim.NewMemory(cfg.Shards*perShardWords*8 + (2 << 20))
	s.mem.Alloc("kvserve.guard", memsim.LineSize)
	switch cfg.Mode {
	case lpstore.ModeEP:
		s.rec = ep.NewRecompute(s.mem, "kvserve.ep", cfg.Shards)
		s.rec.Obs = ep.NewTally(root, "ep")
	case lpstore.ModeWAL:
		s.wal = ep.NewWAL(s.mem, "kvserve.wal", cfg.Shards, 2) // a put stores ≤2 words
		s.wal.Obs = ep.NewTally(root, "wal")
	}
	base := make([][][2]uint64, cfg.Shards)
	for tid := 0; tid < cfg.Streams; tid++ {
		for i := 0; i < cfg.Keys; i++ {
			k := workloads.KVKey(tid, i)
			si := shardOf(k, cfg.Shards)
			base[si] = append(base[si], [2]uint64{k, workloads.KVInitVal(cfg.Seed, k)})
		}
	}
	// A batch's durable write set: the journal lines its 2*BatchK words
	// span (one extra when the window straddles a line boundary), plus
	// the checksum line. Sizes the commitItem snapshot buffers.
	maxBatchLines := (2*cfg.BatchK*8+memsim.LineSize-1)/memsim.LineSize + 2
	for id := 0; id < cfg.Shards; id++ {
		name := fmt.Sprintf("kvserve.s%d", id)
		sd := &shardState{id: id, baseline: base[id]}
		if cfg.Mode == lpstore.ModeLP {
			sd.sh = lpstore.NewShardLP(s.mem, name, id, cfg.Capacity, cfg.MaxOps, cfg.BatchK, cfg.Kind)
			sd.w = sd.sh.NewLPWriter()
			sd.commitCh = make(chan *commitItem, cfg.PipelineDepth)
			sd.freeCh = make(chan *commitItem, cfg.PipelineDepth)
			for i := 0; i < cfg.PipelineDepth; i++ {
				sd.freeCh <- &commitItem{
					pending: make([]request, 0, cfg.BatchK),
					lines:   make([]memsim.Addr, 0, maxBatchLines),
					bufs:    make([][memsim.LineSize]byte, maxBatchLines),
				}
			}
			if cfg.Repl != nil {
				sd.replq = newReplQueue()
				sd.repKeys = make([]uint64, 0, cfg.BatchK)
				sd.repVals = make([]uint64, 0, cfg.BatchK)
				sd.repTids = make([]uint64, 0, cfg.BatchK)
				sd.repToks = make([]uint64, cfg.BatchK)
			}
		} else {
			sd.sh = lpstore.NewShard(s.mem, name, id, cfg.Capacity)
			switch cfg.Mode {
			case lpstore.ModeBase:
				sd.w = sd.sh.NewWriter(lpstore.ModeBase, lp.Base{}.Thread(id))
			case lpstore.ModeEP:
				sd.w = sd.sh.NewWriter(lpstore.ModeEP, s.rec.Thread(id))
			case lpstore.ModeWAL:
				sd.w = sd.sh.NewWriter(lpstore.ModeWAL, s.wal.Thread(id))
			}
		}
		// Every mode mutates the table through fileCtx's atomic stores,
		// so every mode can serve gets lock-free under the seqlock.
		sd.sh.Tab.EnableSeqlock()
		sd.highWater = sd.sh.Tab.Cap() - sd.sh.Tab.Cap()/8
		sd.tabLo = memsim.LineOf(sd.sh.Tab.KeyAddr(0))
		sd.tabHi = memsim.LineOf(sd.sh.Tab.ValAddr(sd.sh.Tab.Cap() - 1))
		sd.mb = make(chan request, cfg.Mailbox)
		sc := s.reg.Scope("shard", strconv.Itoa(id))
		sd.obs = newShardObs(sc)
		sd.sh.Obs = lpstore.NewMetrics(sc, s.tr)
		if cfg.Mode == lpstore.ModeLP {
			sd.obs.jrnCap.Set(int64(cfg.MaxOps))
		}
		s.shards = append(s.shards, sd)
	}

	pf, restored, err := openPmemFile(cfg.Path, cfg, s.mem)
	if err != nil {
		return nil, err
	}
	s.pf = pf
	s.restored = restored
	s.leakCh = make(chan lineSnap, cfg.LeakDepth)
	for _, sd := range s.shards {
		sd.ctx = newFileCtx(s.mem, pf, sd.id)
	}

	if restored {
		if err := pf.readImage(); err != nil {
			pf.close()
			return nil, err
		}
		if err := s.recoverAll(); err != nil {
			pf.close()
			return nil, err
		}
	} else {
		for _, sd := range s.shards {
			sd.sh.Preload(s.mem, len(sd.baseline), sd.basePair)
		}
		if err := pf.writeImage(); err != nil {
			pf.close()
			return nil, err
		}
	}
	for _, sd := range s.shards {
		sd.occupied = sd.sh.Tab.Occupied(s.mem)
	}
	return s, nil
}

// recoverAll runs each mode's restart recovery over the loaded image.
func (s *Server) recoverAll() error {
	switch s.cfg.Mode {
	case lpstore.ModeLP:
		for _, sd := range s.shards {
			t0 := time.Now()
			st := sd.sh.RecoverLP(sd.ctx, len(sd.baseline), sd.basePair)
			if err := sd.ctx.takeErr(); err != nil {
				return fmt.Errorf("kvserve: shard %d repair: %w", sd.id, err)
			}
			if st.AckedPuts%s.cfg.BatchK != 0 {
				// Group commit only ever seals full (padded) batches, so a
				// partial acked tail means the file was written by something
				// else (e.g. the closed-loop harness's Seal).
				return fmt.Errorf("kvserve: shard %d acked prefix %d is not a batch boundary", sd.id, st.AckedPuts)
			}
			if err := s.truncateTail(sd, st); err != nil {
				return fmt.Errorf("kvserve: shard %d tail truncation: %w", sd.id, err)
			}
			sd.w.ResumeAt(st.AckedPuts)
			st.RecoverNs = time.Since(t0).Nanoseconds()
			sd.obs.recovery.Observe(uint64(st.RecoverNs))
			sd.obs.jrnUsed.Set(int64(sd.w.Seq()))
			s.rstats = append(s.rstats, st)
		}
	case lpstore.ModeWAL:
		for _, sd := range s.shards {
			// Roll back the at-most-one in-flight transaction; the eager
			// stores inside WALRecover persist through the fileCtx.
			s.wal.WALRecover(sd.ctx, sd.id)
			if err := sd.ctx.takeErr(); err != nil {
				return fmt.Errorf("kvserve: shard %d WAL rollback: %w", sd.id, err)
			}
			sd.ctx.takeDirty()
		}
	case lpstore.ModeEP, lpstore.ModeBase:
		// EP persists each put before acking and a slot's key+value
		// share a line, so the image is consistent as loaded. Base makes
		// no durability claim.
	}
	return nil
}

// truncateTail durably zeroes the journal beyond the acknowledged
// prefix and invalidates ack slots beyond the acknowledged batches.
// The unacked tail is garbage from the previous incarnation (leaked
// lines of an uncommitted batch); the resumed writer will overwrite
// the heap words, but until its next commit the *file* would still
// hold them, and a stale checksum over a half-overwritten window must
// never acknowledge.
func (s *Server) truncateTail(sd *shardState, st lpstore.RecoverStats) error {
	c := sd.ctx
	sh := sd.sh
	c.takeDirty() // discard repair-path residue; it was persisted by RecoverLP
	for i := 2 * st.AckedPuts; i < 2*sh.MaxOps; i++ {
		if c.Load64(sh.Jrn.Addr(i)) != 0 {
			c.Store64(sh.Jrn.Addr(i), 0)
		}
	}
	for b := st.AckedBatches; b < sh.Ack.Slots(); b++ {
		if sh.Ack.Written(c, b) {
			sh.Ack.Invalidate(c, b) // store+flush+fence → durable via fileCtx
		}
	}
	if err := c.persistLines(c.takeDirty()); err != nil {
		return err
	}
	return c.takeErr()
}

// Start binds the listener and launches the shard owners, the commit
// flushers (LP), the write-back goroutine, and the accept loop.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = true
	s.wgLeak.Add(1)
	go s.writeBack()
	for _, sd := range s.shards {
		if sd.commitCh != nil {
			s.wgFlush.Add(1)
			go s.flusher(sd)
		}
		if sd.replq != nil {
			s.wgRepl.Add(1)
			go s.replWaiter(sd)
		}
		s.wgOwners.Add(1)
		go s.owner(sd)
	}
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Restored reports whether New opened an existing backing file.
func (s *Server) Restored() bool { return s.restored }

// RecoveryStats returns the per-shard LP recovery statistics from a
// restored boot (nil on a fresh boot or under other modes).
func (s *Server) RecoveryStats() []lpstore.RecoverStats { return s.rstats }

// Stats snapshots the operation counters. The counters live in the
// server's registry; rejects are kept per shard there, so the snapshot
// sums them back into the flat legacy shape.
func (s *Server) Stats() Stats {
	st := Stats{
		Gets: s.ctGets.Load(), GetMisses: s.ctGetMisses.Load(),
		Puts: s.ctPuts.Load(), AckedPuts: s.ctAcked.Load(),
		Batches: s.ctBatches.Load(), Pads: s.ctPads.Load(),
		LeakedLines: s.ctLeaked.Load(), LeakDropped: s.ctDropped.Load(),
	}
	for _, sd := range s.shards {
		st.Overloads += sd.obs.rejOver.Load()
		st.Expired += sd.obs.rejExp.Load()
		st.Full += sd.obs.rejFull.Load()
		st.Moved += sd.obs.rejMoved.Load()
	}
	return st
}

// Metrics returns the server's registry (the one from Config.Registry,
// or the private one New created). Scrape it with obs.MetricsHandler.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Tracer returns the server's event tracer. It is disabled until some
// caller enables it; lpserve does so when -trace is set.
func (s *Server) Tracer() *obs.Tracer { return s.tr }

// trace emits one service event with a wall-clock timestamp. The
// Enabled gate keeps the time.Now off the hot path in the steady
// (disabled) state.
func (s *Server) trace(typ obs.EventType, src int32, a, b uint64) {
	if s.tr.Enabled() {
		s.tr.Record(typ, src, time.Now().UnixNano(), a, b)
	}
}

// Contents merges every shard's architectural contents. Only safe
// while the server is quiesced (before Start or after Close/Abort).
func (s *Server) Contents() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for _, sd := range s.shards {
		for k, v := range sd.sh.Tab.Contents(s.mem) {
			out[k] = v
		}
	}
	return out
}

// VerifyRecovered runs a second LP recovery pass over every shard and
// reports an error unless each verifies cleanly — the idempotence
// check a restarted operator runs before trusting the image. A no-op
// under the other modes. Only safe while quiesced.
func (s *Server) VerifyRecovered() error {
	if s.cfg.Mode != lpstore.ModeLP {
		return nil
	}
	for _, sd := range s.shards {
		st := sd.sh.RecoverLP(sd.ctx, len(sd.baseline), sd.basePair)
		if err := sd.ctx.takeErr(); err != nil {
			return err
		}
		if !st.Verified {
			return fmt.Errorf("kvserve: shard %d failed re-verification: %+v", sd.id, st)
		}
	}
	return nil
}

// Close drains gracefully: stop accepting, tear down connections,
// let owners empty their mailboxes and seal (padding) open batches,
// drain the commit pipelines and the write-back queue, and sync the
// file. Idempotent.
func (s *Server) Close() error { return s.shutdown(false) }

// Abort tears the server down without sealing open LP batches or
// syncing — the closest an in-process caller gets to an unclean death
// (the real one is SIGKILL; see the crash test). Batches already
// sealed into the pipeline still flush: their write sets were frozen
// at seal, exactly like batch commits that had left the CPU.
func (s *Server) Abort() error { return s.shutdown(true) }

func (s *Server) shutdown(abort bool) error {
	if !s.closed.CompareAndSwap(false, true) {
		return s.closeErr
	}
	if abort {
		s.aborting.Store(true)
	}
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for cn := range s.conns {
		cn.stop()
	}
	s.mu.Unlock()
	s.wgConns.Wait()
	if s.started {
		for _, sd := range s.shards {
			close(sd.mb)
		}
		// Owners seal their final batch and close their commitCh on
		// the way out; flushers exit once the pipeline drains.
		s.wgOwners.Wait()
		s.wgFlush.Wait()
		for _, sd := range s.shards {
			if sd.replq != nil {
				sd.replq.close()
			}
		}
		s.wgRepl.Wait()
		close(s.leakCh)
		s.wgLeak.Wait()
	}
	var err error
	if ep := s.fileErr.Load(); ep != nil {
		err = *ep
	}
	for _, sd := range s.shards {
		if e := sd.ctx.takeErr(); e != nil && err == nil {
			err = e
		}
	}
	if !abort && err == nil {
		err = s.pf.sync()
	}
	if cerr := s.pf.close(); err == nil && cerr != nil {
		err = cerr
	}
	s.closeErr = err
	return err
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		cn := newSrvConn(c)
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[cn] = struct{}{}
		s.wgConns.Add(2)
		s.mu.Unlock()
		go s.connReader(cn)
		go s.connWriter(cn)
	}
}

// appendGet serves one get entirely inside the calling (connection
// reader) goroutine: route by key hash, read the shard table lock-free
// under the seqlock, and append the response frame to rb. No mailbox,
// no owner, no allocation — the tentpole of the serve hot path.
func (s *Server) appendGet(rb []byte, seq uint32, key uint64) (out []byte, hit bool, retries uint64) {
	t0 := time.Now()
	sd := s.shards[shardOf(key, len(s.shards))]
	v, ok, retr := sd.sh.Tab.SeqGet(s.mem, key)
	if ok {
		rb = appendResp(rb, seq, StatusOK, v)
	} else {
		rb = appendResp(rb, seq, StatusNotFound, 0)
	}
	s.getLat.Observe(uint64(time.Since(t0).Nanoseconds()))
	return rb, ok, retr
}

// connReader decodes request frames. Gets, pings, and rejects are
// answered inline into rb, a conn-local response batch that is handed
// to the socket when the inbound buffer drains (the client is waiting
// for answers) or rb fills — so a pipelining client gets its whole
// window answered in one write. Puts are routed to shard mailboxes and
// acked later through the writer goroutine. Get tallies accumulate in
// locals and flush to the shared counters periodically, keeping the
// per-op path free of contended atomics.
func (s *Server) connReader(cn *srvConn) {
	var gets, misses, retries uint64
	flushTallies := func() {
		if gets != 0 {
			s.ctGets.Add(gets)
			gets = 0
		}
		if misses != 0 {
			s.ctGetMisses.Add(misses)
			misses = 0
		}
		if retries != 0 {
			s.ctSeqRetries.Add(retries)
			retries = 0
		}
	}
	defer func() {
		flushTallies()
		cn.stop()
		s.mu.Lock()
		delete(s.conns, cn)
		s.mu.Unlock()
		s.wgConns.Done()
	}()
	br := bufio.NewReaderSize(cn.c, 1<<16)
	var buf [ReqSize]byte
	var pbuf []byte  // OpReplBatch payload scratch
	var scnt []int32 // per-shard member tally scratch
	rb := make([]byte, 0, 512*RespSize)
	// nextTid is the trace context armed by an OpTraceCtx prefix frame:
	// it applies to exactly the next frame on the connection, then
	// clears, so a lost successor can't mislabel an unrelated op.
	var nextTid uint64
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return
		}
		op, seq, key, val := DecodeReq(&buf)
		tid := nextTid
		nextTid = 0
		switch {
		case op == OpReplBatch:
			// The header's key field is the put count; the pairs follow
			// on the wire, so this must consume them even when the frame
			// is rejected — a false return means framing is lost and the
			// connection dies. The val field is the trace-entry count of
			// the frame's trace extension (0 from pre-trace primaries).
			if !s.handleReplBatch(cn, br, seq, key, val, &pbuf, &scnt) {
				return
			}
		case op == OpTraceCtx:
			// Silent prefix: arm the trace ID for the next frame. No
			// response, so pre-handshake senders would desync their
			// sequence space — which is why clients only send it after
			// OpHello grants FeatTrace.
			nextTid = key
		case op == OpHello:
			// Capability handshake: grant the intersection of what the
			// client asked for and what we speak.
			rb = appendResp(rb, seq, StatusOK, key&FeatTrace)
		case op == OpPing:
			rb = appendResp(rb, seq, StatusOK, 0)
		case (op != OpGet && op != OpPut && op != OpReplPut) || key == 0 || key == lpstore.NopKey:
			rb = appendResp(rb, seq, StatusBadRequest, 0)
		case s.draining.Load():
			rb = appendResp(rb, seq, StatusShutdown, 0)
		case op == OpGet:
			if tid != 0 {
				s.trace(obs.EvStageEnq, -1, tid, key)
			}
			var hit bool
			var retr uint64
			rb, hit, retr = s.appendGet(rb, seq, key)
			if tid != 0 {
				s.trace(obs.EvStageReply, -1, tid, key)
			}
			gets++
			retries += retr
			if !hit {
				misses++
			}
			if gets >= 512 {
				flushTallies()
			}
		default: // put
			sd := s.shards[shardOf(key, len(s.shards))]
			if op == OpPut && s.auth != nil && s.cfg.Repl.Ready() && !s.auth.IsPrimary(key) {
				// Primary authorization: this member's applied epoch
				// says the key belongs to someone else, so the client's
				// routing table is stale. Reject with StatusMoved — the
				// client refreshes and re-routes — instead of accepting
				// a put the pair choreography would have to repair.
				// Checked only once a topology is applied; before that
				// the Ready gate below owns the rejection.
				sd.obs.rejMoved.Inc()
				s.trace(obs.EvRejectMoved, int32(sd.id), key, 0)
				rb = appendResp(rb, seq, StatusMoved, 0)
				break
			}
			if op == OpPut && s.cfg.Repl != nil && !s.cfg.Repl.Ready() {
				// A clustered member with no applied topology must not
				// ack client puts: Forward would return 0 (no view), so
				// the put would be acked at RF=1 with no forward and no
				// delta charge, outside the router's epoch fence. The
				// gate is per-op, not per-boot, so it also covers a
				// node whose data plane came up before the first push.
				// OpReplPut stays open — the forwarding peer's view is
				// what charged the pair, and refusing the copy would
				// stall that peer's catch-up into us.
				sd.obs.rejOver.Inc()
				s.trace(obs.EvRejectOverload, int32(sd.id), key, 0)
				rb = appendResp(rb, seq, StatusOverload, 0)
				break
			}
			if tid == 0 && s.cfg.TraceSample > 0 && s.tr.Enabled() {
				// Server-side tail sampling: mint a trace ID for every
				// TraceSample'th client put that arrived untraced, so
				// stage spans exist even with trace-unaware clients.
				if n := s.tidCtr.Add(1); n%uint64(s.cfg.TraceSample) == 0 {
					tid = s.tidBase + n
				}
			}
			r := request{op: op, seq: seq, key: key, val: val, enq: time.Now(), cn: cn, tid: tid}
			select {
			case sd.mb <- r:
				if tid != 0 {
					s.trace(obs.EvStageEnq, int32(sd.id), tid, key)
				}
				d := int64(len(sd.mb))
				sd.obs.mbDepth.Set(d)
				sd.obs.mbHigh.SetMax(d)
			default:
				sd.obs.rejOver.Inc()
				s.trace(obs.EvRejectOverload, int32(sd.id), key, 0)
				rb = appendResp(rb, seq, StatusOverload, 0)
			}
		}
		if len(rb) > 0 {
			// Hand the batch to the socket when the client has nothing
			// more buffered (it is blocked on us) or rb grew past its
			// flush threshold. The in-between state — responses pending,
			// requests still arriving — keeps batching without paying a
			// syscall until the drain point, where the flush also steals
			// any acks the flushers queued meanwhile: both batches leave
			// in one writev.
			drained := br.Buffered() < ReqSize
			if drained || len(rb) >= 512*RespSize {
				if !s.flushResponses(cn, rb) {
					return
				}
				rb = rb[:0]
			}
		}
	}
}

// flushResponses writes the reader's inline-response batch, gathering
// it with any queued flusher acks into one vectored write. net.Buffers
// is writev on a *net.TCPConn; elsewhere it degrades to sequential
// writes — the plain-write fallback.
func (s *Server) flushResponses(cn *srvConn, rb []byte) bool {
	acks := cn.takePend()
	cn.smu.Lock()
	var err error
	if acks != nil {
		iov := net.Buffers(append(cn.iovArr[:0], acks, rb))
		s.hWriteFrames.Observe(uint64((len(acks) + len(rb)) / RespSize))
		_, err = iov.WriteTo(cn.c)
	} else {
		s.hWriteFrames.Observe(uint64(len(rb) / RespSize))
		_, err = cn.c.Write(rb)
	}
	cn.smu.Unlock()
	if acks != nil {
		cn.putSpare(acks)
	}
	return err == nil
}

// handleReplBatch ingests one OpReplBatch frame: count 16-byte
// (key, val) pairs follow the header on the wire, then tcount 12-byte
// [idx:4][tid:8] trace entries (the header's val field; 0 from
// pre-trace primaries) tagging pair idx with a trace ID, ascending by
// idx. Members route to their shards exactly like OpReplPut, sharing
// one aggregate that answers the run's single response when its last
// member settles (worst status wins; members may settle from
// different shards' flushers). Returns false only on a malformed
// header — framing is lost, so the caller drops the connection.
func (s *Server) handleReplBatch(cn *srvConn, br *bufio.Reader, seq uint32, count, tcount uint64, pay *[]byte, scnt *[]int32) bool {
	if count == 0 || count > MaxReplBatch || tcount > count {
		return false
	}
	pairBytes := int(count) * ReplPairSize
	need := pairBytes + int(tcount)*ReplTraceSize
	if cap(*pay) < need {
		*pay = make([]byte, need)
	}
	buf := (*pay)[:need]
	if _, err := io.ReadFull(br, buf); err != nil {
		return false
	}
	tr := buf[pairBytes:]
	buf = buf[:pairBytes]
	if s.draining.Load() {
		cn.reply(seq, StatusShutdown, 0)
		return true
	}
	rb := &replBatch{cn: cn, seq: seq}
	rb.remaining.Store(int32(count))
	now := time.Now()
	// Tally the run's members per shard so each shard's last member can
	// carry the seal hint (see request.sealHint).
	if cap(*scnt) < len(s.shards) {
		*scnt = make([]int32, len(s.shards))
	}
	cnt := (*scnt)[:len(s.shards)]
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 0; i < int(count); i++ {
		if key := binary.LittleEndian.Uint64(buf[i*ReplPairSize:]); key != 0 && key != lpstore.NopKey {
			cnt[shardOf(key, len(s.shards))]++
		}
	}
	ti := 0 // cursor into the idx-ascending trace entries
	for i := 0; i < int(count); i++ {
		key := binary.LittleEndian.Uint64(buf[i*ReplPairSize:])
		val := binary.LittleEndian.Uint64(buf[i*ReplPairSize+8:])
		var tid uint64
		for ti < int(tcount) && binary.LittleEndian.Uint32(tr[ti*ReplTraceSize:]) < uint32(i) {
			ti++
		}
		if ti < int(tcount) && binary.LittleEndian.Uint32(tr[ti*ReplTraceSize:]) == uint32(i) {
			tid = binary.LittleEndian.Uint64(tr[ti*ReplTraceSize+4:])
			ti++
		}
		if key == 0 || key == lpstore.NopKey {
			rb.reply(StatusBadRequest)
			continue
		}
		si := shardOf(key, len(s.shards))
		sd := s.shards[si]
		cnt[si]--
		r := request{op: OpReplPut, seq: seq, key: key, val: val, enq: now, cn: cn, rb: rb, sealHint: cnt[si] == 0, tid: tid}
		if tid != 0 {
			s.trace(obs.EvStageEnq, int32(si), tid, key)
		}
		// A full mailbox blocks rather than bouncing the member with
		// Overload: stalling this reader is the follower's flow control
		// — a replication session is a dedicated connection, so TCP
		// pushes the stall back into the primary's window budget. A
		// per-member Overload would instead force the primary into
		// whole-run retries that can never succeed once a run is bigger
		// than the mailbox (a catch-up run routinely is). The owner
		// drains the mailbox for as long as the server runs, and
		// shutdown closes cn.done before it closes the mailbox, so the
		// block cannot outlive the connection.
		select {
		case sd.mb <- r:
			d := int64(len(sd.mb))
			sd.obs.mbDepth.Set(d)
			sd.obs.mbHigh.SetMax(d)
		case <-cn.done:
			rb.reply(StatusShutdown)
		}
	}
	return true
}

// connWriter drains put acks (queued by shard flushers and owners)
// onto the socket: everything queued since the last write leaves in
// one syscall. The reader's drain point steals pend preemptively when
// it has inline responses of its own to combine; a nil takePend here
// just means the reader won that race.
func (s *Server) connWriter(cn *srvConn) {
	defer s.wgConns.Done()
	for {
		select {
		case <-cn.wake:
			acks := cn.takePend()
			if acks == nil {
				continue
			}
			cn.smu.Lock()
			s.hWriteFrames.Observe(uint64(len(acks) / RespSize))
			_, err := cn.c.Write(acks)
			cn.smu.Unlock()
			cn.putSpare(acks)
			if err != nil {
				cn.stop()
				return
			}
		case <-cn.done:
			return
		}
	}
}

// owner is a shard's single mutator. With an open batch it waits at
// most until the batch deadline; otherwise it blocks on the mailbox.
// A closed mailbox (graceful drain) seals the open batch and exits.
func (s *Server) owner(sd *shardState) {
	defer s.wgOwners.Done()
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	for {
		var r request
		var ok bool
		if len(sd.pending) > 0 {
			wait := time.Until(sd.deadline)
			if wait <= 0 {
				s.seal(sd, true)
				continue
			}
			t.Reset(wait)
			select {
			case r, ok = <-sd.mb:
				if !t.Stop() {
					<-t.C
				}
			case <-t.C:
				s.seal(sd, true)
				continue
			}
		} else {
			r, ok = <-sd.mb
		}
		if !ok {
			if len(sd.pending) > 0 && !s.aborting.Load() {
				s.seal(sd, true)
			}
			if sd.commitCh != nil {
				close(sd.commitCh)
			}
			return
		}
		s.handle(sd, r)
	}
}

func (s *Server) handle(sd *shardState, r request) {
	sd.obs.mbDepth.Set(int64(len(sd.mb)))
	now := time.Now()
	wait := now.Sub(r.enq)
	s.stQueue.Observe(uint64(wait.Nanoseconds()))
	if r.tid != 0 {
		s.trace(obs.EvStageDeq, int32(sd.id), r.tid, uint64(wait.Nanoseconds()))
	}
	if d := s.cfg.MaxQueueDelay; d > 0 && wait > d {
		sd.obs.rejExp.Inc()
		s.trace(obs.EvRejectExpired, int32(sd.id), r.key, 0)
		r.reply(StatusExpired, 0)
		return
	}
	c := sd.ctx
	// Admission: reject near-full tables (an insert may be an update,
	// but distinguishing would cost the probe we are trying to avoid)
	// and exhausted LP journals before mutating anything.
	if sd.occupied >= sd.highWater ||
		(s.cfg.Mode == lpstore.ModeLP && sd.w.Seq() >= sd.sh.MaxOps) {
		sd.obs.rejFull.Inc()
		s.trace(obs.EvRejectFull, int32(sd.id), r.key, 0)
		r.reply(StatusFull, 0)
		return
	}
	s.ctPuts.Inc()
	insBefore := sd.w.Inserts
	switch s.cfg.Mode {
	case lpstore.ModeLP:
		batchBefore := sd.w.Batch()
		sd.w.Put(c, r.key, r.val)
		sd.occupied += int(sd.w.Inserts - insBefore)
		sd.pending = append(sd.pending, r)
		if len(sd.pending) == 1 {
			sd.openAt = now // fill-stage epoch, whatever seals the batch
		}
		switch {
		case sd.w.Batch() != batchBefore:
			s.seal(sd, false)
		case r.sealHint && len(sd.mb) == 0:
			s.seal(sd, true)
		default:
			if len(sd.pending) == 1 {
				sd.deadline = now.Add(s.cfg.BatchWait)
			}
			s.leak(sd)
		}
	case lpstore.ModeEP, lpstore.ModeWAL:
		sd.w.Put(c, r.key, r.val)
		sd.occupied += int(sd.w.Inserts - insBefore)
		c.takeDirty() // everything that matters was fenced to the file
		if err := c.takeErr(); err != nil {
			s.failFile(err)
			r.reply(StatusShutdown, 0)
			return
		}
		s.ctAcked.Inc()
		sd.obs.putLat.Observe(uint64(time.Since(r.enq).Nanoseconds()))
		r.reply(StatusOK, 0)
	case lpstore.ModeBase:
		sd.w.Put(c, r.key, r.val)
		sd.occupied += int(sd.w.Inserts - insBefore)
		s.ctAcked.Inc()
		sd.obs.putLat.Observe(uint64(time.Since(r.enq).Nanoseconds()))
		r.reply(StatusOK, 0)
		s.leak(sd) // the write-back queue is base's only path to the file
	}
}

// seal closes the open LP batch (padding it if it closed on timeout or
// drain rather than on its K-th put), snapshots the batch's durable
// write set — its journal-window lines and checksum line — into a free
// commitItem, and hands the item to the shard's flusher. The owner
// returns to filling the next batch immediately; the batch's clients
// are acked by the flusher once the write set (and fsync, if priced)
// completes — the pipelined group-commit durability point. An
// exhausted item ring (PipelineDepth sealed batches already in flight)
// blocks here: flush-side backpressure.
func (s *Server) seal(sd *shardState, padded bool) {
	c := sd.ctx
	t0 := time.Now()
	if padded {
		s.ctPads.Add(uint64(sd.w.PadBatch(c)))
	}
	it := <-sd.freeCh
	it.batch = sd.w.Batch() - 1
	it.seq = sd.w.Seq()
	it.sealed = t0
	it.pending, sd.pending = sd.pending, it.pending[:0]
	if len(it.pending) > 0 && !sd.openAt.IsZero() {
		s.stFill.Observe(uint64(t0.Sub(sd.openAt).Nanoseconds()))
	}
	if s.tr.Enabled() {
		ts := t0.UnixNano()
		for i := range it.pending {
			if tid := it.pending[i].tid; tid != 0 {
				s.tr.Record(obs.EvStageSeal, int32(sd.id), ts, tid, uint64(it.batch))
			}
		}
	}
	if sd.replq != nil {
		s.forwardBatch(sd, it)
	}

	base := it.batch * sd.sh.BatchK
	first := memsim.LineOf(sd.sh.Jrn.Addr(2 * base))
	last := memsim.LineOf(sd.sh.Jrn.Addr(2*(base+sd.sh.BatchK) - 1))
	it.lines = it.lines[:0]
	for la := first; la <= last; la += memsim.LineSize {
		it.lines = append(it.lines, la)
	}
	it.lines = append(it.lines, memsim.LineOf(sd.sh.Ack.SlotAddr(it.batch)))
	for i, la := range it.lines {
		_, it.bufs[i] = s.pf.snapshotLine(la)
	}
	sd.obs.jrnUsed.Set(int64(it.seq))
	s.leak(sd) // table lines this batch dirtied may still drift out
	sd.obs.pipeInflight.Add(1)
	sd.commitCh <- it
}

// forwardBatch hands the sealed batch's client puts to the Replicator
// as one call: the Replicator ships them to each destination pair peer
// as a single OpReplBatch frame sharing one ack, and the network hop
// plus the follower's own group commit overlap this batch's local
// write set. Runs in the owner at seal time — never in the flusher:
// ForwardBatch may block on replication-window backpressure until a
// *remote* ack frees a slot, and a flusher blocked on remote progress
// deadlocks two nodes that forward to each other (each node's
// follower acks are produced by its flusher). OpReplPut arrivals are
// the peer's forwarded copies — re-forwarding them would echo puts
// between pair members forever, so only OpPut entries forward.
func (s *Server) forwardBatch(sd *shardState, it *commitItem) {
	keys, vals, tids := sd.repKeys[:0], sd.repVals[:0], sd.repTids[:0]
	for i := range it.pending {
		if it.pending[i].op == OpPut {
			keys = append(keys, it.pending[i].key)
			vals = append(vals, it.pending[i].val)
			tids = append(tids, it.pending[i].tid)
		}
	}
	if len(keys) == 0 {
		return
	}
	toks := sd.repToks[:len(keys)]
	s.cfg.Repl.ForwardBatch(keys, vals, tids, toks)
	j := 0
	for i := range it.pending {
		if it.pending[i].op == OpPut {
			it.pending[i].rtok = toks[j]
			j++
		}
	}
}

// flusher drains one shard's commit pipeline in FIFO order: write the
// sealed batch's frozen line snapshots, fsync if priced, then — and
// only then — ack the batch's clients. Runs concurrently with the
// owner filling the next batch; per-shard FIFO keeps the file image of
// lines shared between consecutive batches monotone.
func (s *Server) flusher(sd *shardState) {
	defer s.wgFlush.Done()
	for it := range sd.commitCh {
		s.flushItem(sd, it)
		sd.freeCh <- it
	}
}

func (s *Server) flushItem(sd *shardState, it *commitItem) {
	var err error
	if ep := s.fileErr.Load(); ep != nil {
		err = *ep
	} else {
		for i := range it.lines {
			if err = s.pf.writeLineBytes(it.lines[i], &it.bufs[i]); err != nil {
				break
			}
		}
		if err == nil && s.pf.fsync {
			err = s.pf.sync()
		}
	}
	if sd.replq != nil {
		s.flushItemRepl(sd, it, err)
		return
	}
	now := time.Now()
	if err != nil {
		s.failFile(err)
		for _, r := range it.pending {
			r.reply(StatusShutdown, 0)
		}
	} else {
		s.ctBatches.Inc()
		s.ctAcked.Add(uint64(len(it.pending)))
		sd.obs.batchFill.Observe(uint64(len(it.pending)))
		sd.obs.commitLat.Observe(uint64(now.Sub(it.sealed).Nanoseconds()))
		s.stFlush.Observe(uint64(now.Sub(it.sealed).Nanoseconds()))
		s.trace(obs.EvBatchCommit, int32(sd.id), uint64(it.batch), uint64(len(it.pending)))
		s.trace(obs.EvAckAdvance, int32(sd.id), uint64(it.seq), 0)
		tron := s.tr.Enabled()
		ts := now.UnixNano()
		for _, r := range it.pending {
			lat := uint64(now.Sub(r.enq).Nanoseconds())
			sd.obs.putLat.Observe(lat)
			if tron {
				if r.tid != 0 {
					s.tr.Record(obs.EvStageFlush, int32(sd.id), ts, r.tid, uint64(it.batch))
					s.tr.Record(obs.EvStageReply, int32(sd.id), ts, r.tid, lat)
				}
				if s.slowNs > 0 && int64(lat) > s.slowNs {
					s.tr.Record(obs.EvSlowPut, int32(sd.id), ts, r.key, lat)
				}
			}
			r.reply(StatusOK, 0)
		}
	}
	it.pending = it.pending[:0]
	sd.obs.pipeInflight.Add(-1)
}

// flushItemRepl is the clustered reply path. Batch accounting and
// every token-free reply happen right here, at local-commit time;
// only puts with a replication token in flight defer to the shard's
// completion goroutine. The split is a deadlock invariant, not an
// optimization: a token-free put is usually the *peer's* replicated
// forward, and its reply is what unblocks the peer's own token waits.
// Two nodes forwarding to each other would wedge permanently if those
// replies ever queued behind this node's token waits (or, worse, if
// the flusher itself blocked on a remote ack — the peer's forwards
// flow through this very flusher).
func (s *Server) flushItemRepl(sd *shardState, it *commitItem, err error) {
	now := time.Now()
	if err != nil {
		s.failFile(err)
	} else {
		s.ctBatches.Inc()
		sd.obs.batchFill.Observe(uint64(len(it.pending)))
		sd.obs.commitLat.Observe(uint64(now.Sub(it.sealed).Nanoseconds()))
		s.stFlush.Observe(uint64(now.Sub(it.sealed).Nanoseconds()))
		s.trace(obs.EvBatchCommit, int32(sd.id), uint64(it.batch), uint64(len(it.pending)))
		s.trace(obs.EvAckAdvance, int32(sd.id), uint64(it.seq), 0)
		if s.tr.Enabled() {
			ts := now.UnixNano()
			for i := range it.pending {
				if tid := it.pending[i].tid; tid != 0 {
					s.tr.Record(obs.EvStageFlush, int32(sd.id), ts, tid, uint64(it.batch))
				}
			}
		}
	}
	var toks []request
	for _, r := range it.pending {
		if r.rtok != 0 {
			toks = append(toks, r)
			continue
		}
		s.replyPut(sd, r, err, now)
	}
	it.pending = it.pending[:0]
	sd.obs.pipeInflight.Add(-1)
	if len(toks) > 0 {
		// Non-blocking by construction (replq is unbounded); a send
		// that could block here would reintroduce the cross-node
		// flusher deadlock this split exists to prevent.
		sd.replq.push(replJob{pending: toks, err: err, flushed: now})
	}
}

// replWaiter drains one shard's replication completion queue: for each
// locally flushed batch's tokened puts it waits out the follower
// group-commit acks, then replies. The replication ack rule lives here
// — a put is acked only after the follower reported its own LP group
// commit, or after the cluster revoked the follower's lease (Wait
// returns true for that designed RF=1 fallback). When Wait reports the
// put unackable — the forward failed while the follower is still
// alive, e.g. the follower's table is full or its connection blipped —
// the client gets StatusOverload instead: the put is durable locally
// and idempotent to retry, and backpressure is honest where a silent
// RF=1 ack would not be. The waits run after the local write set is
// durable, so an acked client sees max(local commit, follower commit),
// not their sum. Every nonzero token must be waited exactly once (it
// owns a replication window slot), so the waits run on the failure
// path too.
func (s *Server) replWaiter(sd *shardState) {
	defer s.wgRepl.Done()
	for {
		job, ok := sd.replq.pop()
		if !ok {
			return
		}
		for _, r := range job.pending {
			ok := s.cfg.Repl.Wait(r.rtok)
			if r.tid != 0 {
				var b uint64
				if ok {
					b = 1
				}
				s.trace(obs.EvStageReplAck, int32(sd.id), r.tid, b)
			}
			if job.err == nil && !ok {
				sd.obs.rejOver.Inc()
				r.reply(StatusOverload, 0)
				continue
			}
			s.replyPut(sd, r, job.err, time.Now())
		}
		if job.err == nil && !job.flushed.IsZero() {
			// Per-job repl stage: local write set durable → every
			// follower token of the batch resolved.
			s.stRepl.Observe(uint64(time.Since(job.flushed).Nanoseconds()))
		}
	}
}

// replyPut acks (or fails) one put whose local write set settled.
func (s *Server) replyPut(sd *shardState, r request, err error, now time.Time) {
	if err != nil {
		r.reply(StatusShutdown, 0)
		return
	}
	s.ctAcked.Add(1)
	lat := uint64(now.Sub(r.enq).Nanoseconds())
	sd.obs.putLat.Observe(lat)
	if s.tr.Enabled() {
		ts := now.UnixNano()
		if r.tid != 0 {
			s.tr.Record(obs.EvStageReply, int32(sd.id), ts, r.tid, lat)
		}
		if s.slowNs > 0 && int64(lat) > s.slowNs {
			s.tr.Record(obs.EvSlowPut, int32(sd.id), ts, r.key, lat)
		}
	}
	r.reply(StatusOK, 0)
}

// leak snapshots the shard's freshly dirtied table lines and offers
// them to the write-back queue — the service's stand-in for natural
// cache evictions. Non-blocking: a full queue drops the snapshot
// (the line stays dirty only in the heap), exactly as a line may
// simply not be evicted before a crash. Journal and checksum lines
// never leak; see shardState.tabLo.
func (s *Server) leak(sd *shardState) {
	for _, la := range sd.ctx.takeDirty() {
		if la < sd.tabLo || la > sd.tabHi {
			continue
		}
		var ls lineSnap
		ls.la, ls.buf = s.pf.snapshotLine(la)
		select {
		case s.leakCh <- ls:
			s.ctLeaked.Inc()
			s.trace(obs.EvEvictionLeak, int32(sd.id), uint64(la), 0)
		default:
			s.ctDropped.Inc()
		}
	}
}

// writeBack drains the leak queue to the file.
func (s *Server) writeBack() {
	defer s.wgLeak.Done()
	for ls := range s.leakCh {
		if err := s.pf.writeLineBytes(ls.la, &ls.buf); err != nil {
			s.failFile(err)
		}
	}
}

// failFile records the first backing-file write error and flips the
// server into draining: durability can no longer be promised, so
// every subsequent request is answered StatusShutdown.
func (s *Server) failFile(err error) {
	e := err
	s.fileErr.CompareAndSwap(nil, &e)
	s.draining.Store(true)
}
