package kvserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The wire protocol is a fixed-frame binary exchange sized for
// pipelining: requests are 21 bytes ([op:1][seq:4][key:8][val:8]),
// responses 13 ([seq:4][status:1][val:8]). Sequence numbers are
// per-connection and chosen by the client; responses may arrive out of
// order (different shards commit independently), which is the point —
// a connection keeps a window of requests in flight and the group
// commit acks them in batch order.
//
// The frame constants and codecs are exported because two other layers
// speak this protocol verbatim: the lprouter proxy (internal/cluster)
// forwards client frames to node backends unchanged, and the cluster
// Replicator forwards puts pair-member→pair-member as OpReplPut frames.
const (
	OpPut = 'P'
	OpGet = 'G'
	// OpReplPut is a put arriving over a replication session from the
	// slot's other pair member: it is journaled and group-committed
	// like OpPut but never re-forwarded. The dedicated opcode is what
	// makes replication echo structurally impossible — with role views
	// converging per node, two members can transiently both believe
	// they own a slot, and ordinary puts bounced between them would
	// amplify forever.
	OpReplPut = 'R'
	OpPing    = 'N'
	// OpReplBatch is a run of replicated puts sharing one header and
	// one ack: a standard request header whose key field carries the
	// put count, followed by count 16-byte (key, val) pairs. Each put
	// is applied exactly like OpReplPut (admission, journaling, group
	// commit, never re-forwarded); the receiver answers a single
	// response carrying the header's seq once every put in the run has
	// settled inside its own group commit — the worst member status
	// wins, so one StatusOK ack still means "every put in this run is
	// LP-durable here". This is the cluster's replication amortization:
	// one frame and one ack per forwarded batch instead of per put.
	OpReplBatch = 'B'
	// OpHello is the per-connection capability handshake: the key field
	// carries the feature bits the client wants, the response's val the
	// bits the server grants. A client that never sends it gets exactly
	// the pre-hello protocol — old clients stay wire-compatible byte
	// for byte — and a new client talking to an implementation that
	// predates the opcode reads StatusBadRequest and simply keeps its
	// optional features off.
	OpHello = 'H'
	// OpTraceCtx is the trace-context extension negotiated by OpHello's
	// FeatTrace bit: a standard request frame whose key field carries a
	// trace ID, attached to the NEXT frame on the same connection. It is
	// a silent prefix — the server consumes it without answering, so
	// framing, sequence-number flow, and response counts are untouched
	// for every other frame. The router forwards a prefix fused to its
	// successor so the pair lands on the same backend.
	OpTraceCtx = 'T'

	// FeatTrace is the OpHello feature bit for OpTraceCtx support.
	FeatTrace = uint64(1)

	ReqSize  = 1 + 4 + 8 + 8
	RespSize = 4 + 1 + 8
	// ReplPairSize is the size of one (key, val) pair in an OpReplBatch
	// payload.
	ReplPairSize = 16
	// ReplTraceSize is the size of one [idx:4][tid:8] trace entry in an
	// OpReplBatch trace extension: the header's val field counts these
	// entries, which follow the pairs on the wire ascending by idx and
	// tag pair idx with trace ID tid. A header val of 0 — what every
	// pre-trace primary sends — is the extension absent.
	ReplTraceSize = 12
	// MaxReplBatch bounds the put count an OpReplBatch header may
	// declare — a receiver-side allocation guard, far above any real
	// group-commit batch.
	MaxReplBatch = 4096
)

// Response status codes.
const (
	// StatusOK acks the operation; for a put it means the put's batch
	// (LP) or its own write set (EP/WAL) is durably in the backing file.
	StatusOK = byte(iota)
	// StatusNotFound is a get miss.
	StatusNotFound
	// StatusOverload means the shard's mailbox was full; retry later.
	StatusOverload
	// StatusExpired means the request waited in the mailbox past
	// MaxQueueDelay and was not executed.
	StatusExpired
	// StatusFull rejects a put: the shard's table is at its admission
	// watermark or its LP journal is exhausted.
	StatusFull
	// StatusBadRequest rejects a malformed frame (unknown op, or a
	// reserved key: 0 and NopKey).
	StatusBadRequest
	// StatusShutdown means the server is draining (or hit a backing-
	// file write error) and took no action.
	StatusShutdown
	// StatusMoved rejects a client put whose key this cluster member
	// does not own under its applied topology epoch: the client's
	// routing table is stale and it must refresh and re-route. Ordered
	// after StatusShutdown so the severity ranking of the pre-existing
	// codes (used by OpReplBatch worst-status aggregation) is
	// untouched; replication frames are exempt from the primary check,
	// so StatusMoved never appears in a replication ack.
	StatusMoved
)

// StatusName returns a human-readable status label.
func StatusName(st byte) string {
	switch st {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not_found"
	case StatusOverload:
		return "overload"
	case StatusExpired:
		return "expired"
	case StatusFull:
		return "full"
	case StatusBadRequest:
		return "bad_request"
	case StatusShutdown:
		return "shutdown"
	case StatusMoved:
		return "moved"
	}
	return fmt.Sprintf("status(%d)", st)
}

func EncodeReq(buf *[ReqSize]byte, op byte, seq uint32, key, val uint64) {
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[1:], seq)
	binary.LittleEndian.PutUint64(buf[5:], key)
	binary.LittleEndian.PutUint64(buf[13:], val)
}

func DecodeReq(buf *[ReqSize]byte) (op byte, seq uint32, key, val uint64) {
	return buf[0],
		binary.LittleEndian.Uint32(buf[1:]),
		binary.LittleEndian.Uint64(buf[5:]),
		binary.LittleEndian.Uint64(buf[13:])
}

func EncodeResp(buf *[RespSize]byte, seq uint32, status byte, val uint64) {
	binary.LittleEndian.PutUint32(buf[0:], seq)
	buf[4] = status
	binary.LittleEndian.PutUint64(buf[5:], val)
}

// appendResp encodes one response frame onto b — the connection
// reader's batched inline-response path (gets, pings, rejects), which
// accumulates frames and hands them to the socket in one write.
func appendResp(b []byte, seq uint32, status byte, val uint64) []byte {
	var f [RespSize]byte
	EncodeResp(&f, seq, status, val)
	return append(b, f[:]...)
}

func DecodeResp(buf *[RespSize]byte) (seq uint32, status byte, val uint64) {
	return binary.LittleEndian.Uint32(buf[0:]),
		buf[4],
		binary.LittleEndian.Uint64(buf[5:])
}

// Response is one operation's outcome as seen by a Client. Err is set
// only for connection-level failures (the server died or the
// connection broke before the response arrived); otherwise Status is
// one of the Status codes above.
type Response struct {
	Status byte
	Val    uint64
	Err    error
}

// Client is a pipelined connection to a server: any number of
// operations may be in flight, matched to responses by sequence
// number. Safe for concurrent use.
type Client struct {
	c   net.Conn
	wmu sync.Mutex // serializes request frames

	mu   sync.Mutex
	seq  uint32
	pend map[uint32]chan Response
	err  error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{c: c, pend: make(map[uint32]chan Response)}
	go cl.readLoop()
	return cl, nil
}

// WaitReady dials addr and pings until the server answers or the
// timeout elapses — the boot barrier for tests and scripted runs.
func WaitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		cl, err := Dial(addr)
		if err == nil {
			err = cl.Ping()
			cl.Close()
			if err == nil {
				return nil
			}
		}
		last = err
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("kvserve: %s not ready after %v: %w", addr, timeout, last)
}

// start issues one operation and returns the channel its Response will
// arrive on (buffered; safe to abandon).
func (cl *Client) start(op byte, key, val uint64) (<-chan Response, error) {
	ch := make(chan Response, 1)
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.seq++
	seq := cl.seq
	cl.pend[seq] = ch
	cl.mu.Unlock()

	var buf [ReqSize]byte
	EncodeReq(&buf, op, seq, key, val)
	cl.wmu.Lock()
	_, err := cl.c.Write(buf[:])
	cl.wmu.Unlock()
	if err != nil {
		cl.mu.Lock()
		delete(cl.pend, seq)
		cl.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

func (cl *Client) readLoop() {
	br := bufio.NewReaderSize(cl.c, 1<<12)
	var buf [RespSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			cl.fail(err)
			return
		}
		seq, status, val := DecodeResp(&buf)
		cl.mu.Lock()
		ch := cl.pend[seq]
		delete(cl.pend, seq)
		cl.mu.Unlock()
		if ch != nil {
			ch <- Response{Status: status, Val: val}
		}
	}
}

// fail poisons the client and completes every in-flight operation
// with err — an unacked put stays unacked, exactly the durability
// question the crash test asks.
func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.err == nil {
		cl.err = err
	}
	for seq, ch := range cl.pend {
		delete(cl.pend, seq)
		ch <- Response{Err: err}
	}
	cl.mu.Unlock()
}

// Put writes key=val and waits for the ack.
func (cl *Client) Put(key, val uint64) (byte, error) {
	ch, err := cl.start(OpPut, key, val)
	if err != nil {
		return 0, err
	}
	r := <-ch
	return r.Status, r.Err
}

// Hello negotiates optional protocol features for this connection and
// returns the granted bits. A server (or proxy) that predates OpHello
// answers StatusBadRequest, which comes back as granted == 0 — the
// caller keeps its optional features off and proceeds.
func (cl *Client) Hello(features uint64) (uint64, error) {
	ch, err := cl.start(OpHello, features, 0)
	if err != nil {
		return 0, err
	}
	r := <-ch
	if r.Err != nil {
		return 0, r.Err
	}
	if r.Status != StatusOK {
		return 0, nil
	}
	return r.Val & features, nil
}

// PutTraced writes key=val carrying trace ID tid: an OpTraceCtx prefix
// and the put leave in one socket write so no other frame can slip
// between them. Call only after Hello granted FeatTrace.
func (cl *Client) PutTraced(tid, key, val uint64) (byte, error) {
	ch := make(chan Response, 1)
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return 0, err
	}
	cl.seq++
	seq := cl.seq
	cl.pend[seq] = ch
	cl.mu.Unlock()

	var buf [2 * ReqSize]byte
	EncodeReq((*[ReqSize]byte)(buf[0:ReqSize]), OpTraceCtx, seq, tid, 0)
	EncodeReq((*[ReqSize]byte)(buf[ReqSize:]), OpPut, seq, key, val)
	cl.wmu.Lock()
	_, err := cl.c.Write(buf[:])
	cl.wmu.Unlock()
	if err != nil {
		cl.mu.Lock()
		delete(cl.pend, seq)
		cl.mu.Unlock()
		return 0, err
	}
	r := <-ch
	return r.Status, r.Err
}

// Get reads key.
func (cl *Client) Get(key uint64) (uint64, byte, error) {
	ch, err := cl.start(OpGet, key, 0)
	if err != nil {
		return 0, 0, err
	}
	r := <-ch
	return r.Val, r.Status, r.Err
}

// Ping round-trips a no-op frame.
func (cl *Client) Ping() error {
	ch, err := cl.start(OpPing, 1, 0)
	if err != nil {
		return err
	}
	r := <-ch
	if r.Err != nil {
		return r.Err
	}
	if r.Status != StatusOK {
		return fmt.Errorf("kvserve: ping answered %s", StatusName(r.Status))
	}
	return nil
}

// Err returns the connection-level failure that poisoned the client,
// if any.
func (cl *Client) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// Close tears the connection down; in-flight operations complete with
// an error.
func (cl *Client) Close() error { return cl.c.Close() }
