package kvserve

import (
	"math"

	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// fileCtx is the deployment's pmem.Ctx: loads and stores hit the heap
// image (the "cache"), Flush marks a line for write-back, and Fence
// writes every flushed line to the backing file (the "NVMM"). Running
// the existing lpstore/ep/wal code over it prices each discipline's
// ordering points in real syscalls: EP pays a file write set per put,
// WAL several, while LP's plain stores cost nothing until the owner
// commits a batch.
//
// Stores go through Memory.AtomicStore64: the shard table is read
// lock-free by connection goroutines (Store.SeqGet), so every word the
// single-owner writer mutates must be stored atomically for the reads
// to be data-race-free. Loads stay plain — only the owner loads
// through the ctx, and it cannot race its own stores.
//
// A fileCtx is single-goroutine (one per shard owner, plus one for the
// startup/recovery path); it also tracks every line dirtied by plain
// stores since the last takeDirty, which the owner feeds to the
// background write-back queue — the "natural evictions" that leak
// unacknowledged state into the durable image. The dirty and pending
// sets are deduplicated by linear scan over their (short, bounded)
// order slices rather than maps, keeping the steady-state put path
// allocation-free.
type fileCtx struct {
	mem *memsim.Memory
	pf  *pmemFile
	id  int

	dirtyOrder []memsim.Addr
	pendOrder  []memsim.Addr
	err        error // first write error; surfaced at commit points
}

var _ pmem.Ctx = (*fileCtx)(nil)

func newFileCtx(mem *memsim.Memory, pf *pmemFile, id int) *fileCtx {
	return &fileCtx{
		mem:        mem,
		pf:         pf,
		id:         id,
		dirtyOrder: make([]memsim.Addr, 0, 64),
		pendOrder:  make([]memsim.Addr, 0, 64),
	}
}

// appendLine adds la to set if absent (linear-scan dedup: the sets
// stay a handful of lines between drains, so a scan beats a map and
// never allocates once the backing array has grown).
func appendLine(set []memsim.Addr, la memsim.Addr) []memsim.Addr {
	for _, x := range set {
		if x == la {
			return set
		}
	}
	return append(set, la)
}

// Load64 implements pmem.Ctx.
func (c *fileCtx) Load64(a memsim.Addr) uint64 { return c.mem.Load64(a) }

// Store64 implements pmem.Ctx: an atomic store mutates only the heap
// image and remembers the dirty line.
func (c *fileCtx) Store64(a memsim.Addr, v uint64) {
	c.mem.AtomicStore64(a, v)
	c.dirtyOrder = appendLine(c.dirtyOrder, memsim.LineOf(a))
}

// LoadF implements pmem.Ctx.
func (c *fileCtx) LoadF(a memsim.Addr) float64 { return math.Float64frombits(c.mem.Load64(a)) }

// StoreF implements pmem.Ctx.
func (c *fileCtx) StoreF(a memsim.Addr, v float64) { c.Store64(a, math.Float64bits(v)) }

// Flush implements pmem.Ctx: the line joins the set Fence will write.
func (c *fileCtx) Flush(a memsim.Addr) {
	c.pendOrder = appendLine(c.pendOrder, memsim.LineOf(a))
}

// Fence implements pmem.Ctx: every flushed line is written to the
// file, then the set resets. This is the syscall cost of an EP or WAL
// ordering point.
func (c *fileCtx) Fence() {
	for _, la := range c.pendOrder {
		if err := c.pf.writeLine(la); err != nil && c.err == nil {
			c.err = err
		}
	}
	c.pendOrder = c.pendOrder[:0]
	if c.pf.fsync {
		if err := c.pf.sync(); err != nil && c.err == nil {
			c.err = err
		}
	}
}

// Compute implements pmem.Ctx (no accounting natively).
func (c *fileCtx) Compute(int) {}

// ThreadID implements pmem.Ctx.
func (c *fileCtx) ThreadID() int { return c.id }

// persistLines durably writes the given lines now — the recovery
// tail-zeroing and the EP/WAL inspection paths use this directly,
// bypassing Flush/Fence. (The LP group commit goes through the shard
// flusher's snapshot buffers instead; see server.go.)
func (c *fileCtx) persistLines(lines []memsim.Addr) error {
	for _, la := range lines {
		if err := c.pf.writeLine(la); err != nil {
			return err
		}
	}
	if c.pf.fsync {
		return c.pf.sync()
	}
	return nil
}

// takeDirty returns and resets the lines plain-stored since the last
// call, in first-dirtied order. The returned slice aliases the ctx's
// reusable buffer: it is valid only until the next Store64 on this
// ctx, and callers must finish with it before mutating again.
func (c *fileCtx) takeDirty() []memsim.Addr {
	out := c.dirtyOrder
	c.dirtyOrder = c.dirtyOrder[:0]
	return out
}

// takeErr returns and clears the first deferred write error.
func (c *fileCtx) takeErr() error {
	err := c.err
	c.err = nil
	return err
}
