package kvserve

import (
	"math"

	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// fileCtx is the deployment's pmem.Ctx: loads and stores hit the heap
// image (the "cache"), Flush marks a line for write-back, and Fence
// writes every flushed line to the backing file (the "NVMM"). Running
// the existing lpstore/ep/wal code over it prices each discipline's
// ordering points in real syscalls: EP pays a file write set per put,
// WAL several, while LP's plain stores cost nothing until the owner
// commits a batch with persistLines.
//
// A fileCtx is single-goroutine (one per shard owner, plus one for the
// startup/recovery path); it also tracks every line dirtied by plain
// stores since the last takeDirty, which the owner feeds to the
// background write-back queue — the "natural evictions" that leak
// unacknowledged state into the durable image.
type fileCtx struct {
	mem *memsim.Memory
	pf  *pmemFile
	id  int

	dirty      map[memsim.Addr]struct{}
	dirtyOrder []memsim.Addr
	pend       map[memsim.Addr]struct{}
	pendOrder  []memsim.Addr
	err        error // first write error; surfaced at commit points
}

var _ pmem.Ctx = (*fileCtx)(nil)

func newFileCtx(mem *memsim.Memory, pf *pmemFile, id int) *fileCtx {
	return &fileCtx{
		mem:   mem,
		pf:    pf,
		id:    id,
		dirty: make(map[memsim.Addr]struct{}),
		pend:  make(map[memsim.Addr]struct{}),
	}
}

// Load64 implements pmem.Ctx.
func (c *fileCtx) Load64(a memsim.Addr) uint64 { return c.mem.Load64(a) }

// Store64 implements pmem.Ctx: a plain store mutates only the heap
// image and remembers the dirty line.
func (c *fileCtx) Store64(a memsim.Addr, v uint64) {
	c.mem.Store64(a, v)
	la := memsim.LineOf(a)
	if _, ok := c.dirty[la]; !ok {
		c.dirty[la] = struct{}{}
		c.dirtyOrder = append(c.dirtyOrder, la)
	}
}

// LoadF implements pmem.Ctx.
func (c *fileCtx) LoadF(a memsim.Addr) float64 { return math.Float64frombits(c.mem.Load64(a)) }

// StoreF implements pmem.Ctx.
func (c *fileCtx) StoreF(a memsim.Addr, v float64) { c.Store64(a, math.Float64bits(v)) }

// Flush implements pmem.Ctx: the line joins the set Fence will write.
func (c *fileCtx) Flush(a memsim.Addr) {
	la := memsim.LineOf(a)
	if _, ok := c.pend[la]; !ok {
		c.pend[la] = struct{}{}
		c.pendOrder = append(c.pendOrder, la)
	}
}

// Fence implements pmem.Ctx: every flushed line is written to the
// file, then the set resets. This is the syscall cost of an EP or WAL
// ordering point.
func (c *fileCtx) Fence() {
	for _, la := range c.pendOrder {
		if err := c.pf.writeLine(la); err != nil && c.err == nil {
			c.err = err
		}
	}
	c.pendOrder = c.pendOrder[:0]
	clear(c.pend)
	if c.pf.fsync {
		if err := c.pf.sync(); err != nil && c.err == nil {
			c.err = err
		}
	}
}

// Compute implements pmem.Ctx (no accounting natively).
func (c *fileCtx) Compute(int) {}

// ThreadID implements pmem.Ctx.
func (c *fileCtx) ThreadID() int { return c.id }

// persistLines durably writes the given lines now — the LP group
// commit (a batch's journal window plus its checksum slot) and the
// recovery tail-zeroing use this directly, bypassing Flush/Fence.
func (c *fileCtx) persistLines(lines []memsim.Addr) error {
	for _, la := range lines {
		if err := c.pf.writeLine(la); err != nil {
			return err
		}
	}
	if c.pf.fsync {
		return c.pf.sync()
	}
	return nil
}

// takeDirty returns and resets the lines plain-stored since the last
// call, in first-dirtied order.
func (c *fileCtx) takeDirty() []memsim.Addr {
	if len(c.dirtyOrder) == 0 {
		return nil
	}
	out := c.dirtyOrder
	c.dirtyOrder = nil
	clear(c.dirty)
	return out
}

// takeErr returns and clears the first deferred write error.
func (c *fileCtx) takeErr() error {
	err := c.err
	c.err = nil
	return err
}
