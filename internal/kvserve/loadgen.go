package kvserve

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lazyp/internal/obs"
	"lazyp/internal/workloads"
)

// LoadOpts drives RunLoad. Streams/Keys/Seed must match the server's
// Config so reads hit the preloaded key space; connection w replays
// kvgen stream w mod Streams. InsertOnly switches to a unique-key
// insert stream per connection (keys disjoint from the preload and
// from every other connection), the shape the crash test needs.
type LoadOpts struct {
	Conns  int
	Window int // in-flight ops per connection
	Ops    int // ops per connection; 0 = run until Dur elapses
	Dur    time.Duration

	Mix  string // kvgen mix: "a", "b", "c", "d"
	Dist string // "zipfian" or "uniform"

	Streams int
	Keys    int
	Seed    uint64

	InsertOnly bool
	MaxRetries int // retries per op on StatusOverload or a dead connection (default 8)

	// Route, when non-nil, switches workers into smart-client mode:
	// each op is routed to Route(key) — one pipelined connection per
	// distinct target per worker — falling back to the RunLoad addr
	// argument when Route returns "". Retries re-route, so an op whose
	// first target died lands on the promoted primary once the routing
	// table catches up.
	Route func(key uint64) string
	// Refresh, when non-nil, is called after a connection failure and
	// before the failed ops reissue — the hook smart clients use to
	// re-fetch the routing table. Called from worker goroutines; it
	// must be safe for concurrent use.
	Refresh func()
	// Reconnect makes workers survive connection failures instead of
	// aborting the run: ops in flight on a failed connection requeue
	// (bounded by MaxRetries each, counted in Retries) and the target
	// is redialed with jittered backoff on next use. Without it any
	// send/receive/dial error fails the worker — the old, single-node
	// semantics the non-cluster tests rely on.
	Reconnect bool

	// Interval, when positive, emits a windowed progress line to
	// Progress every Interval: ops completed, window throughput, and
	// window p50/p99/p999/max from the client-side latency histogram.
	// Nil Progress disables the reporter regardless of Interval.
	Interval time.Duration
	Progress io.Writer

	// TraceEvery, when positive, mints a client-side trace ID for
	// every TraceEvery-th issued op (1 = every op) and ships it ahead
	// of the op as an OpTraceCtx prefix — on connections whose OpHello
	// handshake granted FeatTrace; against a pre-trace server the ID
	// stays client-local. Traced ops record client_send/client_ack
	// span events into Tracer.
	TraceEvery int
	// Tracer receives the client-side span events of traced ops; it
	// must be Enabled() to record. Nil (or disabled) drops the client
	// events while trace IDs still travel, so server-side stages are
	// stamped regardless.
	Tracer *obs.Tracer

	// OnSend fires before an op's first send; OnAck fires when a put
	// is acked StatusOK. Both may be nil; both may be called from many
	// goroutines. The crash test records sent and acked puts here.
	OnSend func(conn int, key, val uint64)
	OnAck  func(conn int, key, val uint64)
}

// TargetStat is the per-backend slice of a LoadReport, keyed by the
// address ops were sent to — in smart-client mode one entry per
// cluster node the run touched, otherwise a single entry.
type TargetStat struct {
	Addr      string `json:"addr"`
	Ops       uint64 `json:"ops"`        // completed ops whose final response came from here
	AckedPuts uint64 `json:"acked_puts"` //
	Dials     uint64 `json:"dials"`      // connections opened (first + re-dials)
	Resets    uint64 `json:"resets"`     // connections that died mid-use
}

// LoadReport is RunLoad's result. Latencies are measured per op from
// first send to final response (retries included) in microseconds;
// percentiles come from a client-side log-scale histogram, so they are
// bucket upper bounds (≤12.5% relative error), not exact order
// statistics.
type LoadReport struct {
	Conns      int     `json:"conns"`
	Window     int     `json:"window"`
	ElapsedS   float64 `json:"elapsed_s"`
	Ops        uint64  `json:"ops"` // completed ops, any final status
	AckedPuts  uint64  `json:"acked_puts"`
	Gets       uint64  `json:"gets"`
	NotFound   uint64  `json:"not_found"`
	Overloads  uint64  `json:"overloads"` // StatusOverload responses seen
	Retries    uint64  `json:"retries"`
	Expired    uint64  `json:"expired"`
	Full       uint64  `json:"full"`
	Moved      uint64  `json:"moved,omitempty"` // StatusMoved responses seen (stale routing)
	Errors     uint64  `json:"errors"`          // ops abandoned to connection-level failures
	Throughput float64 `json:"throughput_ops_s"`
	P50us      float64 `json:"p50_us"`
	P90us      float64 `json:"p90_us"`
	P99us      float64 `json:"p99_us"`
	MaxUs      float64 `json:"max_us"`

	// Targets breaks the run down per backend address, sorted by
	// address. ConnResets totals their Resets — nonzero under failover.
	Targets    []TargetStat `json:"targets,omitempty"`
	ConnResets uint64       `json:"conn_resets,omitempty"`

	// Partial is set when a worker gave up (a connection failure
	// without Reconnect, or a dial error with surviving peers): the
	// counts and latencies above cover only the ops that completed.
	Partial bool `json:"partial,omitempty"`
}

func (o LoadOpts) withDefaults() LoadOpts {
	if o.Conns == 0 {
		o.Conns = 2
	}
	if o.Window == 0 {
		o.Window = 32
	}
	if o.Ops == 0 && o.Dur == 0 {
		o.Ops = 1000
	}
	if o.Mix == "" {
		o.Mix = "a"
	}
	if o.Dist == "" {
		o.Dist = "zipfian"
	}
	if o.Streams == 0 {
		o.Streams = 4
	}
	if o.Keys == 0 {
		o.Keys = 2048
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 8
	}
	return o
}

// insertKey is connection w's i-th unique key under InsertOnly: stream
// ids past the server's preloaded streams, so the keys collide with
// nothing.
func insertKey(o LoadOpts, conn, i int) (key, val uint64) {
	key = workloads.KVKey(o.Streams+conn, i)
	return key, workloads.KVInitVal(o.Seed^0x9e3779b97f4a7c15, key)
}

// tgtCounters aggregates one backend address across all workers.
type tgtCounters struct {
	ops, acked, dials, resets atomic.Uint64
}

type tgtBook struct {
	mu sync.Mutex
	m  map[string]*tgtCounters
}

func (b *tgtBook) get(addr string) *tgtCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.m[addr]
	if c == nil {
		c = &tgtCounters{}
		b.m[addr] = c
	}
	return c
}

// RunLoad drives an open-window load against addr: Conns pipelined
// connections, each keeping Window ops in flight, retrying overloads
// (and, under Reconnect, dead connections) with jittered exponential
// backoff. It returns the merged report.
func RunLoad(addr string, o LoadOpts) (LoadReport, error) {
	o = o.withDefaults()
	mix, ok := workloads.KVMixByName(o.Mix)
	if !ok {
		return LoadReport{}, fmt.Errorf("kvserve: unknown mix %q", o.Mix)
	}

	var (
		ops, acked, gets, notFound  atomic.Uint64
		overloads, retries, expired atomic.Uint64
		full, moved, errs, resets   atomic.Uint64
		hist                        obs.Histogram // op latency, ns
		connDown                    atomic.Bool
		wg                          sync.WaitGroup
		dialErr                     atomic.Pointer[error]
	)
	book := &tgtBook{m: make(map[string]*tgtCounters)}

	start := time.Now()
	var end time.Time
	if o.Dur > 0 {
		end = start.Add(o.Dur)
	}
	var stopProg chan struct{}
	if o.Interval > 0 && o.Progress != nil {
		stopProg = make(chan struct{})
		go func() {
			tick := time.NewTicker(o.Interval)
			defer tick.Stop()
			var prevOps uint64
			var prev obs.HistSnapshot
			for {
				select {
				case <-stopProg:
					return
				case <-tick.C:
					cur := hist.Snapshot()
					win := cur.Sub(prev)
					curOps := ops.Load()
					// Cumulative rejects by cause ride every line:
					// bursty runs show admission control live, not
					// just in the final report.
					fmt.Fprintf(o.Progress,
						"lpload: t=%.1fs ops=%d (%.0f ops/s) p50 %.0fµs p99 %.0fµs p999 %.0fµs max %.0fµs rej ov/exp/full=%d/%d/%d\n",
						time.Since(start).Seconds(), curOps,
						float64(curOps-prevOps)/o.Interval.Seconds(),
						float64(win.Quantile(0.50))/1e3, float64(win.Quantile(0.99))/1e3,
						float64(win.Quantile(0.999))/1e3, float64(win.Max)/1e3,
						overloads.Load(), expired.Load(), full.Load())
					prev, prevOps = cur, curOps
				}
			}
		}()
	}
	// Each connection is a slot machine, not a goroutine-per-op fan-out:
	// the sequence number IS the slot index, so an in-flight op costs a
	// slot in a fixed array instead of a goroutine, a channel, and a map
	// entry. The worker's main loop is the sole owner of the slots; per-
	// target reader goroutines push (seq, status) events into one merged
	// channel and never touch slot state, so a late response from a
	// connection that already died is recognized (its generation stamp
	// mismatches) and dropped instead of corrupting a reissued op.
	// Request frames leave through per-target bufio.Writers flushed only
	// when the window fills or the worker is about to block, so a full
	// window leaves in one or two syscalls.
	for w := 0; w < o.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lw := &loadWorker{
				o: o, w: w, base: addr, book: book,
				end: end, mix: mix,
				hist: &hist, ops: &ops, acked: &acked, gets: &gets,
				notFound: &notFound, overloads: &overloads, retries: &retries,
				expired: &expired, full: &full, moved: &moved, errs: &errs,
				resets: &resets,
			}
			if !lw.run() {
				connDown.Store(true)
			}
			if lw.firstDialErr != nil {
				dialErr.CompareAndSwap(nil, &lw.firstDialErr)
			}
		}(w)
	}
	wg.Wait()
	if stopProg != nil {
		close(stopProg)
	}
	elapsed := time.Since(start)

	if ep := dialErr.Load(); ep != nil && ops.Load() == 0 {
		return LoadReport{}, *ep
	}
	rep := LoadReport{
		Conns: o.Conns, Window: o.Window,
		ElapsedS: elapsed.Seconds(),
		Ops:      ops.Load(), AckedPuts: acked.Load(),
		Gets: gets.Load(), NotFound: notFound.Load(),
		Overloads: overloads.Load(), Retries: retries.Load(),
		Expired: expired.Load(), Full: full.Load(), Moved: moved.Load(),
		Errors:     errs.Load(),
		ConnResets: resets.Load(),
		Partial:    connDown.Load(),
	}
	book.mu.Lock()
	for a, c := range book.m {
		rep.Targets = append(rep.Targets, TargetStat{
			Addr: a, Ops: c.ops.Load(), AckedPuts: c.acked.Load(),
			Dials: c.dials.Load(), Resets: c.resets.Load(),
		})
	}
	book.mu.Unlock()
	sort.Slice(rep.Targets, func(i, j int) bool { return rep.Targets[i].Addr < rep.Targets[j].Addr })
	if elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	}
	snap := hist.Snapshot()
	rep.P50us = float64(snap.Quantile(0.50)) / 1e3
	rep.P90us = float64(snap.Quantile(0.90)) / 1e3
	rep.P99us = float64(snap.Quantile(0.99)) / 1e3
	rep.MaxUs = float64(snap.Max) / 1e3
	return rep, nil
}

// lgSlot is one in-flight op. tgt/gen stamp which connection carried
// the last send, so responses and failure sweeps can tell a live
// occupancy from a stale one.
type lgSlot struct {
	op        byte
	key, val  uint64
	tid       uint64 // trace ID (0 = untraced); survives retries
	t0        time.Time
	attempt   int
	notBefore time.Time
	retry     bool
	tgt       *lgTarget
	gen       uint32
}

// lgEvent is a reader→main-loop message: a response for slot (≥0), a
// connection failure (slot == -1), or a hello answer (slot == -2,
// granted feature bits in val) for (tgt, gen).
type lgEvent struct {
	slot   int
	status byte
	val    uint64
	tgt    *lgTarget
	gen    uint32
}

// helloSeq is the sentinel sequence number of the per-connection
// OpHello frame — outside the slot space, so the reader routes its
// response to the handshake instead of a slot.
const helloSeq = ^uint32(0)

// lgTarget is one worker's connection to one backend address.
type lgTarget struct {
	addr    string
	conn    net.Conn
	bw      *bufio.Writer
	gen     uint32 // bumped per dial; stamps slots and events
	up      bool
	dirty   bool // has unflushed frames
	traceOK bool // this connection's hello granted FeatTrace

	dialAttempt int
	notBefore   time.Time // redial backoff deadline

	st *tgtCounters
}

type loadWorker struct {
	o    LoadOpts
	w    int
	base string
	book *tgtBook
	end  time.Time
	mix  workloads.KVMix

	hist                              *obs.Histogram
	ops, acked, gets, notFound        *atomic.Uint64
	overloads, retries, expired, full *atomic.Uint64
	moved, errs, resets               *atomic.Uint64

	targets      map[string]*lgTarget
	events       chan lgEvent
	slots        []lgSlot
	avail        []int
	retryQ       []int
	outstanding  int // slots issued and not completed (in flight or queued)
	wire         int // slots actually on a connection
	issued       int
	firstDialErr error

	// tidBase/tidSeq mint this worker's client-side trace IDs: wall-
	// derived high bits ORed with the worker index, so IDs are unique
	// across workers, runs, and the server's own tail-sampled mints.
	tidBase, tidSeq uint64
}

// route returns the backend address for key.
func (lw *loadWorker) route(key uint64) string {
	if lw.o.Route != nil {
		if a := lw.o.Route(key); a != "" {
			return a
		}
	}
	return lw.base
}

// target returns the (dialing if needed) connection for addr. A down
// target inside its redial backoff, or a failed dial, returns nil with
// the deadline to retry at.
func (lw *loadWorker) target(addr string, now time.Time) (*lgTarget, time.Time) {
	t := lw.targets[addr]
	if t == nil {
		t = &lgTarget{addr: addr, st: lw.book.get(addr)}
		lw.targets[addr] = t
	}
	if t.up {
		return t, time.Time{}
	}
	if now.Before(t.notBefore) {
		return nil, t.notBefore
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		if lw.firstDialErr == nil {
			lw.firstDialErr = err
		}
		t.dialAttempt++
		t.notBefore = now.Add(backoffDur(t.dialAttempt))
		// A refused dial is the same staleness signal as a dropped
		// connection: the routed-to node may be gone for good, and
		// only a topology refresh can re-point the affected keys. The
		// established-connection path (fail) already refreshes; a
		// worker that never got that far — e.g. reconnecting after
		// failover straight to the dead member's address — must too,
		// or it retries the dead address until MaxRetries runs out.
		if lw.o.Refresh != nil {
			lw.o.Refresh()
		}
		return nil, t.notBefore
	}
	t.conn = c
	t.bw = bufio.NewWriterSize(c, 1<<15)
	t.gen++
	t.up = true
	t.traceOK = false
	t.dialAttempt = 0
	t.st.dials.Add(1)
	if lw.o.TraceEvery > 0 {
		// Negotiate the trace extension before any op leaves on this
		// connection. Ops issued before the grant arrives simply go
		// unprefixed — their trace IDs stay client-local.
		var hf [ReqSize]byte
		EncodeReq(&hf, OpHello, helloSeq, FeatTrace, 0)
		_, _ = t.bw.Write(hf[:])
		t.dirty = true
	}
	gen := t.gen
	go func() {
		br := bufio.NewReaderSize(c, 1<<15)
		var rbuf [RespSize]byte
		for {
			if _, err := io.ReadFull(br, rbuf[:]); err != nil {
				lw.events <- lgEvent{slot: -1, tgt: t, gen: gen}
				return
			}
			seq, status, val := DecodeResp(&rbuf)
			if seq == helloSeq {
				lw.events <- lgEvent{slot: -2, status: status, val: val, tgt: t, gen: gen}
				continue
			}
			if int(seq) >= lw.o.Window {
				lw.events <- lgEvent{slot: -1, tgt: t, gen: gen}
				return
			}
			lw.events <- lgEvent{slot: int(seq), status: status, tgt: t, gen: gen}
		}
	}()
	return t, time.Time{}
}

// fail marks t's current connection dead and requeues (or abandons)
// every slot that was riding it.
func (lw *loadWorker) fail(t *lgTarget, gen uint32, now time.Time) {
	if !t.up || t.gen != gen {
		return // stale failure from an already-replaced connection
	}
	t.up = false
	t.dirty = false
	t.conn.Close()
	t.notBefore = now.Add(backoffDur(0))
	t.st.resets.Add(1)
	lw.resets.Add(1)
	if lw.o.Refresh != nil {
		lw.o.Refresh()
	}
	for i := range lw.slots {
		sl := &lw.slots[i]
		if sl.tgt != t || sl.gen != gen || sl.retry {
			continue
		}
		lw.wire--
		sl.tgt = nil
		if sl.attempt >= lw.o.MaxRetries {
			// Out of tries: abandon the op as a connection-level error.
			lw.errs.Add(1)
			lw.outstanding--
			lw.avail = append(lw.avail, i)
			continue
		}
		sl.attempt++
		lw.retries.Add(1)
		sl.retry = true
		sl.notBefore = now.Add(backoffDur(sl.attempt - 1))
		lw.retryQ = append(lw.retryQ, i)
	}
}

// complete settles a final response for slot id.
func (lw *loadWorker) complete(id int, status byte) {
	sl := &lw.slots[id]
	lw.ops.Add(1)
	now := time.Now()
	lw.hist.Observe(uint64(now.Sub(sl.t0).Nanoseconds()))
	if sl.tid != 0 && lw.o.Tracer != nil && lw.o.Tracer.Enabled() {
		lw.o.Tracer.Record(obs.EvClientAck, int32(lw.w), now.UnixNano(), sl.tid, uint64(status))
	}
	sl.tgt.st.ops.Add(1)
	switch {
	case sl.op == OpGet:
		lw.gets.Add(1)
		if status == StatusNotFound {
			lw.notFound.Add(1)
		}
	case status == StatusOK:
		lw.acked.Add(1)
		sl.tgt.st.acked.Add(1)
		if lw.o.OnAck != nil {
			lw.o.OnAck(lw.w, sl.key, sl.val)
		}
	case status == StatusExpired:
		lw.expired.Add(1)
	case status == StatusFull:
		lw.full.Add(1)
	}
	sl.attempt = 0
	sl.retry = false
	sl.tgt = nil
	lw.wire--
	lw.outstanding--
	lw.avail = append(lw.avail, id)
}

// handle processes one event. Reports false when the worker must die
// (connection failure without Reconnect).
func (lw *loadWorker) handle(ev lgEvent, now time.Time) bool {
	if ev.slot == -2 {
		// Hello answer: a grant enables the trace prefix for frames sent
		// on this connection generation from here on. A StatusBadRequest
		// (pre-hello server) leaves the extension off.
		if ev.tgt.up && ev.tgt.gen == ev.gen && ev.status == StatusOK {
			ev.tgt.traceOK = ev.val&FeatTrace != 0
		}
		return true
	}
	if ev.slot < 0 {
		live := ev.tgt.up && ev.tgt.gen == ev.gen
		lw.fail(ev.tgt, ev.gen, now)
		return lw.o.Reconnect || !live
	}
	sl := &lw.slots[ev.slot]
	if sl.tgt != ev.tgt || sl.gen != ev.gen || sl.retry {
		return true // stale response for a reissued slot
	}
	if ev.status == StatusOverload || ev.status == StatusMoved {
		if ev.status == StatusMoved {
			// The member's applied topology says it no longer owns the
			// key: this client's routing table is stale. Refresh it
			// before the retry re-routes — the backoff then rides out
			// the window where the new epoch hasn't reached the
			// promoted member yet.
			lw.moved.Add(1)
			if lw.o.Refresh != nil {
				lw.o.Refresh()
			}
		} else {
			lw.overloads.Add(1)
		}
		if sl.attempt < lw.o.MaxRetries {
			lw.retries.Add(1)
			sl.attempt++
			sl.notBefore = now.Add(backoffDur(sl.attempt - 1))
			sl.retry = true
			sl.tgt = nil
			lw.wire--
			lw.retryQ = append(lw.retryQ, ev.slot)
			return true
		}
	}
	lw.complete(ev.slot, ev.status)
	return true
}

// harvest drains pending events; when block is set it waits for at
// least one. Reports false when the worker must die.
func (lw *loadWorker) harvest(block bool) bool {
	if block {
		if !lw.handle(<-lw.events, time.Now()) {
			return false
		}
	}
	for {
		select {
		case ev := <-lw.events:
			if !lw.handle(ev, time.Now()) {
				return false
			}
		default:
			return true
		}
	}
}

// flushDirty flushes every target with buffered frames; a flush error
// is handled like any other connection failure.
func (lw *loadWorker) flushDirty(now time.Time) bool {
	for _, t := range lw.targets {
		if !t.up || !t.dirty {
			continue
		}
		t.dirty = false
		if t.bw.Flush() != nil {
			live := t.up
			lw.fail(t, t.gen, now)
			if !lw.o.Reconnect && live {
				return false
			}
		}
	}
	return true
}

// send routes and writes slot id. Reports (ok, retryAt): !ok with a
// zero retryAt is a fatal worker error; !ok with a deadline means the
// slot was requeued for later.
func (lw *loadWorker) send(id int, now time.Time) bool {
	sl := &lw.slots[id]
	t, retryAt := lw.target(lw.route(sl.key), now)
	if t == nil {
		if sl.attempt >= lw.o.MaxRetries {
			lw.errs.Add(1)
			lw.outstanding--
			lw.avail = append(lw.avail, id)
			return true
		}
		sl.attempt++
		lw.retries.Add(1)
		sl.retry = true
		sl.notBefore = retryAt
		lw.retryQ = append(lw.retryQ, id)
		return true
	}
	sl.retry = false
	sl.tgt = t
	sl.gen = t.gen
	// A traced slot goes out as [OpTraceCtx prefix][op frame], written
	// in one call so the pair crosses the router as a contiguous unit.
	// Skipped when the target never granted FeatTrace (old server).
	var f [2 * ReqSize]byte
	n := 0
	if sl.tid != 0 && t.traceOK {
		EncodeReq((*[ReqSize]byte)(f[:ReqSize]), OpTraceCtx, uint32(id), sl.tid, 0)
		n = ReqSize
	}
	EncodeReq((*[ReqSize]byte)(f[n:n+ReqSize]), sl.op, uint32(id), sl.key, sl.val)
	n += ReqSize
	lw.wire++
	t.dirty = true
	if _, err := t.bw.Write(f[:n]); err != nil {
		live := t.up
		lw.fail(t, t.gen, now)
		if !lw.o.Reconnect && live {
			return false
		}
	}
	return true
}

// run is the worker main loop. Reports false when the run was cut
// short by a connection failure.
func (lw *loadWorker) run() bool {
	o := lw.o
	lw.targets = make(map[string]*lgTarget)
	// Events never block the readers: at most Window responses can be
	// in flight plus one failure event per target connection.
	lw.events = make(chan lgEvent, o.Window+64)
	lw.slots = make([]lgSlot, o.Window)
	lw.avail = make([]int, o.Window)
	for i := range lw.avail {
		lw.avail[i] = i
	}
	lw.retryQ = make([]int, 0, o.Window)
	lw.tidBase = uint64(time.Now().UnixNano())<<12 | uint64(lw.w&0xfff)

	var gen *workloads.KVGen
	if !o.InsertOnly {
		gen = workloads.NewKVGen(o.Seed, lw.w%o.Streams, o.Keys, lw.mix, o.Dist)
	}

	okRun := true
	// Legacy dial check: without Reconnect, fail fast when the very
	// first connection cannot be established.
	if !o.Reconnect {
		if t, _ := lw.target(lw.route(func() uint64 {
			if o.InsertOnly {
				k, _ := insertKey(o, lw.w, 0)
				return k
			}
			return workloads.KVKey(lw.w%o.Streams, 0)
		}()), time.Now()); t == nil {
			return false
		}
	}

loop:
	for {
		if !lw.harvest(false) {
			okRun = false
			break
		}
		now := time.Now()
		fresh := (o.Ops == 0 || lw.issued < o.Ops) && (lw.end.IsZero() || now.Before(lw.end))
		if !fresh && lw.outstanding == 0 {
			break
		}
		switch {
		case len(lw.retryQ) > 0 && !now.Before(lw.slots[lw.retryQ[0]].notBefore):
			id := lw.retryQ[0]
			copy(lw.retryQ, lw.retryQ[1:])
			lw.retryQ = lw.retryQ[:len(lw.retryQ)-1]
			if !lw.send(id, now) {
				okRun = false
				break loop
			}
		case fresh && len(lw.avail) > 0:
			id := lw.avail[len(lw.avail)-1]
			lw.avail = lw.avail[:len(lw.avail)-1]
			sl := &lw.slots[id]
			if o.InsertOnly {
				sl.op = OpPut
				sl.key, sl.val = insertKey(o, lw.w, lw.issued)
			} else {
				kv := gen.Next()
				if kv.Kind == workloads.KVRead {
					sl.op, sl.key, sl.val = OpGet, kv.Key, 0
				} else {
					sl.op, sl.key, sl.val = OpPut, kv.Key, kv.Val
				}
			}
			sl.tid = 0
			if o.TraceEvery > 0 && lw.issued%o.TraceEvery == 0 {
				lw.tidSeq++
				sl.tid = lw.tidBase + lw.tidSeq
				if o.Tracer != nil && o.Tracer.Enabled() {
					o.Tracer.Record(obs.EvClientSend, int32(lw.w), now.UnixNano(), sl.tid, sl.key)
				}
			}
			lw.issued++
			lw.outstanding++
			if sl.op == OpPut && o.OnSend != nil {
				o.OnSend(lw.w, sl.key, sl.val)
			}
			sl.attempt = 0
			sl.t0 = now
			if !lw.send(id, now) {
				okRun = false
				break loop
			}
		default:
			// Window full, draining, or every runnable slot is waiting
			// out a backoff: everything written so far must leave now,
			// because the next event is a response (or a deadline).
			if !lw.flushDirty(now) {
				okRun = false
				break loop
			}
			if lw.wire > 0 {
				if !lw.harvest(true) {
					okRun = false
					break loop
				}
			} else if len(lw.retryQ) > 0 {
				// Nothing on the wire; sleep to the earliest deadline.
				earliest := lw.slots[lw.retryQ[0]].notBefore
				for _, id := range lw.retryQ[1:] {
					if nb := lw.slots[id].notBefore; nb.Before(earliest) {
						earliest = nb
					}
				}
				if d := time.Until(earliest); d > 0 {
					if d > 50*time.Millisecond {
						d = 50 * time.Millisecond
					}
					time.Sleep(d)
				}
			}
		}
	}
	lw.flushDirty(time.Now())
	for _, t := range lw.targets {
		if t.up {
			t.conn.Close()
		}
	}
	if !okRun {
		lw.errs.Add(uint64(lw.outstanding))
	}
	return okRun
}

// backoffDur returns the jittered exponential delay for a retry
// attempt. The shift saturates: past attempt 6 the delay is pinned at
// the 10ms cap rather than overflowing the duration.
func backoffDur(attempt int) time.Duration {
	base := 10 * time.Millisecond
	if attempt < 6 {
		base = 200 * time.Microsecond << uint(attempt)
	}
	return base/2 + time.Duration(rand.Int64N(int64(base)))
}
