package kvserve

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lazyp/internal/obs"
	"lazyp/internal/workloads"
)

// LoadOpts drives RunLoad. Streams/Keys/Seed must match the server's
// Config so reads hit the preloaded key space; connection w replays
// kvgen stream w mod Streams. InsertOnly switches to a unique-key
// insert stream per connection (keys disjoint from the preload and
// from every other connection), the shape the crash test needs.
type LoadOpts struct {
	Conns  int
	Window int // in-flight ops per connection
	Ops    int // ops per connection; 0 = run until Dur elapses
	Dur    time.Duration

	Mix  string // kvgen mix: "a", "b", "c", "d"
	Dist string // "zipfian" or "uniform"

	Streams int
	Keys    int
	Seed    uint64

	InsertOnly bool
	MaxRetries int // retries per op on StatusOverload (default 8)

	// Interval, when positive, emits a windowed progress line to
	// Progress every Interval: ops completed, window throughput, and
	// window p50/p99 from the client-side latency histogram. Nil
	// Progress disables the reporter regardless of Interval.
	Interval time.Duration
	Progress io.Writer

	// OnSend fires before an op's first send; OnAck fires when a put
	// is acked StatusOK. Both may be nil; both may be called from many
	// goroutines. The crash test records sent and acked puts here.
	OnSend func(conn int, key, val uint64)
	OnAck  func(conn int, key, val uint64)
}

// LoadReport is RunLoad's result. Latencies are measured per op from
// first send to final response (retries included) in microseconds;
// percentiles come from a client-side log-scale histogram, so they are
// bucket upper bounds (≤12.5% relative error), not exact order
// statistics.
type LoadReport struct {
	Conns      int     `json:"conns"`
	Window     int     `json:"window"`
	ElapsedS   float64 `json:"elapsed_s"`
	Ops        uint64  `json:"ops"` // completed ops, any final status
	AckedPuts  uint64  `json:"acked_puts"`
	Gets       uint64  `json:"gets"`
	NotFound   uint64  `json:"not_found"`
	Overloads  uint64  `json:"overloads"` // StatusOverload responses seen
	Retries    uint64  `json:"retries"`
	Expired    uint64  `json:"expired"`
	Full       uint64  `json:"full"`
	Errors     uint64  `json:"errors"` // connection-level failures
	Throughput float64 `json:"throughput_ops_s"`
	P50us      float64 `json:"p50_us"`
	P90us      float64 `json:"p90_us"`
	P99us      float64 `json:"p99_us"`
	MaxUs      float64 `json:"max_us"`

	// Partial is set when a connection failed mid-run (dial error with
	// surviving peers, a send/receive error, or the server going away):
	// the counts and latencies above cover only the ops that completed.
	Partial bool `json:"partial,omitempty"`
}

func (o LoadOpts) withDefaults() LoadOpts {
	if o.Conns == 0 {
		o.Conns = 2
	}
	if o.Window == 0 {
		o.Window = 32
	}
	if o.Ops == 0 && o.Dur == 0 {
		o.Ops = 1000
	}
	if o.Mix == "" {
		o.Mix = "a"
	}
	if o.Dist == "" {
		o.Dist = "zipfian"
	}
	if o.Streams == 0 {
		o.Streams = 4
	}
	if o.Keys == 0 {
		o.Keys = 2048
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 8
	}
	return o
}

// insertKey is connection w's i-th unique key under InsertOnly: stream
// ids past the server's preloaded streams, so the keys collide with
// nothing.
func insertKey(o LoadOpts, conn, i int) (key, val uint64) {
	key = workloads.KVKey(o.Streams+conn, i)
	return key, workloads.KVInitVal(o.Seed^0x9e3779b97f4a7c15, key)
}

// RunLoad drives an open-window load against addr: Conns pipelined
// connections, each keeping Window ops in flight, retrying overloads
// with jittered exponential backoff. It returns the merged report.
func RunLoad(addr string, o LoadOpts) (LoadReport, error) {
	o = o.withDefaults()
	mix, ok := workloads.KVMixByName(o.Mix)
	if !ok {
		return LoadReport{}, fmt.Errorf("kvserve: unknown mix %q", o.Mix)
	}

	var (
		ops, acked, gets, notFound  atomic.Uint64
		overloads, retries, expired atomic.Uint64
		full, errs                  atomic.Uint64
		hist                        obs.Histogram // op latency, ns
		connDown                    atomic.Bool
		wg                          sync.WaitGroup
		dialErr                     atomic.Pointer[error]
	)

	start := time.Now()
	var end time.Time
	if o.Dur > 0 {
		end = start.Add(o.Dur)
	}
	var stopProg chan struct{}
	if o.Interval > 0 && o.Progress != nil {
		stopProg = make(chan struct{})
		go func() {
			tick := time.NewTicker(o.Interval)
			defer tick.Stop()
			var prevOps uint64
			var prev obs.HistSnapshot
			for {
				select {
				case <-stopProg:
					return
				case <-tick.C:
					cur := hist.Snapshot()
					win := cur.Sub(prev)
					curOps := ops.Load()
					fmt.Fprintf(o.Progress,
						"lpload: t=%.1fs ops=%d (%.0f ops/s) p50 %.0fµs p99 %.0fµs\n",
						time.Since(start).Seconds(), curOps,
						float64(curOps-prevOps)/o.Interval.Seconds(),
						float64(win.Quantile(0.50))/1e3, float64(win.Quantile(0.99))/1e3)
					prev, prevOps = cur, curOps
				}
			}
		}()
	}
	// Each connection is a slot machine, not a goroutine-per-op fan-out:
	// the sequence number IS the slot index, so an in-flight op costs a
	// slot in a fixed array instead of a goroutine, a channel, and a map
	// entry. One issuer goroutine writes request frames through a
	// bufio.Writer — flushing only when the window fills or it is about
	// to block, so a full window leaves in one or two syscalls — and one
	// reader goroutine decodes responses straight back into the slots.
	// This matters for what lpload claims to measure: the old engine's
	// per-op allocations and one-write-per-request syscalls made the
	// client the bottleneck before the server was.
	for w := 0; w < o.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				dialErr.CompareAndSwap(nil, &err)
				connDown.Store(true)
				return
			}
			defer c.Close()
			var gen *workloads.KVGen
			if !o.InsertOnly {
				gen = workloads.NewKVGen(o.Seed, w%o.Streams, o.Keys, mix, o.Dist)
			}

			type lgSlot struct {
				op        byte
				key, val  uint64
				t0        time.Time
				attempt   int
				notBefore time.Time
				retry     bool
				// ready makes the issuer→reader ownership handoff a
				// happens-before edge: the issuer bumps it (release)
				// after filling the slot, the reader loads it (acquire)
				// before reading. The reverse handoff rides backCh. The
				// TCP round trip orders the two in real time but is
				// invisible to the race detector.
				ready atomic.Uint32
			}
			slots := make([]lgSlot, o.Window)
			// backCh returns slot ownership reader → issuer: either the
			// op completed (slot free for fresh work) or it drew an
			// overload and wants reissuing after its backoff deadline.
			backCh := make(chan int, o.Window)
			readerErr := make(chan error, 1)

			go func() {
				br := bufio.NewReaderSize(c, 1<<15)
				var rbuf [respSize]byte
				for {
					if _, err := io.ReadFull(br, rbuf[:]); err != nil {
						readerErr <- err
						return
					}
					seq, status, _ := decodeResp(&rbuf)
					if int(seq) >= o.Window {
						readerErr <- fmt.Errorf("kvserve: response seq %d outside window", seq)
						return
					}
					sl := &slots[seq]
					sl.ready.Load() // acquire the issuer's slot writes
					if status == StatusOverload {
						overloads.Add(1)
						if sl.attempt < o.MaxRetries {
							retries.Add(1)
							sl.attempt++
							sl.notBefore = time.Now().Add(backoffDur(sl.attempt - 1))
							sl.retry = true
							backCh <- int(seq)
							continue
						}
					}
					ops.Add(1)
					hist.Observe(uint64(time.Since(sl.t0).Nanoseconds()))
					switch {
					case sl.op == opGet:
						gets.Add(1)
						if status == StatusNotFound {
							notFound.Add(1)
						}
					case status == StatusOK:
						acked.Add(1)
						if o.OnAck != nil {
							o.OnAck(w, sl.key, sl.val)
						}
					case status == StatusExpired:
						expired.Add(1)
					case status == StatusFull:
						full.Add(1)
					}
					sl.attempt = 0
					sl.retry = false
					backCh <- int(seq)
				}
			}()

			bw := bufio.NewWriterSize(c, 1<<15)
			avail := make([]int, o.Window)
			for i := range avail {
				avail[i] = i
			}
			retryQ := make([]int, 0, o.Window)
			outstanding, issued := 0, 0
			failed := false

			writeSlot := func(id int) bool {
				sl := &slots[id]
				sl.ready.Add(1) // release the slot's fields to the reader
				var f [reqSize]byte
				encodeReq(&f, sl.op, uint32(id), sl.key, sl.val)
				_, werr := bw.Write(f[:])
				return werr == nil
			}
			take := func(id int) {
				if slots[id].retry {
					retryQ = append(retryQ, id)
				} else {
					avail = append(avail, id)
					outstanding--
				}
			}
			// harvest collects returned slots; blocking waits for at
			// least one (or a reader failure). Reports !ok on failure.
			harvest := func(block bool) bool {
				if block {
					select {
					case id := <-backCh:
						take(id)
					case <-readerErr:
						return false
					}
				}
				for {
					select {
					case id := <-backCh:
						take(id)
					default:
						return true
					}
				}
			}

			for {
				if !harvest(false) {
					failed = true
				}
				if failed {
					break
				}
				now := time.Now()
				fresh := (o.Ops == 0 || issued < o.Ops) && (end.IsZero() || now.Before(end))
				if !fresh && outstanding == 0 {
					break
				}
				switch {
				case len(retryQ) > 0:
					id := retryQ[0]
					copy(retryQ, retryQ[1:])
					retryQ = retryQ[:len(retryQ)-1]
					sl := &slots[id]
					if d := sl.notBefore.Sub(now); d > 0 {
						if bw.Flush() != nil {
							failed = true
							break
						}
						time.Sleep(d)
					}
					sl.retry = false
					if !writeSlot(id) {
						failed = true
					}
				case fresh && len(avail) > 0:
					id := avail[len(avail)-1]
					avail = avail[:len(avail)-1]
					sl := &slots[id]
					if o.InsertOnly {
						sl.op = opPut
						sl.key, sl.val = insertKey(o, w, issued)
					} else {
						kv := gen.Next()
						if kv.Kind == workloads.KVRead {
							sl.op, sl.key, sl.val = opGet, kv.Key, 0
						} else {
							sl.op, sl.key, sl.val = opPut, kv.Key, kv.Val
						}
					}
					issued++
					outstanding++
					if sl.op == opPut && o.OnSend != nil {
						o.OnSend(w, sl.key, sl.val)
					}
					sl.t0 = time.Now()
					if !writeSlot(id) {
						failed = true
					}
				default:
					// Window full, or draining with ops still in flight:
					// everything written so far must leave now, because
					// the next event is a response.
					if bw.Flush() != nil {
						failed = true
						break
					}
					if !harvest(true) {
						failed = true
					}
				}
			}
			bw.Flush()
			if failed {
				connDown.Store(true)
				errs.Add(uint64(outstanding))
			}
		}(w)
	}
	wg.Wait()
	if stopProg != nil {
		close(stopProg)
	}
	elapsed := time.Since(start)

	if ep := dialErr.Load(); ep != nil && ops.Load() == 0 {
		return LoadReport{}, *ep
	}
	rep := LoadReport{
		Conns: o.Conns, Window: o.Window,
		ElapsedS: elapsed.Seconds(),
		Ops:      ops.Load(), AckedPuts: acked.Load(),
		Gets: gets.Load(), NotFound: notFound.Load(),
		Overloads: overloads.Load(), Retries: retries.Load(),
		Expired: expired.Load(), Full: full.Load(),
		Errors:  errs.Load(),
		Partial: connDown.Load(),
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	}
	snap := hist.Snapshot()
	rep.P50us = float64(snap.Quantile(0.50)) / 1e3
	rep.P90us = float64(snap.Quantile(0.90)) / 1e3
	rep.P99us = float64(snap.Quantile(0.99)) / 1e3
	rep.MaxUs = float64(snap.Max) / 1e3
	return rep, nil
}

// backoffDur returns the jittered exponential delay for a retry attempt.
func backoffDur(attempt int) time.Duration {
	base := 200 * time.Microsecond << uint(attempt)
	if base > 10*time.Millisecond {
		base = 10 * time.Millisecond
	}
	return base/2 + time.Duration(rand.Int64N(int64(base)))
}
