package lp

import (
	"fmt"

	"lazyp/internal/checksum"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// RegionSet is a declarative recovery driver for workloads whose LP
// regions are *idempotent* — §III-E: "If the regions coincide with LP
// regions, the recovery code can be trivially constructed since it is
// identical to the region code itself." A program registers each
// region's output addresses and its recompute function once; RegionSet
// then provides both halves of Lazy Persistency mechanically:
//
//   - normal execution: Execute runs the region body under the LP
//     strategy (checksum folding + lazy table commit);
//   - recovery: Recover revalidates every region against its stored
//     checksum in registration (dependence) order and re-executes the
//     ones that do not verify, with Eager Persistency.
//
// Regions must be registered in an order that respects data
// dependences (a region may read only pristine inputs and outputs of
// earlier-registered regions); within that order, idempotence makes
// re-execution always safe. Non-idempotent kernels (TMM's accumulation,
// Gauss's in-place elimination) need bespoke recovery and cannot use
// RegionSet — see internal/workloads for those patterns.
type RegionSet struct {
	table *Table
	kind  checksum.Kind
	defs  []regionDef
}

type regionDef struct {
	name string
	// outputs lists every address the region stores, in store order.
	outputs func() []memsim.Addr
	// body recomputes the region's outputs through ts.
	body func(c pmem.Ctx, ts ThreadStrategy)
}

// NewRegionSet creates an empty set that will allocate a table sized to
// the registered regions on Seal.
func NewRegionSet(kind checksum.Kind) *RegionSet {
	return &RegionSet{kind: kind}
}

// Add registers a region and returns its key. outputs must enumerate
// the region's stored addresses in the exact order body stores them.
func (rs *RegionSet) Add(name string, outputs func() []memsim.Addr, body func(c pmem.Ctx, ts ThreadStrategy)) int {
	if rs.table != nil {
		panic("lp: RegionSet.Add after Seal")
	}
	rs.defs = append(rs.defs, regionDef{name: name, outputs: outputs, body: body})
	return len(rs.defs) - 1
}

// Seal allocates the persistent checksum table (one slot per region) on
// m. Call once, after every Add and before any Execute or Recover.
func (rs *RegionSet) Seal(m *memsim.Memory, name string) {
	if rs.table != nil {
		panic("lp: RegionSet sealed twice")
	}
	if len(rs.defs) == 0 {
		panic("lp: RegionSet has no regions")
	}
	rs.table = NewTable(m, name, len(rs.defs))
}

// Table exposes the sealed checksum table.
func (rs *RegionSet) Table() *Table {
	rs.mustSealed()
	return rs.table
}

// Len returns the number of registered regions.
func (rs *RegionSet) Len() int { return len(rs.defs) }

// Name returns the registered name of region key.
func (rs *RegionSet) Name(key int) string { return rs.defs[key].name }

func (rs *RegionSet) mustSealed() {
	if rs.table == nil {
		panic("lp: RegionSet used before Seal")
	}
}

// Execute runs region key under ts (normal lazy execution when ts is an
// LP thread strategy).
func (rs *RegionSet) Execute(c pmem.Ctx, ts ThreadStrategy, key int) {
	rs.mustSealed()
	d := rs.defs[key]
	ts.Begin(c, key)
	d.body(c, ts)
	ts.End(c)
}

// ExecuteAll runs every region in order under ts — a convenience for
// single-threaded programs; parallel programs partition keys themselves.
func (rs *RegionSet) ExecuteAll(c pmem.Ctx, ts ThreadStrategy) {
	for key := range rs.defs {
		rs.Execute(c, ts, key)
	}
}

// Verify recomputes region key's checksum from memory and compares it
// with the stored one.
func (rs *RegionSet) Verify(c pmem.Ctx, key int) bool {
	rs.mustSealed()
	return rs.table.Matches(c, key, SumLoads(c, rs.kind, rs.defs[key].outputs()))
}

// RecoverReport summarizes one Recover pass.
type RecoverReport struct {
	Verified   int // regions whose checksum matched surviving data
	Recomputed int // regions re-executed eagerly
}

func (r RecoverReport) String() string {
	return fmt.Sprintf("%d regions verified, %d recomputed", r.Verified, r.Recomputed)
}

// Recover walks every region in registration order after a crash:
// regions that verify are kept; the rest are re-executed under an
// eager strategy (data flushed and fenced, checksum committed eagerly)
// so that a second failure during recovery loses nothing (§III-E).
func (rs *RegionSet) Recover(c pmem.Ctx) RecoverReport {
	rs.mustSealed()
	var rep RecoverReport
	eager := &eagerRegionTS{
		state: checksum.New(rs.kind),
		cost:  rs.kind.CostPerAdd(),
		table: rs.table,
	}
	for key := range rs.defs {
		if rs.Verify(c, key) {
			rep.Verified++
			continue
		}
		rep.Recomputed++
		rs.Execute(c, eager, key)
	}
	return rep
}

// eagerRegionTS is a self-contained eager thread strategy (equivalent
// to ep.EagerLP, duplicated minimally here to keep lp free of an import
// cycle with ep): stores are tracked per line and flushed at region
// end; the checksum commits eagerly.
type eagerRegionTS struct {
	state checksum.State
	cost  int
	key   int
	table *Table
	lines []memsim.Addr
	seen  map[memsim.Addr]struct{}
}

func (t *eagerRegionTS) Begin(c pmem.Ctx, key int) {
	t.key = key
	t.state.Reset()
	t.lines = t.lines[:0]
	if t.seen == nil {
		t.seen = make(map[memsim.Addr]struct{}, 64)
	}
	clear(t.seen)
	c.Compute(1)
}

func (t *eagerRegionTS) Store64(c pmem.Ctx, a memsim.Addr, v uint64) {
	c.Store64(a, v)
	t.state.Add(v)
	c.Compute(t.cost + 1)
	la := memsim.LineOf(a)
	if _, ok := t.seen[la]; !ok {
		t.seen[la] = struct{}{}
		t.lines = append(t.lines, la)
	}
}

func (t *eagerRegionTS) StoreF(c pmem.Ctx, a memsim.Addr, v float64) {
	t.Store64(c, a, mathFloat64bits(v))
}

func (t *eagerRegionTS) End(c pmem.Ctx) {
	for _, la := range t.lines {
		c.Flush(la)
	}
	c.Fence()
	t.table.StoreSumEager(c, t.key, t.state.Sum())
}
