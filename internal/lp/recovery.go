package lp

import (
	"lazyp/internal/checksum"
	"lazyp/internal/memsim"
	"lazyp/internal/obs"
	"lazyp/internal/pmem"
)

// Verifier bundles a table with the checksum code used to fill it and
// provides the detection half of recovery (Figure 5(c)): recompute a
// region's checksum from surviving data and compare with the stored one.
type Verifier struct {
	Table *Table
	Kind  checksum.Kind

	// Matches/Mismatches, when non-nil, count checksum-region verify
	// outcomes through VerifyAddrs (left nil by the deterministic
	// kernel harness; costs one branch per verified region).
	Matches, Mismatches *obs.Counter
}

// SumLoads recomputes a checksum by reading the given addresses through
// ctx in order. Recovery must feed values in the same order normal
// execution folded them (checksum codes other than Modular/Parity are
// order-sensitive).
func SumLoads(c pmem.Ctx, kind checksum.Kind, addrs []memsim.Addr) uint64 {
	s := checksum.New(kind)
	cost := kind.CostPerAdd()
	for _, a := range addrs {
		s.Add(c.Load64(a))
		c.Compute(cost)
	}
	return s.Sum()
}

// VerifyAddrs reports whether region key's stored checksum matches the
// data now at addrs (IsMatchingChecksum in the paper's Figure 9).
func (v Verifier) VerifyAddrs(c pmem.Ctx, key int, addrs []memsim.Addr) bool {
	ok := v.Table.Matches(c, key, SumLoads(c, v.Kind, addrs))
	if ok {
		if v.Matches != nil {
			v.Matches.Inc()
		}
	} else if v.Mismatches != nil {
		v.Mismatches.Inc()
	}
	return ok
}

// RegionSummer incrementally recomputes one region's checksum during
// recovery when the values are produced by recomputation rather than
// read back (used by repair code that re-executes a region eagerly and
// re-commits its checksum).
type RegionSummer struct {
	state checksum.State
	cost  int
}

// NewRegionSummer returns a fresh summer for the given code.
func NewRegionSummer(kind checksum.Kind) *RegionSummer {
	return &RegionSummer{state: checksum.New(kind), cost: kind.CostPerAdd()}
}

// Reset clears the running checksum.
func (r *RegionSummer) Reset() { r.state.Reset() }

// Add folds a recomputed value, charging the timing model.
func (r *RegionSummer) Add(c pmem.Ctx, w uint64) {
	r.state.Add(w)
	c.Compute(r.cost)
}

// Sum finalizes the recomputed checksum.
func (r *RegionSummer) Sum() uint64 { return r.state.Sum() }
