package lp

import (
	"testing"

	"lazyp/internal/checksum"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
	"lazyp/internal/sim"
)

// runOnSim executes body on a single simulated thread over m.
func runOnSim(t *testing.T, m *memsim.Memory, body func(pmem.Ctx)) {
	t.Helper()
	eng := sim.New(sim.DefaultConfig(1), m)
	eng.Run(func(th *sim.Thread) { body(th) })
}

// buildRegionSet makes a tiny two-region idempotent computation:
// region 0: out[i] = in[i]*2; region 1: out2[i] = out[i] + 1 (depends
// on region 0 — registration order is the dependence order).
func buildRegionSet(m *memsim.Memory) (*RegionSet, pmem.F64, pmem.F64, pmem.F64) {
	in := pmem.AllocF64(m, "in", 16)
	out := pmem.AllocF64(m, "out", 16)
	out2 := pmem.AllocF64(m, "out2", 16)
	in.Fill(m, func(i int) float64 { return float64(i) })

	rs := NewRegionSet(checksum.Modular)
	addrsOf := func(v pmem.F64) func() []memsim.Addr {
		return func() []memsim.Addr {
			a := make([]memsim.Addr, v.N)
			for i := range a {
				a[i] = v.Addr(i)
			}
			return a
		}
	}
	rs.Add("double", addrsOf(out), func(c pmem.Ctx, ts ThreadStrategy) {
		for i := 0; i < 16; i++ {
			ts.StoreF(c, out.Addr(i), in.Load(c, i)*2)
		}
	})
	rs.Add("inc", addrsOf(out2), func(c pmem.Ctx, ts ThreadStrategy) {
		for i := 0; i < 16; i++ {
			ts.StoreF(c, out2.Addr(i), out.Load(c, i)+1)
		}
	})
	rs.Seal(m, "rs.cksums")
	return rs, in, out, out2
}

func TestRegionSetExecuteAndVerify(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	rs, _, out, out2 := buildRegionSet(m)
	c := &pmem.Native{Mem: m}
	strat := NewLP(rs.Table(), checksum.Modular, 1)
	rs.ExecuteAll(c, strat.Thread(0))

	for i := 0; i < 16; i++ {
		if out.Load(c, i) != float64(i)*2 || out2.Load(c, i) != float64(i)*2+1 {
			t.Fatalf("wrong outputs at %d", i)
		}
	}
	for key := 0; key < rs.Len(); key++ {
		if !rs.Verify(c, key) {
			t.Fatalf("region %s does not verify after execution", rs.Name(key))
		}
	}
}

func TestRegionSetRecoverAfterPartialPersistence(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	rs, _, out, out2 := buildRegionSet(m)
	c := &pmem.Native{Mem: m}
	strat := NewLP(rs.Table(), checksum.Modular, 1)
	rs.ExecuteAll(c, strat.Thread(0))

	// Persist region 0's data and checksum; lose region 1 entirely
	// (native ctx never persists, so only explicit Persist survives).
	m.Persist(out.Base, 16*8)
	m.Persist(rs.Table().SlotAddr(0), 8)
	m.Crash()

	if out2.Load(c, 0) != 0 {
		t.Fatal("crash should have wiped region 1's output")
	}
	rep := rs.Recover(c)
	if rep.Verified != 1 || rep.Recomputed != 1 {
		t.Fatalf("report = %+v, want 1 verified / 1 recomputed", rep)
	}
	for i := 0; i < 16; i++ {
		if out2.Load(c, i) != float64(i)*2+1 {
			t.Fatalf("recovery produced wrong out2[%d]", i)
		}
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestRegionSetRecoverIsIdempotent(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	rs, _, _, _ := buildRegionSet(m)
	c := &pmem.Native{Mem: m}
	m.Crash() // nothing ever ran: everything recomputes
	rep1 := rs.Recover(c)
	if rep1.Recomputed != 2 {
		t.Fatalf("first recover recomputed %d, want 2", rep1.Recomputed)
	}
	// Second pass (e.g. after a crash during recovery): repairs were
	// eager, so everything verifies — but re-running is always safe.
	rep2 := rs.Recover(c)
	if rep2.Recomputed != 0 || rep2.Verified != 2 {
		t.Fatalf("second recover = %+v, want all verified", rep2)
	}
}

func TestRegionSetMisusePanics(t *testing.T) {
	rs := NewRegionSet(checksum.Modular)
	mustPanic(t, "Execute before Seal", func() {
		rs.Execute(nil, nil, 0)
	})
	m := memsim.NewMemory(1 << 16)
	mustPanic(t, "Seal with no regions", func() {
		rs.Seal(m, "x")
	})
	rs.Add("r", func() []memsim.Addr { return nil }, func(pmem.Ctx, ThreadStrategy) {})
	rs.Seal(m, "x")
	mustPanic(t, "Add after Seal", func() {
		rs.Add("late", nil, nil)
	})
	mustPanic(t, "double Seal", func() {
		rs.Seal(m, "y")
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", what)
		}
	}()
	f()
}

// TestRegionSetOnSimulator runs the same flow on the simulated machine
// with a real crash: the eager repairs must be durable.
func TestRegionSetOnSimulator(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	rs, _, _, out2 := buildRegionSet(m)
	// Run nothing at all; "crash"; recover on the simulator, where
	// flushes and fences have real durability semantics.
	m.Crash()
	runOnSim(t, m, func(c pmem.Ctx) {
		rs.Recover(c)
	})
	m.Crash() // power fails again right after recovery
	cn := &pmem.Native{Mem: m}
	for i := 0; i < 16; i++ {
		if out2.Load(cn, i) != float64(i)*2+1 {
			t.Fatalf("eager repair was not durable at %d", i)
		}
	}
}

// buildParallelRegionSet makes nRegions independent one-line regions
// (region r: out[r][i] = 2*in[r][i] + r) suitable for multi-threaded
// execution: outputs are disjoint and line-aligned, bodies read only
// pristine inputs, so any subset may be re-executed in any order.
func buildParallelRegionSet(m *memsim.Memory, nRegions int) (*RegionSet, pmem.F64, pmem.F64) {
	const w = 8 // one 64-byte line per region
	in := pmem.AllocF64(m, "pin", nRegions*w)
	out := pmem.AllocF64(m, "pout", nRegions*w)
	in.Fill(m, func(i int) float64 { return float64(i%97) + 1 })

	rs := NewRegionSet(checksum.Modular)
	for r := 0; r < nRegions; r++ {
		r := r
		rs.Add("r", func() []memsim.Addr {
			a := make([]memsim.Addr, w)
			for i := range a {
				a[i] = out.Addr(r*w + i)
			}
			return a
		}, func(c pmem.Ctx, ts ThreadStrategy) {
			for i := 0; i < w; i++ {
				c.Compute(16) // give bodies weight so the sweep has room
				ts.StoreF(c, out.Addr(r*w+i), 2*in.Load(c, r*w+i)+float64(r))
			}
		})
	}
	rs.Seal(m, "prs.cksums")
	return rs, in, out
}

// runRegionsParallel executes every region on an nthreads-wide engine,
// keys partitioned round-robin, optionally crashing.
func runRegionsParallel(rs *RegionSet, m *memsim.Memory, nthreads int, cfg sim.Config) (crashed bool, cycles int64) {
	cfg.Threads = nthreads
	eng := sim.New(cfg, m)
	strat := NewLP(rs.Table(), checksum.Modular, nthreads)
	crashed = eng.Run(func(th *sim.Thread) {
		ts := strat.Thread(th.ThreadID())
		for key := th.ThreadID(); key < rs.Len(); key += nthreads {
			rs.Execute(th, ts, key)
		}
	})
	return crashed, eng.ExecCycles()
}

// TestRegionSetRecoverMultiThreadCrashSweep crashes an 8-thread run at
// a table of points across its execution and checks that Recover's
// report exactly matches the damage actually present in NVMM: the
// recomputed count equals the number of regions whose checksums
// mismatch the surviving data, and recovery restores every output.
func TestRegionSetRecoverMultiThreadCrashSweep(t *testing.T) {
	const nRegions, nthreads = 256, 8
	// Two-pass calibration: the sweep runs with periodic cleanup, which
	// changes the cycle count, so crash points must be placed on a clean
	// run using the same CleanPeriod.
	calibrate := func(cfg sim.Config) int64 {
		m := memsim.NewMemory(1 << 20)
		rs, _, _ := buildParallelRegionSet(m, nRegions)
		crashed, cycles := runRegionsParallel(rs, m, nthreads, cfg)
		if crashed {
			t.Fatal("calibration run crashed")
		}
		return cycles
	}
	cleanPeriod := calibrate(sim.Config{}) / 10 // lets early regions persist
	cleanCycles := calibrate(sim.Config{CleanPeriod: cleanPeriod})

	// The makespan includes an uncrashable drain tail after the last
	// body instruction (Thread.finish), so the sweep tops out at 0.8.
	for _, tc := range []struct {
		name string
		frac float64
	}{
		{"early", 0.15}, {"third", 0.3}, {"half", 0.5},
		{"twothirds", 0.65}, {"late", 0.75}, {"end", 0.8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := memsim.NewMemory(1 << 20)
			rs, in, out := buildParallelRegionSet(m, nRegions)
			cfg := sim.Config{
				CrashCycle:  int64(tc.frac * float64(cleanCycles)),
				CleanPeriod: cleanPeriod,
			}
			if cfg.CrashCycle < 1 {
				cfg.CrashCycle = 1
			}
			crashed, _ := runRegionsParallel(rs, m, nthreads, cfg)
			if !crashed {
				t.Fatal("expected a crash")
			}
			m.Crash()

			// Ground truth: which regions' checksums actually mismatch
			// the data that survived in NVMM.
			cn := &pmem.Native{Mem: m}
			mism := 0
			for key := 0; key < rs.Len(); key++ {
				if !rs.Verify(cn, key) {
					mism++
				}
			}

			var rep RecoverReport
			runOnSim(t, m, func(c pmem.Ctx) { rep = rs.Recover(c) })
			if rep.Recomputed != mism || rep.Verified != nRegions-mism {
				t.Fatalf("report %+v; NVMM had %d mismatched regions of %d", rep, mism, nRegions)
			}

			m.Crash() // repairs were eager: they survive a second failure
			for r := 0; r < nRegions; r++ {
				for i := 0; i < 8; i++ {
					want := 2*in.Load(cn, r*8+i) + float64(r)
					if got := out.Load(cn, r*8+i); got != want {
						t.Fatalf("out[%d][%d] = %v, want %v", r, i, got, want)
					}
				}
			}
		})
	}
}
