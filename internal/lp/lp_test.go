package lp

import (
	"math"
	"testing"
	"testing/quick"

	"lazyp/internal/checksum"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

func testCtx() (*pmem.Native, *memsim.Memory) {
	m := memsim.NewMemory(1 << 20)
	return &pmem.Native{Mem: m}, m
}

func TestTableStartsInvalid(t *testing.T) {
	c, m := testCtx()
	tb := NewTable(m, "t", 16)
	if tb.Slots() != 16 {
		t.Fatalf("slots = %d", tb.Slots())
	}
	for i := 0; i < 16; i++ {
		if tb.Written(c, i) {
			t.Fatalf("slot %d written before any commit", i)
		}
		if tb.Matches(c, i, 0) {
			t.Fatal("never-written slot must not match anything")
		}
	}
	// Durably invalid, too: a crash right after setup must still show
	// Invalid (not zero).
	m.Crash()
	if tb.Written(c, 0) {
		t.Fatal("Invalid initialization was not durable")
	}
}

func TestTableRoundTrip(t *testing.T) {
	c, m := testCtx()
	tb := NewTable(m, "t", 4)
	tb.StoreSum(c, 2, 12345)
	if !tb.Written(c, 2) || tb.LoadSum(c, 2) != 12345 {
		t.Fatal("StoreSum/LoadSum broken")
	}
	if !tb.Matches(c, 2, 12345) || tb.Matches(c, 2, 12346) {
		t.Fatal("Matches broken")
	}
	tb.Invalidate(c, 2)
	if tb.Written(c, 2) {
		t.Fatal("Invalidate did not clear the slot")
	}
}

func TestLPStrategyFoldsStores(t *testing.T) {
	c, m := testCtx()
	tb := NewTable(m, "t", 8)
	s := NewLP(tb, checksum.Modular, 2)
	if s.Name() != "lp" {
		t.Fatal("name")
	}
	arr := pmem.AllocF64(m, "arr", 8)

	vals := []float64{1.5, -2.25, 3.75}
	ts := s.Thread(1)
	ts.Begin(c, 5)
	for i, v := range vals {
		ts.StoreF(c, arr.Addr(i), v)
	}
	ts.End(c)

	// The committed checksum must equal the independent batch checksum
	// of the stored bit patterns.
	words := make([]uint64, len(vals))
	for i, v := range vals {
		words[i] = math.Float64bits(v)
	}
	want := checksum.SumWords(checksum.Modular, words)
	if !tb.Matches(c, 5, want) {
		t.Fatalf("committed checksum %#x, want %#x", tb.LoadSum(c, 5), want)
	}
	// And the data went through.
	for i, v := range vals {
		if arr.Load(c, i) != v {
			t.Fatalf("store %d lost", i)
		}
	}
}

func TestLPRegionsAreIndependentPerThread(t *testing.T) {
	c, m := testCtx()
	tb := NewTable(m, "t", 4)
	s := NewLP(tb, checksum.Modular, 2)
	arr := pmem.AllocF64(m, "arr", 8)

	t0, t1 := s.Thread(0), s.Thread(1)
	t0.Begin(c, 0)
	t1.Begin(c, 1)
	t0.StoreF(c, arr.Addr(0), 1)
	t1.StoreF(c, arr.Addr(1), 2)
	t0.End(c)
	t1.End(c)
	if tb.LoadSum(c, 0) == tb.LoadSum(c, 1) {
		t.Fatal("interleaved threads polluted each other's checksums")
	}
	if !tb.Matches(c, 0, checksum.SumWords(checksum.Modular, []uint64{math.Float64bits(1)})) {
		t.Fatal("thread 0's region checksum wrong after interleaving")
	}
}

func TestBaseStrategyIsTransparent(t *testing.T) {
	c, m := testCtx()
	arr := pmem.AllocF64(m, "arr", 4)
	ts := Base{}.Thread(0)
	ts.Begin(c, 0)
	ts.StoreF(c, arr.Addr(0), 9.5)
	ts.Store64(c, arr.Addr(1), 77)
	ts.End(c)
	if arr.Load(c, 0) != 9.5 || c.Load64(arr.Addr(1)) != 77 {
		t.Fatal("base strategy altered stores")
	}
}

func TestSumLoadsMatchesRegion(t *testing.T) {
	// Property: for any stored values, SumLoads over their addresses
	// reproduces the region checksum (detection must agree with
	// normal execution).
	f := func(raw []uint64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		c, m := testCtx()
		tb := NewTable(m, "t", 1)
		arr := pmem.AllocU64(m, "arr", len(raw))
		s := NewLP(tb, checksum.Modular, 1)
		ts := s.Thread(0)
		ts.Begin(c, 0)
		addrs := make([]memsim.Addr, len(raw))
		for i, w := range raw {
			addrs[i] = arr.Addr(i)
			ts.Store64(c, addrs[i], w)
		}
		ts.End(c)
		v := Verifier{Table: tb, Kind: checksum.Modular}
		return v.VerifyAddrs(c, 0, addrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionSummer(t *testing.T) {
	c, _ := testCtx()
	rs := NewRegionSummer(checksum.Parity)
	rs.Add(c, 5)
	rs.Add(c, 5)
	sum := rs.Sum()
	if sum != checksum.SumWords(checksum.Parity, []uint64{5, 5}) {
		t.Fatal("RegionSummer disagrees with batch checksum")
	}
	rs.Reset()
	if rs.Sum() != checksum.SumWords(checksum.Parity, nil) {
		t.Fatal("Reset broken")
	}
}

func TestEagerChecksumVariantStillCorrect(t *testing.T) {
	c, m := testCtx()
	tb := NewTable(m, "t", 2)
	s := NewLP(tb, checksum.Modular, 1)
	s.EagerChecksum = true
	arr := pmem.AllocF64(m, "arr", 2)
	ts := s.Thread(0)
	ts.Begin(c, 1)
	ts.StoreF(c, arr.Addr(0), 4.5)
	ts.End(c)
	if !tb.Matches(c, 1, checksum.SumWords(checksum.Modular, []uint64{math.Float64bits(4.5)})) {
		t.Fatal("eager-checksum variant computed a different checksum")
	}
}
