package lp

import (
	"math"

	"lazyp/internal/checksum"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// mathFloat64bits is a tiny indirection so lp.go needs no math import of
// its own call sites.
func mathFloat64bits(v float64) uint64 { return math.Float64bits(v) }

// Table is the standalone persistent checksum structure of §III-D
// (Figure 7(b)): one 64-bit slot per LP region, indexed by a
// collision-free key the workload computes (GetHashIndex in the paper's
// Figure 8). Keeping checksums out of the protected data structures
// avoids layout changes and, with collision-free keying, each slot has a
// single writer, so no locks are needed even with many threads.
//
// Every slot is durably initialized to checksum.Invalid so that recovery
// can distinguish "region never executed" from "region executed" (§IV:
// initialize each checksum to a value real checksums cannot take).
type Table struct {
	slots  pmem.U64
	n      int
	stride int // words between consecutive slots (1 = dense)
}

// NewTable allocates a dense table with the given number of slots,
// durably initialized to Invalid. Allocate tables before measured
// execution.
func NewTable(m *memsim.Memory, name string, slots int) *Table {
	return NewTableStrided(m, name, slots, 1)
}

// NewTableStrided allocates a table whose consecutive slots are
// strideWords words apart. It models the *embedded* checksum
// organization of the paper's Figure 7(a) — checksum columns living
// inside the protected data structure's rows — whose scattered layout
// the paper rejects in favor of the dense standalone table: with a
// stride equal to the matrix row pitch, each checksum occupies its own
// cache line inside the data's address range, reproducing the embedded
// organization's cache behavior and space overhead (N²P/bsize).
func NewTableStrided(m *memsim.Memory, name string, slots, strideWords int) *Table {
	if strideWords < 1 {
		panic("lp: table stride must be at least one word")
	}
	t := &Table{
		slots:  pmem.AllocU64(m, name, slots*strideWords),
		n:      slots,
		stride: strideWords,
	}
	t.slots.Fill(m, checksum.Invalid)
	return t
}

// Slots returns the table capacity.
func (t *Table) Slots() int { return t.n }

// idx maps a region key to the backing word index.
func (t *Table) idx(key int) int { return key * t.stride }

// SlotAddr returns the persistent address of slot key (for eager
// flushing during recovery or ablations).
func (t *Table) SlotAddr(key int) memsim.Addr { return t.slots.Addr(t.idx(key)) }

// StoreSum writes the checksum for region key. The store is plain —
// lazy, like the data it protects.
func (t *Table) StoreSum(c pmem.Ctx, key int, sum uint64) {
	t.slots.Store(c, t.idx(key), sum)
}

// StoreSumEager writes, flushes, and fences the checksum — used by
// recovery code (which must be eager for forward progress) and by the
// eager-checksum ablation.
func (t *Table) StoreSumEager(c pmem.Ctx, key int, sum uint64) {
	t.slots.Store(c, t.idx(key), sum)
	c.Flush(t.SlotAddr(key))
	c.Fence()
}

// LoadSum reads the stored checksum for region key.
func (t *Table) LoadSum(c pmem.Ctx, key int) uint64 {
	return t.slots.Load(c, t.idx(key))
}

// Written reports whether region key ever committed a checksum that
// reached this image of memory (false means the slot still holds the
// Invalid sentinel).
func (t *Table) Written(c pmem.Ctx, key int) bool {
	return t.slots.Load(c, t.idx(key)) != checksum.Invalid
}

// Matches reports whether the stored checksum for key equals the
// checksum recomputed from the (post-crash durable) data. A never-
// written slot never matches: the region did not complete, so it is
// inconsistent by definition.
func (t *Table) Matches(c pmem.Ctx, key int, recomputed uint64) bool {
	v := t.slots.Load(c, t.idx(key))
	return v != checksum.Invalid && v == recomputed
}

// Invalidate durably resets the slot to Invalid with eager persistence.
// Recovery code uses it to mark regions it is about to recompute, so a
// second failure during recovery re-triggers their repair.
func (t *Table) Invalidate(c pmem.Ctx, key int) {
	t.slots.Store(c, t.idx(key), checksum.Invalid)
	c.Flush(t.SlotAddr(key))
	c.Fence()
}
