// Package lp implements Lazy Persistency, the paper's primary
// contribution (§III–§IV).
//
// A program adopting Lazy Persistency divides its stores to persistent
// memory into LP regions, the units of failure detection and recovery.
// Inside a region no cache-line flushes, fences, or logs are issued:
// dirty lines drift to NVMM through natural cache evictions. Instead,
// the region folds every stored value into a running software checksum
// (package checksum) and, on region exit, stores the checksum into a
// persistent standalone hash table (Table) — itself written lazily, as
// §III-D argues (a not-yet-persistent checksum only causes a benign,
// unnecessary recomputation, never corruption).
//
// After a failure, recovery walks the checksum table: for each region it
// recomputes the checksum from the data that survived in NVMM and
// compares. A mismatch (or a never-written slot) marks the region
// inconsistent; workload-specific recovery code recomputes it using
// Eager Persistency so that recovery itself makes forward progress
// (§III-E). Package ep provides the eager primitives.
//
// The package also defines the Strategy interface under which the same
// kernel source runs without failure safety (Base), with Lazy
// Persistency (LP), or with the eager baselines in package ep — the four
// variants compared in the paper's Figure 10.
package lp

import (
	"lazyp/internal/checksum"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// Strategy is a persistence discipline applied to a kernel. A Strategy
// is instantiated once per run and hands out one ThreadStrategy per
// simulated thread (threads never share mutable strategy state — the
// paper's design keeps checksums thread-private and the hash table
// collision-free, so no locks are needed).
type Strategy interface {
	// Name identifies the variant ("base", "lp", "ep", "wal").
	Name() string
	// Thread returns the per-thread strategy instance for tid.
	Thread(tid int) ThreadStrategy
}

// ThreadStrategy receives a thread's region boundaries and data stores.
type ThreadStrategy interface {
	// Begin enters the LP region identified by key. Keys are the
	// workload's collision-free hash-table indices (§III-D: e.g.
	// a combination of ii, kk and thread id for tiled matmul).
	Begin(c pmem.Ctx, key int)
	// Store64 performs a tracked data store inside the region.
	Store64(c pmem.Ctx, a memsim.Addr, v uint64)
	// StoreF is Store64 for float64 values.
	StoreF(c pmem.Ctx, a memsim.Addr, v float64)
	// End leaves the region, emitting whatever failure-detection
	// metadata the discipline requires.
	End(c pmem.Ctx)
}

// Base is the no-failure-safety strategy: plain stores only. It is the
// "base" bar of Figure 10 and the normalization denominator everywhere.
type Base struct{}

// Name implements Strategy.
func (Base) Name() string { return "base" }

// Thread implements Strategy.
func (Base) Thread(int) ThreadStrategy { return baseTS{} }

type baseTS struct{}

func (baseTS) Begin(pmem.Ctx, int) {}
func (baseTS) Store64(c pmem.Ctx, a memsim.Addr, v uint64) {
	c.Store64(a, v)
}
func (baseTS) StoreF(c pmem.Ctx, a memsim.Addr, v float64) {
	c.StoreF(a, v)
}
func (baseTS) End(pmem.Ctx) {}

// LP is the Lazy Persistency strategy.
type LP struct {
	// Table receives one checksum per region key.
	Table *Table
	// Kind selects the error-detection code (default Modular, the
	// paper's choice).
	Kind checksum.Kind
	// EagerChecksum, when set, persists each checksum immediately with
	// flush+fence instead of lazily — the design alternative §III-D
	// discusses and rejects; kept for the ablation benchmarks.
	EagerChecksum bool

	threads []*lpTS
}

// NewLP builds the Lazy Persistency strategy over table for nthreads
// threads using the given checksum code.
func NewLP(table *Table, kind checksum.Kind, nthreads int) *LP {
	s := &LP{Table: table, Kind: kind}
	s.threads = make([]*lpTS, nthreads)
	for i := range s.threads {
		s.threads[i] = &lpTS{parent: s, state: checksum.New(kind), cost: kind.CostPerAdd()}
	}
	return s
}

// Name implements Strategy.
func (s *LP) Name() string { return "lp" }

// Thread implements Strategy.
func (s *LP) Thread(tid int) ThreadStrategy { return s.threads[tid] }

// lpTS is the thread-private running checksum (the paper makes the
// checksum variable thread-private; §IV).
type lpTS struct {
	parent *LP
	state  checksum.State
	cost   int
	key    int
}

func (t *lpTS) Begin(c pmem.Ctx, key int) {
	t.key = key
	t.state.Reset()
	c.Compute(1)
}

func (t *lpTS) Store64(c pmem.Ctx, a memsim.Addr, v uint64) {
	c.Store64(a, v)
	t.state.Add(v)
	c.Compute(t.cost)
}

func (t *lpTS) StoreF(c pmem.Ctx, a memsim.Addr, v float64) {
	t.Store64(c, a, mathFloat64bits(v))
}

func (t *lpTS) End(c pmem.Ctx) {
	sum := t.state.Sum()
	c.Compute(2) // finalize + index arithmetic
	t.parent.Table.StoreSum(c, t.key, sum)
	if t.parent.EagerChecksum {
		c.Flush(t.parent.Table.SlotAddr(t.key))
		c.Fence()
	}
}
