package memsim

import "testing"

// TestCleanOlderAgeFilter checks the spaced cleanup semantics: only
// lines dirty for at least the age threshold are written back.
func TestCleanOlderAgeFilter(t *testing.T) {
	h, m := testHier(1)
	a := m.Alloc("x", 128)
	h.Access(0, a, true, 1000) // dirty since cycle 1000
	m.Store64(a, 1)
	h.Access(0, a+64, true, 5000) // dirty since cycle 5000
	m.Store64(a+64, 2)

	// At cycle 6000 with age 3000: only the first line qualifies.
	if n := h.CleanOlder(6000, 3000); n != 1 {
		t.Fatalf("CleanOlder wrote %d lines, want 1", n)
	}
	if m.DurableLoad64(a) != 1 {
		t.Fatal("old line not cleaned")
	}
	if m.DurableLoad64(a+64) == 2 {
		t.Fatal("young line cleaned too early")
	}
	// Later, the young line ages past the threshold.
	if n := h.CleanOlder(9000, 3000); n != 1 {
		t.Fatalf("second CleanOlder wrote %d lines, want 1", n)
	}
	if m.DurableLoad64(a+64) != 2 {
		t.Fatal("young line still not cleaned")
	}
}

// TestCleanOlderRedirty checks that a cleaned line that is written
// again becomes a fresh dirty line with a new age.
func TestCleanOlderRedirty(t *testing.T) {
	h, m := testHier(1)
	a := m.Alloc("x", 64)
	h.Access(0, a, true, 0)
	m.Store64(a, 1)
	h.CleanOlder(100, 50)
	if m.DurableLoad64(a) != 1 {
		t.Fatal("first clean missed")
	}
	// Re-dirty at cycle 200.
	h.Access(0, a, true, 200)
	m.Store64(a, 2)
	// Age 150 at cycle 300: the line has only been dirty 100 cycles.
	if n := h.CleanOlder(300, 150); n != 0 {
		t.Fatalf("re-dirtied line cleaned too early (%d writes)", n)
	}
	if n := h.CleanOlder(400, 150); n != 1 {
		t.Fatalf("re-dirtied line not cleaned when old enough (%d writes)", n)
	}
	if m.DurableLoad64(a) != 2 {
		t.Fatal("second clean wrote the wrong value")
	}
}

// TestDirtySincePreservedAcrossL1Eviction checks the volatility clock
// survives a dirty line's migration from L1 to L2.
func TestDirtySincePreservedAcrossL1Eviction(t *testing.T) {
	h, m := testHier(1)
	base := m.Alloc("x", 64*64)
	h.Access(0, base, true, 1000)
	m.Store64(base, 9)
	// Conflict the line out of its 2-way L1 set (8 sets → stride 8 lines).
	h.Access(0, base+8*64, false, 2000)
	h.Access(0, base+16*64, false, 3000)
	// The line is now dirty at L2 only; flush at 4000 must record a
	// volatility duration measured from 1000, not from the eviction.
	h.Flush(0, base, 4000)
	if got := h.Stats().MaxVdur; got != 3000 {
		t.Fatalf("vdur = %d, want 3000 (dirtySince lost in migration)", got)
	}
}
