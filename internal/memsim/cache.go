package memsim

import "fmt"

// lineState is the coherence/validity state of a cached line.
type lineState uint8

const (
	stateInvalid  lineState = iota
	stateShared             // valid, clean with respect to the level below
	stateModified           // valid, dirty with respect to the level below
)

// cacheLine is the metadata for one line frame. The data itself lives in
// Memory's architectural backing array, and the frame's identity — which
// line it holds, if any — lives in the cache's separate tags array, so
// this struct carries only replacement and coherence state.
type cacheLine struct {
	lru uint64 // larger = more recently used

	// dirtySince is the cycle the line last became dirty anywhere in
	// the hierarchy (an L2/directory field, like sharers/dirtyOwner;
	// unused in L1 frames).
	dirtySince int64
	sharers    uint32 // bitmask of cores with an L1 copy
	state      lineState
	dirtyOwner int8 // core holding the line Modified in its L1, or -1
}

// setMemo is one set's lookup memo entry; see cache.memo.
type setMemo struct {
	want Addr
	idx  int32
}

// cache is a set-associative cache with true-LRU replacement. It stores
// metadata only; see the package comment.
//
// Frames are addressed by index into two parallel arrays. tags[i] packs
// frame i's identity and validity into one word: the line address with
// bit 0 set (line addresses are LineSize-aligned, so the bit is free)
// when the frame is valid, 0 when it is invalid. The lookup scan over a
// set — the simulator's hottest loop — therefore touches 8 bytes per
// way (one host cache line for a whole 8-way set) and needs a single
// compare per way, instead of scanning the full frame metadata.
type cache struct {
	sets    int
	ways    int
	setMask Addr
	tags    []Addr      // sets*ways, frames of set s at [s*ways, (s+1)*ways)
	lines   []cacheLine // parallel metadata for each frame in tags

	// l2i, used only in L1 caches, memoizes the L2 frame index of each
	// valid line. Inclusion makes it stable: an L2 frame is never reused
	// without first recalling (invalidating) every L1 copy, so while an
	// L1 frame stays valid its line sits at the same L2 index. This
	// turns the L2 set scan on every S→M upgrade and every L1 eviction
	// into a direct index.
	l2i []int32

	// memo holds each set's most recent lookup hit (want is the la|1
	// tag, 0 when empty). Back-to-back accesses to one line — a load
	// followed by its store, the eight words of a streamed line — are
	// the common case on the L1, and the memo answers them without
	// rescanning the set; keeping one entry per set means kernels
	// interleaving several streams (A[i], B[i], C[i]...) each keep
	// their own memo instead of thrashing a shared one.
	// setTag/invalidate/reset drop the memo entry when they touch the
	// memoized frame, so a non-zero memo[s].want always equals
	// tags[memo[s].idx].
	memo []setMemo

	tick uint64
}

// newCache builds a cache of the given total size in bytes and
// associativity. Size must be a multiple of ways*LineSize and the
// resulting set count must be a power of two.
func newCache(size, ways int) *cache {
	if size <= 0 || ways <= 0 || size%(ways*LineSize) != 0 {
		panic(fmt.Sprintf("memsim: bad cache geometry size=%d ways=%d", size, ways))
	}
	sets := size / (ways * LineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("memsim: cache set count %d is not a power of two (size=%d ways=%d)", sets, size, ways))
	}
	c := &cache{sets: sets, ways: ways, setMask: Addr(sets - 1)}
	c.tags = make([]Addr, sets*ways)
	c.lines = make([]cacheLine, sets*ways)
	c.l2i = make([]int32, sets*ways)
	c.memo = make([]setMemo, sets)
	for i := range c.lines {
		c.lines[i].dirtyOwner = -1
	}
	return c
}

// setOf returns the index of the set holding line address la.
func (c *cache) setOf(la Addr) int {
	return int((la >> LineShift) & c.setMask)
}

// memoHit answers a lookup from the set's memo alone: the frame index
// if la is the set's memoized line, else -1 (which only means "consult
// lookup", not "miss"). Unlike lookup it is small enough to inline into
// the hierarchy's access fast path.
func (c *cache) memoHit(la Addr) int {
	m := &c.memo[c.setOf(la)]
	if la|1 == m.want {
		return int(m.idx)
	}
	return -1
}

// lookup returns the index of the frame holding line la, or -1 on miss.
func (c *cache) lookup(la Addr) int {
	want := la | 1
	s := c.setOf(la)
	m := &c.memo[s]
	if want == m.want {
		return int(m.idx)
	}
	for i, end := s*c.ways, (s+1)*c.ways; i < end; i++ {
		if c.tags[i] == want {
			m.want = want
			m.idx = int32(i)
			return i
		}
	}
	return -1
}

// addrOf returns the line address held by valid frame i.
func (c *cache) addrOf(i int) Addr { return c.tags[i] &^ 1 }

// valid reports whether frame i holds a line.
func (c *cache) valid(i int) bool { return c.tags[i] != 0 }

// setTag marks frame i as holding line la.
func (c *cache) setTag(i int, la Addr) {
	if m := &c.memo[i/c.ways]; int32(i) == m.idx {
		m.want = 0
	}
	c.tags[i] = la | 1
}

// invalidate frees frame i.
func (c *cache) invalidate(i int) {
	if m := &c.memo[i/c.ways]; int32(i) == m.idx {
		m.want = 0
	}
	c.tags[i] = 0
	c.lines[i].state = stateInvalid
}

// touch marks frame i as most recently used.
func (c *cache) touch(i int) {
	c.tick++
	c.lines[i].lru = c.tick
}

// lookupOrVictim resolves line la in one scan of its set: on a hit it
// returns the frame index and true; on a miss it returns victim's choice
// for la — the first invalid frame, else the least recently used — and
// false. It serves the L2 demand/prefetch path, where a miss is always
// followed immediately by a fill, without paying two set scans.
func (c *cache) lookupOrVictim(la Addr) (int, bool) {
	base := c.setOf(la) * c.ways
	want := la | 1
	tags := c.tags[base : base+c.ways]
	inv := -1
	lru := base
	for i, t := range tags {
		if t == want {
			return base + i, true
		}
		if t == 0 {
			if inv < 0 {
				inv = base + i
			}
			continue
		}
		if c.lines[base+i].lru < c.lines[lru].lru {
			lru = base + i
		}
	}
	if inv >= 0 {
		return inv, false
	}
	return lru, false
}

// victim returns the frame to fill for line la: the first invalid frame
// of the set if one exists, otherwise the least recently used frame. The
// caller must evict a valid victim before reusing the frame.
func (c *cache) victim(la Addr) int {
	base := c.setOf(la) * c.ways
	tags := c.tags[base : base+c.ways]
	lru := base
	for i, t := range tags {
		if t == 0 {
			return base + i
		}
		if c.lines[base+i].lru < c.lines[lru].lru {
			lru = base + i
		}
	}
	return lru
}

// reset invalidates every frame (used after a crash).
func (c *cache) reset() {
	for s := range c.memo {
		c.memo[s] = setMemo{}
	}
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.lines {
		c.lines[i] = cacheLine{dirtyOwner: -1}
	}
	c.tick = 0
}

// forEachValid calls fn for every valid frame with its index and the
// line address it holds.
func (c *cache) forEachValid(fn func(i int, la Addr, l *cacheLine)) {
	for i, t := range c.tags {
		if t != 0 {
			fn(i, t&^1, &c.lines[i])
		}
	}
}
