package memsim

import "fmt"

// lineState is the coherence/validity state of a cached line.
type lineState uint8

const (
	stateInvalid  lineState = iota
	stateShared             // valid, clean with respect to the level below
	stateModified           // valid, dirty with respect to the level below
)

// cacheLine is the metadata for one line frame. The data itself lives in
// Memory's architectural backing array. Field order packs the struct
// into 32 bytes so a whole 8-way set spans four host cache lines — the
// lookup scan over a set is the simulator's hottest loop.
type cacheLine struct {
	lineAddr Addr   // line-aligned address; meaningful when state != invalid
	lru      uint64 // larger = more recently used

	// dirtySince is the cycle the line last became dirty anywhere in
	// the hierarchy (an L2/directory field, like sharers/dirtyOwner;
	// unused in L1 frames).
	dirtySince int64
	sharers    uint32 // bitmask of cores with an L1 copy
	state      lineState
	dirtyOwner int8 // core holding the line Modified in its L1, or -1
}

// cache is a set-associative cache with true-LRU replacement. It stores
// metadata only; see the package comment.
type cache struct {
	sets    int
	ways    int
	setMask Addr
	lines   []cacheLine // sets*ways, frames of set s at [s*ways, (s+1)*ways)
	tick    uint64
}

// newCache builds a cache of the given total size in bytes and
// associativity. Size must be a multiple of ways*LineSize and the
// resulting set count must be a power of two.
func newCache(size, ways int) *cache {
	if size <= 0 || ways <= 0 || size%(ways*LineSize) != 0 {
		panic(fmt.Sprintf("memsim: bad cache geometry size=%d ways=%d", size, ways))
	}
	sets := size / (ways * LineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("memsim: cache set count %d is not a power of two (size=%d ways=%d)", sets, size, ways))
	}
	c := &cache{sets: sets, ways: ways, setMask: Addr(sets - 1)}
	c.lines = make([]cacheLine, sets*ways)
	for i := range c.lines {
		c.lines[i].dirtyOwner = -1
	}
	return c
}

// setOf returns the index of the set holding line address la.
func (c *cache) setOf(la Addr) int {
	return int((la >> LineShift) & c.setMask)
}

// lookup returns the frame holding line la, or nil on miss.
func (c *cache) lookup(la Addr) *cacheLine {
	base := c.setOf(la) * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.state != stateInvalid && l.lineAddr == la {
			return l
		}
	}
	return nil
}

// touch marks l as most recently used.
func (c *cache) touch(l *cacheLine) {
	c.tick++
	l.lru = c.tick
}

// victim returns the frame to fill for line la: an invalid frame if one
// exists, otherwise the least recently used frame of the set. The caller
// must evict a valid victim before reusing the frame.
func (c *cache) victim(la Addr) *cacheLine {
	base := c.setOf(la) * c.ways
	var lruLine *cacheLine
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.state == stateInvalid {
			return l
		}
		if lruLine == nil || l.lru < lruLine.lru {
			lruLine = l
		}
	}
	return lruLine
}

// reset invalidates every frame (used after a crash).
func (c *cache) reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{dirtyOwner: -1}
	}
	c.tick = 0
}

// forEachValid calls fn for every valid frame.
func (c *cache) forEachValid(fn func(*cacheLine)) {
	for i := range c.lines {
		if c.lines[i].state != stateInvalid {
			fn(&c.lines[i])
		}
	}
}
