// Package memsim models the volatile/persistent memory hierarchy that
// Lazy Persistency (Alshboul, Tuck, Solihin — ISCA 2018) relies on: a
// byte-addressable non-volatile main memory (NVMM) behind a hierarchy of
// write-back caches (a private L1 per core and a shared, inclusive L2).
//
// The model is *functional + accounting*: the current architectural value
// of every byte lives in one flat backing array, the durable (NVMM) value
// lives in a second array, and the caches track only metadata (valid,
// dirty, sharers, LRU). A cache line's content reaches the durable array
// only when the hierarchy writes the line back — by natural eviction, by
// an explicit cache-line flush (clflushopt), or by the periodic hardware
// cleanup of §III-E.1 of the paper. A crash discards all cache metadata
// and resets the architectural state to the durable state, which is
// exactly the paper's failure model: a store survives a failure iff its
// block left the cache hierarchy before the failure.
//
// The package is single-threaded by design: the simulation engine in
// internal/sim guarantees that exactly one simulated thread executes at a
// time, so the hierarchy needs no locks and stays deterministic.
package memsim

// Addr is a byte address in the simulated flat physical address space.
type Addr uint64

const (
	// LineShift is log2 of the cache line size.
	LineShift = 6
	// LineSize is the cache line size in bytes. Both the paper's gem5
	// configuration and our model use 64-byte lines.
	LineSize = 1 << LineShift
	// LineMask extracts the offset within a line.
	LineMask = LineSize - 1
)

// LineOf returns the address of the cache line containing a.
func LineOf(a Addr) Addr { return a &^ Addr(LineMask) }
