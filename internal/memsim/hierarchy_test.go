package memsim

import (
	"testing"
	"testing/quick"
)

// testHier builds a small hierarchy with prefetching disabled so tests
// can reason about exact line residency.
func testHier(cores int) (*Hierarchy, *Memory) {
	m := NewMemory(1 << 20)
	cfg := Config{Cores: cores, L1Size: 1 << 10, L1Ways: 2, L2Size: 4 << 10, L2Ways: 4}
	return NewHierarchy(cfg, m), m
}

func TestAccessLevels(t *testing.T) {
	h, m := testHier(1)
	a := m.Alloc("x", 64)
	if k := h.Access(0, a, false, 0); k != AccessMem {
		t.Fatalf("first access kind = %v, want AccessMem", k)
	}
	if k := h.Access(0, a, false, 1); k != AccessL1 {
		t.Fatalf("second access kind = %v, want AccessL1", k)
	}
	if m.NVMMReads() != 1 {
		t.Fatalf("NVMM reads = %d, want 1", m.NVMMReads())
	}
}

func TestL1EvictionLeavesL2Copy(t *testing.T) {
	h, m := testHier(1)
	// L1: 1KB 2-way = 8 sets; lines 8 sets apart collide.
	base := m.Alloc("x", 64*64)
	conflict := []Addr{base, base + 8*64, base + 16*64}
	for _, a := range conflict {
		h.Access(0, a, false, 0)
	}
	// base was evicted from its 2-way L1 set but must still be in L2.
	if k := h.Access(0, conflict[0], false, 1); k != AccessL2 {
		t.Fatalf("kind after L1 conflict eviction = %v, want AccessL2", k)
	}
}

func TestDirtyEvictionWritesNVMM(t *testing.T) {
	h, m := testHier(1)
	// L2: 4KB 4-way = 16 sets; lines 16*64 bytes apart share a set.
	base := m.Alloc("x", 64*64*8)
	h.Access(0, base, true, 0)
	m.Store64(base, 99)
	// Walk enough conflicting lines to force base out of L2.
	for i := 1; i <= 4; i++ {
		h.Access(0, base+Addr(i*16*64), false, int64(i))
	}
	if h.Cached(base) {
		t.Fatal("victim line still resident")
	}
	if got := m.DurableLoad64(base); got != 99 {
		t.Fatalf("dirty eviction did not write back: durable=%d", got)
	}
	_, evict, _, _ := m.NVMMWrites()
	if evict != 1 {
		t.Fatalf("evict writes = %d, want 1", evict)
	}
}

func TestFlushDirtyAndClean(t *testing.T) {
	h, m := testHier(1)
	a := m.Alloc("x", 128)
	h.Access(0, a, true, 0)
	m.Store64(a, 5)
	if !h.Flush(0, a, 1) {
		t.Fatal("flush of dirty line should report a write-back")
	}
	if m.DurableLoad64(a) != 5 {
		t.Fatal("flush did not persist the line")
	}
	if h.Cached(a) {
		t.Fatal("clflushopt must invalidate the line")
	}
	// Clean line: no write.
	h.Access(0, a+64, false, 2)
	if h.Flush(0, a+64, 3) {
		t.Fatal("flush of clean line must not write")
	}
	// Absent line: no-op.
	if h.Flush(0, a, 4) {
		t.Fatal("flush of uncached line must not write")
	}
	_, _, flush, _ := m.NVMMWrites()
	if flush != 1 {
		t.Fatalf("flush writes = %d, want 1", flush)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h, m := testHier(2)
	a := m.Alloc("x", 64)
	h.Access(0, a, false, 0)
	h.Access(1, a, false, 0)
	// Core 1 writes: core 0's copy must be invalidated.
	h.Access(1, a, true, 1)
	if k := h.Access(0, a, false, 2); k != AccessL2 {
		t.Fatalf("reader after invalidation: kind=%v, want AccessL2", k)
	}
	if h.Stats().Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestInterventionOnDirtyRemoteLine(t *testing.T) {
	h, m := testHier(2)
	a := m.Alloc("x", 64)
	h.Access(0, a, true, 0) // core 0 holds Modified
	m.Store64(a, 11)
	if k := h.Access(1, a, false, 1); k != AccessL2 {
		t.Fatalf("remote dirty read kind = %v, want AccessL2", k)
	}
	if h.Stats().Interventions != 1 {
		t.Fatalf("interventions = %d, want 1", h.Stats().Interventions)
	}
	// The dirtiness must survive at the L2 level: evict and check.
	if n := h.DrainDirty(2, true); n != 1 {
		t.Fatalf("drain found %d dirty lines, want 1", n)
	}
	if m.DurableLoad64(a) != 11 {
		t.Fatal("intervention lost dirty data")
	}
}

func TestUpgradeSharedToModified(t *testing.T) {
	h, m := testHier(2)
	a := m.Alloc("x", 64)
	h.Access(0, a, false, 0)
	h.Access(1, a, false, 0)
	// Core 0 writes its Shared copy: needs an upgrade.
	if k := h.Access(0, a, true, 1); k != AccessL1 {
		t.Fatalf("upgrade should be an L1 hit, got %v", k)
	}
	if h.Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", h.Stats().Upgrades)
	}
	if h.DirtyLines() != 1 {
		t.Fatalf("dirty lines = %d, want 1", h.DirtyLines())
	}
}

func TestInclusionL2EvictRecallsL1(t *testing.T) {
	h, m := testHier(1)
	base := m.Alloc("x", 64*64*8)
	h.Access(0, base, true, 0)
	m.Store64(base, 123)
	for i := 1; i <= 4; i++ {
		h.Access(0, base+Addr(i*16*64), false, int64(i))
	}
	// base evicted from L2 → also gone from L1 (inclusion), data durable.
	if k := h.Access(0, base, false, 10); k != AccessMem {
		t.Fatalf("post-inclusion-eviction access = %v, want AccessMem", k)
	}
	if m.DurableLoad64(base) != 123 {
		t.Fatal("L1 dirty data lost by inclusive eviction")
	}
}

func TestCleanAllKeepsLinesResident(t *testing.T) {
	h, m := testHier(1)
	a := m.Alloc("x", 64)
	h.Access(0, a, true, 0)
	m.Store64(a, 77)
	if n := h.CleanAll(100); n != 1 {
		t.Fatalf("CleanAll wrote %d lines, want 1", n)
	}
	if m.DurableLoad64(a) != 77 {
		t.Fatal("CleanAll did not persist")
	}
	if !h.Cached(a) {
		t.Fatal("CleanAll must not evict")
	}
	if k := h.Access(0, a, false, 101); k != AccessL1 {
		t.Fatalf("post-clean access = %v, want AccessL1", k)
	}
	if h.DirtyLines() != 0 {
		t.Fatal("CleanAll left dirty lines")
	}
	// Cleaning twice must not double-write.
	if n := h.CleanAll(200); n != 0 {
		t.Fatalf("second CleanAll wrote %d lines, want 0", n)
	}
}

func TestVolatilityDuration(t *testing.T) {
	h, m := testHier(1)
	a := m.Alloc("x", 64)
	h.Access(0, a, true, 1000)
	m.Store64(a, 1)
	h.Flush(0, a, 4000)
	st := h.Stats()
	if st.MaxVdur != 3000 {
		t.Fatalf("MaxVdur = %d, want 3000", st.MaxVdur)
	}
	if st.NumVdur != 1 || st.SumVdur != 3000 {
		t.Fatalf("vdur stats = %d/%d", st.NumVdur, st.SumVdur)
	}
}

func TestResetClearsCaches(t *testing.T) {
	h, m := testHier(1)
	a := m.Alloc("x", 64)
	h.Access(0, a, true, 0)
	h.Reset()
	if h.Cached(a) {
		t.Fatal("Reset left lines resident")
	}
	if h.DirtyLines() != 0 {
		t.Fatal("Reset left dirty lines")
	}
}

func TestPrefetcherStreams(t *testing.T) {
	m := NewMemory(1 << 20)
	cfg := Config{Cores: 1, L1Size: 1 << 10, L1Ways: 2, L2Size: 8 << 10, L2Ways: 4,
		PrefetchStreams: 4, PrefetchDegree: 2}
	h := NewHierarchy(cfg, m)
	base := m.Alloc("x", 64*64)
	h.Access(0, base, false, 0)    // trains head
	h.Access(0, base+64, false, 1) // stream detected: prefetch +2,+3
	if h.Stats().Prefetches == 0 {
		t.Fatal("no prefetches issued for a unit-stride stream")
	}
	if k := h.Access(0, base+2*64, false, 2); k != AccessL2 {
		t.Fatalf("prefetched line access = %v, want AccessL2", k)
	}
}

// Property: after an arbitrary mix of reads, writes, flushes, and
// cleanups from multiple cores, every line that is not dirty in the
// hierarchy has identical architectural and durable contents, and a
// crash therefore preserves exactly the written-back values.
func TestHierarchyDurabilityInvariantProperty(t *testing.T) {
	type op struct {
		Core uint8
		Line uint8
		Val  uint64
		Kind uint8 // 0 read, 1 write, 2 flush, 3 clean-all
	}
	f := func(ops []op) bool {
		h, m := testHier(2)
		base := m.Alloc("arr", 32*LineSize)
		now := int64(0)
		for _, o := range ops {
			now++
			a := base + Addr(int(o.Line)%32)*LineSize
			core := int(o.Core) % 2
			switch o.Kind % 4 {
			case 0:
				h.Access(core, a, false, now)
			case 1:
				h.Access(core, a, true, now)
				m.Store64(a, o.Val)
			case 2:
				h.Flush(core, a, now)
			case 3:
				h.CleanAll(now)
			}
		}
		// Every non-dirty line must already be durable.
		dirty := h.DirtyLines()
		persisted := 0
		for i := 0; i < 32; i++ {
			a := base + Addr(i)*LineSize
			if m.Load64(a) == m.DurableLoad64(a) {
				persisted++
			}
		}
		return 32-persisted <= dirty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
