package memsim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory is the simulated physical memory: the current architectural
// contents (what a running program observes through the caches) and the
// durable NVMM contents (what survives a crash). The two arrays diverge
// exactly on the lines that are dirty somewhere in the cache hierarchy;
// WriteBackLine reconciles one line and accounts one NVMM write.
//
// Memory also embeds a trivial bump allocator so that workloads can carve
// named, line-aligned regions out of the address space. Address 0 is never
// handed out, so Addr(0) can serve as a nil address.
type Memory struct {
	backing []byte
	durable []byte

	next   Addr
	allocs []Allocation

	// NVMM traffic counters, in line-sized units.
	nvmmReads       uint64
	nvmmWrites      uint64
	writesFromEvict uint64
	writesFromFlush uint64
	writesFromClean uint64

	// wbHook observes write-backs when set; see SetWriteBackHook.
	wbHook func(Addr, WriteBackCause)
}

// Allocation records one named region handed out by Alloc.
type Allocation struct {
	Name string
	Base Addr
	Size int
}

// NewMemory creates a memory of the given capacity in bytes. The capacity
// is rounded up to a whole number of lines.
func NewMemory(capacity int) *Memory {
	if capacity <= 0 {
		panic("memsim: non-positive memory capacity")
	}
	capacity = (capacity + LineMask) &^ LineMask
	checkEndianness()
	return &Memory{
		// The architectural image is 8-byte aligned so AtomicLoad64/
		// AtomicStore64 (atomic.go) are legal on any word address.
		backing: alignedBytes(capacity),
		durable: make([]byte, capacity),
		next:    LineSize, // keep line 0 unused so Addr(0) means "nil"
	}
}

// Size returns the capacity of the memory in bytes.
func (m *Memory) Size() int { return len(m.backing) }

// Alloc reserves size bytes, line-aligned, and returns the base address.
// Initial contents are zero in both the architectural and durable images
// (i.e. freshly allocated persistent memory is durably zero).
func (m *Memory) Alloc(name string, size int) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: Alloc(%q, %d): non-positive size", name, size))
	}
	base := m.next
	m.next += Addr((size + LineMask) &^ LineMask)
	if int(m.next) > len(m.backing) {
		panic(fmt.Sprintf("memsim: out of simulated memory allocating %q (%d bytes, have %d of %d used)",
			name, size, base, len(m.backing)))
	}
	m.allocs = append(m.allocs, Allocation{Name: name, Base: base, Size: size})
	return base
}

// Allocations returns the allocation table (for debugging and tooling).
func (m *Memory) Allocations() []Allocation { return m.allocs }

// Load64 returns the current architectural value of the 8-byte word at a.
// It performs no cache simulation or accounting; the cache hierarchy and
// timing live in internal/sim.
func (m *Memory) Load64(a Addr) uint64 {
	return binary.LittleEndian.Uint64(m.backing[a:])
}

// Store64 sets the current architectural value of the 8-byte word at a.
func (m *Memory) Store64(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(m.backing[a:], v)
}

// LoadFloat64 returns the architectural float64 at a.
func (m *Memory) LoadFloat64(a Addr) float64 { return math.Float64frombits(m.Load64(a)) }

// StoreFloat64 sets the architectural float64 at a.
func (m *Memory) StoreFloat64(a Addr, v float64) { m.Store64(a, math.Float64bits(v)) }

// DurableLoad64 returns the durable (NVMM) value of the word at a — the
// value that would survive a crash right now.
func (m *Memory) DurableLoad64(a Addr) uint64 {
	return binary.LittleEndian.Uint64(m.durable[a:])
}

// WriteBackCause says why a line was written to NVMM; the paper's write
// amplification analysis distinguishes natural evictions, explicit
// cache-line flushes, and periodic hardware cleanup.
type WriteBackCause uint8

const (
	// CauseEvict is a natural write-back of a dirty line evicted from
	// the last-level cache.
	CauseEvict WriteBackCause = iota
	// CauseFlush is an explicit clflushopt/clwb issued by the program.
	CauseFlush
	// CauseClean is the periodic background cleanup of §III-E.1.
	CauseClean
)

// copyLine reconciles one line: the architectural content of the line at
// la is copied into the durable image. The fixed-size array assignment
// beats both the copy builtin and a hand-unrolled word loop here — this
// runs on every NVMM write, so the shape matters.
func (m *Memory) copyLine(la Addr) {
	*(*[LineSize]byte)(m.durable[la:]) = *(*[LineSize]byte)(m.backing[la:])
}

// SetWriteBackHook installs an observer called on every NVMM line
// write with the line address and cause (nil uninstalls). The hook is
// purely observational — it must not touch memory or timing state —
// and the nil check is the only cost the write-back path pays for it.
func (m *Memory) SetWriteBackHook(h func(Addr, WriteBackCause)) { m.wbHook = h }

// WriteBackLine copies the architectural content of the line containing a
// into the durable image and accounts one NVMM write.
func (m *Memory) WriteBackLine(a Addr, cause WriteBackCause) {
	la := LineOf(a)
	m.copyLine(la)
	m.nvmmWrites++
	switch cause {
	case CauseEvict:
		m.writesFromEvict++
	case CauseFlush:
		m.writesFromFlush++
	case CauseClean:
		m.writesFromClean++
	}
	if m.wbHook != nil {
		m.wbHook(la, cause)
	}
}

// FetchLine accounts one NVMM line read (a last-level-cache miss fill).
// No data movement is needed because the architectural image is already
// current for clean lines.
func (m *Memory) FetchLine(Addr) { m.nvmmReads++ }

// Persist copies the architectural content of [a, a+size) straight into
// the durable image without counting NVMM traffic. It models initial
// state — e.g. input matrices that are already durably resident in NVMM
// before the measured computation starts — and is also used by test
// fixtures. It must not be called while simulated threads are running.
func (m *Memory) Persist(a Addr, size int) {
	copy(m.durable[a:int(a)+size], m.backing[a:int(a)+size])
}

// Crash models a power failure: every value that had not been written
// back to NVMM is lost. The architectural image is reset to the durable
// image; the caller must also discard all cache state (Hierarchy.Reset).
func (m *Memory) Crash() {
	copy(m.backing, m.durable)
}

// NVMMWrites returns the total number of line writes to NVMM and the
// split by cause (evictions, flushes, cleanup).
func (m *Memory) NVMMWrites() (total, evict, flush, clean uint64) {
	return m.nvmmWrites, m.writesFromEvict, m.writesFromFlush, m.writesFromClean
}

// NVMMWriteTotal returns just the total line-write count. The timing
// model samples it around every load and store to detect write-backs the
// access caused, so it must stay a trivial accessor.
func (m *Memory) NVMMWriteTotal() uint64 { return m.nvmmWrites }

// NVMMReads returns the total number of line reads from NVMM.
func (m *Memory) NVMMReads() uint64 { return m.nvmmReads }

// ResetCounters zeroes the NVMM traffic counters. Experiments call this
// after warm-up or input initialization so that only the measured window
// is counted, mirroring the paper's methodology.
func (m *Memory) ResetCounters() {
	m.nvmmReads = 0
	m.nvmmWrites = 0
	m.writesFromEvict = 0
	m.writesFromFlush = 0
	m.writesFromClean = 0
}
