package memsim

import "fmt"

// Config describes the cache hierarchy geometry. The defaults follow the
// paper's gem5 configuration (Table II) scaled down proportionally to our
// smaller inputs; see DESIGN.md §4.
type Config struct {
	Cores  int
	L1Size int // bytes, per core
	L1Ways int
	L2Size int // bytes, shared, inclusive
	L2Ways int

	// PrefetchStreams and PrefetchDegree configure the per-core stride
	// prefetcher: up to PrefetchStreams concurrent unit-stride streams
	// are tracked per core; a stream hit prefetches the next
	// PrefetchDegree lines into the L2. Zero disables prefetching.
	PrefetchStreams int
	PrefetchDegree  int
}

// DefaultConfig returns the scaled default hierarchy: 32 KB 8-way L1s
// and a 256 KB 8-way shared L2 (the paper uses 64 KB L1 / 512 KB L2 for
// 1024×1024 inputs; we halve the caches and quarter the matrices,
// keeping the working set comfortably larger than the L2 so natural
// evictions — the mechanism Lazy Persistency rides on — stay exercised).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:  cores,
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		PrefetchStreams: 8, PrefetchDegree: 4,
	}
}

// AccessKind reports where an access was satisfied; the timing model in
// internal/sim converts it to latency.
type AccessKind uint8

const (
	// AccessL1 hit in the core's private L1.
	AccessL1 AccessKind = iota
	// AccessL2 missed L1 and hit the shared L2 (includes hits that
	// required an intervention from another core's L1).
	AccessL2
	// AccessMem missed both levels and filled from NVMM.
	AccessMem
)

// Stats aggregates hierarchy events. Writes to NVMM are counted on Memory
// (split by cause); everything here is cache-side.
type Stats struct {
	L1Hits        uint64
	L2Accesses    uint64
	L2Hits        uint64
	L2Misses      uint64
	Interventions uint64 // L1-to-L1 dirty transfers through the directory
	Invalidations uint64 // L1 lines invalidated by coherence or inclusion
	Upgrades      uint64 // S→M upgrades that consulted the directory

	// Volatility duration (§VI): cycles between a line becoming dirty in
	// the hierarchy and its content reaching NVMM.
	MaxVdur int64
	SumVdur int64
	NumVdur int64

	// Prefetches counts lines the stride prefetcher brought into L2.
	Prefetches uint64
}

// L2MissRate returns L2 misses / L2 accesses (0 when idle).
func (s *Stats) L2MissRate() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.L2Accesses)
}

// Hierarchy is the multi-core cache hierarchy: one private L1 per core
// and one shared, inclusive L2 with an in-cache directory (a simplified
// MESI: lines are Invalid, Shared, or Modified; the directory tracks the
// sharer set and the single Modified owner).
type Hierarchy struct {
	cfg     Config
	mem     *Memory
	l1      []*cache
	l2      *cache
	streams [][]Addr // per-core stream heads (line addresses)
	nextRep []int    // per-core round-robin stream replacement cursor
	st      Stats
}

// NewHierarchy builds the hierarchy over mem.
func NewHierarchy(cfg Config, mem *Memory) *Hierarchy {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		panic(fmt.Sprintf("memsim: core count %d out of range [1,32]", cfg.Cores))
	}
	h := &Hierarchy{cfg: cfg, mem: mem, l2: newCache(cfg.L2Size, cfg.L2Ways)}
	h.l1 = make([]*cache, cfg.Cores)
	h.streams = make([][]Addr, cfg.Cores)
	h.nextRep = make([]int, cfg.Cores)
	for i := range h.l1 {
		h.l1[i] = newCache(cfg.L1Size, cfg.L1Ways)
		if cfg.PrefetchStreams > 0 {
			h.streams[i] = make([]Addr, cfg.PrefetchStreams)
		}
	}
	return h
}

// prefetch runs the per-core unit-stride stream detector on an L1 miss
// to line la and prefetches ahead into the L2. Prefetch fills are clean,
// charged as NVMM reads, and may evict like demand fills; no latency is
// charged to the requesting core (the stream runs ahead of demand).
func (h *Hierarchy) prefetch(core int, la Addr, now int64) {
	tbl := h.streams[core]
	if len(tbl) == 0 {
		return
	}
	for i, head := range tbl {
		if head != 0 && la == head+LineSize {
			tbl[i] = la
			for d := 1; d <= h.cfg.PrefetchDegree; d++ {
				pa := la + Addr(d*LineSize)
				if int(pa)+LineSize > h.mem.Size() {
					break
				}
				pi, hit := h.l2.lookupOrVictim(pa)
				if hit {
					continue
				}
				h.mem.FetchLine(pa)
				h.st.Prefetches++
				h.fillL2(pi, pa, now)
			}
			return
		}
	}
	// New stream head.
	tbl[h.nextRep[core]] = la
	if h.nextRep[core]++; h.nextRep[core] == len(tbl) {
		h.nextRep[core] = 0
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the accumulated statistics.
func (h *Hierarchy) Stats() Stats { return h.st }

// ResetStats zeroes the statistics (e.g. after warm-up).
func (h *Hierarchy) ResetStats() { h.st = Stats{} }

// Reset invalidates all caches without writing anything back — the state
// of the machine immediately after a crash and restart.
func (h *Hierarchy) Reset() {
	for _, c := range h.l1 {
		c.reset()
	}
	h.l2.reset()
}

// Access simulates core performing a load (write=false) or store
// (write=true) to address a at the given cycle, and returns where the
// access hit. Stores follow write-back/write-allocate: the line is
// brought into the core's L1 in Modified state; dirty data reaches NVMM
// only via eviction, flush, or cleanup.
//
// The body is just the L1 probe — the dominant outcome on every
// workload. The set memo (inlined) answers repeat accesses to the
// thread's current line with no call at all; the set scan and
// everything past an L1 hit live out of line.
func (h *Hierarchy) Access(core int, a Addr, write bool, now int64) AccessKind {
	la := LineOf(a)
	l1 := h.l1[core]
	i := l1.memoHit(la)
	if i < 0 {
		if i = l1.lookup(la); i < 0 {
			return h.accessSlow(core, la, write, now)
		}
	}
	l1.tick++
	l1.lines[i].lru = l1.tick
	h.st.L1Hits++
	if write && l1.lines[i].state != stateModified {
		h.upgrade(core, la, l1, i, now)
	}
	return AccessL1
}

// accessSlow resolves an L1 miss: consult the shared L2 / directory,
// fill from NVMM if needed, run coherence, train the prefetcher, and
// install the line in the requesting L1.
func (h *Hierarchy) accessSlow(core int, la Addr, write bool, now int64) AccessKind {
	// One scan resolves hit-or-victim; a miss fills the victim frame in
	// place.
	h.st.L2Accesses++
	l2i, hit := h.l2.lookupOrVictim(la)
	kind := AccessL2
	var l2l *cacheLine
	if !hit {
		kind = AccessMem
		h.st.L2Misses++
		h.mem.FetchLine(la)
		l2l = h.fillL2(l2i, la, now)
	} else {
		h.st.L2Hits++
		h.l2.touch(l2i)
		l2l = &h.l2.lines[l2i]
	}

	// Coherence actions on the existing copies.
	if own := l2l.dirtyOwner; own >= 0 && int(own) != core {
		// Another core holds the line Modified: a cache-to-cache
		// transfer (intervention). The line's dirtiness moves to the
		// L2 level; dirtySince is preserved.
		h.st.Interventions++
		oi := h.l1[own].lookup(la)
		if oi < 0 {
			panic("memsim: directory says Modified but owner L1 has no copy")
		}
		if write {
			h.l1[own].invalidate(oi)
			h.st.Invalidations++
			l2l.sharers &^= 1 << uint(own)
		} else {
			// Downgraded; dirty data now tracked at L2.
			h.l1[own].lines[oi].state = stateShared
		}
		l2l.state = stateModified
		l2l.dirtyOwner = -1
	}
	if write {
		// Invalidate all other sharers and take exclusive ownership.
		h.invalidateSharers(la, l2l, core)
		if l2l.state != stateModified && l2l.dirtyOwner < 0 {
			l2l.dirtySince = now
		}
		l2l.dirtyOwner = int8(core)
	}
	l2l.sharers |= 1 << uint(core)

	// Train the prefetcher and run ahead of the stream. This happens
	// after the demand line is resolved so prefetch fills cannot
	// invalidate the frame being accessed.
	h.prefetch(core, la, now)

	// Install in the requesting L1.
	h.installL1(core, la, write, l2i)
	return kind
}

// upgrade handles a store hitting a Shared line in the core's L1: the
// directory invalidates every other sharer and records the new owner.
// The L2 frame comes from the L1 frame's memoized index — no set scan.
func (h *Hierarchy) upgrade(core int, la Addr, l1 *cache, i int, now int64) {
	l2i := int(l1.l2i[i])
	if h.l2.addrOf(l2i) != la {
		panic("memsim: inclusion violation — L1 line missing from L2")
	}
	l2l := &h.l2.lines[l2i]
	h.st.Upgrades++
	h.invalidateSharers(la, l2l, core)
	if l2l.state != stateModified && l2l.dirtyOwner < 0 {
		l2l.dirtySince = now
	}
	l2l.dirtyOwner = int8(core)
	l1.lines[i].state = stateModified
}

// invalidateSharers removes every L1 copy of la except keep's.
func (h *Hierarchy) invalidateSharers(la Addr, l2l *cacheLine, keep int) {
	mask := l2l.sharers &^ (1 << uint(keep))
	for mask != 0 {
		for c := 0; c < h.cfg.Cores; c++ {
			if mask&(1<<uint(c)) == 0 {
				continue
			}
			if oi := h.l1[c].lookup(la); oi >= 0 {
				if h.l1[c].lines[oi].state == stateModified {
					// Merge dirtiness into L2 before dropping.
					l2l.state = stateModified
				}
				h.l1[c].invalidate(oi)
				h.st.Invalidations++
			}
		}
		mask = 0
	}
	l2l.sharers &= 1 << uint(keep)
	if l2l.dirtyOwner != int8(keep) {
		l2l.dirtyOwner = -1
	}
}

// installL1 places la into core's L1, evicting the LRU victim if
// needed, and memoizes la's L2 frame index l2i in the L1 frame.
func (h *Hierarchy) installL1(core int, la Addr, write bool, l2i int) {
	l1 := h.l1[core]
	vi := l1.victim(la)
	if l1.valid(vi) {
		h.evictL1(core, vi)
	}
	st := stateShared
	if write {
		st = stateModified
	}
	l1.lines[vi].state = st
	l1.setTag(vi, la)
	l1.l2i[vi] = int32(l2i)
	l1.touch(vi)
}

// evictL1 silently drops a clean L1 line or merges a dirty one into L2.
// The L2 frame comes from the memoized index — no set scan.
func (h *Hierarchy) evictL1(core, vi int) {
	l1 := h.l1[core]
	va := l1.addrOf(vi)
	l2i := int(l1.l2i[vi])
	if h.l2.addrOf(l2i) != va {
		panic("memsim: inclusion violation — evicting L1 line missing from L2")
	}
	l2l := &h.l2.lines[l2i]
	if l1.lines[vi].state == stateModified {
		l2l.state = stateModified
	}
	if l2l.dirtyOwner == int8(core) {
		l2l.dirtyOwner = -1
	}
	l2l.sharers &^= 1 << uint(core)
	l1.invalidate(vi)
}

// fillL2 installs la in the victim frame vi (chosen by lookupOrVictim),
// evicting (and if dirty, writing back) the previous occupant, honoring
// inclusion by recalling all L1 copies.
func (h *Hierarchy) fillL2(vi int, la Addr, now int64) *cacheLine {
	if h.l2.valid(vi) {
		h.evictL2(vi, now)
	}
	h.l2.lines[vi] = cacheLine{state: stateShared, dirtyOwner: -1}
	h.l2.setTag(vi, la)
	h.l2.touch(vi)
	return &h.l2.lines[vi]
}

// evictL2 removes the line in frame vi from the whole hierarchy
// (inclusive), writing it back to NVMM if it is dirty anywhere. This is
// the "natural eviction" that Lazy Persistency rides on.
func (h *Hierarchy) evictL2(vi int, now int64) {
	v := &h.l2.lines[vi]
	va := h.l2.addrOf(vi)
	dirty := v.state == stateModified
	for mask, c := v.sharers, 0; mask != 0; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		mask &^= 1 << uint(c)
		if oi := h.l1[c].lookup(va); oi >= 0 {
			if h.l1[c].lines[oi].state == stateModified {
				dirty = true
			}
			h.l1[c].invalidate(oi)
			h.st.Invalidations++
		}
	}
	if dirty {
		h.mem.WriteBackLine(va, CauseEvict)
		h.recordVdur(now - v.dirtySince)
	}
	h.l2.invalidate(vi)
	v.sharers = 0
	v.dirtyOwner = -1
}

// Flush simulates clflushopt: the line is invalidated from every cache
// and, if dirty anywhere, written back to NVMM. It returns true when a
// write-back happened (the flush had to move data). Flushing an uncached
// or clean line performs no NVMM write.
func (h *Hierarchy) Flush(core int, a Addr, now int64) bool {
	la := LineOf(a)
	l2i := h.l2.lookup(la)
	if l2i < 0 {
		// Not cached at any level (inclusive hierarchy) — nothing to do.
		return false
	}
	l2l := &h.l2.lines[l2i]
	dirty := l2l.state == stateModified
	for mask, c := l2l.sharers, 0; mask != 0; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		mask &^= 1 << uint(c)
		if oi := h.l1[c].lookup(la); oi >= 0 {
			if h.l1[c].lines[oi].state == stateModified {
				dirty = true
			}
			h.l1[c].invalidate(oi)
			h.st.Invalidations++
		}
	}
	if dirty {
		h.mem.WriteBackLine(la, CauseFlush)
		h.recordVdur(now - l2l.dirtySince)
	}
	h.l2.invalidate(l2i)
	l2l.sharers = 0
	l2l.dirtyOwner = -1
	return dirty
}

// CleanAll is the periodic hardware cleanup of §III-E.1 applied to the
// whole hierarchy at once: every dirty line is written back to NVMM but
// *not* evicted (clwb-like). Lines stay valid and resident; their dirty
// state clears. It returns the number of lines written.
func (h *Hierarchy) CleanAll(now int64) int {
	return h.CleanOlder(now, 0)
}

// CleanOlder is the spaced form of the periodic cleanup the paper
// describes ("the hardware cache cleanup logic can space out write backs
// to avoid bursty writeback traffic"): only lines that have been dirty
// for at least age cycles are written back. With age equal to the
// configured flush period, a line is persisted roughly one period after
// it was written — bounding recovery work — while lines still in active
// use are left alone. The paper argues the background write-backs are
// off the critical path, so no latency is charged.
func (h *Hierarchy) CleanOlder(now, age int64) int {
	n := 0
	h.l2.forEachValid(func(_ int, la Addr, l2l *cacheLine) {
		dirty := l2l.state == stateModified
		own := l2l.dirtyOwner
		if own >= 0 {
			if oi := h.l1[own].lookup(la); oi >= 0 && h.l1[own].lines[oi].state == stateModified {
				dirty = true
			}
		}
		if !dirty || now-l2l.dirtySince < age {
			return
		}
		if own >= 0 {
			if oi := h.l1[own].lookup(la); oi >= 0 && h.l1[own].lines[oi].state == stateModified {
				h.l1[own].lines[oi].state = stateShared // keep resident, now clean
			}
			l2l.dirtyOwner = -1
		}
		h.mem.WriteBackLine(la, CauseClean)
		h.recordVdur(now - l2l.dirtySince)
		l2l.state = stateShared
		n++
	})
	return n
}

// DrainDirty writes back every dirty line (eviction-cause accounting) and
// leaves the caches clean. Used at the end of an un-crashed run when an
// experiment needs the final durable image (e.g. to verify outputs), and
// by tests. Unlike CleanAll it counts as natural eviction traffic only
// when countWrites is true.
func (h *Hierarchy) DrainDirty(now int64, countWrites bool) int {
	n := 0
	h.l2.forEachValid(func(_ int, la Addr, l2l *cacheLine) {
		dirty := l2l.state == stateModified
		if own := l2l.dirtyOwner; own >= 0 {
			if oi := h.l1[own].lookup(la); oi >= 0 && h.l1[own].lines[oi].state == stateModified {
				dirty = true
				h.l1[own].lines[oi].state = stateShared
			}
			l2l.dirtyOwner = -1
		}
		if dirty {
			if countWrites {
				h.mem.WriteBackLine(la, CauseEvict)
				h.recordVdur(now - l2l.dirtySince)
			} else {
				h.mem.copyLine(la)
			}
			l2l.state = stateShared
			n++
		}
	})
	return n
}

// DirtyLines returns how many lines are currently dirty in the hierarchy.
func (h *Hierarchy) DirtyLines() int {
	n := 0
	h.l2.forEachValid(func(_ int, la Addr, l2l *cacheLine) {
		if l2l.state == stateModified {
			n++
			return
		}
		if own := l2l.dirtyOwner; own >= 0 {
			if oi := h.l1[own].lookup(la); oi >= 0 && h.l1[own].lines[oi].state == stateModified {
				n++
			}
		}
	})
	return n
}

// Cached reports whether the line containing a is resident anywhere.
func (h *Hierarchy) Cached(a Addr) bool { return h.l2.lookup(LineOf(a)) >= 0 }

func (h *Hierarchy) recordVdur(d int64) {
	if d < 0 {
		d = 0
	}
	if d > h.st.MaxVdur {
		h.st.MaxVdur = d
	}
	h.st.SumVdur += d
	h.st.NumVdur++
}
