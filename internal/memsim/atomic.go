package memsim

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"
)

// Atomic word access over the architectural image, for deployments
// (kvserve) where concurrent goroutines share the backing array: a
// single-owner writer mutates table words with AtomicStore64 while
// lock-free readers observe them with AtomicLoad64 under a seqlock.
// The simulator never uses these — its threads are time-multiplexed
// onto one goroutine at a time, so plain accesses stay on its hot path.
//
// The atomic operations use the host's native byte order while the
// plain Load64/Store64 accessors encode little-endian; NewMemory
// verifies at construction that the two agree (i.e. the host is
// little-endian), so the same word can be written atomically and read
// plainly — which pmemFile's line writers rely on.

// AtomicLoad64 atomically returns the architectural value of the
// 8-byte word at a. a must be 8-byte aligned (every pmem.U64 word is).
func (m *Memory) AtomicLoad64(a Addr) uint64 {
	return atomic.LoadUint64((*uint64)(unsafe.Pointer(&m.backing[a])))
}

// AtomicStore64 atomically sets the architectural value of the 8-byte
// word at a. a must be 8-byte aligned.
func (m *Memory) AtomicStore64(a Addr, v uint64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&m.backing[a])), v)
}

// alignedBytes allocates an 8-byte-aligned byte slice of n bytes (n a
// multiple of 8). A plain make([]byte) only guarantees byte alignment
// in principle; backing the slice with []uint64 makes the alignment
// the atomic accessors need explicit instead of an allocator accident.
func alignedBytes(n int) []byte {
	words := make([]uint64, n/8)
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// checkEndianness panics unless native and little-endian word encodings
// agree, the precondition for mixing atomic and plain word access.
func checkEndianness() {
	var probe [8]byte
	binary.LittleEndian.PutUint64(probe[:], 0x0102030405060708)
	if *(*uint64)(unsafe.Pointer(&probe[0])) != 0x0102030405060708 {
		panic("memsim: atomic word access requires a little-endian host")
	}
}
