package memsim

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	m := NewMemory(1 << 20)
	a := m.Alloc("a", 10)
	b := m.Alloc("b", 64)
	c := m.Alloc("c", 65)
	d := m.Alloc("d", 1)
	for _, addr := range []Addr{a, b, c, d} {
		if addr%LineSize != 0 {
			t.Fatalf("allocation %#x not line aligned", addr)
		}
		if addr == 0 {
			t.Fatal("allocator handed out address 0")
		}
	}
	if b != a+64 {
		t.Fatalf("10-byte allocation should consume one line: a=%#x b=%#x", a, b)
	}
	if d != c+128 {
		t.Fatalf("65-byte allocation should consume two lines: c=%#x d=%#x", c, d)
	}
	if got := len(m.Allocations()); got != 4 {
		t.Fatalf("allocation table has %d entries, want 4", got)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := NewMemory(256)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-memory")
		}
	}()
	m.Alloc("too-big", 1<<20)
}

func TestAllocBadSizePanics(t *testing.T) {
	m := NewMemory(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive size")
		}
	}()
	m.Alloc("zero", 0)
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc("x", 64)
	m.Store64(a, 0xdeadbeefcafef00d)
	if got := m.Load64(a); got != 0xdeadbeefcafef00d {
		t.Fatalf("Load64 = %#x", got)
	}
	m.StoreFloat64(a+8, 3.25)
	if got := m.LoadFloat64(a + 8); got != 3.25 {
		t.Fatalf("LoadFloat64 = %v", got)
	}
}

func TestDurabilityIsExplicit(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc("x", 64)
	m.Store64(a, 42)
	if got := m.DurableLoad64(a); got != 0 {
		t.Fatalf("store reached NVMM without write-back: durable=%d", got)
	}
	m.WriteBackLine(a, CauseEvict)
	if got := m.DurableLoad64(a); got != 42 {
		t.Fatalf("durable after write-back = %d, want 42", got)
	}
	total, evict, flush, clean := m.NVMMWrites()
	if total != 1 || evict != 1 || flush != 0 || clean != 0 {
		t.Fatalf("write accounting = %d/%d/%d/%d", total, evict, flush, clean)
	}
}

func TestCrashDiscardsUnpersistedStores(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc("x", 128)
	m.Store64(a, 1)
	m.WriteBackLine(a, CauseFlush)
	m.Store64(a, 2)    // newer value, not written back
	m.Store64(a+64, 3) // different line, never written back
	m.Crash()
	if got := m.Load64(a); got != 1 {
		t.Fatalf("after crash, line with write-back should hold 1, got %d", got)
	}
	if got := m.Load64(a + 64); got != 0 {
		t.Fatalf("after crash, never-persisted line should be zero, got %d", got)
	}
}

func TestPersistInitializesDurable(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc("x", 64)
	m.Store64(a, 7)
	m.Persist(a, 64)
	before, _, _, _ := m.NVMMWrites()
	if before != 0 {
		t.Fatal("Persist must not count NVMM traffic")
	}
	m.Crash()
	if got := m.Load64(a); got != 7 {
		t.Fatalf("Persist did not reach durable image: %d", got)
	}
}

func TestWriteBackCauseSplit(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc("x", 64*3)
	m.WriteBackLine(a, CauseEvict)
	m.WriteBackLine(a+64, CauseFlush)
	m.WriteBackLine(a+128, CauseClean)
	total, evict, flush, clean := m.NVMMWrites()
	if total != 3 || evict != 1 || flush != 1 || clean != 1 {
		t.Fatalf("cause split = %d/%d/%d/%d", total, evict, flush, clean)
	}
	m.ResetCounters()
	total, _, _, _ = m.NVMMWrites()
	if total != 0 || m.NVMMReads() != 0 {
		t.Fatal("ResetCounters did not zero counters")
	}
}

func TestLineOfProperty(t *testing.T) {
	f := func(a uint64) bool {
		la := LineOf(Addr(a))
		return la%LineSize == 0 && la <= Addr(a) && Addr(a)-la < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a word's durable value is always the value it had at its most
// recent write-back (or its initial value), regardless of the
// architectural churn in between.
func TestDurableTracksLastWriteBackProperty(t *testing.T) {
	type op struct {
		Line  uint8
		Val   uint64
		Flush bool
	}
	f := func(ops []op) bool {
		m := NewMemory(1 << 12)
		base := m.Alloc("arr", 16*LineSize)
		shadow := make(map[Addr]uint64) // expected durable values
		for _, o := range ops {
			a := base + Addr(int(o.Line)%16)*LineSize
			m.Store64(a, o.Val)
			if o.Flush {
				m.WriteBackLine(a, CauseFlush)
				shadow[a] = o.Val
			}
		}
		m.Crash()
		for i := 0; i < 16; i++ {
			a := base + Addr(i)*LineSize
			if m.Load64(a) != shadow[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
