// Package profiling wires the -cpuprofile/-memprofile flags of the CLI
// front ends to runtime/pprof, so hot-path claims about the simulator
// and the experiment runner can be verified with go tool pprof.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (empty = off) and returns an
// idempotent stop function that also dumps a heap profile to memPath
// (empty = off). Call the stop function before the process exits —
// including on error paths, profiles truncate otherwise.
func Start(tool, cpuPath, memPath string) func() {
	fail := func(flagName string, err error) {
		fmt.Fprintf(os.Stderr, "%s: -%s: %v\n", tool, flagName, err)
		os.Exit(2)
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail("cpuprofile", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", tool, err)
			return
		}
		defer f.Close()
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", tool, err)
		}
	}
}
