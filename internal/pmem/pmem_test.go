package pmem

import (
	"testing"
	"testing/quick"

	"lazyp/internal/memsim"
)

func TestF64Vector(t *testing.T) {
	m := memsim.NewMemory(1 << 16)
	v := AllocF64(m, "v", 10)
	c := &Native{Mem: m}
	v.Fill(m, func(i int) float64 { return float64(i) * 1.5 })
	for i := 0; i < 10; i++ {
		if v.Load(c, i) != float64(i)*1.5 {
			t.Fatalf("element %d wrong", i)
		}
	}
	v.Store(c, 3, -7)
	snap := v.Snapshot(m)
	if snap[3] != -7 || len(snap) != 10 {
		t.Fatal("Store/Snapshot broken")
	}
	// Fill persisted durably.
	m.Crash()
	if v.Load(c, 4) != 6 {
		t.Fatal("Fill was not durable")
	}
}

func TestMatrixAddressing(t *testing.T) {
	m := memsim.NewMemory(1 << 20)
	mx := AllocMatrix(m, "m", 16)
	if mx.Addr(0, 0)%memsim.LineSize != 0 {
		t.Fatal("matrix base not line aligned")
	}
	if mx.Addr(2, 3) != mx.Base+memsim.Addr((2*16+3)*8) {
		t.Fatal("row-major addressing broken")
	}
	c := &Native{Mem: m}
	mx.Fill(m, func(i, j int) float64 { return float64(i*100 + j) })
	if mx.Load(c, 5, 7) != 507 {
		t.Fatal("Fill/Load mismatch")
	}
	mx.Store(c, 5, 7, 1.25)
	if mx.Snapshot(m)[5*16+7] != 1.25 {
		t.Fatal("Snapshot mismatch")
	}
}

func TestU64OutOfRangePanics(t *testing.T) {
	m := memsim.NewMemory(1 << 16)
	v := AllocU64(m, "v", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index should panic")
		}
	}()
	v.Addr(4)
}

func TestNativeCtxBasics(t *testing.T) {
	m := memsim.NewMemory(1 << 16)
	a := m.Alloc("x", 64)
	c := &Native{Mem: m, ID: 3}
	if c.ThreadID() != 3 {
		t.Fatal("ThreadID")
	}
	c.Store64(a, 42)
	if c.Load64(a) != 42 {
		t.Fatal("Load64")
	}
	c.StoreF(a+8, 1.5)
	if c.LoadF(a+8) != 1.5 {
		t.Fatal("LoadF")
	}
	// Native Flush/Fence/Compute are no-ops and must not write NVMM.
	c.Flush(a)
	c.Fence()
	c.Compute(100)
	if w, _, _, _ := m.NVMMWrites(); w != 0 {
		t.Fatal("native ctx produced NVMM traffic")
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		return v != v /* NaN payloads may differ */ || Float64From(Float64Bits(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
