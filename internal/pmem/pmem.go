// Package pmem provides typed views (words, float64 vectors, matrices)
// over the simulated persistent address space, plus the Ctx execution
// interface that workload kernels are written against.
//
// A kernel parameterized by Ctx runs in two modes:
//
//   - simulated: Ctx is a *sim.Thread — every access goes through the
//     cache hierarchy and the timing model;
//   - native: Ctx is a *Native — accesses touch the backing array
//     directly with no simulation, for golden-output computation and for
//     the paper's real-machine experiment (Table VII) where only
//     wall-clock time matters.
package pmem

import (
	"math"

	"lazyp/internal/memsim"
)

// Ctx is the execution context a simulated (or native) thread exposes to
// workload kernels: data access, Eager Persistency primitives, and
// compute-cost accounting. *sim.Thread implements it.
type Ctx interface {
	// Load64 / Store64 access one 8-byte word.
	Load64(a memsim.Addr) uint64
	Store64(a memsim.Addr, v uint64)
	// LoadF / StoreF are float64 views of the same words.
	LoadF(a memsim.Addr) float64
	StoreF(a memsim.Addr, v float64)
	// Flush issues clflushopt for the line containing a.
	Flush(a memsim.Addr)
	// Fence issues sfence (orders and awaits durability of prior
	// stores and flushes by this thread).
	Fence()
	// Compute charges n ALU instructions to the timing model.
	Compute(n int)
	// ThreadID identifies the calling thread.
	ThreadID() int
}

// Float64Bits converts a float64 to its raw word (math.Float64bits).
func Float64Bits(v float64) uint64 { return math.Float64bits(v) }

// Float64From converts a raw word back to float64.
func Float64From(w uint64) float64 { return math.Float64frombits(w) }

// Native is a Ctx that accesses memory directly with zero simulation.
// Flush and Fence are no-ops — matching the paper's real-machine runs,
// which execute on a DRAM system and measure execution time only.
type Native struct {
	Mem *memsim.Memory
	ID  int
}

// Load64 implements Ctx.
func (n *Native) Load64(a memsim.Addr) uint64 { return n.Mem.Load64(a) }

// Store64 implements Ctx.
func (n *Native) Store64(a memsim.Addr, v uint64) { n.Mem.Store64(a, v) }

// LoadF implements Ctx.
func (n *Native) LoadF(a memsim.Addr) float64 { return math.Float64frombits(n.Mem.Load64(a)) }

// StoreF implements Ctx.
func (n *Native) StoreF(a memsim.Addr, v float64) { n.Mem.Store64(a, math.Float64bits(v)) }

// Flush implements Ctx (no-op natively).
func (n *Native) Flush(memsim.Addr) {}

// Fence implements Ctx (no-op natively).
func (n *Native) Fence() {}

// Compute implements Ctx (no-op natively).
func (n *Native) Compute(int) {}

// ThreadID implements Ctx.
func (n *Native) ThreadID() int { return n.ID }
