package pmem

import (
	"fmt"

	"lazyp/internal/memsim"
)

// WordSize is the size of every element type in this package.
const WordSize = 8

// F64 is a persistent vector of float64.
type F64 struct {
	Base memsim.Addr
	N    int
}

// AllocF64 reserves a float64 vector of length n.
func AllocF64(m *memsim.Memory, name string, n int) F64 {
	return F64{Base: m.Alloc(name, n*WordSize), N: n}
}

// Addr returns the address of element i.
func (v F64) Addr(i int) memsim.Addr {
	return v.Base + memsim.Addr(i*WordSize)
}

// Load reads element i through ctx.
func (v F64) Load(c Ctx, i int) float64 { return c.LoadF(v.Addr(i)) }

// Store writes element i through ctx.
func (v F64) Store(c Ctx, i int, x float64) { c.StoreF(v.Addr(i), x) }

// Fill initializes the vector directly in memory — architectural and
// durable images both — without simulation. Use it only for input setup
// before measured execution.
func (v F64) Fill(m *memsim.Memory, f func(i int) float64) {
	for i := 0; i < v.N; i++ {
		m.StoreFloat64(v.Addr(i), f(i))
	}
	m.Persist(v.Base, v.N*WordSize)
}

// Snapshot copies the architectural contents into a Go slice.
func (v F64) Snapshot(m *memsim.Memory) []float64 {
	out := make([]float64, v.N)
	for i := range out {
		out[i] = m.LoadFloat64(v.Addr(i))
	}
	return out
}

// Matrix is a persistent row-major n×n matrix of float64. (The paper's
// kernels all use square matrices; rows are line-aligned when n*8 is a
// multiple of the 64-byte line, which holds for all our configurations.)
type Matrix struct {
	Base memsim.Addr
	N    int
}

// AllocMatrix reserves an n×n matrix.
func AllocMatrix(m *memsim.Memory, name string, n int) Matrix {
	return Matrix{Base: m.Alloc(name, n*n*WordSize), N: n}
}

// Addr returns the address of element (i, j).
func (mx Matrix) Addr(i, j int) memsim.Addr {
	return mx.Base + memsim.Addr((i*mx.N+j)*WordSize)
}

// Load reads element (i, j) through ctx.
func (mx Matrix) Load(c Ctx, i, j int) float64 { return c.LoadF(mx.Addr(i, j)) }

// Store writes element (i, j) through ctx.
func (mx Matrix) Store(c Ctx, i, j int, x float64) { c.StoreF(mx.Addr(i, j), x) }

// Fill initializes the matrix directly (architectural + durable).
func (mx Matrix) Fill(m *memsim.Memory, f func(i, j int) float64) {
	for i := 0; i < mx.N; i++ {
		for j := 0; j < mx.N; j++ {
			m.StoreFloat64(mx.Addr(i, j), f(i, j))
		}
	}
	m.Persist(mx.Base, mx.N*mx.N*WordSize)
}

// Snapshot copies the architectural contents into a Go slice (row-major).
func (mx Matrix) Snapshot(m *memsim.Memory) []float64 {
	out := make([]float64, mx.N*mx.N)
	for i := 0; i < mx.N; i++ {
		for j := 0; j < mx.N; j++ {
			out[i*mx.N+j] = m.LoadFloat64(mx.Addr(i, j))
		}
	}
	return out
}

// U64 is a persistent vector of raw 64-bit words (used for checksum
// tables, logs, and progress markers).
type U64 struct {
	Base memsim.Addr
	N    int
}

// AllocU64 reserves a word vector of length n.
func AllocU64(m *memsim.Memory, name string, n int) U64 {
	return U64{Base: m.Alloc(name, n*WordSize), N: n}
}

// Addr returns the address of word i.
func (v U64) Addr(i int) memsim.Addr {
	// The panic lives out of line so Addr stays inlinable — it runs on
	// every simulated log/marker/checksum word access.
	if uint(i) >= uint(v.N) {
		v.badIndex(i)
	}
	return v.Base + memsim.Addr(i*WordSize)
}

func (v U64) badIndex(i int) {
	panic(fmt.Sprintf("pmem: U64 index %d out of range [0,%d)", i, v.N))
}

// Load reads word i through ctx.
func (v U64) Load(c Ctx, i int) uint64 { return c.Load64(v.Addr(i)) }

// Store writes word i through ctx.
func (v U64) Store(c Ctx, i int, x uint64) { c.Store64(v.Addr(i), x) }

// Snapshot copies the architectural contents into a Go slice.
func (v U64) Snapshot(m *memsim.Memory) []uint64 {
	out := make([]uint64, v.N)
	for i := range out {
		out[i] = m.Load64(v.Addr(i))
	}
	return out
}

// Fill initializes every word to x directly (architectural + durable).
func (v U64) Fill(m *memsim.Memory, x uint64) {
	for i := 0; i < v.N; i++ {
		m.Store64(v.Addr(i), x)
	}
	m.Persist(v.Base, v.N*WordSize)
}
