package ep

import (
	"lazyp/internal/checksum"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// EagerLP is the strategy Lazy Persistency recovery re-executes regions
// under (§III-E: "we choose Eager Persistency for the recovery code, to
// ensure forward progress"): region data is flushed and fenced at region
// end like EagerRecompute, *and* the region's checksum is folded and
// committed eagerly so that the checksum table stays consistent for any
// subsequent failure.
type EagerLP struct {
	Table *lp.Table
	thr   []*eagerLPTS
}

// NewEagerLP builds the recovery strategy over the workload's checksum
// table and code.
func NewEagerLP(table *lp.Table, kind checksum.Kind, nthreads int) *EagerLP {
	s := &EagerLP{Table: table}
	s.thr = make([]*eagerLPTS, nthreads)
	for i := range s.thr {
		s.thr[i] = &eagerLPTS{
			parent: s,
			state:  checksum.New(kind),
			cost:   kind.CostPerAdd(),
			lines:  NewLineSet(),
		}
	}
	return s
}

// Name implements lp.Strategy.
func (s *EagerLP) Name() string { return "eager-lp" }

// Thread implements lp.Strategy.
func (s *EagerLP) Thread(tid int) lp.ThreadStrategy { return s.thr[tid] }

type eagerLPTS struct {
	parent *EagerLP
	state  checksum.State
	cost   int
	key    int
	lines  *LineSet
}

func (t *eagerLPTS) Begin(c pmem.Ctx, key int) {
	t.key = key
	t.state.Reset()
	t.lines.Reset()
	c.Compute(1)
}

func (t *eagerLPTS) Store64(c pmem.Ctx, a memsim.Addr, v uint64) {
	c.Store64(a, v)
	t.state.Add(v)
	t.lines.Add(a)
	c.Compute(t.cost + 1)
}

func (t *eagerLPTS) StoreF(c pmem.Ctx, a memsim.Addr, v float64) {
	t.Store64(c, a, pmem.Float64Bits(v))
}

func (t *eagerLPTS) End(c pmem.Ctx) {
	for _, la := range t.lines.Lines() {
		c.Flush(la)
	}
	c.Fence()
	t.parent.Table.StoreSumEager(c, t.key, t.state.Sum())
}
