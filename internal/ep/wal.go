package ep

import (
	"fmt"

	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
)

// WAL is the write-ahead-logging durable-transaction strategy of the
// paper's Figure 2, generalized from one loop iteration to one region:
//
//  1. create undo-log entries (address, old value) for every store in
//     the region, flush them, fence;
//  2. set the per-thread logStatus word to "in transaction" with the
//     region key, flush, fence;
//  3. apply the region's data stores, flush their lines, fence;
//  4. clear logStatus (publishing the key as committed), flush, fence.
//
// Four flush+fence sequences per region, exactly as in Figure 2. Because
// all log entries must be durable *before* any data store, the region's
// stores are buffered until End; kernels must therefore not read a
// location they stored earlier in the same region (none of the paper's
// kernels do — each region writes each output element once).
type WAL struct {
	// Status holds each thread's logStatus word: key<<1 | inTx.
	Status Markers
	// Obs, when non-nil, tallies transactions/flushes/fences (one
	// branch and three atomic adds per committed transaction).
	Obs    *Tally
	logs   []pmem.U64
	counts []pmem.U64
	thr    []*walTS
}

// walStatus packs a region key and the in-transaction bit.
func walStatus(key int, inTx bool) uint64 {
	v := uint64(key) << 1
	if inTx {
		v |= 1
	}
	return v
}

// WALStatus unpacks a status word (for recovery and tests). ok is false
// for the durable initial value (no transaction ever ran).
func WALStatus(v uint64) (key int, inTx, ok bool) {
	if v == MarkerNone {
		return 0, false, false
	}
	return int(v >> 1), v&1 != 0, true
}

// NewWAL builds the WAL strategy. maxStores bounds the stores a single
// region may perform (log capacity); exceeding it panics.
func NewWAL(m *memsim.Memory, name string, nthreads, maxStores int) *WAL {
	s := &WAL{Status: NewMarkers(m, name+".status", nthreads)}
	s.logs = make([]pmem.U64, nthreads)
	s.counts = make([]pmem.U64, nthreads)
	s.thr = make([]*walTS, nthreads)
	for i := range s.thr {
		s.logs[i] = pmem.AllocU64(m, fmt.Sprintf("%s.log%d", name, i), 2*maxStores)
		s.counts[i] = pmem.AllocU64(m, fmt.Sprintf("%s.logcount%d", name, i), markerStride)
		s.counts[i].Fill(m, 0)
		s.thr[i] = &walTS{parent: s, tid: i, max: maxStores, lines: NewLineSet()}
	}
	return s
}

// Name implements lp.Strategy.
func (s *WAL) Name() string { return "wal" }

// Thread implements lp.Strategy.
func (s *WAL) Thread(tid int) lp.ThreadStrategy { return s.thr[tid] }

// Log exposes thread tid's undo log (recovery, tests).
func (s *WAL) Log(tid int) pmem.U64 { return s.logs[tid] }

// LogCount exposes thread tid's persistent entry-count word.
func (s *WAL) LogCount(tid int) pmem.U64 { return s.counts[tid] }

type pendingStore struct {
	addr memsim.Addr
	val  uint64
}

type walTS struct {
	parent *WAL
	tid    int
	key    int
	max    int
	buf    []pendingStore
	lines  *LineSet
}

func (t *walTS) Begin(c pmem.Ctx, key int) {
	t.key = key
	t.buf = t.buf[:0]
	c.Compute(1)
}

func (t *walTS) Store64(c pmem.Ctx, a memsim.Addr, v uint64) {
	if len(t.buf) >= t.max {
		panic(fmt.Sprintf("ep: WAL region exceeded maxStores=%d", t.max))
	}
	t.buf = append(t.buf, pendingStore{addr: a, val: v})
	c.Compute(2) // log bookkeeping
}

func (t *walTS) StoreF(c pmem.Ctx, a memsim.Addr, v float64) {
	t.Store64(c, a, pmem.Float64Bits(v))
}

func (t *walTS) End(c pmem.Ctx) {
	p := t.parent
	log := p.logs[t.tid]
	count := p.counts[t.tid]

	// (1) Create and persist the undo log: (address, old value) pairs.
	for i, st := range t.buf {
		old := c.Load64(st.addr)
		log.Store(c, 2*i, uint64(st.addr))
		log.Store(c, 2*i+1, old)
	}
	count.Store(c, 0, uint64(len(t.buf)))
	PersistRange(c, log.Addr(0), 2*len(t.buf)*pmem.WordSize)
	c.Flush(count.Addr(0))
	c.Fence()

	// (2) Durably enter the transaction.
	p.Status.StoreEager(c, t.tid, walStatus(t.key, true))

	// (3) Apply and persist the data stores.
	t.lines.Reset()
	for _, st := range t.buf {
		c.Store64(st.addr, st.val)
		t.lines.Add(st.addr)
	}
	for _, la := range t.lines.Lines() {
		c.Flush(la)
	}
	c.Fence()

	// (4) Durably commit (clear inTx, publish the key).
	p.Status.StoreEager(c, t.tid, walStatus(t.key, false))

	if o := p.Obs; o != nil {
		// Mirror the flush sequence above: the log window's lines plus
		// the count line (1), the two status publishes (2), and the
		// region's deduplicated data lines.
		logLines := 0
		if n := 2 * len(t.buf); n > 0 {
			logLines = int(memsim.LineOf(log.Addr(n-1))-memsim.LineOf(log.Addr(0)))/memsim.LineSize + 1
		}
		o.Regions.Inc()
		o.Flushes.Add(uint64(logLines + 3 + len(t.lines.Lines())))
		o.Fences.Add(4)
	}
}

// WALRecover rolls back any in-flight transaction of thread tid using
// its undo log, eagerly persisting the restored values. It returns the
// key found in the status word and whether the crash interrupted that
// transaction (inTx): if inTx, region key was rolled back and must be
// re-executed; otherwise key committed and execution resumes after it.
// ok is false when the thread never started a transaction.
//
// Rollback is idempotent and the status word is left untouched until the
// re-executed region commits, so a second failure during or after
// recovery simply rolls back again — forward progress is preserved.
func (s *WAL) WALRecover(c pmem.Ctx, tid int) (key int, inTx, ok bool) {
	k, in, valid := WALStatus(s.Status.Load(c, tid))
	if !valid || !in {
		return k, false, valid
	}
	// Crash happened inside transaction k: restore old values.
	n := int(s.counts[tid].Load(c, 0))
	log := s.logs[tid]
	for i := 0; i < n; i++ {
		addr := memsim.Addr(log.Load(c, 2*i))
		old := log.Load(c, 2*i+1)
		c.Store64(addr, old)
		c.Flush(addr)
	}
	c.Fence()
	return k, true, true
}
