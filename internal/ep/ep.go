// Package ep implements the Eager Persistency baselines the paper
// compares against (§V-C, Figure 10):
//
//   - Recompute — the state-of-the-art EagerRecompute scheme of
//     Elnawawy et al. (PACT 2017): no logging; each region's stores are
//     flushed with clflushopt and fenced at region end, then a per-thread
//     progress marker is persisted. Recovery rolls back to the marker and
//     recomputes everything after it.
//   - WAL — durable transactions with write-ahead (undo) logging built
//     from Intel PMEM primitives, following the paper's Figure 2: four
//     flush+fence sequences per transaction (log creation, logStatus set,
//     data persist, logStatus clear).
//
// Package ep also provides the eager primitives (PersistRange, LineSet)
// that Lazy Persistency's *recovery* code uses: recovery is always eager
// so that it makes forward progress across repeated failures (§III-E).
package ep

import (
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/obs"
	"lazyp/internal/pmem"
)

// Tally counts a discipline's eager ordering points — completed
// regions and the flushes and fences they issued. Attached optionally
// (nil, the simulator's configuration, costs one branch per region
// end); kvserve wires one per discipline so the eager baselines'
// write-amplification story is scrapeable next to LP's journal
// counters.
type Tally struct {
	Regions *obs.Counter // ep_regions_total: regions (EP) / transactions (WAL) completed
	Flushes *obs.Counter // ep_flushes_total: clflushopt-equivalents issued
	Fences  *obs.Counter // ep_fences_total: persist fences issued
}

// NewTally resolves the counters under sc with the discipline label.
func NewTally(sc obs.Scope, discipline string) *Tally {
	sc = sc.With("discipline", discipline)
	return &Tally{
		Regions: sc.Counter("ep_regions_total"),
		Flushes: sc.Counter("ep_flushes_total"),
		Fences:  sc.Counter("ep_fences_total"),
	}
}

// PersistRange flushes every cache line overlapping [base, base+size).
// The caller issues the Fence (flushes from one fence batch overlap, as
// with clflushopt on real hardware).
func PersistRange(c pmem.Ctx, base memsim.Addr, size int) {
	first := memsim.LineOf(base)
	last := memsim.LineOf(base + memsim.Addr(size) - 1)
	for la := first; la <= last; la += memsim.LineSize {
		c.Flush(la)
	}
}

// PersistValue stores v at a, flushes the line, and fences — the
// store/clflushopt/sfence triple of the PMEM model.
func PersistValue(c pmem.Ctx, a memsim.Addr, v uint64) {
	c.Store64(a, v)
	c.Flush(a)
	c.Fence()
}

// LineSet deduplicates the cache lines written by a region so each line
// is flushed once per region end, matching how the paper's tile size is
// chosen "so that one stride is persisted using only one clflushopt".
// Small regions — a KV put writes one or two lines — dedup by scanning
// the order slice; the map only materializes once a region outgrows the
// scan threshold (kernel regions with hundreds of lines) and is then
// kept across Resets.
type LineSet struct {
	seen  map[memsim.Addr]struct{} // nil while the linear scan suffices
	order []memsim.Addr
}

// lineSetScanMax is the set size beyond which Add switches from the
// linear scan to the map.
const lineSetScanMax = 16

// NewLineSet returns an empty set.
func NewLineSet() *LineSet {
	return &LineSet{}
}

// Add records the line containing a. It returns true on first sight.
func (s *LineSet) Add(a memsim.Addr) bool {
	la := memsim.LineOf(a)
	if s.seen == nil {
		for _, x := range s.order {
			if x == la {
				return false
			}
		}
		s.order = append(s.order, la)
		if len(s.order) > lineSetScanMax {
			s.seen = make(map[memsim.Addr]struct{}, 2*lineSetScanMax)
			for _, x := range s.order {
				s.seen[x] = struct{}{}
			}
		}
		return true
	}
	if _, ok := s.seen[la]; ok {
		return false
	}
	s.seen[la] = struct{}{}
	s.order = append(s.order, la)
	return true
}

// Lines returns the recorded lines in first-write order.
func (s *LineSet) Lines() []memsim.Addr { return s.order }

// Reset empties the set, retaining capacity.
func (s *LineSet) Reset() {
	if s.seen != nil {
		clear(s.seen)
	}
	s.order = s.order[:0]
}

// MarkerNone is the durable initial value of progress markers: no region
// completed yet.
const MarkerNone = ^uint64(0)

// markerStride spaces per-thread marker words one cache line apart so
// markers of different threads never share (and ping-pong) a line.
const markerStride = memsim.LineSize / pmem.WordSize

// Markers is a per-thread array of durable progress words, one cache
// line apart.
type Markers struct {
	words pmem.U64
}

// NewMarkers allocates and durably initializes one marker per thread.
func NewMarkers(m *memsim.Memory, name string, nthreads int) Markers {
	w := pmem.AllocU64(m, name, nthreads*markerStride)
	w.Fill(m, MarkerNone)
	return Markers{words: w}
}

// Addr returns the address of thread tid's marker.
func (mk Markers) Addr(tid int) memsim.Addr { return mk.words.Addr(tid * markerStride) }

// Load reads thread tid's marker.
func (mk Markers) Load(c pmem.Ctx, tid int) uint64 { return mk.words.Load(c, tid*markerStride) }

// StoreEager durably publishes thread tid's marker (store+flush+fence).
func (mk Markers) StoreEager(c pmem.Ctx, tid int, v uint64) {
	mk.words.Store(c, tid*markerStride, v)
	c.Flush(mk.Addr(tid))
	c.Fence()
}

// Recompute is the EagerRecompute strategy.
type Recompute struct {
	// Markers holds each thread's last-completed region key.
	Markers Markers
	// Obs, when non-nil, tallies regions/flushes/fences (one branch
	// and at most three atomic adds per region end).
	Obs     *Tally
	threads []*recomputeTS
}

// NewRecompute builds the EagerRecompute strategy for nthreads threads,
// allocating its persistent progress markers from m.
func NewRecompute(m *memsim.Memory, name string, nthreads int) *Recompute {
	s := &Recompute{Markers: NewMarkers(m, name+".markers", nthreads)}
	s.threads = make([]*recomputeTS, nthreads)
	for i := range s.threads {
		s.threads[i] = &recomputeTS{parent: s, tid: i}
	}
	return s
}

// Name implements lp.Strategy.
func (s *Recompute) Name() string { return "ep" }

// Thread implements lp.Strategy.
func (s *Recompute) Thread(tid int) lp.ThreadStrategy { return s.threads[tid] }

type recomputeTS struct {
	parent   *Recompute
	tid      int
	key      int
	lastLine memsim.Addr
	nflush   int // flushes issued by the open region (thread-private)
}

func (t *recomputeTS) Begin(c pmem.Ctx, key int) {
	t.key = key
	t.lastLine = 0
	t.nflush = 0
	c.Compute(1)
}

// Store64 persists "as it goes": when the store moves to a new cache
// line, the just-completed line is flushed immediately, overlapping the
// controller's drain with the region's remaining computation. The
// paper's tile size is chosen so "one stride is persisted using only one
// clflushopt" — this is that inline flush. Lines written more than once
// in a region (none of our kernels do this within a region) would simply
// be flushed more than once, which is correct but wasteful — exactly
// EagerRecompute's coalescing weakness the paper measures.
func (t *recomputeTS) Store64(c pmem.Ctx, a memsim.Addr, v uint64) {
	c.Store64(a, v)
	c.Compute(1) // flush bookkeeping
	la := memsim.LineOf(a)
	if la != t.lastLine {
		if t.lastLine != 0 {
			c.Flush(t.lastLine)
			t.nflush++
		}
		t.lastLine = la
	}
}

func (t *recomputeTS) StoreF(c pmem.Ctx, a memsim.Addr, v float64) {
	t.Store64(c, a, pmem.Float64Bits(v))
}

// End flushes the final line, waits for all of the region's flushes to
// reach the durability domain, then durably advances the thread's
// progress marker — EagerRecompute "waits after finishing each tile
// until all data modified in the transaction is persistent".
func (t *recomputeTS) End(c pmem.Ctx) {
	if t.lastLine != 0 {
		c.Flush(t.lastLine)
		t.nflush++
		t.lastLine = 0
	}
	c.Fence()
	t.parent.Markers.StoreEager(c, t.tid, uint64(t.key))
	if o := t.parent.Obs; o != nil {
		o.Regions.Inc()
		o.Flushes.Add(uint64(t.nflush) + 1) // +1: the marker's flush
		o.Fences.Add(2)                     // region fence + marker fence
	}
}
