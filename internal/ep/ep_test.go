package ep

import (
	"testing"

	"lazyp/internal/checksum"
	"lazyp/internal/lp"
	"lazyp/internal/memsim"
	"lazyp/internal/pmem"
	"lazyp/internal/sim"
)

func TestLineSetDedup(t *testing.T) {
	s := NewLineSet()
	if !s.Add(100) {
		t.Fatal("first add should be new")
	}
	if s.Add(101) { // same line as 100
		t.Fatal("same-line add should dedup")
	}
	if !s.Add(200) {
		t.Fatal("new line rejected")
	}
	if len(s.Lines()) != 2 {
		t.Fatalf("lines = %v", s.Lines())
	}
	s.Reset()
	if len(s.Lines()) != 0 || !s.Add(100) {
		t.Fatal("Reset broken")
	}
}

func TestMarkersAreLineSpaced(t *testing.T) {
	m := memsim.NewMemory(1 << 16)
	mk := NewMarkers(m, "m", 4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if memsim.LineOf(mk.Addr(i)) == memsim.LineOf(mk.Addr(j)) {
				t.Fatalf("markers %d and %d share a cache line", i, j)
			}
		}
	}
	c := &pmem.Native{Mem: m}
	if mk.Load(c, 2) != MarkerNone {
		t.Fatal("marker not durably initialized to MarkerNone")
	}
}

func TestRecomputePersistsRegionAndMarker(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	arr := pmem.AllocF64(mem, "arr", 64)
	rec := NewRecompute(mem, "w", 1)
	eng := sim.New(sim.DefaultConfig(1), mem)
	eng.Run(func(th *sim.Thread) {
		ts := rec.Thread(0)
		ts.Begin(th, 7)
		for i := 0; i < 64; i++ {
			ts.StoreF(th, arr.Addr(i), float64(i))
		}
		ts.End(th)
	})
	// After End (flush-all + fence + marker), everything must be
	// durable: crash and check.
	mem.Crash()
	c := &pmem.Native{Mem: mem}
	for i := 0; i < 64; i++ {
		if arr.Load(c, i) != float64(i) {
			t.Fatalf("element %d not durable after EagerRecompute region end", i)
		}
	}
	if got := rec.Markers.Load(c, 0); got != 7 {
		t.Fatalf("marker = %d, want 7", got)
	}
}

func TestWALCommitAndStatus(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	arr := pmem.AllocU64(mem, "arr", 16)
	w := NewWAL(mem, "w", 1, 16)
	if w.Name() != "wal" {
		t.Fatal("name")
	}
	eng := sim.New(sim.DefaultConfig(1), mem)
	eng.Run(func(th *sim.Thread) {
		ts := w.Thread(0)
		ts.Begin(th, 3)
		for i := 0; i < 8; i++ {
			ts.Store64(th, arr.Addr(i), uint64(1000+i))
		}
		ts.End(th)
	})
	mem.Crash()
	c := &pmem.Native{Mem: mem}
	for i := 0; i < 8; i++ {
		if arr.Load(c, i) != uint64(1000+i) {
			t.Fatalf("WAL-committed value %d lost", i)
		}
	}
	key, inTx, ok := WALStatus(w.Status.Load(c, 0))
	if !ok || inTx || key != 3 {
		t.Fatalf("status = (%d,%v,%v), want committed key 3", key, inTx, ok)
	}
}

func TestWALRollbackRestoresOldValues(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	arr := pmem.AllocU64(mem, "arr", 16)
	arr.Fill(mem, 5) // durable old values
	w := NewWAL(mem, "w", 1, 16)

	// Simulate a crash between "logStatus=1 durable" and data persist:
	// run the transaction but crash mid-flight. To hit the window
	// deterministically we drive the phases manually: create the log
	// and status durably, apply the stores only architecturally.
	c := &pmem.Native{Mem: mem}
	log := w.Log(0)
	for i := 0; i < 4; i++ {
		log.Store(c, 2*i, uint64(arr.Addr(i)))
		log.Store(c, 2*i+1, 5) // old value
	}
	w.LogCount(0).Store(c, 0, 4)
	mem.Persist(log.Addr(0), 8*8)
	mem.Persist(w.LogCount(0).Addr(0), 8)
	mem.Store64(w.Status.Addr(0), 7<<1|1) // inTx, key 7
	mem.Persist(w.Status.Addr(0), 8)
	// Partially-persisted new data:
	mem.Store64(arr.Addr(0), 999)
	mem.Persist(arr.Addr(0), 8)
	mem.Crash()

	key, inTx, ok := w.WALRecover(c, 0)
	if !ok || !inTx || key != 7 {
		t.Fatalf("WALRecover = (%d,%v,%v)", key, inTx, ok)
	}
	for i := 0; i < 4; i++ {
		if arr.Load(c, i) != 5 {
			t.Fatalf("rollback did not restore element %d", i)
		}
	}
	// Rollback is idempotent.
	if k2, in2, ok2 := w.WALRecover(c, 0); k2 != 7 || !in2 || !ok2 {
		t.Fatal("second rollback differs")
	}
}

func TestWALRecoverNoHistory(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	w := NewWAL(mem, "w", 2, 4)
	c := &pmem.Native{Mem: mem}
	if _, _, ok := w.WALRecover(c, 1); ok {
		t.Fatal("fresh WAL should report no transaction history")
	}
}

func TestWALOverflowPanics(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	arr := pmem.AllocU64(mem, "arr", 16)
	w := NewWAL(mem, "w", 1, 2)
	c := &pmem.Native{Mem: mem}
	ts := w.Thread(0)
	ts.Begin(c, 0)
	ts.Store64(c, arr.Addr(0), 1)
	ts.Store64(c, arr.Addr(1), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding maxStores should panic")
		}
	}()
	ts.Store64(c, arr.Addr(2), 3)
}

func TestEagerLPCommitsDurableChecksum(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	tb := lp.NewTable(mem, "t", 4)
	arr := pmem.AllocF64(mem, "arr", 8)
	s := NewEagerLP(tb, checksum.Modular, 1)
	eng := sim.New(sim.DefaultConfig(1), mem)
	eng.Run(func(th *sim.Thread) {
		ts := s.Thread(0)
		ts.Begin(th, 2)
		for i := 0; i < 8; i++ {
			ts.StoreF(th, arr.Addr(i), float64(i)+0.5)
		}
		ts.End(th)
	})
	mem.Crash()
	c := &pmem.Native{Mem: mem}
	// Data and checksum both durable, and consistent with each other.
	words := make([]uint64, 8)
	for i := 0; i < 8; i++ {
		words[i] = c.Load64(arr.Addr(i))
		if arr.Load(c, i) != float64(i)+0.5 {
			t.Fatalf("EagerLP data %d not durable", i)
		}
	}
	if !tb.Matches(c, 2, checksum.SumWords(checksum.Modular, words)) {
		t.Fatal("EagerLP checksum not durable or inconsistent")
	}
}

func TestPersistRange(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	arr := pmem.AllocF64(mem, "arr", 32) // 256 bytes = 4 lines
	eng := sim.New(sim.DefaultConfig(1), mem)
	eng.Run(func(th *sim.Thread) {
		for i := 0; i < 32; i++ {
			arr.Store(th, i, 1.0)
		}
		PersistRange(th, arr.Addr(0), 32*8)
		th.Fence()
	})
	mem.Crash()
	c := &pmem.Native{Mem: mem}
	for i := 0; i < 32; i++ {
		if arr.Load(c, i) != 1.0 {
			t.Fatalf("PersistRange missed element %d", i)
		}
	}
	_, _, flush, _ := mem.NVMMWrites()
	if flush != 4 {
		t.Fatalf("flush writes = %d, want 4 (one per line)", flush)
	}
}

func TestPersistValue(t *testing.T) {
	mem := memsim.NewMemory(1 << 20)
	a := mem.Alloc("x", 64)
	eng := sim.New(sim.DefaultConfig(1), mem)
	eng.Run(func(th *sim.Thread) {
		PersistValue(th, a, 4242)
	})
	mem.Crash()
	if mem.Load64(a) != 4242 {
		t.Fatal("PersistValue not durable")
	}
}
