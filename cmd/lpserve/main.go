// Command lpserve serves an LP-persisted key-value store over TCP: the
// kvserve deployment of the repository's lpstore shards, with group
// commit under LP and the EP/WAL baselines selectable for comparison.
//
// The backing file is the durability domain. A fresh path is
// initialized with the preloaded dataset; an existing path is loaded
// and recovered — LP journal replay with ghost-wiping repair, WAL
// rollback — before the listener accepts a single connection. SIGTERM
// or SIGINT drains gracefully: open batches are padded and committed,
// every queued client is answered, and the file is synced, so the next
// boot recovers with zero repair.
//
// The -metrics mux comes up before recovery starts and serves /healthz
// from the first instant: 503 {"status":"recovering"} while journal
// replay runs, 200 {"status":"serving"} once the data port accepts.
// That readiness split is what lets a router (or an orchestrator) tell
// a booting node from a dead one.
//
// With -node-id the process joins a cluster as a member node: the
// metrics mux doubles as the cluster control plane (/cluster/topology,
// /cluster/catchup) and the server replicates each put to its key's
// pair peer per the pushed topology — see internal/cluster and
// cmd/lprouter.
//
// Usage:
//
//	lpserve -path kv.img                        # LP, defaults
//	lpserve -mode ep -addr 127.0.0.1:7411       # eager baseline
//	lpserve -path kv.img -recover-verify        # recover + verify, then exit
//	lpserve -path kv.img -dump                  # recovery stats as JSON, then exit
//	lpserve -path n0.img -node-id n0 -metrics 127.0.0.1:7511   # cluster member
//
// Startup recovery logs and -dump use the same per-shard JSON schema
// as lpcrash -json (lpstore.RecoverStats).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"lazyp/internal/cluster"
	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
	"lazyp/internal/obs"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lpserve: "+format+"\n", args...)
	os.Exit(1)
}

func parseMode(s string) (lpstore.Mode, error) {
	switch s {
	case "base":
		return lpstore.ModeBase, nil
	case "lp":
		return lpstore.ModeLP, nil
	case "ep":
		return lpstore.ModeEP, nil
	case "wal":
		return lpstore.ModeWAL, nil
	}
	return 0, fmt.Errorf("unknown mode %q (base | lp | ep | wal)", s)
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7411", "TCP listen address")
		mode      = flag.String("mode", "lp", "persistence discipline: base | lp | ep | wal")
		path      = flag.String("path", "kvserve.img", "backing (NVMM) file")
		shards    = flag.Int("shards", 4, "shard owner goroutines (power of two)")
		capacity  = flag.Int("cap", 1<<14, "slot capacity per shard")
		maxops    = flag.Int("maxops", 1<<16, "LP journal capacity per shard, in puts")
		batch     = flag.Int("batch", 32, "LP group-commit size (puts per checksum region)")
		streams   = flag.Int("streams", 4, "preloaded client streams")
		keys      = flag.Int("keys", 2048, "preloaded keys per stream")
		seed      = flag.Uint64("seed", 1, "preload value seed")
		mailbox   = flag.Int("mailbox", 256, "per-shard request queue depth")
		batchWait = flag.Duration("batchwait", 500*time.Microsecond, "max time an open batch waits before padding")
		maxDelay  = flag.Duration("maxdelay", 0, "per-request mailbox deadline (0 = none)")
		fsync     = flag.Bool("fsync", false, "fsync the backing file on every commit")
		pipeline  = flag.Int("pipeline", 4, "LP commit pipeline depth (1 = synchronous group commit)")
		dump      = flag.Bool("dump", false, "print restore/recovery summary as JSON and exit")
		verify    = flag.Bool("recover-verify", false, "recover, re-verify every shard, and exit")
		metrics   = flag.String("metrics", "", "serve /healthz, Prometheus /metrics, and /debug/trace on this address (empty = off; required with -node-id)")
		trace     = flag.Bool("trace", false, "enable the in-memory persistency event tracer (drain via /debug/trace?n=K)")
		traceCap  = flag.Int("tracecap", 4096, "event tracer ring-buffer capacity")
		traceN    = flag.Int("trace-sample", 0, "tail-sample every Nth untraced client put as a full span (0 = off; implies -trace)")
		traceSlow = flag.Duration("trace-slow", 0, "record a slow_put event for puts acked later than this (0 = off; implies -trace)")
		nodeID    = flag.String("node-id", "", "cluster member identity; joins a cluster, making -metrics the control plane")
		replWin   = flag.Int("repl-window", cluster.DefaultReplWindow, "cluster: in-flight replication batches per peer")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fail("%v", err)
	}
	cfg := kvserve.Config{
		Addr: *addr, Path: *path, Mode: m,
		Shards: *shards, Capacity: *capacity, MaxOps: *maxops, BatchK: *batch,
		Streams: *streams, Keys: *keys, Seed: *seed,
		Mailbox: *mailbox, BatchWait: *batchWait, MaxQueueDelay: *maxDelay,
		Fsync: *fsync, PipelineDepth: *pipeline, TraceCap: *traceCap,
		TraceSample: *traceN, TraceSlow: *traceSlow,
	}
	tron := *trace || *traceN > 0 || *traceSlow > 0

	if *nodeID != "" {
		if *metrics == "" {
			fail("-node-id requires -metrics (the cluster control plane address)")
		}
		runClusterNode(*nodeID, *metrics, cfg, *replWin, tron)
		return
	}

	// Standalone path. The metrics mux comes up before recovery so
	// /healthz answers "recovering" while journal replay runs.
	var ready atomic.Uint32
	var mux *http.ServeMux
	if *metrics != "" {
		mux = http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if ready.Load() == 1 {
				fmt.Fprintln(w, `{"status":"serving"}`)
				return
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"recovering"}`)
		})
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fail("metrics listen: %v", err)
		}
		go http.Serve(mln, mux)
		fmt.Fprintf(os.Stderr, "lpserve: metrics on http://%s/metrics\n", mln.Addr())
	}

	s, err := kvserve.New(cfg)
	if err != nil {
		fail("%v", err)
	}
	if tron {
		s.Tracer().Enable(true)
	}
	logRecovery(s, *path, "", *streams**keys)

	if *verify {
		if err := s.VerifyRecovered(); err != nil {
			fail("re-verification FAILED: %v", err)
		}
		if err := s.Close(); err != nil {
			fail("close: %v", err)
		}
		fmt.Fprintln(os.Stderr, "lpserve: image verified")
		return
	}
	if *dump {
		out := struct {
			Mode     string                 `json:"mode"`
			Path     string                 `json:"path"`
			Restored bool                   `json:"restored"`
			Keys     int                    `json:"keys"`
			Shards   []lpstore.RecoverStats `json:"shards,omitempty"`
		}{Mode: m.String(), Path: *path, Restored: s.Restored(),
			Keys: len(s.Contents()), Shards: s.RecoveryStats()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		s.Close()
		return
	}

	if mux != nil {
		mux.Handle("/metrics", obs.MetricsHandler(s.Metrics()))
		mux.Handle("/debug/trace", obs.TraceHandler(s.Tracer()))
		obs.RegisterPprof(mux)
	}

	if err := s.Start(); err != nil {
		fail("listen: %v", err)
	}
	ready.Store(1)
	fmt.Fprintf(os.Stderr, "lpserve: %s serving %s on %s\n", m, *path, s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(os.Stderr, "lpserve: %s — draining\n", got)
	ready.Store(0)
	if err := s.Close(); err != nil {
		fail("drain: %v", err)
	}
	b, _ := json.Marshal(s.Stats())
	fmt.Fprintf(os.Stderr, "lpserve: drained cleanly; stats %s\n", b)
}

// logRecovery prints the boot banner; nodeTag prefixes cluster members'
// lines so a merged 3-node log stays attributable.
func logRecovery(s *kvserve.Server, path, nodeTag string, preload int) {
	tag := ""
	if nodeTag != "" {
		tag = " node=" + nodeTag
	}
	if s.Restored() {
		fmt.Fprintf(os.Stderr, "lpserve:%s recovered existing image %s\n", tag, path)
		for _, st := range s.RecoveryStats() {
			b, _ := json.Marshal(st)
			fmt.Fprintf(os.Stderr, "lpserve:%s shard recovery %s\n", tag, b)
		}
	} else {
		fmt.Fprintf(os.Stderr, "lpserve:%s initialized fresh image %s (%d preloaded keys)\n",
			tag, path, preload)
	}
}

// runClusterNode boots the process as a cluster member and blocks
// until SIGTERM/SIGINT.
func runClusterNode(id, ctrlAddr string, cfg kvserve.Config, replWin int, trace bool) {
	if cfg.Mode != lpstore.ModeLP {
		fail("cluster members must run -mode lp (the replication ack rule is the LP group commit)")
	}
	n, err := cluster.StartNode(cluster.NodeConfig{
		ID:       id,
		CtrlAddr: ctrlAddr,
		Server:   cfg,
		Repl:     cluster.ReplConfig{Window: replWin},
	})
	if err != nil {
		fail("%v", err)
	}
	if trace {
		n.Server().Tracer().Enable(true)
	}
	logRecovery(n.Server(), cfg.Path, id, cfg.Streams*cfg.Keys)
	fmt.Fprintf(os.Stderr, "lpserve: node=%s serving %s on %s (ctrl http://%s)\n",
		id, cfg.Path, n.Server().Addr(), n.CtrlAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(os.Stderr, "lpserve: node=%s %s — draining\n", id, got)
	if err := n.Close(); err != nil {
		fail("drain: %v", err)
	}
	b, _ := json.Marshal(n.Server().Stats())
	fmt.Fprintf(os.Stderr, "lpserve: node=%s drained cleanly; stats %s\n", id, b)
}
