// Command lpserve serves an LP-persisted key-value store over TCP: the
// kvserve deployment of the repository's lpstore shards, with group
// commit under LP and the EP/WAL baselines selectable for comparison.
//
// The backing file is the durability domain. A fresh path is
// initialized with the preloaded dataset; an existing path is loaded
// and recovered — LP journal replay with ghost-wiping repair, WAL
// rollback — before the listener accepts a single connection. SIGTERM
// or SIGINT drains gracefully: open batches are padded and committed,
// every queued client is answered, and the file is synced, so the next
// boot recovers with zero repair.
//
// Usage:
//
//	lpserve -path kv.img                        # LP, defaults
//	lpserve -mode ep -addr 127.0.0.1:7411       # eager baseline
//	lpserve -path kv.img -recover-verify        # recover + verify, then exit
//	lpserve -path kv.img -dump                  # recovery stats as JSON, then exit
//
// Startup recovery logs and -dump use the same per-shard JSON schema
// as lpcrash -json (lpstore.RecoverStats).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lazyp/internal/kvserve"
	"lazyp/internal/lpstore"
	"lazyp/internal/obs"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lpserve: "+format+"\n", args...)
	os.Exit(1)
}

func parseMode(s string) (lpstore.Mode, error) {
	switch s {
	case "base":
		return lpstore.ModeBase, nil
	case "lp":
		return lpstore.ModeLP, nil
	case "ep":
		return lpstore.ModeEP, nil
	case "wal":
		return lpstore.ModeWAL, nil
	}
	return 0, fmt.Errorf("unknown mode %q (base | lp | ep | wal)", s)
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7411", "TCP listen address")
		mode      = flag.String("mode", "lp", "persistence discipline: base | lp | ep | wal")
		path      = flag.String("path", "kvserve.img", "backing (NVMM) file")
		shards    = flag.Int("shards", 4, "shard owner goroutines (power of two)")
		capacity  = flag.Int("cap", 1<<14, "slot capacity per shard")
		maxops    = flag.Int("maxops", 1<<16, "LP journal capacity per shard, in puts")
		batch     = flag.Int("batch", 32, "LP group-commit size (puts per checksum region)")
		streams   = flag.Int("streams", 4, "preloaded client streams")
		keys      = flag.Int("keys", 2048, "preloaded keys per stream")
		seed      = flag.Uint64("seed", 1, "preload value seed")
		mailbox   = flag.Int("mailbox", 256, "per-shard request queue depth")
		batchWait = flag.Duration("batchwait", 500*time.Microsecond, "max time an open batch waits before padding")
		maxDelay  = flag.Duration("maxdelay", 0, "per-request mailbox deadline (0 = none)")
		fsync     = flag.Bool("fsync", false, "fsync the backing file on every commit")
		pipeline  = flag.Int("pipeline", 4, "LP commit pipeline depth (1 = synchronous group commit)")
		dump      = flag.Bool("dump", false, "print restore/recovery summary as JSON and exit")
		verify    = flag.Bool("recover-verify", false, "recover, re-verify every shard, and exit")
		metrics   = flag.String("metrics", "", "serve Prometheus /metrics and /debug/trace on this address (empty = off)")
		trace     = flag.Bool("trace", false, "enable the in-memory persistency event tracer (drain via /debug/trace?n=K)")
		traceCap  = flag.Int("tracecap", 4096, "event tracer ring-buffer capacity")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fail("%v", err)
	}
	cfg := kvserve.Config{
		Addr: *addr, Path: *path, Mode: m,
		Shards: *shards, Capacity: *capacity, MaxOps: *maxops, BatchK: *batch,
		Streams: *streams, Keys: *keys, Seed: *seed,
		Mailbox: *mailbox, BatchWait: *batchWait, MaxQueueDelay: *maxDelay,
		Fsync: *fsync, PipelineDepth: *pipeline, TraceCap: *traceCap,
	}
	s, err := kvserve.New(cfg)
	if err != nil {
		fail("%v", err)
	}
	if *trace {
		s.Tracer().Enable(true)
	}
	if s.Restored() {
		fmt.Fprintf(os.Stderr, "lpserve: recovered existing image %s\n", *path)
		for _, st := range s.RecoveryStats() {
			b, _ := json.Marshal(st)
			fmt.Fprintf(os.Stderr, "lpserve: shard recovery %s\n", b)
		}
	} else {
		fmt.Fprintf(os.Stderr, "lpserve: initialized fresh image %s (%d preloaded keys)\n",
			*path, *streams**keys)
	}

	if *verify {
		if err := s.VerifyRecovered(); err != nil {
			fail("re-verification FAILED: %v", err)
		}
		if err := s.Close(); err != nil {
			fail("close: %v", err)
		}
		fmt.Fprintln(os.Stderr, "lpserve: image verified")
		return
	}
	if *dump {
		out := struct {
			Mode     string                 `json:"mode"`
			Path     string                 `json:"path"`
			Restored bool                   `json:"restored"`
			Keys     int                    `json:"keys"`
			Shards   []lpstore.RecoverStats `json:"shards,omitempty"`
		}{Mode: m.String(), Path: *path, Restored: s.Restored(),
			Keys: len(s.Contents()), Shards: s.RecoveryStats()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		s.Close()
		return
	}

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler(s.Metrics()))
		mux.Handle("/debug/trace", obs.TraceHandler(s.Tracer()))
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fail("metrics listen: %v", err)
		}
		go http.Serve(mln, mux)
		fmt.Fprintf(os.Stderr, "lpserve: metrics on http://%s/metrics\n", mln.Addr())
	}

	if err := s.Start(); err != nil {
		fail("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "lpserve: %s serving %s on %s\n", m, *path, s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(os.Stderr, "lpserve: %s — draining\n", got)
	if err := s.Close(); err != nil {
		fail("drain: %v", err)
	}
	b, _ := json.Marshal(s.Stats())
	fmt.Fprintf(os.Stderr, "lpserve: drained cleanly; stats %s\n", b)
}
