// Command lpload drives open-window load against a running lpserve or
// a cluster: pipelined connections replaying the same deterministic
// YCSB-style kvgen streams the in-simulator experiments use, with
// jittered exponential backoff on overload. It reports throughput and
// latency percentiles — the measured numbers behind EXPERIMENTS.md
// E15/E16.
//
// Two ways to reach a cluster:
//
//   - proxy mode: point -addr at lprouter's data port; the router
//     routes every request and the client is none the wiser;
//   - smart-client mode: -topo fetches the slot table from lprouter's
//     control port and each worker routes per key, opening one
//     connection per node — the router is out of the data path. The
//     table refreshes on every connection failure (and on a periodic
//     timer), so a failover re-routes mid-run.
//
// -reconnect makes workers survive node deaths: in-flight ops on a
// dead connection retry (bounded by -max-retries each) with jittered
// backoff instead of aborting the run — required for driving load
// through a failover. Per-target connection stats land in the -json
// report.
//
// Usage:
//
//	lpload -addr 127.0.0.1:7411 -dur 2s
//	lpload -conns 4 -window 64 -mix b -json
//	lpload -insert -ops 5000      # unique-key inserts (crash-demo shape)
//	lpload -addr 127.0.0.1:7400 -reconnect -dur 5s          # via lprouter
//	lpload -topo http://127.0.0.1:7500 -reconnect -dur 5s   # smart client
//
// Spec-driven open-loop mode (internal/loadmodel): -spec or -builtin
// switches from the closed-loop window driver to deterministic
// generation of a multi-class op schedule, dispatched at its recorded
// times and never retried — the report then carries one row per SLO
// class. -trace-out records the generated stream as a JSONL trace;
// -trace-in replays a recorded trace byte-for-byte instead of
// generating; -gen-only writes the trace and exits without a server.
//
//	lpload -builtin bursty -rate 0.5 -dur 2s -addr 127.0.0.1:7411
//	lpload -spec work.json -trace-out run.jsonl -addr 127.0.0.1:7411
//	lpload -trace-in run.jsonl -addr 127.0.0.1:7411
//	lpload -builtin steady -gen-only -trace-out steady.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"lazyp/internal/cluster"
	"lazyp/internal/kvserve"
	"lazyp/internal/loadmodel"
	"lazyp/internal/obs"
)

// topoView is the smart client's routing state: the last fetched
// topology plus a rate limit on refreshes, shared by all workers.
type topoView struct {
	base    string // router control URL
	cur     atomic.Pointer[cluster.Topology]
	lastRef atomic.Int64 // ns of last refresh attempt
}

func (tv *topoView) fetch() error {
	resp, err := http.Get(tv.base + "/cluster/topology")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var t cluster.Topology
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return err
	}
	if len(t.Slots) != cluster.NumSlots {
		return fmt.Errorf("topology has %d slots, want %d", len(t.Slots), cluster.NumSlots)
	}
	if cur := tv.cur.Load(); cur == nil || t.Epoch >= cur.Epoch {
		tv.cur.Store(&t)
	}
	return nil
}

// refresh re-fetches the table, at most once per 20ms across all
// workers — a failover makes every worker's connection fail at once,
// and one fetch serves them all.
func (tv *topoView) refresh() {
	now := time.Now().UnixNano()
	last := tv.lastRef.Load()
	if now-last < 20*time.Millisecond.Nanoseconds() || !tv.lastRef.CompareAndSwap(last, now) {
		return
	}
	tv.fetch()
}

func (tv *topoView) route(key uint64) string {
	t := tv.cur.Load()
	if t == nil {
		return ""
	}
	return t.PrimaryAddr(key)
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7411", "server (or lprouter data) address")
		topo       = flag.String("topo", "", "lprouter control URL for smart-client routing (e.g. http://127.0.0.1:7500)")
		conns      = flag.Int("conns", 2, "concurrent connections")
		window     = flag.Int("window", 32, "in-flight ops per connection")
		ops        = flag.Int("ops", 0, "ops per connection (0 = run for -dur)")
		dur        = flag.Duration("dur", 2*time.Second, "run duration when -ops is 0")
		mix        = flag.String("mix", "a", "request mix: a | b | c | d")
		dist       = flag.String("dist", "zipfian", "key distribution: zipfian | uniform")
		streams    = flag.Int("streams", 4, "server's preloaded stream count")
		keys       = flag.Int("keys", 2048, "server's preloaded keys per stream")
		seed       = flag.Uint64("seed", 1, "stream seed (must match the server)")
		insert     = flag.Bool("insert", false, "insert-only unique keys instead of a mix")
		reconnect  = flag.Bool("reconnect", false, "survive connection failures: requeue in-flight ops and redial with backoff")
		maxRetries = flag.Int("max-retries", 0, "retries per op on overload or dead connection (0 = default 8)")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON")
		interval   = flag.Duration("interval", 0, "emit periodic throughput/latency lines on stderr (0 = off)")
		traceEvery = flag.Int("trace-every", 0, "propagate a trace ID on every Nth op per worker (0 = off)")
		spanOut    = flag.String("span-out", "", "write the client-side span drain (client_send/client_ack JSONL) here for lptrace")

		specPath    = flag.String("spec", "", "loadmodel spec file: open-loop multi-class generation instead of the closed-loop mix")
		builtin     = flag.String("builtin", "", "built-in loadmodel spec ("+loadmodel.BuiltinNames()+") instead of -spec")
		rate        = flag.Float64("rate", 1.0, "rate multiplier for -builtin specs")
		traceOut    = flag.String("trace-out", "", "record the generated op stream to this JSONL trace file")
		traceIn     = flag.String("trace-in", "", "replay a recorded trace file instead of generating")
		genOnly     = flag.Bool("gen-only", false, "generate (and -trace-out) without contacting a server")
		maxInflight = flag.Int("max-inflight", 0, "open-loop in-flight cap per connection (default 512)")
	)
	flag.Parse()

	var clientTr *obs.Tracer
	if *traceEvery > 0 {
		// Size the ring for the whole run: two events per traced op.
		clientTr = obs.NewTracer(1 << 16)
		clientTr.Enable(true)
	}

	if *specPath != "" || *builtin != "" || *traceIn != "" {
		runSpec(*addr, *specPath, *builtin, *rate, *dur, *traceOut, *traceIn,
			*genOnly, *conns, *maxInflight, *interval, *jsonOut,
			*traceEvery, clientTr, *spanOut)
		return
	}

	opts := kvserve.LoadOpts{
		Conns: *conns, Window: *window, Ops: *ops,
		Mix: *mix, Dist: *dist,
		Streams: *streams, Keys: *keys, Seed: *seed,
		InsertOnly: *insert, MaxRetries: *maxRetries,
		Reconnect: *reconnect,
		Interval:  *interval, Progress: os.Stderr,
		TraceEvery: *traceEvery,
		Tracer:     clientTr,
	}
	if *ops == 0 {
		// -dur governs only duration-bounded runs; an ops-bounded run
		// ends when every op settles, however long a failover stalls it.
		opts.Dur = *dur
	}

	if *topo != "" {
		tv := &topoView{base: *topo}
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := tv.fetch(); err == nil {
				break
			} else if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "lpload: fetching topology from %s: %v\n", *topo, err)
				os.Exit(1)
			}
			time.Sleep(100 * time.Millisecond)
		}
		opts.Route = tv.route
		opts.Refresh = tv.refresh
		// A periodic refresh picks up rejoins and promotions even when
		// no connection broke (e.g. a get-only run).
		stopRef := make(chan struct{})
		defer close(stopRef)
		go func() {
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopRef:
					return
				case <-tick.C:
					tv.fetch()
				}
			}
		}()
		t := tv.cur.Load()
		fmt.Fprintf(os.Stderr, "lpload: smart-client routing, epoch %d, %d nodes\n", t.Epoch, len(t.Nodes))
	} else if err := kvserve.WaitReady(*addr, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "lpload: %v\n", err)
		os.Exit(1)
	}

	rep, err := kvserve.RunLoad(*addr, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpload: %v\n", err)
		os.Exit(1)
	}
	drainSpans(*spanOut, clientTr)
	if rep.Partial {
		fmt.Fprintln(os.Stderr, "lpload: connection lost mid-run — report covers completed ops only")
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("conns %d, window %d, %.2fs\n", rep.Conns, rep.Window, rep.ElapsedS)
		fmt.Printf("  %d ops, %.0f ops/s\n", rep.Ops, rep.Throughput)
		fmt.Printf("  puts acked %d, gets %d (miss %d)\n", rep.AckedPuts, rep.Gets, rep.NotFound)
		fmt.Printf("  overloads %d (retries %d), expired %d, full %d, errors %d\n",
			rep.Overloads, rep.Retries, rep.Expired, rep.Full, rep.Errors)
		fmt.Printf("  latency p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  max %.0fµs\n",
			rep.P50us, rep.P90us, rep.P99us, rep.MaxUs)
		for _, ts := range rep.Targets {
			fmt.Printf("  target %s: ops %d, acked %d, dials %d, resets %d\n",
				ts.Addr, ts.Ops, ts.AckedPuts, ts.Dials, ts.Resets)
		}
	}
	if rep.Errors > 0 || rep.Partial {
		os.Exit(2)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpload: "+format+"\n", args...)
	os.Exit(1)
}

// runSpec is the loadmodel path: resolve a trace (generate from a
// spec, or read one back), optionally record it, then replay it
// open-loop and report per SLO class.
// drainSpans writes the client-side tracer ring to spanOut as JSONL
// for lptrace; a no-op unless both the flag and the tracer are set.
func drainSpans(spanOut string, tr *obs.Tracer) {
	if spanOut == "" || tr == nil {
		return
	}
	f, err := os.Create(spanOut)
	if err != nil {
		die("%v", err)
	}
	evs := tr.Drain(0)
	if err := obs.WriteJSONL(f, evs); err != nil {
		die("span-out: %v", err)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "lpload: %d client span events written to %s\n", len(evs), spanOut)
}

func runSpec(addr, specPath, builtin string, rate float64, dur time.Duration,
	traceOut, traceIn string, genOnly bool, conns, maxInflight int,
	interval time.Duration, jsonOut bool,
	traceEvery int, tracer *obs.Tracer, spanOut string) {
	var tr *loadmodel.Trace
	switch {
	case traceIn != "":
		if specPath != "" || builtin != "" {
			die("-trace-in replaces generation; drop -spec/-builtin")
		}
		t, err := loadmodel.ReadTraceFile(traceIn)
		if err != nil {
			die("%v", err)
		}
		tr = t
	default:
		var spec *loadmodel.Spec
		var err error
		if specPath != "" {
			spec, err = loadmodel.LoadSpec(specPath)
		} else {
			spec, err = loadmodel.BuiltinSpec(builtin, rate, dur.String())
		}
		if err != nil {
			die("%v", err)
		}
		ops, err := loadmodel.Generate(spec)
		if err != nil {
			die("%v", err)
		}
		tr = loadmodel.TraceOf(spec, ops)
		fmt.Fprintf(os.Stderr, "lpload: spec %s: %d ops over %.2fs (%d clients, %d classes)\n",
			tr.Header.Name, len(ops), float64(tr.Header.DurNs)/1e9,
			spec.TotalClients(), len(spec.Classes))
	}

	if traceOut != "" {
		if err := loadmodel.WriteTraceFile(traceOut, tr); err != nil {
			die("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lpload: trace written to %s (%d ops)\n", traceOut, len(tr.Ops))
	}
	if genOnly {
		return
	}

	if err := kvserve.WaitReady(addr, 10*time.Second); err != nil {
		die("%v", err)
	}
	rep, err := loadmodel.Run(addr, tr, loadmodel.RunOpts{
		Conns: conns, MaxInflight: maxInflight,
		Interval: interval, Progress: os.Stderr,
		Tracer: tracer, TraceEvery: traceEvery,
	})
	if err != nil {
		die("%v", err)
	}
	drainSpans(spanOut, tracer)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		printRunReport(rep)
	}
	if rep.Errors > 0 || rep.Partial {
		os.Exit(2)
	}
}

func printRunReport(rep *loadmodel.RunReport) {
	fmt.Printf("spec %s: open-loop, conns %d, %.2fs\n", rep.Spec, rep.Conns, rep.ElapsedS)
	rows := append([]loadmodel.ClassPlan{rep.Total}, rep.Classes...)
	for i, cp := range rows {
		name := cp.Name
		if i == 0 {
			name = "TOTAL"
		}
		fmt.Printf("  %-12s %7d ops  ok %8.0f/s  p50 %7.0fµs  p99 %7.0fµs  put-p99 %7.0fµs  rej %.3f (ov/exp/full %d/%d/%d)\n",
			name, cp.Ops, cp.OKOpsS, cp.P50us, cp.P99us, cp.PutP99us,
			cp.RejectRate, cp.Overloads, cp.Expired, cp.Full)
	}
	fmt.Printf("  notfound %d  moved %d  errors %d  stalls %d  lag-max %.0fµs (>1ms on %d ops)\n",
		rep.NotFound, rep.Moved, rep.Errors, rep.Stalls, rep.LagMaxUs, rep.LagOps)
}
