// Command lpload drives open-window load against a running lpserve:
// pipelined connections replaying the same deterministic YCSB-style
// kvgen streams the in-simulator experiments use, with jittered
// exponential backoff on overload. It reports throughput and latency
// percentiles — the measured numbers behind EXPERIMENTS.md E15.
//
// Usage:
//
//	lpload -addr 127.0.0.1:7411 -dur 2s
//	lpload -conns 4 -window 64 -mix b -json
//	lpload -insert -ops 5000      # unique-key inserts (crash-demo shape)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lazyp/internal/kvserve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7411", "server address")
		conns    = flag.Int("conns", 2, "concurrent connections")
		window   = flag.Int("window", 32, "in-flight ops per connection")
		ops      = flag.Int("ops", 0, "ops per connection (0 = run for -dur)")
		dur      = flag.Duration("dur", 2*time.Second, "run duration when -ops is 0")
		mix      = flag.String("mix", "a", "request mix: a | b | c | d")
		dist     = flag.String("dist", "zipfian", "key distribution: zipfian | uniform")
		streams  = flag.Int("streams", 4, "server's preloaded stream count")
		keys     = flag.Int("keys", 2048, "server's preloaded keys per stream")
		seed     = flag.Uint64("seed", 1, "stream seed (must match the server)")
		insert   = flag.Bool("insert", false, "insert-only unique keys instead of a mix")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		interval = flag.Duration("interval", 0, "emit periodic throughput/latency lines on stderr (0 = off)")
	)
	flag.Parse()

	if err := kvserve.WaitReady(*addr, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "lpload: %v\n", err)
		os.Exit(1)
	}
	rep, err := kvserve.RunLoad(*addr, kvserve.LoadOpts{
		Conns: *conns, Window: *window, Ops: *ops, Dur: *dur,
		Mix: *mix, Dist: *dist,
		Streams: *streams, Keys: *keys, Seed: *seed,
		InsertOnly: *insert,
		Interval:   *interval, Progress: os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpload: %v\n", err)
		os.Exit(1)
	}
	if rep.Partial {
		fmt.Fprintln(os.Stderr, "lpload: connection lost mid-run — report covers completed ops only")
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("conns %d, window %d, %.2fs\n", rep.Conns, rep.Window, rep.ElapsedS)
		fmt.Printf("  %d ops, %.0f ops/s\n", rep.Ops, rep.Throughput)
		fmt.Printf("  puts acked %d, gets %d (miss %d)\n", rep.AckedPuts, rep.Gets, rep.NotFound)
		fmt.Printf("  overloads %d (retries %d), expired %d, full %d, errors %d\n",
			rep.Overloads, rep.Retries, rep.Expired, rep.Full, rep.Errors)
		fmt.Printf("  latency p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  max %.0fµs\n",
			rep.P50us, rep.P90us, rep.P99us, rep.MaxUs)
	}
	if rep.Errors > 0 || rep.Partial {
		os.Exit(2)
	}
}
