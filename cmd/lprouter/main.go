// Command lprouter fronts a set of clustered lpserve nodes: it speaks
// the kvserve wire protocol to clients, routes each request to its
// key's slot primary over the consistent-hash slot table, and runs the
// cluster control loop — heartbeats, lease-expiry failover, topology
// pushes, and rejoin catch-up orchestration (internal/cluster).
//
// Membership is static and given on the command line: one
// -node id=data-addr=ctrl-url per member. The ring (and every slot's
// replica pair) is a pure function of the sorted node ids, so
// restarting the router — or pointing a smart client (lpload -topo) at
// it — reproduces the same placement.
//
// Usage:
//
//	lprouter -addr 127.0.0.1:7400 -ctrl 127.0.0.1:7500 \
//	  -node n0=127.0.0.1:7411=http://127.0.0.1:7511 \
//	  -node n1=127.0.0.1:7412=http://127.0.0.1:7512 \
//	  -node n2=127.0.0.1:7413=http://127.0.0.1:7513
//
// Control endpoints on -ctrl: /cluster/topology (the smart-client
// bootstrap), /cluster/status, /healthz, /metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lazyp/internal/cluster"
	"lazyp/internal/obs"
)

type nodeFlags []cluster.NodeInfo

func (n *nodeFlags) String() string { return fmt.Sprintf("%d nodes", len(*n)) }

func (n *nodeFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return fmt.Errorf("want id=data-addr=ctrl-url, got %q", v)
	}
	*n = append(*n, cluster.NodeInfo{ID: parts[0], Addr: parts[1], Ctrl: strings.TrimSuffix(parts[2], "/")})
	return nil
}

func main() {
	var nodes nodeFlags
	var (
		addr      = flag.String("addr", "127.0.0.1:7400", "client-facing data listen address")
		ctrl      = flag.String("ctrl", "127.0.0.1:7500", "control-plane HTTP listen address")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the hash ring")
		loadFac   = flag.Float64("load-factor", cluster.DefaultLoadFactor, "bounded-load cap: max slot share per node relative to fair share")
		heartbeat = flag.Duration("heartbeat", cluster.DefaultHeartbeat, "node health probe period")
		leaseMiss = flag.Int("lease-miss", cluster.DefaultLeaseMiss, "consecutive missed heartbeats before a node's lease expires")
		trace     = flag.Bool("trace", false, "record router_route span events for traced frames (drain via ctrl /debug/trace)")
		traceCap  = flag.Int("tracecap", 4096, "router span tracer ring-buffer capacity")
	)
	flag.Var(&nodes, "node", "cluster member as id=data-addr=ctrl-url (repeatable)")
	flag.Parse()

	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "lprouter: at least one -node required")
		os.Exit(1)
	}
	r, err := cluster.StartRouter(cluster.RouterConfig{
		Addr: *addr, CtrlAddr: *ctrl, Nodes: nodes,
		VNodes: *vnodes, LoadFactor: *loadFac,
		Heartbeat: *heartbeat, LeaseMiss: *leaseMiss,
		Tracer: obs.NewTracer(*traceCap),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "lprouter: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lprouter: %v\n", err)
		os.Exit(1)
	}
	if *trace {
		r.Tracer().Enable(true)
	}
	t := r.Topology()
	alive := 0
	for _, n := range t.Nodes {
		if n.State == cluster.StateAlive {
			alive++
		}
	}
	fmt.Fprintf(os.Stderr, "lprouter: routing %d slots over %d/%d nodes on %s (ctrl http://%s, epoch %d)\n",
		cluster.NumSlots, alive, len(t.Nodes), r.Addr(), r.CtrlAddr(), t.Epoch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(os.Stderr, "lprouter: %s — shutting down\n", got)
	if err := r.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lprouter: close: %v\n", err)
	}
}
